// Package repro is a from-scratch Go reproduction of
//
//	Ioannis Koutis, "Simple Parallel and Distributed Algorithms for
//	Spectral Graph Sparsification", SPAA 2014 (arXiv:1402.3851).
//
// The package exposes the paper's sparsification pipeline — iterated
// weighted-spanner bundles plus uniform sampling — together with every
// substrate it stands on: Baswana–Sen spanners (shared-memory parallel
// and simulated synchronous distributed), effective resistances, a
// spectral approximation verifier, baseline sparsifiers, and a
// Peng–Spielman style chain solver for SDD/Laplacian linear systems.
//
// Quick start:
//
//	g := repro.Gnp(500, 0.5, 1)                   // a dense random graph
//	h, report := repro.Sparsify(g, 0.75, 4, repro.Options{Seed: 7})
//	// h ≈ g spectrally with roughly half the edges kept; report has
//	// the per-round bundle/sample statistics.
//	b, err := repro.Bounds(g, h, repro.Options{}) // measure (1±ε)
//
// The paper's distributed results live in internal/dist and surface
// here as DistributedSparsify: Algorithm 2 / Theorem 5 executed on a
// simulated CONGEST-style synchronous network (per-vertex mailboxes,
// Baswana–Sen clustering as rounds), returning a DistStats
// communication ledger — rounds, messages, words, per-phase — that the
// tests pin against the O(log² n)-round, near-linear-communication
// bounds of Theorems 2 and 5.
//
// All randomness is seeded and the library is deterministic for a fixed
// seed at any GOMAXPROCS. See DESIGN.md for the system inventory and
// EXPERIMENTS.md for the reproduced guarantees.
package repro
