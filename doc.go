// Package repro is a from-scratch Go reproduction of
//
//	Ioannis Koutis, "Simple Parallel and Distributed Algorithms for
//	Spectral Graph Sparsification", SPAA 2014 (arXiv:1402.3851).
//
// The package exposes the paper's sparsification pipeline — iterated
// weighted-spanner bundles plus uniform sampling — together with every
// substrate it stands on: Baswana–Sen spanners (shared-memory parallel
// and simulated synchronous distributed), effective resistances, a
// spectral approximation verifier, baseline sparsifiers, and a
// Peng–Spielman style chain solver for SDD/Laplacian linear systems.
//
// Quick start:
//
//	g := repro.Gnp(500, 0.5, 1)                   // a dense random graph
//	h, report, err := repro.Sparsify(g, 0.75, 4, repro.Options{Seed: 7})
//	// h ≈ g spectrally with roughly half the edges kept; report has
//	// the per-round bundle/sample statistics.
//	b, err := repro.Bounds(g, h, repro.Options{}) // measure (1±ε)
//
// The paper's distributed results live in internal/dist and surface
// here as DistributedSparsify: Algorithm 2 / Theorem 5 executed on a
// simulated CONGEST-style synchronous network (per-vertex mailboxes,
// Baswana–Sen clustering as rounds), returning a DistStats
// communication ledger — rounds, messages, words, per-phase — that the
// tests pin against the O(log² n)-round, near-linear-communication
// bounds of Theorems 2 and 5.
//
// # Engine, jobs, and transport specs
//
// The distributed subsystem is organized around two orthogonal value
// types: a Job (the algorithm — internal/dist's SpannerJob and
// SparsifyJob are the built-ins) and a TransportSpec (how its rounds
// execute). Options.Transport selects the spec for the entry points
// here: Mem() is the single-process in-memory simulation and the
// default, Sharded(p) partitions the rounds across p worker goroutines
// exchanging cross-shard messages through per-shard-pair buffers at
// each round barrier, and Loopback(p) runs the whole multi-process
// protocol — partition views, batched binary frames on real loopback
// TCP sockets, a per-round tally handshake that keeps the ledger
// identical on every process — inside one process. Real multi-process
// deployments use dist.Run directly with the Net/Worker specs; see
// cmd/distworker for the CLI (coordinator + worker modes, -job
// resolved against the dist job registry) and examples/distributed for
// a verified run with real OS processes. A multi-process worker is
// memory-honest: its partition view (graphio.ReadPartition) stores
// edges, masks, and scratch densely over local ids with only a sorted
// global-id map at the wire boundary, so each process allocates
// O((n + m)/P + boundary) words — enforced by a memory regression
// suite, never the global edge count. The output is edge-identical on
// every spec for equal seeds — the medium changes how messages travel,
// never what is decided — and the ledger additionally reports
// DistStats.CrossShardMessages/CrossShardWords, the traffic a real
// multi-machine partition puts on the wire. Multi-process runs are
// fault-tolerant end to end: worker death is recovered by checkpointed
// deterministic replay, coordinator death by shard-0 failover when
// NetConfig.Failover is armed (a surviving shard adopts the hub from a
// pre-announced standby listener and re-broadcasts the last
// checkpoint), and a checkpoint blob can resume a run on a fleet of a
// different size (NetConfig.Resume) — in every case with output
// bit-identical to a failure-free run. See internal/dist for the
// Engine/Job/TransportSpec contract and experiments E12/E13 (`go run
// ./cmd/bench -run E12,E13`) for the scaling, transport-comparison,
// and per-worker-footprint sweeps.
//
// # Sparsifier as a service
//
// internal/serve turns the streaming sparsifier into a long-lived
// server for dynamic graphs, surfaced here as ListenSparsifier /
// DialSparsifier and as the cmd/sparsifyd daemon. Graphs are mutable
// named resources: clients stream edge batches into the next epoch
// while every query — sparsify, spanner, resistance, solve — answers
// from the current immutable epoch snapshot, so readers never block on
// ingest. Each published epoch names the exact edge prefix it covers,
// and the served answer is a pure function of that prefix, the graph's
// seed, and the epoch number (ServeQuerySeed): replaying the prefix
// through NewStream and resampling offline reproduces it bit for bit —
// the load harness is experiment E14 and the live demo is
// examples/service. The wire protocol follows the repo's versioned
// binary-frame idiom (CRC-trailed frames, append-only type space,
// fuzzed codec), and SIGTERM drains the daemon gracefully: in-flight
// requests are answered, new connections refused.
//
// All randomness is seeded and the library is deterministic for a fixed
// seed at any GOMAXPROCS. ROADMAP.md records the system's direction and
// open items; CHANGES.md records what each PR landed.
package repro
