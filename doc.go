// Package repro is a from-scratch Go reproduction of
//
//	Ioannis Koutis, "Simple Parallel and Distributed Algorithms for
//	Spectral Graph Sparsification", SPAA 2014 (arXiv:1402.3851).
//
// The package exposes the paper's sparsification pipeline — iterated
// weighted-spanner bundles plus uniform sampling — together with every
// substrate it stands on: Baswana–Sen spanners (shared-memory parallel
// and simulated synchronous distributed), effective resistances, a
// spectral approximation verifier, baseline sparsifiers, and a
// Peng–Spielman style chain solver for SDD/Laplacian linear systems.
//
// Quick start:
//
//	g := repro.Gnp(500, 0.5, 1)                   // a dense random graph
//	h, report := repro.Sparsify(g, 0.75, 4, repro.Options{Seed: 7})
//	// h ≈ g spectrally with roughly half the edges kept; report has
//	// the per-round bundle/sample statistics.
//	b, err := repro.Bounds(g, h, repro.Options{}) // measure (1±ε)
//
// The paper's distributed results live in internal/dist and surface
// here as DistributedSparsify: Algorithm 2 / Theorem 5 executed on a
// simulated CONGEST-style synchronous network (per-vertex mailboxes,
// Baswana–Sen clustering as rounds), returning a DistStats
// communication ledger — rounds, messages, words, per-phase — that the
// tests pin against the O(log² n)-round, near-linear-communication
// bounds of Theorems 2 and 5.
//
// # Transports and sharding
//
// The distributed engine is built on a pluggable Transport: by default
// messages move through in-memory staging, while Options.Shards > 0
// selects a sharded transport that partitions the vertices across P
// worker goroutines and exchanges cross-shard messages through
// per-shard-pair buffers at each round barrier. A third transport runs
// the same rounds as real multi-process workers over TCP: each process
// materializes only its shard's adjacency plus boundary edges
// (graphio.ReadPartition/WritePartition), traffic crosses the wire as
// batched fixed-size binary frames, and a per-round tally handshake
// keeps the ledger identical on every process — see cmd/distworker for
// the CLI (coordinator + worker modes) and examples/distributed for a
// verified loopback run. A multi-process worker is memory-honest: its
// partition view stores edges, masks, and scratch densely over local
// ids with only a sorted global-id map at the wire boundary, so each
// process allocates O((n + m)/P + boundary) words — enforced by a
// memory regression suite, never the global edge count. The output is
// edge-identical on all three transports for equal seeds — the medium
// changes how messages travel, never what is decided — and the ledger
// additionally reports
// DistStats.CrossShardMessages/CrossShardWords, the traffic a real
// multi-machine partition puts on the wire. See internal/dist for the
// transport contract and experiments E12/E13 (`go run ./cmd/bench
// -run E12,E13`) for the scaling, transport-comparison, and
// per-worker-footprint sweeps.
//
// All randomness is seeded and the library is deterministic for a fixed
// seed at any GOMAXPROCS. ROADMAP.md records the system's direction and
// open items; CHANGES.md records what each PR landed.
package repro
