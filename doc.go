// Package repro is a from-scratch Go reproduction of
//
//	Ioannis Koutis, "Simple Parallel and Distributed Algorithms for
//	Spectral Graph Sparsification", SPAA 2014 (arXiv:1402.3851).
//
// The package exposes the paper's sparsification pipeline — iterated
// weighted-spanner bundles plus uniform sampling — together with every
// substrate it stands on: Baswana–Sen spanners (shared-memory parallel
// and simulated synchronous distributed), effective resistances, a
// spectral approximation verifier, baseline sparsifiers, and a
// Peng–Spielman style chain solver for SDD/Laplacian linear systems.
//
// Quick start:
//
//	g := repro.Gnp(500, 0.5, 1)                   // a dense random graph
//	h, report := repro.Sparsify(g, 0.75, 4, repro.Options{Seed: 7})
//	// h ≈ g spectrally with roughly half the edges kept; report has
//	// the per-round bundle/sample statistics.
//	b, err := repro.Bounds(g, h, repro.Options{}) // measure (1±ε)
//
// All randomness is seeded and the library is deterministic for a fixed
// seed at any GOMAXPROCS. See DESIGN.md for the system inventory and
// EXPERIMENTS.md for the reproduced guarantees.
package repro
