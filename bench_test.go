package repro

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/bundle"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/resistance"
	"repro/internal/solver"
	"repro/internal/spanner"
)

// ---------------------------------------------------------------------------
// Experiment benchmarks: one per entry of the experiments.Registry
// index (E1–E12). Each runs the experiment at Quick scale and reports
// wall time; `go run ./cmd/bench` prints the full tables.
// ---------------------------------------------------------------------------

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	fn := experiments.Registry[id]
	if fn == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab := fn(experiments.Quick)
		tab.Render(io.Discard)
	}
}

func BenchmarkE1BundleLeverage(b *testing.B)     { benchExperiment(b, "E1") }
func BenchmarkE2Spanner(b *testing.B)            { benchExperiment(b, "E2") }
func BenchmarkE3DistributedSpanner(b *testing.B) { benchExperiment(b, "E3") }
func BenchmarkE4ParallelSample(b *testing.B)     { benchExperiment(b, "E4") }
func BenchmarkE5ParallelSparsify(b *testing.B)   { benchExperiment(b, "E5") }
func BenchmarkE6Baselines(b *testing.B)          { benchExperiment(b, "E6") }
func BenchmarkE7SolverChain(b *testing.B)        { benchExperiment(b, "E7") }
func BenchmarkE8Scaling(b *testing.B)            { benchExperiment(b, "E8") }
func BenchmarkE9BundleAblation(b *testing.B)     { benchExperiment(b, "E9") }
func BenchmarkE10EpsDependence(b *testing.B)     { benchExperiment(b, "E10") }
func BenchmarkE11TreeBundle(b *testing.B)        { benchExperiment(b, "E11") }
func BenchmarkE12ShardedSparsify(b *testing.B)   { benchExperiment(b, "E12") }

// ---------------------------------------------------------------------------
// Micro-benchmarks of the primitives, across sizes, for profiling the
// work bounds directly (O(m log n) spanner, O(t·m·log n) bundle, ...).
// ---------------------------------------------------------------------------

func benchGraph(n int) *graph.Graph {
	return gen.Gnp(n, 24.0/float64(n), uint64(n)*7919)
}

func BenchmarkSpanner(b *testing.B) {
	for _, n := range []int{1000, 4000, 16000} {
		g := benchGraph(n)
		adj := graph.NewAdjacency(g)
		b.Run(fmt.Sprintf("n=%d_m=%d", n, g.M()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				spanner.Compute(g, adj, nil, spanner.Options{Seed: uint64(i)})
			}
		})
	}
}

func BenchmarkBundle(b *testing.B) {
	g := benchGraph(4000)
	adj := graph.NewAdjacency(g)
	for _, t := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("t=%d", t), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bundle.Compute(g, adj, nil, bundle.Options{T: t, Seed: uint64(i)})
			}
		})
	}
}

func BenchmarkParallelSample(b *testing.B) {
	for _, n := range []int{500, 1000} {
		g := gen.Gnp(n, 0.2, uint64(n))
		b.Run(fmt.Sprintf("n=%d_m=%d", n, g.M()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig(uint64(i))
				core.ParallelSample(g, 0.5, cfg)
			}
		})
	}
}

func BenchmarkParallelSparsify(b *testing.B) {
	g := gen.Gnp(800, 0.25, 3)
	for _, rho := range []float64{2, 8} {
		b.Run(fmt.Sprintf("rho=%g", rho), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.ParallelSparsify(g, 0.75, rho, core.DefaultConfig(uint64(i)))
			}
		})
	}
}

func BenchmarkDistributedSpanner(b *testing.B) {
	g := benchGraph(2000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dist.Run(dist.NewEngine(dist.Mem(), g), dist.SpannerJob(0, uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDistributedSpannerSharded pins the cost of the sharded
// transport against the in-memory baseline above: same graph, same
// decisions, messages routed through per-shard-pair buffers.
func BenchmarkDistributedSpannerSharded(b *testing.B) {
	g := benchGraph(2000)
	for _, p := range []int{1, 4} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := dist.Run(dist.NewEngine(dist.Sharded(p), g), dist.SpannerJob(0, uint64(i))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDistributedSparsifyOnShards covers the full sharded pipeline
// the bench CI job tracks (see .github/workflows/ci.yml).
func BenchmarkDistributedSparsifyOnShards(b *testing.B) {
	g := gen.Gnp(800, 0.25, 3)
	for _, p := range []int{1, 4} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				job := dist.SparsifyJob(0.75, 4, core.DefaultConfig(uint64(i+1)))
				if _, err := dist.Run(dist.NewEngine(dist.Sharded(p), g), job); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEffectiveResistanceSketch(b *testing.B) {
	g := gen.Gnp(500, 0.1, 11)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		resistance.AllEdgesApprox(g, resistance.ApproxOptions{Eps: 0.3, Seed: uint64(i)})
	}
}

func BenchmarkChainBuild(b *testing.B) {
	g := gen.Grid2D(30, 30)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := solver.BuildChain(g, solver.ChainOptions{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChainSolve(b *testing.B) {
	g := gen.Grid2D(30, 30)
	chain, err := solver.BuildChain(g, solver.ChainOptions{Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	rhs := make([]float64, g.N)
	rhs[0], rhs[g.N-1] = 1, -1
	dst := make([]float64, g.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chain.Apply(dst, rhs)
	}
}

func BenchmarkSpectralBounds(b *testing.B) {
	g := gen.Gnp(400, 0.1, 13)
	h, _, err := core.ParallelSample(g, 0.75, core.DefaultConfig(5))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Bounds(g, h, Options{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAdjacencyBuild(b *testing.B) {
	g := benchGraph(16000)
	b.ReportAllocs()
	var sink *graph.Adjacency
	for i := 0; i < b.N; i++ {
		sink = graph.NewAdjacency(g)
	}
	_ = sink
}
