package repro

import (
	"math"
	"testing"
)

func TestEndToEndSparsify(t *testing.T) {
	g := Complete(150)
	h, rep, err := sparsifyChecked(t, g, 0.5, 4, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if h.M() >= g.M() {
		t.Fatalf("no reduction: %d -> %d", g.M(), h.M())
	}
	if rep.InputEdges != g.M() || rep.OutputEdges != h.M() {
		t.Fatalf("report inconsistent: %+v", rep)
	}
	b, err := Bounds(g, h, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if b.Epsilon() > 0.5 {
		t.Fatalf("measured eps %v > 0.5 (bounds %+v)", b.Epsilon(), b)
	}
}

func sparsifyChecked(t *testing.T, g *Graph, eps, rho float64, opt Options) (*Graph, *SparsifyReport, error) {
	t.Helper()
	h, rep, err := Sparsify(g, eps, rho, opt)
	if err != nil {
		return nil, nil, err
	}
	if err := h.Validate(); err != nil {
		return nil, nil, err
	}
	return h, rep, nil
}

func TestSampleRound(t *testing.T) {
	g := Complete(120)
	h, rep, err := Sample(g, 0.5, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BundleEdges <= 0 {
		t.Fatal("no bundle built")
	}
	if h.M() != rep.OutputEdges {
		t.Fatal("report/output mismatch")
	}
}

func TestSpannerAPI(t *testing.T) {
	g := Gnp(200, 0.2, 5)
	h := Spanner(g, Options{Seed: 5})
	if h.M() == 0 || h.M() > g.M() {
		t.Fatalf("spanner size %d", h.M())
	}
	// A spanner of a connected graph is connected.
	gb, err := Bounds(g, h, Options{Seed: 11})
	if err != nil {
		t.Fatalf("spanner disconnected or bounds failed: %v", err)
	}
	if gb.Hi > 1+1e-6 {
		t.Fatalf("subgraph upper bound %v > 1 (impossible)", gb.Hi)
	}
}

func TestBundleSpannerLeverage(t *testing.T) {
	g := Complete(90)
	h := BundleSpanner(g, 2, Options{Seed: 7})
	if h.M() <= Spanner(g, Options{Seed: 7}).M()/2 {
		t.Fatal("2-bundle should be roughly twice a single spanner")
	}
}

func TestEffectiveResistanceAPIs(t *testing.T) {
	g := Grid2D(6, 6)
	rs, err := EffectiveResistances(g, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != g.M() {
		t.Fatalf("len=%d", len(rs))
	}
	exact, err := EffectiveResistance(g, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Find edge (0,1) in the list.
	for i, e := range g.Edges {
		if (e.U == 0 && e.V == 1) || (e.U == 1 && e.V == 0) {
			if math.Abs(rs[i]-exact)/exact > 0.5 {
				t.Fatalf("sketch %v vs exact %v", rs[i], exact)
			}
			return
		}
	}
	t.Fatal("edge (0,1) not found")
}

func TestSolveLaplacianAPI(t *testing.T) {
	g := Grid2D(10, 10)
	b := make([]float64, g.N)
	b[0] = 1
	b[g.N-1] = -1
	x, res, err := SolveLaplacian(g, b, 1e-8, Options{Seed: 11})
	if err != nil || !res.Converged {
		t.Fatalf("solve failed: %v %+v", err, res)
	}
	// Potential difference across the source/sink pair equals the
	// effective resistance (unit current).
	er, err := EffectiveResistance(g, 0, int32(g.N-1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs((x[0]-x[g.N-1])-er) > 1e-4 {
		t.Fatalf("potential gap %v vs resistance %v", x[0]-x[g.N-1], er)
	}
}

func TestSolveSDDAPI(t *testing.T) {
	m := &SDDMatrix{
		N:    3,
		Diag: []float64{3, 4, 3},
		Entries: []SDDEntry{
			{I: 0, J: 1, V: -1},
			{I: 1, J: 2, V: 1},
		},
	}
	want := []float64{1, 2, -1}
	b := make([]float64, 3)
	m.MulVec(b, want)
	x, res, err := SolveSDD(m, b, 1e-10, Options{Seed: 13})
	if err != nil || !res.Converged {
		t.Fatalf("SDD solve failed: %v %+v", err, res)
	}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-7 {
			t.Fatalf("x=%v want %v", x, want)
		}
	}
}

func TestDistributedSparsifyAPI(t *testing.T) {
	g := Complete(100)
	h, stats := DistributedSparsify(g, 0.9, 4, Options{Seed: 15})
	if h.M() >= g.M() {
		t.Fatal("no reduction")
	}
	if stats.Rounds <= 0 || stats.Messages <= 0 {
		t.Fatalf("empty ledger: %+v", stats)
	}
}

func TestBaselineAPIs(t *testing.T) {
	g := Complete(80)
	ss, err := SpielmanSrivastava(g, 0.5, Options{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if ss.M() == 0 {
		t.Fatal("SS empty")
	}
	u := UniformSample(g, 0.25, Options{Seed: 19})
	if u.M() == 0 || u.M() >= g.M() {
		t.Fatalf("uniform kept %d", u.M())
	}
}

func TestBarbellGenerator(t *testing.T) {
	g := Barbell(10, 2)
	if g.N != 21 {
		t.Fatalf("N=%d", g.N)
	}
}

func TestStretchBoundValues(t *testing.T) {
	if StretchBound(1) != 1 {
		t.Fatal("trivial bound")
	}
	if StretchBound(1024) != 19 { // 2·10−1
		t.Fatalf("StretchBound(1024)=%v", StretchBound(1024))
	}
}

func TestTheoryOptionIsIdentityAtSmallScale(t *testing.T) {
	g := Complete(60)
	h, rep, err := Sample(g, 0.5, Options{Seed: 21, Theory: true})
	if err != nil {
		t.Fatal(err)
	}
	if h.M() != g.M() {
		t.Fatalf("theory constants should swallow K60: %d -> %d", g.M(), h.M())
	}
	if !rep.Exhausted {
		t.Fatal("expected exhaustion flag")
	}
}

func TestNewGraphAndFromEdges(t *testing.T) {
	g := NewGraph(4)
	if g.N != 4 || g.M() != 0 {
		t.Fatal("NewGraph broken")
	}
	h := FromEdges(2, []Edge{{U: 0, V: 1, W: 1}})
	if h.M() != 1 {
		t.Fatal("FromEdges broken")
	}
}
