// Command spanner computes a Baswana–Sen log n-spanner or a t-bundle
// spanner of a weighted edge list and optionally verifies the stretch
// guarantee.
//
// Usage:
//
//	spanner -in graph.txt [-t 3] [-verify] [-seed 1] \
//	    [-transport sharded -shards P]
//
// With -shards P > 0 (or an explicit -transport spec) the plain
// spanner (t ≤ 1) runs on the distributed engine — "mem", "sharded"
// with P worker goroutines, or "loopback" / "mesh" with P partitions
// over real TCP sockets (star and full-mesh data planes) — and the communication ledger of Theorem 2 is reported;
// the selected edges are identical to the shared-memory path on every
// spec for equal seeds.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro"
	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/stretch"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spanner: ")
	in := flag.String("in", "", "input edge-list file (default stdin)")
	out := flag.String("out", "", "output edge-list file (default stdout)")
	t := flag.Int("t", 1, "bundle thickness (1 = plain spanner)")
	verify := flag.Bool("verify", false, "verify the stretch bound (O(n·m) Dijkstras)")
	seed := flag.Uint64("seed", 1, "random seed")
	shards := flag.Int("shards", 0, "shard count P for -transport sharded/loopback/mesh (plain spanner only; 0 = shared-memory)")
	transport := flag.String("transport", "", `distributed transport spec: "mem", "sharded", "loopback", or "mesh" (default sharded when -shards > 0)`)
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	g, err := graphio.Read(r)
	if err != nil {
		log.Fatal(err)
	}
	var h *repro.Graph
	distributed := *shards > 0 || *transport != ""
	switch {
	case distributed && *t <= 1:
		spec, err := repro.ParseTransport(*transport, *shards)
		if err != nil {
			log.Fatal(err)
		}
		var stats repro.DistStats
		h, stats = repro.DistributedSpanner(g, repro.Options{Seed: *seed, Transport: spec})
		fmt.Fprintf(os.Stderr, "ledger: %s\n", stats)
	case distributed:
		log.Fatal("-shards/-transport support the plain spanner only (use -t 1)")
	case *t <= 1:
		h = repro.Spanner(g, repro.Options{Seed: *seed})
	default:
		h = repro.BundleSpanner(g, *t, repro.Options{Seed: *seed})
	}
	fmt.Fprintf(os.Stderr, "n=%d m=%d -> spanner edges=%d (bound st <= %g)\n",
		g.N, g.M(), h.M(), repro.StretchBound(g.N))
	if *verify && *t <= 1 {
		// Rebuild the mask against g's edge list for the checker.
		inH := make([]bool, g.M())
		type key struct {
			u, v int32
			w    float64
		}
		sel := map[key]int{}
		for _, e := range h.Edges {
			sel[key{e.U, e.V, e.W}]++
		}
		for i, e := range g.Edges {
			if sel[key{e.U, e.V, e.W}] > 0 {
				sel[key{e.U, e.V, e.W}]--
				inH[i] = true
			}
		}
		max, finite := stretch.MaxStretch(g, inH)
		if !finite {
			log.Fatal("verification failed: spanner does not connect all edge endpoints")
		}
		fmt.Fprintf(os.Stderr, "verified: max stretch %.3f <= %g\n", max, repro.StretchBound(g.N))
		_ = graph.CountTrue(inH)
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := graphio.Write(w, h); err != nil {
		log.Fatal(err)
	}
}
