// Command sparsify reads a weighted edge list, runs the paper's
// PARALLELSPARSIFY, writes the sparsifier, and reports size and
// (optionally) measured spectral quality.
//
// Usage:
//
//	sparsify -in graph.txt -out sparse.txt -eps 0.5 -rho 8 \
//	    [-measure] [-seed 1] [-transport sharded -shards P]
//
// With -in omitted the graph is read from stdin; with -out omitted the
// sparsifier is written to stdout. -transport selects the distributed
// engine's transport spec: "mem" runs the in-memory simulation,
// "sharded" partitions the rounds across -shards worker goroutines,
// and "loopback" / "mesh" run the whole multi-process protocol over
// real loopback TCP sockets with -shards processes' worth of
// partitions — on the coordinator-relayed star and the full-mesh data
// plane respectively.
// The output is edge-identical to the shared-memory path on every
// spec for equal seeds, and the communication ledger is reported. For
// real multi-process workers over sockets, see cmd/distworker.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro"
	"repro/internal/graphio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sparsify: ")
	in := flag.String("in", "", "input edge-list file (default stdin)")
	out := flag.String("out", "", "output edge-list file (default stdout)")
	eps := flag.Float64("eps", 0.5, "target spectral accuracy in (0,1]")
	rho := flag.Float64("rho", 8, "edge reduction factor")
	seed := flag.Uint64("seed", 1, "random seed")
	theory := flag.Bool("theory", false, "use the paper's theoretical constants")
	measure := flag.Bool("measure", false, "measure the achieved eps (costs extra solves)")
	shards := flag.Int("shards", 0, "shard count P for -transport sharded/loopback/mesh (0 = shared-memory fast path)")
	transport := flag.String("transport", "", `distributed transport spec: "mem", "sharded", "loopback", or "mesh" (default sharded when -shards > 0)`)
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	g, err := graphio.Read(r)
	if err != nil {
		log.Fatal(err)
	}
	var h *repro.Graph
	if *shards > 0 || *transport != "" {
		spec, err := repro.ParseTransport(*transport, *shards)
		if err != nil {
			log.Fatal(err)
		}
		var stats repro.DistStats
		h, stats = repro.DistributedSparsify(g, *eps, *rho,
			repro.Options{Seed: *seed, Theory: *theory, Transport: spec})
		fmt.Fprintf(os.Stderr, "n=%d m=%d -> m=%d (%.1fx) on %s\n",
			g.N, g.M(), h.M(), float64(g.M())/float64(max(h.M(), 1)), spec)
		fmt.Fprintf(os.Stderr, "ledger: %s\n", stats)
	} else {
		var rep *repro.SparsifyReport
		h, rep, err = repro.Sparsify(g, *eps, *rho, repro.Options{Seed: *seed, Theory: *theory})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "n=%d m=%d -> m=%d (%.1fx) in %d rounds\n",
			g.N, rep.InputEdges, rep.OutputEdges,
			float64(rep.InputEdges)/float64(max(rep.OutputEdges, 1)), len(rep.Rounds))
	}
	if *measure {
		b, err := repro.Bounds(g, h, repro.Options{Seed: *seed})
		if err != nil {
			fmt.Fprintf(os.Stderr, "measure: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "measured: %.4f*G <= H <= %.4f*G (eps=%.4f, target %.4f)\n",
				b.Lo, b.Hi, b.Epsilon(), *eps)
		}
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := graphio.Write(w, h); err != nil {
		log.Fatal(err)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
