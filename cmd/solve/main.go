// Command solve solves a graph Laplacian system L·x = b with the
// Peng–Spielman chain solver built on the paper's sparsifier
// (Theorem 6).
//
// The right-hand side file contains one value per line (vertex order);
// it is projected orthogonal to the all-ones vector. With -rhs omitted
// a unit source/sink pair (vertex 0 → vertex n−1) is used.
//
// Usage:
//
//	solve -in graph.txt [-rhs b.txt] [-tol 1e-8] [-seed 1]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"

	"repro"
	"repro/internal/graphio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("solve: ")
	in := flag.String("in", "", "input edge-list file (default stdin)")
	rhsPath := flag.String("rhs", "", "right-hand side file (one value per line)")
	tol := flag.Float64("tol", 1e-8, "relative residual tolerance")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	g, err := graphio.Read(r)
	if err != nil {
		log.Fatal(err)
	}
	b := make([]float64, g.N)
	if *rhsPath == "" {
		if g.N < 2 {
			log.Fatal("graph too small for the default source/sink rhs")
		}
		b[0], b[g.N-1] = 1, -1
	} else {
		f, err := os.Open(*rhsPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		i := 0
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			if i >= g.N {
				log.Fatalf("rhs has more than n=%d values", g.N)
			}
			v, err := strconv.ParseFloat(line, 64)
			if err != nil {
				log.Fatalf("rhs line %d: %v", i+1, err)
			}
			b[i] = v
			i++
		}
		if err := sc.Err(); err != nil {
			log.Fatal(err)
		}
		if i != g.N {
			log.Fatalf("rhs has %d values, want n=%d", i, g.N)
		}
	}
	x, res, err := repro.SolveLaplacian(g, b, *tol, repro.Options{Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "chain depth=%d nnz=%d iters=%d residual=%.3g converged=%v\n",
		res.ChainDepth, res.ChainNNZ, res.Iterations, res.Residual, res.Converged)
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for _, v := range x {
		fmt.Fprintf(w, "%.12g\n", v)
	}
}
