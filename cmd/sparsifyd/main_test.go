package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	repro "repro"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/serve"
	"repro/internal/stream"
)

// The daemon smoke tests re-execute this test binary as the sparsifyd
// CLI (TestMain dispatches to main when the child marker is set), so a
// real OS daemon process serves real loopback connections and is torn
// down by a real SIGTERM — the serve-smoke CI job runs exactly these
// TestDaemon* tests.

const childEnv = "SPARSIFYD_CHILD"

func TestMain(m *testing.M) {
	if os.Getenv(childEnv) == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func child(t *testing.T, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), childEnv+"=1")
	cmd.Stderr = os.Stderr
	return cmd
}

func childCapture(t *testing.T, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), childEnv+"=1")
	return cmd
}

func waitForFile(t *testing.T, path string, timeout time.Duration) string {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		b, err := os.ReadFile(path)
		if err == nil && len(b) > 0 {
			return strings.TrimSpace(string(b))
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("%s did not appear within %v", path, timeout)
	return ""
}

// TestDaemonLifecycle is the full serve-smoke pass: boot a real daemon
// process, drive it end to end with CLI client invocations (create,
// ingest a file, flush, sparsify to a file, stat, resistance), verify
// the served sparsifier is bit-identical to the offline recomputation
// over the same edge prefix, then SIGTERM the daemon and require a
// clean drain (exit 0).
func TestDaemonLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon test skipped in -short mode")
	}
	dir := t.TempDir()
	const (
		n    = 200
		seed = "23"
		eps  = "0.5"
	)
	g := gen.Gnp(n, 0.05, 4)
	inPath := filepath.Join(dir, "edges.txt")
	f, err := os.Create(inPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := graphio.Write(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()

	addrPath := filepath.Join(dir, "addr")
	daemon := child(t, "-listen", "127.0.0.1:0", "-addr-file", addrPath, "-grace", "20s")
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer daemon.Process.Kill()
	addr := waitForFile(t, addrPath, 15*time.Second)

	run := func(args ...string) {
		t.Helper()
		cmd := child(t, append([]string{"-connect", addr, "-graph", "smoke"}, args...)...)
		if err := cmd.Run(); err != nil {
			t.Fatalf("client %v: %v", args, err)
		}
	}
	run("-create", "-n", "200", "-seed", seed)
	run("-ingest", inPath)
	outPath := filepath.Join(dir, "sparse.txt")
	run("-flush", "-sparsify", eps, "-out", outPath)
	run("-resistance", "0,1", "-stat")

	// The served sparsifier must be bit-identical to the offline replay
	// of the same prefix: the whole file in file order, one flush →
	// epoch 1 (the file is smaller than the default update budget).
	of, err := os.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	got, err := graphio.Read(of)
	of.Close()
	if err != nil {
		t.Fatal(err)
	}
	str := stream.New(n, stream.Options{Seed: 23})
	for _, e := range g.Edges {
		if err := str.Ingest(e); err != nil {
			t.Fatal(err)
		}
	}
	sum, _, err := str.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := repro.Sparsify(sum, 0.5, 0, repro.Options{Seed: serve.QuerySeed(23, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if got.N != want.N || got.M() != want.M() {
		t.Fatalf("served sparsifier n=%d m=%d, offline n=%d m=%d", got.N, got.M(), want.N, want.M())
	}
	for i := range got.Edges {
		if got.Edges[i] != want.Edges[i] {
			t.Fatalf("edge %d: served %+v, offline %+v", i, got.Edges[i], want.Edges[i])
		}
	}

	// SIGTERM → graceful drain → exit 0.
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := daemon.Wait(); err != nil {
		t.Fatalf("daemon did not drain cleanly: %v", err)
	}

	// The daemon is gone: a fresh client must fail to connect.
	cmd := childCapture(t, "-connect", addr, "-graph", "smoke", "-stat", "-timeout", "2s")
	if err := cmd.Run(); err == nil {
		t.Fatal("client connected to a drained daemon")
	}
}

// TestDaemonDrainAnswersInFlight pins the SIGTERM discipline at the
// process level: a client request in flight when the signal lands is
// still answered before the daemon exits.
func TestDaemonDrainAnswersInFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon test skipped in -short mode")
	}
	dir := t.TempDir()
	addrPath := filepath.Join(dir, "addr")
	daemon := child(t, "-listen", "127.0.0.1:0", "-addr-file", addrPath, "-grace", "20s")
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer daemon.Process.Kill()
	addr := waitForFile(t, addrPath, 15*time.Second)

	// Drive the protocol in-process for precise timing: open a graph,
	// ingest, then race a query against the SIGTERM.
	c, err := serve.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const n = 150
	if _, err := c.Open("g", n, serve.GraphOptions{Seed: 5}); err != nil {
		t.Fatal(err)
	}
	g := gen.Gnp(n, 0.08, 8)
	if _, err := c.Ingest("g", g.Edges); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Flush("g"); err != nil {
		t.Fatal(err)
	}

	type result struct {
		g   *graph.Graph
		err error
	}
	res := make(chan result, 1)
	go func() {
		_, sg, err := c.Sparsify("g", 0.4, 0)
		res <- result{sg, err}
	}()
	time.Sleep(20 * time.Millisecond) // request bytes reach the daemon
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	r := <-res
	if r.err != nil {
		t.Fatalf("in-flight query lost across SIGTERM: %v", r.err)
	}
	if r.g.M() == 0 {
		t.Fatal("in-flight query answered with an empty graph")
	}
	if err := daemon.Wait(); err != nil {
		t.Fatalf("daemon did not drain cleanly: %v", err)
	}
}

// TestDaemonFlagValidation: malformed address flags die with the flag
// name in the message (shared netutil validation), before any socket
// or connection work.
func TestDaemonFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"bad-listen", []string{"-listen", "127.0.0.1"}, "-listen"},
		{"bad-listen-port", []string{"-listen", "127.0.0.1:notaport"}, "not a valid port"},
		{"connect-needs-host", []string{"-connect", ":7777", "-graph", "g"}, "needs an explicit host"},
		{"bad-addr-file", []string{"-listen", "127.0.0.1:0", "-addr-file", "/no/such/dir/addr"}, "does not exist"},
		{"no-mode", nil, "one of -listen"},
		{"both-modes", []string{"-listen", "127.0.0.1:0", "-connect", "127.0.0.1:1"}, "mutually exclusive"},
		{"client-no-graph", []string{"-connect", "127.0.0.1:1"}, "-graph is required"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cmd := childCapture(t, tc.args...)
			out, err := cmd.CombinedOutput()
			if err == nil {
				t.Fatalf("args %v accepted; output: %s", tc.args, out)
			}
			if !strings.Contains(string(out), tc.want) {
				t.Fatalf("args %v: output %q does not mention %q", tc.args, out, tc.want)
			}
		})
	}
}
