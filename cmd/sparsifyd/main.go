// Command sparsifyd is the sparsifier service daemon plus its CLI
// client: a long-lived server holding named dynamic graphs, answering
// spectral queries over immutable epoch snapshots while clients stream
// edges in (see internal/serve for the epoch/session model and the
// determinism contract).
//
// Daemon (runs until SIGTERM/SIGINT, then drains: in-flight requests
// are answered, new connections refused):
//
//	sparsifyd -listen 127.0.0.1:7777 [-budget 65536] [-addr-file F]
//
// Client (one connection; the operation flags run in pipeline order
// create → ingest → flush → queries → stat → drop, so one invocation
// can do a whole round trip):
//
//	sparsifyd -connect 127.0.0.1:7777 -graph g -create -n 1024 -seed 7
//	sparsifyd -connect 127.0.0.1:7777 -graph g -ingest edges.txt
//	sparsifyd -connect 127.0.0.1:7777 -graph g -flush -sparsify 0.5 -out sp.txt
//	sparsifyd -connect 127.0.0.1:7777 -graph g -spanner 3 -resistance 0,9 -stat
//	sparsifyd -connect 127.0.0.1:7777 -graph g -drop
//
// -ingest reads the repo's text edge-list format (graphio); the file's
// vertex count must not exceed the graph's. Query results are written
// in the same format to -out (default stdout). Every response line
// reports the answering epoch and its edge prefix, so any answer can
// be reproduced offline from the same prefix.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/netutil"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sparsifyd: ")
	listen := flag.String("listen", "", "daemon mode: listen address (host:port)")
	budget := flag.Int("budget", 0, "daemon: default epoch update budget in edges (0 = 65536)")
	addrFile := flag.String("addr-file", "", "daemon: write the bound listen address to this file (atomically)")
	grace := flag.Duration("grace", 30*time.Second, "daemon: drain window for in-flight requests on SIGTERM")

	connect := flag.String("connect", "", "client mode: daemon address to connect to")
	graphName := flag.String("graph", "", "client: graph name the operations apply to")
	create := flag.Bool("create", false, "client: create the graph (or attach if it exists with the same -n)")
	n := flag.Int("n", 0, "client, with -create: vertex count")
	gBudget := flag.Int("graph-budget", 0, "client, with -create: per-graph epoch update budget (0 = daemon default)")
	buffer := flag.Int("buffer", 0, "client, with -create: stream ingest buffer in edges (0 = 4·n)")
	reduceEps := flag.Float64("reduce-eps", 0, "client, with -create: per-reduce sample accuracy (0 = 0.2)")
	seed := flag.Uint64("seed", 0, "client, with -create: graph seed driving stream and query randomness (0 = 1)")
	ingest := flag.String("ingest", "", "client: stream this edge-list file into the graph's next epoch")
	batch := flag.Int("batch", 4096, "client, with -ingest: edges per wire batch")
	flush := flag.Bool("flush", false, "client: publish an epoch over everything ingested so far")
	sparsify := flag.Float64("sparsify", 0, "client: query an eps-spectral sparsifier of the current epoch")
	rho := flag.Float64("rho", 0, "client, with -sparsify: edge reduction factor (0 = paper default)")
	spannerK := flag.Int("spanner", 0, "client: query a (2k-1)-spanner of the current epoch at this k")
	resistancePair := flag.String("resistance", "", "client: query effective resistance for a vertex pair \"u,v\"")
	stat := flag.Bool("stat", false, "client: report the graph's live counters")
	drop := flag.Bool("drop", false, "client: delete the graph from the registry")
	out := flag.String("out", "", "client: write query result graphs to this file (default stdout)")
	timeout := flag.Duration("timeout", 10*time.Second, "client: dial timeout")
	flag.Parse()

	switch {
	case *listen != "" && *connect != "":
		log.Fatal("-listen (daemon) and -connect (client) are mutually exclusive")
	case *listen != "":
		if err := netutil.ValidateHostPort("-listen", *listen, false); err != nil {
			log.Fatal(err)
		}
		if *addrFile != "" {
			if err := netutil.ValidateParentDir("-addr-file", *addrFile); err != nil {
				log.Fatal(err)
			}
		}
		runDaemon(*listen, *budget, *addrFile, *grace)
	case *connect != "":
		if err := netutil.ValidateHostPort("-connect", *connect, true); err != nil {
			log.Fatal(err)
		}
		if *graphName == "" {
			log.Fatal("-graph is required in client mode")
		}
		runClient(clientOps{
			connect: *connect, graphName: *graphName, timeout: *timeout,
			create: *create, n: *n,
			opt: serve.GraphOptions{
				UpdateBudget: *gBudget, BufferEdges: *buffer,
				ReduceEps: *reduceEps, Seed: *seed,
			},
			ingest: *ingest, batch: *batch, flush: *flush,
			sparsify: *sparsify, rho: *rho, spannerK: *spannerK,
			resistancePair: *resistancePair, stat: *stat, drop: *drop, out: *out,
		})
	default:
		log.Fatal("one of -listen (daemon) or -connect (client) is required")
	}
}

func runDaemon(listen string, budget int, addrFile string, grace time.Duration) {
	srv, err := serve.Listen(serve.Config{
		Listen:        listen,
		DefaultBudget: budget,
		OnListen: func(addr string) {
			fmt.Fprintf(os.Stderr, "sparsifyd: listening on %s\n", addr)
			if addrFile != "" {
				if err := netutil.AtomicWriteFile(addrFile, []byte(addr)); err != nil {
					log.Fatal(err)
				}
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	drained := make(chan error, 1)
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "sparsifyd: %v: draining (grace %v)\n", s, grace)
		drained <- srv.Shutdown(grace)
	}()

	if err := srv.Serve(); err != nil {
		log.Fatal(err)
	}
	if err := <-drained; err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(os.Stderr, "sparsifyd: drained, bye")
}

type clientOps struct {
	connect, graphName string
	timeout            time.Duration
	create             bool
	n                  int
	opt                serve.GraphOptions
	ingest             string
	batch              int
	flush              bool
	sparsify, rho      float64
	spannerK           int
	resistancePair     string
	stat, drop         bool
	out                string
}

func runClient(ops clientOps) {
	c, err := serve.DialTimeout(ops.connect, ops.timeout)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	name := ops.graphName

	if ops.create {
		if ops.n < 1 {
			log.Fatal("-create requires -n ≥ 1")
		}
		info, err := c.Open(name, ops.n, ops.opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "graph %s: n=%d epoch=%d ingested=%d\n", name, info.N, info.Epoch, info.Ingested)
	}

	if ops.ingest != "" {
		if ops.batch < 1 {
			log.Fatal("-batch must be ≥ 1")
		}
		f, err := os.Open(ops.ingest)
		if err != nil {
			log.Fatal(err)
		}
		g, err := graphio.Read(f)
		f.Close()
		if err != nil {
			log.Fatalf("%s: %v", ops.ingest, err)
		}
		start := time.Now()
		var info serve.Info
		for i := 0; i < len(g.Edges); i += ops.batch {
			end := i + ops.batch
			if end > len(g.Edges) {
				end = len(g.Edges)
			}
			if info, err = c.Ingest(name, g.Edges[i:end]); err != nil {
				log.Fatalf("ingest %s at edge %d: %v", ops.ingest, i, err)
			}
		}
		el := time.Since(start)
		rate := float64(len(g.Edges)) / el.Seconds()
		fmt.Fprintf(os.Stderr, "ingested %d edges in %v (%.0f edges/s): epoch=%d prefix=%d pending=%d\n",
			len(g.Edges), el.Round(time.Millisecond), rate, info.Epoch, info.Prefix, info.Pending)
	}

	if ops.flush {
		info, err := c.Flush(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "flushed: epoch=%d prefix=%d summary=%d edges (%d reduces)\n",
			info.Epoch, info.Prefix, info.SummaryM, info.Reduces)
	}

	if ops.sparsify != 0 {
		info, g, err := c.Sparsify(name, ops.sparsify, ops.rho)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "sparsify eps=%v: epoch=%d prefix=%d -> %d edges\n",
			ops.sparsify, info.Epoch, info.Prefix, g.M())
		writeGraph(ops.out, g)
	}

	if ops.spannerK != 0 {
		info, g, err := c.Spanner(name, ops.spannerK)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "spanner k=%d: epoch=%d prefix=%d -> %d edges\n",
			ops.spannerK, info.Epoch, info.Prefix, g.M())
		writeGraph(ops.out, g)
	}

	if ops.resistancePair != "" {
		u, v, err := parsePair(ops.resistancePair)
		if err != nil {
			log.Fatalf("-resistance: %v", err)
		}
		info, r, err := c.Resistance(name, u, v)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "resistance(%d,%d): epoch=%d prefix=%d\n", u, v, info.Epoch, info.Prefix)
		fmt.Println(strconv.FormatFloat(r, 'g', -1, 64))
	}

	if ops.stat {
		info, err := c.Stat(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("graph=%s n=%d epoch=%d prefix=%d ingested=%d pending=%d summary=%d reduces=%d\n",
			name, info.N, info.Epoch, info.Prefix, info.Ingested, info.Pending, info.SummaryM, info.Reduces)
	}

	if ops.drop {
		info, err := c.Drop(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dropped %s (had %d edges ingested across %d epochs)\n", name, info.Ingested, info.Epoch)
	}
}

func parsePair(s string) (int32, int32, error) {
	us, vs, ok := strings.Cut(s, ",")
	if !ok {
		return 0, 0, fmt.Errorf("%q is not a \"u,v\" pair", s)
	}
	u, err := strconv.ParseInt(strings.TrimSpace(us), 10, 32)
	if err != nil {
		return 0, 0, fmt.Errorf("bad vertex %q", us)
	}
	v, err := strconv.ParseInt(strings.TrimSpace(vs), 10, 32)
	if err != nil {
		return 0, 0, fmt.Errorf("bad vertex %q", vs)
	}
	return int32(u), int32(v), nil
}

func writeGraph(out string, g *graph.Graph) {
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := graphio.Write(w, g); err != nil {
		log.Fatal(err)
	}
}
