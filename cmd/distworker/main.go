// Command distworker runs the distributed sparsifier as real
// multi-process workers over TCP: one coordinator (shard 0) plus
// shards−1 workers, each process materializing only its shard's
// adjacency plus boundary edges and exchanging round traffic through
// the bulk-synchronous network transport.
//
// Coordinator (owns shard 0, assembles and writes the output):
//
//	distworker -listen 127.0.0.1:9000 -shards 4 -in graph.txt \
//	    -eps 0.5 -rho 8 -seed 1 [-out sparse.txt]
//
// Worker (joins the coordinator; sparsification parameters are adopted
// from the coordinator's job spec, so only the partition is local):
//
//	distworker -join 127.0.0.1:9000 -shards 4 -shard 2 -in graph.txt
//
// Pre-splitting: with -split DIR the coordinator writes one partition
// file per shard before listening, and any process started with
// -parts DIR loads its partition file instead of parsing the whole
// graph — the partition-aware loading path:
//
//	distworker -shards 4 -in graph.txt -split parts/ -split-only
//	distworker -join HOST:PORT -shards 4 -shard 2 -parts parts/
//
// For equal seeds the written sparsifier is edge-identical to
// `sparsify` (and to the in-process transports) at any shard count,
// and the reported ledger is identical on every process.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/graphio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("distworker: ")
	in := flag.String("in", "", "input edge-list file (whole graph)")
	parts := flag.String("parts", "", "partition directory (load only this shard's file)")
	out := flag.String("out", "", "coordinator output edge-list file (default stdout)")
	listen := flag.String("listen", "", "coordinator mode: listen address (host:port)")
	join := flag.String("join", "", "worker mode: coordinator address to join")
	shards := flag.Int("shards", 0, "total shard count P (required)")
	shard := flag.Int("shard", 0, "this worker's shard id in [1,P) (worker mode)")
	eps := flag.Float64("eps", 0.5, "target spectral accuracy in (0,1] (coordinator)")
	rho := flag.Float64("rho", 8, "edge reduction factor (coordinator)")
	depth := flag.Int("depth", 0, "bundle depth override, 0 = calibrated default (coordinator)")
	seed := flag.Uint64("seed", 1, "random seed (coordinator)")
	split := flag.String("split", "", "write all shards' partition files into this directory")
	splitOnly := flag.Bool("split-only", false, "with -split: write partitions and exit")
	addrFile := flag.String("addr-file", "", "coordinator: write the bound listen address to this file")
	timeout := flag.Duration("timeout", dist.DefaultNetTimeout, "per-frame network deadline")
	flag.Parse()

	if *shards < 1 {
		log.Fatal("-shards is required (≥ 1)")
	}
	switch {
	case *split != "" && *splitOnly:
		g := readGraph(*in)
		splitPartitions(g, *shards, *split)
	case *listen != "":
		runCoordinator(*in, *parts, *out, *listen, *addrFile, *split, *shards, *eps, *rho, *depth, *seed, *timeout)
	case *join != "":
		runWorker(*in, *parts, *join, *shard, *shards, *timeout)
	default:
		log.Fatal("one of -listen (coordinator), -join (worker), or -split/-split-only is required")
	}
}

func readGraph(in string) *graph.Graph {
	if in == "" {
		log.Fatal("-in is required to read the whole graph")
	}
	f, err := os.Open(in)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	g, err := graphio.Read(f)
	if err != nil {
		log.Fatal(err)
	}
	return g
}

// loadPartition materializes this process's slice of the graph: from
// its partition file when a partition directory is given (the
// partition-aware path — nothing else is read), else by carving the
// whole input graph in memory.
func loadPartition(in, parts string, shard, shards int) *graph.Partition {
	if parts != "" {
		path := filepath.Join(parts, graphio.PartitionFileName(shard, shards))
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		p, err := graphio.ReadPartition(f)
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		if p.Shard != shard || p.Shards != shards {
			log.Fatalf("%s holds shard %d/%d, want %d/%d", path, p.Shard, p.Shards, shard, shards)
		}
		return p
	}
	return graph.PartitionOf(readGraph(in), shard, shards)
}

func splitPartitions(g *graph.Graph, shards int, dir string) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for s := 0; s < shards; s++ {
		p := graph.PartitionOf(g, s, shards)
		path := filepath.Join(dir, graphio.PartitionFileName(s, shards))
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := graphio.WritePartition(f, p); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d incident edges)\n", path, len(p.IDs))
	}
}

func runCoordinator(in, parts, out, listen, addrFile, split string, shards int, eps, rho float64, depth int, seed uint64, timeout time.Duration) {
	var part *graph.Partition
	if split != "" {
		// Splitting needs the whole graph anyway; carve shard 0 from it.
		g := readGraph(in)
		splitPartitions(g, shards, split)
		part = graph.PartitionOf(g, 0, shards)
	} else {
		part = loadPartition(in, parts, 0, shards)
	}
	tr, err := dist.ListenNet(listen, part.N, shards, timeout)
	if err != nil {
		log.Fatal(err)
	}
	defer tr.Close()
	fmt.Fprintf(os.Stderr, "coordinator: shard 0/%d listening on %s (n=%d m=%d, %d incident edges)\n",
		shards, tr.Addr(), part.N, part.M, len(part.IDs))
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(tr.Addr()), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	start := time.Now()
	res, wireBytes, err := dist.RunNetCoordinator(tr, part, eps, rho, depth, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "done in %v: n=%d m=%d -> m=%d\n",
		time.Since(start).Round(time.Millisecond), part.N, part.M, res.G.M())
	fmt.Fprintf(os.Stderr, "ledger: %s\n", res.Stats)
	fmt.Fprintf(os.Stderr, "wire: %d bytes across %d processes (model cross-shard: %d words)\n",
		wireBytes, shards, res.Stats.CrossShardWords)
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := graphio.Write(w, res.G); err != nil {
		log.Fatal(err)
	}
}

func runWorker(in, parts, join string, shard, shards int, timeout time.Duration) {
	if shard < 1 || shard >= shards {
		log.Fatalf("-shard must be in [1,%d)", shards)
	}
	part := loadPartition(in, parts, shard, shards)
	tr, err := dist.JoinNet(join, part.N, shard, shards, timeout)
	if err != nil {
		log.Fatal(err)
	}
	defer tr.Close()
	fmt.Fprintf(os.Stderr, "worker: shard %d/%d joined %s (%d incident edges, vertices [%d,%d))\n",
		shard, shards, join, len(part.IDs), part.Lo, part.Hi)
	stats, err := dist.RunNetWorker(tr, part)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "worker %d done; ledger: %s\n", shard, stats)
}
