// Command distworker runs a distributed job as real multi-process
// workers over TCP: one coordinator (shard 0) plus shards−1 workers,
// each process materializing only its shard's adjacency plus boundary
// edges and exchanging round traffic through the bulk-synchronous
// network transport. The job is resolved by name through the dist
// package's registry (-job, default sparsify); the coordinator
// broadcasts the job's parameters, so workers adopt the exact same run
// and only the partition is local.
//
// Coordinator (owns shard 0, assembles and writes the output):
//
//	distworker -listen 127.0.0.1:9000 -shards 4 -in graph.txt \
//	    -job sparsify -eps 0.5 -rho 8 -seed 1 [-out sparse.txt]
//
// Worker (joins the coordinator; job parameters are adopted from the
// coordinator's broadcast and cross-checked against -job):
//
//	distworker -join 127.0.0.1:9000 -shards 4 -shard 2 -in graph.txt
//
// Pre-splitting: with -split DIR the coordinator writes one partition
// file per shard before listening, and any process started with
// -parts DIR loads its partition file instead of parsing the whole
// graph — the partition-aware loading path:
//
//	distworker -shards 4 -in graph.txt -split parts/ -split-only
//	distworker -join HOST:PORT -shards 4 -shard 2 -parts parts/
//
// Full-mesh data plane: with -mesh on EVERY process (the handshake
// rejects a mixed fleet) the workers dial each other directly and
// exchange round batches peer-to-peer, so cross-shard data crosses the
// wire once instead of being relayed twice through the coordinator,
// and round flushes overlap the next round's compute (double
// buffering). Workers bind a peer listener (-peer-listen, default
// 127.0.0.1:0 — set a routable host:0 for multi-machine runs) and
// announce it to the coordinator at join time:
//
//	distworker -listen :9000 -shards 4 -mesh -in graph.txt
//	distworker -join HOST:9000 -shards 4 -shard 2 -mesh \
//	    -peer-listen 10.0.0.7:0 -in graph.txt
//
// Fault tolerance: with -max-respawns N the coordinator survives up to
// N worker deaths — on a detected failure (EOF, reset, or a missed
// heartbeat window) it rolls the surviving workers back, re-execs this
// binary as a replacement for the dead shard (loading the same
// partition source, joining with -resume), and replays the run from
// its last checkpoint (-checkpoint-every). Every round is a pure
// function of (seed, partition, round number), so the recovered output
// is bit-identical to a failure-free run — kill -9 a worker mid-run
// and the written result does not change. -crash-after-frames is the
// matching fault-injection hook the recovery tests use.
//
// Coordinator failover: with -failover on EVERY process (the handshake
// rejects a mixed fleet) the COORDINATOR is no longer a single point
// of failure. Each worker pre-binds a standby hub listener
// (-failover-listen, default 127.0.0.1:0) and announces it at join
// time; the coordinator broadcasts the standby address book alongside
// each checkpoint. Kill -9 the coordinator mid-run and the
// lowest-numbered live shard adopts shard 0: it loads partition 0,
// turns its standby listener into the hub, re-execs this binary to
// refill its vacated shard, replays from the broadcast checkpoint, and
// writes the assembled output to ITS -out — still bit-identical to a
// failure-free run. Failover workers therefore take -out,
// -max-respawns, and -checkpoint-every too:
//
//	distworker -join HOST:9000 -shards 4 -shard 2 -parts parts/ \
//	    -failover -max-respawns 2 -checkpoint-every 1 -out sparse.txt
//
// Elastic resize: -ckpt-out FILE makes the coordinator persist each
// durable checkpoint atomically; -resume-ckpt FILE restarts a run from
// such a checkpoint — at ANY shard count, because replay is
// partition-independent. The resumed run's output is bit-identical to
// an uninterrupted one:
//
//	distworker -listen :9000 -shards 4 -in g.txt -ckpt-out run.ckpt
//	distworker -listen :9000 -shards 3 -in g.txt -resume-ckpt run.ckpt
//
// For equal seeds the written output is edge-identical to the
// in-process transport specs at any shard count, and the reported
// ledger is identical on every process.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/netutil"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("distworker: ")
	in := flag.String("in", "", "input edge-list file (whole graph)")
	parts := flag.String("parts", "", "partition directory (load only this shard's file)")
	out := flag.String("out", "", "coordinator output edge-list file (default stdout)")
	listen := flag.String("listen", "", "coordinator mode: listen address (host:port)")
	join := flag.String("join", "", "worker mode: coordinator address to join")
	shards := flag.Int("shards", 0, "total shard count P (required)")
	shard := flag.Int("shard", 0, "this worker's shard id in [1,P) (worker mode)")
	jobName := flag.String("job", "sparsify", "job to run, one of: "+strings.Join(dist.JobNames(), ", "))
	eps := flag.Float64("eps", 0.5, "target spectral accuracy in (0,1] (job=sparsify, coordinator)")
	rho := flag.Float64("rho", 8, "edge reduction factor (job=sparsify, coordinator)")
	depth := flag.Int("depth", 0, "bundle depth override, 0 = calibrated default (job=sparsify, coordinator)")
	k := flag.Int("k", 0, "spanner level count, 0 = ceil(log2 n) (job=spanner, coordinator)")
	seed := flag.Uint64("seed", 1, "random seed (coordinator)")
	split := flag.String("split", "", "write all shards' partition files into this directory")
	splitOnly := flag.Bool("split-only", false, "with -split: write partitions and exit")
	addrFile := flag.String("addr-file", "", "coordinator: write the bound listen address to this file (atomically)")
	timeout := flag.Duration("timeout", dist.DefaultNetTimeout, "per-frame network deadline")
	maxRespawns := flag.Int("max-respawns", 0, "coordinator: survive up to this many worker deaths by respawning them (0 = a worker death fails the run)")
	ckptEvery := flag.Int("checkpoint-every", 0, "coordinator: checkpoint cadence in sampling epochs (0 = every epoch, negative = off)")
	resume := flag.Bool("resume", false, "worker: keep retrying the join for one -timeout window (for respawned workers racing the coordinator's recovery)")
	crashAfterFrames := flag.Int("crash-after-frames", 0, "fault injection — SIGKILL this process before its Nth protocol frame (0 = off)")
	mesh := flag.Bool("mesh", false, "full-mesh data plane: workers exchange round batches directly (must be set on every process)")
	peerListen := flag.String("peer-listen", "", "worker, with -mesh: peer listener bind address (default 127.0.0.1:0; use a routable host:0 for multi-machine runs)")
	failover := flag.Bool("failover", false, "coordinator failover: survive coordinator death by electing a worker to adopt shard 0 (must be set on every process)")
	failoverListen := flag.String("failover-listen", "", "worker, with -failover: standby hub listener bind address (default 127.0.0.1:0; use a routable host:0 for multi-machine runs)")
	ckptOut := flag.String("ckpt-out", "", "coordinator: persist each durable checkpoint to this file (atomically) for later -resume-ckpt")
	resumeCkpt := flag.String("resume-ckpt", "", "coordinator: restart the run from this checkpoint file (any -shards works; output is bit-identical)")
	flag.Parse()

	if *shards < 1 {
		log.Fatal("-shards is required (≥ 1)")
	}
	// Validate every address-shaped flag up front, so a typo is a clear
	// flag error instead of a raw dial/listen failure mid-bring-up (or,
	// worse, an undialable peer address some OTHER worker trips over).
	if *listen != "" {
		validateHostPort("-listen", *listen, false)
	}
	if *join != "" {
		validateHostPort("-join", *join, true)
	}
	if *peerListen != "" {
		if !*mesh {
			log.Fatal("-peer-listen only makes sense with -mesh")
		}
		validateHostPort("-peer-listen", *peerListen, true)
	}
	if *failoverListen != "" {
		if !*failover {
			log.Fatal("-failover-listen only makes sense with -failover")
		}
		validateHostPort("-failover-listen", *failoverListen, true)
	}
	if *addrFile != "" {
		if err := netutil.ValidateParentDir("-addr-file", *addrFile); err != nil {
			log.Fatal(err)
		}
	}
	runner, ok := jobRunners[*jobName]
	if !ok {
		log.Fatalf("unknown -job %q; registered jobs: %s", *jobName, strings.Join(dist.JobNames(), ", "))
	}
	params := jobParams{eps: *eps, rho: *rho, depth: *depth, k: *k, seed: *seed}
	switch {
	case *split != "" && *splitOnly:
		g := readGraph(*in)
		splitPartitions(g, *shards, *split)
	case *listen != "":
		runCoordinator(runner, params, *jobName, *in, *parts, *out, *listen, *addrFile, *split,
			*shards, *timeout, *maxRespawns, *ckptEvery, *mesh, *failover,
			*crashAfterFrames, *ckptOut, *resumeCkpt)
	case *join != "":
		runWorker(runner, params, *jobName, *in, *parts, *out, *join, *shard, *shards, *timeout, *resume,
			*crashAfterFrames, *mesh, *peerListen, *failover, *failoverListen, *maxRespawns, *ckptEvery)
	default:
		log.Fatal("one of -listen (coordinator), -join (worker), or -split/-split-only is required")
	}
}

// jobParams carries the job-specific CLI parameters; workers pass them
// too but the values a worker actually runs are adopted from the
// coordinator's broadcast.
type jobParams struct {
	eps, rho float64
	depth    int
	k        int
	seed     uint64
}

// jobRunner runs one registered job on an engine and returns the
// writable output graph (nil on workers, which contribute to the
// coordinator's gather instead) plus the run's ledger and wire bytes.
type jobRunner func(eng *dist.Engine, p jobParams) (*graph.Graph, dist.Stats, int64, error)

// jobRunners is the CLI face of the dist package's job registry: one
// entry per registered job name, each running its typed Job through
// the single dist.Run entry point.
var jobRunners = map[string]jobRunner{
	"sparsify": func(eng *dist.Engine, p jobParams) (*graph.Graph, dist.Stats, int64, error) {
		res, err := dist.Run(eng, dist.SparsifyJob(p.eps, p.rho, dist.SparsifyDefaults(p.depth, p.seed)))
		return res.Output, res.Stats, res.WireBytes, err
	},
	"spanner": func(eng *dist.Engine, p jobParams) (*graph.Graph, dist.Stats, int64, error) {
		res, err := dist.Run(eng, dist.SpannerJob(p.k, p.seed))
		var g *graph.Graph
		if res.Output != nil {
			g = res.Output.G
		}
		return g, res.Stats, res.WireBytes, err
	},
}

// validateHostPort rejects a malformed address flag before any socket
// work (netutil.ValidateHostPort, shared with cmd/sparsifyd), with the
// flag's name in the message. needHost additionally requires a
// non-empty host part: a worker must dial -join somewhere, and a
// -peer-listen host is what the OTHER workers dial — binding every
// interface (":0") would announce an undialable address.
func validateHostPort(flagName, addr string, needHost bool) {
	if err := netutil.ValidateHostPort(flagName, addr, needHost); err != nil {
		log.Fatal(err)
	}
}

func readGraph(in string) *graph.Graph {
	if in == "" {
		log.Fatal("-in is required to read the whole graph")
	}
	f, err := os.Open(in)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	g, err := graphio.Read(f)
	if err != nil {
		log.Fatal(err)
	}
	return g
}

// loadPartition materializes this process's slice of the graph: from
// its partition file when a partition directory is given (the
// partition-aware path — nothing else is read), else by carving the
// whole input graph in memory. Any disagreement between -shards and
// the partition source is a clear error, never a panic.
func loadPartition(in, parts string, shard, shards int) *graph.Partition {
	if parts != "" {
		path := filepath.Join(parts, graphio.PartitionFileName(shard, shards))
		f, err := os.Open(path)
		if err != nil {
			if os.IsNotExist(err) {
				log.Fatalf("%v (was %s split with a different -shards than %d?)", err, parts, shards)
			}
			log.Fatal(err)
		}
		defer f.Close()
		p, err := graphio.ReadPartition(f)
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		if p.Shard != shard || p.Shards != shards {
			log.Fatalf("%s holds shard %d of %d, but this process was started as shard %d of %d",
				path, p.Shard, p.Shards, shard, shards)
		}
		return p
	}
	g := readGraph(in)
	if clamped := graph.ClampShards(g.N, shards); clamped != shards {
		log.Fatalf("-shards %d invalid for the %d-vertex input graph (at most %d)", shards, g.N, clamped)
	}
	return graph.PartitionOf(g, shard, shards)
}

// writeFileAtomic writes data to path via a temp file plus rename
// (netutil.AtomicWriteFile), so a racing reader — a coordinator-waiting
// script polling -addr-file — never observes a half-written file.
func writeFileAtomic(path string, data []byte) error {
	return netutil.AtomicWriteFile(path, data)
}

func splitPartitions(g *graph.Graph, shards int, dir string) {
	if clamped := graph.ClampShards(g.N, shards); clamped != shards {
		log.Fatalf("-shards %d invalid for the %d-vertex input graph (at most %d)", shards, g.N, clamped)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for s := 0; s < shards; s++ {
		p := graph.PartitionOf(g, s, shards)
		path := filepath.Join(dir, graphio.PartitionFileName(s, shards))
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := graphio.WritePartition(f, p); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d incident edges)\n", path, len(p.IDs))
	}
}

// respawnWorker re-execs this binary as a replacement worker for a
// dead shard: same partition source, same job, joining the coordinator
// with -resume so it keeps retrying while recovery tears the old
// connection down. The child is started asynchronously; the engine's
// recovery window tracks the rejoin.
func respawnWorker(jobName, in, parts string, shards int, timeout time.Duration, mesh, failover bool) func(shard int, addr string) {
	return func(shard int, addr string) {
		fmt.Fprintf(os.Stderr, "coordinator: respawning shard %d\n", shard)
		args := []string{
			"-join", addr, "-shard", strconv.Itoa(shard), "-shards", strconv.Itoa(shards),
			"-job", jobName, "-timeout", timeout.String(), "-resume",
		}
		if mesh {
			// The replacement must rejoin on the same data plane; it binds
			// a fresh peer listener and announces it as it rejoins.
			args = append(args, "-mesh")
		}
		if failover {
			// The replacement must match the fleet's capability set; it
			// binds a fresh standby listener and announces it as it rejoins.
			args = append(args, "-failover")
		}
		if parts != "" {
			args = append(args, "-parts", parts)
		} else {
			args = append(args, "-in", in)
		}
		cmd := exec.Command(os.Args[0], args...)
		cmd.Stdout = os.Stderr // a worker writes no graph; keep its logs off our stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			log.Fatalf("respawning shard %d: %v", shard, err)
		}
		go func() { _ = cmd.Wait() }() // reap
	}
}

func runCoordinator(runner jobRunner, params jobParams,
	jobName, in, parts, out, listen, addrFile, split string, shards int,
	timeout time.Duration, maxRespawns, ckptEvery int, mesh, failover bool,
	crashAfterFrames int, ckptOut, resumeCkpt string) {
	var part *graph.Partition
	if split != "" {
		// Splitting needs the whole graph anyway; carve shard 0 from it.
		g := readGraph(in)
		splitPartitions(g, shards, split)
		part = graph.PartitionOf(g, 0, shards)
	} else {
		part = loadPartition(in, parts, 0, shards)
	}
	cfg := dist.NetConfig{
		Listen: listen, Shards: shards, Timeout: timeout,
		OnListen: func(addr string) {
			fmt.Fprintf(os.Stderr, "coordinator: shard 0/%d listening on %s (n=%d m=%d, %d incident edges)\n",
				shards, addr, part.N, part.M, len(part.IDs))
			if addrFile != "" {
				if err := writeFileAtomic(addrFile, []byte(addr)); err != nil {
					log.Fatal(err)
				}
			}
		},
		MaxRespawns:     maxRespawns,
		CheckpointEvery: ckptEvery,
		Mesh:            mesh,
		Failover:        failover,
		FailAfterFrames: crashAfterFrames,
	}
	if ckptOut != "" {
		cfg.OnCheckpoint = func(ckpt []byte) {
			if err := writeFileAtomic(ckptOut, ckpt); err != nil {
				log.Fatalf("writing -ckpt-out %s: %v", ckptOut, err)
			}
		}
	}
	if resumeCkpt != "" {
		blob, err := os.ReadFile(resumeCkpt)
		if err != nil {
			log.Fatalf("reading -resume-ckpt: %v", err)
		}
		cfg.Resume = blob
	}
	if maxRespawns > 0 {
		// Respawned workers reload their shard from the same source:
		// the partition directory (pre-split or just written by -split),
		// else the whole input graph.
		partsSrc := parts
		if partsSrc == "" {
			partsSrc = split
		}
		cfg.Respawn = respawnWorker(jobName, in, partsSrc, shards, timeout, mesh, failover)
	}
	spec := dist.Net(cfg)
	start := time.Now()
	g, stats, wireBytes, err := runner(dist.NewPartitionEngine(spec, part), params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "done in %v: n=%d m=%d -> m=%d\n",
		time.Since(start).Round(time.Millisecond), part.N, part.M, g.M())
	fmt.Fprintf(os.Stderr, "ledger: %s\n", stats)
	fmt.Fprintf(os.Stderr, "wire: %d bytes across %d processes (model cross-shard: %d words)\n",
		wireBytes, shards, stats.CrossShardWords)
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := graphio.Write(w, g); err != nil {
		log.Fatal(err)
	}
}

func runWorker(runner jobRunner, params jobParams,
	jobName, in, parts, out, join string, shard, shards int, timeout time.Duration, resume bool,
	crashAfterFrames int, mesh bool, peerListen string, failover bool, failoverListen string,
	maxRespawns, ckptEvery int) {
	if shard < 1 || shard >= shards {
		log.Fatalf("-shard must be in [1,%d)", shards)
	}
	part := loadPartition(in, parts, shard, shards)
	wcfg := dist.WorkerConfig{Join: join, Shard: shard, Shards: shards, Timeout: timeout,
		FailAfterFrames: crashAfterFrames, Mesh: mesh, PeerListen: peerListen}
	if resume {
		wcfg.JoinRetry = timeout
	}
	if failover {
		wcfg.Failover = true
		wcfg.FailoverListen = failoverListen
		wcfg.MaxRespawns = maxRespawns
		wcfg.CheckpointEvery = ckptEvery
		wcfg.LoadPartition = func(s int) (*graph.Partition, error) {
			return loadPartition(in, parts, s, shards), nil
		}
		wcfg.Respawn = respawnWorker(jobName, in, parts, shards, timeout, mesh, failover)
	}
	spec := dist.Worker(wcfg)
	fmt.Fprintf(os.Stderr, "worker: shard %d/%d joining %s (%d incident edges, vertices [%d,%d))\n",
		shard, shards, join, len(part.IDs), part.Lo, part.Hi)
	g, stats, wireBytes, err := runner(dist.NewPartitionEngine(spec, part), params)
	if err != nil {
		log.Fatal(err)
	}
	if g != nil {
		// This worker was elected coordinator after a failover and holds
		// the assembled output; write it exactly as a born coordinator
		// would.
		fmt.Fprintf(os.Stderr, "worker %d finished as elected coordinator: n=%d m=%d -> m=%d (wire: %d bytes)\n",
			shard, part.N, part.M, g.M(), wireBytes)
		w := os.Stdout
		if out != "" {
			f, err := os.Create(out)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := graphio.Write(w, g); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "worker %d done; ledger: %s\n", shard, stats)
}
