package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graphio"
)

// The multi-process smoke test re-executes this test binary as the
// distworker CLI (TestMain dispatches to main when the child marker is
// set), so real OS processes — one coordinator, three workers — talk
// over real loopback sockets with no build step.

const childEnv = "DISTWORKER_CHILD"

func TestMain(m *testing.M) {
	if os.Getenv(childEnv) == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func child(t *testing.T, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), childEnv+"=1")
	cmd.Stderr = os.Stderr
	return cmd
}

// TestMultiProcessSparsify: a coordinator and three worker processes,
// each loading only its partition file, produce output edge-identical
// to the single-process in-memory run.
func TestMultiProcessSparsify(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test skipped in -short mode")
	}
	const (
		shards = 4
		seed   = 11
		eps    = "0.75"
		rho    = "4"
	)
	dir := t.TempDir()
	g := gen.Gnp(600, 0.03, 9)
	graphPath := filepath.Join(dir, "graph.txt")
	f, err := os.Create(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := graphio.Write(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Pre-split so that the worker processes exercise ReadPartition —
	// they never see the whole graph.
	partsDir := filepath.Join(dir, "parts")
	splitCmd := child(t, "-in", graphPath, "-shards", "4", "-split", partsDir, "-split-only")
	if err := splitCmd.Run(); err != nil {
		t.Fatalf("split: %v", err)
	}

	outPath := filepath.Join(dir, "sparse.txt")
	addrPath := filepath.Join(dir, "addr")
	coord := child(t, "-listen", "127.0.0.1:0", "-shards", "4", "-parts", partsDir,
		"-eps", eps, "-rho", rho, "-seed", "11", "-out", outPath, "-addr-file", addrPath,
		"-timeout", "30s")
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	defer coord.Process.Kill()

	addr := waitForFile(t, addrPath, 15*time.Second)
	workers := make([]*exec.Cmd, 0, shards-1)
	for s := 1; s < shards; s++ {
		w := child(t, "-join", addr, "-shards", "4", "-shard", strconv.Itoa(s), "-parts", partsDir,
			"-timeout", "30s")
		if err := w.Start(); err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
	}
	for i, w := range workers {
		if err := w.Wait(); err != nil {
			t.Fatalf("worker %d: %v", i+1, err)
		}
	}
	if err := coord.Wait(); err != nil {
		t.Fatalf("coordinator: %v", err)
	}

	of, err := os.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer of.Close()
	got, err := graphio.Read(of)
	if err != nil {
		t.Fatal(err)
	}
	ref := dist.Sparsify(g, 0.75, 4, 0, seed)
	if got.N != ref.G.N || got.M() != ref.G.M() {
		t.Fatalf("multi-process %v vs in-memory %v", got, ref.G)
	}
	for i := range ref.G.Edges {
		if got.Edges[i] != ref.G.Edges[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, got.Edges[i], ref.G.Edges[i])
		}
	}
}

func waitForFile(t *testing.T, path string, timeout time.Duration) string {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		b, err := os.ReadFile(path)
		if err == nil && len(b) > 0 {
			return strings.TrimSpace(string(b))
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("%s did not appear within %v", path, timeout)
	return ""
}
