package main

import (
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graphio"
)

// The multi-process smoke test re-executes this test binary as the
// distworker CLI (TestMain dispatches to main when the child marker is
// set), so real OS processes — one coordinator, three workers — talk
// over real loopback sockets with no build step.

const childEnv = "DISTWORKER_CHILD"

func TestMain(m *testing.M) {
	if os.Getenv(childEnv) == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func child(t *testing.T, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), childEnv+"=1")
	cmd.Stderr = os.Stderr
	return cmd
}

// childCapture is child without the inherited stderr, for tests that
// assert on the CLI's error output.
func childCapture(t *testing.T, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), childEnv+"=1")
	return cmd
}

// TestMultiProcessSparsify: a coordinator and three worker processes,
// each loading only its partition file, produce output edge-identical
// to the single-process in-memory run.
func TestMultiProcessSparsify(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test skipped in -short mode")
	}
	const (
		shards = 4
		seed   = 11
		eps    = "0.75"
		rho    = "4"
	)
	dir := t.TempDir()
	g := gen.Gnp(600, 0.03, 9)
	graphPath := filepath.Join(dir, "graph.txt")
	f, err := os.Create(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := graphio.Write(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Pre-split so that the worker processes exercise ReadPartition —
	// they never see the whole graph.
	partsDir := filepath.Join(dir, "parts")
	splitCmd := child(t, "-in", graphPath, "-shards", "4", "-split", partsDir, "-split-only")
	if err := splitCmd.Run(); err != nil {
		t.Fatalf("split: %v", err)
	}

	outPath := filepath.Join(dir, "sparse.txt")
	addrPath := filepath.Join(dir, "addr")
	coord := child(t, "-listen", "127.0.0.1:0", "-shards", "4", "-parts", partsDir,
		"-eps", eps, "-rho", rho, "-seed", "11", "-out", outPath, "-addr-file", addrPath,
		"-timeout", "30s")
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	defer coord.Process.Kill()

	addr := waitForFile(t, addrPath, 15*time.Second)
	workers := make([]*exec.Cmd, 0, shards-1)
	for s := 1; s < shards; s++ {
		w := child(t, "-join", addr, "-shards", "4", "-shard", strconv.Itoa(s), "-parts", partsDir,
			"-timeout", "30s")
		if err := w.Start(); err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
	}
	for i, w := range workers {
		if err := w.Wait(); err != nil {
			t.Fatalf("worker %d: %v", i+1, err)
		}
	}
	if err := coord.Wait(); err != nil {
		t.Fatalf("coordinator: %v", err)
	}

	of, err := os.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer of.Close()
	got, err := graphio.Read(of)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(seed)
	ref, err := dist.Run(dist.NewEngine(dist.Mem(), g), dist.SparsifyJob(0.75, 4, cfg))
	if err != nil {
		t.Fatal(err)
	}
	if got.N != ref.Output.N || got.M() != ref.Output.M() {
		t.Fatalf("multi-process %v vs in-memory %v", got, ref.Output)
	}
	for i := range ref.Output.Edges {
		if got.Edges[i] != ref.Output.Edges[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, got.Edges[i], ref.Output.Edges[i])
		}
	}
}

// TestMultiProcessKillRecover is the fault-tolerance ground truth at
// the OS level: a worker process SIGKILLs itself mid-run (the honest
// stand-in for kill -9, preemption, or OOM), the coordinator respawns
// it from its partition file via -max-respawns, and the written output
// is bit-identical to the single-process in-memory run.
func TestMultiProcessKillRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test skipped in -short mode")
	}
	const (
		shards = 3
		seed   = 11
	)
	dir := t.TempDir()
	g := gen.Gnp(600, 0.03, 9)
	graphPath := filepath.Join(dir, "graph.txt")
	f, err := os.Create(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := graphio.Write(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()
	partsDir := filepath.Join(dir, "parts")
	if err := child(t, "-in", graphPath, "-shards", "3", "-split", partsDir, "-split-only").Run(); err != nil {
		t.Fatalf("split: %v", err)
	}

	outPath := filepath.Join(dir, "sparse.txt")
	addrPath := filepath.Join(dir, "addr")
	coord := childCapture(t, "-listen", "127.0.0.1:0", "-shards", "3", "-parts", partsDir,
		"-eps", "0.75", "-rho", "4", "-seed", "11", "-out", outPath, "-addr-file", addrPath,
		"-timeout", "30s", "-max-respawns", "2")
	var coordLog strings.Builder
	coord.Stderr = &coordLog
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	defer coord.Process.Kill()

	addr := waitForFile(t, addrPath, 15*time.Second)
	healthy := child(t, "-join", addr, "-shards", "3", "-shard", "1", "-parts", partsDir, "-timeout", "30s")
	if err := healthy.Start(); err != nil {
		t.Fatal(err)
	}
	doomed := child(t, "-join", addr, "-shards", "3", "-shard", "2", "-parts", partsDir,
		"-timeout", "30s", "-crash-after-frames", "60")
	if err := doomed.Start(); err != nil {
		t.Fatal(err)
	}
	if err := doomed.Wait(); err == nil {
		t.Fatal("doomed worker exited cleanly; fault injection never fired")
	}
	if err := healthy.Wait(); err != nil {
		t.Fatalf("surviving worker: %v\ncoordinator log:\n%s", err, coordLog.String())
	}
	if err := coord.Wait(); err != nil {
		t.Fatalf("coordinator: %v\nlog:\n%s", err, coordLog.String())
	}
	if !strings.Contains(coordLog.String(), "respawning shard 2") {
		t.Fatalf("coordinator never reported the respawn:\n%s", coordLog.String())
	}

	of, err := os.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer of.Close()
	got, err := graphio.Read(of)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := dist.Run(dist.NewEngine(dist.Mem(), g), dist.SparsifyJob(0.75, 4, core.DefaultConfig(seed)))
	if err != nil {
		t.Fatal(err)
	}
	if got.N != ref.Output.N || got.M() != ref.Output.M() {
		t.Fatalf("recovered run %v vs in-memory %v", got, ref.Output)
	}
	for i := range ref.Output.Edges {
		if got.Edges[i] != ref.Output.Edges[i] {
			t.Fatalf("recovered edge %d differs: %+v vs %+v", i, got.Edges[i], ref.Output.Edges[i])
		}
	}
}

// TestMultiProcessMeshSparsify: the -mesh flag end to end — real OS
// processes bring up the full-mesh data plane (each worker binds a
// peer listener, announces it, and dials its lower-numbered peers) and
// the written output is still edge-identical to the in-memory run.
// Four shards, so every worker holds two direct links.
func TestMultiProcessMeshSparsify(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test skipped in -short mode")
	}
	const (
		shards = 4
		seed   = 11
	)
	dir := t.TempDir()
	g := gen.Gnp(600, 0.03, 9)
	graphPath := filepath.Join(dir, "graph.txt")
	f, err := os.Create(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := graphio.Write(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()
	partsDir := filepath.Join(dir, "parts")
	if err := child(t, "-in", graphPath, "-shards", "4", "-split", partsDir, "-split-only").Run(); err != nil {
		t.Fatalf("split: %v", err)
	}

	outPath := filepath.Join(dir, "sparse.txt")
	addrPath := filepath.Join(dir, "addr")
	coord := child(t, "-listen", "127.0.0.1:0", "-shards", "4", "-parts", partsDir, "-mesh",
		"-eps", "0.75", "-rho", "4", "-seed", "11", "-out", outPath, "-addr-file", addrPath,
		"-timeout", "30s")
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	defer coord.Process.Kill()

	addr := waitForFile(t, addrPath, 15*time.Second)
	workers := make([]*exec.Cmd, 0, shards-1)
	for s := 1; s < shards; s++ {
		w := child(t, "-join", addr, "-shards", "4", "-shard", strconv.Itoa(s), "-parts", partsDir,
			"-mesh", "-timeout", "30s")
		if err := w.Start(); err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
	}
	for i, w := range workers {
		if err := w.Wait(); err != nil {
			t.Fatalf("worker %d: %v", i+1, err)
		}
	}
	if err := coord.Wait(); err != nil {
		t.Fatalf("coordinator: %v", err)
	}

	of, err := os.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer of.Close()
	got, err := graphio.Read(of)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := dist.Run(dist.NewEngine(dist.Mem(), g), dist.SparsifyJob(0.75, 4, core.DefaultConfig(seed)))
	if err != nil {
		t.Fatal(err)
	}
	if got.N != ref.Output.N || got.M() != ref.Output.M() {
		t.Fatalf("mesh multi-process %v vs in-memory %v", got, ref.Output)
	}
	for i := range ref.Output.Edges {
		if got.Edges[i] != ref.Output.Edges[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, got.Edges[i], ref.Output.Edges[i])
		}
	}
}

// TestMultiProcessMeshKillRecover: kill -9 under the mesh topology —
// the dead worker takes its direct links down with it, the survivors
// unwind to the coordinator's rollback, the respawned process (re-exec
// inherits -mesh) announces a FRESH peer listener as it rejoins, and
// the rebuilt mesh replays to a bit-identical output.
func TestMultiProcessMeshKillRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test skipped in -short mode")
	}
	const (
		shards = 3
		seed   = 11
	)
	dir := t.TempDir()
	g := gen.Gnp(600, 0.03, 9)
	graphPath := filepath.Join(dir, "graph.txt")
	f, err := os.Create(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := graphio.Write(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()
	partsDir := filepath.Join(dir, "parts")
	if err := child(t, "-in", graphPath, "-shards", "3", "-split", partsDir, "-split-only").Run(); err != nil {
		t.Fatalf("split: %v", err)
	}

	outPath := filepath.Join(dir, "sparse.txt")
	addrPath := filepath.Join(dir, "addr")
	coord := childCapture(t, "-listen", "127.0.0.1:0", "-shards", "3", "-parts", partsDir, "-mesh",
		"-eps", "0.75", "-rho", "4", "-seed", "11", "-out", outPath, "-addr-file", addrPath,
		"-timeout", "30s", "-max-respawns", "2")
	var coordLog strings.Builder
	coord.Stderr = &coordLog
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	defer coord.Process.Kill()

	addr := waitForFile(t, addrPath, 15*time.Second)
	healthy := child(t, "-join", addr, "-shards", "3", "-shard", "1", "-parts", partsDir,
		"-mesh", "-timeout", "30s")
	if err := healthy.Start(); err != nil {
		t.Fatal(err)
	}
	doomed := child(t, "-join", addr, "-shards", "3", "-shard", "2", "-parts", partsDir,
		"-mesh", "-timeout", "30s", "-crash-after-frames", "60")
	if err := doomed.Start(); err != nil {
		t.Fatal(err)
	}
	if err := doomed.Wait(); err == nil {
		t.Fatal("doomed worker exited cleanly; fault injection never fired")
	}
	if err := healthy.Wait(); err != nil {
		t.Fatalf("surviving worker: %v\ncoordinator log:\n%s", err, coordLog.String())
	}
	if err := coord.Wait(); err != nil {
		t.Fatalf("coordinator: %v\nlog:\n%s", err, coordLog.String())
	}
	if !strings.Contains(coordLog.String(), "respawning shard 2") {
		t.Fatalf("coordinator never reported the respawn:\n%s", coordLog.String())
	}

	of, err := os.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer of.Close()
	got, err := graphio.Read(of)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := dist.Run(dist.NewEngine(dist.Mem(), g), dist.SparsifyJob(0.75, 4, core.DefaultConfig(seed)))
	if err != nil {
		t.Fatal(err)
	}
	if got.N != ref.Output.N || got.M() != ref.Output.M() {
		t.Fatalf("recovered mesh run %v vs in-memory %v", got, ref.Output)
	}
	for i := range ref.Output.Edges {
		if got.Edges[i] != ref.Output.Edges[i] {
			t.Fatalf("recovered edge %d differs: %+v vs %+v", i, got.Edges[i], ref.Output.Edges[i])
		}
	}
}

// TestAddressFlagValidation: a typo'd address flag fails before any
// socket work, with the flag's name and the expected shape in the
// message — not a raw dial failure mid-bring-up.
func TestAddressFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want []string
	}{
		{"listen-no-port", []string{"-listen", "127.0.0.1", "-shards", "2", "-in", "g.txt"},
			[]string{"-listen", "host:port"}},
		{"join-bad-port", []string{"-join", "127.0.0.1:notaport", "-shards", "2", "-shard", "1", "-in", "g.txt"},
			[]string{"-join", "not a valid port"}},
		{"join-no-host", []string{"-join", ":9000", "-shards", "2", "-shard", "1", "-in", "g.txt"},
			[]string{"-join", "host"}},
		{"peer-listen-no-host", []string{"-join", "127.0.0.1:9000", "-shards", "3", "-shard", "1",
			"-mesh", "-peer-listen", ":0", "-in", "g.txt"},
			[]string{"-peer-listen", "host"}},
		{"peer-listen-without-mesh", []string{"-join", "127.0.0.1:9000", "-shards", "3", "-shard", "1",
			"-peer-listen", "127.0.0.1:0", "-in", "g.txt"},
			[]string{"-peer-listen", "-mesh"}},
		{"addr-file-missing-dir", []string{"-listen", "127.0.0.1:0", "-shards", "2", "-in", "g.txt",
			"-addr-file", "/no/such/dir/addr"},
			[]string{"-addr-file", "does not exist"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := childCapture(t, tc.args...).CombinedOutput()
			if err == nil {
				t.Fatalf("bad address accepted: %v", tc.args)
			}
			for _, w := range tc.want {
				if !strings.Contains(string(out), w) {
					t.Fatalf("error does not mention %q:\n%s", w, out)
				}
			}
		})
	}
}

func waitForFile(t *testing.T, path string, timeout time.Duration) string {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		b, err := os.ReadFile(path)
		if err == nil && len(b) > 0 {
			return strings.TrimSpace(string(b))
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("%s did not appear within %v", path, timeout)
	return ""
}

// TestUnknownJobName: an unregistered -job fails fast and tells the
// operator what IS registered.
func TestUnknownJobName(t *testing.T) {
	cmd := childCapture(t, "-job", "clustering", "-shards", "2", "-listen", "127.0.0.1:0", "-in", "nowhere.txt")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatal("unknown -job accepted")
	}
	s := string(out)
	if !strings.Contains(s, `"clustering"`) || !strings.Contains(s, "spanner") || !strings.Contains(s, "sparsify") {
		t.Fatalf("error does not list the registered jobs: %s", s)
	}
}

// TestShardCountMismatchIsClear: pointing a coordinator at a partition
// directory split for a different shard count must produce a clear
// error (not a panic, not a hang).
func TestShardCountMismatchIsClear(t *testing.T) {
	dir := t.TempDir()
	g := gen.Gnp(120, 0.1, 5)
	graphPath := filepath.Join(dir, "graph.txt")
	f, err := os.Create(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := graphio.Write(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()
	partsDir := filepath.Join(dir, "parts")
	if err := child(t, "-in", graphPath, "-shards", "4", "-split", partsDir, "-split-only").Run(); err != nil {
		t.Fatalf("split: %v", err)
	}
	cmd := childCapture(t, "-listen", "127.0.0.1:0", "-shards", "3", "-parts", partsDir, "-timeout", "5s")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatal("mismatched -shards accepted")
	}
	s := string(out)
	if !strings.Contains(s, "-shards") || strings.Contains(s, "panic") {
		t.Fatalf("mismatch not reported clearly: %s", s)
	}
	// A worker asked for a shard id outside the split must fail clearly
	// too (this used to panic inside the partition carve).
	cmd = childCapture(t, "-join", "127.0.0.1:1", "-shards", "200", "-shard", "150", "-in", graphPath, "-timeout", "2s")
	out, err = cmd.CombinedOutput()
	if err == nil {
		t.Fatal("out-of-range shard accepted")
	}
	if s := string(out); strings.Contains(s, "panic") {
		t.Fatalf("out-of-range shard panicked instead of erroring: %s", s)
	}
}

// TestAddrFileAtomicity: the -addr-file appears via rename, so no
// reader can ever observe a partially written address. The test pins
// the mechanism: no temp-file residue is left next to the final file,
// and the file content is a complete dialable address.
func TestAddrFileAtomicity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test skipped in -short mode")
	}
	dir := t.TempDir()
	g := gen.Gnp(120, 0.1, 5)
	graphPath := filepath.Join(dir, "graph.txt")
	f, err := os.Create(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := graphio.Write(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()
	addrPath := filepath.Join(dir, "addr")
	coord := child(t, "-listen", "127.0.0.1:0", "-shards", "2", "-in", graphPath,
		"-eps", "0.75", "-rho", "4", "-seed", "7", "-out", filepath.Join(dir, "out.txt"),
		"-addr-file", addrPath, "-timeout", "30s")
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	defer coord.Process.Kill()
	addr := waitForFile(t, addrPath, 15*time.Second)
	if _, _, err := net.SplitHostPort(addr); err != nil {
		t.Fatalf("addr file holds %q, not a host:port: %v", addr, err)
	}
	if fi, err := os.Stat(addrPath); err != nil {
		t.Fatal(err)
	} else if fi.Mode().Perm() != 0o644 {
		t.Fatalf("addr file mode %v, want 0644 (world-readable like a plain WriteFile)", fi.Mode().Perm())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file %s left beside the addr file", e.Name())
		}
	}
	w := child(t, "-join", addr, "-shards", "2", "-shard", "1", "-in", graphPath, "-timeout", "30s")
	if err := w.Run(); err != nil {
		t.Fatalf("worker: %v", err)
	}
	if err := coord.Wait(); err != nil {
		t.Fatalf("coordinator: %v", err)
	}
}

// coordinatorKillDrill is the coordinator-failover ground truth at the
// OS level: the COORDINATOR process SIGKILLs itself mid-run
// (-crash-after-frames with -listen), the lowest live shard is elected
// and adopts shard 0 from the broadcast checkpoint, re-execs this
// binary to refill its vacated shard, and writes the assembled output
// to ITS -out — bit-identical to the single-process in-memory run,
// with an identical ledger.
func coordinatorKillDrill(t *testing.T, mesh bool) {
	if testing.Short() {
		t.Skip("multi-process test skipped in -short mode")
	}
	const (
		shards = 3
		seed   = 11
	)
	dir := t.TempDir()
	g := gen.Gnp(600, 0.03, 9)
	graphPath := filepath.Join(dir, "graph.txt")
	f, err := os.Create(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := graphio.Write(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()
	partsDir := filepath.Join(dir, "parts")
	if err := child(t, "-in", graphPath, "-shards", "3", "-split", partsDir, "-split-only").Run(); err != nil {
		t.Fatalf("split: %v", err)
	}

	meshArgs := func(args []string) []string {
		if mesh {
			args = append(args, "-mesh")
		}
		return args
	}
	addrPath := filepath.Join(dir, "addr")
	coord := childCapture(t, meshArgs([]string{
		"-listen", "127.0.0.1:0", "-shards", "3", "-parts", partsDir,
		"-eps", "0.75", "-rho", "4", "-seed", "11", "-out", filepath.Join(dir, "coord.txt"),
		"-addr-file", addrPath, "-timeout", "30s", "-failover", "-checkpoint-every", "1",
		"-crash-after-frames", "60"})...)
	var coordLog strings.Builder
	coord.Stderr = &coordLog
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	defer coord.Process.Kill()

	addr := waitForFile(t, addrPath, 15*time.Second)
	outPaths := make([]string, shards)
	logs := make([]*strings.Builder, shards)
	workers := make([]*exec.Cmd, shards)
	for s := 1; s < shards; s++ {
		outPaths[s] = filepath.Join(dir, "worker"+strconv.Itoa(s)+".txt")
		w := childCapture(t, meshArgs([]string{
			"-join", addr, "-shards", "3", "-shard", strconv.Itoa(s), "-parts", partsDir,
			"-timeout", "30s", "-failover", "-checkpoint-every", "1", "-max-respawns", "2",
			"-out", outPaths[s]})...)
		logs[s] = &strings.Builder{}
		w.Stderr = logs[s]
		if err := w.Start(); err != nil {
			t.Fatal(err)
		}
		workers[s] = w
	}
	// The coordinator SIGKILLs itself before its 60th frame: its exit
	// status must be the signal, not a clean run.
	if err := coord.Wait(); err == nil {
		t.Fatalf("doomed coordinator exited cleanly; fault injection never fired\nlog:\n%s", coordLog.String())
	}
	for s := 1; s < shards; s++ {
		if err := workers[s].Wait(); err != nil {
			t.Fatalf("worker %d: %v\nits log:\n%s\ncoordinator log:\n%s", s, err, logs[s], coordLog.String())
		}
	}
	// Shard 1 — the lowest live shard — must have been elected, respawned
	// its vacated slot, and written the output.
	if !strings.Contains(logs[1].String(), "respawning shard 1") {
		t.Fatalf("elected worker never respawned its vacated shard:\n%s", logs[1])
	}
	if !strings.Contains(logs[1].String(), "finished as elected coordinator") {
		t.Fatalf("worker 1 never reported the adoption:\n%s", logs[1])
	}
	of, err := os.Open(outPaths[1])
	if err != nil {
		t.Fatalf("elected worker wrote no output: %v", err)
	}
	defer of.Close()
	got, err := graphio.Read(of)
	if err != nil {
		t.Fatal(err)
	}
	// Reference on the same plane at the same shard count, so the FULL
	// ledger (CrossShard split included) is comparable.
	refSpec := dist.Loopback(shards)
	if mesh {
		refSpec = dist.Mesh(shards)
	}
	ref, err := dist.Run(dist.NewEngine(refSpec, g), dist.SparsifyJob(0.75, 4, core.DefaultConfig(seed)))
	if err != nil {
		t.Fatal(err)
	}
	if got.N != ref.Output.N || got.M() != ref.Output.M() {
		t.Fatalf("failed-over run %v vs failure-free %v", got, ref.Output)
	}
	for i := range ref.Output.Edges {
		if got.Edges[i] != ref.Output.Edges[i] {
			t.Fatalf("failed-over edge %d differs: %+v vs %+v", i, got.Edges[i], ref.Output.Edges[i])
		}
	}
	// The ledger the elected coordinator reports must equal the
	// failure-free one — the equivalence guarantee is failure-transparent.
	if want := "ledger: " + ref.Stats.String(); !strings.Contains(logs[1].String(), want) {
		t.Fatalf("elected worker's ledger diverges from the failure-free run (want %q):\n%s", want, logs[1])
	}
}

// TestMultiProcessCoordinatorKillRecover: kill -9 the coordinator on
// the star data plane and the fleet finishes with bit-identical output.
func TestMultiProcessCoordinatorKillRecover(t *testing.T) {
	coordinatorKillDrill(t, false)
}

// TestMultiProcessMeshCoordinatorKillRecover: the same drill on the
// full-mesh data plane — the survivors' direct links die with the hub,
// and the re-formed fleet rebuilds the mesh under the new coordinator.
func TestMultiProcessMeshCoordinatorKillRecover(t *testing.T) {
	coordinatorKillDrill(t, true)
}

// TestMultiProcessElasticResize: -ckpt-out on a 3-shard fleet, then
// -resume-ckpt on a 2-shard fleet — the resized, resumed run writes
// output bit-identical to the in-memory reference (replay is
// partition-independent; only the Stats CrossShard split may differ).
func TestMultiProcessElasticResize(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test skipped in -short mode")
	}
	const seed = 11
	dir := t.TempDir()
	g := gen.Gnp(600, 0.03, 9)
	graphPath := filepath.Join(dir, "graph.txt")
	f, err := os.Create(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := graphio.Write(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()

	ckptPath := filepath.Join(dir, "run.ckpt")
	runFleet := func(shards int, outName string, extra ...string) *os.File {
		t.Helper()
		addrPath := filepath.Join(dir, "addr"+strconv.Itoa(shards))
		outPath := filepath.Join(dir, outName)
		args := append([]string{"-listen", "127.0.0.1:0", "-shards", strconv.Itoa(shards),
			"-in", graphPath, "-eps", "0.75", "-rho", "4", "-seed", "11",
			"-out", outPath, "-addr-file", addrPath, "-timeout", "30s", "-checkpoint-every", "1"}, extra...)
		coord := child(t, args...)
		if err := coord.Start(); err != nil {
			t.Fatal(err)
		}
		defer coord.Process.Kill()
		addr := waitForFile(t, addrPath, 15*time.Second)
		for s := 1; s < shards; s++ {
			w := child(t, "-join", addr, "-shards", strconv.Itoa(shards), "-shard", strconv.Itoa(s),
				"-in", graphPath, "-timeout", "30s")
			if err := w.Start(); err != nil {
				t.Fatal(err)
			}
			defer func(s int, w *exec.Cmd) {
				if err := w.Wait(); err != nil {
					t.Fatalf("worker %d/%d: %v", s, shards, err)
				}
			}(s, w)
		}
		if err := coord.Wait(); err != nil {
			t.Fatalf("%d-shard coordinator: %v", shards, err)
		}
		of, err := os.Open(outPath)
		if err != nil {
			t.Fatal(err)
		}
		return of
	}

	ref, err := dist.Run(dist.NewEngine(dist.Mem(), g), dist.SparsifyJob(0.75, 4, core.DefaultConfig(seed)))
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, of *os.File) {
		t.Helper()
		defer of.Close()
		got, err := graphio.Read(of)
		if err != nil {
			t.Fatal(err)
		}
		if got.N != ref.Output.N || got.M() != ref.Output.M() {
			t.Fatalf("%s run %v vs in-memory %v", name, got, ref.Output)
		}
		for i := range ref.Output.Edges {
			if got.Edges[i] != ref.Output.Edges[i] {
				t.Fatalf("%s edge %d differs: %+v vs %+v", name, i, got.Edges[i], ref.Output.Edges[i])
			}
		}
	}

	check("3-shard checkpointing", runFleet(3, "sparse3.txt", "-ckpt-out", ckptPath))
	if _, err := os.Stat(ckptPath); err != nil {
		t.Fatalf("-ckpt-out wrote nothing: %v", err)
	}
	check("2-shard resumed", runFleet(2, "sparse2.txt", "-resume-ckpt", ckptPath))
}

// TestMultiProcessSpannerJob: the -job flag really switches the
// algorithm — a coordinator and a worker process run the spanner job
// end to end and the written subgraph matches the in-memory spanner.
func TestMultiProcessSpannerJob(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test skipped in -short mode")
	}
	dir := t.TempDir()
	g := gen.Gnp(300, 0.05, 9)
	graphPath := filepath.Join(dir, "graph.txt")
	f, err := os.Create(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := graphio.Write(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()
	outPath := filepath.Join(dir, "spanner.txt")
	addrPath := filepath.Join(dir, "addr")
	coord := child(t, "-listen", "127.0.0.1:0", "-shards", "2", "-in", graphPath,
		"-job", "spanner", "-seed", "21", "-out", outPath, "-addr-file", addrPath, "-timeout", "30s")
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	defer coord.Process.Kill()
	addr := waitForFile(t, addrPath, 15*time.Second)
	w := child(t, "-join", addr, "-shards", "2", "-shard", "1", "-in", graphPath,
		"-job", "spanner", "-timeout", "30s")
	if err := w.Run(); err != nil {
		t.Fatalf("worker: %v", err)
	}
	if err := coord.Wait(); err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	of, err := os.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer of.Close()
	got, err := graphio.Read(of)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := dist.Run(dist.NewEngine(dist.Mem(), g), dist.SpannerJob(0, 21))
	if err != nil {
		t.Fatal(err)
	}
	if got.M() != ref.Output.G.M() {
		t.Fatalf("spanner size %d vs in-memory %d", got.M(), ref.Output.G.M())
	}
	for i := range ref.Output.G.Edges {
		if got.Edges[i] != ref.Output.G.Edges[i] {
			t.Fatalf("spanner edge %d differs", i)
		}
	}
}
