// Command gen emits synthetic graphs in the text edge-list format, for
// feeding the sparsify/spanner/solve tools.
//
// Usage:
//
//	gen -kind gnp -n 1000 -p 0.05 [-seed 1]          > g.txt
//	gen -kind grid2d -rows 30 -cols 30               > g.txt
//	gen -kind complete -n 300                        > g.txt
//	gen -kind barbell -k 40 -bridge 2                > g.txt
//	gen -kind affinity -rows 32 -cols 32 -radius 4   > g.txt
//	gen -kind regular -n 1000 -d 8                   > g.txt
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/graphio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gen: ")
	kind := flag.String("kind", "gnp", "gnp|gnm|grid2d|grid3d|torus|complete|path|cycle|star|barbell|pa|regular|affinity")
	n := flag.Int("n", 1000, "vertex count (gnp/gnm/complete/path/cycle/star/pa/regular)")
	m := flag.Int("m", 5000, "edge count (gnm)")
	p := flag.Float64("p", 0.01, "edge probability (gnp)")
	d := flag.Int("d", 8, "degree (regular) / attachments (pa)")
	rows := flag.Int("rows", 30, "grid rows")
	cols := flag.Int("cols", 30, "grid cols")
	depth := flag.Int("depth", 10, "grid3d depth")
	k := flag.Int("k", 40, "barbell clique size")
	bridge := flag.Int("bridge", 1, "barbell bridge length")
	radius := flag.Int("radius", 4, "affinity neighborhood radius")
	sigma := flag.Float64("sigma", 0.2, "affinity contrast scale")
	wlo := flag.Float64("wlo", 0, "random weight lower bound (0 = unit weights)")
	whi := flag.Float64("whi", 0, "random weight upper bound")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	var g *graph.Graph
	switch *kind {
	case "gnp":
		g = gen.Gnp(*n, *p, *seed)
	case "gnm":
		g = gen.Gnm(*n, *m, *seed)
	case "grid2d":
		g = gen.Grid2D(*rows, *cols)
	case "grid3d":
		g = gen.Grid3D(*rows, *cols, *depth)
	case "torus":
		g = gen.Torus2D(*rows, *cols)
	case "complete":
		g = gen.Complete(*n)
	case "path":
		g = gen.Path(*n)
	case "cycle":
		g = gen.Cycle(*n)
	case "star":
		g = gen.Star(*n)
	case "barbell":
		g = gen.Barbell(*k, *bridge)
	case "pa":
		g = gen.PreferentialAttachment(*n, *d, *seed)
	case "regular":
		g = gen.RandomRegular(*n, *d, *seed)
	case "affinity":
		g = gen.ImageAffinityRadius(*rows, *cols, *radius, *sigma, *seed)
	default:
		log.Fatalf("unknown kind %q", *kind)
	}
	if *wlo > 0 && *whi >= *wlo {
		g = gen.WithRandomWeights(g, *wlo, *whi, *seed^0xabad1dea)
	}
	fmt.Fprintf(os.Stderr, "generated %s: n=%d m=%d\n", *kind, g.N, g.M())
	if err := graphio.Write(os.Stdout, g); err != nil {
		log.Fatal(err)
	}
}
