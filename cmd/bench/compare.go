package main

// The -compare mode: the CI perf-regression gate over two -json
// reports. `bench -compare old.json new.json` matches experiments by
// table id and fails (exit 1) when the new report regresses wall-clock
// or wireBytes by more than the threshold; a missing experiment or a
// dropped wireBytes column is a schema mismatch (exit 2) — the
// baseline must be refreshed, not silently skipped.
//
// Wall-clock comparisons additionally require the absolute delta to
// exceed -noise-ms: CI runners are not the machine that generated the
// committed baseline, and sub-noise-floor timing deltas on small
// experiments are runner jitter, not regressions. wireBytes is
// deterministic, so it gets no noise floor — one extra byte over the
// threshold is a real protocol change.

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// parseCompareArgs interprets everything after `-compare OLD`: the NEW
// report path plus optional -threshold/-noise-ms in any position (the
// stdlib flag parser stops at the first positional, so `bench -compare
// old.json new.json -noise-ms 2000` leaves them here).
func parseCompareArgs(rest []string, threshold, noiseMs *float64) (string, error) {
	newPath := ""
	takeValue := func(i *int, name string) (string, error) {
		if eq := strings.IndexByte(rest[*i], '='); eq >= 0 {
			return rest[*i][eq+1:], nil
		}
		*i++
		if *i >= len(rest) {
			return "", fmt.Errorf("flag -%s needs a value", name)
		}
		return rest[*i], nil
	}
	for i := 0; i < len(rest); i++ {
		a := rest[i]
		name := strings.TrimLeft(a, "-")
		switch {
		case strings.HasPrefix(a, "-") && strings.HasPrefix(name, "threshold"):
			v, err := takeValue(&i, "threshold")
			if err != nil {
				return "", err
			}
			if _, err := fmt.Sscanf(v, "%g", threshold); err != nil {
				return "", fmt.Errorf("bad -threshold %q", v)
			}
		case strings.HasPrefix(a, "-") && strings.HasPrefix(name, "noise-ms"):
			v, err := takeValue(&i, "noise-ms")
			if err != nil {
				return "", err
			}
			if _, err := fmt.Sscanf(v, "%g", noiseMs); err != nil {
				return "", fmt.Errorf("bad -noise-ms %q", v)
			}
		case strings.HasPrefix(a, "-"):
			return "", fmt.Errorf("unknown flag %s after -compare", a)
		case newPath != "":
			return "", fmt.Errorf("-compare takes exactly one NEW.json, got %q and %q", newPath, a)
		default:
			newPath = a
		}
	}
	if newPath == "" {
		return "", fmt.Errorf("-compare OLD.json needs the NEW.json argument")
	}
	return newPath, nil
}

// compareOutcome is the result of diffing two reports: one line per
// compared quantity, plus the subset that breached the gate.
type compareOutcome struct {
	lines       []string
	regressions []string
}

// loadReport reads and decodes a -json report.
func loadReport(path string) (jsonReport, error) {
	var r jsonReport
	raw, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(raw, &r); err != nil {
		return r, fmt.Errorf("%s: %v", path, err)
	}
	return r, nil
}

// wireBytesColumn sums the wireBytes column of a table, skipping the
// "-" cells of un-wired transports. The second result reports whether
// the table has a wireBytes column at all.
func wireBytesColumn(t *jsonExperiment) (int64, bool, error) {
	col := -1
	for i, h := range t.Table.Header {
		if h == "wireBytes" {
			col = i
			break
		}
	}
	if col < 0 {
		return 0, false, nil
	}
	var sum int64
	for _, row := range t.Table.Rows {
		if col >= len(row) || row[col] == "-" {
			continue
		}
		v, err := strconv.ParseInt(row[col], 10, 64)
		if err != nil {
			return 0, true, fmt.Errorf("%s: bad wireBytes cell %q", t.Table.ID, row[col])
		}
		sum += v
	}
	return sum, true, nil
}

// wireBytesRows extracts the per-row wireBytes values of a table,
// keyed by the row's label cells — every column before "millis" (e.g.
// "net/4", "mesh/4" in E13/E15) — skipping the "-" cells of un-wired
// transports. Returns nil when the table has no wireBytes column.
// Ordered labels come back too, so report lines keep the table's row
// order.
func wireBytesRows(t *jsonExperiment) (map[string]int64, []string) {
	col, labelEnd := -1, 1
	for i, h := range t.Table.Header {
		if h == "wireBytes" {
			col = i
		}
		if h == "millis" {
			labelEnd = i
		}
	}
	if col < 0 {
		return nil, nil
	}
	rows := make(map[string]int64)
	var order []string
	for _, row := range t.Table.Rows {
		if col >= len(row) || labelEnd > len(row) || row[col] == "-" {
			continue
		}
		v, err := strconv.ParseInt(row[col], 10, 64)
		if err != nil {
			continue // the summed gate already reports bad cells
		}
		label := strings.Join(row[:labelEnd], "/")
		if _, dup := rows[label]; !dup {
			order = append(order, label)
		}
		rows[label] = v
	}
	return rows, order
}

// pct formats new-vs-old as a signed percentage.
func pct(oldV, newV float64) string {
	if oldV == 0 {
		if newV == 0 {
			return "+0.0%"
		}
		return "+inf%"
	}
	return fmt.Sprintf("%+.1f%%", 100*(newV-oldV)/oldV)
}

// compareReports diffs newR against oldR. Every experiment in oldR
// must exist in newR (schema mismatch otherwise); experiments only in
// newR are reported but not gated, so adding an experiment does not
// force a synchronized baseline refresh.
func compareReports(oldR, newR jsonReport, threshold, noiseMs float64) (compareOutcome, error) {
	var out compareOutcome
	newByID := make(map[string]*jsonExperiment, len(newR.Experiments))
	for i := range newR.Experiments {
		newByID[newR.Experiments[i].Table.ID] = &newR.Experiments[i]
	}
	seen := make(map[string]bool, len(oldR.Experiments))
	for i := range oldR.Experiments {
		oldE := &oldR.Experiments[i]
		id := oldE.Table.ID
		seen[id] = true
		newE, ok := newByID[id]
		if !ok {
			return out, fmt.Errorf("schema mismatch: experiment %s in old report but missing from new", id)
		}
		line := fmt.Sprintf("%-4s wall %9.1fms -> %9.1fms (%s)", id, oldE.Millis, newE.Millis, pct(oldE.Millis, newE.Millis))
		if newE.Millis > oldE.Millis*(1+threshold) && newE.Millis-oldE.Millis > noiseMs {
			out.regressions = append(out.regressions, fmt.Sprintf(
				"%s wall-clock regressed %s (%.1fms -> %.1fms, threshold %.0f%%, noise floor %.0fms)",
				id, pct(oldE.Millis, newE.Millis), oldE.Millis, newE.Millis, 100*threshold, noiseMs))
		}
		oldWB, oldHas, err := wireBytesColumn(oldE)
		if err != nil {
			return out, err
		}
		newWB, newHas, err := wireBytesColumn(newE)
		if err != nil {
			return out, err
		}
		if oldHas && !newHas {
			return out, fmt.Errorf("schema mismatch: experiment %s lost its wireBytes column", id)
		}
		if oldHas {
			line += fmt.Sprintf("  wireBytes %d -> %d (%s)", oldWB, newWB, pct(float64(oldWB), float64(newWB)))
			if newWB > oldWB && (oldWB == 0 || float64(newWB) > float64(oldWB)*(1+threshold)) {
				out.regressions = append(out.regressions, fmt.Sprintf(
					"%s wireBytes regressed %s (%d -> %d, threshold %.0f%%)",
					id, pct(float64(oldWB), float64(newWB)), oldWB, newWB, 100*threshold))
			}
		}
		out.lines = append(out.lines, line)
		// Per-row deltas, reported but never gated (only the summed total
		// above can fail the gate): this is where a topology change — the
		// mesh rows' halved relay bytes against the star rows — stays
		// visible in CI logs instead of vanishing into the sum.
		oldRows, _ := wireBytesRows(oldE)
		newRows, newOrder := wireBytesRows(newE)
		for _, label := range newOrder {
			newV := newRows[label]
			if oldV, ok := oldRows[label]; ok {
				if oldV != newV {
					out.lines = append(out.lines, fmt.Sprintf(
						"     %s wireBytes[%s] %d -> %d (%s)", id, label, oldV, newV, pct(float64(oldV), float64(newV))))
				}
			} else {
				out.lines = append(out.lines, fmt.Sprintf(
					"     %s wireBytes[%s] %d (new row, no baseline)", id, label, newV))
			}
		}
	}
	for i := range newR.Experiments {
		if id := newR.Experiments[i].Table.ID; !seen[id] {
			out.lines = append(out.lines, fmt.Sprintf("%-4s new experiment, no baseline — not gated", id))
		}
	}
	return out, nil
}
