package main

// Golden-pair tests for the -compare regression gate. The testdata
// reports are handwritten miniatures of the -json schema: base.json is
// the baseline, improved.json / regressed.json move every quantity
// ~±20-60%, missing.json drops an experiment (the schema-mismatch
// case).

import (
	"path/filepath"
	"strings"
	"testing"
)

func load(t *testing.T, name string) jsonReport {
	t.Helper()
	r, err := loadReport(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestCompareNoChange(t *testing.T) {
	base := load(t, "base.json")
	out, err := compareReports(base, base, 0.10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.regressions) != 0 {
		t.Fatalf("self-compare flagged regressions: %v", out.regressions)
	}
	// Identical per-row wireBytes values produce NO per-row delta lines
	// — only the two summary lines.
	if len(out.lines) != 2 {
		t.Fatalf("want 2 diff lines, got %d: %v", len(out.lines), out.lines)
	}
}

// TestComparePerRowWireBytesReported: a per-row wireBytes change is
// visible in the report lines, labeled by the row's leading columns
// (transport/P), but never gated on its own — only the summed total
// can fail the gate. This is what keeps a topology change (the mesh
// rows' halved relay bytes vs the star rows) readable in CI logs.
func TestComparePerRowWireBytesReported(t *testing.T) {
	base := load(t, "base.json")
	changed := load(t, "base.json")
	for i := range changed.Experiments {
		e := &changed.Experiments[i]
		if e.Table.ID != "E13" {
			continue
		}
		e.Table.Rows[2][6] = "1500000" // net/4: 3000000 -> 1500000 (-50%)
	}
	out, err := compareReports(base, changed, 0.10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.regressions) != 0 {
		t.Fatalf("per-row improvement gated: %v", out.regressions)
	}
	joined := strings.Join(out.lines, "\n")
	if !strings.Contains(joined, "wireBytes[net/4] 3000000 -> 1500000 (-50.0%)") {
		t.Fatalf("per-row delta not reported:\n%s", joined)
	}
	if strings.Contains(joined, "net/2") {
		t.Fatalf("unchanged row reported:\n%s", joined)
	}
	// A brand-new row (no baseline label) is reported as such.
	added := load(t, "base.json")
	for i := range added.Experiments {
		e := &added.Experiments[i]
		if e.Table.ID != "E13" {
			continue
		}
		e.Table.Rows = append(e.Table.Rows,
			[]string{"mesh", "4", "120", "4096", "40", "100000", "1500000", "8000"})
	}
	out, err = compareReports(base, added, 0.10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(out.lines, "\n"), "wireBytes[mesh/4] 1500000 (new row, no baseline)") {
		t.Fatalf("new row not reported: %v", out.lines)
	}
}

func TestCompareImprovement(t *testing.T) {
	out, err := compareReports(load(t, "base.json"), load(t, "improved.json"), 0.10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.regressions) != 0 {
		t.Fatalf("improvement flagged as regression: %v", out.regressions)
	}
}

func TestCompareRegressionAboveThreshold(t *testing.T) {
	out, err := compareReports(load(t, "base.json"), load(t, "regressed.json"), 0.10, 0)
	if err != nil {
		t.Fatal(err)
	}
	// E3 +4% stays under the 10% gate; E13 regresses both wall-clock
	// (+60%) and wireBytes (+24%).
	if len(out.regressions) != 2 {
		t.Fatalf("want 2 regressions, got %d: %v", len(out.regressions), out.regressions)
	}
	joined := strings.Join(out.regressions, "\n")
	if !strings.Contains(joined, "E13 wall-clock") || !strings.Contains(joined, "E13 wireBytes") {
		t.Fatalf("unexpected regression set: %v", out.regressions)
	}
}

func TestCompareNoiseFloorSuppressesWallButNotWire(t *testing.T) {
	out, err := compareReports(load(t, "base.json"), load(t, "regressed.json"), 0.10, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.regressions) != 1 || !strings.Contains(out.regressions[0], "wireBytes") {
		t.Fatalf("want only the wireBytes regression past a 10s noise floor, got %v", out.regressions)
	}
}

func TestCompareSchemaMismatchMissingExperiment(t *testing.T) {
	_, err := compareReports(load(t, "base.json"), load(t, "missing.json"), 0.10, 0)
	if err == nil || !strings.Contains(err.Error(), "E13") {
		t.Fatalf("want schema-mismatch error naming E13, got %v", err)
	}
}

func TestCompareNewExperimentNotGated(t *testing.T) {
	// Old report missing an experiment the new one has: reported, not
	// gated — adding an experiment must not force a baseline refresh.
	out, err := compareReports(load(t, "missing.json"), load(t, "base.json"), 0.10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.regressions) != 0 {
		t.Fatalf("new experiment gated: %v", out.regressions)
	}
	joined := strings.Join(out.lines, "\n")
	if !strings.Contains(joined, "E13") || !strings.Contains(joined, "no baseline") {
		t.Fatalf("new experiment not reported: %v", out.lines)
	}
}

func TestCompareSchemaMismatchDroppedWireBytesColumn(t *testing.T) {
	base := load(t, "base.json")
	stripped := load(t, "base.json")
	for i := range stripped.Experiments {
		e := &stripped.Experiments[i]
		if e.Table.ID != "E13" {
			continue
		}
		e.Table.Header = e.Table.Header[:6] // cut wireBytes and after
		for j, row := range e.Table.Rows {
			e.Table.Rows[j] = row[:6]
		}
	}
	_, err := compareReports(base, stripped, 0.10, 0)
	if err == nil || !strings.Contains(err.Error(), "wireBytes") {
		t.Fatalf("want wireBytes schema-mismatch error, got %v", err)
	}
}

func TestParseCompareArgs(t *testing.T) {
	cases := []struct {
		rest      []string
		wantPath  string
		wantNoise float64
		wantErr   bool
	}{
		{[]string{"new.json"}, "new.json", 0, false},
		{[]string{"new.json", "-noise-ms", "2000"}, "new.json", 2000, false},
		{[]string{"-noise-ms=150", "new.json"}, "new.json", 150, false},
		{[]string{"new.json", "-threshold", "0.2"}, "new.json", 0, false},
		{[]string{}, "", 0, true},
		{[]string{"a.json", "b.json"}, "", 0, true},
		{[]string{"new.json", "-bogus"}, "", 0, true},
		{[]string{"new.json", "-noise-ms"}, "", 0, true},
	}
	for _, c := range cases {
		threshold, noise := 0.10, 0.0
		got, err := parseCompareArgs(c.rest, &threshold, &noise)
		if c.wantErr {
			if err == nil {
				t.Errorf("parseCompareArgs(%v): want error, got path %q", c.rest, got)
			}
			continue
		}
		if err != nil || got != c.wantPath || noise != c.wantNoise {
			t.Errorf("parseCompareArgs(%v) = (%q, noise %v, %v), want (%q, %v)", c.rest, got, noise, err, c.wantPath, c.wantNoise)
		}
	}
}

func TestRunCompareExitCodes(t *testing.T) {
	cases := []struct {
		oldF, newF string
		want       int
	}{
		{"base.json", "improved.json", 0},
		{"base.json", "regressed.json", 1},
		{"base.json", "missing.json", 2},
		{"base.json", "does-not-exist.json", 2},
	}
	for _, c := range cases {
		got := runCompare(filepath.Join("testdata", c.oldF), filepath.Join("testdata", c.newF), 0.10, 0)
		if got != c.want {
			t.Errorf("runCompare(%s, %s) = %d, want %d", c.oldF, c.newF, got, c.want)
		}
	}
}
