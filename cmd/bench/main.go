// Command bench regenerates the paper-reproduction experiment tables
// E1–E10 (see DESIGN.md for the experiment index and EXPERIMENTS.md for
// recorded results).
//
// Usage:
//
//	bench              # run everything at full scale
//	bench -quick       # trimmed sweeps (seconds instead of minutes)
//	bench -run E4,E7   # a subset
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run trimmed sweeps")
	run := flag.String("run", "", "comma-separated experiment ids (default: all)")
	flag.Parse()

	scale := experiments.Full
	if *quick {
		scale = experiments.Quick
	}
	ids := experiments.Order
	if *run != "" {
		ids = strings.Split(*run, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		fn, ok := experiments.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "bench: unknown experiment %q (known: %s)\n",
				id, strings.Join(experiments.Order, ", "))
			os.Exit(2)
		}
		start := time.Now()
		table := fn(scale)
		table.Render(os.Stdout)
		fmt.Printf("  [%s in %v]\n", id, time.Since(start).Round(time.Millisecond))
	}
}
