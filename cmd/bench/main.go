// Command bench regenerates the paper-reproduction experiment tables
// E1–E15 (see the registry in internal/experiments for the index,
// ROADMAP.md for what each sweep pins, and CHANGES.md for when each
// experiment landed).
//
// Usage:
//
//	bench               # run everything at full scale
//	bench -quick        # trimmed sweeps (seconds instead of minutes)
//	bench -run E4,E12   # a subset
//	bench -quick -run E3,E12,E13,E15 -json BENCH_pr.json
//	                    # machine-readable results (the CI bench
//	                    # artifact); -bench-log FILE embeds a go test
//	                    # -bench output alongside the tables
//	bench -compare BENCH_baseline.json BENCH_pr.json
//	                    # diff two -json reports: exit 1 if wall-clock
//	                    # or wireBytes regressed past -threshold, exit 2
//	                    # on schema mismatch. CI runs this against the
//	                    # committed BENCH_baseline.json.
//
// BENCH_baseline.json at the repo root is the committed reference the
// CI gate compares against. Refresh it when a PR intentionally shifts
// performance or adds an experiment to the CI sweep:
//
//	go run ./cmd/bench -quick -run E3,E12,E13,E15 -json BENCH_baseline.json
//
// and commit the result alongside the change that moved the numbers.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiments"
)

// jsonReport is the schema of the -json output: enough provenance to
// compare artifacts across commits, plus the rendered tables verbatim.
type jsonReport struct {
	GoVersion   string           `json:"go_version"`
	NumCPU      int              `json:"num_cpu"`
	Scale       string           `json:"scale"`
	BenchLog    string           `json:"bench_log,omitempty"`
	Experiments []jsonExperiment `json:"experiments"`
}

type jsonExperiment struct {
	Table  *experiments.Table `json:"table"`
	Millis float64            `json:"millis"`
}

func main() {
	quick := flag.Bool("quick", false, "run trimmed sweeps")
	run := flag.String("run", "", "comma-separated experiment ids (default: all)")
	jsonPath := flag.String("json", "", "also write results as JSON to this path (refresh the committed baseline with: bench -quick -run E3,E12,E13,E15 -json BENCH_baseline.json)")
	benchLog := flag.String("bench-log", "", "embed this go test -bench output file in the JSON report")
	compare := flag.String("compare", "", "old -json report to diff against; the new report is the remaining argument (exit 1 on regression, 2 on schema mismatch)")
	threshold := flag.Float64("threshold", 0.10, "relative regression threshold for -compare (0.10 = 10%)")
	noiseMs := flag.Float64("noise-ms", 0, "absolute wall-clock noise floor in ms for -compare: timing deltas below this never fail the gate (CI uses a generous floor because runners differ from the baseline machine; wireBytes is exact and ignores this)")
	flag.Parse()

	if *compare != "" {
		newPath, err := parseCompareArgs(flag.Args(), threshold, noiseMs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(2)
		}
		os.Exit(runCompare(*compare, newPath, *threshold, *noiseMs))
	}

	scale := experiments.Full
	scaleName := "full"
	if *quick {
		scale = experiments.Quick
		scaleName = "quick"
	}
	ids := experiments.Order
	if *run != "" {
		ids = strings.Split(*run, ",")
	}
	// Read the bench log up front: a bad path should fail in
	// milliseconds, not after a full-scale experiment sweep.
	var benchLogText string
	if *benchLog != "" {
		raw, err := os.ReadFile(*benchLog)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: reading -bench-log: %v\n", err)
			os.Exit(1)
		}
		benchLogText = string(raw)
	}
	report := jsonReport{
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Scale:     scaleName,
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		fn, ok := experiments.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "bench: unknown experiment %q (known: %s)\n",
				id, strings.Join(experiments.Order, ", "))
			os.Exit(2)
		}
		start := time.Now()
		table := fn(scale)
		elapsed := time.Since(start)
		table.Render(os.Stdout)
		fmt.Printf("  [%s in %v]\n", id, elapsed.Round(time.Millisecond))
		report.Experiments = append(report.Experiments, jsonExperiment{
			Table:  table,
			Millis: float64(elapsed.Microseconds()) / 1000,
		})
	}
	if *jsonPath == "" {
		return
	}
	report.BenchLog = benchLogText
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: encoding JSON: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*jsonPath, append(out, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: writing %s: %v\n", *jsonPath, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d experiments)\n", *jsonPath, len(report.Experiments))
}

// runCompare loads the two reports, diffs them, and returns the
// process exit code: 0 clean, 1 regression, 2 schema mismatch or
// unreadable input.
func runCompare(oldPath, newPath string, threshold, noiseMs float64) int {
	oldR, err := loadReport(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 2
	}
	newR, err := loadReport(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 2
	}
	out, err := compareReports(oldR, newR, threshold, noiseMs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 2
	}
	fmt.Printf("compare %s -> %s (threshold %.0f%%, noise floor %.0fms)\n",
		oldPath, newPath, 100*threshold, noiseMs)
	for _, l := range out.lines {
		fmt.Println(" ", l)
	}
	if len(out.regressions) > 0 {
		for _, r := range out.regressions {
			fmt.Fprintf(os.Stderr, "bench: REGRESSION: %s\n", r)
		}
		return 1
	}
	fmt.Println("no regressions")
	return 0
}
