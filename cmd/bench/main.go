// Command bench regenerates the paper-reproduction experiment tables
// E1–E13 (see the registry in internal/experiments for the index,
// ROADMAP.md for what each sweep pins, and CHANGES.md for when each
// experiment landed).
//
// Usage:
//
//	bench               # run everything at full scale
//	bench -quick        # trimmed sweeps (seconds instead of minutes)
//	bench -run E4,E12   # a subset
//	bench -quick -run E3,E12 -json BENCH_pr.json
//	                    # machine-readable results (the CI bench
//	                    # artifact); -bench-log FILE embeds a go test
//	                    # -bench output alongside the tables
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiments"
)

// jsonReport is the schema of the -json output: enough provenance to
// compare artifacts across commits, plus the rendered tables verbatim.
type jsonReport struct {
	GoVersion   string           `json:"go_version"`
	NumCPU      int              `json:"num_cpu"`
	Scale       string           `json:"scale"`
	BenchLog    string           `json:"bench_log,omitempty"`
	Experiments []jsonExperiment `json:"experiments"`
}

type jsonExperiment struct {
	Table  *experiments.Table `json:"table"`
	Millis float64            `json:"millis"`
}

func main() {
	quick := flag.Bool("quick", false, "run trimmed sweeps")
	run := flag.String("run", "", "comma-separated experiment ids (default: all)")
	jsonPath := flag.String("json", "", "also write results as JSON to this path")
	benchLog := flag.String("bench-log", "", "embed this go test -bench output file in the JSON report")
	flag.Parse()

	scale := experiments.Full
	scaleName := "full"
	if *quick {
		scale = experiments.Quick
		scaleName = "quick"
	}
	ids := experiments.Order
	if *run != "" {
		ids = strings.Split(*run, ",")
	}
	// Read the bench log up front: a bad path should fail in
	// milliseconds, not after a full-scale experiment sweep.
	var benchLogText string
	if *benchLog != "" {
		raw, err := os.ReadFile(*benchLog)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: reading -bench-log: %v\n", err)
			os.Exit(1)
		}
		benchLogText = string(raw)
	}
	report := jsonReport{
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Scale:     scaleName,
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		fn, ok := experiments.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "bench: unknown experiment %q (known: %s)\n",
				id, strings.Join(experiments.Order, ", "))
			os.Exit(2)
		}
		start := time.Now()
		table := fn(scale)
		elapsed := time.Since(start)
		table.Render(os.Stdout)
		fmt.Printf("  [%s in %v]\n", id, elapsed.Round(time.Millisecond))
		report.Experiments = append(report.Experiments, jsonExperiment{
			Table:  table,
			Millis: float64(elapsed.Microseconds()) / 1000,
		})
	}
	if *jsonPath == "" {
		return
	}
	report.BenchLog = benchLogText
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: encoding JSON: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*jsonPath, append(out, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: writing %s: %v\n", *jsonPath, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d experiments)\n", *jsonPath, len(report.Experiments))
}
