package repro

import "testing"

// TestDistributedSparsifyHonorsOptions: the distributed entry point
// resolves BundleT and Theory the same way the shared-memory path does,
// so equal Options give edge-identical outputs from both.
func TestDistributedSparsifyHonorsOptions(t *testing.T) {
	g := Gnp(200, 0.3, 33)
	for _, opt := range []Options{
		{Seed: 5},
		{Seed: 5, BundleT: 2},
		{Seed: 5, Theory: true},
	} {
		hd, _ := DistributedSparsify(g, 0.75, 4, opt)
		hs, _ := Sparsify(g, 0.75, 4, opt)
		if hd.M() != hs.M() {
			t.Fatalf("opt %+v: distributed m=%d vs shared m=%d", opt, hd.M(), hs.M())
		}
		for i := range hs.Edges {
			if hd.Edges[i] != hs.Edges[i] {
				t.Fatalf("opt %+v: edge %d differs: %+v vs %+v", opt, i, hd.Edges[i], hs.Edges[i])
			}
		}
	}
	// Domain parity with the shared-memory path: eps > 1 is legal when
	// the per-round accuracy lands in (0,1], and rho ≤ 1 is the
	// identity for any eps.
	hd, _ := DistributedSparsify(g, 1.5, 4, Options{Seed: 5})
	hs, _ := Sparsify(g, 1.5, 4, Options{Seed: 5})
	if hd.M() != hs.M() {
		t.Fatalf("eps=1.5: distributed m=%d vs shared m=%d", hd.M(), hs.M())
	}
	id, stats := DistributedSparsify(g, 0, 1, Options{Seed: 5})
	if id.M() != g.M() || stats.Rounds != 0 {
		t.Fatalf("rho<=1 should be a free identity: m=%d stats=%+v", id.M(), stats)
	}
	// BundleT must actually change the outcome (it did not before it
	// was plumbed through).
	deep, _ := DistributedSparsify(g, 0.75, 4, Options{Seed: 5, BundleT: 4})
	shallow, _ := DistributedSparsify(g, 0.75, 4, Options{Seed: 5, BundleT: 1})
	if deep.M() <= shallow.M() {
		t.Fatalf("deeper bundle should keep more edges: t=4 gives %d, t=1 gives %d", deep.M(), shallow.M())
	}
}

// TestDistributedSparsifyShardsOption: Shards switches the transport
// without changing the output — the in-memory default and every shard
// count produce edge-identical graphs, and the sharded ledger records
// its shard count and cross-shard traffic.
func TestDistributedSparsifyShardsOption(t *testing.T) {
	g := Gnp(250, 0.2, 44)
	ref, refStats := DistributedSparsify(g, 0.75, 4, Options{Seed: 9})
	if refStats.Shards != 1 || refStats.CrossShardMessages != 0 {
		t.Fatalf("default transport should be single-shard: %+v", refStats)
	}
	for _, p := range []int{1, 3, 8} {
		h, st := DistributedSparsify(g, 0.75, 4, Options{Seed: 9, Shards: p})
		if h.M() != ref.M() {
			t.Fatalf("Shards=%d: m=%d vs default %d", p, h.M(), ref.M())
		}
		for i := range ref.Edges {
			if h.Edges[i] != ref.Edges[i] {
				t.Fatalf("Shards=%d: edge %d differs", p, i)
			}
		}
		if st.Shards != p {
			t.Fatalf("Shards=%d: ledger reports %d shards", p, st.Shards)
		}
		if st.Rounds != refStats.Rounds || st.Words != refStats.Words {
			t.Fatalf("Shards=%d: ledger totals diverge: %+v vs %+v", p, st, refStats)
		}
		if p > 1 && st.CrossShardWords == 0 {
			t.Fatalf("Shards=%d: no cross-shard traffic recorded", p)
		}
	}
}
