package repro

import "testing"

// TestDistributedSparsifyHonorsOptions: the distributed entry point
// resolves BundleT and Theory the same way the shared-memory path does,
// so equal Options give edge-identical outputs from both.
func TestDistributedSparsifyHonorsOptions(t *testing.T) {
	g := Gnp(200, 0.3, 33)
	for _, opt := range []Options{
		{Seed: 5},
		{Seed: 5, BundleT: 2},
		{Seed: 5, Theory: true},
	} {
		hd, _ := DistributedSparsify(g, 0.75, 4, opt)
		hs, _, err := Sparsify(g, 0.75, 4, opt)
		if err != nil {
			t.Fatal(err)
		}
		if hd.M() != hs.M() {
			t.Fatalf("opt %+v: distributed m=%d vs shared m=%d", opt, hd.M(), hs.M())
		}
		for i := range hs.Edges {
			if hd.Edges[i] != hs.Edges[i] {
				t.Fatalf("opt %+v: edge %d differs: %+v vs %+v", opt, i, hd.Edges[i], hs.Edges[i])
			}
		}
	}
	// Domain parity with the shared-memory path: eps > 1 is legal when
	// the per-round accuracy lands in (0,1], and rho ≤ 1 is the
	// identity for any eps.
	hd, _ := DistributedSparsify(g, 1.5, 4, Options{Seed: 5})
	hs, _, err := Sparsify(g, 1.5, 4, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if hd.M() != hs.M() {
		t.Fatalf("eps=1.5: distributed m=%d vs shared m=%d", hd.M(), hs.M())
	}
	id, stats := DistributedSparsify(g, 0, 1, Options{Seed: 5})
	if id.M() != g.M() || stats.Rounds != 0 {
		t.Fatalf("rho<=1 should be a free identity: m=%d stats=%+v", id.M(), stats)
	}
	// BundleT must actually change the outcome (it did not before it
	// was plumbed through).
	deep, _ := DistributedSparsify(g, 0.75, 4, Options{Seed: 5, BundleT: 4})
	shallow, _ := DistributedSparsify(g, 0.75, 4, Options{Seed: 5, BundleT: 1})
	if deep.M() <= shallow.M() {
		t.Fatalf("deeper bundle should keep more edges: t=4 gives %d, t=1 gives %d", deep.M(), shallow.M())
	}
}

// TestDistributedSparsifyShardsOption: Shards switches the transport
// without changing the output — the in-memory default and every shard
// count produce edge-identical graphs, and the sharded ledger records
// its shard count and cross-shard traffic.
func TestDistributedSparsifyShardsOption(t *testing.T) {
	g := Gnp(250, 0.2, 44)
	ref, refStats := DistributedSparsify(g, 0.75, 4, Options{Seed: 9})
	if refStats.Shards != 1 || refStats.CrossShardMessages != 0 {
		t.Fatalf("default transport should be single-shard: %+v", refStats)
	}
	for _, p := range []int{1, 3, 8} {
		h, st := DistributedSparsify(g, 0.75, 4, Options{Seed: 9, Shards: p})
		if h.M() != ref.M() {
			t.Fatalf("Shards=%d: m=%d vs default %d", p, h.M(), ref.M())
		}
		for i := range ref.Edges {
			if h.Edges[i] != ref.Edges[i] {
				t.Fatalf("Shards=%d: edge %d differs", p, i)
			}
		}
		if st.Shards != p {
			t.Fatalf("Shards=%d: ledger reports %d shards", p, st.Shards)
		}
		if st.Rounds != refStats.Rounds || st.Words != refStats.Words {
			t.Fatalf("Shards=%d: ledger totals diverge: %+v vs %+v", p, st, refStats)
		}
		if p > 1 && st.CrossShardWords == 0 {
			t.Fatalf("Shards=%d: no cross-shard traffic recorded", p)
		}
	}
}

// TestDistributedTransportOption: the Transport field selects the spec
// directly, the deprecated Shards alias maps to Sharded(P), and every
// spec — the loopback multi-process one included — produces the same
// edges as the in-memory default.
func TestDistributedTransportOption(t *testing.T) {
	g := Gnp(220, 0.15, 21)
	ref, refStats := DistributedSparsify(g, 0.75, 4, Options{Seed: 9})
	for name, opt := range map[string]Options{
		"sharded-spec":     {Seed: 9, Transport: Sharded(3)},
		"deprecated-alias": {Seed: 9, Shards: 3},
		"loopback-spec":    {Seed: 9, Transport: Loopback(2)},
		"mesh-spec":        {Seed: 9, Transport: Mesh(3)},
	} {
		h, st := DistributedSparsify(g, 0.75, 4, opt)
		if h.M() != ref.M() {
			t.Fatalf("%s: m=%d vs default %d", name, h.M(), ref.M())
		}
		for i := range ref.Edges {
			if h.Edges[i] != ref.Edges[i] {
				t.Fatalf("%s: edge %d differs", name, i)
			}
		}
		if st.Rounds != refStats.Rounds || st.Words != refStats.Words {
			t.Fatalf("%s: ledger totals diverge: %+v vs %+v", name, st, refStats)
		}
	}
	// The alias and the spec must be indistinguishable in the ledger.
	_, aliasStats := DistributedSparsify(g, 0.75, 4, Options{Seed: 9, Shards: 3})
	_, specStats := DistributedSparsify(g, 0.75, 4, Options{Seed: 9, Transport: Sharded(3)})
	if aliasStats.Shards != specStats.Shards || aliasStats.CrossShardWords != specStats.CrossShardWords {
		t.Fatalf("Shards alias diverges from Sharded spec: %+v vs %+v", aliasStats, specStats)
	}
	// The spanner entry point honors the spec too.
	sref, _ := DistributedSpanner(g, Options{Seed: 9})
	ssh, sst := DistributedSpanner(g, Options{Seed: 9, Transport: Sharded(4)})
	if ssh.M() != sref.M() {
		t.Fatalf("spanner sharded m=%d vs mem %d", ssh.M(), sref.M())
	}
	for i := range sref.Edges {
		if ssh.Edges[i] != sref.Edges[i] {
			t.Fatalf("spanner edge %d differs", i)
		}
	}
	if sst.Shards != 4 {
		t.Fatalf("spanner ledger reports %d shards, want 4", sst.Shards)
	}
}

// TestExplicitMemBeatsDeprecatedShards: an explicit Transport: Mem()
// is not the zero spec, so the deprecated Shards knob cannot override
// it — only a truly unset Transport falls back to Shards.
func TestExplicitMemBeatsDeprecatedShards(t *testing.T) {
	g := Gnp(120, 0.2, 3)
	_, memStats := DistributedSparsify(g, 0.75, 4, Options{Seed: 5, Transport: Mem(), Shards: 4})
	if memStats.Shards != 1 || memStats.CrossShardMessages != 0 {
		t.Fatalf("explicit Mem() overridden by deprecated Shards: %+v", memStats)
	}
	_, unsetStats := DistributedSparsify(g, 0.75, 4, Options{Seed: 5, Shards: 4})
	if unsetStats.Shards != 4 {
		t.Fatalf("unset Transport did not fall back to Shards: %+v", unsetStats)
	}
}

// TestParseTransport: the one grammar behind every CLI -transport
// flag resolves each spec name — including the mesh data plane — and
// rejects unknown names and missing shard counts.
func TestParseTransport(t *testing.T) {
	cases := []struct {
		name    string
		shards  int
		want    TransportSpec
		wantErr bool
	}{
		{"", 3, Sharded(3), false},
		{"sharded", 2, Sharded(2), false},
		{"mem", 0, Mem(), false},
		{"loopback", 4, Loopback(4), false},
		{"mesh", 4, Mesh(4), false},
		{"mesh", 0, TransportSpec{}, true},
		{"loopback", 0, TransportSpec{}, true},
		{"", 0, TransportSpec{}, true},
		{"bogus", 3, TransportSpec{}, true},
	}
	for _, c := range cases {
		got, err := ParseTransport(c.name, c.shards)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseTransport(%q, %d): want error, got %v", c.name, c.shards, got)
			}
			continue
		}
		// Specs carry an OnListen func field, so compare by String().
		if err != nil || got.String() != c.want.String() {
			t.Errorf("ParseTransport(%q, %d) = (%v, %v), want %v", c.name, c.shards, got, err, c.want)
		}
	}
}
