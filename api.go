package repro

import (
	"math"

	"repro/internal/baseline"
	"repro/internal/bundle"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/pram"
	"repro/internal/resistance"
	"repro/internal/solver"
	"repro/internal/spanner"
	"repro/internal/spectral"
	"repro/internal/stream"
)

// Graph is a weighted undirected graph; see the graph package for the
// full method set (Canonical, Validate, Subgraph, ...).
type Graph = graph.Graph

// Edge is one weighted undirected edge of a Graph.
type Edge = graph.Edge

// NewGraph returns an empty graph on n vertices. Append to g.Edges or
// use FromEdges to populate it.
func NewGraph(n int) *Graph { return graph.New(n) }

// FromEdges builds a graph over n vertices from an edge list.
func FromEdges(n int, edges []Edge) *Graph { return graph.FromEdges(n, edges) }

// Options configures the sparsification entry points.
type Options struct {
	// Seed drives all randomness (default 1).
	Seed uint64
	// Theory selects the paper's constants (t = 24·log²n/ε² bundles);
	// the default is the calibrated practical configuration. With
	// theory constants any laptop-scale graph is swallowed whole by the
	// bundle and the algorithm is the identity — correct, but only
	// interesting asymptotically.
	Theory bool
	// BundleT overrides the bundle thickness formula when positive.
	BundleT int
	// Shards selects the distributed engine's transport: 0 (the
	// default) runs on the in-memory staging transport; P ≥ 1 runs on
	// the sharded transport, which partitions the vertices across P
	// worker goroutines and exchanges cross-shard messages through
	// per-shard-pair buffers at each round barrier. The output is
	// bit-identical either way for equal seeds; only wall-clock and the
	// DistStats CrossShard counters change. Ignored by the
	// shared-memory entry points.
	Shards int
	// Tracker, when non-nil, accumulates modeled CRCW PRAM work/depth.
	Tracker *pram.Tracker
}

func (o Options) config() core.Config {
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}
	var cfg core.Config
	if o.Theory {
		cfg = core.TheoryConfig(seed)
	} else {
		cfg = core.DefaultConfig(seed)
	}
	cfg.BundleT = o.BundleT
	cfg.Tracker = o.Tracker
	return cfg
}

// SampleReport aliases the per-round statistics of Algorithm 1.
type SampleReport = core.SampleStats

// SparsifyReport aliases the aggregate statistics of Algorithm 2.
type SparsifyReport = core.SparsifyStats

// Sample runs one round of the paper's Algorithm 1 (PARALLELSAMPLE) at
// accuracy eps ∈ (0, 1]: it keeps a bundle of spanners plus a 1/4
// uniform sample of the rest (reweighted ×4), roughly halving the
// non-structural edges while (1±ε)-preserving the Laplacian quadratic
// form with high probability.
func Sample(g *Graph, eps float64, opt Options) (*Graph, *SampleReport) {
	return core.ParallelSample(g, eps, opt.config())
}

// Sparsify runs the paper's Algorithm 2 (PARALLELSPARSIFY): ⌈log₂ρ⌉
// rounds of Sample at accuracy eps/⌈log₂ρ⌉, reducing the edge count
// towards n·polylog(n) + m/ρ while (1±ε)-preserving the quadratic form.
func Sparsify(g *Graph, eps, rho float64, opt Options) (*Graph, *SparsifyReport) {
	return core.ParallelSparsify(g, eps, rho, opt.config())
}

// SampleTreeBundle runs the Remark 2 variant of Algorithm 1: the
// certification bundle is t low-stretch spanning forests instead of t
// spanners, shrinking the bundle by ~log n at the cost of a weaker
// (average-stretch) certificate. See experiment E11 for the measured
// trade.
func SampleTreeBundle(g *Graph, eps float64, t int, opt Options) (*Graph, *SampleReport) {
	return core.ParallelSampleTreeBundle(g, eps, t, opt.config())
}

// Spanner computes a Baswana–Sen log n-spanner of g in the paper's
// resistive-stretch metric: every edge of g has stretch ≤ 2⌈log₂n⌉−1
// over the returned subgraph, which has O(n log n) edges in expectation.
func Spanner(g *Graph, opt Options) *Graph {
	adj := graph.NewAdjacency(g)
	res := spanner.Compute(g, adj, nil, spanner.Options{Seed: opt.Seed, Tracker: opt.Tracker})
	return g.Subgraph(res.InSpanner)
}

// BundleSpanner computes a t-bundle spanner of g (Definition 1): t
// edge-disjoint spanners peeled off one after another. Every edge left
// outside the bundle has leverage w_e·R_e[g] ≤ (2⌈log₂n⌉−1)/t (Lemma 1).
func BundleSpanner(g *Graph, t int, opt Options) *Graph {
	adj := graph.NewAdjacency(g)
	res := bundle.Compute(g, adj, nil, bundle.Options{T: t, Seed: opt.Seed, Tracker: opt.Tracker})
	return g.Subgraph(res.InBundle)
}

// EffectiveResistances returns R_e for every edge of g, computed with
// the Spielman–Srivastava Johnson–Lindenstrauss sketch (a handful of
// Laplacian solves in total).
func EffectiveResistances(g *Graph, opt Options) []float64 {
	return resistance.AllEdgesApprox(g, resistance.ApproxOptions{Seed: opt.Seed})
}

// EffectiveResistance returns the exact effective resistance between
// two vertices of g (one Laplacian solve).
func EffectiveResistance(g *Graph, u, v int32) float64 {
	return resistance.NewSolver(g).Pair(u, v)
}

// ApproxBounds holds measured spectral approximation bounds: for all x,
// Lo·xᵀL_Gx ≤ xᵀL_Hx ≤ Hi·xᵀL_Gx.
type ApproxBounds = spectral.Bounds

// Bounds measures how well h spectrally approximates g (both must be
// connected): it returns the extreme generalized eigenvalues of the
// pencil (L_h, L_g) estimated by power iteration with inner CG solves.
func Bounds(g, h *Graph, opt Options) (ApproxBounds, error) {
	return spectral.ApproxFactor(g, h, spectral.Options{Seed: opt.Seed})
}

// SolveResult aliases the solver's convergence report.
type SolveResult = solver.SolveResult

// SolveLaplacian solves L_g·x = b to relative residual tol with the
// Peng–Spielman chain-preconditioned conjugate gradient (Theorem 6's
// solver with the paper's sparsifier inside the chain). b is projected
// orthogonal to the all-ones null space.
func SolveLaplacian(g *Graph, b []float64, tol float64, opt Options) ([]float64, SolveResult, error) {
	return solver.SolveLaplacian(g, b, tol, solver.ChainOptions{Seed: opt.Seed})
}

// SDDMatrix is a symmetric diagonally dominant matrix; see solver.SDD.
type SDDMatrix = solver.SDD

// SDDEntry is a strictly-upper off-diagonal entry of an SDDMatrix.
type SDDEntry = solver.SDDEntry

// SolveSDD solves M·x = b for a symmetric diagonally dominant matrix by
// Gremban reduction to a Laplacian of twice the dimension followed by
// SolveLaplacian.
func SolveSDD(m *SDDMatrix, b []float64, tol float64, opt Options) ([]float64, SolveResult, error) {
	return solver.SolveSDD(m, b, tol, solver.ChainOptions{Seed: opt.Seed})
}

// StreamSparsifier maintains a bounded-memory spectral summary of an
// edge stream via merge-and-reduce over Sample (the semi-streaming
// setting of Kelner–Levin that the paper's related work discusses).
type StreamSparsifier = stream.Sparsifier

// StreamOptions configures a StreamSparsifier.
type StreamOptions = stream.Options

// NewStream returns a semi-streaming sparsifier over n vertices;
// Ingest edges, then Finish for the summary graph.
func NewStream(n int, opt StreamOptions) *StreamSparsifier {
	return stream.New(n, opt)
}

// DistStats aliases the distributed communication ledger.
type DistStats = dist.Stats

// DistributedSparsify runs Algorithm 2 in the simulated synchronous
// distributed model and returns the sparsifier plus the communication
// ledger (rounds, messages, words) that Theorem 5 bounds. Options are
// honored as in Sparsify (BundleT overrides the bundle depth, Theory
// selects the paper's constants), and for equal Options the output is
// edge-identical to Sparsify. Options.Shards > 0 selects the sharded
// transport: the same computation partitioned across that many worker
// goroutines, with the ledger additionally reporting the cross-shard
// traffic a multi-machine deployment would put on the wire.
func DistributedSparsify(g *Graph, eps, rho float64, opt Options) (*Graph, DistStats) {
	var res dist.Result
	if opt.Shards > 0 {
		res = dist.SparsifyConfigSharded(g, eps, rho, opt.config(), opt.Shards)
	} else {
		res = dist.SparsifyConfig(g, eps, rho, opt.config())
	}
	return res.G, res.Stats
}

// DistributedSpanner computes the Baswana–Sen log n-spanner in the
// simulated synchronous distributed model and returns the spanner
// subgraph plus the communication ledger Theorem 2 bounds (O(log² n)
// rounds, O(m log n) messages of O(1) words). The edge selection is
// bit-identical to Spanner's for equal Options. Options.Shards > 0
// selects the sharded transport as in DistributedSparsify.
func DistributedSpanner(g *Graph, opt Options) (*Graph, DistStats) {
	var res *dist.SpannerResult
	if opt.Shards > 0 {
		res = dist.BaswanaSenSharded(g, 0, opt.Seed, opt.Shards)
	} else {
		res = dist.BaswanaSen(g, 0, opt.Seed)
	}
	return g.Subgraph(res.InSpanner), res.Stats
}

// SpielmanSrivastava runs the effective-resistance sampling baseline at
// accuracy eps.
func SpielmanSrivastava(g *Graph, eps float64, opt Options) *Graph {
	return baseline.SpielmanSrivastava(g, baseline.SSOptions{Eps: eps, Seed: opt.Seed})
}

// UniformSample keeps each edge independently with probability p at
// weight w/p — the strawman baseline.
func UniformSample(g *Graph, p float64, opt Options) *Graph {
	return baseline.Uniform(g, p, opt.Seed)
}

// Convenience generators re-exported for examples and quick use.

// Gnp returns an Erdős–Rényi random graph.
func Gnp(n int, p float64, seed uint64) *Graph { return gen.Gnp(n, p, seed) }

// Grid2D returns the rows×cols grid graph.
func Grid2D(rows, cols int) *Graph { return gen.Grid2D(rows, cols) }

// Complete returns the complete graph K_n.
func Complete(n int) *Graph { return gen.Complete(n) }

// Barbell returns two K_k cliques joined by a path of bridgeLen edges.
func Barbell(k, bridgeLen int) *Graph { return gen.Barbell(k, bridgeLen) }

// StretchBound returns the spanner stretch guarantee 2⌈log₂n⌉−1 used
// throughout the library for graphs on n vertices.
func StretchBound(n int) float64 {
	if n < 2 {
		return 1
	}
	k := math.Ceil(math.Log2(float64(n)))
	if k < 2 {
		k = 2
	}
	return 2*k - 1
}
