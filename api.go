package repro

import (
	"fmt"
	"math"

	"repro/internal/baseline"
	"repro/internal/bundle"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/pram"
	"repro/internal/resistance"
	"repro/internal/serve"
	"repro/internal/solver"
	"repro/internal/spanner"
	"repro/internal/spectral"
	"repro/internal/stream"
)

// Graph is a weighted undirected graph; see the graph package for the
// full method set (Canonical, Validate, Subgraph, ...).
type Graph = graph.Graph

// Edge is one weighted undirected edge of a Graph.
type Edge = graph.Edge

// NewGraph returns an empty graph on n vertices. Append to g.Edges or
// use FromEdges to populate it.
func NewGraph(n int) *Graph { return graph.New(n) }

// FromEdges builds a graph over n vertices from an edge list.
func FromEdges(n int, edges []Edge) *Graph { return graph.FromEdges(n, edges) }

// TransportSpec describes how the distributed entry points execute —
// see the dist package for the full story. Specs are plain values:
// Mem() is the single-process in-memory simulation (the default; the
// zero spec executes the same way, but only an explicit Mem() shields
// against the deprecated Shards knob), Sharded(p) partitions the
// rounds across p worker goroutines, Loopback(p) / Mesh(p) run the
// whole multi-process protocol over real loopback TCP sockets inside
// this process (on the coordinator-relayed star and the full-mesh data
// plane respectively), and dist.Net / dist.Worker drive real
// multi-process deployments (see cmd/distworker and dist.Run, which
// those specs require so that network failures can surface as errors).
//
// Equivalence guarantee: for equal Options every spec produces
// bit-identical output and an identical DistStats ledger at any shard
// count and any GOMAXPROCS — the transport moves messages, never
// decisions. Only the honesty counters of distribution (the CrossShard
// split, wire bytes, per-worker peak memory) differ.
type TransportSpec = dist.TransportSpec

// Mem returns the in-memory transport spec (the default).
func Mem() TransportSpec { return dist.Mem() }

// Sharded returns the sharded in-process transport spec with p worker
// goroutines.
func Sharded(p int) TransportSpec { return dist.Sharded(p) }

// Loopback returns the loopback-TCP multi-process transport spec with
// p shards (a coordinator plus p−1 worker goroutines on real sockets).
func Loopback(p int) TransportSpec { return dist.Loopback(p) }

// Mesh returns the loopback-TCP multi-process transport spec on the
// full-mesh data plane: workers dial each other directly and the
// coordinator carries only control/tally/collective frames, so
// worker↔worker round batches cross the wire once instead of being
// relayed twice through shard 0.
func Mesh(p int) TransportSpec { return dist.Mesh(p) }

// ParseTransport maps a spec name plus a shard count to a
// TransportSpec — the one grammar behind every CLI -transport flag:
// "mem" (shards ignored), "sharded", "loopback", or "mesh" (the
// socket planes; all three need shards ≥ 1). An empty name defaults
// to "sharded", matching the historical meaning of a bare -shards
// flag.
func ParseTransport(name string, shards int) (TransportSpec, error) {
	switch name {
	case "", "sharded":
		if shards < 1 {
			return TransportSpec{}, fmt.Errorf("repro: transport %q needs shards >= 1", name)
		}
		return Sharded(shards), nil
	case "mem":
		return Mem(), nil
	case "loopback":
		if shards < 1 {
			return TransportSpec{}, fmt.Errorf("repro: transport loopback needs shards >= 1")
		}
		return Loopback(shards), nil
	case "mesh":
		if shards < 1 {
			return TransportSpec{}, fmt.Errorf("repro: transport mesh needs shards >= 1")
		}
		return Mesh(shards), nil
	default:
		return TransportSpec{}, fmt.Errorf("repro: unknown transport %q (mem, sharded, loopback, mesh)", name)
	}
}

// Options configures the sparsification entry points.
type Options struct {
	// Seed drives all randomness (default 1).
	Seed uint64
	// Theory selects the paper's constants (t = 24·log²n/ε² bundles);
	// the default is the calibrated practical configuration. With
	// theory constants any laptop-scale graph is swallowed whole by the
	// bundle and the algorithm is the identity — correct, but only
	// interesting asymptotically.
	Theory bool
	// BundleT overrides the bundle thickness formula when positive.
	BundleT int
	// Transport selects how DistributedSparsify and DistributedSpanner
	// execute: Mem() (the zero value, the default), Sharded(p),
	// Loopback(p), or Mesh(p) — see TransportSpec for the catalogue and
	// the equivalence guarantee. Ignored by the shared-memory entry
	// points.
	Transport TransportSpec
	// Shards is the pre-TransportSpec way to select the sharded
	// transport; P ≥ 1 behaves exactly like Transport: Sharded(P).
	//
	// Deprecated: set Transport to Sharded(P) instead. Consulted only
	// when Transport is the zero spec.
	Shards int
	// Tracker, when non-nil, accumulates modeled CRCW PRAM work/depth.
	Tracker *pram.Tracker
}

// transport resolves the Transport/Shards pair to the spec the
// distributed entry points run on.
func (o Options) transport() TransportSpec {
	if !o.Transport.IsZero() {
		return o.Transport
	}
	if o.Shards > 0 {
		return dist.Sharded(o.Shards)
	}
	return dist.Mem()
}

func (o Options) config() core.Config {
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}
	var cfg core.Config
	if o.Theory {
		cfg = core.TheoryConfig(seed)
	} else {
		cfg = core.DefaultConfig(seed)
	}
	cfg.BundleT = o.BundleT
	cfg.Tracker = o.Tracker
	return cfg
}

// SampleReport aliases the per-round statistics of Algorithm 1.
type SampleReport = core.SampleStats

// SparsifyReport aliases the aggregate statistics of Algorithm 2.
type SparsifyReport = core.SparsifyStats

// Sample runs one round of the paper's Algorithm 1 (PARALLELSAMPLE) at
// accuracy eps ∈ (0, 1]: it keeps a bundle of spanners plus a 1/4
// uniform sample of the rest (reweighted ×4), roughly halving the
// non-structural edges while (1±ε)-preserving the Laplacian quadratic
// form with high probability. eps outside (0,1] is an error.
func Sample(g *Graph, eps float64, opt Options) (*Graph, *SampleReport, error) {
	return core.ParallelSample(g, eps, opt.config())
}

// Sparsify runs the paper's Algorithm 2 (PARALLELSPARSIFY): ⌈log₂ρ⌉
// rounds of Sample at accuracy eps/⌈log₂ρ⌉, reducing the edge count
// towards n·polylog(n) + m/ρ while (1±ε)-preserving the quadratic form.
// A per-round accuracy outside (0,1] is an error.
func Sparsify(g *Graph, eps, rho float64, opt Options) (*Graph, *SparsifyReport, error) {
	return core.ParallelSparsify(g, eps, rho, opt.config())
}

// SampleTreeBundle runs the Remark 2 variant of Algorithm 1: the
// certification bundle is t low-stretch spanning forests instead of t
// spanners, shrinking the bundle by ~log n at the cost of a weaker
// (average-stretch) certificate. See experiment E11 for the measured
// trade.
func SampleTreeBundle(g *Graph, eps float64, t int, opt Options) (*Graph, *SampleReport, error) {
	return core.ParallelSampleTreeBundle(g, eps, t, opt.config())
}

// Spanner computes a Baswana–Sen log n-spanner of g in the paper's
// resistive-stretch metric: every edge of g has stretch ≤ 2⌈log₂n⌉−1
// over the returned subgraph, which has O(n log n) edges in expectation.
func Spanner(g *Graph, opt Options) *Graph {
	adj := graph.NewAdjacency(g)
	res := spanner.Compute(g, adj, nil, spanner.Options{Seed: opt.Seed, Tracker: opt.Tracker})
	return g.Subgraph(res.InSpanner)
}

// BundleSpanner computes a t-bundle spanner of g (Definition 1): t
// edge-disjoint spanners peeled off one after another. Every edge left
// outside the bundle has leverage w_e·R_e[g] ≤ (2⌈log₂n⌉−1)/t (Lemma 1).
func BundleSpanner(g *Graph, t int, opt Options) *Graph {
	adj := graph.NewAdjacency(g)
	res := bundle.Compute(g, adj, nil, bundle.Options{T: t, Seed: opt.Seed, Tracker: opt.Tracker})
	return g.Subgraph(res.InBundle)
}

// EffectiveResistances returns R_e for every edge of g, computed with
// the Spielman–Srivastava Johnson–Lindenstrauss sketch (a handful of
// Laplacian solves in total). A solve breakdown — possible only on
// numerically indefinite input — is an error.
func EffectiveResistances(g *Graph, opt Options) ([]float64, error) {
	return resistance.AllEdgesApprox(g, resistance.ApproxOptions{Seed: opt.Seed})
}

// EffectiveResistance returns the exact effective resistance between
// two vertices of g (one Laplacian solve).
func EffectiveResistance(g *Graph, u, v int32) (float64, error) {
	return resistance.NewSolver(g).Pair(u, v)
}

// ApproxBounds holds measured spectral approximation bounds: for all x,
// Lo·xᵀL_Gx ≤ xᵀL_Hx ≤ Hi·xᵀL_Gx.
type ApproxBounds = spectral.Bounds

// Bounds measures how well h spectrally approximates g (both must be
// connected): it returns the extreme generalized eigenvalues of the
// pencil (L_h, L_g) estimated by power iteration with inner CG solves.
func Bounds(g, h *Graph, opt Options) (ApproxBounds, error) {
	return spectral.ApproxFactor(g, h, spectral.Options{Seed: opt.Seed})
}

// SolveResult aliases the solver's convergence report.
type SolveResult = solver.SolveResult

// SolveLaplacian solves L_g·x = b to relative residual tol with the
// Peng–Spielman chain-preconditioned conjugate gradient (Theorem 6's
// solver with the paper's sparsifier inside the chain). b is projected
// orthogonal to the all-ones null space.
func SolveLaplacian(g *Graph, b []float64, tol float64, opt Options) ([]float64, SolveResult, error) {
	return solver.SolveLaplacian(g, b, tol, solver.ChainOptions{Seed: opt.Seed})
}

// SDDMatrix is a symmetric diagonally dominant matrix; see solver.SDD.
type SDDMatrix = solver.SDD

// SDDEntry is a strictly-upper off-diagonal entry of an SDDMatrix.
type SDDEntry = solver.SDDEntry

// SolveSDD solves M·x = b for a symmetric diagonally dominant matrix by
// Gremban reduction to a Laplacian of twice the dimension followed by
// SolveLaplacian.
func SolveSDD(m *SDDMatrix, b []float64, tol float64, opt Options) ([]float64, SolveResult, error) {
	return solver.SolveSDD(m, b, tol, solver.ChainOptions{Seed: opt.Seed})
}

// StreamSparsifier maintains a bounded-memory spectral summary of an
// edge stream via merge-and-reduce over Sample (the semi-streaming
// setting of Kelner–Levin that the paper's related work discusses).
type StreamSparsifier = stream.Sparsifier

// StreamOptions configures a StreamSparsifier.
type StreamOptions = stream.Options

// NewStream returns a semi-streaming sparsifier over n vertices;
// Ingest edges, then Finish for the summary graph (or Snapshot for a
// non-destructive read of the live stream).
func NewStream(n int, opt StreamOptions) *StreamSparsifier {
	return stream.New(n, opt)
}

// SparsifierServer is the sparsifier-as-a-service core: a long-lived
// TCP server holding named dynamic graphs, answering sparsify /
// spanner / resistance / solve queries over immutable epoch snapshots
// while clients stream edges in. See internal/serve for the
// epoch/session model and cmd/sparsifyd for the daemon CLI.
type SparsifierServer = serve.Server

// SparsifierClient is a connection to a SparsifierServer (or a
// sparsifyd daemon).
type SparsifierClient = serve.Client

// ServeConfig configures a SparsifierServer.
type ServeConfig = serve.Config

// ServeGraphOptions are a served graph's create-time knobs: the epoch
// update budget, the stream buffer, the per-reduce accuracy, and the
// seed driving all of the graph's randomness.
type ServeGraphOptions = serve.GraphOptions

// ServeInfo is the counter record every service response carries:
// which immutable epoch answered and where ingest currently stands.
type ServeInfo = serve.Info

// ListenSparsifier binds a sparsifier service on cfg.Listen and
// returns the server ready for Serve; Shutdown drains it (in-flight
// requests are answered, new connections refused).
func ListenSparsifier(cfg ServeConfig) (*SparsifierServer, error) {
	return serve.Listen(cfg)
}

// DialSparsifier connects to a sparsifier service.
func DialSparsifier(addr string) (*SparsifierClient, error) {
	return serve.Dial(addr)
}

// ServeQuerySeed derives the seed a service query against epoch e of a
// graph created with seed s runs under — half of the service's
// determinism contract: replaying a graph's ingested prefix through
// NewStream(+Snapshot) and re-running the query's algorithm under
// ServeQuerySeed(s, e) reproduces the served answer bit for bit.
func ServeQuerySeed(seed, epoch uint64) uint64 {
	return serve.QuerySeed(seed, epoch)
}

// DistStats aliases the distributed communication ledger.
type DistStats = dist.Stats

// DistributedSparsify runs Algorithm 2 in the distributed model — one
// dist.Engine.Run of the sparsify job on Options.Transport — and
// returns the sparsifier plus the communication ledger (rounds,
// messages, words) that Theorem 5 bounds. Options are honored as in
// Sparsify (BundleT overrides the bundle depth, Theory selects the
// paper's constants), and for equal Options the output is
// edge-identical to Sparsify on every transport spec. A transport
// failure (possible only on the multi-process specs) panics; use
// dist.Run directly to handle such errors.
func DistributedSparsify(g *Graph, eps, rho float64, opt Options) (*Graph, DistStats) {
	res, err := dist.Run(dist.NewEngine(opt.transport(), g), dist.SparsifyJob(eps, rho, opt.config()))
	if err != nil {
		panic("repro: DistributedSparsify: " + err.Error())
	}
	return res.Output, res.Stats
}

// DistributedSpanner computes the Baswana–Sen log n-spanner in the
// distributed model — one dist.Engine.Run of the spanner job on
// Options.Transport — and returns the spanner subgraph plus the
// communication ledger Theorem 2 bounds (O(log² n) rounds, O(m log n)
// messages of O(1) words). The edge selection is bit-identical to
// Spanner's for equal Options on every transport spec. A transport
// failure (possible only on the multi-process specs) panics; use
// dist.Run directly to handle such errors.
func DistributedSpanner(g *Graph, opt Options) (*Graph, DistStats) {
	res, err := dist.Run(dist.NewEngine(opt.transport(), g), dist.SpannerJob(0, opt.Seed))
	if err != nil {
		panic("repro: DistributedSpanner: " + err.Error())
	}
	return res.Output.G, res.Stats
}

// SpielmanSrivastava runs the effective-resistance sampling baseline at
// accuracy eps. A failed resistance computation is an error.
func SpielmanSrivastava(g *Graph, eps float64, opt Options) (*Graph, error) {
	return baseline.SpielmanSrivastava(g, baseline.SSOptions{Eps: eps, Seed: opt.Seed})
}

// UniformSample keeps each edge independently with probability p at
// weight w/p — the strawman baseline.
func UniformSample(g *Graph, p float64, opt Options) *Graph {
	return baseline.Uniform(g, p, opt.Seed)
}

// Convenience generators re-exported for examples and quick use.

// Gnp returns an Erdős–Rényi random graph.
func Gnp(n int, p float64, seed uint64) *Graph { return gen.Gnp(n, p, seed) }

// Grid2D returns the rows×cols grid graph.
func Grid2D(rows, cols int) *Graph { return gen.Grid2D(rows, cols) }

// Complete returns the complete graph K_n.
func Complete(n int) *Graph { return gen.Complete(n) }

// Barbell returns two K_k cliques joined by a path of bridgeLen edges.
func Barbell(k, bridgeLen int) *Graph { return gen.Barbell(k, bridgeLen) }

// StretchBound returns the spanner stretch guarantee 2⌈log₂n⌉−1 used
// throughout the library for graphs on n vertices.
func StretchBound(n int) float64 {
	if n < 2 {
		return 1
	}
	k := math.Ceil(math.Log2(float64(n)))
	if k < 2 {
		k = 2
	}
	return 2*k - 1
}
