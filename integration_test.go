package repro

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graphio"
	"repro/internal/spectral"
	"repro/internal/stretch"
)

// TestPipelineGenerateSerializeSparsifySolve walks the full library
// pipeline the CLI tools compose: generate → serialize → parse →
// sparsify → verify → solve, checking the invariants at each stage.
func TestPipelineGenerateSerializeSparsifySolve(t *testing.T) {
	g := gen.Gnp(300, 0.2, 5)
	var buf bytes.Buffer
	if err := graphio.Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	parsed, err := graphio.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.M() != g.M() || parsed.N != g.N {
		t.Fatal("serialize/parse changed the graph")
	}
	h, rep, err := Sparsify(parsed, 0.75, 4, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OutputEdges != h.M() {
		t.Fatal("report inconsistent")
	}
	b, err := Bounds(parsed, h, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if b.Epsilon() > 0.75 {
		t.Fatalf("pipeline sparsifier eps %v > 0.75", b.Epsilon())
	}
	// Solve the same system on graph and sparsifier; potentials of a
	// unit source/sink pair must agree to within the eps bound's
	// implication on resistances.
	rhs := make([]float64, g.N)
	rhs[0], rhs[g.N-1] = 1, -1
	xg, resg, err := SolveLaplacian(parsed, rhs, 1e-9, Options{Seed: 11})
	if err != nil || !resg.Converged {
		t.Fatalf("graph solve: %v %+v", err, resg)
	}
	xh, resh, err := SolveLaplacian(h, rhs, 1e-9, Options{Seed: 13})
	if err != nil || !resh.Converged {
		t.Fatalf("sparsifier solve: %v %+v", err, resh)
	}
	rG := xg[0] - xg[g.N-1]
	rH := xh[0] - xh[g.N-1]
	if ratio := rH / rG; ratio < 1/(1+0.8) || ratio > 1+0.8 {
		t.Fatalf("resistance ratio %v outside the sparsifier band", ratio)
	}
}

// TestSpannerPropertyRandomized is the randomized spanner property
// test: for random graphs and seeds, the spanner is a subgraph with
// stretch ≤ 2⌈log₂n⌉−1 in the resistive metric.
func TestSpannerPropertyRandomized(t *testing.T) {
	check := func(seed uint64, nRaw, pRaw uint8) bool {
		n := 20 + int(nRaw)%120
		p := 0.05 + float64(pRaw%200)/400 // in [0.05, 0.55)
		g := gen.Gnp(n, p, seed)
		if g.M() == 0 {
			return true
		}
		h := Spanner(g, Options{Seed: seed ^ 0xdead})
		// Rebuild the mask by edge identity (Spanner returns a
		// materialized subgraph of g's edges in order).
		if h.M() > g.M() {
			return false
		}
		mask := make([]bool, g.M())
		j := 0
		for i, e := range g.Edges {
			if j < h.M() && h.Edges[j] == e {
				mask[i] = true
				j++
			}
		}
		if j != h.M() {
			return false // not an ordered subset — representation broken
		}
		return stretch.VerifySpanner(g, mask, StretchBound(n)) == -1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestSparsifierQualityRandomized: for random dense graphs, one sample
// round at practical constants yields a connected graph whose measured
// ε is finite and moderate.
func TestSparsifierQualityRandomized(t *testing.T) {
	check := func(seed uint64) bool {
		n := 60 + int(seed%80)
		g := gen.Gnp(n, 0.4, seed)
		h, _, err := Sample(g, 0.5, Options{Seed: seed ^ 0xbeef})
		if err != nil {
			return false
		}
		b, err := spectral.DenseApproxFactor(g, h)
		if err != nil {
			return false
		}
		return b.Epsilon() < 0.9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestCLIPipeline builds the actual command binaries and pipes
// gen → sparsify → solve, asserting each stage's outputs parse and the
// solver converges. Skipped in -short mode (compilation is the cost).
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline test builds binaries; skipped in -short")
	}
	dir := t.TempDir()
	bins := map[string]string{}
	for _, tool := range []string{"gen", "sparsify", "solve", "spanner"} {
		out := filepath.Join(dir, tool)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+tool)
		cmd.Dir = "."
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, msg)
		}
		bins[tool] = out
	}
	graphFile := filepath.Join(dir, "g.txt")
	runTool := func(bin string, stdout string, args ...string) string {
		cmd := exec.Command(bin, args...)
		var errBuf bytes.Buffer
		cmd.Stderr = &errBuf
		if stdout != "" {
			f, err := os.Create(stdout)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			cmd.Stdout = f
		}
		if err := cmd.Run(); err != nil {
			t.Fatalf("%s %v: %v\nstderr: %s", bin, args, err, errBuf.String())
		}
		return errBuf.String()
	}
	runTool(bins["gen"], graphFile, "-kind", "gnp", "-n", "300", "-p", "0.15", "-seed", "3")
	sparseFile := filepath.Join(dir, "h.txt")
	stderr := runTool(bins["sparsify"], sparseFile, "-in", graphFile, "-eps", "0.75", "-rho", "4", "-measure")
	if !strings.Contains(stderr, "measured:") {
		t.Fatalf("sparsify -measure printed no measurement: %q", stderr)
	}
	h, err := os.Open(sparseFile)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	hg, err := graphio.Read(h)
	if err != nil {
		t.Fatalf("sparsify output unparsable: %v", err)
	}
	if hg.M() == 0 {
		t.Fatal("sparsify produced empty graph")
	}
	solFile := filepath.Join(dir, "x.txt")
	stderr = runTool(bins["solve"], solFile, "-in", sparseFile, "-tol", "1e-8")
	if !strings.Contains(stderr, "converged=true") {
		t.Fatalf("solver did not converge: %q", stderr)
	}
	spanFile := filepath.Join(dir, "s.txt")
	stderr = runTool(bins["spanner"], spanFile, "-in", graphFile, "-verify")
	if !strings.Contains(stderr, "verified: max stretch") {
		t.Fatalf("spanner -verify printed no verification: %q", stderr)
	}
	sol, err := os.ReadFile(solFile)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Fields(strings.TrimSpace(string(sol)))
	if len(lines) != hg.N {
		t.Fatalf("solution has %d values, want n=%d", len(lines), hg.N)
	}
	// Potentials must be finite and mean-free (the solver projects off
	// the all-ones null space).
	sum := 0.0
	for _, l := range lines {
		var v float64
		if _, err := fmt.Sscanf(l, "%g", &v); err != nil {
			t.Fatalf("unparsable solution value %q", l)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite potential %v", v)
		}
		sum += v
	}
	if math.Abs(sum) > 1e-5*float64(hg.N) {
		t.Fatalf("potentials not mean-free: sum=%v", sum)
	}
}
