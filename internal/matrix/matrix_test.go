package matrix

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestLaplacianTriangle(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}, {U: 0, V: 2, W: 3}})
	l := Laplacian(g)
	d := l.Dense()
	want := [][]float64{{4, -1, -3}, {-1, 3, -2}, {-3, -2, 5}}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if math.Abs(d.At(i, j)-want[i][j]) > 1e-12 {
				t.Fatalf("L[%d][%d]=%v want %v", i, j, d.At(i, j), want[i][j])
			}
		}
	}
}

func TestLaplacianRowSumsZero(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(30)
		m := r.Intn(80)
		edges := make([]graph.Edge, 0, m)
		for i := 0; i < m; i++ {
			edges = append(edges, graph.Edge{
				U: int32(r.Intn(n)), V: int32(r.Intn(n)), W: 0.1 + r.Float64(),
			})
		}
		g := graph.FromEdges(n, edges)
		l := Laplacian(g)
		ones := make([]float64, n)
		for i := range ones {
			ones[i] = 1
		}
		out := make([]float64, n)
		l.MulVec(out, ones)
		for _, v := range out {
			if math.Abs(v) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLaplacianMergesParallelEdges(t *testing.T) {
	g := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 0, V: 1, W: 2}})
	l := Laplacian(g)
	// Row 0 must have exactly 2 entries: diag 3 and off-diag -3.
	if l.RowPtr[1]-l.RowPtr[0] != 2 {
		t.Fatalf("row 0 has %d entries", l.RowPtr[1]-l.RowPtr[0])
	}
	if l.Diag[0] != 3 {
		t.Fatalf("diag %v", l.Diag[0])
	}
}

func TestLaplacianIgnoresSelfLoops(t *testing.T) {
	g := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 1, W: 9}})
	l := Laplacian(g)
	if l.Diag[1] != 1 {
		t.Fatalf("self loop leaked into diagonal: %v", l.Diag[1])
	}
}

func TestQuadFormMatchesEdgeFormula(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(20)
		g := gen.Gnp(n, 0.4, seed)
		if g.M() == 0 {
			return true
		}
		l := Laplacian(g)
		x := make([]float64, n)
		for i := range x {
			x[i] = r.Norm()
		}
		a := l.QuadForm(x)
		b := LaplacianQuadForm(g, x)
		return math.Abs(a-b) <= 1e-9*(math.Abs(a)+1)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMulVecKnown(t *testing.T) {
	g := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1, W: 2}})
	l := Laplacian(g)
	out := make([]float64, 2)
	l.MulVec(out, []float64{1, 0})
	if out[0] != 2 || out[1] != -2 {
		t.Fatalf("MulVec=%v", out)
	}
}

func TestNNZ(t *testing.T) {
	g := gen.Complete(5)
	l := Laplacian(g)
	if l.NNZ() != 25 { // full 5x5: 5 diag + 20 off
		t.Fatalf("NNZ=%d", l.NNZ())
	}
}

func TestSymEigDiagonal(t *testing.T) {
	a := NewDense(3, 3)
	a.Set(0, 0, 3)
	a.Set(1, 1, 1)
	a.Set(2, 2, 2)
	eig, _, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(eig[i]-want[i]) > 1e-10 {
			t.Fatalf("eig=%v", eig)
		}
	}
}

func TestSymEigKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	a := NewDense(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 2)
	eig, vecs, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eig[0]-1) > 1e-10 || math.Abs(eig[1]-3) > 1e-10 {
		t.Fatalf("eig=%v", eig)
	}
	// Check A·v = λ·v for each eigenpair.
	for j := 0; j < 2; j++ {
		v := []float64{vecs.At(0, j), vecs.At(1, j)}
		av := make([]float64, 2)
		a.MulVec(av, v)
		for i := 0; i < 2; i++ {
			if math.Abs(av[i]-eig[j]*v[i]) > 1e-9 {
				t.Fatalf("eigenpair %d violated", j)
			}
		}
	}
}

func TestSymEigPathLaplacian(t *testing.T) {
	// Path on 4 vertices: eigenvalues 2-2cos(kπ/4), k=0..3.
	g := gen.Path(4)
	l := Laplacian(g).Dense()
	eig, _, err := SymEig(l)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 4; k++ {
		want := 2 - 2*math.Cos(float64(k)*math.Pi/4)
		if math.Abs(eig[k]-want) > 1e-9 {
			t.Fatalf("eig[%d]=%v want %v", k, eig[k], want)
		}
	}
}

func TestSymEigReconstruction(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(8)
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := r.Norm()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		eig, q, err := SymEig(a)
		if err != nil {
			return false
		}
		// Check ‖A − QΛQᵀ‖∞ small.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				s := 0.0
				for k := 0; k < n; k++ {
					s += q.At(i, k) * eig[k] * q.At(j, k)
				}
				if math.Abs(s-a.At(i, j)) > 1e-8 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSymEigRejectsNonSquare(t *testing.T) {
	if _, _, err := SymEig(NewDense(2, 3)); err == nil {
		t.Fatal("expected error")
	}
}

func TestCholeskySolveRoundTrip(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(12)
		// SPD via AᵀA + I.
		b := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				b.Set(i, j, r.Norm())
			}
		}
		spd := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				s := 0.0
				for k := 0; k < n; k++ {
					s += b.At(k, i) * b.At(k, j)
				}
				if i == j {
					s += 1
				}
				spd.Set(i, j, s)
			}
		}
		l, err := Cholesky(spd)
		if err != nil {
			return false
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = r.Norm()
		}
		rhs := make([]float64, n)
		spd.MulVec(rhs, x)
		got := CholeskySolve(l, rhs)
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 5)
	a.Set(1, 0, 5)
	a.Set(1, 1, 1)
	if _, err := Cholesky(a); err == nil {
		t.Fatal("expected pivot failure")
	}
}

func TestDenseClone(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 1)
	b := a.Clone()
	b.Set(0, 0, 9)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}
