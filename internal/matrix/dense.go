package matrix

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix, used only for small-n verification
// (exact eigenvalues, exact pseudo-inverses) and base-case solves.
type Dense struct {
	Rows, Cols int
	Data       []float64
}

// NewDense returns a zeroed rows×cols matrix.
func NewDense(rows, cols int) *Dense {
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (d *Dense) At(i, j int) float64 { return d.Data[i*d.Cols+j] }

// Set assigns element (i, j).
func (d *Dense) Set(i, j int, v float64) { d.Data[i*d.Cols+j] = v }

// Clone returns a deep copy.
func (d *Dense) Clone() *Dense {
	out := NewDense(d.Rows, d.Cols)
	copy(out.Data, d.Data)
	return out
}

// MulVec computes dst = D·x.
func (d *Dense) MulVec(dst, x []float64) {
	if len(dst) != d.Rows || len(x) != d.Cols {
		panic("matrix: dense MulVec dimension mismatch")
	}
	for i := 0; i < d.Rows; i++ {
		s := 0.0
		row := d.Data[i*d.Cols : (i+1)*d.Cols]
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// SymEig computes the full eigendecomposition of a symmetric matrix via
// the cyclic Jacobi rotation method. It returns the eigenvalues in
// ascending order and the matrix of eigenvectors (column j corresponds
// to eigenvalue j). Intended for n up to a few hundred.
func SymEig(a *Dense) (eig []float64, vecs *Dense, err error) {
	n := a.Rows
	if a.Cols != n {
		return nil, nil, fmt.Errorf("matrix: SymEig requires square input, got %dx%d", a.Rows, a.Cols)
	}
	m := a.Clone()
	v := NewDense(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m.At(i, j) * m.At(i, j)
			}
		}
		// Relative convergence threshold against the Frobenius norm.
		frob := 0.0
		for _, x := range m.Data {
			frob += x * x
		}
		if off <= 1e-24*(frob+1e-300) {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if apq == 0 {
					continue
				}
				app, aqq := m.At(p, p), m.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				// Apply the rotation J(p,q,θ) on both sides.
				for k := 0; k < n; k++ {
					akp, akq := m.At(k, p), m.At(k, q)
					m.Set(k, p, c*akp-s*akq)
					m.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk, aqk := m.At(p, k), m.At(q, k)
					m.Set(p, k, c*apk-s*aqk)
					m.Set(q, k, s*apk+c*aqk)
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	eig = make([]float64, n)
	for i := 0; i < n; i++ {
		eig[i] = m.At(i, i)
	}
	// Sort ascending, permuting eigenvector columns alongside.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && eig[idx[j]] < eig[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	sortedEig := make([]float64, n)
	sortedVecs := NewDense(n, n)
	for j, src := range idx {
		sortedEig[j] = eig[src]
		for i := 0; i < n; i++ {
			sortedVecs.Set(i, j, v.At(i, src))
		}
	}
	return sortedEig, sortedVecs, nil
}

// Cholesky computes the lower-triangular Cholesky factor of a symmetric
// positive definite matrix, returning an error if a non-positive pivot
// is encountered.
func Cholesky(a *Dense) (*Dense, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("matrix: Cholesky requires square input")
	}
	l := NewDense(n, n)
	for j := 0; j < n; j++ {
		sum := a.At(j, j)
		for k := 0; k < j; k++ {
			sum -= l.At(j, k) * l.At(j, k)
		}
		if sum <= 0 {
			return nil, fmt.Errorf("matrix: Cholesky pivot %d non-positive (%g)", j, sum)
		}
		ljj := math.Sqrt(sum)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, sum/ljj)
		}
	}
	return l, nil
}

// CholeskySolve solves L Lᵀ x = b given the Cholesky factor L.
func CholeskySolve(l *Dense, b []float64) []float64 {
	n := l.Rows
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}
