// Package matrix provides the sparse and dense symmetric matrix
// machinery under the solvers: CSR Laplacians with parallel matvec,
// small dense matrices, a dense symmetric Jacobi eigensolver (used to
// verify the iterative spectral estimates exactly at small n), and a
// dense Cholesky factorization for base-case solves.
package matrix

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/parutil"
)

// CSR is a general sparse matrix in compressed sparse row form. The
// matrices in this repository are symmetric; both triangles are stored
// so that matvec is a single row sweep.
type CSR struct {
	N      int
	RowPtr []int32
	ColIdx []int32
	Values []float64
	Diag   []float64 // cached diagonal, for Jacobi preconditioning
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Values) }

// Laplacian builds the CSR Laplacian L = D − A of g. Parallel edges are
// merged implicitly by accumulation; self-loops are ignored (their
// Laplacian contribution is zero).
func Laplacian(g *graph.Graph) *CSR {
	n := g.N
	// Count strictly off-diagonal entries per row; each simple edge
	// contributes one entry to each endpoint's row, plus one diagonal
	// entry per row.
	deg := make([]int32, n)
	for _, e := range g.Edges {
		if e.U == e.V {
			continue
		}
		deg[e.U]++
		deg[e.V]++
	}
	rowPtr := make([]int32, n+1)
	for i := 0; i < n; i++ {
		rowPtr[i+1] = rowPtr[i] + deg[i] + 1 // +1 for the diagonal slot
	}
	nnz := rowPtr[n]
	colIdx := make([]int32, nnz)
	values := make([]float64, nnz)
	cursor := make([]int32, n)
	// Reserve slot 0 of each row for the diagonal.
	for i := 0; i < n; i++ {
		colIdx[rowPtr[i]] = int32(i)
		cursor[i] = rowPtr[i] + 1
	}
	diag := make([]float64, n)
	for _, e := range g.Edges {
		if e.U == e.V {
			continue
		}
		diag[e.U] += e.W
		diag[e.V] += e.W
		cu := cursor[e.U]
		colIdx[cu] = e.V
		values[cu] = -e.W
		cursor[e.U]++
		cv := cursor[e.V]
		colIdx[cv] = e.U
		values[cv] = -e.W
		cursor[e.V]++
	}
	for i := 0; i < n; i++ {
		values[rowPtr[i]] = diag[i]
	}
	m := &CSR{N: n, RowPtr: rowPtr, ColIdx: colIdx, Values: values, Diag: diag}
	return m.compactDuplicates()
}

// compactDuplicates merges duplicate column entries within each row
// (produced by parallel edges) in place. Rows are short, so a simple
// per-row quadratic merge is fine and avoids sorting.
func (m *CSR) compactDuplicates() *CSR {
	newRowPtr := make([]int32, m.N+1)
	newCol := make([]int32, 0, len(m.ColIdx))
	newVal := make([]float64, 0, len(m.Values))
	for i := 0; i < m.N; i++ {
		start := len(newCol)
		for s := m.RowPtr[i]; s < m.RowPtr[i+1]; s++ {
			c := m.ColIdx[s]
			v := m.Values[s]
			found := false
			for k := start; k < len(newCol); k++ {
				if newCol[k] == c {
					newVal[k] += v
					found = true
					break
				}
			}
			if !found {
				newCol = append(newCol, c)
				newVal = append(newVal, v)
			}
		}
		newRowPtr[i+1] = int32(len(newCol))
	}
	m.RowPtr = newRowPtr
	m.ColIdx = newCol
	m.Values = newVal
	return m
}

// MulVec computes dst = M·x, in parallel over rows.
func (m *CSR) MulVec(dst, x []float64) {
	if len(dst) != m.N || len(x) != m.N {
		panic(fmt.Sprintf("matrix: MulVec dimension mismatch n=%d len(dst)=%d len(x)=%d", m.N, len(dst), len(x)))
	}
	parutil.ForBlocks(m.N, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s := 0.0
			for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
				s += m.Values[k] * x[m.ColIdx[k]]
			}
			dst[i] = s
		}
	})
}

// QuadForm returns xᵀ M x.
func (m *CSR) QuadForm(x []float64) float64 {
	tmp := make([]float64, m.N)
	m.MulVec(tmp, x)
	s := 0.0
	for i, v := range tmp {
		s += v * x[i]
	}
	return s
}

// LaplacianQuadForm computes xᵀ L_G x directly from the edge list:
// Σ_e w_e (x_u − x_v)², which is cheaper and more numerically stable
// than assembling L when only the quadratic form is needed.
func LaplacianQuadForm(g *graph.Graph, x []float64) float64 {
	return parutil.SumFloat(len(g.Edges), func(i int) float64 {
		e := g.Edges[i]
		d := x[e.U] - x[e.V]
		return e.W * d * d
	})
}

// Dense returns the dense form of m (for small-n verification only).
func (m *CSR) Dense() *Dense {
	d := NewDense(m.N, m.N)
	for i := 0; i < m.N; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			d.Set(i, int(m.ColIdx[k]), d.At(i, int(m.ColIdx[k]))+m.Values[k])
		}
	}
	return d
}
