// Package gen provides the synthetic graph generators used by the test
// suite and the experiment harness: classical families (complete, grids,
// paths), random models (Erdős–Rényi, random regular, preferential
// attachment, planted partition), and adversarial shapes for
// sparsification (barbell/dumbbell graphs whose cut edges uniform
// sampling destroys), plus the image-affinity grids that motivate
// Remark 1 of the paper.
//
// Every generator is deterministic given its seed.
package gen

import (
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Complete returns the complete graph K_n with unit weights.
func Complete(n int) *graph.Graph {
	g := graph.New(n)
	g.Edges = make([]graph.Edge, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.Edges = append(g.Edges, graph.Edge{U: int32(i), V: int32(j), W: 1})
		}
	}
	return g
}

// Path returns the path graph P_n with unit weights.
func Path(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.Edges = append(g.Edges, graph.Edge{U: int32(i), V: int32(i + 1), W: 1})
	}
	return g
}

// Cycle returns the cycle graph C_n with unit weights.
func Cycle(n int) *graph.Graph {
	g := Path(n)
	if n >= 3 {
		g.Edges = append(g.Edges, graph.Edge{U: int32(n - 1), V: 0, W: 1})
	}
	return g
}

// Star returns the star graph with center 0 and n-1 leaves.
func Star(n int) *graph.Graph {
	g := graph.New(n)
	for i := 1; i < n; i++ {
		g.Edges = append(g.Edges, graph.Edge{U: 0, V: int32(i), W: 1})
	}
	return g
}

// Grid2D returns the rows×cols 4-neighbor grid with unit weights.
func Grid2D(rows, cols int) *graph.Graph {
	g := graph.New(rows * cols)
	id := func(r, c int) int32 { return int32(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.Edges = append(g.Edges, graph.Edge{U: id(r, c), V: id(r, c+1), W: 1})
			}
			if r+1 < rows {
				g.Edges = append(g.Edges, graph.Edge{U: id(r, c), V: id(r+1, c), W: 1})
			}
		}
	}
	return g
}

// Grid3D returns the x×y×z 6-neighbor grid with unit weights.
func Grid3D(x, y, z int) *graph.Graph {
	g := graph.New(x * y * z)
	id := func(i, j, k int) int32 { return int32((i*y+j)*z + k) }
	for i := 0; i < x; i++ {
		for j := 0; j < y; j++ {
			for k := 0; k < z; k++ {
				if i+1 < x {
					g.Edges = append(g.Edges, graph.Edge{U: id(i, j, k), V: id(i+1, j, k), W: 1})
				}
				if j+1 < y {
					g.Edges = append(g.Edges, graph.Edge{U: id(i, j, k), V: id(i, j+1, k), W: 1})
				}
				if k+1 < z {
					g.Edges = append(g.Edges, graph.Edge{U: id(i, j, k), V: id(i, j, k+1), W: 1})
				}
			}
		}
	}
	return g
}

// Torus2D returns the rows×cols grid with wraparound edges.
func Torus2D(rows, cols int) *graph.Graph {
	g := graph.New(rows * cols)
	id := func(r, c int) int32 { return int32(((r+rows)%rows)*cols + (c+cols)%cols) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if cols > 1 && !(cols == 2 && c == 1) {
				g.Edges = append(g.Edges, graph.Edge{U: id(r, c), V: id(r, c+1), W: 1})
			}
			if rows > 1 && !(rows == 2 && r == 1) {
				g.Edges = append(g.Edges, graph.Edge{U: id(r, c), V: id(r+1, c), W: 1})
			}
		}
	}
	return g
}

// Gnp returns an Erdős–Rényi G(n, p) graph with unit weights.
func Gnp(n int, p float64, seed uint64) *graph.Graph {
	g := graph.New(n)
	if p <= 0 {
		return g
	}
	r := rng.New(seed)
	if p >= 1 {
		return Complete(n)
	}
	// Geometric skipping: iterate only over the edges that exist,
	// O(m) expected time instead of O(n^2). Positions are strictly
	// increasing, so the pair decoding advances its row cursor
	// incrementally — amortized O(n + m) over the whole generation,
	// where the closed unrank walk per edge would cost O(n·m) (the
	// difference between seconds and half an hour at 10^7 edges).
	logq := math.Log(1 - p)
	total := int64(n) * int64(n-1) / 2
	pos := int64(-1)
	i := 0
	rowStart, rowLen := int64(0), int64(n-1)
	for {
		u := r.Float64()
		if u >= 1 {
			u = math.Nextafter(1, 0)
		}
		skip := int64(math.Floor(math.Log(1-u) / logq))
		pos += skip + 1
		if pos >= total {
			break
		}
		for pos >= rowStart+rowLen {
			rowStart += rowLen
			rowLen--
			i++
		}
		j := i + 1 + int(pos-rowStart)
		g.Edges = append(g.Edges, graph.Edge{U: int32(i), V: int32(j), W: 1})
	}
	return g
}

// unrank maps a linear index in [0, n(n-1)/2) to the pair (i, j), i<j,
// in row-major order of the strict upper triangle.
func unrank(pos int64, n int) (int, int) {
	i := 0
	rowLen := int64(n - 1)
	for pos >= rowLen {
		pos -= rowLen
		rowLen--
		i++
	}
	return i, i + 1 + int(pos)
}

// Gnm returns a uniform random graph with exactly m distinct edges.
func Gnm(n, m int, seed uint64) *graph.Graph {
	g := graph.New(n)
	maxM := int64(n) * int64(n-1) / 2
	if int64(m) > maxM {
		m = int(maxM)
	}
	r := rng.New(seed)
	seen := make(map[int64]struct{}, m)
	for len(g.Edges) < m {
		i := r.Intn(n)
		j := r.Intn(n)
		if i == j {
			continue
		}
		if i > j {
			i, j = j, i
		}
		key := int64(i)*int64(n) + int64(j)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		g.Edges = append(g.Edges, graph.Edge{U: int32(i), V: int32(j), W: 1})
	}
	return g
}

// RandomRegular returns a random d-regular multigraph via the
// configuration model with parallel edges and self-loops removed
// (so low-degree deviations are possible but rare). n*d must be even.
func RandomRegular(n, d int, seed uint64) *graph.Graph {
	if n*d%2 != 0 {
		d++
	}
	r := rng.New(seed)
	stubs := make([]int32, 0, n*d)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, int32(v))
		}
	}
	for i := len(stubs) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		stubs[i], stubs[j] = stubs[j], stubs[i]
	}
	g := graph.New(n)
	type key struct{ u, v int32 }
	seen := make(map[key]struct{})
	for i := 0; i+1 < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if _, dup := seen[key{u, v}]; dup {
			continue
		}
		seen[key{u, v}] = struct{}{}
		g.Edges = append(g.Edges, graph.Edge{U: u, V: v, W: 1})
	}
	return g
}

// Barbell returns two complete graphs K_k joined by a path of
// bridgeLen edges (bridgeLen >= 1). The bridge edges are exactly the
// kind of spectrally critical low-connectivity edges that uniform
// sampling loses and effective-resistance-aware schemes must keep.
func Barbell(k, bridgeLen int) *graph.Graph {
	if bridgeLen < 1 {
		bridgeLen = 1
	}
	n := 2*k + bridgeLen - 1
	g := graph.New(n)
	// Left clique on [0, k), right clique on [k+bridgeLen-1, n).
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			g.Edges = append(g.Edges, graph.Edge{U: int32(i), V: int32(j), W: 1})
		}
	}
	right := k + bridgeLen - 1
	for i := right; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.Edges = append(g.Edges, graph.Edge{U: int32(i), V: int32(j), W: 1})
		}
	}
	// Bridge path from vertex k-1 through intermediates to vertex right.
	prev := int32(k - 1)
	for b := 0; b < bridgeLen; b++ {
		var next int32
		if b == bridgeLen-1 {
			next = int32(right)
		} else {
			next = int32(k + b)
		}
		g.Edges = append(g.Edges, graph.Edge{U: prev, V: next, W: 1})
		prev = next
	}
	return g
}

// PreferentialAttachment returns a Barabási–Albert style graph: each new
// vertex attaches to d existing vertices chosen proportionally to their
// current degree.
func PreferentialAttachment(n, d int, seed uint64) *graph.Graph {
	if d < 1 {
		d = 1
	}
	r := rng.New(seed)
	g := graph.New(n)
	// Repeated-endpoint list: choosing a uniform element is degree-
	// proportional sampling.
	targets := make([]int32, 0, 2*n*d)
	start := d + 1
	if start > n {
		start = n
	}
	for i := 0; i < start; i++ {
		for j := i + 1; j < start; j++ {
			g.Edges = append(g.Edges, graph.Edge{U: int32(i), V: int32(j), W: 1})
			targets = append(targets, int32(i), int32(j))
		}
	}
	for v := start; v < n; v++ {
		chosen := make(map[int32]struct{}, d)
		for len(chosen) < d && len(chosen) < v {
			t := targets[r.Intn(len(targets))]
			chosen[t] = struct{}{}
		}
		for t := range chosen {
			g.Edges = append(g.Edges, graph.Edge{U: int32(v), V: t, W: 1})
			targets = append(targets, int32(v), t)
		}
	}
	return g.Canonical()
}

// PlantedPartition returns a graph with k equal communities of size
// n/k: intra-community edges with probability pin, inter-community with
// probability pout.
func PlantedPartition(n, k int, pin, pout float64, seed uint64) *graph.Graph {
	g := graph.New(n)
	r := rng.New(seed)
	comm := func(v int) int { return v * k / n }
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			p := pout
			if comm(i) == comm(j) {
				p = pin
			}
			if r.Bernoulli(p) {
				g.Edges = append(g.Edges, graph.Edge{U: int32(i), V: int32(j), W: 1})
			}
		}
	}
	return g
}

// WithRandomWeights returns a copy of g with weights drawn uniformly
// from [lo, hi].
func WithRandomWeights(g *graph.Graph, lo, hi float64, seed uint64) *graph.Graph {
	r := rng.New(seed)
	out := g.Clone()
	for i := range out.Edges {
		out.Edges[i].W = lo + (hi-lo)*r.Float64()
	}
	return out
}

// ImageAffinity returns the affinity graph of a synthetic rows×cols
// grayscale image (Remark 1's motivating workload): a 4-neighbor grid
// where the weight of edge (p, q) is exp(-|I(p)-I(q)|²/sigma²). The
// synthetic image contains smooth gradients plus sharp blobs so the
// affinity weights span several orders of magnitude.
func ImageAffinity(rows, cols int, sigma float64, seed uint64) *graph.Graph {
	img := SyntheticImage(rows, cols, seed)
	g := graph.New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	aff := func(a, b float64) float64 {
		d := a - b
		w := math.Exp(-d * d / (sigma * sigma))
		if w < 1e-9 {
			w = 1e-9 // keep weights positive so the Laplacian stays connected
		}
		return w
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.Edges = append(g.Edges, graph.Edge{U: int32(id(r, c)), V: int32(id(r, c+1)), W: aff(img[id(r, c)], img[id(r, c+1)])})
			}
			if r+1 < rows {
				g.Edges = append(g.Edges, graph.Edge{U: int32(id(r, c)), V: int32(id(r+1, c)), W: aff(img[id(r, c)], img[id(r+1, c)])})
			}
		}
	}
	return g
}

// ImageAffinityRadius is the nonlocal variant of ImageAffinity: every
// pixel pair within Chebyshev distance radius is connected, with weight
// exp(-|ΔI|²/σ²)/dist. Nonlocal affinity graphs are the dense inputs
// for which sparsification actually pays (a 4-neighbor grid is already
// below the n·log n sparsifier floor).
func ImageAffinityRadius(rows, cols, radius int, sigma float64, seed uint64) *graph.Graph {
	img := SyntheticImage(rows, cols, seed)
	g := graph.New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			for dr := 0; dr <= radius; dr++ {
				for dc := -radius; dc <= radius; dc++ {
					if dr == 0 && dc <= 0 {
						continue // enumerate each unordered pair once
					}
					r2, c2 := r+dr, c+dc
					if r2 < 0 || r2 >= rows || c2 < 0 || c2 >= cols {
						continue
					}
					d := img[id(r, c)] - img[id(r2, c2)]
					dist := math.Sqrt(float64(dr*dr + dc*dc))
					w := math.Exp(-d*d/(sigma*sigma)) / dist
					if w < 1e-9 {
						w = 1e-9
					}
					g.Edges = append(g.Edges, graph.Edge{
						U: int32(id(r, c)), V: int32(id(r2, c2)), W: w,
					})
				}
			}
		}
	}
	return g
}

// SyntheticImage returns a rows×cols grayscale image in [0,1]: a smooth
// diagonal gradient plus a few high-contrast circular blobs.
func SyntheticImage(rows, cols int, seed uint64) []float64 {
	r := rng.New(seed)
	img := make([]float64, rows*cols)
	type blob struct {
		cr, cc, rad float64
		val         float64
	}
	blobs := make([]blob, 4)
	for i := range blobs {
		blobs[i] = blob{
			cr:  r.Float64() * float64(rows),
			cc:  r.Float64() * float64(cols),
			rad: (0.08 + 0.12*r.Float64()) * float64(rows),
			val: r.Float64(),
		}
	}
	for row := 0; row < rows; row++ {
		for col := 0; col < cols; col++ {
			v := 0.5 * (float64(row)/float64(rows) + float64(col)/float64(cols))
			for _, b := range blobs {
				dr, dc := float64(row)-b.cr, float64(col)-b.cc
				if dr*dr+dc*dc < b.rad*b.rad {
					v = b.val
				}
			}
			img[row*cols+col] = v
		}
	}
	return img
}
