package gen

import (
	"math"
	"testing"

	"repro/internal/graph"
)

func TestCompleteSize(t *testing.T) {
	g := Complete(10)
	if g.M() != 45 {
		t.Fatalf("K10 has %d edges", g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPathCycleStar(t *testing.T) {
	if g := Path(10); g.M() != 9 || !graph.IsConnected(g) {
		t.Fatal("path wrong")
	}
	if g := Cycle(10); g.M() != 10 || !graph.IsConnected(g) {
		t.Fatal("cycle wrong")
	}
	if g := Star(10); g.M() != 9 || !graph.IsConnected(g) {
		t.Fatal("star wrong")
	}
}

func TestGrid2DStructure(t *testing.T) {
	g := Grid2D(4, 5)
	if g.N != 20 {
		t.Fatalf("N=%d", g.N)
	}
	want := 4*4 + 3*5 // horizontal + vertical
	if g.M() != want {
		t.Fatalf("M=%d want %d", g.M(), want)
	}
	if !graph.IsConnected(g) {
		t.Fatal("grid disconnected")
	}
}

func TestGrid3DStructure(t *testing.T) {
	g := Grid3D(3, 4, 5)
	if g.N != 60 {
		t.Fatalf("N=%d", g.N)
	}
	want := 2*4*5 + 3*3*5 + 3*4*4
	if g.M() != want {
		t.Fatalf("M=%d want %d", g.M(), want)
	}
	if !graph.IsConnected(g) {
		t.Fatal("3d grid disconnected")
	}
}

func TestTorus2DRegular(t *testing.T) {
	g := Torus2D(4, 6)
	deg := g.Degrees()
	for v, d := range deg {
		if d != 4 {
			t.Fatalf("torus vertex %d degree %d", v, d)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGnpEdgeCountNearExpectation(t *testing.T) {
	n, p := 300, 0.1
	g := Gnp(n, p, 7)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	mean := p * float64(n) * float64(n-1) / 2
	sd := math.Sqrt(mean * (1 - p))
	if math.Abs(float64(g.M())-mean) > 6*sd {
		t.Fatalf("Gnp M=%d expected %v±%v", g.M(), mean, 6*sd)
	}
	// No duplicates, since the skip sampler enumerates positions.
	seen := map[[2]int32]bool{}
	for _, e := range g.Edges {
		key := [2]int32{e.U, e.V}
		if seen[key] {
			t.Fatalf("duplicate edge %v", key)
		}
		seen[key] = true
	}
}

func TestGnpExtremes(t *testing.T) {
	if g := Gnp(50, 0, 1); g.M() != 0 {
		t.Fatal("Gnp p=0 has edges")
	}
	if g := Gnp(20, 1, 1); g.M() != 190 {
		t.Fatalf("Gnp p=1 M=%d", g.M())
	}
}

func TestGnpDeterministic(t *testing.T) {
	a := Gnp(100, 0.2, 42)
	b := Gnp(100, 0.2, 42)
	if a.M() != b.M() {
		t.Fatal("Gnp not deterministic")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatal("Gnp edge lists differ")
		}
	}
}

// TestGnpIncrementalDecodeMatchesUnrank pins Gnp's amortized-O(n+m)
// row-cursor decoding to the closed unrank form: every emitted edge,
// re-ranked to its linear position, must decode back to itself. This is
// what keeps Gnp output bit-identical across the decoder rewrite (the
// graph golden pins elsewhere in the repo depend on it).
func TestGnpIncrementalDecodeMatchesUnrank(t *testing.T) {
	for _, n := range []int{2, 3, 17, 240, 1000} {
		g := Gnp(n, 0.13, 99)
		for _, e := range g.Edges {
			i, j := int64(e.U), int64(e.V)
			pos := i*int64(n) - i*(i+1)/2 + (j - i - 1)
			ui, uj := unrank(pos, n)
			if int32(ui) != e.U || int32(uj) != e.V {
				t.Fatalf("n=%d edge (%d,%d) at pos %d: unrank gives (%d,%d)",
					n, e.U, e.V, pos, ui, uj)
			}
		}
	}
}

func TestGnmExactCount(t *testing.T) {
	g := Gnm(50, 200, 3)
	if g.M() != 200 {
		t.Fatalf("Gnm M=%d", g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	seen := map[[2]int32]bool{}
	for _, e := range g.Edges {
		if e.U == e.V {
			t.Fatal("self loop in Gnm")
		}
		key := [2]int32{e.U, e.V}
		if seen[key] {
			t.Fatal("duplicate edge in Gnm")
		}
		seen[key] = true
	}
}

func TestGnmCapsAtCompleteGraph(t *testing.T) {
	g := Gnm(5, 100, 3)
	if g.M() != 10 {
		t.Fatalf("Gnm should cap at 10, got %d", g.M())
	}
}

func TestRandomRegularApproxDegree(t *testing.T) {
	g := RandomRegular(200, 6, 11)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	deg := g.Degrees()
	low := 0
	for _, d := range deg {
		if d > 6 {
			t.Fatalf("degree %d exceeds 6", d)
		}
		if d < 5 {
			low++
		}
	}
	if low > 20 {
		t.Fatalf("%d/200 vertices lost 2+ stubs; configuration model broken?", low)
	}
}

func TestBarbellStructure(t *testing.T) {
	g := Barbell(10, 3)
	if g.N != 22 {
		t.Fatalf("N=%d", g.N)
	}
	want := 45 + 45 + 3
	if g.M() != want {
		t.Fatalf("M=%d want %d", g.M(), want)
	}
	if !graph.IsConnected(g) {
		t.Fatal("barbell disconnected")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBarbellMinimalBridge(t *testing.T) {
	g := Barbell(5, 1)
	if g.N != 10 {
		t.Fatalf("N=%d", g.N)
	}
	if !graph.IsConnected(g) {
		t.Fatal("disconnected")
	}
}

func TestPreferentialAttachmentConnected(t *testing.T) {
	g := PreferentialAttachment(300, 3, 5)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !graph.IsConnected(g) {
		t.Fatal("PA graph disconnected")
	}
	if g.M() < 3*290 {
		t.Fatalf("PA graph too sparse: %d", g.M())
	}
}

func TestPlantedPartitionDensities(t *testing.T) {
	n, k := 200, 4
	g := PlantedPartition(n, k, 0.5, 0.02, 9)
	comm := func(v int32) int { return int(v) * k / n }
	intra, inter := 0, 0
	for _, e := range g.Edges {
		if comm(e.U) == comm(e.V) {
			intra++
		} else {
			inter++
		}
	}
	if intra < inter {
		t.Fatalf("planted partition not assortative: intra=%d inter=%d", intra, inter)
	}
}

func TestWithRandomWeightsRange(t *testing.T) {
	g := WithRandomWeights(Complete(20), 2, 5, 13)
	for _, e := range g.Edges {
		if e.W < 2 || e.W > 5 {
			t.Fatalf("weight %v outside [2,5]", e.W)
		}
	}
}

func TestImageAffinityValidConnected(t *testing.T) {
	g := ImageAffinity(16, 16, 0.2, 21)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !graph.IsConnected(g) {
		t.Fatal("affinity grid disconnected")
	}
	// Weights must span a nontrivial range (edges across blob borders
	// are much weaker).
	lo, _ := g.MinWeight()
	hi, _ := g.MaxWeight()
	if hi/lo < 100 {
		t.Fatalf("affinity dynamic range too small: %v", hi/lo)
	}
}

func TestSyntheticImageInRange(t *testing.T) {
	img := SyntheticImage(20, 30, 4)
	if len(img) != 600 {
		t.Fatalf("len=%d", len(img))
	}
	for i, v := range img {
		if v < 0 || v > 1 {
			t.Fatalf("pixel %d = %v out of range", i, v)
		}
	}
}
