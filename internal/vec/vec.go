// Package vec provides the dense vector kernels used by the iterative
// solvers: BLAS-1 style operations with optional goroutine parallelism
// for long vectors.
package vec

import (
	"math"

	"repro/internal/parutil"
)

// Dot returns the inner product <x, y>.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("vec: Dot length mismatch")
	}
	if len(x) < parutil.MinGrain {
		s := 0.0
		for i, v := range x {
			s += v * y[i]
		}
		return s
	}
	return parutil.SumFloat(len(x), func(i int) float64 { return x[i] * y[i] })
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	return math.Sqrt(Dot(x, x))
}

// Axpy computes y += a*x in place.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("vec: Axpy length mismatch")
	}
	if len(x) < parutil.MinGrain {
		for i, v := range x {
			y[i] += a * v
		}
		return
	}
	parutil.ForBlocks(len(x), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			y[i] += a * x[i]
		}
	})
}

// Scale multiplies x by a in place.
func Scale(a float64, x []float64) {
	parutil.ForBlocks(len(x), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x[i] *= a
		}
	})
}

// Copy copies src into dst (lengths must match).
func Copy(dst, src []float64) {
	if len(dst) != len(src) {
		panic("vec: Copy length mismatch")
	}
	copy(dst, src)
}

// AddScaled sets dst[i] = x[i] + a*y[i].
func AddScaled(dst, x []float64, a float64, y []float64) {
	if len(dst) != len(x) || len(x) != len(y) {
		panic("vec: AddScaled length mismatch")
	}
	parutil.ForBlocks(len(x), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = x[i] + a*y[i]
		}
	})
}

// Sub sets dst = x - y.
func Sub(dst, x, y []float64) {
	AddScaled(dst, x, -1, y)
}

// Zero clears x.
func Zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// Sum returns the sum of entries.
func Sum(x []float64) float64 {
	return parutil.SumFloat(len(x), func(i int) float64 { return x[i] })
}

// ProjectOutOnes removes the mean from x, i.e. projects x onto the
// subspace orthogonal to the all-ones vector — the range space of a
// connected graph Laplacian. Solvers call this to keep iterates well
// defined despite the Laplacian's null space.
func ProjectOutOnes(x []float64) {
	if len(x) == 0 {
		return
	}
	mean := Sum(x) / float64(len(x))
	parutil.ForBlocks(len(x), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x[i] -= mean
		}
	})
}

// MaxAbs returns the infinity norm of x.
func MaxAbs(x []float64) float64 {
	m, ok := parutil.MaxFloat(len(x), func(i int) float64 { return math.Abs(x[i]) })
	if !ok {
		return 0
	}
	return m
}
