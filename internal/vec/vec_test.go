package vec

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func randVec(seed uint64, n int) []float64 {
	r := rng.New(seed)
	x := make([]float64, n)
	for i := range x {
		x[i] = r.Norm()
	}
	return x
}

func TestDotSmallAndLarge(t *testing.T) {
	for _, n := range []int{0, 3, 5000} {
		x := randVec(1, n)
		y := randVec(2, n)
		want := 0.0
		for i := range x {
			want += x[i] * y[i]
		}
		if got := Dot(x, y); math.Abs(got-want) > 1e-9*math.Abs(want)+1e-12 {
			t.Fatalf("n=%d Dot=%v want %v", n, got, want)
		}
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot(make([]float64, 3), make([]float64, 4))
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]float64{3, 4}); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Norm2=%v", got)
	}
}

func TestAxpy(t *testing.T) {
	for _, n := range []int{4, 5000} {
		x := randVec(3, n)
		y := randVec(4, n)
		want := make([]float64, n)
		for i := range want {
			want[i] = y[i] + 2.5*x[i]
		}
		Axpy(2.5, x, y)
		for i := range y {
			if math.Abs(y[i]-want[i]) > 1e-12 {
				t.Fatalf("n=%d Axpy[%d]=%v want %v", n, i, y[i], want[i])
			}
		}
	}
}

func TestScaleAndZero(t *testing.T) {
	x := []float64{1, 2, 3}
	Scale(2, x)
	if x[2] != 6 {
		t.Fatalf("Scale: %v", x)
	}
	Zero(x)
	for _, v := range x {
		if v != 0 {
			t.Fatal("Zero failed")
		}
	}
}

func TestAddScaledAndSub(t *testing.T) {
	x := []float64{1, 2}
	y := []float64{10, 20}
	dst := make([]float64, 2)
	AddScaled(dst, x, 3, y)
	if dst[0] != 31 || dst[1] != 62 {
		t.Fatalf("AddScaled: %v", dst)
	}
	Sub(dst, y, x)
	if dst[0] != 9 || dst[1] != 18 {
		t.Fatalf("Sub: %v", dst)
	}
}

func TestProjectOutOnesRemovesMean(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%100 + 1
		x := randVec(seed, n)
		ProjectOutOnes(x)
		return math.Abs(Sum(x)) < 1e-9*float64(n)+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestProjectOutOnesIdempotent(t *testing.T) {
	x := randVec(9, 50)
	ProjectOutOnes(x)
	y := make([]float64, 50)
	copy(y, x)
	ProjectOutOnes(x)
	for i := range x {
		if math.Abs(x[i]-y[i]) > 1e-12 {
			t.Fatal("projection not idempotent")
		}
	}
}

func TestMaxAbs(t *testing.T) {
	if got := MaxAbs([]float64{1, -7, 3}); got != 7 {
		t.Fatalf("MaxAbs=%v", got)
	}
	if got := MaxAbs(nil); got != 0 {
		t.Fatalf("MaxAbs(nil)=%v", got)
	}
}

func TestCopy(t *testing.T) {
	src := []float64{1, 2, 3}
	dst := make([]float64, 3)
	Copy(dst, src)
	if dst[1] != 2 {
		t.Fatal("Copy failed")
	}
}
