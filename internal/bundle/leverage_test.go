package bundle

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/resistance"
	"repro/internal/spanner"
)

// TestLemma1LeverageBound verifies the paper's Lemma 1 empirically:
// every edge outside a t-bundle spanner has w_e·R_e[G] ≤ (2k−1)/t,
// where 2k−1 is the spanner stretch (the paper states log n/t with its
// 2·log n stretch convention; 2k−1 = 2⌈log₂n⌉−1 is our exact bound).
func TestLemma1LeverageBound(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"gnp", gen.Gnp(120, 0.25, 3)},
		{"complete", gen.Complete(90)},
		{"barbell", gen.Barbell(30, 2)},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if !graph.IsConnected(tc.g) {
				t.Skip("disconnected")
			}
			res, err := resistance.AllEdgesExact(tc.g)
			if err != nil {
				t.Fatal(err)
			}
			adj := graph.NewAdjacency(tc.g)
			k := spanner.DefaultK(tc.g.N)
			stretchBound := float64(2*k - 1)
			for _, layers := range []int{1, 2, 4} {
				b := Compute(tc.g, adj, nil, Options{T: layers, Seed: 7})
				if b.Exhausted {
					continue // no non-bundle edges to check
				}
				bound := stretchBound / float64(layers)
				for i, e := range tc.g.Edges {
					if b.InBundle[i] {
						continue
					}
					if lv := e.W * res[i]; lv > bound+1e-9 {
						t.Fatalf("t=%d: edge %d leverage %v > bound %v", layers, i, lv, bound)
					}
				}
			}
		})
	}
}

// TestLeverageBoundTightensWithT checks the 1/t scaling: the max
// non-bundle leverage must (weakly) decrease as t grows.
func TestLeverageBoundTightensWithT(t *testing.T) {
	g := gen.Complete(80)
	res, err := resistance.AllEdgesExact(g)
	if err != nil {
		t.Fatal(err)
	}
	adj := graph.NewAdjacency(g)
	prev := 1e18
	for _, layers := range []int{1, 3, 6} {
		b := Compute(g, adj, nil, Options{T: layers, Seed: 9})
		if b.Exhausted {
			break
		}
		max := resistance.MaxLeverage(g, res, invert(b.InBundle))
		if max > prev*1.2 {
			t.Fatalf("max leverage grew sharply with t: %v -> %v", prev, max)
		}
		prev = max
	}
}

func invert(mask []bool) []bool {
	out := make([]bool, len(mask))
	for i, b := range mask {
		out[i] = !b
	}
	return out
}
