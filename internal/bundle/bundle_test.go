package bundle

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/spanner"
	"repro/internal/stretch"
)

func TestBundleLayersAreEdgeDisjointSpanners(t *testing.T) {
	g := gen.Gnp(200, 0.3, 7)
	adj := graph.NewAdjacency(g)
	// Rebuild the layers manually to check the peeling invariant: each
	// layer is a spanner of the graph minus the previous layers.
	tLayers := 3
	res := Compute(g, adj, nil, Options{T: tLayers, Seed: 5})
	total := 0
	for _, sz := range res.LayerSizes {
		total += sz
	}
	if got := graph.CountTrue(res.InBundle); got != total {
		t.Fatalf("bundle mask %d != layer sum %d (layers overlap?)", got, total)
	}
}

func TestBundleResidualStretchProperty(t *testing.T) {
	// After removing the bundle, reconstruct each layer independently
	// and confirm each is a valid spanner of its residual — here we just
	// verify the first layer directly (the others follow by induction
	// with their own alive masks).
	g := gen.Gnp(150, 0.3, 9)
	adj := graph.NewAdjacency(g)
	sp := spanner.Compute(g, adj, nil, spanner.Options{Seed: 5 ^ 0x517cc1b727220a95})
	k := spanner.DefaultK(g.N)
	if bad := stretch.VerifySpanner(g, sp.InSpanner, float64(2*k-1)); bad != -1 {
		t.Fatalf("first layer is not a spanner: edge %d", bad)
	}
}

func TestBundleGrowsWithT(t *testing.T) {
	g := gen.Gnp(200, 0.3, 11)
	adj := graph.NewAdjacency(g)
	prev := 0
	for _, layers := range []int{1, 2, 4} {
		res := Compute(g, adj, nil, Options{T: layers, Seed: 3})
		size := graph.CountTrue(res.InBundle)
		if size < prev {
			t.Fatalf("bundle with t=%d smaller than previous (%d < %d)", layers, size, prev)
		}
		prev = size
	}
}

func TestBundleExhaustsSparseGraph(t *testing.T) {
	g := gen.Path(50)
	adj := graph.NewAdjacency(g)
	res := Compute(g, adj, nil, Options{T: 10, Seed: 1})
	if !res.Exhausted {
		t.Fatal("path should exhaust before 10 layers")
	}
	if graph.CountTrue(res.InBundle) != g.M() {
		t.Fatal("exhausted bundle must contain every edge")
	}
}

func TestBundleRespectsAliveMask(t *testing.T) {
	g := gen.Gnp(100, 0.3, 13)
	adj := graph.NewAdjacency(g)
	alive := make([]bool, g.M())
	for i := range alive {
		alive[i] = i%2 == 0
	}
	res := Compute(g, adj, alive, Options{T: 2, Seed: 1})
	for i, in := range res.InBundle {
		if in && !alive[i] {
			t.Fatalf("dead edge %d entered bundle", i)
		}
	}
}

func TestBundleDeterministic(t *testing.T) {
	g := gen.Gnp(150, 0.25, 17)
	adj := graph.NewAdjacency(g)
	a := Compute(g, adj, nil, Options{T: 3, Seed: 21})
	b := Compute(g, adj, nil, Options{T: 3, Seed: 21})
	for i := range a.InBundle {
		if a.InBundle[i] != b.InBundle[i] {
			t.Fatalf("nondeterministic at edge %d", i)
		}
	}
}

func TestBundleZeroT(t *testing.T) {
	g := gen.Gnp(50, 0.3, 19)
	adj := graph.NewAdjacency(g)
	res := Compute(g, adj, nil, Options{T: 0, Seed: 1})
	if graph.CountTrue(res.InBundle) != 0 {
		t.Fatal("t=0 bundle must be empty")
	}
}

func TestBundleSelfLoopOnlyGraphTerminates(t *testing.T) {
	g := graph.FromEdges(2, []graph.Edge{{U: 0, V: 0, W: 1}, {U: 1, V: 1, W: 1}})
	adj := graph.NewAdjacency(g)
	res := Compute(g, adj, nil, Options{T: 5, Seed: 1})
	if !res.Exhausted {
		t.Fatal("self-loop-only graph must exhaust")
	}
}
