// Package bundle builds t-bundle spanners (Definition 1 of the paper):
// H = H_1 + ... + H_t where H_i is a log n-spanner of G − Σ_{j<i} H_j.
// The components are edge-disjoint by construction, which is what makes
// the t parallel certification paths of Lemma 1 possible.
//
// The construction iterates the Baswana–Sen spanner t times over a
// shrinking alive mask (Corollary 2: expected size O(t·n·log n), work
// O(t·m·log n), depth Õ(t·log n)).
package bundle

import (
	"repro/internal/graph"
	"repro/internal/pram"
	"repro/internal/spanner"
)

// Options configures bundle construction.
type Options struct {
	// T is the number of spanner layers.
	T int
	// K overrides the spanner parameter (0 → ⌈log₂ n⌉).
	K int
	// Seed derives the per-layer spanner seeds.
	Seed uint64
	// Tracker, when non-nil, accumulates modeled CRCW work/depth.
	Tracker *pram.Tracker
}

// Result is the output of a bundle construction.
type Result struct {
	// InBundle marks edges belonging to any component (subset of alive).
	InBundle []bool
	// LayerSizes[i] is the edge count of component H_{i+1}.
	LayerSizes []int
	// Exhausted reports that the alive edge set emptied before t layers
	// were built; the bundle then equals the whole (remaining) graph and
	// sampling will be a no-op, which is the correct degenerate case of
	// Algorithm 1 on sparse inputs.
	Exhausted bool
}

// LayerSeedMix derives each layer's spanner seed from the bundle seed.
// Exported for the distributed simulation (internal/dist), which must
// peel layers with identical seeds to stay edge-identical with Compute.
const LayerSeedMix = 0x517cc1b727220a95

// Compute builds a t-bundle spanner of the alive subgraph of g.
// alive may be nil (all edges). The returned mask has length
// len(g.Edges) and never selects a dead edge.
func Compute(g *graph.Graph, adj *graph.Adjacency, alive []bool, opt Options) *Result {
	m := len(g.Edges)
	inBundle := make([]bool, m)
	cur := make([]bool, m)
	remaining := 0
	for i := range cur {
		cur[i] = alive == nil || alive[i]
		if cur[i] {
			remaining++
		}
	}
	res := &Result{InBundle: inBundle}
	for layer := 0; layer < opt.T; layer++ {
		if remaining == 0 {
			res.Exhausted = true
			break
		}
		sp := spanner.Compute(g, adj, cur, spanner.Options{
			K:       opt.K,
			Seed:    opt.Seed ^ (uint64(layer+1) * LayerSeedMix),
			Tracker: opt.Tracker,
		})
		size := 0
		for eid, in := range sp.InSpanner {
			if in && cur[eid] {
				inBundle[eid] = true
				cur[eid] = false
				size++
			}
		}
		remaining -= size
		res.LayerSizes = append(res.LayerSizes, size)
		if size == 0 {
			// No progress is only possible when every alive edge is a
			// self-loop; treat as exhaustion to guarantee termination.
			res.Exhausted = true
			break
		}
	}
	return res
}
