package solver

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/vec"
)

func TestBuildChainOnDisconnectedGraph(t *testing.T) {
	// Two disjoint cliques: the chain must build (per-component sigma
	// deflation) and solving a per-component-mean-free system must work.
	k := gen.Complete(20)
	g := graph.New(40)
	for _, e := range k.Edges {
		g.Edges = append(g.Edges, e)
		g.Edges = append(g.Edges, graph.Edge{U: e.U + 20, V: e.V + 20, W: 1})
	}
	chain, err := BuildChain(g, ChainOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if chain.Depth() < 1 {
		t.Fatal("no levels built")
	}
	// RHS mean-free per component lies in range(L).
	b := make([]float64, 40)
	b[0], b[5] = 1, -1
	b[20], b[33] = 2, -2
	l := matrix.Laplacian(g)
	x := make([]float64, 40)
	res, err := chainPCG(l, chain, b, x, 1e-9)
	if err != nil || !res {
		t.Fatalf("disconnected solve failed: %v", err)
	}
	ax := make([]float64, 40)
	l.MulVec(ax, x)
	for i := range b {
		if math.Abs(ax[i]-b[i]) > 1e-6 {
			t.Fatalf("residual at %d: %v vs %v", i, ax[i], b[i])
		}
	}
}

// chainPCG runs CG with the chain preconditioner without the global
// ones-projection (which is wrong for disconnected graphs); instead the
// rhs is already range-compatible.
func chainPCG(l *matrix.CSR, chain *Chain, b, x []float64, tol float64) (bool, error) {
	// Plain CG loop with the chain as preconditioner; small enough to
	// inline here rather than widen the linalg API for one test.
	n := l.N
	r := make([]float64, n)
	ax := make([]float64, n)
	l.MulVec(ax, x)
	vec.Sub(r, b, ax)
	z := make([]float64, n)
	chain.Precondition(z, r)
	p := make([]float64, n)
	copy(p, z)
	rz := vec.Dot(r, z)
	normB := vec.Norm2(b)
	ap := make([]float64, n)
	for iter := 0; iter < 10*n; iter++ {
		if vec.Norm2(r) <= tol*normB {
			return true, nil
		}
		l.MulVec(ap, p)
		pap := vec.Dot(p, ap)
		if pap <= 0 {
			return false, nil
		}
		alpha := rz / pap
		vec.Axpy(alpha, p, x)
		vec.Axpy(-alpha, ap, r)
		chain.Precondition(z, r)
		rzNew := vec.Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return vec.Norm2(r) <= tol*normB, nil
}

func TestChainOnSingleEdge(t *testing.T) {
	g := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1, W: 2}})
	chain, err := BuildChain(g, ChainOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	x, res, err := SolveLaplacian(g, []float64{1, -1}, 1e-12, ChainOptions{Seed: 1})
	if err != nil || !res.Converged {
		t.Fatalf("single edge solve: %v %+v", err, res)
	}
	// R = 1/2, so potential gap must be 0.5.
	if math.Abs((x[0]-x[1])-0.5) > 1e-9 {
		t.Fatalf("potential gap %v want 0.5", x[0]-x[1])
	}
	_ = chain
}

func TestChainOnStarGraph(t *testing.T) {
	// Stars stress the two-step clique expansion (center degree n-1).
	g := gen.Star(200)
	_, res, err := SolveLaplacian(g, unitPair(200, 1, 199), 1e-9, ChainOptions{Seed: 5})
	if err != nil || !res.Converged {
		t.Fatalf("star solve failed: %v %+v", err, res)
	}
}

func TestChainExtremeWeights(t *testing.T) {
	g := gen.WithRandomWeights(gen.Grid2D(8, 8), 1e-6, 1e6, 7)
	b := unitPair(g.N, 0, g.N-1)
	x, res, err := SolveLaplacian(g, b, 1e-8, ChainOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("extreme-weight solve did not converge: %+v", res)
	}
	l := matrix.Laplacian(g)
	ax := make([]float64, g.N)
	l.MulVec(ax, x)
	vec.ProjectOutOnes(ax)
	bb := make([]float64, g.N)
	copy(bb, b)
	vec.ProjectOutOnes(bb)
	for i := range bb {
		if math.Abs(ax[i]-bb[i]) > 1e-5 {
			t.Fatalf("residual %v at %d", ax[i]-bb[i], i)
		}
	}
}

func TestTwoStepSelfLoopInput(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 1, W: 5}, {U: 1, V: 2, W: 1}})
	ts := TwoStep(g, TwoStepOptions{})
	if err := ts.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSDDZeroEntrySkipped(t *testing.T) {
	m := &SDD{N: 2, Diag: []float64{1, 1}, Entries: []SDDEntry{{I: 0, J: 1, V: 0}}}
	g := Gremban(m)
	// Zero off-diagonal contributes nothing; only the excess loops
	// remain: edges (0,0') and (1,1').
	if g.M() != 2 {
		t.Fatalf("Gremban M=%d want 2", g.M())
	}
}

func unitPair(n int, a, b int) []float64 {
	v := make([]float64, n)
	v[a], v[b] = 1, -1
	return v
}
