package solver

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/linalg"
	"repro/internal/matrix"
	"repro/internal/rng"
)

// jacobiPCG runs a plain Jacobi-preconditioned CG for iteration-count
// comparisons against the chain.
func jacobiPCG(l *matrix.CSR, b, x []float64, tol float64) (int, error) {
	res, err := linalg.CG(linalg.CSROp{M: l}, b, x, linalg.CGOptions{
		Tol: tol, ProjectOnes: true, Prec: linalg.NewJacobi(l.Diag),
		MaxIter: 200000,
	})
	if err != nil {
		return 0, err
	}
	return res.Iterations, nil
}

func TestSDDValidate(t *testing.T) {
	m := &SDD{
		N:    2,
		Diag: []float64{2, 2},
		Entries: []SDDEntry{
			{I: 0, J: 1, V: -1},
		},
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &SDD{N: 2, Diag: []float64{0.5, 2}, Entries: []SDDEntry{{I: 0, J: 1, V: -1}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("non-dominant matrix accepted")
	}
	malformed := &SDD{N: 2, Diag: []float64{1, 1}, Entries: []SDDEntry{{I: 1, J: 0, V: -1}}}
	if err := malformed.Validate(); err == nil {
		t.Fatal("lower-triangle entry accepted")
	}
}

func TestGrembanStructure(t *testing.T) {
	// Laplacian + diagonal excess + one positive off-diagonal.
	m := &SDD{
		N:    3,
		Diag: []float64{3, 4, 2},
		Entries: []SDDEntry{
			{I: 0, J: 1, V: -2}, // negative → same-phase edges
			{I: 1, J: 2, V: 1},  // positive → cross-phase edges
		},
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	g := Gremban(m)
	if g.N != 6 {
		t.Fatalf("Gremban N=%d want 6", g.N)
	}
	// 2 edges per off-diagonal + excess loops: row0 excess 1, row1
	// excess 1, row2 excess 1 → 4 + 3 = 7 edges.
	if g.M() != 7 {
		t.Fatalf("Gremban M=%d want 7", g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSolveSDDLaplacianLike(t *testing.T) {
	// SDD = Laplacian of a grid + small diagonal shift (strictly PD).
	g := gen.Grid2D(7, 7)
	n := g.N
	diag := make([]float64, n)
	for _, e := range g.Edges {
		diag[e.U] += e.W
		diag[e.V] += e.W
	}
	var entries []SDDEntry
	for _, e := range g.Edges {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		entries = append(entries, SDDEntry{I: u, J: v, V: -e.W})
	}
	for i := range diag {
		diag[i] += 0.5 // excess diagonal makes it PD and exercises (i,i') edges
	}
	m := &SDD{N: n, Diag: diag, Entries: entries}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	want := make([]float64, n)
	for i := range want {
		want[i] = r.Norm()
	}
	b := make([]float64, n)
	m.MulVec(b, want)
	x, res, err := SolveSDD(m, b, 1e-10, ChainOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("SDD solve did not converge: %+v", res)
	}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-6 {
			t.Fatalf("x[%d]=%v want %v", i, x[i], want[i])
		}
	}
}

func TestSolveSDDWithPositiveOffDiagonals(t *testing.T) {
	// A signed system: mix of positive and negative couplings, strictly
	// dominant diagonal.
	n := 30
	r := rng.New(7)
	var entries []SDDEntry
	rowAbs := make([]float64, n)
	for i := 0; i < n-1; i++ {
		v := 1.0
		if r.Bernoulli(0.5) {
			v = -1.0
		}
		entries = append(entries, SDDEntry{I: int32(i), J: int32(i + 1), V: v})
		rowAbs[i]++
		rowAbs[i+1]++
	}
	// A few long-range couplings.
	for t2 := 0; t2 < 20; t2++ {
		i, j := int32(r.Intn(n)), int32(r.Intn(n))
		if i == j {
			continue
		}
		if i > j {
			i, j = j, i
		}
		entries = append(entries, SDDEntry{I: i, J: j, V: 0.5})
		rowAbs[i] += 0.5
		rowAbs[j] += 0.5
	}
	diag := make([]float64, n)
	for i := range diag {
		diag[i] = rowAbs[i] + 1
	}
	m := &SDD{N: n, Diag: diag, Entries: entries}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	want := make([]float64, n)
	for i := range want {
		want[i] = r.Norm()
	}
	b := make([]float64, n)
	m.MulVec(b, want)
	x, res, err := SolveSDD(m, b, 1e-10, ChainOptions{Seed: 9})
	if err != nil || !res.Converged {
		t.Fatalf("signed SDD solve failed: %v %+v", err, res)
	}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-6 {
			t.Fatalf("x[%d]=%v want %v", i, x[i], want[i])
		}
	}
}

func TestSolveSDDRejectsBadRHS(t *testing.T) {
	m := &SDD{N: 2, Diag: []float64{2, 2}, Entries: []SDDEntry{{I: 0, J: 1, V: -1}}}
	if _, _, err := SolveSDD(m, []float64{1}, 1e-8, ChainOptions{}); err == nil {
		t.Fatal("short rhs accepted")
	}
}

func TestGrembanSolutionRecovery(t *testing.T) {
	// Directly verify the (y − y')/2 recovery identity on a tiny system
	// solved densely: M x = b ⟺ L [x;−x] = [b;−b] exactly.
	m := &SDD{
		N:    2,
		Diag: []float64{3, 3},
		Entries: []SDDEntry{
			{I: 0, J: 1, V: 1}, // positive coupling
		},
	}
	// x = (1, -1): M x = (3·1 + 1·(−1), 1·1 + 3·(−1)) = (2, −2).
	b := []float64{2, -2}
	x, res, err := SolveSDD(m, b, 1e-12, ChainOptions{Seed: 1})
	if err != nil || !res.Converged {
		t.Fatalf("solve failed: %v %+v", err, res)
	}
	if math.Abs(x[0]-1) > 1e-8 || math.Abs(x[1]+1) > 1e-8 {
		t.Fatalf("x=%v want (1,-1)", x)
	}
}
