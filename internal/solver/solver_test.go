package solver

import (
	"math"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/rng"
	"repro/internal/vec"
)

func TestTwoStepIsLaplacian(t *testing.T) {
	// Row sums of D − A·D⁻¹·A are zero, so the two-step graph's degrees
	// must equal the original weighted degrees.
	g := gen.Gnp(60, 0.2, 3)
	ts := TwoStep(g, TwoStepOptions{})
	origDeg := g.WeightedDegrees()
	newDeg := ts.WeightedDegrees()
	for v := range origDeg {
		// Degree shrinks by the self-loop mass Σ_k w_vk²/d_k.
		if newDeg[v] > origDeg[v]+1e-9 {
			t.Fatalf("vertex %d two-step degree %v exceeds original %v", v, newDeg[v], origDeg[v])
		}
	}
	if err := ts.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTwoStepExactMatchesAlgebra(t *testing.T) {
	// Compare the exact clique expansion against the dense formula
	// D − A·D⁻¹·A on a small graph.
	g := gen.Gnp(25, 0.35, 5)
	ts := TwoStep(g, TwoStepOptions{ExactDegree: 1000})
	n := g.N
	// Dense A and D.
	a := matrix.NewDense(n, n)
	d := make([]float64, n)
	for _, e := range g.Edges {
		a.Set(int(e.U), int(e.V), a.At(int(e.U), int(e.V))+e.W)
		a.Set(int(e.V), int(e.U), a.At(int(e.V), int(e.U))+e.W)
		d[e.U] += e.W
		d[e.V] += e.W
	}
	want := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				if d[k] > 0 {
					s += a.At(i, k) * a.At(k, j) / d[k]
				}
			}
			if i == j {
				want.Set(i, j, d[i]-s)
			} else {
				want.Set(i, j, -s)
			}
		}
	}
	got := matrix.Laplacian(ts).Dense()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if math.Abs(got.At(i, j)-want.At(i, j)) > 1e-9 {
				t.Fatalf("L2[%d][%d]=%v want %v", i, j, got.At(i, j), want.At(i, j))
			}
		}
	}
}

func TestTwoStepSampledUnbiased(t *testing.T) {
	// The sampled clique expansion must preserve total weight in
	// expectation: average over seeds and compare against exact.
	g := gen.Gnp(40, 0.5, 7) // degrees ~20 > ExactDegree=4 forces sampling
	exact := TwoStep(g, TwoStepOptions{ExactDegree: 1000}).TotalWeight()
	trials := 30
	sum := 0.0
	for s := 0; s < trials; s++ {
		ts := TwoStep(g, TwoStepOptions{ExactDegree: 4, SampleFactor: 8, Seed: uint64(s)})
		sum += ts.TotalWeight()
	}
	mean := sum / float64(trials)
	if math.Abs(mean-exact)/exact > 0.05 {
		t.Fatalf("sampled two-step biased: mean %v exact %v", mean, exact)
	}
}

func TestTwoStepBipartiteDisconnects(t *testing.T) {
	// A path is bipartite: its two-step graph splits into the two sides.
	g := gen.Path(6)
	ts := TwoStep(g, TwoStepOptions{})
	_, count := graph.Components(ts, nil)
	if count != 2 {
		t.Fatalf("two-step of a path has %d components, want 2 (odd/even)", count)
	}
}

func TestEstimateSigmaDropsAfterTwoStep(t *testing.T) {
	g := gen.Grid2D(10, 10)
	l1 := matrix.Laplacian(g)
	lvl1 := newLevel(g)
	ts := TwoStep(g, TwoStepOptions{})
	lvl2 := newLevel(ts)
	_ = l1
	// σ₂ should square (approximately) under the two-step map.
	if lvl2.Sigma > lvl1.Sigma+0.05 {
		t.Fatalf("sigma did not contract: %v -> %v", lvl1.Sigma, lvl2.Sigma)
	}
}

func TestBuildChainTerminates(t *testing.T) {
	g := gen.Grid2D(12, 12)
	chain, err := BuildChain(g, ChainOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if chain.Depth() < 2 {
		t.Fatalf("grid chain depth %d suspiciously small", chain.Depth())
	}
	if chain.Depth() > 40 {
		t.Fatalf("chain did not terminate before cap: %d", chain.Depth())
	}
	last := chain.Levels[chain.Depth()-1]
	if last.Sigma > 0.5+1e-9 && chain.Depth() < 40 {
		t.Fatalf("chain stopped early with sigma %v", last.Sigma)
	}
}

// TestBuildChainSurfacesSparsifyError: a per-round accuracy outside
// (0,1] inside a level sparsification must fail BuildChain with a
// level-tagged error, not silently keep the unsparsified level (the
// error was discarded with `sp, _ :=` before this test existed).
func TestBuildChainSurfacesSparsifyError(t *testing.T) {
	// Eps is huge so the per-round eps of the level sparsifier is > 1;
	// withDefaults only fixes Eps <= 0, so 1e6 survives. Grid2D(12,12)
	// densifies under TwoStep, forcing the sparsify branch.
	_, err := BuildChain(gen.Grid2D(12, 12), ChainOptions{Seed: 3, Eps: 1e6})
	if err == nil {
		t.Fatal("BuildChain accepted an illegal level eps")
	}
	if !strings.Contains(err.Error(), "chain level") {
		t.Fatalf("error %q does not name the failing level", err)
	}
}

func TestChainApplyIsSPD(t *testing.T) {
	// xᵀ·C·x > 0 for the chain operator C on a few random probes, and
	// symmetric: <x, C·y> == <C·x, y>.
	g := gen.Grid2D(8, 8)
	chain, err := BuildChain(g, ChainOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	n := g.N
	r := rng.New(11)
	x := make([]float64, n)
	y := make([]float64, n)
	cx := make([]float64, n)
	cy := make([]float64, n)
	for trial := 0; trial < 5; trial++ {
		for i := range x {
			x[i] = r.Norm()
			y[i] = r.Norm()
		}
		chain.Apply(cx, x)
		chain.Apply(cy, y)
		if quad := vec.Dot(x, cx); quad <= 0 {
			t.Fatalf("chain not PD: xᵀCx = %v", quad)
		}
		sym := vec.Dot(x, cy) - vec.Dot(cx, y)
		scale := math.Abs(vec.Dot(x, cy)) + 1
		if math.Abs(sym)/scale > 1e-9 {
			t.Fatalf("chain not symmetric: diff %v", sym)
		}
	}
}

func TestSolveLaplacianGrid(t *testing.T) {
	g := gen.Grid2D(15, 15)
	n := g.N
	r := rng.New(13)
	want := make([]float64, n)
	for i := range want {
		want[i] = r.Norm()
	}
	vec.ProjectOutOnes(want)
	l := matrix.Laplacian(g)
	b := make([]float64, n)
	l.MulVec(b, want)
	x, res, err := SolveLaplacian(g, b, 1e-10, ChainOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("solve did not converge: %+v", res)
	}
	vec.ProjectOutOnes(x)
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-6 {
			t.Fatalf("x[%d]=%v want %v", i, x[i], want[i])
		}
	}
}

func TestChainBeatsJacobiIterationsOnLongPath(t *testing.T) {
	// An ill-conditioned graph: chain-PCG should need far fewer
	// iterations than Jacobi-PCG.
	g := gen.Grid2D(40, 5)
	l := matrix.Laplacian(g)
	b := make([]float64, g.N)
	r := rng.New(17)
	for i := range b {
		b[i] = r.Norm()
	}
	vec.ProjectOutOnes(b)
	_, chainRes, err := SolveLaplacian(g, b, 1e-8, ChainOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, g.N)
	jacobiRes, err := jacobiPCG(l, b, x, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if chainRes.Iterations >= jacobiRes {
		t.Fatalf("chain PCG (%d iters) not better than Jacobi PCG (%d)", chainRes.Iterations, jacobiRes)
	}
}

func TestSolveLaplacianWeighted(t *testing.T) {
	g := gen.WithRandomWeights(gen.Grid2D(10, 10), 0.01, 100, 19)
	l := matrix.Laplacian(g)
	r := rng.New(23)
	want := make([]float64, g.N)
	for i := range want {
		want[i] = r.Norm()
	}
	vec.ProjectOutOnes(want)
	b := make([]float64, g.N)
	l.MulVec(b, want)
	x, res, err := SolveLaplacian(g, b, 1e-9, ChainOptions{Seed: 21})
	if err != nil || !res.Converged {
		t.Fatalf("weighted solve failed: %v %+v", err, res)
	}
	vec.ProjectOutOnes(x)
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-5 {
			t.Fatalf("x[%d]=%v want %v", i, x[i], want[i])
		}
	}
}

func TestBuildChainEmptyGraphRejected(t *testing.T) {
	if _, err := BuildChain(graph.New(5), ChainOptions{}); err == nil {
		t.Fatal("expected ErrEmptyGraph")
	}
}

func TestChainStringAndStats(t *testing.T) {
	g := gen.Grid2D(8, 8)
	chain, err := BuildChain(g, ChainOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if chain.String() == "" || chain.TotalNNZ <= 0 {
		t.Fatal("chain summary broken")
	}
	if len(chain.BuildStats) != chain.Depth() {
		t.Fatalf("stats %d != depth %d", len(chain.BuildStats), chain.Depth())
	}
}
