// Package solver implements the Peng–Spielman parallel framework for
// solving SDD linear systems (Section 4 of the paper): the two-step
// reduction M = D − A  →  M̃ = D − A·D⁻¹·A, the approximate inverse
// chain built by alternating that reduction with PARALLELSPARSIFY, the
// chain-preconditioned conjugate gradient front end (Theorem 6), and a
// Gremban reduction from general SDD matrices to Laplacians.
package solver

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/parutil"
	"repro/internal/rng"
)

// TwoStepOptions controls the construction of the two-step graph.
type TwoStepOptions struct {
	// ExactDegree: vertices with degree ≤ ExactDegree expand their
	// clique exactly; higher-degree vertices are sampled. Default 16.
	ExactDegree int
	// SampleFactor: a sampled vertex of degree d contributes
	// ⌈SampleFactor·d⌉ Monte-Carlo clique edges. Default 8. This is the
	// role played by Corollary 6.4 of Peng–Spielman (replace the
	// distance-2 cliques by sparse spectral surrogates): the surrogate
	// here is an unbiased sample whose spectral error is absorbed by the
	// sparsification round that follows.
	SampleFactor float64
	Seed         uint64
}

func (o TwoStepOptions) exactDegree() int {
	if o.ExactDegree <= 0 {
		return 16
	}
	return o.ExactDegree
}

func (o TwoStepOptions) sampleFactor() float64 {
	if o.SampleFactor <= 0 {
		return 8
	}
	return o.SampleFactor
}

// TwoStep returns the graph whose Laplacian is D − A·D⁻¹·A, where
// D and A are the degree diagonal and adjacency of g. Algebraically
// this is the union, over every vertex k, of a clique on k's neighbors
// with pair weights w_ik·w_jk/d_k (row sums check out to the original
// degrees, so the result is again a Laplacian). Parallel edges from
// overlapping cliques are merged.
func TwoStep(g *graph.Graph, opt TwoStepOptions) *graph.Graph {
	n := g.N
	adj := graph.NewAdjacency(g)
	deg := g.WeightedDegrees()
	exactDeg := opt.exactDegree()
	sampleF := opt.sampleFactor()

	perVertex := parutil.CollectShards(n, func(_ int, lo, hi int) [][]graph.Edge {
		var all [][]graph.Edge
		for vi := lo; vi < hi; vi++ {
			k := int32(vi)
			loS, hiS := adj.Range(k)
			d := int(hiS - loS)
			if d < 2 || deg[k] <= 0 {
				continue
			}
			nbrs := make([]int32, 0, d)
			ws := make([]float64, 0, d)
			for s := loS; s < hiS; s++ {
				u := adj.Nbr[s]
				if u == k {
					continue
				}
				nbrs = append(nbrs, u)
				ws = append(ws, g.Edges[adj.EID[s]].W)
			}
			if len(nbrs) < 2 {
				continue
			}
			var out []graph.Edge
			if len(nbrs) <= exactDeg {
				out = exactClique(nbrs, ws, deg[k])
			} else {
				out = sampledClique(nbrs, ws, deg[k], sampleF, opt.Seed, uint64(k))
			}
			if len(out) > 0 {
				all = append(all, out)
			}
		}
		return all
	})
	var edges []graph.Edge
	for _, block := range perVertex {
		edges = append(edges, block...)
	}
	return graph.FromEdges(n, edges).Canonical()
}

// exactClique emits all pairs (i, j) with weight w_i·w_j/d.
func exactClique(nbrs []int32, ws []float64, d float64) []graph.Edge {
	var out []graph.Edge
	for i := 0; i < len(nbrs); i++ {
		for j := i + 1; j < len(nbrs); j++ {
			if nbrs[i] == nbrs[j] {
				continue // parallel edges to the same neighbor collapse later
			}
			out = append(out, graph.Edge{U: nbrs[i], V: nbrs[j], W: ws[i] * ws[j] / d})
		}
	}
	return out
}

// sampledClique draws s = ⌈factor·deg⌉ unordered pairs with probability
// proportional to w_i·w_j and assigns each the weight C/s, where C is
// the total clique weight — an unbiased Monte-Carlo estimate of the
// exact clique Laplacian.
func sampledClique(nbrs []int32, ws []float64, d float64, factor float64, seed, salt uint64) []graph.Edge {
	degCount := len(nbrs)
	s := int(factor*float64(degCount)) + 1
	// Total clique weight C = (d² − Σw_i²)/(2d).
	sumSq := 0.0
	for _, w := range ws {
		sumSq += w * w
	}
	c := (d*d - sumSq) / (2 * d)
	if c <= 0 {
		return nil
	}
	// CDF over neighbors for w-proportional draws.
	cdf := make([]float64, degCount)
	acc := 0.0
	for i, w := range ws {
		acc += w / d
		cdf[i] = acc
	}
	r := rng.SplitAt(seed^0x8ad6e01899f1a2b7, salt)
	per := c / float64(s)
	out := make([]graph.Edge, 0, s)
	for t := 0; t < s; t++ {
		// Rejection-sample until the endpoints differ; acceptance is
		// ≥ 1/2 whenever no single neighbor holds more than half the
		// weight, and the loop is bounded for safety.
		var i, j int
		ok := false
		for attempt := 0; attempt < 64; attempt++ {
			i = drawCDF(cdf, r.Float64())
			j = drawCDF(cdf, r.Float64())
			if nbrs[i] != nbrs[j] {
				ok = true
				break
			}
		}
		if !ok {
			continue
		}
		out = append(out, graph.Edge{U: nbrs[i], V: nbrs[j], W: per})
	}
	return out
}

func drawCDF(cdf []float64, u float64) int {
	idx := sort.SearchFloat64s(cdf, u)
	if idx >= len(cdf) {
		idx = len(cdf) - 1
	}
	return idx
}
