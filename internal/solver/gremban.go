package solver

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/graph"
)

// SDD is a symmetric diagonally dominant matrix given by its diagonal
// and the strictly-upper off-diagonal entries (the lower triangle is
// implied by symmetry). Off-diagonal entries may have either sign; the
// paper's solver statement (Theorem 6) is for exactly this class.
type SDD struct {
	N    int
	Diag []float64
	// Entries lists (i, j, value) with i < j.
	Entries []SDDEntry
}

// SDDEntry is one strictly-upper off-diagonal entry.
type SDDEntry struct {
	I, J int32
	V    float64
}

// Validate checks symmetry bookkeeping and diagonal dominance
// Σ_{j≠i}|A_ij| ≤ A_ii for every row.
func (m *SDD) Validate() error {
	rowAbs := make([]float64, m.N)
	for _, e := range m.Entries {
		if e.I < 0 || e.J < 0 || int(e.I) >= m.N || int(e.J) >= m.N || e.I >= e.J {
			return fmt.Errorf("solver: SDD entry (%d,%d) invalid", e.I, e.J)
		}
		rowAbs[e.I] += math.Abs(e.V)
		rowAbs[e.J] += math.Abs(e.V)
	}
	for i := 0; i < m.N; i++ {
		if m.Diag[i]+1e-12 < rowAbs[i] {
			return fmt.Errorf("solver: row %d not diagonally dominant (diag %g < off-diag mass %g)", i, m.Diag[i], rowAbs[i])
		}
	}
	return nil
}

// MulVec computes dst = M·x.
func (m *SDD) MulVec(dst, x []float64) {
	for i := 0; i < m.N; i++ {
		dst[i] = m.Diag[i] * x[i]
	}
	for _, e := range m.Entries {
		dst[e.I] += e.V * x[e.J]
		dst[e.J] += e.V * x[e.I]
	}
}

// Gremban reduces an SDD system to a Laplacian system of twice the
// dimension: vertex i is duplicated into i and i+n;
//
//   - a negative off-diagonal A_ij = −w becomes edges (i,j) and
//     (i+n, j+n) of weight w (the "same phase" pair),
//   - a positive off-diagonal A_ij = +w becomes edges (i, j+n) and
//     (i+n, j) of weight w (the "opposite phase" pair),
//   - excess diagonal s_i = A_ii − Σ|A_ij| > 0 becomes edge (i, i+n) of
//     weight s_i/2 (the edge acts on x_i − (−x_i) = 2·x_i, so half the
//     excess reproduces s_i·x_i).
//
// With these weights L·[x; −x] = [M·x; −M·x] identically, so solving
// L·[y; y'] = [b; −b] yields x = (y − y')/2 with M·x = b — the
// reduction is exact, not an approximation.
func Gremban(m *SDD) *graph.Graph {
	n := m.N
	g := graph.New(2 * n)
	rowAbs := make([]float64, n)
	for _, e := range m.Entries {
		if e.V == 0 {
			continue
		}
		w := math.Abs(e.V)
		rowAbs[e.I] += w
		rowAbs[e.J] += w
		if e.V < 0 {
			g.Edges = append(g.Edges,
				graph.Edge{U: e.I, V: e.J, W: w},
				graph.Edge{U: e.I + int32(n), V: e.J + int32(n), W: w})
		} else {
			g.Edges = append(g.Edges,
				graph.Edge{U: e.I, V: e.J + int32(n), W: w},
				graph.Edge{U: e.I + int32(n), V: e.J, W: w})
		}
	}
	for i := 0; i < n; i++ {
		if s := m.Diag[i] - rowAbs[i]; s > 1e-300 {
			g.Edges = append(g.Edges, graph.Edge{U: int32(i), V: int32(i + n), W: s / 2})
		}
	}
	return g
}

// ErrSingularSDD indicates the reduced Laplacian is disconnected in a
// way that makes the original system singular or underdetermined for
// the given right-hand side.
var ErrSingularSDD = errors.New("solver: SDD system is singular (reduction disconnected)")

// SolveSDD solves M·x = b for an SDD matrix via the Gremban reduction
// and the chain-preconditioned Laplacian solver.
func SolveSDD(m *SDD, b []float64, tol float64, opt ChainOptions) ([]float64, SolveResult, error) {
	if len(b) != m.N {
		return nil, SolveResult{}, fmt.Errorf("solver: rhs length %d != n %d", len(b), m.N)
	}
	g := Gremban(m)
	if len(g.Edges) == 0 {
		return nil, SolveResult{}, ErrEmptyGraph
	}
	b2 := make([]float64, 2*m.N)
	for i, v := range b {
		b2[i] = v
		b2[i+m.N] = -v
	}
	y, res, err := SolveLaplacian(g, b2, tol, opt)
	if err != nil {
		return nil, res, err
	}
	x := make([]float64, m.N)
	for i := range x {
		x[i] = 0.5 * (y[i] - y[i+m.N])
	}
	return x, res, nil
}
