package solver

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/linalg"
	"repro/internal/matrix"
	"repro/internal/vec"
)

// Level is one entry of the approximate inverse chain: the Laplacian
// M_i = D_i − A_i, stored as the CSR Laplacian plus its diagonal (the
// adjacency action is recovered as A·x = D·x − L·x).
type Level struct {
	G       *graph.Graph
	L       *matrix.CSR
	InvDiag []float64
	// Sigma is the estimated second singular value of D^-½A D^-½ at
	// this level — the contraction factor the next two-step squares.
	Sigma float64
}

// Chain is a Peng–Spielman approximate inverse chain
// {M_1, M_2, ..., M_d}. Applying the chain is the parallel O(d·log n)
// depth operation of Theorem 4.5 of Peng–Spielman; here it serves as a
// fixed SPD preconditioner for CG (Theorem 6's solver).
type Chain struct {
	Levels []*Level
	// TotalNNZ is the summed non-zero count of every level, the measure
	// Theorem 6's work bound is stated in.
	TotalNNZ int
	// Stats from construction.
	BuildStats []LevelStats
}

// LevelStats records what chain construction did at one level.
type LevelStats struct {
	N            int
	EdgesIn      int
	EdgesTwoStep int
	EdgesOut     int
	Sigma        float64
	Sparsified   bool
}

// ChainOptions controls chain construction.
type ChainOptions struct {
	// MaxDepth caps the chain length. Default 40.
	MaxDepth int
	// SigmaStop terminates the chain once the off-diagonal contraction
	// σ₂ drops below it (M_i is then nearly diagonal and Jacobi closes
	// the gap). Default 0.5.
	SigmaStop float64
	// Eps is the per-level sparsifier accuracy (the paper sets
	// 1/O(log κ); practical default 0.3).
	Eps float64
	// GrowthCap: sparsify a level back whenever its two-step graph has
	// more than GrowthCap times the edges of the previous level.
	// Default 1.0 (always bring it back to the previous size, the
	// paper's "bring the graph back to its original size" rule).
	GrowthCap float64
	// LevelBundleT fixes the bundle thickness used by the per-level
	// sparsifier (default 2). The ε-driven formula t = Θ(log²n/ε²)
	// saturates every level at laptop scale (no reduction at all); a
	// fixed thin bundle keeps levels shrinking, and the outer PCG
	// absorbs the extra per-level error in iterations — the practical
	// counterpart of the paper's ε = 1/O(log κ) rule.
	LevelBundleT int
	// TwoStep options.
	TwoStep TwoStepOptions
	Seed    uint64
	// SparsifyCfg overrides the sparsifier configuration (zero value →
	// core.DefaultConfig(Seed) with LevelBundleT).
	SparsifyCfg *core.Config
}

func (o ChainOptions) withDefaults() ChainOptions {
	if o.MaxDepth <= 0 {
		o.MaxDepth = 40
	}
	if o.SigmaStop <= 0 {
		o.SigmaStop = 0.5
	}
	if o.Eps <= 0 {
		o.Eps = 0.3
	}
	if o.GrowthCap <= 0 {
		o.GrowthCap = 1.0
	}
	if o.LevelBundleT <= 0 {
		o.LevelBundleT = 2
	}
	return o
}

// ErrEmptyGraph is returned for graphs with no edges.
var ErrEmptyGraph = errors.New("solver: cannot build chain for empty graph")

// BuildChain constructs the approximate inverse chain of g.
func BuildChain(g *graph.Graph, opt ChainOptions) (*Chain, error) {
	opt = opt.withDefaults()
	if len(g.Edges) == 0 {
		return nil, ErrEmptyGraph
	}
	cur := g.Canonical()
	chain := &Chain{}
	for depth := 0; depth < opt.MaxDepth; depth++ {
		lvl := newLevel(cur)
		chain.Levels = append(chain.Levels, lvl)
		chain.TotalNNZ += lvl.L.NNZ()
		stats := LevelStats{N: cur.N, EdgesIn: len(cur.Edges), Sigma: lvl.Sigma}
		if lvl.Sigma <= opt.SigmaStop {
			chain.BuildStats = append(chain.BuildStats, stats)
			break
		}
		next := TwoStep(cur, TwoStepOptions{
			ExactDegree:  opt.TwoStep.ExactDegree,
			SampleFactor: opt.TwoStep.SampleFactor,
			Seed:         opt.Seed ^ uint64(depth)*0x9e3779b97f4a7c15,
		})
		stats.EdgesTwoStep = len(next.Edges)
		// Sparsify back whenever the two-step graph outgrew the cap.
		limit := int(opt.GrowthCap * float64(len(cur.Edges)))
		if limit < cur.N {
			limit = cur.N
		}
		if len(next.Edges) > limit {
			rho := float64(len(next.Edges)) / float64(limit)
			cfg := core.DefaultConfig(opt.Seed ^ uint64(depth+1)*0xd1342543de82ef95)
			cfg.BundleT = opt.LevelBundleT
			if opt.SparsifyCfg != nil {
				cfg = *opt.SparsifyCfg
				cfg.Seed ^= uint64(depth+1) * 0xd1342543de82ef95
			}
			sp, _, err := core.ParallelSparsify(next, opt.Eps, rho, cfg)
			if err != nil {
				// A failed level sparsification must not poison the
				// hierarchy: surface it instead of building on the
				// unsparsified (or partial) level.
				return nil, fmt.Errorf("solver: chain level %d: %w", depth, err)
			}
			// The sample rounds always keep a full spanner of the graph
			// they see, so every component of next stays connected in sp
			// — no connectivity guard needed (two-step graphs of
			// bipartite inputs are legitimately disconnected).
			next = sp.Canonical()
			stats.Sparsified = true
		}
		stats.EdgesOut = len(next.Edges)
		chain.BuildStats = append(chain.BuildStats, stats)
		cur = next
	}
	return chain, nil
}

// newLevel assembles the CSR Laplacian and diagnostics for a level.
func newLevel(g *graph.Graph) *Level {
	l := matrix.Laplacian(g)
	inv := make([]float64, g.N)
	for i, d := range l.Diag {
		if d > 0 {
			inv[i] = 1 / d
		}
	}
	return &Level{G: g, L: l, InvDiag: inv, Sigma: estimateSigma2(g, l, inv)}
}

// estimateSigma2 estimates the second-largest singular value of
// S = D^-½ A D^-½ by power iteration with the Perron vectors deflated.
// σ₂ < 1 measures how far M = D−A is from singular beyond its null
// space; the two-step reduction squares it.
//
// S has one unit eigenvalue per connected component (D^½·1 restricted
// to the component) — and two-step graphs of bipartite inputs are
// disconnected, so deflating only the global D^½·1 would leave a
// spurious σ = 1 and the chain would never detect convergence. The
// deflation basis is therefore per-component.
func estimateSigma2(g *graph.Graph, l *matrix.CSR, invDiag []float64) float64 {
	n := l.N
	if n == 1 {
		return 0
	}
	labels, count := graph.Components(g, nil)
	// Per-component Perron vectors D^½·1_C, orthonormal by disjoint
	// support after normalization.
	basis := make([][]float64, 0, count)
	for c := 0; c < count; c++ {
		v := make([]float64, n)
		for i := 0; i < n; i++ {
			if int(labels[i]) == c && invDiag[i] > 0 {
				v[i] = math.Sqrt(1 / invDiag[i])
			}
		}
		if nrm := vec.Norm2(v); nrm > 0 {
			vec.Scale(1/nrm, v)
			basis = append(basis, v)
		}
	}
	if len(basis) == 0 {
		return 0
	}
	// Deterministic pseudo-random start.
	x := make([]float64, n)
	state := uint64(0x9e3779b97f4a7c15)
	for i := range x {
		state = state*6364136223846793005 + 1442695040888963407
		x[i] = float64(int64(state>>11))/(1<<52) - 1
	}
	deflate := func(v []float64) {
		for _, q := range basis {
			d := vec.Dot(v, q)
			vec.Axpy(-d, q, v)
		}
	}
	deflate(x)
	if nx := vec.Norm2(x); nx > 0 {
		vec.Scale(1/nx, x)
	}
	tmp := make([]float64, n)
	y := make([]float64, n)
	sigma := 0.0
	for iter := 0; iter < 60; iter++ {
		// y = S x = D^-½ (D − L) D^-½ x, applied in parts. Apply twice
		// (SᵀS = S² since S symmetric) to get |λ|₂ including negatives.
		applyS(l, invDiag, tmp, x, y)
		deflate(y)
		applyS(l, invDiag, tmp, y, x)
		deflate(x)
		nx := vec.Norm2(x)
		if nx == 0 {
			return 0
		}
		newSigma := math.Sqrt(nx)
		vec.Scale(1/nx, x)
		if iter > 4 && math.Abs(newSigma-sigma) < 1e-3*newSigma {
			sigma = newSigma
			break
		}
		sigma = newSigma
	}
	if sigma > 1 {
		sigma = 1
	}
	return sigma
}

// applyS computes dst = D^-½ A D^-½ x with A·v = D·v − L·v.
func applyS(l *matrix.CSR, invDiag []float64, tmp, x, dst []float64) {
	n := l.N
	for i := 0; i < n; i++ {
		tmp[i] = x[i] * math.Sqrt(invDiag[i])
	}
	l.MulVec(dst, tmp)
	for i := 0; i < n; i++ {
		av := l.Diag[i]*tmp[i] - dst[i]
		dst[i] = av * math.Sqrt(invDiag[i])
	}
}

// Apply runs one pass of the Peng–Spielman recursion
//
//	M⁻¹ ≈ ½·[D⁻¹ + (I + D⁻¹A)·M̃⁺·(I + A·D⁻¹)]
//
// down the chain, with a Jacobi solve at the bottom level. The result
// is a fixed SPD linear operator approximating L⁺, suitable as a CG
// preconditioner.
func (c *Chain) Apply(dst, b []float64) {
	c.applyLevel(0, dst, b)
}

func (c *Chain) applyLevel(i int, dst, b []float64) {
	lvl := c.Levels[i]
	n := len(b)
	if i == len(c.Levels)-1 {
		// Bottom: M_d is nearly diagonal; Jacobi is the paper's
		// "essentially the identity" base case.
		for j := 0; j < n; j++ {
			dst[j] = b[j] * lvl.InvDiag[j]
		}
		return
	}
	// u = (I + A·D⁻¹)·b
	u := make([]float64, n)
	t := make([]float64, n)
	for j := 0; j < n; j++ {
		t[j] = b[j] * lvl.InvDiag[j]
	}
	lvl.L.MulVec(u, t) // u = L·D⁻¹·b
	for j := 0; j < n; j++ {
		// A·D⁻¹·b = D·D⁻¹·b − L·D⁻¹·b = b − u
		u[j] = b[j] + (b[j] - u[j])
	}
	v := make([]float64, n)
	c.applyLevel(i+1, v, u)
	// w = (I + D⁻¹A)·v = v + D⁻¹(D·v − L·v) = 2v − D⁻¹·L·v
	lvl.L.MulVec(t, v)
	for j := 0; j < n; j++ {
		w := 2*v[j] - lvl.InvDiag[j]*t[j]
		dst[j] = 0.5 * (b[j]*lvl.InvDiag[j] + w)
	}
}

// Precondition implements linalg.Preconditioner.
func (c *Chain) Precondition(dst, r []float64) { c.Apply(dst, r) }

// Depth returns the chain length d.
func (c *Chain) Depth() int { return len(c.Levels) }

// String summarizes the chain.
func (c *Chain) String() string {
	return fmt.Sprintf("chain{depth=%d nnz=%d}", len(c.Levels), c.TotalNNZ)
}

// SolveResult reports a linear solve.
type SolveResult struct {
	Iterations int
	Residual   float64
	Converged  bool
	ChainDepth int
	ChainNNZ   int
}

// SolveLaplacian solves L_g·x = b (b must be ⊥ 1; it is projected if
// not) to relative residual tol using chain-preconditioned CG, building
// the chain with opt. It returns the solution and solve statistics.
func SolveLaplacian(g *graph.Graph, b []float64, tol float64, opt ChainOptions) ([]float64, SolveResult, error) {
	chain, err := BuildChain(g, opt)
	if err != nil {
		return nil, SolveResult{}, err
	}
	l := matrix.Laplacian(g)
	x := make([]float64, g.N)
	res, err := linalg.CG(linalg.CSROp{M: l}, b, x, linalg.CGOptions{
		Tol: tol, ProjectOnes: true, Prec: chain,
		MaxIter: 20*g.N + 200,
	})
	sr := SolveResult{
		Iterations: res.Iterations,
		Residual:   res.Residual,
		Converged:  res.Converged,
		ChainDepth: chain.Depth(),
		ChainNNZ:   chain.TotalNNZ,
	}
	return x, sr, err
}
