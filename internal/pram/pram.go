// Package pram provides work/depth cost accounting in the CRCW PRAM
// model used by the paper's Theorems 1, 4 and 5.
//
// The paper states its parallel guarantees as total work and parallel
// time (depth) on an idealized machine with unbounded processors. Real
// wall-clock on a fixed host cannot exhibit those asymptotics, so the
// algorithms in this repository optionally record their *modeled* costs:
// a sequential step of cost c adds c to both work and depth; a parallel
// loop of n unit-cost iterations adds n to work but only its critical
// path (the per-iteration cost, i.e. 1 for a flat loop) to depth.
// The experiment harness checks the recorded totals against the paper's
// O(m log n)-style bounds.
package pram

import "sync/atomic"

// Tracker accumulates modeled PRAM work and depth. A nil *Tracker is
// valid and records nothing, so instrumented algorithms need no
// conditionals at call sites. Tracker is safe for concurrent use.
type Tracker struct {
	work  atomic.Int64
	depth atomic.Int64
}

// New returns an empty tracker.
func New() *Tracker { return &Tracker{} }

// Work returns the accumulated modeled work.
func (t *Tracker) Work() int64 {
	if t == nil {
		return 0
	}
	return t.work.Load()
}

// Depth returns the accumulated modeled depth (critical path length).
func (t *Tracker) Depth() int64 {
	if t == nil {
		return 0
	}
	return t.depth.Load()
}

// Seq records a sequential step of the given cost: it adds cost to both
// work and depth.
func (t *Tracker) Seq(cost int64) {
	if t == nil || cost <= 0 {
		return
	}
	t.work.Add(cost)
	t.depth.Add(cost)
}

// ParFor records a flat parallel loop performing total units of work
// whose iterations each cost at most perItem: work += total,
// depth += perItem.
func (t *Tracker) ParFor(total, perItem int64) {
	if t == nil {
		return
	}
	if total > 0 {
		t.work.Add(total)
	}
	if perItem > 0 {
		t.depth.Add(perItem)
	}
}

// ParReduce records a parallel reduction over n items: work += n,
// depth += ceil(log2 n) + 1, the cost of a balanced combining tree.
func (t *Tracker) ParReduce(n int64) {
	if t == nil || n <= 0 {
		return
	}
	t.work.Add(n)
	t.depth.Add(log2ceil(n) + 1)
}

// Add merges the totals of other into t (used when a sub-computation
// runs with its own tracker in parallel with others: the caller decides
// whether to merge sequentially or in parallel).
func (t *Tracker) Add(other *Tracker) {
	if t == nil || other == nil {
		return
	}
	t.work.Add(other.Work())
	t.depth.Add(other.Depth())
}

// AddParallel merges other's work into t but contributes only the
// maximum of the current depth delta — callers that fan out k trackers
// in parallel should instead use MergeParallel, which handles the max.
func MergeParallel(t *Tracker, branches ...*Tracker) {
	if t == nil {
		return
	}
	var maxDepth int64
	for _, b := range branches {
		if b == nil {
			continue
		}
		t.work.Add(b.Work())
		if d := b.Depth(); d > maxDepth {
			maxDepth = d
		}
	}
	t.depth.Add(maxDepth)
}

func log2ceil(n int64) int64 {
	var l int64
	v := int64(1)
	for v < n {
		v <<= 1
		l++
	}
	return l
}
