package pram

import (
	"sync"
	"testing"
)

func TestNilTrackerIsSafe(t *testing.T) {
	var tr *Tracker
	tr.Seq(5)
	tr.ParFor(10, 1)
	tr.ParReduce(8)
	tr.Add(New())
	if tr.Work() != 0 || tr.Depth() != 0 {
		t.Fatal("nil tracker accumulated")
	}
}

func TestSeqAddsBoth(t *testing.T) {
	tr := New()
	tr.Seq(3)
	tr.Seq(4)
	if tr.Work() != 7 || tr.Depth() != 7 {
		t.Fatalf("work=%d depth=%d", tr.Work(), tr.Depth())
	}
}

func TestParForDepthIsPerItem(t *testing.T) {
	tr := New()
	tr.ParFor(1000, 2)
	if tr.Work() != 1000 {
		t.Fatalf("work=%d", tr.Work())
	}
	if tr.Depth() != 2 {
		t.Fatalf("depth=%d", tr.Depth())
	}
}

func TestParReduceLogDepth(t *testing.T) {
	tr := New()
	tr.ParReduce(1024)
	if tr.Work() != 1024 {
		t.Fatalf("work=%d", tr.Work())
	}
	if tr.Depth() != 11 { // log2(1024)+1
		t.Fatalf("depth=%d want 11", tr.Depth())
	}
}

func TestMergeParallelTakesMaxDepth(t *testing.T) {
	a, b, c := New(), New(), New()
	a.ParFor(100, 5)
	b.ParFor(200, 9)
	c.ParFor(50, 2)
	root := New()
	MergeParallel(root, a, b, c)
	if root.Work() != 350 {
		t.Fatalf("work=%d", root.Work())
	}
	if root.Depth() != 9 {
		t.Fatalf("depth=%d want max branch depth 9", root.Depth())
	}
}

func TestConcurrentAccumulation(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				tr.Seq(1)
			}
		}()
	}
	wg.Wait()
	if tr.Work() != 8000 {
		t.Fatalf("work=%d want 8000", tr.Work())
	}
}

func TestNegativeCostsIgnored(t *testing.T) {
	tr := New()
	tr.Seq(-5)
	tr.ParFor(-1, -1)
	tr.ParReduce(-3)
	if tr.Work() != 0 || tr.Depth() != 0 {
		t.Fatalf("negative costs accumulated: work=%d depth=%d", tr.Work(), tr.Depth())
	}
}
