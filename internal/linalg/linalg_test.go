package linalg

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/matrix"
	"repro/internal/rng"
	"repro/internal/vec"
)

func TestCGSolvesSPD(t *testing.T) {
	// 2x2 SPD system with known solution.
	a := FuncOp{N: 2, Fn: func(dst, x []float64) {
		dst[0] = 4*x[0] + x[1]
		dst[1] = x[0] + 3*x[1]
	}}
	b := []float64{1, 2}
	x := make([]float64, 2)
	res, err := CG(a, b, x, CGOptions{Tol: 1e-12})
	if err != nil || !res.Converged {
		t.Fatalf("CG failed: %v %+v", err, res)
	}
	// Verify A·x = b.
	ax := make([]float64, 2)
	a.Apply(ax, x)
	for i := range b {
		if math.Abs(ax[i]-b[i]) > 1e-9 {
			t.Fatalf("residual too large: %v vs %v", ax, b)
		}
	}
}

func TestCGLaplacianWithProjection(t *testing.T) {
	g := gen.Grid2D(8, 8)
	l := matrix.Laplacian(g)
	n := g.N
	r := rng.New(3)
	// Manufactured solution ⊥ 1.
	want := make([]float64, n)
	for i := range want {
		want[i] = r.Norm()
	}
	vec.ProjectOutOnes(want)
	b := make([]float64, n)
	l.MulVec(b, want)
	x := make([]float64, n)
	res, err := CG(CSROp{M: l}, b, x, CGOptions{Tol: 1e-12, ProjectOnes: true, Prec: NewJacobi(l.Diag)})
	if err != nil || !res.Converged {
		t.Fatalf("CG on Laplacian failed: %v %+v", err, res)
	}
	vec.ProjectOutOnes(x)
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-7 {
			t.Fatalf("x[%d]=%v want %v", i, x[i], want[i])
		}
	}
}

func TestCGZeroRHS(t *testing.T) {
	g := gen.Path(10)
	l := matrix.Laplacian(g)
	x := make([]float64, g.N)
	x[0] = 5 // non-zero initial guess must be wiped
	res, err := CG(CSROp{M: l}, make([]float64, g.N), x, CGOptions{ProjectOnes: true})
	if err != nil || !res.Converged {
		t.Fatalf("zero rhs: %v %+v", err, res)
	}
	for _, v := range x {
		if v != 0 {
			t.Fatal("zero rhs must give zero solution")
		}
	}
}

func TestCGJacobiHelpsOnWeightedGraph(t *testing.T) {
	g := gen.WithRandomWeights(gen.Grid2D(12, 12), 0.001, 1000, 7)
	l := matrix.Laplacian(g)
	b := make([]float64, g.N)
	r := rng.New(5)
	for i := range b {
		b[i] = r.Norm()
	}
	vec.ProjectOutOnes(b)
	solve := func(prec Preconditioner) int {
		x := make([]float64, g.N)
		res, _ := CG(CSROp{M: l}, b, x, CGOptions{Tol: 1e-8, ProjectOnes: true, Prec: prec, MaxIter: 100000})
		if !res.Converged {
			t.Fatalf("CG did not converge")
		}
		return res.Iterations
	}
	plain := solve(nil)
	jacobi := solve(NewJacobi(l.Diag))
	if jacobi > plain {
		t.Fatalf("Jacobi (%d iters) slower than identity (%d) on badly scaled graph", jacobi, plain)
	}
}

func TestCGBreakdownOnIndefinite(t *testing.T) {
	a := FuncOp{N: 2, Fn: func(dst, x []float64) {
		dst[0] = -x[0]
		dst[1] = -x[1]
	}}
	x := make([]float64, 2)
	_, err := CG(a, []float64{1, 1}, x, CGOptions{})
	if err == nil {
		t.Fatal("expected breakdown on negative definite operator")
	}
}

func TestJacobiPrecZeroDiagonalPassThrough(t *testing.T) {
	p := NewJacobi([]float64{2, 0})
	dst := make([]float64, 2)
	p.Precondition(dst, []float64{4, 3})
	if dst[0] != 2 || dst[1] != 3 {
		t.Fatalf("Jacobi: %v", dst)
	}
}

func TestPencilMaxEigIdenticalGraphs(t *testing.T) {
	g := gen.Gnp(60, 0.2, 11)
	l := matrix.Laplacian(g)
	prec := NewJacobi(l.Diag)
	solve := func(dst, rhs []float64) {
		vec.Zero(dst)
		_, _ = CG(CSROp{M: l}, rhs, dst, CGOptions{Tol: 1e-10, ProjectOnes: true, Prec: prec})
	}
	lambda := PencilMaxEig(CSROp{M: l}, CSROp{M: l}, solve, PencilOptions{Seed: 5})
	if math.Abs(lambda-1) > 1e-6 {
		t.Fatalf("λmax(L,L)=%v want 1", lambda)
	}
}

func TestPencilMaxEigScaledGraph(t *testing.T) {
	g := gen.Grid2D(6, 6)
	h := g.Scale(2.5)
	lg := matrix.Laplacian(g)
	lh := matrix.Laplacian(h)
	prec := NewJacobi(lg.Diag)
	solve := func(dst, rhs []float64) {
		vec.Zero(dst)
		_, _ = CG(CSROp{M: lg}, rhs, dst, CGOptions{Tol: 1e-10, ProjectOnes: true, Prec: prec})
	}
	lambda := PencilMaxEig(CSROp{M: lg}, CSROp{M: lh}, solve, PencilOptions{Seed: 6, Tol: 1e-8, MaxIter: 500})
	if math.Abs(lambda-2.5) > 1e-4 {
		t.Fatalf("λmax=%v want 2.5", lambda)
	}
}

func TestFuncPrec(t *testing.T) {
	p := FuncPrec{Fn: func(dst, r []float64) {
		for i := range r {
			dst[i] = 2 * r[i]
		}
	}}
	dst := make([]float64, 1)
	p.Precondition(dst, []float64{3})
	if dst[0] != 6 {
		t.Fatal("FuncPrec broken")
	}
}

func TestCSROpDim(t *testing.T) {
	g := gen.Path(7)
	op := CSROp{M: matrix.Laplacian(g)}
	if op.Dim() != 7 {
		t.Fatalf("Dim=%d", op.Dim())
	}
}
