package linalg

import (
	"math"

	"repro/internal/rng"
	"repro/internal/vec"
)

// PencilOptions controls the pencil power iteration.
type PencilOptions struct {
	MaxIter int     // default 200
	Tol     float64 // relative change in the Rayleigh quotient; default 1e-4
	Seed    uint64
	// SolveTol is the inner linear-solve tolerance; default 1e-8.
	SolveTol float64
}

// PencilMaxEig estimates the largest generalized eigenvalue λ of the
// pencil (B, A): max over x ⊥ 1 of (xᵀBx)/(xᵀAx), where A and B are
// Laplacians of connected graphs on the same vertex set, via power
// iteration on A⁺B. solveA must apply an approximate A⁺ (projected off
// the ones vector).
//
// The returned value is a lower bound estimate converging to λ_max; the
// iteration stops when the Rayleigh quotient stabilizes.
func PencilMaxEig(a, b Operator, solveA func(dst, rhs []float64), opts PencilOptions) float64 {
	n := a.Dim()
	if opts.MaxIter <= 0 {
		opts.MaxIter = 200
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-4
	}
	r := rng.New(opts.Seed ^ 0xabcdef12345)
	x := make([]float64, n)
	for i := range x {
		x[i] = r.Norm()
	}
	vec.ProjectOutOnes(x)
	bx := make([]float64, n)
	ax := make([]float64, n)
	next := make([]float64, n)
	prevLambda := 0.0
	lambda := 0.0
	for iter := 0; iter < opts.MaxIter; iter++ {
		b.Apply(bx, x)
		a.Apply(ax, x)
		xbx := vec.Dot(x, bx)
		xax := vec.Dot(x, ax)
		if xax <= 0 {
			// x fell into the null space; re-randomize.
			for i := range x {
				x[i] = r.Norm()
			}
			vec.ProjectOutOnes(x)
			continue
		}
		lambda = xbx / xax
		if iter > 3 && math.Abs(lambda-prevLambda) <= opts.Tol*math.Abs(lambda) {
			break
		}
		prevLambda = lambda
		// x ← A⁺ B x, renormalized.
		solveA(next, bx)
		vec.ProjectOutOnes(next)
		nrm := vec.Norm2(next)
		if nrm == 0 {
			break
		}
		vec.Scale(1/nrm, next)
		copy(x, next)
	}
	return lambda
}
