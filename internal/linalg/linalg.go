// Package linalg provides the iterative Krylov machinery used
// throughout the repository: (preconditioned) conjugate gradients for
// SDD/Laplacian systems and power iteration on matrix pencils, which is
// how approximation factors between a graph and its sparsifier are
// measured.
package linalg

import (
	"errors"
	"math"

	"repro/internal/matrix"
	"repro/internal/vec"
)

// Operator is a symmetric linear operator on R^n.
type Operator interface {
	Dim() int
	// Apply computes dst = A·x. dst and x never alias.
	Apply(dst, x []float64)
}

// CSROp adapts a matrix.CSR to the Operator interface.
type CSROp struct{ M *matrix.CSR }

// Dim returns the operator dimension.
func (o CSROp) Dim() int { return o.M.N }

// Apply computes dst = M·x.
func (o CSROp) Apply(dst, x []float64) { o.M.MulVec(dst, x) }

// FuncOp wraps a closure as an Operator.
type FuncOp struct {
	N  int
	Fn func(dst, x []float64)
}

// Dim returns the operator dimension.
func (o FuncOp) Dim() int { return o.N }

// Apply invokes the wrapped closure.
func (o FuncOp) Apply(dst, x []float64) { o.Fn(dst, x) }

// Preconditioner applies an approximation of A⁻¹.
type Preconditioner interface {
	// Precondition computes dst ≈ A⁻¹ r.
	Precondition(dst, r []float64)
}

// IdentityPrec is the trivial preconditioner.
type IdentityPrec struct{}

// Precondition copies r into dst.
func (IdentityPrec) Precondition(dst, r []float64) { copy(dst, r) }

// JacobiPrec preconditions with the inverse diagonal. Zero diagonal
// entries (isolated vertices) pass through unchanged.
type JacobiPrec struct{ InvDiag []float64 }

// NewJacobi builds a Jacobi preconditioner from a diagonal.
func NewJacobi(diag []float64) *JacobiPrec {
	inv := make([]float64, len(diag))
	for i, d := range diag {
		if d > 0 {
			inv[i] = 1 / d
		} else {
			inv[i] = 1
		}
	}
	return &JacobiPrec{InvDiag: inv}
}

// Precondition computes dst = D⁻¹ r.
func (p *JacobiPrec) Precondition(dst, r []float64) {
	for i, v := range r {
		dst[i] = v * p.InvDiag[i]
	}
}

// FuncPrec wraps a closure as a Preconditioner.
type FuncPrec struct {
	Fn func(dst, r []float64)
}

// Precondition invokes the wrapped closure.
func (p FuncPrec) Precondition(dst, r []float64) { p.Fn(dst, r) }

// CGOptions controls the conjugate gradient iteration.
type CGOptions struct {
	Tol         float64 // relative residual target ‖r‖/‖b‖; default 1e-10
	MaxIter     int     // default 10·n + 100
	ProjectOnes bool    // project b and iterates ⊥ 1 (Laplacian null space)
	Prec        Preconditioner
}

// CGResult reports how the iteration ended.
type CGResult struct {
	Iterations int
	Residual   float64 // final relative residual
	Converged  bool
}

// ErrBreakdown is returned when CG encounters a numerically indefinite
// direction, which signals the operator is not PSD (or accuracy is
// exhausted).
var ErrBreakdown = errors.New("linalg: conjugate gradient breakdown")

// CG solves A x = b by (preconditioned) conjugate gradients, writing the
// solution into x (whose initial content is the starting guess).
func CG(a Operator, b []float64, x []float64, opts CGOptions) (CGResult, error) {
	n := a.Dim()
	if len(b) != n || len(x) != n {
		panic("linalg: CG dimension mismatch")
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-10
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 10*n + 100
	}
	prec := opts.Prec
	if prec == nil {
		prec = IdentityPrec{}
	}
	bwork := make([]float64, n)
	copy(bwork, b)
	if opts.ProjectOnes {
		vec.ProjectOutOnes(bwork)
		vec.ProjectOutOnes(x)
	}
	normB := vec.Norm2(bwork)
	if normB == 0 {
		vec.Zero(x)
		return CGResult{Converged: true}, nil
	}
	r := make([]float64, n)
	ax := make([]float64, n)
	a.Apply(ax, x)
	vec.Sub(r, bwork, ax)
	if opts.ProjectOnes {
		vec.ProjectOutOnes(r)
	}
	z := make([]float64, n)
	prec.Precondition(z, r)
	if opts.ProjectOnes {
		vec.ProjectOutOnes(z)
	}
	p := make([]float64, n)
	copy(p, z)
	rz := vec.Dot(r, z)
	ap := make([]float64, n)
	res := CGResult{}
	for iter := 0; iter < opts.MaxIter; iter++ {
		rel := vec.Norm2(r) / normB
		res.Residual = rel
		res.Iterations = iter
		if rel <= opts.Tol {
			res.Converged = true
			return res, nil
		}
		a.Apply(ap, p)
		if opts.ProjectOnes {
			vec.ProjectOutOnes(ap)
		}
		pap := vec.Dot(p, ap)
		if pap <= 0 || math.IsNaN(pap) {
			return res, ErrBreakdown
		}
		alpha := rz / pap
		vec.Axpy(alpha, p, x)
		vec.Axpy(-alpha, ap, r)
		prec.Precondition(z, r)
		if opts.ProjectOnes {
			vec.ProjectOutOnes(z)
		}
		rzNew := vec.Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	res.Residual = vec.Norm2(r) / normB
	res.Converged = res.Residual <= opts.Tol
	res.Iterations = opts.MaxIter
	return res, nil
}
