package graphio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/graph"
)

// Partition files: the on-disk form of graph.Partition, so that each
// worker process of a distributed run materializes only its shard's
// adjacency plus boundary edges instead of parsing the whole graph.
// The format mirrors the compact binary graph framing: a fixed
// little-endian header followed by fixed-size (global id, U, V, W)
// records in increasing id order.
//
//	magic   u64  "SPRP01"
//	n       u64  global vertex count
//	m       u64  global edge count
//	shard   u32
//	shards  u32
//	count   u64  incident records that follow
//	count × { id u32, u u32, v u32, w f64 }

const partitionMagic = uint64(0x5350525250303101) // "SPRP01" + version

// EdgeRecordSize is the wire size of one (global id, U, V, W) record —
// the codec shared by partition files and the distributed result
// gather (internal/dist), so the two formats cannot drift apart.
const EdgeRecordSize = 20

// PutEdgeRecord encodes (id, e) into b (len ≥ EdgeRecordSize).
func PutEdgeRecord(b []byte, id int32, e graph.Edge) {
	binary.LittleEndian.PutUint32(b[0:], uint32(id))
	binary.LittleEndian.PutUint32(b[4:], uint32(e.U))
	binary.LittleEndian.PutUint32(b[8:], uint32(e.V))
	binary.LittleEndian.PutUint64(b[12:], math.Float64bits(e.W))
}

// ParseEdgeRecord decodes one (id, edge) record from b.
func ParseEdgeRecord(b []byte) (int32, graph.Edge) {
	return int32(binary.LittleEndian.Uint32(b[0:])), graph.Edge{
		U: int32(binary.LittleEndian.Uint32(b[4:])),
		V: int32(binary.LittleEndian.Uint32(b[8:])),
		W: math.Float64frombits(binary.LittleEndian.Uint64(b[12:])),
	}
}

// EncodeEdgeRecords encodes a parallel (ids, edges) slice pair.
func EncodeEdgeRecords(ids []int32, edges []graph.Edge) []byte {
	buf := make([]byte, len(ids)*EdgeRecordSize)
	for k := range ids {
		PutEdgeRecord(buf[k*EdgeRecordSize:], ids[k], edges[k])
	}
	return buf
}

// DecodeEdgeRecords inverts EncodeEdgeRecords.
func DecodeEdgeRecords(buf []byte) ([]int32, []graph.Edge, error) {
	if len(buf)%EdgeRecordSize != 0 {
		return nil, nil, fmt.Errorf("graphio: edge record payload %d not a multiple of %d", len(buf), EdgeRecordSize)
	}
	count := len(buf) / EdgeRecordSize
	ids := make([]int32, count)
	edges := make([]graph.Edge, count)
	for k := 0; k < count; k++ {
		ids[k], edges[k] = ParseEdgeRecord(buf[k*EdgeRecordSize:])
	}
	return ids, edges, nil
}

// WritePartition emits one shard's partition in the binary framing.
func WritePartition(w io.Writer, p *graph.Partition) error {
	if err := p.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	head := make([]byte, 40)
	binary.LittleEndian.PutUint64(head[0:], partitionMagic)
	binary.LittleEndian.PutUint64(head[8:], uint64(p.N))
	binary.LittleEndian.PutUint64(head[16:], uint64(p.M))
	binary.LittleEndian.PutUint32(head[24:], uint32(p.Shard))
	binary.LittleEndian.PutUint32(head[28:], uint32(p.Shards))
	binary.LittleEndian.PutUint64(head[32:], uint64(len(p.IDs)))
	if _, err := bw.Write(head); err != nil {
		return err
	}
	rec := make([]byte, EdgeRecordSize)
	for k, id := range p.IDs {
		PutEdgeRecord(rec, id, p.Edges[k])
		if _, err := bw.Write(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPartition parses a partition file and validates its invariants
// (bounds matching the canonical partition formula, increasing ids,
// every edge incident to the owned range).
//
// Hardening contract (fuzzed by FuzzReadPartition): a corrupted or
// adversarial input — a header lying about counts, truncated records,
// non-increasing ids, out-of-range vertices — yields an error, never a
// panic, and never an allocation proportional to the CLAIMED count
// rather than the bytes actually present: sizes are bounded to the
// int32 id space up front and record storage grows incrementally as
// records are read, so a truncated file fails at the read, not at a
// huge make.
func ReadPartition(r io.Reader) (*graph.Partition, error) {
	br := bufio.NewReader(r)
	head := make([]byte, 40)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint64(head[0:]) != partitionMagic {
		return nil, fmt.Errorf("graphio: bad partition magic")
	}
	nU := binary.LittleEndian.Uint64(head[8:])
	mU := binary.LittleEndian.Uint64(head[16:])
	shard := int(binary.LittleEndian.Uint32(head[24:]))
	shards := int(binary.LittleEndian.Uint32(head[28:]))
	countU := binary.LittleEndian.Uint64(head[32:])
	// Vertex and edge ids travel as int32 in the records, so a header
	// claiming more is corrupt regardless of platform int width.
	if nU > graph.MaxEdges || mU > graph.MaxEdges || countU > mU || shards < 1 {
		return nil, fmt.Errorf("graphio: implausible partition header n=%d m=%d count=%d shards=%d", nU, mU, countU, shards)
	}
	n, m, count := int(nU), int(mU), int(countU)
	const chunk = 1 << 14 // grow with the data actually read
	cap0 := count
	if cap0 > chunk {
		cap0 = chunk
	}
	p := &graph.Partition{
		N: n, M: m, Shard: shard, Shards: shards,
		Lo: shard * n / shards, Hi: (shard + 1) * n / shards,
		IDs:   make([]int32, 0, cap0),
		Edges: make([]graph.Edge, 0, cap0),
	}
	rec := make([]byte, EdgeRecordSize)
	for k := 0; k < count; k++ {
		if _, err := io.ReadFull(br, rec); err != nil {
			return nil, fmt.Errorf("graphio: partition record %d/%d: %w", k, count, err)
		}
		id, e := ParseEdgeRecord(rec)
		p.IDs = append(p.IDs, id)
		p.Edges = append(p.Edges, e)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// PartitionFileName is the canonical name of shard s of a p-way split
// inside a partition directory.
func PartitionFileName(shard, shards int) string {
	return fmt.Sprintf("part-%d-of-%d.bin", shard, shards)
}
