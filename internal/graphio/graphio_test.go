package graphio

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestTextRoundTrip(t *testing.T) {
	g := gen.WithRandomWeights(gen.Gnp(50, 0.2, 3), 0.5, 2, 5)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != g.N || got.M() != g.M() {
		t.Fatalf("round trip changed shape: %v vs %v", got, g)
	}
	for i := range g.Edges {
		if g.Edges[i] != got.Edges[i] {
			t.Fatalf("edge %d: %+v vs %+v", i, g.Edges[i], got.Edges[i])
		}
	}
}

func TestReadDefaultsWeightAndInfersN(t *testing.T) {
	in := "# comment\n0 1\n1 2 2.5\n"
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 {
		t.Fatalf("inferred n=%d", g.N)
	}
	if g.Edges[0].W != 1 || g.Edges[1].W != 2.5 {
		t.Fatalf("weights %v %v", g.Edges[0].W, g.Edges[1].W)
	}
}

func TestReadHonorsExplicitN(t *testing.T) {
	g, err := Read(strings.NewReader("n 10\n0 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 10 {
		t.Fatalf("n=%d", g.N)
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	cases := []string{
		"0\n",          // too few fields
		"0 1 2 3\n",    // too many fields
		"a 1\n",        // bad endpoint
		"0 1 -2\n",     // bad weight
		"0 1 zzz\n",    // unparsable weight
		"-1 0\n",       // negative id
		"n x\n",        // bad vertex count
		"n 1\n0 1 1\n", // edge out of declared range
	}
	for _, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Fatalf("input %q accepted", in)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(40)
		m := r.Intn(100)
		edges := make([]graph.Edge, 0, m)
		for i := 0; i < m; i++ {
			edges = append(edges, graph.Edge{
				U: int32(r.Intn(n)), V: int32(r.Intn(n)), W: 0.1 + r.Float64(),
			})
		}
		g := graph.FromEdges(n, edges)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if got.N != g.N || got.M() != g.M() {
			return false
		}
		for i := range g.Edges {
			if g.Edges[i] != got.Edges[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryRejectsBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader(make([]byte, 24))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestBinaryRejectsTruncated(t *testing.T) {
	g := gen.Path(5)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-8]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated stream accepted")
	}
}
