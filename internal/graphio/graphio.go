// Package graphio reads and writes the weighted edge-list format used
// by the command-line tools:
//
//	# comment
//	n <vertexCount>
//	<u> <v> <weight>
//	...
//
// Vertices are 0-based. The weight column is optional and defaults to 1.
// A compact binary format (gob-free, fixed little-endian framing) is
// also provided for large graphs.
package graphio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// Read parses the text edge-list format.
func Read(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	n := -1
	var edges []graph.Edge
	line := 0
	maxV := int32(-1)
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if fields[0] == "n" {
			if len(fields) != 2 {
				return nil, fmt.Errorf("graphio: line %d: malformed vertex count", line)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil || v < 0 {
				return nil, fmt.Errorf("graphio: line %d: bad vertex count %q", line, fields[1])
			}
			n = v
			continue
		}
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("graphio: line %d: expected 'u v [w]', got %q", line, text)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graphio: line %d: bad endpoint %q", line, fields[0])
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graphio: line %d: bad endpoint %q", line, fields[1])
		}
		w := 1.0
		if len(fields) == 3 {
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil || !(w > 0) || math.IsInf(w, 0) {
				return nil, fmt.Errorf("graphio: line %d: bad weight %q", line, fields[2])
			}
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graphio: line %d: negative vertex id", line)
		}
		e := graph.Edge{U: int32(u), V: int32(v), W: w}
		if e.U > maxV {
			maxV = e.U
		}
		if e.V > maxV {
			maxV = e.V
		}
		edges = append(edges, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if n < 0 {
		n = int(maxV) + 1
	}
	g := graph.FromEdges(n, edges)
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Write emits the text edge-list format.
func Write(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "n %d\n", g.N); err != nil {
		return err
	}
	for _, e := range g.Edges {
		if _, err := fmt.Fprintf(bw, "%d %d %g\n", e.U, e.V, e.W); err != nil {
			return err
		}
	}
	return bw.Flush()
}

const binaryMagic = uint64(0x5350415253453031) // "SPARSE01"

// WriteBinary emits the compact binary framing.
func WriteBinary(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	head := make([]byte, 24)
	binary.LittleEndian.PutUint64(head[0:], binaryMagic)
	binary.LittleEndian.PutUint64(head[8:], uint64(g.N))
	binary.LittleEndian.PutUint64(head[16:], uint64(len(g.Edges)))
	if _, err := bw.Write(head); err != nil {
		return err
	}
	rec := make([]byte, 16)
	for _, e := range g.Edges {
		binary.LittleEndian.PutUint32(rec[0:], uint32(e.U))
		binary.LittleEndian.PutUint32(rec[4:], uint32(e.V))
		binary.LittleEndian.PutUint64(rec[8:], math.Float64bits(e.W))
		if _, err := bw.Write(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses the compact binary framing.
func ReadBinary(r io.Reader) (*graph.Graph, error) {
	br := bufio.NewReader(r)
	head := make([]byte, 24)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint64(head[0:]) != binaryMagic {
		return nil, fmt.Errorf("graphio: bad magic")
	}
	n := int(binary.LittleEndian.Uint64(head[8:]))
	m := int(binary.LittleEndian.Uint64(head[16:]))
	if n < 0 || m < 0 {
		return nil, fmt.Errorf("graphio: negative sizes in header")
	}
	edges := make([]graph.Edge, m)
	rec := make([]byte, 16)
	for i := 0; i < m; i++ {
		if _, err := io.ReadFull(br, rec); err != nil {
			return nil, err
		}
		edges[i] = graph.Edge{
			U: int32(binary.LittleEndian.Uint32(rec[0:])),
			V: int32(binary.LittleEndian.Uint32(rec[4:])),
			W: math.Float64frombits(binary.LittleEndian.Uint64(rec[8:])),
		}
	}
	g := graph.FromEdges(n, edges)
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
