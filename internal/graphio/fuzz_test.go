package graphio_test

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/graphio"
)

// FuzzReadPartition: arbitrary bytes — including headers that lie
// about counts, truncated records, non-increasing ids, and
// out-of-range vertices — must yield an error or a partition that
// passes Validate and survives a write/read round trip. Never a panic,
// and never memory proportional to a claimed-but-absent record count
// (the CI fuzz smoke runs this for 20s on every push).
func FuzzReadPartition(f *testing.F) {
	g := gen.Gnp(24, 0.3, 5)
	var valid []byte
	for s := 0; s < 3; s++ {
		var buf bytes.Buffer
		if err := graphio.WritePartition(&buf, graph.PartitionOf(g, s, 3)); err != nil {
			f.Fatal(err)
		}
		if valid == nil {
			valid = buf.Bytes()
		}
		f.Add(buf.Bytes())
	}
	// Truncated mid-record and mid-header.
	f.Add(valid[:len(valid)-7])
	f.Add(valid[:13])
	// Header lies: count claims far more records than present.
	lie := bytes.Clone(valid)
	binary.LittleEndian.PutUint64(lie[32:], 1<<30)
	f.Add(lie)
	// Header lies: astronomical global sizes.
	big := bytes.Clone(valid)
	binary.LittleEndian.PutUint64(big[8:], 1<<40)
	binary.LittleEndian.PutUint64(big[16:], 1<<50)
	f.Add(big)
	// Non-increasing ids: duplicate the first record over the second.
	dup := bytes.Clone(valid)
	copy(dup[40+graphio.EdgeRecordSize:], dup[40:40+graphio.EdgeRecordSize])
	f.Add(dup)
	// Out-of-range vertex id in the first record.
	oob := bytes.Clone(valid)
	binary.LittleEndian.PutUint32(oob[44:], 1<<25)
	f.Add(oob)

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := graphio.ReadPartition(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("ReadPartition accepted an invalid partition: %v", err)
		}
		var out bytes.Buffer
		if err := graphio.WritePartition(&out, p); err != nil {
			t.Fatalf("accepted partition does not re-encode: %v", err)
		}
		q, err := graphio.ReadPartition(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		if q.N != p.N || q.M != p.M || q.Shard != p.Shard || q.Shards != p.Shards || len(q.IDs) != len(p.IDs) {
			t.Fatalf("round trip changed the partition: %+v vs %+v", q, p)
		}
	})
}
