package graphio

import (
	"bytes"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// TestPartitionRoundTrip: Write then Read is the identity for every
// shard of several partitions.
func TestPartitionRoundTrip(t *testing.T) {
	g := gen.WithRandomWeights(gen.Gnp(120, 0.1, 5), 0.25, 4, 7)
	for _, shards := range []int{1, 2, 3, 8} {
		for s := 0; s < shards; s++ {
			p := graph.PartitionOf(g, s, shards)
			var buf bytes.Buffer
			if err := WritePartition(&buf, p); err != nil {
				t.Fatalf("shards=%d s=%d: write: %v", shards, s, err)
			}
			got, err := ReadPartition(&buf)
			if err != nil {
				t.Fatalf("shards=%d s=%d: read: %v", shards, s, err)
			}
			if got.N != p.N || got.M != p.M || got.Shard != p.Shard ||
				got.Shards != p.Shards || got.Lo != p.Lo || got.Hi != p.Hi {
				t.Fatalf("header mangled: %+v vs %+v", got, p)
			}
			if len(got.IDs) != len(p.IDs) {
				t.Fatalf("count %d vs %d", len(got.IDs), len(p.IDs))
			}
			for k := range p.IDs {
				if got.IDs[k] != p.IDs[k] || got.Edges[k] != p.Edges[k] {
					t.Fatalf("record %d mangled: %d %+v", k, got.IDs[k], got.Edges[k])
				}
			}
		}
	}
}

// TestPartitionBoundaryOwnership: the shards' partitions cover every
// edge, an edge appears in a partition exactly when it is incident to
// the shard's vertex range, and boundary edges appear in exactly the
// two partitions of their endpoints (once when both endpoints share a
// shard).
func TestPartitionBoundaryOwnership(t *testing.T) {
	g := gen.Gnp(100, 0.08, 11)
	const shards = 4
	appearances := make([]int, g.M())
	for s := 0; s < shards; s++ {
		p := graph.PartitionOf(g, s, shards)
		if err := p.Validate(); err != nil {
			t.Fatalf("shard %d invalid: %v", s, err)
		}
		for _, id := range p.IDs {
			appearances[id]++
		}
	}
	for i, e := range g.Edges {
		su := graph.ShardOfVertex(g.N, shards, e.U)
		sv := graph.ShardOfVertex(g.N, shards, e.V)
		want := 2
		if su == sv {
			want = 1
		}
		if appearances[i] != want {
			t.Fatalf("edge %d (%d,%d): appears in %d partitions, want %d", i, e.U, e.V, appearances[i], want)
		}
	}
}

// TestEdgeRecordCodec: the (id, edge) records shared by partition
// files and the distributed result gather round-trip exactly.
func TestEdgeRecordCodec(t *testing.T) {
	ids := []int32{0, 5, 1 << 29}
	edges := []graph.Edge{{U: 1, V: 2, W: 0.25}, {U: 7, V: 7, W: 1}, {U: 0, V: 1 << 28, W: 3.75e-9}}
	buf := EncodeEdgeRecords(ids, edges)
	if len(buf) != len(ids)*EdgeRecordSize {
		t.Fatalf("encoded length %d", len(buf))
	}
	gotIDs, gotEdges, err := DecodeEdgeRecords(buf)
	if err != nil {
		t.Fatal(err)
	}
	for k := range ids {
		if gotIDs[k] != ids[k] || gotEdges[k] != edges[k] {
			t.Fatalf("record %d mangled: %d %+v", k, gotIDs[k], gotEdges[k])
		}
	}
	if _, _, err := DecodeEdgeRecords(buf[:EdgeRecordSize+3]); err == nil {
		t.Fatal("ragged payload accepted")
	}
}

// TestPartitionRejectsCorruption: a tampered payload fails validation
// rather than silently loading.
func TestPartitionRejectsCorruption(t *testing.T) {
	g := gen.Gnp(50, 0.2, 3)
	p := graph.PartitionOf(g, 1, 2)
	var buf bytes.Buffer
	if err := WritePartition(&buf, p); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip the shard field to a shard the edges are not incident to.
	corrupt := append([]byte(nil), raw...)
	corrupt[24] = 0
	if _, err := ReadPartition(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("mis-sharded partition accepted")
	}
	// Truncate mid-record.
	if _, err := ReadPartition(bytes.NewReader(raw[:len(raw)-7])); err == nil {
		t.Fatal("truncated partition accepted")
	}
	// Bad magic.
	corrupt2 := append([]byte(nil), raw...)
	corrupt2[0] ^= 0xff
	if _, err := ReadPartition(bytes.NewReader(corrupt2)); err == nil {
		t.Fatal("bad magic accepted")
	}
}

// TestShardOfVertexInvertsBounds: the closed-form inverse agrees with
// the bounds arrays for awkward (n, p) combinations.
func TestShardOfVertexInvertsBounds(t *testing.T) {
	for _, tc := range []struct{ n, p int }{{1, 1}, {7, 3}, {10, 3}, {100, 7}, {1024, 8}, {5, 5}} {
		bounds := graph.ShardBounds(tc.n, tc.p)
		for v := 0; v < tc.n; v++ {
			s := graph.ShardOfVertex(tc.n, tc.p, int32(v))
			if v < bounds[s] || v >= bounds[s+1] {
				t.Fatalf("n=%d p=%d: vertex %d assigned to shard %d [%d,%d)",
					tc.n, tc.p, v, s, bounds[s], bounds[s+1])
			}
		}
	}
}
