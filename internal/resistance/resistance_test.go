package resistance

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// mustPair is the test-side shorthand for Pair on healthy input.
func mustPair(t *testing.T, s *Solver, u, v int32) float64 {
	t.Helper()
	r, err := s.Pair(u, v)
	if err != nil {
		t.Fatalf("Pair(%d,%d): %v", u, v, err)
	}
	return r
}

func TestPathResistance(t *testing.T) {
	// Series resistors: R(0,4) on a unit path = 4.
	g := gen.Path(5)
	s := NewSolver(g)
	if r := mustPair(t, s, 0, 4); math.Abs(r-4) > 1e-8 {
		t.Fatalf("R=%v want 4", r)
	}
}

func TestParallelEdgesResistance(t *testing.T) {
	// Two parallel unit resistors → R = 1/2.
	g := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 0, V: 1, W: 1}})
	s := NewSolver(g)
	if r := mustPair(t, s, 0, 1); math.Abs(r-0.5) > 1e-8 {
		t.Fatalf("R=%v want 0.5", r)
	}
}

func TestCycleResistance(t *testing.T) {
	// Cycle C_n: R between adjacent vertices = (n-1)/n.
	n := 10
	g := gen.Cycle(n)
	s := NewSolver(g)
	want := float64(n-1) / float64(n)
	if r := mustPair(t, s, 0, 1); math.Abs(r-want) > 1e-8 {
		t.Fatalf("R=%v want %v", r, want)
	}
}

func TestCompleteGraphResistance(t *testing.T) {
	// K_n: R between any pair = 2/n.
	n := 20
	g := gen.Complete(n)
	s := NewSolver(g)
	want := 2.0 / float64(n)
	if r := mustPair(t, s, 3, 11); math.Abs(r-want) > 1e-8 {
		t.Fatalf("R=%v want %v", r, want)
	}
}

func TestWeightedResistance(t *testing.T) {
	// Single edge of weight w → R = 1/w.
	g := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1, W: 4}})
	s := NewSolver(g)
	if r := mustPair(t, s, 0, 1); math.Abs(r-0.25) > 1e-10 {
		t.Fatalf("R=%v want 0.25", r)
	}
}

func TestAllEdgesExactSumsToNMinus1(t *testing.T) {
	// Foster's theorem: Σ_e w_e·R_e = n − 1 for connected graphs.
	g := gen.Gnp(60, 0.2, 3)
	if !graph.IsConnected(g) {
		t.Skip("test graph disconnected for this seed")
	}
	res, err := AllEdgesExact(g)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for i, e := range g.Edges {
		sum += e.W * res[i]
	}
	if math.Abs(sum-float64(g.N-1)) > 1e-5 {
		t.Fatalf("Foster sum %v want %d", sum, g.N-1)
	}
}

func TestApproxMatchesExact(t *testing.T) {
	g := gen.Gnp(80, 0.15, 5)
	if !graph.IsConnected(g) {
		t.Skip("disconnected")
	}
	exact, err := AllEdgesExact(g)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := AllEdgesApprox(g, ApproxOptions{Eps: 0.2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact {
		rel := math.Abs(approx[i]-exact[i]) / exact[i]
		if rel > 0.6 {
			t.Fatalf("edge %d: approx %v exact %v (rel %v)", i, approx[i], exact[i], rel)
		}
	}
}

func TestApproxFosterSum(t *testing.T) {
	g := gen.Grid2D(8, 8)
	approx, err := AllEdgesApprox(g, ApproxOptions{Eps: 0.15, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for i, e := range g.Edges {
		sum += e.W * approx[i]
	}
	want := float64(g.N - 1)
	if math.Abs(sum-want)/want > 0.15 {
		t.Fatalf("approx Foster sum %v want ~%v", sum, want)
	}
}

func TestMaxLeverage(t *testing.T) {
	g := gen.Path(4) // every edge is a bridge: leverage exactly 1
	res, err := AllEdgesExact(g)
	if err != nil {
		t.Fatal(err)
	}
	if lv := MaxLeverage(g, res, nil); math.Abs(lv-1) > 1e-8 {
		t.Fatalf("bridge leverage %v want 1", lv)
	}
	sel := []bool{false, true, false}
	if lv := MaxLeverage(g, res, sel); math.Abs(lv-1) > 1e-8 {
		t.Fatalf("selected leverage %v", lv)
	}
}

func TestSolverReusableAcrossQueries(t *testing.T) {
	g := gen.Grid2D(6, 6)
	s := NewSolver(g)
	r1 := mustPair(t, s, 0, 35)
	r2 := mustPair(t, s, 0, 35)
	if math.Abs(r1-r2) > 1e-12 {
		t.Fatal("solver state leaks between queries")
	}
	// Rayleigh: resistance between closer vertices is smaller.
	if mustPair(t, s, 0, 1) >= r1 {
		t.Fatal("adjacent resistance should be below far-corner resistance")
	}
}

// TestSolveBreakdownSurfaces: a negative edge weight makes the
// "Laplacian" indefinite, so CG breaks down at the first iteration —
// the error must reach the caller instead of leaving a garbage iterate
// behind (it was silently discarded before this test existed).
func TestSolveBreakdownSurfaces(t *testing.T) {
	g := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1, W: -1}})
	s := NewSolver(g)
	if _, err := s.Pair(0, 1); err == nil {
		t.Fatal("Pair on an indefinite matrix returned no error")
	}
	if err := s.Solve(make([]float64, 2), []float64{1, -1}); err == nil {
		t.Fatal("Solve on an indefinite matrix returned no error")
	}
}

// TestAllEdgesBreakdownSurfaces: the batch entry points propagate a
// per-edge / per-probe solve failure instead of returning zeros.
func TestAllEdgesBreakdownSurfaces(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{
		{U: 0, V: 1, W: -1},
		{U: 1, V: 2, W: 1},
	})
	if _, err := AllEdgesExact(g); err == nil {
		t.Fatal("AllEdgesExact on an indefinite matrix returned no error")
	}
	if _, err := AllEdgesApprox(g, ApproxOptions{Seed: 3}); err == nil {
		t.Fatal("AllEdgesApprox on an indefinite matrix returned no error")
	}
}
