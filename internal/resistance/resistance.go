// Package resistance computes effective resistances of graph edges,
// exactly (one linear solve per query) and approximately for all edges
// at once via the Spielman–Srivastava Johnson–Lindenstrauss sketch.
// The experiment harness uses it to verify Lemma 1's bundle leverage
// bound and to drive the Spielman–Srivastava baseline sparsifier.
package resistance

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/graph"
	"repro/internal/linalg"
	"repro/internal/matrix"
	"repro/internal/parutil"
	"repro/internal/rng"
	"repro/internal/vec"
)

// Solver wraps a Laplacian with a PCG solve so repeated resistance
// queries reuse the assembled matrix and preconditioner.
type Solver struct {
	G    *graph.Graph
	L    *matrix.CSR
	prec linalg.Preconditioner
	tol  float64
}

// NewSolver assembles the Laplacian of g with a Jacobi preconditioner.
func NewSolver(g *graph.Graph) *Solver {
	l := matrix.Laplacian(g)
	return &Solver{G: g, L: l, prec: linalg.NewJacobi(l.Diag), tol: 1e-10}
}

// SetTol overrides the inner solve tolerance (default 1e-10).
func (s *Solver) SetTol(tol float64) { s.tol = tol }

// Solve computes x ≈ L⁺ b (projected off the ones vector) into dst. A
// CG breakdown — possible only on numerically indefinite input, e.g. a
// negative or non-finite edge weight — is an error: the partial iterate
// left in dst is NOT a converged potential, and treating it as one
// silently corrupts every leverage computed from it.
func (s *Solver) Solve(dst, b []float64) error {
	vec.Zero(dst)
	_, err := linalg.CG(linalg.CSROp{M: s.L}, b, dst, linalg.CGOptions{
		Tol: s.tol, ProjectOnes: true, Prec: s.prec,
	})
	if err != nil {
		return fmt.Errorf("resistance: Laplacian solve: %w", err)
	}
	return nil
}

// Pair returns the effective resistance between u and v.
func (s *Solver) Pair(u, v int32) (float64, error) {
	n := s.G.N
	b := make([]float64, n)
	b[u] = 1
	b[v] = -1
	x := make([]float64, n)
	if err := s.Solve(x, b); err != nil {
		return 0, err
	}
	return x[u] - x[v], nil
}

// AllEdgesExact returns R_e for every edge of g via one solve per edge.
// Intended for verification at small scale; O(m) solves. Any per-edge
// solve failure fails the whole call.
func AllEdgesExact(g *graph.Graph) ([]float64, error) {
	s := NewSolver(g)
	out := make([]float64, len(g.Edges))
	var mu sync.Mutex
	var firstErr error
	parutil.For(len(g.Edges), func(i int) {
		e := g.Edges[i]
		// Each goroutine allocates its own work vectors inside Pair.
		r, err := s.Pair(e.U, e.V)
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = fmt.Errorf("edge %d (%d,%d): %w", i, e.U, e.V, err)
			}
			mu.Unlock()
			return
		}
		out[i] = r
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// ApproxOptions controls the JL sketch.
type ApproxOptions struct {
	// Eps is the multiplicative sketch accuracy; the sketch uses
	// k = ⌈CLog·ln n/Eps²⌉ probe vectors. Default 0.3.
	Eps float64
	// CLog is the probe-count constant. Default 4.
	CLog float64
	Seed uint64
	// SolveTol is the inner PCG tolerance. Default 1e-8.
	SolveTol float64
}

// AllEdgesApprox estimates R_e for every edge of g with the
// Spielman–Srivastava sketch: R_e = ‖W^½ B L⁺(χ_u − χ_v)‖², estimated by
// projecting onto k random ±1 directions in edge space, which needs only
// k Laplacian solves in total. A failed probe solve fails the call.
func AllEdgesApprox(g *graph.Graph, opt ApproxOptions) ([]float64, error) {
	if opt.Eps <= 0 {
		opt.Eps = 0.3
	}
	if opt.CLog <= 0 {
		opt.CLog = 4
	}
	if opt.SolveTol <= 0 {
		opt.SolveTol = 1e-8
	}
	n := g.N
	m := len(g.Edges)
	k := int(math.Ceil(opt.CLog * math.Log(float64(n)+2) / (opt.Eps * opt.Eps)))
	if k < 1 {
		k = 1
	}
	s := NewSolver(g)
	s.SetTol(opt.SolveTol)
	// Y[i] = L⁺ Bᵀ W^½ q_i for k independent Rademacher q_i / √k.
	ys := make([][]float64, k)
	for i := 0; i < k; i++ {
		z := make([]float64, n)
		// Sequential accumulation: endpoint collisions across edges make
		// the scatter non-trivially parallel; m is the cheap part anyway
		// compared to the k solves. Per-edge signs are pure functions of
		// (seed, probe, edge), so the sketch is deterministic.
		for eid := 0; eid < m; eid++ {
			e := g.Edges[eid]
			q := rng.SplitAt(opt.Seed^(uint64(i)*0x2545f4914f6cdd1d), uint64(eid)).Rademacher()
			w := math.Sqrt(e.W) * q
			z[e.U] += w
			z[e.V] -= w
		}
		y := make([]float64, n)
		if err := s.Solve(y, z); err != nil {
			return nil, fmt.Errorf("resistance: sketch probe %d of %d: %w", i+1, k, err)
		}
		ys[i] = y
	}
	inv := 1 / float64(k)
	out := make([]float64, m)
	parutil.For(m, func(eid int) {
		e := g.Edges[eid]
		sum := 0.0
		for i := 0; i < k; i++ {
			d := ys[i][e.U] - ys[i][e.V]
			sum += d * d
		}
		out[eid] = sum * inv
	})
	return out, nil
}

// MaxLeverage returns max over the selected edges of w_e·R_e[g], the
// quantity Lemma 1 bounds by (2k−1)/t for non-bundle edges. sel may be
// nil (all edges). resistances must align with g.Edges.
func MaxLeverage(g *graph.Graph, resistances []float64, sel []bool) float64 {
	max := 0.0
	for i, e := range g.Edges {
		if sel != nil && !sel[i] {
			continue
		}
		if lv := e.W * resistances[i]; lv > max {
			max = lv
		}
	}
	return max
}
