// Package spectral measures how well one graph spectrally approximates
// another — the quantity every theorem of the paper is about. For
// graphs G and H on the same vertex set it estimates the extreme
// generalized eigenvalues
//
//	α = min_{x ⊥ 1} (xᵀL_H x)/(xᵀL_G x),   β = max_{x ⊥ 1} (xᵀL_H x)/(xᵀL_G x),
//
// so that α·G ⪯ H ⪯ β·G. A (1±ε)-sparsifier has [α, β] ⊆ [1−ε, 1+ε].
//
// Two estimators are provided: an iterative one (pencil power iteration
// with inner PCG solves; works at any size) and a dense exact one
// (Jacobi eigendecomposition; n up to a few hundred) used to validate
// the iterative estimates in tests.
package spectral

import (
	"errors"
	"math"

	"repro/internal/graph"
	"repro/internal/linalg"
	"repro/internal/matrix"
	"repro/internal/rng"
	"repro/internal/vec"
)

// Bounds holds a spectral approximation measurement: Lo ≤ λ ≤ Hi for
// all generalized eigenvalues λ of (L_H, L_G).
type Bounds struct {
	Lo, Hi float64
}

// Epsilon returns the smallest ε such that [Lo, Hi] ⊆ [1−ε, 1+ε].
func (b Bounds) Epsilon() float64 {
	lo := 1 - b.Lo
	hi := b.Hi - 1
	return math.Max(lo, hi)
}

// ErrDisconnected is returned when one of the graphs is disconnected,
// in which case the pencil has unbounded (or zero) eigenvalues on the
// mismatched null spaces and no finite ε exists.
var ErrDisconnected = errors.New("spectral: graph disconnected; approximation factor unbounded")

// Options controls the iterative estimator.
type Options struct {
	Seed     uint64
	MaxIter  int     // power iterations per extreme (default 300)
	Tol      float64 // Rayleigh quotient stabilization (default 1e-4)
	SolveTol float64 // inner PCG tolerance (default 1e-9)
}

// ApproxFactor estimates the pencil bounds (α, β) for H against G using
// power iteration. Both graphs must be connected.
func ApproxFactor(g, h *graph.Graph, opt Options) (Bounds, error) {
	if g.N != h.N {
		return Bounds{}, errors.New("spectral: vertex count mismatch")
	}
	if !graph.IsConnected(g) || !graph.IsConnected(h) {
		return Bounds{}, ErrDisconnected
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 300
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-4
	}
	if opt.SolveTol <= 0 {
		opt.SolveTol = 1e-9
	}
	lg := matrix.Laplacian(g)
	lh := matrix.Laplacian(h)
	gOp := linalg.CSROp{M: lg}
	hOp := linalg.CSROp{M: lh}
	solveWith := func(l *matrix.CSR) func(dst, rhs []float64) {
		prec := linalg.NewJacobi(l.Diag)
		return func(dst, rhs []float64) {
			vec.Zero(dst)
			_, _ = linalg.CG(linalg.CSROp{M: l}, rhs, dst, linalg.CGOptions{
				Tol: opt.SolveTol, ProjectOnes: true, Prec: prec,
			})
		}
	}
	popt := linalg.PencilOptions{MaxIter: opt.MaxIter, Tol: opt.Tol, Seed: opt.Seed}
	// β = λmax(L_G⁺ L_H); 1/α = λmax(L_H⁺ L_G).
	beta := linalg.PencilMaxEig(gOp, hOp, solveWith(lg), popt)
	popt.Seed = opt.Seed ^ 0x94d049bb133111eb
	invAlpha := linalg.PencilMaxEig(hOp, gOp, solveWith(lh), popt)
	if invAlpha <= 0 {
		return Bounds{}, ErrDisconnected
	}
	return Bounds{Lo: 1 / invAlpha, Hi: beta}, nil
}

// DenseApproxFactor computes the exact pencil bounds by dense
// eigendecomposition: project L_H onto the whitened nonzero eigenspace
// of L_G and read off the extreme eigenvalues. Intended for n ≤ ~300.
func DenseApproxFactor(g, h *graph.Graph) (Bounds, error) {
	if g.N != h.N {
		return Bounds{}, errors.New("spectral: vertex count mismatch")
	}
	n := g.N
	lg := matrix.Laplacian(g).Dense()
	lh := matrix.Laplacian(h).Dense()
	eig, q, err := matrix.SymEig(lg)
	if err != nil {
		return Bounds{}, err
	}
	maxEig := eig[n-1]
	if maxEig <= 0 {
		return Bounds{}, ErrDisconnected
	}
	tol := 1e-10 * maxEig
	// Columns of P: q_j / sqrt(λ_j) over the nonzero spectrum of L_G.
	var cols []int
	for j := 0; j < n; j++ {
		if eig[j] > tol {
			cols = append(cols, j)
		}
	}
	r := len(cols)
	if r != n-1 {
		// More than one zero eigenvalue means G is disconnected.
		return Bounds{}, ErrDisconnected
	}
	p := matrix.NewDense(n, r)
	for jj, j := range cols {
		s := 1 / math.Sqrt(eig[j])
		for i := 0; i < n; i++ {
			p.Set(i, jj, q.At(i, j)*s)
		}
	}
	// C = Pᵀ L_H P (r×r), symmetric.
	tmp := matrix.NewDense(n, r)
	for i := 0; i < n; i++ {
		for jj := 0; jj < r; jj++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += lh.At(i, k) * p.At(k, jj)
			}
			tmp.Set(i, jj, s)
		}
	}
	c := matrix.NewDense(r, r)
	for ii := 0; ii < r; ii++ {
		for jj := 0; jj < r; jj++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += p.At(k, ii) * tmp.At(k, jj)
			}
			c.Set(ii, jj, s)
		}
	}
	ceig, _, err := matrix.SymEig(c)
	if err != nil {
		return Bounds{}, err
	}
	return Bounds{Lo: ceig[0], Hi: ceig[r-1]}, nil
}

// QuadFormProbes returns the min and max of the Rayleigh ratio
// (xᵀL_Hx)/(xᵀL_Gx) over k random Gaussian probes x ⊥ 1. This is a
// cheap inner estimate (the true [α, β] always contains it); tests use
// it as a fast smoke check and the experiment harness as a lower bound
// witness.
func QuadFormProbes(g, h *graph.Graph, k int, seed uint64) Bounds {
	r := rng.New(seed)
	lo, hi := math.Inf(1), math.Inf(-1)
	x := make([]float64, g.N)
	for probe := 0; probe < k; probe++ {
		for i := range x {
			x[i] = r.Norm()
		}
		vec.ProjectOutOnes(x)
		qg := matrix.LaplacianQuadForm(g, x)
		qh := matrix.LaplacianQuadForm(h, x)
		if qg <= 0 {
			continue
		}
		ratio := qh / qg
		if ratio < lo {
			lo = ratio
		}
		if ratio > hi {
			hi = ratio
		}
	}
	return Bounds{Lo: lo, Hi: hi}
}
