package spectral

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestIdenticalGraphsGiveUnitBounds(t *testing.T) {
	g := gen.Gnp(80, 0.2, 3)
	b, err := ApproxFactor(g, g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.Lo-1) > 1e-3 || math.Abs(b.Hi-1) > 1e-3 {
		t.Fatalf("bounds %+v want (1,1)", b)
	}
}

func TestScaledGraphBounds(t *testing.T) {
	g := gen.Grid2D(7, 7)
	h := g.Scale(3)
	b, err := ApproxFactor(g, h, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.Lo-3) > 0.02 || math.Abs(b.Hi-3) > 0.02 {
		t.Fatalf("bounds %+v want (3,3)", b)
	}
}

func TestDenseMatchesIterative(t *testing.T) {
	g := gen.Gnp(40, 0.3, 5)
	if !graph.IsConnected(g) {
		t.Skip("disconnected")
	}
	// h: perturb weights.
	h := g.Clone()
	for i := range h.Edges {
		h.Edges[i].W *= 1 + 0.3*math.Sin(float64(i))
	}
	exact, err := DenseApproxFactor(g, h)
	if err != nil {
		t.Fatal(err)
	}
	iter, err := ApproxFactor(g, h, Options{Seed: 3, MaxIter: 2000, Tol: 1e-7})
	if err != nil {
		t.Fatal(err)
	}
	// Power iteration gives inner estimates; they must sit inside the
	// exact interval and close to its ends.
	if iter.Hi > exact.Hi*1.001 || iter.Lo < exact.Lo*0.999 {
		t.Fatalf("iterative %+v escapes exact %+v", iter, exact)
	}
	if iter.Hi < exact.Hi*0.95 || iter.Lo > exact.Lo*1.05 {
		t.Fatalf("iterative %+v too loose vs exact %+v", iter, exact)
	}
}

func TestDenseExactOnScaledGraph(t *testing.T) {
	g := gen.Cycle(20)
	h := g.Scale(0.5)
	b, err := DenseApproxFactor(g, h)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.Lo-0.5) > 1e-8 || math.Abs(b.Hi-0.5) > 1e-8 {
		t.Fatalf("bounds %+v want (0.5,0.5)", b)
	}
}

func TestDisconnectedHRejected(t *testing.T) {
	g := gen.Cycle(10)
	h := g.Subgraph(append([]bool{false}, trues(g.M()-1)...)) // still connected (path)
	if _, err := ApproxFactor(g, h, Options{Seed: 1}); err != nil {
		t.Fatalf("path is connected, got %v", err)
	}
	// Now cut the path in the middle: disconnected.
	mask := trues(g.M())
	mask[0] = false
	mask[5] = false
	h2 := g.Subgraph(mask)
	if _, err := ApproxFactor(g, h2, Options{Seed: 1}); err == nil {
		t.Fatal("disconnected h must be rejected")
	}
}

func TestDenseDisconnectedRejected(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 1}})
	if _, err := DenseApproxFactor(g, g); err == nil {
		t.Fatal("disconnected g must be rejected")
	}
}

func TestVertexCountMismatch(t *testing.T) {
	if _, err := ApproxFactor(gen.Path(4), gen.Path(5), Options{}); err == nil {
		t.Fatal("mismatch not rejected")
	}
	if _, err := DenseApproxFactor(gen.Path(4), gen.Path(5)); err == nil {
		t.Fatal("mismatch not rejected (dense)")
	}
}

func TestEpsilon(t *testing.T) {
	b := Bounds{Lo: 0.8, Hi: 1.15}
	if e := b.Epsilon(); math.Abs(e-0.2) > 1e-12 {
		t.Fatalf("Epsilon=%v want 0.2", e)
	}
	b = Bounds{Lo: 0.95, Hi: 1.3}
	if e := b.Epsilon(); math.Abs(e-0.3) > 1e-12 {
		t.Fatalf("Epsilon=%v want 0.3", e)
	}
}

func TestQuadFormProbesInsideTrueInterval(t *testing.T) {
	g := gen.Gnp(50, 0.3, 7)
	if !graph.IsConnected(g) {
		t.Skip("disconnected")
	}
	h := g.Clone()
	for i := range h.Edges {
		h.Edges[i].W *= 1 + 0.4*math.Cos(float64(3*i))
	}
	exact, err := DenseApproxFactor(g, h)
	if err != nil {
		t.Fatal(err)
	}
	probes := QuadFormProbes(g, h, 30, 9)
	if probes.Lo < exact.Lo-1e-9 || probes.Hi > exact.Hi+1e-9 {
		t.Fatalf("probes %+v outside exact %+v", probes, exact)
	}
}

func trues(n int) []bool {
	b := make([]bool, n)
	for i := range b {
		b[i] = true
	}
	return b
}
