// Package graph defines the weighted undirected graph representation
// shared by every algorithm in this repository, together with the graph
// algebra the paper uses (G1 + G2, a·G, G − H as an edge mask) and basic
// structural queries.
//
// A Graph is an immutable vertex count plus a flat edge list. Algorithms
// that need neighborhood access build a CSR Adjacency explicitly; those
// that peel edge subsets (bundle construction, sampling) work with
// boolean edge masks over the original edge list so that no edges are
// copied until a final Subgraph call materializes the result.
package graph

import (
	"fmt"
	"math"
	"sort"
)

// Edge is an undirected weighted edge. Endpoints are vertex indices in
// [0, N); W must be positive for all spectral routines (a Laplacian with
// negative weights is not SDD).
type Edge struct {
	U, V int32
	W    float64
}

// Resistance returns the resistive length 1/W of the edge, the metric in
// which the paper measures stretch.
func (e Edge) Resistance() float64 { return 1 / e.W }

// Graph is a weighted undirected graph with a fixed vertex set
// {0, ..., N-1} and an edge list. Parallel edges and self-loops are
// permitted by the representation (graph sums create parallel edges);
// Canonical merges them when a simple graph is required.
type Graph struct {
	N     int
	Edges []Edge
}

// New returns a graph with n vertices and no edges.
func New(n int) *Graph {
	return &Graph{N: n}
}

// MaxEdges is the largest edge count any graph, adjacency view, or
// partition may hold: edge ids travel as int32 throughout the system
// (CSR EID slots, distributed message ports, wire frames, partition
// files), so every id in [0, m) must fit in an int32. The guard lives
// here — not in each consumer — so the overflow is caught where the id
// space is created rather than where some int32(i) silently wraps.
const MaxEdges = math.MaxInt32

// checkEdgeIDs panics if an edge-id space of size m cannot be indexed
// by int32.
func checkEdgeIDs(m int) {
	if m > MaxEdges {
		panic(fmt.Sprintf("graph: %d edges exceed the int32 edge-id space (max %d)", m, MaxEdges))
	}
}

// FromEdges builds a graph over n vertices with the given edges. The
// edge slice is used directly (not copied).
func FromEdges(n int, edges []Edge) *Graph {
	checkEdgeIDs(len(edges))
	return &Graph{N: n, Edges: edges}
}

// M returns the number of edges.
func (g *Graph) M() int { return len(g.Edges) }

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	edges := make([]Edge, len(g.Edges))
	copy(edges, g.Edges)
	return &Graph{N: g.N, Edges: edges}
}

// Validate checks structural invariants: endpoints in range and strictly
// positive finite weights. It returns the first violation found.
func (g *Graph) Validate() error {
	if g.N < 0 {
		return fmt.Errorf("graph: negative vertex count %d", g.N)
	}
	for i, e := range g.Edges {
		if e.U < 0 || int(e.U) >= g.N || e.V < 0 || int(e.V) >= g.N {
			return fmt.Errorf("graph: edge %d (%d,%d) out of range [0,%d)", i, e.U, e.V, g.N)
		}
		if !(e.W > 0) || math.IsInf(e.W, 0) {
			return fmt.Errorf("graph: edge %d has non-positive or non-finite weight %v", i, e.W)
		}
	}
	return nil
}

// TotalWeight returns the sum of edge weights.
func (g *Graph) TotalWeight() float64 {
	s := 0.0
	for _, e := range g.Edges {
		s += e.W
	}
	return s
}

// WeightedDegrees returns the weighted degree of every vertex
// (self-loops contribute twice, consistent with L = D − A having zero
// row sums only for loop-free graphs; spectral code canonicalizes first).
func (g *Graph) WeightedDegrees() []float64 {
	deg := make([]float64, g.N)
	for _, e := range g.Edges {
		deg[e.U] += e.W
		if e.U != e.V {
			deg[e.V] += e.W
		} else {
			deg[e.U] += e.W
		}
	}
	return deg
}

// Degrees returns the unweighted degree (incident edge count) of every
// vertex.
func (g *Graph) Degrees() []int {
	deg := make([]int, g.N)
	for _, e := range g.Edges {
		deg[e.U]++
		if e.V != e.U {
			deg[e.V]++
		}
	}
	return deg
}

// Scale returns a·g: the same topology with all weights multiplied by a.
func (g *Graph) Scale(a float64) *Graph {
	out := g.Clone()
	for i := range out.Edges {
		out.Edges[i].W *= a
	}
	return out
}

// Add returns the graph sum g + h (same vertex set required): the
// concatenation of the edge lists, which is exactly Laplacian addition.
func Add(g, h *Graph) *Graph {
	if g.N != h.N {
		panic(fmt.Sprintf("graph: Add dimension mismatch %d vs %d", g.N, h.N))
	}
	edges := make([]Edge, 0, len(g.Edges)+len(h.Edges))
	edges = append(edges, g.Edges...)
	edges = append(edges, h.Edges...)
	return &Graph{N: g.N, Edges: edges}
}

// Canonical returns a simple graph spectrally identical to g: parallel
// edges merged by weight summation (resistors in parallel under the
// Laplacian view add conductances), self-loops dropped (a self-loop has
// the zero Laplacian), endpoints ordered U < V, and edges sorted.
func (g *Graph) Canonical() *Graph {
	type key struct{ u, v int32 }
	acc := make(map[key]float64, len(g.Edges))
	for _, e := range g.Edges {
		if e.U == e.V {
			continue
		}
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		acc[key{u, v}] += e.W
	}
	edges := make([]Edge, 0, len(acc))
	for k, w := range acc {
		edges = append(edges, Edge{U: k.u, V: k.v, W: w})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	return &Graph{N: g.N, Edges: edges}
}

// Subgraph materializes the edges for which keep[i] is true.
func (g *Graph) Subgraph(keep []bool) *Graph {
	if len(keep) != len(g.Edges) {
		panic("graph: Subgraph mask length mismatch")
	}
	var edges []Edge
	for i, e := range g.Edges {
		if keep[i] {
			edges = append(edges, e)
		}
	}
	return &Graph{N: g.N, Edges: edges}
}

// EdgeIndices returns the indices set in mask, in increasing order.
func EdgeIndices(mask []bool) []int {
	var idx []int
	for i, b := range mask {
		if b {
			idx = append(idx, i)
		}
	}
	return idx
}

// CountTrue returns the number of set entries in mask.
func CountTrue(mask []bool) int {
	c := 0
	for _, b := range mask {
		if b {
			c++
		}
	}
	return c
}

// MinWeight and MaxWeight return the extreme edge weights; both return
// ok=false on an empty graph.
func (g *Graph) MinWeight() (float64, bool) {
	if len(g.Edges) == 0 {
		return 0, false
	}
	m := g.Edges[0].W
	for _, e := range g.Edges[1:] {
		if e.W < m {
			m = e.W
		}
	}
	return m, true
}

// MaxWeight returns the largest edge weight.
func (g *Graph) MaxWeight() (float64, bool) {
	if len(g.Edges) == 0 {
		return 0, false
	}
	m := g.Edges[0].W
	for _, e := range g.Edges[1:] {
		if e.W > m {
			m = e.W
		}
	}
	return m, true
}

// String implements fmt.Stringer with a short structural summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.N, len(g.Edges))
}
