package graph

// Components labels the connected components of g (considering only
// edges where alive is true, or all edges when alive is nil) and returns
// the label array plus the component count. Labels are in [0, count) and
// assigned in order of smallest contained vertex, so the output is
// deterministic.
func Components(g *Graph, alive []bool) (label []int32, count int) {
	adj := NewAdjacency(g)
	label = make([]int32, g.N)
	for i := range label {
		label[i] = -1
	}
	var queue []int32
	for start := 0; start < g.N; start++ {
		if label[start] != -1 {
			continue
		}
		label[start] = int32(count)
		queue = append(queue[:0], int32(start))
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			lo, hi := adj.Range(v)
			for s := lo; s < hi; s++ {
				if alive != nil && !alive[adj.EID[s]] {
					continue
				}
				u := adj.Nbr[s]
				if label[u] == -1 {
					label[u] = int32(count)
					queue = append(queue, u)
				}
			}
		}
		count++
	}
	return label, count
}

// IsConnected reports whether g is connected (an empty or single-vertex
// graph counts as connected).
func IsConnected(g *Graph) bool {
	if g.N <= 1 {
		return true
	}
	_, c := Components(g, nil)
	return c == 1
}
