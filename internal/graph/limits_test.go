package graph

import (
	"strings"
	"testing"
)

// TestEdgeIDOverflowGuard pins the int32 edge-id boundary: id spaces
// up to MaxEdges are accepted, one past it is rejected loudly — the
// compute loops and the wire format index edges as int32, so a silent
// wrap would corrupt every mask and message past 2^31.
func TestEdgeIDOverflowGuard(t *testing.T) {
	// The checker itself, at the exact boundary (FromEdges and
	// NewAdjacencyDense call it before touching the slice; a real
	// MaxEdges+1 slice would need >50 GB, so the boundary is tested on
	// the guard they share).
	checkEdgeIDs(MaxEdges) // must not panic
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("checkEdgeIDs accepted an id space one past the int32 boundary")
		} else if !strings.Contains(r.(string), "int32") {
			t.Fatalf("unhelpful overflow panic: %v", r)
		}
	}()
	checkEdgeIDs(MaxEdges + 1)
}

// TestPartitionValidateRejectsOverflowSizes: a partition header
// claiming a global id space beyond int32 must fail validation — this
// is the reachable boundary (Partition sizes arrive from files and
// job specs as plain ints with no backing slice).
func TestPartitionValidateRejectsOverflowSizes(t *testing.T) {
	for _, p := range []*Partition{
		{N: 4, M: MaxEdges + 1, Shards: 1, Hi: 4},
		{N: MaxEdges + 1, M: 4, Shards: 1, Hi: MaxEdges + 1},
	} {
		if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "int32") {
			t.Fatalf("Validate(%d vertices, %d edges) = %v, want int32 id-space error", p.N, p.M, err)
		}
	}
	// The boundary itself is legal.
	ok := &Partition{N: 2, M: MaxEdges, Shards: 1, Lo: 0, Hi: 2}
	if err := ok.Validate(); err != nil {
		t.Fatalf("Validate rejected m = MaxEdges: %v", err)
	}
}
