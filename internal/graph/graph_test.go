package graph

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func triangle() *Graph {
	return FromEdges(3, []Edge{{0, 1, 1}, {1, 2, 2}, {0, 2, 3}})
}

func TestValidateAcceptsGood(t *testing.T) {
	if err := triangle().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsOutOfRange(t *testing.T) {
	g := FromEdges(2, []Edge{{0, 5, 1}})
	if g.Validate() == nil {
		t.Fatal("expected range error")
	}
}

func TestValidateRejectsBadWeight(t *testing.T) {
	for _, w := range []float64{0, -1, math.Inf(1), math.NaN()} {
		g := FromEdges(2, []Edge{{0, 1, w}})
		if g.Validate() == nil {
			t.Fatalf("expected weight error for %v", w)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := triangle()
	h := g.Clone()
	h.Edges[0].W = 99
	if g.Edges[0].W == 99 {
		t.Fatal("Clone shares edge storage")
	}
}

func TestTotalWeight(t *testing.T) {
	if w := triangle().TotalWeight(); w != 6 {
		t.Fatalf("TotalWeight=%v", w)
	}
}

func TestWeightedDegrees(t *testing.T) {
	deg := triangle().WeightedDegrees()
	want := []float64{4, 3, 5}
	for i := range want {
		if deg[i] != want[i] {
			t.Fatalf("deg[%d]=%v want %v", i, deg[i], want[i])
		}
	}
}

func TestScale(t *testing.T) {
	g := triangle().Scale(2)
	if g.Edges[1].W != 4 {
		t.Fatalf("Scale result %v", g.Edges[1].W)
	}
}

func TestAddConcatenatesEdges(t *testing.T) {
	g := Add(triangle(), triangle())
	if g.M() != 6 {
		t.Fatalf("Add M=%d", g.M())
	}
	if g.TotalWeight() != 12 {
		t.Fatalf("Add weight=%v", g.TotalWeight())
	}
}

func TestCanonicalMergesParallelEdges(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1, 1}, {1, 0, 2}, {2, 2, 5}, {1, 2, 1}})
	c := g.Canonical()
	if c.M() != 2 {
		t.Fatalf("Canonical M=%d want 2 (merged parallel, dropped loop)", c.M())
	}
	if c.Edges[0].U != 0 || c.Edges[0].V != 1 || c.Edges[0].W != 3 {
		t.Fatalf("merged edge wrong: %+v", c.Edges[0])
	}
}

func TestCanonicalIdempotent(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(20)
		m := r.Intn(60)
		edges := make([]Edge, 0, m)
		for i := 0; i < m; i++ {
			edges = append(edges, Edge{
				U: int32(r.Intn(n)), V: int32(r.Intn(n)),
				W: 0.1 + r.Float64(),
			})
		}
		g := FromEdges(n, edges)
		c1 := g.Canonical()
		c2 := c1.Canonical()
		if c1.M() != c2.M() {
			return false
		}
		for i := range c1.Edges {
			if c1.Edges[i] != c2.Edges[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCanonicalPreservesTotalWeightModuloLoops(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(15)
		m := 1 + r.Intn(40)
		edges := make([]Edge, 0, m)
		loopW := 0.0
		totalW := 0.0
		for i := 0; i < m; i++ {
			e := Edge{U: int32(r.Intn(n)), V: int32(r.Intn(n)), W: 0.1 + r.Float64()}
			edges = append(edges, e)
			totalW += e.W
			if e.U == e.V {
				loopW += e.W
			}
		}
		c := FromEdges(n, edges).Canonical()
		return math.Abs(c.TotalWeight()-(totalW-loopW)) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSubgraph(t *testing.T) {
	g := triangle()
	sub := g.Subgraph([]bool{true, false, true})
	if sub.M() != 2 {
		t.Fatalf("Subgraph M=%d", sub.M())
	}
	if sub.Edges[1].W != 3 {
		t.Fatalf("kept wrong edge: %+v", sub.Edges[1])
	}
}

func TestEdgeIndicesAndCountTrue(t *testing.T) {
	mask := []bool{true, false, true, true}
	idx := EdgeIndices(mask)
	if len(idx) != 3 || idx[0] != 0 || idx[1] != 2 || idx[2] != 3 {
		t.Fatalf("EdgeIndices=%v", idx)
	}
	if CountTrue(mask) != 3 {
		t.Fatal("CountTrue wrong")
	}
}

func TestMinMaxWeight(t *testing.T) {
	g := triangle()
	if w, ok := g.MinWeight(); !ok || w != 1 {
		t.Fatalf("MinWeight=%v ok=%v", w, ok)
	}
	if w, ok := g.MaxWeight(); !ok || w != 3 {
		t.Fatalf("MaxWeight=%v ok=%v", w, ok)
	}
	empty := New(3)
	if _, ok := empty.MinWeight(); ok {
		t.Fatal("MinWeight on empty should report !ok")
	}
}

func TestAdjacencyDegreesAndEIDs(t *testing.T) {
	g := triangle()
	adj := NewAdjacency(g)
	if adj.Degree(0) != 2 || adj.Degree(1) != 2 || adj.Degree(2) != 2 {
		t.Fatal("triangle degrees wrong")
	}
	// Every edge id must appear exactly twice across all slots.
	counts := make([]int, g.M())
	for _, eid := range adj.EID {
		counts[eid]++
	}
	for i, c := range counts {
		if c != 2 {
			t.Fatalf("edge %d appears %d times", i, c)
		}
	}
}

func TestAdjacencySelfLoopSingleSlot(t *testing.T) {
	g := FromEdges(2, []Edge{{0, 0, 1}, {0, 1, 1}})
	adj := NewAdjacency(g)
	if adj.Degree(0) != 2 {
		t.Fatalf("vertex 0 degree %d want 2 (one loop slot + one edge)", adj.Degree(0))
	}
}

func TestAdjacencyNeighborsCallback(t *testing.T) {
	g := triangle()
	adj := NewAdjacency(g)
	seen := map[int32]bool{}
	adj.Neighbors(1, func(u int32, eid int32) {
		seen[u] = true
		e := g.Edges[eid]
		if e.U != 1 && e.V != 1 {
			t.Fatalf("edge %d not incident to 1", eid)
		}
	})
	if !seen[0] || !seen[2] {
		t.Fatalf("neighbors of 1: %v", seen)
	}
}

func TestComponentsSplit(t *testing.T) {
	g := FromEdges(5, []Edge{{0, 1, 1}, {2, 3, 1}})
	label, count := Components(g, nil)
	if count != 3 {
		t.Fatalf("count=%d want 3", count)
	}
	if label[0] != label[1] || label[2] != label[3] || label[0] == label[2] || label[4] == label[0] {
		t.Fatalf("labels=%v", label)
	}
}

func TestComponentsRespectsAliveMask(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1, 1}, {1, 2, 1}})
	_, count := Components(g, []bool{true, false})
	if count != 2 {
		t.Fatalf("count=%d want 2 with edge 1 dead", count)
	}
}

func TestIsConnected(t *testing.T) {
	if !IsConnected(triangle()) {
		t.Fatal("triangle should be connected")
	}
	if IsConnected(FromEdges(3, []Edge{{0, 1, 1}})) {
		t.Fatal("3 vertices, 1 edge should be disconnected")
	}
	if !IsConnected(New(1)) || !IsConnected(New(0)) {
		t.Fatal("trivial graphs count as connected")
	}
}

func TestDegreesUnweighted(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1, 5}, {0, 2, 5}, {0, 0, 5}})
	deg := g.Degrees()
	if deg[0] != 3 || deg[1] != 1 || deg[2] != 1 {
		t.Fatalf("Degrees=%v", deg)
	}
}

func TestEdgeResistance(t *testing.T) {
	e := Edge{0, 1, 4}
	if e.Resistance() != 0.25 {
		t.Fatalf("Resistance=%v", e.Resistance())
	}
}

func TestStringSummary(t *testing.T) {
	if s := triangle().String(); s != "graph{n=3 m=3}" {
		t.Fatalf("String=%q", s)
	}
}
