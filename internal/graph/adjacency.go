package graph

// Adjacency is a CSR (compressed sparse row) view of a graph: for each
// vertex, the incident edges in a contiguous block. Each undirected edge
// appears twice, once per endpoint. EID maps back into the owning
// graph's edge list, which is what lets bundle construction and the
// spanner peel edges with boolean masks instead of copying.
type Adjacency struct {
	N       int
	Offsets []int32 // length N+1
	Nbr     []int32 // length 2m: the neighbor at each slot
	EID     []int32 // length 2m: index of the underlying edge
}

// NewAdjacency builds the CSR view of g in O(n + m).
func NewAdjacency(g *Graph) *Adjacency {
	return NewAdjacencyDense(g.N, g.Edges)
}

// NewAdjacencyDense builds the CSR view of a dense edge list over n
// vertices: EID slots carry the edge's index in the given slice. For a
// whole graph that index is the global edge id (NewAdjacency is this
// function on g.Edges); for a distributed worker's compacted partition
// table it is the LOCAL edge id in [0, len(edges)), which is what
// keeps every per-edge array the compute loops touch at O(m_incident)
// words instead of Θ(m). Slot order within a vertex follows slice
// order, so two views built from the same (ordered) edge sequence are
// structurally identical.
func NewAdjacencyDense(n int, edges []Edge) *Adjacency {
	checkEdgeIDs(len(edges))
	return buildAdjacency(n, func(yield func(id int32, e Edge)) {
		for i, e := range edges {
			yield(int32(i), e)
		}
	})
}

// buildAdjacency runs the two-pass CSR construction (count, prefix-sum,
// cursor fill; one slot per endpoint, self-loops once) over whatever
// (id, edge) sequence forEach produces. forEach must yield the same
// sequence on both passes.
func buildAdjacency(n int, forEach func(yield func(id int32, e Edge))) *Adjacency {
	counts := make([]int32, n+1)
	forEach(func(_ int32, e Edge) {
		counts[e.U+1]++
		if e.V != e.U {
			counts[e.V+1]++
		}
	})
	for i := 0; i < n; i++ {
		counts[i+1] += counts[i]
	}
	offsets := counts
	total := offsets[n]
	nbr := make([]int32, total)
	eid := make([]int32, total)
	cursor := make([]int32, n)
	copy(cursor, offsets[:n])
	forEach(func(id int32, e Edge) {
		cu := cursor[e.U]
		nbr[cu] = e.V
		eid[cu] = id
		cursor[e.U]++
		if e.V != e.U {
			cv := cursor[e.V]
			nbr[cv] = e.U
			eid[cv] = id
			cursor[e.V]++
		}
	})
	return &Adjacency{N: n, Offsets: offsets, Nbr: nbr, EID: eid}
}

// Degree returns the number of incident edge slots of v.
func (a *Adjacency) Degree(v int32) int {
	return int(a.Offsets[v+1] - a.Offsets[v])
}

// Neighbors calls fn(neighbor, edgeIndex) for every incident slot of v.
func (a *Adjacency) Neighbors(v int32, fn func(u int32, eid int32)) {
	for i := a.Offsets[v]; i < a.Offsets[v+1]; i++ {
		fn(a.Nbr[i], a.EID[i])
	}
}

// Range returns the slot range [lo, hi) of vertex v for manual iteration
// over a.Nbr and a.EID.
func (a *Adjacency) Range(v int32) (lo, hi int32) {
	return a.Offsets[v], a.Offsets[v+1]
}
