package graph

import "fmt"

// Vertex partitioning for the distributed engine: the balanced
// contiguous partition bounds[s] = s*n/p shared by every transport and
// by the partition-aware graph loader. Keeping the formula here — in
// the leaf package — is what guarantees that a worker process carving
// its shard from a file agrees bit-for-bit with the transports about
// who owns which vertex.

// ClampShards normalizes a requested shard count for n vertices to the
// range [1, max(n, 1)].
func ClampShards(n, p int) int {
	if p < 1 {
		p = 1
	}
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1 // n == 0: one trivial shard owning the empty range
	}
	return p
}

// ShardBounds returns the p+1 partition boundaries of the balanced
// contiguous partition of [0, n): shard s owns [bounds[s], bounds[s+1]).
func ShardBounds(n, p int) []int {
	bounds := make([]int, p+1)
	for s := 0; s <= p; s++ {
		bounds[s] = s * n / p
	}
	return bounds
}

// ShardOfVertex returns the shard owning vertex v under ShardBounds'
// partition (its exact inverse).
func ShardOfVertex(n, p int, v int32) int {
	if n == 0 {
		return 0
	}
	// bounds[s] = s*n/p, so s ~ v*p/n up to rounding; correct locally.
	s := int(int64(v) * int64(p) / int64(n))
	for s+1 <= p && int64(v) >= int64(s+1)*int64(n)/int64(p) {
		s++
	}
	for s > 0 && int64(v) < int64(s)*int64(n)/int64(p) {
		s--
	}
	return s
}

// Partition is the slice of a graph one worker of a p-way distributed
// run materializes: the edges incident to the shard's vertex range —
// its own adjacency plus the boundary edges into other shards — keyed
// by their global edge ids so that messages, masks, and sampling
// decisions stay globally consistent.
type Partition struct {
	// N and M are the GLOBAL vertex and edge counts.
	N, M int
	// Shard and Shards identify this slice of the p-way partition.
	Shard, Shards int
	// Lo and Hi delimit the owned vertex range [Lo, Hi).
	Lo, Hi int
	// IDs are the global edge ids of the incident edges, increasing.
	IDs []int32
	// Edges are the incident edges, parallel to IDs.
	Edges []Edge
}

// PartitionOf carves shard s of a p-way partition out of g. Every edge
// with at least one endpoint in the shard's vertex range is included
// (boundary edges therefore appear in exactly the partitions of their
// two endpoints' shards).
func PartitionOf(g *Graph, shard, shards int) *Partition {
	p := ClampShards(g.N, shards)
	if shard < 0 || shard >= p {
		panic(fmt.Sprintf("graph: partition shard %d out of range [0,%d)", shard, p))
	}
	lo := shard * g.N / p
	hi := (shard + 1) * g.N / p
	part := &Partition{
		N: g.N, M: len(g.Edges),
		Shard: shard, Shards: p,
		Lo: lo, Hi: hi,
	}
	for i, e := range g.Edges {
		if (int(e.U) >= lo && int(e.U) < hi) || (int(e.V) >= lo && int(e.V) < hi) {
			part.IDs = append(part.IDs, int32(i))
			part.Edges = append(part.Edges, e)
		}
	}
	return part
}

// Validate checks the structural invariants a loaded partition must
// satisfy before a worker trusts it: consistent sizes, ids in range and
// strictly increasing, bounds matching ShardBounds, and every edge
// actually incident to the owned range.
func (p *Partition) Validate() error {
	if p.N < 0 || p.M < 0 {
		return fmt.Errorf("graph: partition has negative sizes n=%d m=%d", p.N, p.M)
	}
	if p.N > MaxEdges || p.M > MaxEdges {
		// Vertex and edge ids both travel as int32 (messages, wire
		// frames, partition records).
		return fmt.Errorf("graph: partition sizes n=%d m=%d exceed the int32 id space", p.N, p.M)
	}
	shards := ClampShards(p.N, p.Shards)
	if shards != p.Shards || p.Shard < 0 || p.Shard >= p.Shards {
		return fmt.Errorf("graph: partition shard %d/%d invalid for n=%d", p.Shard, p.Shards, p.N)
	}
	if p.Lo != p.Shard*p.N/p.Shards || p.Hi != (p.Shard+1)*p.N/p.Shards {
		return fmt.Errorf("graph: partition bounds [%d,%d) disagree with ShardBounds", p.Lo, p.Hi)
	}
	if len(p.IDs) != len(p.Edges) {
		return fmt.Errorf("graph: partition has %d ids but %d edges", len(p.IDs), len(p.Edges))
	}
	prev := int32(-1)
	for i, id := range p.IDs {
		if id <= prev || int(id) >= p.M {
			return fmt.Errorf("graph: partition edge id %d at %d not increasing in [0,%d)", id, i, p.M)
		}
		prev = id
		e := p.Edges[i]
		if e.U < 0 || int(e.U) >= p.N || e.V < 0 || int(e.V) >= p.N {
			return fmt.Errorf("graph: partition edge %d (%d,%d) out of range", id, e.U, e.V)
		}
		if !(int(e.U) >= p.Lo && int(e.U) < p.Hi) && !(int(e.V) >= p.Lo && int(e.V) < p.Hi) {
			return fmt.Errorf("graph: partition edge %d (%d,%d) not incident to [%d,%d)", id, e.U, e.V, p.Lo, p.Hi)
		}
	}
	return nil
}
