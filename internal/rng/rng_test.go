package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestSplitIndependentOfParentState(t *testing.T) {
	a := New(7)
	a.Uint64() // advance parent
	s1 := a.Split(3)
	s2 := New(7).Split(3)
	for i := 0; i < 100; i++ {
		if s1.Uint64() != s2.Uint64() {
			t.Fatalf("Split depends on parent state at step %d", i)
		}
	}
}

func TestSplitStreamsDiffer(t *testing.T) {
	r := New(7)
	s1 := r.Split(1)
	s2 := r.Split(2)
	same := 0
	for i := 0; i < 64; i++ {
		if s1.Uint64() == s2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams 1 and 2 collide in %d/64 draws", same)
	}
}

func TestSplitAtMatchesSplit(t *testing.T) {
	if got, want := SplitAt(9, 4).Uint64(), New(9).Split(4).Uint64(); got != want {
		t.Fatalf("SplitAt=%d Split=%d", got, want)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(123)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(5)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(99)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("Intn(7) value %d count %d outside 10000±2000", v, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestBernoulliExtremes(t *testing.T) {
	r := New(11)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(13)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.25) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.25) > 0.01 {
		t.Fatalf("Bernoulli(0.25) rate %v", rate)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(17)
	const n = 100000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %v", variance)
	}
}

func TestExpMean(t *testing.T) {
	r := New(19)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		x := r.Exp()
		if x < 0 {
			t.Fatalf("negative exponential %v", x)
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean %v", mean)
	}
}

func TestRademacher(t *testing.T) {
	r := New(23)
	pos := 0
	for i := 0; i < 10000; i++ {
		v := r.Rademacher()
		if v != 1 && v != -1 {
			t.Fatalf("Rademacher produced %v", v)
		}
		if v == 1 {
			pos++
		}
	}
	if pos < 4700 || pos > 5300 {
		t.Fatalf("Rademacher bias: %d/10000 positive", pos)
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		p := New(seed).Perm(int(n))
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == int(n)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBinomialRange(t *testing.T) {
	check := func(seed uint64, n uint8, pRaw uint16) bool {
		p := float64(pRaw) / math.MaxUint16
		k := New(seed).Binomial(int(n), p)
		return k >= 0 && k <= int(n)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBinomialMeanLargeN(t *testing.T) {
	r := New(29)
	const n, p, trials = 1000, 0.3, 2000
	sum := 0
	for i := 0; i < trials; i++ {
		sum += r.Binomial(n, p)
	}
	mean := float64(sum) / trials
	if math.Abs(mean-n*p) > 3 {
		t.Fatalf("binomial mean %v, want ~%v", mean, n*p)
	}
}
