// Package rng provides small, fast, deterministic random number
// generators with splittable streams.
//
// Every randomized algorithm in this repository takes an explicit seed
// and derives independent sub-streams with Split, so that results are
// reproducible bit-for-bit regardless of goroutine scheduling: each
// parallel shard owns a stream derived only from the seed and the shard
// index, never from execution order.
package rng

import "math"

// splitmix64 constants (Steele, Lea, Flood; public domain reference
// implementation).
const (
	gamma  = 0x9e3779b97f4a7c15
	mixA   = 0xbf58476d1ce4e5b9
	mixB   = 0x94d049bb133111eb
	mixVar = 0xff51afd7ed558ccd
)

// mix64 is the splitmix64 output function: a bijective avalanche mix.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * mixA
	z = (z ^ (z >> 27)) * mixB
	return z ^ (z >> 31)
}

// RNG is a splitmix64 generator. The zero value is a valid generator
// seeded with 0; prefer New for clarity.
type RNG struct {
	seed  uint64 // the construction seed; Split derives streams from it
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{seed: seed, state: seed}
}

// Split derives an independent stream from r's construction seed and a
// stream index. Two Splits with different indices produce statistically
// independent sequences; Split neither advances r nor depends on how
// many values r has already produced.
func (r *RNG) Split(index uint64) *RNG {
	return SplitAt(r.seed, index)
}

// SplitAt is a convenience for deriving a stream directly from a raw
// seed without allocating an intermediate RNG.
func SplitAt(seed, index uint64) *RNG {
	s := mix64(seed+gamma) ^ mix64(index*mixVar+gamma)
	return &RNG{seed: s, state: s}
}

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	r.state += gamma
	return mix64(r.state)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 high bits → [0,1) with full double precision.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a uniform non-negative int64.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exp returns an exponentially distributed float64 with rate 1.
func (r *RNG) Exp() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Norm returns a standard normal deviate (Box–Muller; one value per
// call, the second is discarded for simplicity).
func (r *RNG) Norm() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// Rademacher returns +1 or -1 with equal probability.
func (r *RNG) Rademacher() float64 {
	if r.Uint64()&1 == 0 {
		return 1
	}
	return -1
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Binomial returns a sample from Binomial(n, p). It uses explicit
// Bernoulli summation for small n and a normal approximation with
// continuity correction for large n, which is accurate far beyond the
// needs of test assertions.
func (r *RNG) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if n <= 64 {
		k := 0
		for i := 0; i < n; i++ {
			if r.Bernoulli(p) {
				k++
			}
		}
		return k
	}
	mean := float64(n) * p
	sd := math.Sqrt(mean * (1 - p))
	k := int(math.Round(mean + sd*r.Norm()))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}
