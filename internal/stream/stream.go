// Package stream implements a semi-streaming spectral sparsifier by
// merge-and-reduce over the paper's PARALLELSAMPLE, the construction
// pattern of Kelner–Levin (STACS 2011) that the paper's related-work
// section situates itself against. Edges arrive one at a time in
// arbitrary order; the summary held in memory never exceeds
// O(buffer + compressed summary) edges; on Finish the summary is a
// spectral approximation of the whole stream whose accuracy compounds
// multiplicatively over the O(stream/buffer) reduce steps — callers
// pick the per-reduce ε accordingly, exactly like the ε/⌈log ρ⌉ split
// inside Algorithm 2.
package stream

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/graph"
)

// ErrFinished is returned by Ingest, Snapshot, and Finish once Finish
// has succeeded: Finish is terminal, and a silently-accepted edge after
// it would never reach any summary.
var ErrFinished = errors.New("stream: sparsifier already finished")

// Options configures a streaming sparsifier.
type Options struct {
	// BufferEdges is the ingest buffer size; a reduce fires when the
	// buffer fills. Default 4·n.
	BufferEdges int
	// ReduceEps is the per-reduce sample accuracy. Default 0.2.
	ReduceEps float64
	// Config is the sampler configuration (zero value →
	// core.DefaultConfig(seed) with a thin pinned bundle).
	Config *core.Config
	Seed   uint64
}

// Sparsifier ingests a stream of weighted edges over a fixed vertex
// set and maintains a bounded-size spectral summary.
type Sparsifier struct {
	n        int
	opt      Options
	summary  []graph.Edge
	buffer   []graph.Edge
	reduces  int
	ingested int64
	finished bool
}

// New returns a streaming sparsifier over n vertices.
func New(n int, opt Options) *Sparsifier {
	if opt.BufferEdges <= 0 {
		opt.BufferEdges = 4 * n
		if opt.BufferEdges < 1024 {
			opt.BufferEdges = 1024
		}
	}
	if opt.ReduceEps <= 0 {
		opt.ReduceEps = 0.2
	}
	return &Sparsifier{n: n, opt: opt}
}

// Ingest adds one edge of the stream. A failed reduce surfaces here;
// the triggering edge and the rest of the buffer stay ingested, so the
// stream is not silently truncated and the caller may retry or abort.
func (s *Sparsifier) Ingest(e graph.Edge) error {
	if s.finished {
		return fmt.Errorf("stream: Ingest(%d,%d): %w", e.U, e.V, ErrFinished)
	}
	if e.U < 0 || int(e.U) >= s.n || e.V < 0 || int(e.V) >= s.n {
		return fmt.Errorf("stream: edge (%d,%d) outside vertex set [0,%d)", e.U, e.V, s.n)
	}
	if !(e.W > 0) || math.IsInf(e.W, 0) {
		return fmt.Errorf("stream: non-positive or non-finite weight %v", e.W)
	}
	s.buffer = append(s.buffer, e)
	s.ingested++
	if len(s.buffer) >= s.opt.BufferEdges {
		return s.reduce()
	}
	return nil
}

// sampleMerged runs one PARALLELSAMPLE round over summary+buffer with
// the seed the NEXT reduce would use, without committing anything. It
// is the shared computation of reduce (which commits the result) and
// Snapshot (which must not), so the two are bit-identical by
// construction.
func (s *Sparsifier) sampleMerged() ([]graph.Edge, error) {
	merged := make([]graph.Edge, 0, len(s.summary)+len(s.buffer))
	merged = append(merged, s.summary...)
	merged = append(merged, s.buffer...)
	g := graph.FromEdges(s.n, merged)
	var cfg core.Config
	if s.opt.Config != nil {
		cfg = *s.opt.Config
	} else {
		cfg = core.DefaultConfig(s.opt.Seed)
		cfg.BundleT = 2
	}
	cfg.Seed ^= uint64(s.reduces+1) * 0x9e3779b97f4a7c15
	out, _, err := core.ParallelSample(g, s.opt.ReduceEps, cfg)
	if err != nil {
		return nil, fmt.Errorf("stream: reduce %d: %w", s.reduces+1, err)
	}
	return out.Edges, nil
}

// reduce merges the buffer into the summary and compresses with one
// PARALLELSAMPLE round. On failure the buffer (and summary) are left
// exactly as they were — no edge is dropped.
func (s *Sparsifier) reduce() error {
	out, err := s.sampleMerged()
	if err != nil {
		return err
	}
	s.buffer = s.buffer[:0]
	s.summary = out
	s.reduces++
	return nil
}

// Snapshot returns the summary graph over everything ingested so far
// WITHOUT disturbing the stream: no buffer is flushed, no reduce is
// committed, and the stream keeps accepting edges afterwards. The
// returned graph and reduce count are bit-identical to what Finish
// would return at this exact prefix (a pending buffer is compressed
// through the same seed schedule the committing reduce would use), so a
// long-lived reader — the serve package's epoch publisher — can expose
// consistent snapshots while ingest continues. A failed sample (bad
// per-reduce eps) or an already-finished stream is an error.
func (s *Sparsifier) Snapshot() (*graph.Graph, int, error) {
	if s.finished {
		return nil, s.reduces, fmt.Errorf("stream: Snapshot: %w", ErrFinished)
	}
	if len(s.buffer) == 0 {
		edges := make([]graph.Edge, len(s.summary))
		copy(edges, s.summary)
		return graph.FromEdges(s.n, edges), s.reduces, nil
	}
	out, err := s.sampleMerged()
	if err != nil {
		return nil, s.reduces, err
	}
	return graph.FromEdges(s.n, out), s.reduces + 1, nil
}

// Finish flushes the buffer and returns the final summary graph along
// with the number of reduce steps performed (each contributing a
// (1±ReduceEps) factor to the end-to-end guarantee). A failed final
// reduce returns the error with all buffered edges still held. Finish
// is terminal: after it succeeds, further Ingest/Snapshot/Finish calls
// return ErrFinished — use Snapshot for a non-destructive read of a
// live stream.
func (s *Sparsifier) Finish() (*graph.Graph, int, error) {
	if s.finished {
		return nil, s.reduces, fmt.Errorf("stream: Finish: %w", ErrFinished)
	}
	if len(s.buffer) > 0 {
		if err := s.reduce(); err != nil {
			return nil, s.reduces, err
		}
	}
	s.finished = true
	edges := make([]graph.Edge, len(s.summary))
	copy(edges, s.summary)
	return graph.FromEdges(s.n, edges), s.reduces, nil
}

// SummarySize returns the current in-memory edge count (buffer plus
// summary) — the quantity the semi-streaming model bounds.
func (s *Sparsifier) SummarySize() int {
	return len(s.summary) + len(s.buffer)
}

// Ingested returns the number of stream edges consumed so far.
func (s *Sparsifier) Ingested() int64 { return s.ingested }
