package stream

import (
	"errors"
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/spectral"
)

func streamAll(t *testing.T, s *Sparsifier, edges []graph.Edge) {
	t.Helper()
	for _, e := range edges {
		if err := s.Ingest(e); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStreamEndToEndQuality(t *testing.T) {
	g := gen.Complete(160)
	// Shuffle the stream order to exercise order-independence of the
	// guarantee (not of the exact output).
	r := rng.New(7)
	perm := r.Perm(g.M())
	s := New(g.N, Options{BufferEdges: 3000, ReduceEps: 0.2, Seed: 3})
	for _, idx := range perm {
		if err := s.Ingest(g.Edges[idx]); err != nil {
			t.Fatal(err)
		}
	}
	out, reduces, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if reduces < 2 {
		t.Fatalf("expected multiple reduces over %d edges with buffer 3000, got %d", g.M(), reduces)
	}
	if out.M() >= g.M() {
		t.Fatalf("no compression: %d -> %d", g.M(), out.M())
	}
	b, err := spectral.DenseApproxFactor(g, out)
	if err != nil {
		t.Fatal(err)
	}
	// Accuracy compounds per reduce: allow (1+eps)^reduces - 1 slack.
	budget := 1.0
	for i := 0; i < reduces; i++ {
		budget *= 1.25
	}
	budget -= 1
	if got := b.Epsilon(); got > budget {
		t.Fatalf("streaming eps %v exceeds compounded budget %v (%d reduces)", got, budget, reduces)
	}
}

func TestStreamMemoryBound(t *testing.T) {
	g := gen.Complete(200)
	buf := 2000
	s := New(g.N, Options{BufferEdges: buf, ReduceEps: 0.25, Seed: 5})
	peak := 0
	for _, e := range g.Edges {
		if err := s.Ingest(e); err != nil {
			t.Fatal(err)
		}
		if sz := s.SummarySize(); sz > peak {
			peak = sz
		}
	}
	// In-memory size never exceeds buffer + previous summary; the
	// summary after a reduce is itself bounded by roughly the bundle
	// floor plus a quarter of the merged size.
	if peak > 3*buf+g.N*22 {
		t.Fatalf("peak in-memory size %d blew the semi-streaming budget", peak)
	}
	if s.Ingested() != int64(g.M()) {
		t.Fatalf("ingested %d want %d", s.Ingested(), g.M())
	}
}

func TestStreamPreservesConnectivity(t *testing.T) {
	g := gen.Barbell(40, 1)
	s := New(g.N, Options{BufferEdges: 400, ReduceEps: 0.25, Seed: 9})
	streamAll(t, s, g.Edges)
	out, _, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !graph.IsConnected(out) {
		t.Fatal("stream summary lost the bridge (bundle must retain it at every reduce)")
	}
}

func TestStreamRejectsBadEdges(t *testing.T) {
	s := New(5, Options{})
	if err := s.Ingest(graph.Edge{U: 0, V: 9, W: 1}); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if err := s.Ingest(graph.Edge{U: 0, V: 1, W: -2}); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestStreamNoReduceForSmallStreams(t *testing.T) {
	g := gen.Path(50)
	s := New(g.N, Options{BufferEdges: 10000, Seed: 11})
	streamAll(t, s, g.Edges)
	out, reduces, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if reduces != 1 {
		t.Fatalf("small stream should reduce exactly once at Finish, got %d", reduces)
	}
	// A path is all-bundle: the summary is exact.
	if out.M() != g.M() {
		t.Fatalf("path stream summary %d != %d", out.M(), g.M())
	}
}

func TestStreamEmptyFinish(t *testing.T) {
	s := New(10, Options{})
	out, reduces, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if out.M() != 0 || reduces != 0 {
		t.Fatal("empty stream mishandled")
	}
}

// TestStreamReduceFailureKeepsBuffer: a reduce whose per-reduce eps is
// illegal must surface the error from Ingest AND leave every buffered
// edge in place — the stream is not silently truncated — and Finish
// must report the same failure rather than return a partial summary.
func TestStreamReduceFailureKeepsBuffer(t *testing.T) {
	// withDefaults only fixes ReduceEps <= 0, so 3 survives to the
	// sampler, which rejects it.
	s := New(8, Options{BufferEdges: 4, ReduceEps: 3, Seed: 7})
	edges := []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 1},
	}
	streamAll(t, s, edges)
	before := s.SummarySize()
	// The 4th edge fills the buffer and triggers the doomed reduce.
	err := s.Ingest(graph.Edge{U: 3, V: 4, W: 1})
	if err == nil {
		t.Fatal("reduce with eps=3 reported no error")
	}
	if got := s.SummarySize(); got != before+1 {
		t.Fatalf("failed reduce dropped edges: %d in memory, want %d", got, before+1)
	}
	if s.Ingested() != 4 {
		t.Fatalf("ingested %d want 4", s.Ingested())
	}
	if _, _, err := s.Finish(); err == nil {
		t.Fatal("Finish after a doomed reduce reported no error")
	}
	if got := s.SummarySize(); got != before+1 {
		t.Fatalf("failed Finish dropped edges: %d in memory, want %d", got, before+1)
	}
}

// TestStreamSnapshotNonDestructive: Snapshot mid-stream must (a) equal
// what Finish would return for the same prefix, (b) leave the stream
// state untouched — the final summary is bit-identical to a run that
// never snapshotted — and (c) not alias live state: mutating the
// returned graph must not leak into later summaries.
func TestStreamSnapshotNonDestructive(t *testing.T) {
	g := gen.Complete(120)
	opt := Options{BufferEdges: 1500, ReduceEps: 0.25, Seed: 21}
	cut := 4000 // mid-stream prefix, with a partially-filled buffer

	// Reference A: Finish over exactly the prefix.
	ref := New(g.N, opt)
	streamAll(t, ref, g.Edges[:cut])
	refOut, refReduces, err := ref.Finish()
	if err != nil {
		t.Fatal(err)
	}
	// Reference B: full run with no Snapshot calls.
	plain := New(g.N, opt)
	streamAll(t, plain, g.Edges)
	plainOut, plainReduces, err := plain.Finish()
	if err != nil {
		t.Fatal(err)
	}

	s := New(g.N, opt)
	streamAll(t, s, g.Edges[:cut])
	snap, snapReduces, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snapReduces != refReduces {
		t.Fatalf("snapshot reduces %d, Finish over same prefix reports %d", snapReduces, refReduces)
	}
	sameEdges(t, "snapshot vs prefix Finish", snap, refOut)
	// A second Snapshot at the same prefix must be bit-identical too
	// (the seed schedule depends only on committed reduces).
	snap2, _, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	sameEdges(t, "repeated snapshot", snap2, snap)
	// Mutate the returned graph; the stream must not notice.
	for i := range snap.Edges {
		snap.Edges[i].W = -1
	}
	streamAll(t, s, g.Edges[cut:])
	out, reduces, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if reduces != plainReduces {
		t.Fatalf("snapshotting changed the reduce count: %d vs %d", reduces, plainReduces)
	}
	sameEdges(t, "post-snapshot Finish vs plain run", out, plainOut)
}

func TestStreamSnapshotEmpty(t *testing.T) {
	s := New(10, Options{})
	snap, reduces, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.M() != 0 || reduces != 0 {
		t.Fatalf("empty snapshot: m=%d reduces=%d", snap.M(), reduces)
	}
}

// TestStreamFinishIsTerminal: Ingest after a successful Finish and a
// second Finish must both surface ErrFinished — a silently-dropped
// post-Finish edge would corrupt any caller that trusts Ingested().
func TestStreamFinishIsTerminal(t *testing.T) {
	g := gen.Path(30)
	s := New(g.N, Options{Seed: 3})
	streamAll(t, s, g.Edges)
	if _, _, err := s.Finish(); err != nil {
		t.Fatal(err)
	}
	err := s.Ingest(graph.Edge{U: 0, V: 1, W: 1})
	if !errors.Is(err, ErrFinished) {
		t.Fatalf("Ingest after Finish: got %v, want ErrFinished", err)
	}
	if s.Ingested() != int64(g.M()) {
		t.Fatalf("rejected post-Finish edge still counted: %d", s.Ingested())
	}
	if _, _, err := s.Finish(); !errors.Is(err, ErrFinished) {
		t.Fatalf("double Finish: got %v, want ErrFinished", err)
	}
	if _, _, err := s.Snapshot(); !errors.Is(err, ErrFinished) {
		t.Fatalf("Snapshot after Finish: got %v, want ErrFinished", err)
	}
}

// A FAILED Finish is not terminal: the buffered edges are still held
// (pinned by TestStreamReduceFailureKeepsBuffer), so the stream must
// keep reporting the real failure rather than ErrFinished.
func TestStreamFailedFinishNotTerminal(t *testing.T) {
	s := New(8, Options{BufferEdges: 100, ReduceEps: 3, Seed: 7})
	streamAll(t, s, []graph.Edge{{U: 0, V: 1, W: 1}})
	if _, _, err := s.Finish(); err == nil || errors.Is(err, ErrFinished) {
		t.Fatalf("doomed Finish: got %v, want the reduce error", err)
	}
	if _, _, err := s.Finish(); err == nil || errors.Is(err, ErrFinished) {
		t.Fatalf("second doomed Finish: got %v, want the reduce error again", err)
	}
}

func TestStreamRejectsInfiniteWeight(t *testing.T) {
	s := New(4, Options{})
	if err := s.Ingest(graph.Edge{U: 0, V: 1, W: math.Inf(1)}); err == nil {
		t.Fatal("infinite weight accepted")
	}
}

func sameEdges(t *testing.T, what string, a, b *graph.Graph) {
	t.Helper()
	if a.N != b.N || a.M() != b.M() {
		t.Fatalf("%s: shape differs: n=%d/%d m=%d/%d", what, a.N, b.N, a.M(), b.M())
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("%s: edge %d differs: %v vs %v", what, i, a.Edges[i], b.Edges[i])
		}
	}
}

func TestStreamDeterministicForFixedOrder(t *testing.T) {
	g := gen.Complete(100)
	run := func() *graph.Graph {
		s := New(g.N, Options{BufferEdges: 1500, Seed: 13})
		streamAll(t, s, g.Edges)
		out, _, err := s.Finish()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	if a.M() != b.M() {
		t.Fatal("nondeterministic summary size")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}
