package experiments

import (
	"math"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/spectral"
)

// measureEps returns the measured approximation ε of h against g, using
// the dense exact verifier at small n and the iterative one otherwise.
// It returns +Inf when h is disconnected (no finite ε exists).
func measureEps(g, h *graph.Graph, seed uint64) float64 {
	var (
		b   spectral.Bounds
		err error
	)
	if g.N <= 220 {
		b, err = spectral.DenseApproxFactor(g, h)
	} else {
		b, err = spectral.ApproxFactor(g, h, spectral.Options{Seed: seed})
	}
	if err != nil {
		return math.Inf(1)
	}
	return b.Epsilon()
}

// E4ParallelSample validates Theorem 4: one PARALLELSAMPLE round gives
// a (1±ε)-approximation with ≤ O(n log³n/ε²) + m/2 edges.
func E4ParallelSample(s Scale) *Table {
	t := &Table{
		ID:     "E4",
		Title:  "PARALLELSAMPLE quality and size",
		Claim:  "Thm 4: (1±eps) approx, <= O(n log^3 n/eps^2) + m/2 edges",
		Header: []string{"graph", "config", "eps", "t", "bundle", "m_in", "m_out", "m_out-bundle<=m/2", "eps_meas"},
	}
	type tc struct {
		name string
		g    *graph.Graph
	}
	cases := []tc{
		{"complete200", gen.Complete(200)},
		{"gnp400", gen.Gnp(400, 0.15, 17)},
	}
	epss := []float64{0.3, 0.5, 0.75}
	if s == Quick {
		cases = cases[:1]
		epss = []float64{0.5}
	}
	for _, c := range cases {
		for _, eps := range epss {
			for _, mode := range []string{"practical", "theory"} {
				var cfg core.Config
				if mode == "theory" {
					cfg = core.TheoryConfig(23)
				} else {
					cfg = core.DefaultConfig(23)
				}
				out, st, err := core.ParallelSample(c.g, eps, cfg)
				if err != nil {
					t.Notes = append(t.Notes, "SAMPLE FAILURE: "+err.Error())
					continue
				}
				sampledOK := "yes"
				if st.SampledEdges > c.g.M()/2+3*int(math.Sqrt(float64(c.g.M()))) {
					sampledOK = "NO"
				}
				em := measureEps(c.g, out, 29)
				t.AddRow(c.name, mode, fnum(eps), inum(st.BundleT), inum(st.BundleEdges),
					inum(c.g.M()), inum(out.M()), sampledOK, fnum(em))
			}
		}
	}
	t.Notes = append(t.Notes,
		"theory rows exhaust the bundle at this scale (identity round, eps_meas=0): the correct degenerate case",
		"practical rows reduce for real and eps_meas tracks the target (within ~15%; the calibrated constants trade the w.h.p. guarantee for usable output)")
	return t
}

// E5ParallelSparsify validates Theorem 5: the iterated algorithm meets
// the O(n log³n log³ρ/ε² + m/ρ) size bound at quality ε.
func E5ParallelSparsify(s Scale) *Table {
	t := &Table{
		ID:     "E5",
		Title:  "PARALLELSPARSIFY size vs rho",
		Claim:  "Thm 5: (1±eps), O(n log^3 n log^3 rho/eps^2 + m/rho) edges, O(m log^2 n log^3 rho/eps^2) work",
		Header: []string{"rho", "rounds", "m_in", "m_out", "m/rho", "eps", "eps_meas", "work", "work/m"},
	}
	g := gen.Complete(500)
	if s == Quick {
		g = gen.Complete(200)
	}
	eps := 0.75
	rhos := []float64{2, 4, 8, 16}
	if s == Quick {
		rhos = []float64{2, 8}
	}
	for _, rho := range rhos {
		tr := newTracker()
		cfg := core.DefaultConfig(31)
		cfg.Tracker = tr
		out, st, err := core.ParallelSparsify(g, eps, rho, cfg)
		if err != nil {
			t.Notes = append(t.Notes, "SPARSIFY FAILURE: "+err.Error())
			continue
		}
		em := measureEps(g, out, 37)
		t.AddRow(fnum(rho), inum(len(st.Rounds)), inum(g.M()), inum(out.M()),
			fnum(float64(g.M())/rho), fnum(eps), fnum(em),
			inum(tr.Work()), fnum(float64(tr.Work())/float64(g.M())))
	}
	t.Notes = append(t.Notes,
		"m_out tracks m/rho plus the n*polylog floor; eps_meas stays below eps",
		"work/m grows with log^3 rho as Theorem 5 predicts (per-round t grows)",
		"at high rho the n*log^3 n*log^3 rho/eps^2 floor overtakes m at laptop scale and reduction saturates — exactly the bound's shape")
	return t
}

// E6Baselines compares the paper's algorithm against
// Spielman–Srivastava sampling and uniform sampling, including the
// dumbbell where uniform sampling must fail.
func E6Baselines(s Scale) *Table {
	t := &Table{
		ID:     "E6",
		Title:  "sparsifier quality vs baselines",
		Claim:  "spanner-bundle sampling preserves cuts uniform sampling destroys (paper's motivation)",
		Header: []string{"graph", "method", "m_in", "m_out", "eps_meas"},
	}
	type tc struct {
		name string
		g    *graph.Graph
	}
	cases := []tc{
		{"barbell40", gen.Barbell(40, 1)},
		{"complete200", gen.Complete(200)},
	}
	if s == Full {
		cases = append(cases, tc{"gnp300", gen.Gnp(300, 0.15, 43)})
	}
	eps := 0.5
	for _, c := range cases {
		// One sample round with a thin fixed bundle so "ours" genuinely
		// discards edges even on the small barbell (the ε-driven t would
		// swallow it whole, which is correct but uninformative here).
		cfg := core.DefaultConfig(47)
		cfg.BundleT = 2
		ours, _, err := core.ParallelSample(c.g, eps, cfg)
		if err != nil {
			t.Notes = append(t.Notes, "SAMPLE FAILURE: "+err.Error())
			continue
		}
		ss, err := baseline.SpielmanSrivastava(c.g, baseline.SSOptions{Eps: eps, Exact: c.g.M() <= 4000, Seed: 53})
		if err != nil {
			t.Notes = append(t.Notes, "SS FAILURE: "+err.Error())
			continue
		}
		p := float64(ours.M()) / float64(c.g.M())
		// Uniform sampling at the matched rate: report the disconnect
		// rate over many seeds (the failure is probabilistic) plus the
		// eps of one surviving draw.
		const trials = 50
		disconnected := 0
		var uni *graph.Graph
		for s := 0; s < trials; s++ {
			h := baseline.Uniform(c.g, p, uint64(59+s))
			if !graph.IsConnected(h) {
				disconnected++
			} else if uni == nil {
				uni = h
			}
		}
		for _, row := range []struct {
			method string
			h      *graph.Graph
		}{
			{"bundle-sample (ours)", ours},
			{"spielman-srivastava", ss},
			{"uniform (matched p)", uni},
		} {
			emStr := "inf (disconnected)"
			mOut := 0
			if row.h != nil {
				mOut = row.h.M()
				em := measureEps(c.g, row.h, 61)
				emStr = fnum(em)
				if math.IsInf(em, 1) {
					emStr = "inf (disconnected)"
				}
			}
			if row.method == "uniform (matched p)" {
				emStr += " [disc " + inum(disconnected) + "/" + inum(trials) + "]"
			}
			t.AddRow(c.name, row.method, inum(c.g.M()), inum(mOut), emStr)
		}
	}
	t.Notes = append(t.Notes,
		"uniform sampling disconnects the barbell in ~(1-p) of trials; ours and SS never do (the bridge is spanner/high-leverage)",
		"on dense graphs all three achieve finite eps; SS is the quality reference",
		"on leverage-uniform graphs uniform sampling can even edge out bundle sampling pointwise — the bundle buys the worst-case certificate (barbell row), not average-case quality")
	return t
}
