package experiments

import (
	"bytes"
	"math"
	"os"
	"strconv"
	"strings"
	"testing"
)

// TestRegistryComplete checks every catalogued experiment is runnable
// and renders a non-empty table.
func TestRegistryComplete(t *testing.T) {
	if len(Order) != len(Registry) {
		t.Fatalf("Order (%d) and Registry (%d) out of sync", len(Order), len(Registry))
	}
	for _, id := range Order {
		if _, ok := Registry[id]; !ok {
			t.Fatalf("experiment %s in Order but not Registry", id)
		}
	}
}

func renderOf(t *testing.T, tab *Table) string {
	t.Helper()
	var buf bytes.Buffer
	tab.Render(&buf)
	s := buf.String()
	if !strings.Contains(s, tab.ID) || len(tab.Rows) == 0 {
		t.Fatalf("table %s rendered empty or malformed:\n%s", tab.ID, s)
	}
	return s
}

// cell parses a table cell as float, tolerating inf markers.
func cell(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.Fields(s)[0]
	if strings.HasPrefix(s, "inf") {
		return math.Inf(1)
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

func TestE1LeverageRatiosBelowOne(t *testing.T) {
	tab := E1BundleLeverage(Quick)
	renderOf(t, tab)
	for _, row := range tab.Rows {
		if row[6] == "-" {
			continue
		}
		if r := cell(t, row[6]); r > 1 {
			t.Fatalf("Lemma 1 violated in row %v: ratio %v", row, r)
		}
	}
}

func TestE2StretchWithinBound(t *testing.T) {
	tab := E2Spanner(Quick)
	renderOf(t, tab)
	for _, row := range tab.Rows {
		st := cell(t, row[5])
		bound := cell(t, row[6])
		if !math.IsNaN(st) && st > bound {
			t.Fatalf("stretch %v exceeds bound %v", st, bound)
		}
		// The greedy reference must not exceed the BS size (it is the
		// size-optimal sequential algorithm).
		bs := cell(t, row[2])
		greedy := cell(t, row[4])
		if greedy > bs {
			t.Fatalf("greedy size %v above Baswana–Sen %v", greedy, bs)
		}
	}
}

func TestE3MessageWidthConstant(t *testing.T) {
	tab := E3DistributedSpanner(Quick)
	renderOf(t, tab)
	for _, row := range tab.Rows {
		if w := cell(t, row[6]); w != 3 {
			t.Fatalf("message width %v != 3 words", w)
		}
	}
}

func TestE4PracticalRowsMeetEps(t *testing.T) {
	tab := E4ParallelSample(Quick)
	renderOf(t, tab)
	for _, row := range tab.Rows {
		eps := cell(t, row[2])
		meas := cell(t, row[8])
		if row[1] == "practical" && meas > eps {
			t.Fatalf("practical row missed target: %v", row)
		}
		if row[1] == "theory" && meas > 1e-6 {
			t.Fatalf("theory row should be (near-)identity at this scale: %v", row)
		}
	}
}

func TestE5EpsWithinTarget(t *testing.T) {
	tab := E5ParallelSparsify(Quick)
	renderOf(t, tab)
	for _, row := range tab.Rows {
		eps := cell(t, row[5])
		meas := cell(t, row[6])
		if meas > eps {
			t.Fatalf("sparsify eps %v > target %v (row %v)", meas, eps, row)
		}
	}
}

func TestE6OursNeverDisconnects(t *testing.T) {
	tab := E6Baselines(Quick)
	renderOf(t, tab)
	sawUniformFailure := false
	for _, row := range tab.Rows {
		if strings.Contains(row[1], "ours") && strings.Contains(row[4], "inf") {
			t.Fatalf("our sparsifier disconnected %s", row[0])
		}
		if strings.Contains(row[1], "uniform") && row[0] == "barbell40" {
			// The disconnect count is embedded as [disc X/50].
			if !strings.Contains(row[4], "disc 0/") {
				sawUniformFailure = true
			}
		}
	}
	if !sawUniformFailure {
		t.Fatal("uniform sampling never disconnected the barbell — comparison lost its teeth")
	}
}

func TestE7ChainBeatsJacobi(t *testing.T) {
	tab := E7SolverChain(Quick)
	renderOf(t, tab)
	for _, row := range tab.Rows {
		if row[7] == "-" {
			continue
		}
		chain := cell(t, row[6])
		jacobi := cell(t, row[7])
		if chain >= jacobi {
			t.Fatalf("chain iters %v >= jacobi %v on %s", chain, jacobi, row[0])
		}
	}
}

func TestE8RunsAndReportsSpeedup(t *testing.T) {
	tab := E8Scaling(Quick)
	renderOf(t, tab)
	if s := cell(t, tab.Rows[0][2]); s != 1 {
		t.Fatalf("P=1 speedup %v != 1", s)
	}
}

func TestE9SizesGrowWithT(t *testing.T) {
	tab := E9BundleAblation(Quick)
	renderOf(t, tab)
	prevBundle := -1.0
	for _, row := range tab.Rows {
		b := cell(t, row[1])
		if b < prevBundle {
			t.Fatalf("bundle size decreased with t: %v", tab.Rows)
		}
		prevBundle = b
	}
}

func TestE10ExponentNearTwoNotFour(t *testing.T) {
	tab := E10EpsDependence(Quick)
	renderOf(t, tab)
	// The fitted exponent lives in the first note.
	var slope float64
	found := false
	for _, n := range tab.Notes {
		if strings.Contains(n, "fitted exponent") {
			fields := strings.Fields(n)
			for _, f := range fields {
				if v, err := strconv.ParseFloat(strings.TrimSuffix(f, ""), 64); err == nil {
					slope = v
					found = true
					break
				}
			}
		}
	}
	if !found {
		t.Fatal("fitted exponent note missing")
	}
	if math.Abs(slope-2) > math.Abs(slope-4) {
		t.Fatalf("fitted exponent %v closer to KP's 4 than to the paper's 2", slope)
	}
}

func TestE12ShardedSweepStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("2^14-vertex sharded sweep skipped in -short")
	}
	tab := E12ShardedSparsify(Quick)
	renderOf(t, tab)
	if s := cell(t, tab.Rows[0][2]); s != 1 {
		t.Fatalf("first-row speedup %v != 1", s)
	}
	baseM := cell(t, tab.Rows[0][3])
	baseRounds := cell(t, tab.Rows[0][4])
	for i, row := range tab.Rows {
		// Outputs and round counts are transport-independent: any drift
		// across P is a determinism bug, not noise.
		if m := cell(t, row[3]); m != baseM {
			t.Fatalf("row %d: m_out %v != %v", i, m, baseM)
		}
		if r := cell(t, row[4]); r != baseRounds {
			t.Fatalf("row %d: rounds %v != %v", i, r, baseRounds)
		}
		p := cell(t, row[0])
		cross := cell(t, row[6])
		if p == 1 && cross != 0 {
			t.Fatalf("P=1 reports cross-shard words: %v", row)
		}
		if p > 1 && cross == 0 {
			t.Fatalf("P=%v reports no cross-shard words: %v", p, row)
		}
	}
	for _, n := range tab.Notes {
		if strings.Contains(n, "DETERMINISM VIOLATION") {
			t.Fatal(n)
		}
	}
}

func TestE13TransportComparisonStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("2^12-vertex transport comparison skipped in -short")
	}
	tab := E13NetTransport(Quick)
	renderOf(t, tab)
	if len(tab.Rows) < 5 {
		t.Fatalf("expected mem + sharded + net rows, got %d", len(tab.Rows))
	}
	baseM := cell(t, tab.Rows[0][3])
	baseRounds := cell(t, tab.Rows[0][4])
	sawNet := false
	for i, row := range tab.Rows {
		// The transports move messages, not decisions: output size and
		// round count must be identical on every row.
		if m := cell(t, row[3]); m != baseM {
			t.Fatalf("row %d: m_out %v != %v", i, m, baseM)
		}
		if r := cell(t, row[4]); r != baseRounds {
			t.Fatalf("row %d: rounds %v != %v", i, r, baseRounds)
		}
		if row[0] == "net" {
			sawNet = true
			if p := cell(t, row[1]); p > 1 {
				if wb := cell(t, row[6]); wb <= 0 {
					t.Fatalf("net P=%v wrote no bytes: %v", p, row)
				}
			}
		}
	}
	if !sawNet {
		t.Fatal("no net transport rows")
	}
	for _, n := range tab.Notes {
		if strings.Contains(n, "VIOLATION") || strings.Contains(n, "FAILURE") {
			t.Fatal(n)
		}
	}
}

// TestE14ServeLoadStructure boots the real serve stack (loopback TCP,
// concurrent writer + readers) at Quick scale and checks the harness
// reports what the acceptance needs: a positive ingest rate per graph,
// query latency rows with real counts, and a clean bitid audit — any
// determinism violation or client failure lands in the notes and fails
// here.
func TestE14ServeLoadStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("serve load harness skipped in -short")
	}
	tab := E14ServeLoad(Quick)
	renderOf(t, tab)
	ingestRows, queryRows := 0, 0
	for _, row := range tab.Rows {
		switch row[7] {
		case "ingest":
			ingestRows++
			if rate := cell(t, row[6]); rate <= 0 {
				t.Fatalf("non-positive ingest rate: %v", row)
			}
			if epochs := cell(t, row[4]); epochs < 1 {
				t.Fatalf("no epochs published: %v", row)
			}
			if row[11] != "ok" {
				t.Fatalf("bitid audit failed: %v", row)
			}
		case "sparsify", "spanner", "stat":
			queryRows++
			if c := cell(t, row[8]); c < 1 {
				t.Fatalf("query row with no queries: %v", row)
			}
			if p50, p99 := cell(t, row[9]), cell(t, row[10]); p50 < 0 || p99 < p50 {
				t.Fatalf("latency quantiles inconsistent: %v", row)
			}
		}
	}
	if ingestRows < 2 {
		t.Fatalf("expected an ingest row per graph, got %d", ingestRows)
	}
	if queryRows == 0 {
		t.Fatal("no query latency rows — readers never ran")
	}
	for _, n := range tab.Notes {
		if strings.Contains(n, "VIOLATION") || strings.Contains(n, "FAILURE") {
			t.Fatal(n)
		}
	}
}

// TestE15ScaleStructure validates the raw-speed experiment end to end.
// Unlike every other experiment, E15 Quick is a ≥10^7-edge run by
// design (that is the quantity it gates), so this test only runs when
// REPRO_E15=1 — it would multiply the package's test time severalfold
// for everyone else. cmd/bench and the CI bench job exercise E15 on
// every PR regardless.
func TestE15ScaleStructure(t *testing.T) {
	if os.Getenv("REPRO_E15") != "1" {
		t.Skip("10^7-edge scale run skipped; set REPRO_E15=1 to enable")
	}
	tab := E15ScaleSpanner(Quick)
	renderOf(t, tab)
	if len(tab.Rows) < 3 {
		t.Fatalf("expected at least the {1,2,4} sweep, got %d rows", len(tab.Rows))
	}
	if s := cell(t, tab.Rows[0][5]); s != 1 {
		t.Fatalf("P=1 speedup %v != 1", s)
	}
	baseM := cell(t, tab.Rows[0][2])
	if baseM < 1e7 {
		t.Fatalf("E15 must run >=10^7 edges even at Quick scale, got m_out base %v", baseM)
	}
	baseRounds := cell(t, tab.Rows[0][3])
	for i, row := range tab.Rows {
		if m := cell(t, row[2]); m != baseM {
			t.Fatalf("row %d: m_out %v != %v", i, m, baseM)
		}
		if r := cell(t, row[3]); r != baseRounds {
			t.Fatalf("row %d: rounds %v != %v", i, r, baseRounds)
		}
	}
	for _, n := range tab.Notes {
		if strings.Contains(n, "VIOLATION") || strings.Contains(n, "FAILURE") {
			t.Fatal(n)
		}
	}
}

func TestFitSlope(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7}
	if s := fitSlope(xs, ys); math.Abs(s-2) > 1e-12 {
		t.Fatalf("slope %v want 2", s)
	}
	if !math.IsNaN(fitSlope([]float64{1}, []float64{1})) {
		t.Fatal("degenerate fit should be NaN")
	}
}

func TestTableRenderAlignment(t *testing.T) {
	tab := &Table{ID: "T", Title: "x", Claim: "y", Header: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.Notes = append(tab.Notes, "n")
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"T — x", "claim: y", "a", "bb", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
