package experiments

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/dist"
	"repro/internal/gen"
)

// E15ScaleSpanner is the raw-speed gate of the round loop: the
// distributed spanner on a G(n,p) graph with ≥10^7 edges (even at
// Quick scale — this is the experiment that keeps the wire batching,
// buffer pooling, and parallel gather merge honest at size, so it must
// not shrink in CI). The sweep runs the sharded in-process transport
// with P from 1 up to NumCPU (capped; at least {1,2,4} so the sweep is
// populated on small runners — shards are goroutines, so P > NumCPU is
// legal, just not faster). m_out must be constant across P: the
// transports move messages, not decisions. Generation itself rides the
// amortized-O(n+m) Gnp decoder — at this size the old O(n·m) row walk
// took half an hour, which is why the genMillis note exists: it proves
// the input pipeline is not the bottleneck being measured.
func E15ScaleSpanner(s Scale) *Table {
	t := &Table{
		ID:     "E15",
		Title:  "round-loop raw speed: spanner at >=10^7 edges",
		Claim:  "Thm 5 at scale: the O(k) round schedule is wall-clock-bounded by the exchange, not the allocator — the perf gate CI diffs against BENCH_baseline.json",
		Header: []string{"P", "millis", "m_out", "rounds", "words", "speedup"},
	}
	n, deg, k := 1<<20, 20.0, 2
	maxP := 4
	if s == Full {
		n, maxP = 1<<21, 8
	}
	ps := []int{1, 2, 4}
	for p := 8; p <= runtime.NumCPU() && p <= maxP; p *= 2 {
		ps = append(ps, p)
	}
	genStart := time.Now()
	g := gen.Gnp(n, deg/float64(n), 163)
	genMs := millisSince(genStart)
	job := dist.SpannerJob(k, 29)
	baseM, baseMs := -1, 0.0
	for _, p := range ps {
		start := time.Now()
		res, err := dist.Run(dist.NewEngine(dist.Sharded(p), g), job)
		if err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("FAILURE at P=%d: %v", p, err))
			continue
		}
		ms := millisSince(start)
		mOut := res.Output.G.M()
		if baseM < 0 {
			baseM, baseMs = mOut, ms
		} else if mOut != baseM {
			t.Notes = append(t.Notes,
				fmt.Sprintf("DETERMINISM VIOLATION: P=%d produced m=%d, expected %d", p, mOut, baseM))
		}
		t.AddRow(inum(p), fnum(ms), inum(mOut), inum(res.Stats.Rounds),
			inum(res.Stats.Words), fnum(baseMs/ms))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("n=%d m=%d k=%d (genMillis=%s): identical m_out at every P", n, g.M(), k, fnum(genMs)),
		fmt.Sprintf("P swept to min(NumCPU, %d) with a {1,2,4} floor; NumCPU=%d here", maxP, runtime.NumCPU()),
		"at this density the (2k-1)-spanner bound n^{1+1/k} exceeds m, so the spanner may retain the whole graph — the experiment measures the round loop, not compression")
	return t
}
