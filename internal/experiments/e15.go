package experiments

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/dist"
	"repro/internal/gen"
)

// E15ScaleSpanner is the raw-speed gate of the round loop: the
// distributed spanner on a G(n,p) graph with ≥10^7 edges (even at
// Quick scale — this is the experiment that keeps the wire batching,
// buffer pooling, and parallel gather merge honest at size, so it must
// not shrink in CI). The sweep runs the sharded in-process transport
// with P from 1 up to NumCPU (capped; at least {1,2,4} so the sweep is
// populated on small runners — shards are goroutines, so P > NumCPU is
// legal, just not faster). m_out must be constant across P: the
// transports move messages, not decisions. Generation itself rides the
// amortized-O(n+m) Gnp decoder — at this size the old O(n·m) row walk
// took half an hour, which is why the genMillis note exists: it proves
// the input pipeline is not the bottleneck being measured.
//
// The final two rows put the wired data planes on the clock at P=4 on
// a smaller graph (real loopback sockets are orders of magnitude
// slower per byte than the in-process exchange, so the socket rows get
// their own size): star (Loopback) against full mesh (Mesh), same job,
// same output — only wireBytes and the wall clock may differ. This is
// where the mesh's halved relay traffic and double-buffered flushes
// must show up as real milliseconds, not just counter deltas.
func E15ScaleSpanner(s Scale) *Table {
	t := &Table{
		ID:     "E15",
		Title:  "round-loop raw speed: spanner at >=10^7 edges, star vs mesh sockets",
		Claim:  "Thm 5 at scale: the O(k) round schedule is wall-clock-bounded by the exchange, not the allocator — the perf gate CI diffs against BENCH_baseline.json",
		Header: []string{"transport", "P", "millis", "m_out", "rounds", "words", "wireBytes", "speedup"},
	}
	n, deg, k := 1<<20, 20.0, 2
	netN := 1 << 17
	maxP := 4
	if s == Full {
		n, maxP = 1<<21, 8
		netN = 1 << 18
	}
	ps := []int{1, 2, 4}
	for p := 8; p <= runtime.NumCPU() && p <= maxP; p *= 2 {
		ps = append(ps, p)
	}
	genStart := time.Now()
	g := gen.Gnp(n, deg/float64(n), 163)
	genMs := millisSince(genStart)
	job := dist.SpannerJob(k, 29)
	baseM, baseMs := -1, 0.0
	for _, p := range ps {
		start := time.Now()
		res, err := dist.Run(dist.NewEngine(dist.Sharded(p), g), job)
		if err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("FAILURE at P=%d: %v", p, err))
			continue
		}
		ms := millisSince(start)
		mOut := res.Output.G.M()
		if baseM < 0 {
			baseM, baseMs = mOut, ms
		} else if mOut != baseM {
			t.Notes = append(t.Notes,
				fmt.Sprintf("DETERMINISM VIOLATION: P=%d produced m=%d, expected %d", p, mOut, baseM))
		}
		t.AddRow("sharded", inum(p), fnum(ms), inum(mOut), inum(res.Stats.Rounds),
			inum(res.Stats.Words), "-", fnum(baseMs/ms))
	}

	// The socket rows: same job on the wired planes, smaller graph.
	ng := gen.Gnp(netN, deg/float64(netN), 163)
	netBaseM, starMs := -1, 0.0
	for _, tc := range []struct {
		name string
		spec dist.TransportSpec
	}{
		{"net", dist.Loopback(4)},
		{"mesh", dist.Mesh(4)},
	} {
		start := time.Now()
		res, err := dist.Run(dist.NewEngine(tc.spec, ng), job)
		if err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("%s FAILURE at P=4: %v", tc.name, err))
			continue
		}
		ms := millisSince(start)
		mOut := res.Output.G.M()
		if netBaseM < 0 {
			netBaseM, starMs = mOut, ms
		} else if mOut != netBaseM {
			t.Notes = append(t.Notes,
				fmt.Sprintf("DETERMINISM VIOLATION: %s P=4 produced m=%d, expected %d", tc.name, mOut, netBaseM))
		}
		t.AddRow(tc.name, inum(4), fnum(ms), inum(mOut), inum(res.Stats.Rounds),
			inum(res.Stats.Words), fmt.Sprintf("%d", res.WireBytes), fnum(starMs/ms))
	}

	t.Notes = append(t.Notes,
		fmt.Sprintf("n=%d m=%d k=%d (genMillis=%s): identical m_out at every P", n, g.M(), k, fnum(genMs)),
		fmt.Sprintf("P swept to min(NumCPU, %d) with a {1,2,4} floor; NumCPU=%d here", maxP, runtime.NumCPU()),
		fmt.Sprintf("socket rows (net=star relay, mesh=direct links) run n=%d m=%d at P=4; speedup there is relative to the star row", netN, ng.M()),
		"at this density the (2k-1)-spanner bound n^{1+1/k} exceeds m, so the spanner may retain the whole graph — the experiment measures the round loop, not compression")
	return t
}
