package experiments

import (
	"fmt"
	"math"

	"repro/internal/bundle"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/pram"
	"repro/internal/resistance"
	"repro/internal/spanner"
	"repro/internal/stretch"
)

// E1BundleLeverage validates Lemma 1: every edge outside a t-bundle
// spanner has leverage w_e·R_e[G] ≤ (2k−1)/t.
func E1BundleLeverage(s Scale) *Table {
	t := &Table{
		ID:     "E1",
		Title:  "t-bundle leverage bound",
		Claim:  "Lemma 1 / Cor 1: max non-bundle w_e*R_e[G] <= (2k-1)/t",
		Header: []string{"graph", "n", "m", "t", "bound", "maxLev", "ratio", "outside"},
	}
	type tc struct {
		name string
		g    *graph.Graph
	}
	cases := []tc{
		{"complete", gen.Complete(120)},
		{"gnp", gen.Gnp(250, 0.12, 41)},
		{"barbell", gen.Barbell(40, 2)},
	}
	ts := []int{1, 2, 4, 8}
	if s == Quick {
		cases = cases[:2]
		ts = []int{1, 4}
	}
	for _, c := range cases {
		if !graph.IsConnected(c.g) {
			t.Notes = append(t.Notes, c.name+": disconnected, skipped")
			continue
		}
		var (
			res []float64
			err error
		)
		if c.g.M() <= 2000 {
			res, err = resistance.AllEdgesExact(c.g)
		} else {
			res, err = resistance.AllEdgesApprox(c.g, resistance.ApproxOptions{Eps: 0.2, Seed: 7})
		}
		if err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("%s: resistance failure: %v", c.name, err))
			continue
		}
		adj := graph.NewAdjacency(c.g)
		k := spanner.DefaultK(c.g.N)
		for _, layers := range ts {
			b := bundle.Compute(c.g, adj, nil, bundle.Options{T: layers, Seed: 11})
			outside := c.g.M() - graph.CountTrue(b.InBundle)
			if outside == 0 {
				t.AddRow(c.name, inum(c.g.N), inum(c.g.M()), inum(layers), "-", "-", "-", "0 (exhausted)")
				continue
			}
			maxLev := 0.0
			for i, e := range c.g.Edges {
				if b.InBundle[i] {
					continue
				}
				if lv := e.W * res[i]; lv > maxLev {
					maxLev = lv
				}
			}
			bound := float64(2*k-1) / float64(layers)
			t.AddRow(c.name, inum(c.g.N), inum(c.g.M()), inum(layers),
				fnum(bound), fnum(maxLev), fnum(maxLev/bound), inum(outside))
		}
	}
	t.Notes = append(t.Notes, "ratio <= 1 everywhere confirms the lemma; typically far below 1")
	return t
}

// E2Spanner validates Theorem 1 / Corollary 2: spanner size O(n log n),
// stretch <= 2k-1, modeled CRCW work O(m log n).
func E2Spanner(s Scale) *Table {
	t := &Table{
		ID:     "E2",
		Title:  "Baswana-Sen spanner size/stretch/work",
		Claim:  "Thm 1: O(n log n) edges, O(m log n) work, stretch <= 2 log n",
		Header: []string{"n", "m", "mH", "mH/(n*lg n)", "greedy mH", "maxStretch", "bound", "work", "work/(m*lg n)"},
	}
	ns := []int{200, 400, 800, 1600}
	if s == Quick {
		ns = []int{200, 400}
	}
	for _, n := range ns {
		p := 20.0 / float64(n) // average degree ~20
		g := gen.Gnp(n, p, uint64(n))
		adj := graph.NewAdjacency(g)
		tr := pram.New()
		res := spanner.Compute(g, adj, nil, spanner.Options{Seed: 3, Tracker: tr})
		mh := graph.CountTrue(res.InSpanner)
		k := spanner.DefaultK(n)
		greedy := graph.CountTrue(spanner.Greedy(g, k))
		maxSt := math.NaN()
		if n <= 800 || s == Full {
			st, _ := stretch.MaxStretch(g, res.InSpanner)
			maxSt = st
		}
		logn := math.Log2(float64(n))
		t.AddRow(inum(n), inum(g.M()), inum(mh),
			fnum(float64(mh)/(float64(n)*logn)),
			inum(greedy),
			fnum(maxSt), inum(2*k-1),
			inum(tr.Work()), fnum(float64(tr.Work())/(float64(g.M())*logn)))
	}
	t.Notes = append(t.Notes,
		"mH/(n*lg n) and work/(m*lg n) stable across n confirms the asymptotics",
		"maxStretch <= bound confirms the (2k-1)-spanner property in the resistive metric",
		"greedy mH is the sequential size-optimal reference (Althofer et al.); BS pays a small factor for parallelism")
	return t
}

// E3DistributedSpanner validates Theorem 2 / Corollary 3: O(log^2 n)
// rounds, O(m log n) communication, O(log n)-bit messages.
func E3DistributedSpanner(s Scale) *Table {
	t := &Table{
		ID:     "E3",
		Title:  "distributed spanner rounds/communication",
		Claim:  "Thm 2: O(log^2 n) rounds, O(m log n) messages, O(log n)-word messages",
		Header: []string{"n", "m", "rounds", "rounds/lg^2 n", "messages", "msgs/(m*lg n)", "msgWords"},
	}
	ns := []int{200, 400, 800, 1600}
	if s == Quick {
		ns = []int{200, 400}
	}
	for _, n := range ns {
		p := 16.0 / float64(n)
		g := gen.Gnp(n, p, uint64(2*n))
		res, err := dist.Run(dist.NewEngine(dist.Mem(), g), dist.SpannerJob(0, 5))
		if err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("RUN FAILURE at n=%d: %v", n, err))
			continue
		}
		logn := math.Log2(float64(n))
		t.AddRow(inum(n), inum(g.M()),
			inum(res.Stats.Rounds), fnum(float64(res.Stats.Rounds)/(logn*logn)),
			fmt.Sprintf("%d", res.Stats.Messages),
			fnum(float64(res.Stats.Messages)/(float64(g.M())*logn)),
			inum(res.Stats.MaxMessageWords))
	}
	t.Notes = append(t.Notes, "normalized columns flat across n confirm the round/communication bounds")
	return t
}
