package experiments

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/dist"
	"repro/internal/gen"
)

// E12ShardedSparsify measures the sharded transport of the distributed
// engine: the same Algorithm 2 computation partitioned across P worker
// shards, reporting wall-clock speedup over P=1 and the cross-shard
// word volume a multi-machine deployment would put on the wire. The
// output is bit-identical at every P (the m_out column must be
// constant), so the sweep isolates the cost of distribution from the
// algorithm itself.
func E12ShardedSparsify(s Scale) *Table {
	t := &Table{
		ID:     "E12",
		Title:  "sharded-transport scaling of distributed sparsify",
		Claim:  "Thm 5 substrate: rounds are local exchanges, so shards scale wall-clock while wire volume stays a bounded fraction",
		Header: []string{"P", "millis", "speedup", "m_out", "rounds", "crossMsgs", "crossWords", "crossFrac"},
	}
	// ≥ 2^14 vertices so the per-round compute phase dominates scheduling
	// overhead; modest average degree keeps the quick sweep in seconds.
	n, deg := 1<<14, 8.0
	depth, rho := 1, 2.0
	ps := []int{1, 2, 4}
	if s == Full {
		n, deg = 1<<15, 12.0
		depth, rho = 2, 4.0
		ps = []int{1, 2, 4, 8}
	}
	g := gen.Gnp(n, deg/float64(n), 163)
	job := dist.SparsifyJob(0.5, rho, dist.SparsifyDefaults(depth, 29))
	base := 0.0
	baseM := -1
	for _, p := range ps {
		start := time.Now()
		res, err := dist.Run(dist.NewEngine(dist.Sharded(p), g), job)
		ms := float64(time.Since(start).Microseconds()) / 1000
		if err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("RUN FAILURE at P=%d: %v", p, err))
			continue
		}
		if p == ps[0] {
			base = ms
			baseM = res.Output.M()
		} else if res.Output.M() != baseM {
			t.Notes = append(t.Notes,
				fmt.Sprintf("DETERMINISM VIOLATION: P=%d produced m=%d, P=1 produced m=%d", p, res.Output.M(), baseM))
		}
		st := res.Stats
		crossFrac := 0.0
		if st.Words > 0 {
			crossFrac = float64(st.CrossShardWords) / float64(st.Words)
		}
		t.AddRow(inum(p), fnum(ms), fnum(base/ms), inum(res.Output.M()), inum(st.Rounds),
			fmt.Sprintf("%d", st.CrossShardMessages), fmt.Sprintf("%d", st.CrossShardWords),
			fnum(crossFrac))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("n=%d m=%d: identical m_out and rounds across P — the transport moves messages, not decisions", n, g.M()),
		"crossFrac ~ (P-1)/P of the words under a random vertex partition: the wire bill of going multi-machine")
	if runtime.NumCPU() == 1 {
		t.Notes = append(t.Notes, "host has 1 CPU: speedup necessarily ~1.0; run on a multicore host to see scaling")
	}
	return t
}
