// Package experiments implements the paper-reproduction experiment
// suite E1–E15 (the registry below is the canonical index; ROADMAP.md
// tracks what each sweep pins). The paper is theory-only (no empirical
// tables), so each experiment validates one quantitative claim — a
// theorem, corollary, lemma or remark — and prints a table recorded
// against the paper's bound.
//
// Every experiment is deterministic and sized to run on a laptop; the
// Quick scale further trims the sweeps for use in tests and benchmarks.
// E15 is the exception to "sized for tests": it runs a ≥10^7-edge
// graph even at Quick scale (its job is to gate raw speed at size), so
// the experiment structure tests skip it unless REPRO_E15=1 — cmd/bench
// and the CI bench job are its normal drivers.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Scale selects experiment sizing.
type Scale int

// Experiment scales.
const (
	Quick Scale = iota // trimmed sweeps for tests/benchmarks
	Full               // the full sizes cmd/bench records
)

// Table is one experiment's printable result.
type Table struct {
	ID     string
	Title  string
	Claim  string // the paper reference being validated
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render pretty-prints the table with aligned columns.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "\n%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(w, "claim: %s\n", t.Claim)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	printRow(t.Header)
	rule := make([]string, len(t.Header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	printRow(rule)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// fnum formats a float compactly.
func fnum(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1e6 || v < 1e-3:
		return fmt.Sprintf("%.3g", v)
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// inum formats an integer with no decoration.
func inum[T int | int64](v T) string { return fmt.Sprintf("%d", v) }

// Registry maps experiment ids to their runners.
var Registry = map[string]func(Scale) *Table{
	"E1":  E1BundleLeverage,
	"E2":  E2Spanner,
	"E3":  E3DistributedSpanner,
	"E4":  E4ParallelSample,
	"E5":  E5ParallelSparsify,
	"E6":  E6Baselines,
	"E7":  E7SolverChain,
	"E8":  E8Scaling,
	"E9":  E9BundleAblation,
	"E10": E10EpsDependence,
	"E11": E11TreeBundle,
	"E12": E12ShardedSparsify,
	"E13": E13NetTransport,
	"E14": E14ServeLoad,
	"E15": E15ScaleSpanner,
}

// Order is the canonical experiment ordering. (E15 landed before E14:
// the raw-speed pass gated first, then E14 took the reserved slot with
// the sparsifyd load harness.)
var Order = []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15"}

// RunAll executes every experiment at the given scale.
func RunAll(s Scale) []*Table {
	out := make([]*Table, 0, len(Order))
	for _, id := range Order {
		out = append(out, Registry[id](s))
	}
	return out
}
