package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/serve"
	"repro/internal/stream"
)

// E14ServeLoad is the sparsifyd load harness: a live serve.Server with
// one writer streaming edge batches over loopback TCP while several
// query clients hammer the current epoch concurrently. Per ingest
// graph it reports the sustained wire ingest rate (edges/s, measured
// WITH the concurrent query load) and the epochs published; per query
// kind it reports the count and the p50/p99 latency. The bitid column
// is the determinism contract under fire: the served sparsifier of
// every epoch a reader last observed — plus the final flushed epoch —
// is recomputed offline (replay the exact prefix through
// internal/stream, snapshot, resample under serve.QuerySeed) and must
// match bit for bit; any divergence is a FAILURE note, not a tolerance.
func E14ServeLoad(s Scale) *Table {
	t := &Table{
		ID:     "E14",
		Title:  "sparsifyd under load: concurrent ingest + epoch queries over loopback TCP",
		Claim:  "service substrate: epoch snapshots give wait-free queries during sustained ingest, and every served sparsifier is bit-identical to the offline recomputation over the prefix it names",
		Header: []string{"graph", "n", "edges", "budget", "epochs", "ingest_s", "edges/s", "kind", "queries", "p50ms", "p99ms", "bitid"},
	}
	type graphCase struct {
		name   string
		n, m   int
		budget int
		buffer int // stream in-memory buffer (0 = the 4n default)
		batch  int
	}
	const (
		seed = uint64(31)
		eps  = 0.5
	)
	cases := []graphCase{
		{"g64k", 1 << 10, 1 << 16, 1 << 14, 0, 1024},
		{"g16k", 1 << 10, 1 << 14, 1 << 13, 0, 512},
	}
	readers := 2
	pace := 2 * time.Millisecond
	if s == Full {
		// The Full cases size the stream buffer explicitly: the 4n
		// default reduces every 32k edges, which caps server-side
		// ingest well under the 1e5 edges/s target regardless of the
		// wire. Readers are paced (a query every `pace` of idle, the
		// realistic shape of a query load) rather than spin-looping —
		// an unpaced reader on a small CPU budget measures scheduler
		// starvation, not service throughput.
		cases = []graphCase{
			{"g1M", 1 << 13, 1 << 20, 1 << 18, 1 << 18, 4096},
			{"g256k", 1 << 13, 1 << 18, 1 << 16, 1 << 17, 4096},
		}
		readers = 3
		pace = 25 * time.Millisecond
	}

	srv, err := serve.Listen(serve.Config{Listen: "127.0.0.1:0"})
	if err != nil {
		t.Notes = append(t.Notes, fmt.Sprintf("FAILURE: listen: %v", err))
		t.AddRow("-", "-", "-", "-", "-", "-", "-", "-", "-", "-", "-", "-")
		return t
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve() }()
	defer func() {
		srv.Shutdown(30 * time.Second)
		<-serveDone
	}()

	var mu sync.Mutex // guards t.Notes from reader goroutines
	fail := func(format string, args ...any) {
		mu.Lock()
		t.Notes = append(t.Notes, fmt.Sprintf("FAILURE: "+format, args...))
		mu.Unlock()
	}

	for _, gc := range cases {
		opt := serve.GraphOptions{UpdateBudget: gc.budget, BufferEdges: gc.buffer, Seed: seed}
		edges := loadEdges(gc.n, gc.m, int64(gc.n)^int64(gc.m))
		wc, err := serve.Dial(srv.Addr())
		if err != nil {
			fail("dial writer: %v", err)
			continue
		}
		if _, err := wc.Open(gc.name, gc.n, opt); err != nil {
			fail("open %s: %v", gc.name, err)
			wc.Close()
			continue
		}

		// Query clients: each cycles the kinds on its own connection and
		// records per-kind latencies plus its last sparsify answer (for
		// the offline audit).
		type lastAnswer struct {
			info  serve.Info
			edges []graph.Edge
		}
		lat := make([]map[string][]float64, readers)
		last := make([]lastAnswer, readers)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for r := 0; r < readers; r++ {
			rc, err := serve.Dial(srv.Addr())
			if err != nil {
				fail("dial reader: %v", err)
				continue
			}
			lat[r] = map[string][]float64{}
			wg.Add(1)
			go func(r int, c *serve.Client) {
				defer wg.Done()
				defer c.Close()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					case <-time.After(pace):
					}
					switch i % 3 {
					case 0:
						start := time.Now()
						info, g, err := c.Sparsify(gc.name, eps, 0)
						if err != nil {
							fail("reader sparsify %s: %v", gc.name, err)
							return
						}
						lat[r]["sparsify"] = append(lat[r]["sparsify"], millisSince(start))
						last[r] = lastAnswer{info, g.Edges}
					case 1:
						start := time.Now()
						if _, _, err := c.Spanner(gc.name, 2); err != nil {
							fail("reader spanner %s: %v", gc.name, err)
							return
						}
						lat[r]["spanner"] = append(lat[r]["spanner"], millisSince(start))
					case 2:
						start := time.Now()
						if _, err := c.Stat(gc.name); err != nil {
							fail("reader stat %s: %v", gc.name, err)
							return
						}
						lat[r]["stat"] = append(lat[r]["stat"], millisSince(start))
					}
				}
			}(r, rc)
		}

		// The writer: stream every batch at full speed, under the query
		// load above.
		start := time.Now()
		var info serve.Info
		ingestOK := true
		for i := 0; i < len(edges) && ingestOK; i += gc.batch {
			end := i + gc.batch
			if end > len(edges) {
				end = len(edges)
			}
			if info, err = wc.Ingest(gc.name, edges[i:end]); err != nil {
				fail("ingest %s at %d: %v", gc.name, i, err)
				ingestOK = false
			}
		}
		elapsed := time.Since(start).Seconds()
		if info, err = wc.Flush(gc.name); err != nil {
			fail("flush %s: %v", gc.name, err)
			ingestOK = false
		}
		close(stop)
		wg.Wait()
		if !ingestOK {
			wc.Close()
			continue
		}

		// The audit: final epoch plus each reader's last observed epoch,
		// deduped — every one must replay bit-identically offline.
		bitid := "ok"
		audited := map[uint64]bool{}
		audit := func(ai serve.Info, got []graph.Edge) {
			if audited[ai.Epoch] {
				return
			}
			audited[ai.Epoch] = true
			want, err := offlineEpochSparsify(gc.n, edges[:ai.Prefix], opt, ai.Epoch, eps)
			if err != nil {
				fail("offline replay of %s epoch %d: %v", gc.name, ai.Epoch, err)
				bitid = "FAIL"
				return
			}
			if !sameEdgeList(got, want) {
				fail("DETERMINISM VIOLATION: %s epoch %d (prefix %d) served %d edges that differ from the offline replay",
					gc.name, ai.Epoch, ai.Prefix, len(got))
				bitid = "FAIL"
			}
		}
		fi, fg, err := wc.Sparsify(gc.name, eps, 0)
		if err != nil {
			fail("final sparsify %s: %v", gc.name, err)
			bitid = "FAIL"
		} else {
			audit(fi, fg.Edges)
		}
		for r := range last {
			if last[r].edges != nil {
				audit(last[r].info, last[r].edges)
			}
		}
		wc.Close()

		rate := float64(len(edges)) / elapsed
		t.AddRow(gc.name, inum(gc.n), inum(len(edges)), inum(gc.budget), fmt.Sprintf("%d", info.Epoch),
			fnum(elapsed), fnum(rate), "ingest", "-", "-", "-", bitid)
		for _, kind := range []string{"sparsify", "spanner", "stat"} {
			var all []float64
			for r := range lat {
				all = append(all, lat[r][kind]...)
			}
			if len(all) == 0 {
				continue
			}
			t.AddRow(gc.name, "-", "-", "-", "-", "-", "-", kind,
				inum(len(all)), fnum(pctl(all, 0.50)), fnum(pctl(all, 0.99)), "-")
		}
	}

	t.Notes = append(t.Notes,
		fmt.Sprintf("%d query clients per graph, each cycling sparsify(eps=%.1f)/spanner(k=2)/stat on its own connection at one query per %v of idle; ingest rate is measured under that load", readers, eps, pace),
		"target: sustained ingest >= 1e5 edges/s while queries run (acceptance for the Full g1M row)",
		fmt.Sprintf("bitid audits %s: served sparsifiers replayed offline (stream prefix replay + resample under serve.QuerySeed) and compared edge for edge", "final epoch + each reader's last epoch"))
	return t
}

// loadEdges generates the deterministic ingest sequence: a spanning
// path (so resistance/solve queries are well-posed at every epoch)
// followed by random weighted pairs.
func loadEdges(n, m int, seed int64) []graph.Edge {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, 0, m)
	for v := 1; v < n && len(edges) < m; v++ {
		edges = append(edges, graph.Edge{U: int32(v - 1), V: int32(v), W: 1})
	}
	for len(edges) < m {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		edges = append(edges, graph.Edge{U: int32(u), V: int32(v), W: 0.5 + rng.Float64()})
	}
	return edges
}

// offlineEpochSparsify is the reference side of the bitid audit: the
// serve determinism contract, computed with no server anywhere.
func offlineEpochSparsify(n int, prefix []graph.Edge, opt serve.GraphOptions, epoch uint64, eps float64) ([]graph.Edge, error) {
	str := stream.New(n, stream.Options{
		BufferEdges: opt.BufferEdges,
		ReduceEps:   opt.ReduceEps,
		Seed:        opt.Seed,
	})
	for _, e := range prefix {
		if err := str.Ingest(e); err != nil {
			return nil, err
		}
	}
	sum, _, err := str.Snapshot()
	if err != nil {
		return nil, err
	}
	out, _, err := core.ParallelSparsify(sum, eps, 0, core.DefaultConfig(serve.QuerySeed(opt.Seed, epoch)))
	if err != nil {
		return nil, err
	}
	return out.Edges, nil
}

func sameEdgeList(a, b []graph.Edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// pctl returns the p-quantile of xs (nearest-rank on a sorted copy).
func pctl(xs []float64, p float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(p * float64(len(s)-1))
	return s[i]
}
