package experiments

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/linalg"
	"repro/internal/matrix"
	"repro/internal/pram"
	"repro/internal/rng"
	"repro/internal/solver"
	"repro/internal/vec"
)

func newTracker() *pram.Tracker { return pram.New() }

// randomRHS returns a deterministic zero-mean right-hand side.
func randomRHS(n int, seed uint64) []float64 {
	r := rng.New(seed)
	b := make([]float64, n)
	for i := range b {
		b[i] = r.Norm()
	}
	vec.ProjectOutOnes(b)
	return b
}

// E7SolverChain validates Theorem 6: the chain-preconditioned solver
// converges in few iterations with a chain of size Õ(m·log κ), and the
// iteration count grows like log(1/τ).
func E7SolverChain(s Scale) *Table {
	t := &Table{
		ID:     "E7",
		Title:  "Peng-Spielman chain solver with the paper's sparsifier",
		Claim:  "Thm 6: polylog-depth solve, chain size O~(m log kappa), iterations ~ log(1/tau)",
		Header: []string{"graph", "n", "m", "depth", "chainNNZ", "nnz/m", "chainIters", "jacobiIters", "tau"},
	}
	type tc struct {
		name string
		g    *graph.Graph
	}
	cases := []tc{
		{"grid2d-30x30", gen.Grid2D(30, 30)},
		{"grid3d-8", gen.Grid3D(8, 8, 8)},
		{"affinity-20x20", gen.ImageAffinity(20, 20, 0.2, 67)},
	}
	if s == Quick {
		cases = cases[:1]
	}
	tau := 1e-8
	for _, c := range cases {
		b := randomRHS(c.g.N, 71)
		_, res, err := solver.SolveLaplacian(c.g, b, tau, solver.ChainOptions{Seed: 73})
		if err != nil {
			t.Notes = append(t.Notes, c.name+": "+err.Error())
			continue
		}
		l := matrix.Laplacian(c.g)
		x := make([]float64, c.g.N)
		jr, _ := linalg.CG(linalg.CSROp{M: l}, b, x, linalg.CGOptions{
			Tol: tau, ProjectOnes: true, Prec: linalg.NewJacobi(l.Diag), MaxIter: 200000,
		})
		t.AddRow(c.name, inum(c.g.N), inum(c.g.M()), inum(res.ChainDepth),
			inum(res.ChainNNZ), fnum(float64(res.ChainNNZ)/float64(c.g.M())),
			inum(res.Iterations), inum(jr.Iterations), fnum(tau))
	}
	// τ sweep on one graph: iterations must scale ~ log(1/τ).
	g := gen.Grid2D(24, 24)
	b := randomRHS(g.N, 79)
	taus := []float64{1e-2, 1e-4, 1e-8}
	if s == Quick {
		taus = []float64{1e-2, 1e-8}
	}
	for _, tau := range taus {
		_, res, err := solver.SolveLaplacian(g, b, tau, solver.ChainOptions{Seed: 83})
		if err != nil {
			continue
		}
		t.AddRow("grid2d-24x24 (tau sweep)", inum(g.N), inum(g.M()), inum(res.ChainDepth),
			inum(res.ChainNNZ), fnum(float64(res.ChainNNZ)/float64(g.M())),
			inum(res.Iterations), "-", fnum(tau))
	}
	t.Notes = append(t.Notes,
		"chainIters << jacobiIters on ill-conditioned graphs (who wins: the chain)",
		"iterations grow roughly linearly in log(1/tau) down the sweep rows")
	return t
}

// E8Scaling measures wall-clock of PARALLELSPARSIFY at varying
// GOMAXPROCS — the shared-memory implementation proxy for the CRCW
// parallel-time claim.
func E8Scaling(s Scale) *Table {
	t := &Table{
		ID:     "E8",
		Title:  "shared-memory scaling of PARALLELSPARSIFY",
		Claim:  "Thm 5 (CRCW): parallel implementation; wall-clock at P workers",
		Header: []string{"P", "millis", "speedup"},
	}
	n := 1200
	if s == Quick {
		n = 500
	}
	g := gen.Gnp(n, 30.0/float64(n), 89)
	maxP := runtime.NumCPU()
	if maxP > 8 {
		maxP = 8
	}
	base := 0.0
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for p := 1; p <= maxP; p *= 2 {
		runtime.GOMAXPROCS(p)
		start := time.Now()
		if _, _, err := core.ParallelSparsify(g, 0.5, 4, core.DefaultConfig(97)); err != nil {
			t.Notes = append(t.Notes, "SPARSIFY FAILURE: "+err.Error())
			break
		}
		ms := float64(time.Since(start).Microseconds()) / 1000
		if p == 1 {
			base = ms
		}
		speedup := base / ms
		t.AddRow(inum(p), fnum(ms), fnum(speedup))
	}
	if maxP == 1 {
		t.Notes = append(t.Notes, "host has 1 CPU: speedup necessarily 1.0; run on a multicore host to see scaling")
	}
	return t
}

// E9BundleAblation explores Remark 3: how bundle thickness t trades
// sparsifier size against quality in a single sample round.
func E9BundleAblation(s Scale) *Table {
	t := &Table{
		ID:     "E9",
		Title:  "bundle thickness ablation (Remark 3)",
		Claim:  "Remark 3: the t-bundle is the certification object; thinner bundles are cheaper but weaker",
		Header: []string{"t", "bundle", "m_out", "eps_meas"},
	}
	g := gen.Complete(200)
	ts := []int{1, 2, 4, 8, 16}
	if s == Quick {
		ts = []int{1, 8}
	}
	for _, layers := range ts {
		cfg := core.DefaultConfig(101)
		cfg.BundleT = layers
		out, st, err := core.ParallelSample(g, 0.5, cfg)
		if err != nil {
			t.Notes = append(t.Notes, "SAMPLE FAILURE: "+err.Error())
			continue
		}
		em := measureEps(g, out, 103)
		t.AddRow(inum(layers), inum(st.BundleEdges), inum(out.M()), fnum(em))
	}
	t.Notes = append(t.Notes,
		"m_out grows with t while eps_meas (weakly) improves: the certification tradeoff",
		"on K_n leverage is uniformly tiny, so even t=1 certifies well — the bound binds on graphs with skewed leverage")
	return t
}

// E10EpsDependence validates Remark 4: the kept-edge count scales as
// 1/eps^2 (Kapralov–Panigrahi needs 1/eps^4).
func E10EpsDependence(s Scale) *Table {
	t := &Table{
		ID:     "E10",
		Title:  "eps dependence of the sparsifier size",
		Claim:  "Remark 4: size ~ 1/eps^2, vs 1/eps^4 for the KP spanner algorithm",
		Header: []string{"eps", "t", "bundle", "fit target 1/eps^2", "KP ref 1/eps^4"},
	}
	g := gen.Complete(300)
	if s == Quick {
		g = gen.Complete(240)
	}
	epss := []float64{1.0, 0.7, 0.5, 0.4}
	type pt struct{ x, y float64 }
	var pts []pt
	base := 0.0
	for i, eps := range epss {
		cfg := core.DefaultConfig(107)
		// Drive t directly as ⌈2/ε²⌉ so the measured size reflects the
		// ε-dependence rather than integer-ceiling noise at tiny t.
		cfg.BundleT = int(math.Ceil(2 / (eps * eps)))
		_, st, err := core.ParallelSample(g, eps, cfg)
		if err != nil {
			t.Notes = append(t.Notes, "SAMPLE FAILURE: "+err.Error())
			continue
		}
		bundleSz := float64(st.BundleEdges)
		if i == 0 {
			base = bundleSz
		}
		pts = append(pts, pt{x: math.Log(1 / eps), y: math.Log(bundleSz)})
		t.AddRow(fnum(eps), inum(st.BundleT), inum(st.BundleEdges),
			fnum(base/(eps*eps)), fnum(base/math.Pow(eps, 4)))
	}
	// Least-squares slope of log(bundle) vs log(1/eps).
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		xs[i] = p.x
		ys[i] = p.y
	}
	slope := fitSlope(xs, ys)
	t.Notes = append(t.Notes,
		fmt.Sprintf("fitted exponent of bundle size in 1/eps: %.2f (paper: 2, KP: 4)", slope),
		"bundle size is the eps-dependent term of Theorem 4's bound")
	return t
}

// fitSlope returns the least-squares slope of y against x.
func fitSlope(xs, ys []float64) float64 {
	n := float64(len(xs))
	if n < 2 {
		return math.NaN()
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return math.NaN()
	}
	return (n*sxy - sx*sy) / den
}
