package experiments

import (
	"repro/internal/core"
	"repro/internal/gen"
)

// E11TreeBundle validates Remark 2: replacing the spanner layers of the
// bundle with low-stretch spanning forests shrinks the certification
// object by ~log n while keeping the sampled sparsifier usable.
func E11TreeBundle(s Scale) *Table {
	t := &Table{
		ID:     "E11",
		Title:  "low-stretch tree bundles (Remark 2 extension)",
		Claim:  "Remark 2: trees can replace spanners, reducing sparsifier size by O(log n)",
		Header: []string{"bundle kind", "t", "bundle", "m_out", "eps_meas"},
	}
	g := gen.Complete(200)
	ts := []int{2, 4, 8}
	if s == Quick {
		ts = []int{2, 8}
	}
	for _, layers := range ts {
		spCfg := core.DefaultConfig(113)
		spCfg.BundleT = layers
		spOut, spStats, err := core.ParallelSample(g, 0.5, spCfg)
		if err != nil {
			t.Notes = append(t.Notes, "SAMPLE FAILURE: "+err.Error())
			continue
		}
		t.AddRow("spanner", inum(layers), inum(spStats.BundleEdges),
			inum(spOut.M()), fnum(measureEps(g, spOut, 127)))

		trCfg := core.DefaultConfig(113)
		trOut, trStats, err := core.ParallelSampleTreeBundle(g, 0.5, layers, trCfg)
		if err != nil {
			t.Notes = append(t.Notes, "TREE BUNDLE FAILURE: "+err.Error())
			continue
		}
		t.AddRow("low-stretch trees", inum(layers), inum(trStats.BundleEdges),
			inum(trOut.M()), fnum(measureEps(g, trOut, 131)))
	}
	t.Notes = append(t.Notes,
		"tree layers hold n-1 edges vs the spanner's ~0.7*n*log n: the promised O(log n) bundle shrinkage",
		"tree bundles certify only average stretch, so eps_meas is somewhat larger at equal t — Remark 2's trade")
	return t
}
