package experiments

import (
	"fmt"
	"time"

	"repro/internal/dist"
	"repro/internal/gen"
)

// E13NetTransport compares the three transports of the distributed
// engine on one sparsification job: the in-memory staging area, the
// sharded in-process exchange, and the network transport running
// coordinator + P−1 workers over real loopback TCP sockets (each
// worker materializing only its partition). The m_out column must be
// constant — the transports move messages, not decisions — while the
// wire columns split the cost of distribution: crossWords is the
// model-level bill (identical for sharded and net at equal P) and
// wireBytes is what the network transport actually wrote to sockets,
// framing included. wkrPeakWords is the per-worker memory story: the
// largest edge-table footprint (words) any single process's working
// view reached — Θ(m) on the single-process transports, O(m_incident)
// ≈ m/P + boundary on the partitioned network run, shrinking as P
// grows.
func E13NetTransport(s Scale) *Table {
	t := &Table{
		ID:     "E13",
		Title:  "transport comparison: in-memory vs sharded vs network (loopback)",
		Claim:  "Thm 5 substrate: the same rounds run over goroutines or sockets with identical outputs; only the wire bill and per-worker footprint change",
		Header: []string{"transport", "P", "millis", "m_out", "rounds", "crossWords", "wireBytes", "wkrPeakWords"},
	}
	n, deg := 1<<12, 8.0
	depth, rho := 1, 2.0
	ps := []int{1, 2, 4}
	if s == Full {
		n, deg = 1<<14, 8.0
		depth, rho = 2, 4.0
		ps = []int{1, 2, 4, 8}
	}
	g := gen.Gnp(n, deg/float64(n), 163)
	baseM := -1
	row := func(name string, p int, ms float64, mOut, rounds int, crossWords, wireBytes int64, peakWords int) {
		if baseM < 0 {
			baseM = mOut
		} else if mOut != baseM {
			t.Notes = append(t.Notes,
				fmt.Sprintf("DETERMINISM VIOLATION: %s P=%d produced m=%d, expected %d", name, p, mOut, baseM))
		}
		wb := "-"
		if wireBytes >= 0 {
			wb = fmt.Sprintf("%d", wireBytes)
		}
		t.AddRow(name, inum(p), fnum(ms), inum(mOut), inum(rounds),
			fmt.Sprintf("%d", crossWords), wb, inum(peakWords))
	}

	start := time.Now()
	mem := dist.Sparsify(g, 0.5, rho, depth, 29)
	row("mem", 1, millisSince(start), mem.G.M(), mem.Stats.Rounds, mem.Stats.CrossShardWords, -1, mem.PeakViewWords)

	for _, p := range ps[1:] {
		start = time.Now()
		sh := dist.SparsifySharded(g, 0.5, rho, depth, 29, p)
		row("sharded", p, millisSince(start), sh.G.M(), sh.Stats.Rounds, sh.Stats.CrossShardWords, -1, sh.PeakViewWords)
	}
	for _, p := range ps {
		start = time.Now()
		res, wireBytes, err := dist.LoopbackSparsify(g, 0.5, rho, depth, 29, p, dist.DefaultNetTimeout)
		if err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("NET FAILURE at P=%d: %v", p, err))
			continue
		}
		row("net", p, millisSince(start), res.G.M(), res.Stats.Rounds, res.Stats.CrossShardWords, wireBytes, res.PeakViewWords)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("n=%d m=%d: identical m_out and rounds on every transport at every P", n, g.M()),
		"net P=1 is a single process with no sockets: the partition-view overhead alone",
		"net relays through the coordinator (star), so wireBytes ~ 2x a full-mesh deployment's payload bytes",
		"wkrPeakWords = max per-process edge-table footprint across rounds: Θ(m) single-process, O(m/P + boundary) on net")
	return t
}

func millisSince(start time.Time) float64 {
	return float64(time.Since(start).Microseconds()) / 1000
}
