package experiments

import (
	"fmt"
	"time"

	"repro/internal/dist"
	"repro/internal/gen"
)

// E13NetTransport compares the transport specs of the distributed
// engine on one sparsification job, all through the single Engine.Run
// entry point: the in-memory staging area (Mem), the sharded
// in-process exchange (Sharded), and the network path running
// coordinator + P−1 workers over real loopback TCP sockets — both the
// star relay (Loopback) and the full-mesh data plane (Mesh), each
// worker materializing only its partition. The m_out column must
// be constant — the transports move messages, not decisions — while
// the wire columns split the cost of distribution: crossWords is the
// model-level bill (identical for sharded, net, and mesh at equal P),
// wireBytes is what the network transport actually wrote to sockets,
// framing included, and dataBytes is its worker↔worker round-batch
// subset — the part the data-plane topology governs, which the mesh
// halves by dropping the coordinator relay. wkrPeakWords is the
// per-worker memory story: the largest edge-table footprint (words)
// any single process's working view reached — Θ(m) on the
// single-process specs, O(m_incident) ≈ m/P + boundary on the
// partitioned network run, shrinking as P grows.
func E13NetTransport(s Scale) *Table {
	t := &Table{
		ID:     "E13",
		Title:  "transport comparison: in-memory vs sharded vs network (star vs full mesh)",
		Claim:  "Thm 5 substrate: one Engine.Run executes the same rounds over goroutines or sockets with identical outputs; only the wire bill and per-worker footprint change — and the mesh plane halves the relayed data bytes",
		Header: []string{"transport", "P", "millis", "m_out", "rounds", "crossWords", "wireBytes", "dataBytes", "wkrPeakWords"},
	}
	n, deg := 1<<12, 8.0
	depth, rho := 1, 2.0
	ps := []int{1, 2, 4}
	if s == Full {
		n, deg = 1<<14, 8.0
		depth, rho = 2, 4.0
		ps = []int{1, 2, 4, 8}
	}
	g := gen.Gnp(n, deg/float64(n), 163)
	job := dist.SparsifyJob(0.5, rho, dist.SparsifyDefaults(depth, 29))
	baseM := -1
	row := func(name string, p int, ms float64, mOut, rounds int, crossWords, wireBytes, dataBytes int64, peakWords int) {
		if baseM < 0 {
			baseM = mOut
		} else if mOut != baseM {
			t.Notes = append(t.Notes,
				fmt.Sprintf("DETERMINISM VIOLATION: %s P=%d produced m=%d, expected %d", name, p, mOut, baseM))
		}
		wb, db := "-", "-"
		if wireBytes >= 0 {
			wb = fmt.Sprintf("%d", wireBytes)
			db = fmt.Sprintf("%d", dataBytes)
		}
		t.AddRow(name, inum(p), fnum(ms), inum(mOut), inum(rounds),
			fmt.Sprintf("%d", crossWords), wb, db, inum(peakWords))
	}
	// starData/meshData record the P=4 data bytes of each plane so the
	// notes can state the measured reduction.
	var starData, meshData int64
	sweep := func(name string, order []int, spec func(p int) dist.TransportSpec, wired bool) {
		for _, p := range order {
			start := time.Now()
			res, err := dist.Run(dist.NewEngine(spec(p), g), job)
			if err != nil {
				t.Notes = append(t.Notes, fmt.Sprintf("%s FAILURE at P=%d: %v", name, p, err))
				continue
			}
			wireBytes, dataBytes := int64(-1), int64(-1)
			if wired {
				wireBytes, dataBytes = res.WireBytes, res.DataWireBytes
				if p == 4 {
					if name == "net" {
						starData = dataBytes
					} else if name == "mesh" {
						meshData = dataBytes
					}
				}
			}
			row(name, p, millisSince(start), res.Output.M(), res.Stats.Rounds,
				res.Stats.CrossShardWords, wireBytes, dataBytes, res.PeakViewWords)
		}
	}

	sweep("mem", []int{1}, func(int) dist.TransportSpec { return dist.Mem() }, false)
	sweep("sharded", ps[1:], dist.Sharded, false)
	sweep("net", ps, dist.Loopback, true)
	sweep("mesh", ps[1:], dist.Mesh, true)

	t.Notes = append(t.Notes,
		fmt.Sprintf("n=%d m=%d: identical m_out and rounds on every transport spec at every P", n, g.M()),
		"net P=1 is a single process with no sockets: the partition-view overhead alone",
		"net relays worker<->worker batches through the coordinator (star), writing each twice; mesh sends them directly, exactly once")
	if starData > 0 && meshData >= 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"measured at P=4: dataBytes %d (star) -> %d (mesh), a %.0f%% reduction",
			starData, meshData, 100*(1-float64(meshData)/float64(starData))))
	}
	t.Notes = append(t.Notes,
		"wkrPeakWords = max per-process edge-table footprint across rounds: Θ(m) single-process, O(m/P + boundary) on net/mesh")
	return t
}

func millisSince(start time.Time) float64 {
	return float64(time.Since(start).Microseconds()) / 1000
}
