package dist

import (
	"fmt"
	"time"

	"repro/internal/graph"
)

// TransportSpec is a value describing how a job's rounds execute — the
// first of the two orthogonal axes of the package (the second is the
// Job, the algorithm itself). A spec carries no connections and does no
// I/O; Engine.Run materializes the transport it describes, runs the
// job, and tears it down. Six specs exist:
//
//   - Mem(): the single-process in-memory simulation (the default —
//     the zero TransportSpec executes the same way).
//   - Sharded(p): p worker goroutines exchanging messages through
//     per-shard-pair buffers at each round barrier.
//   - Loopback(p): a coordinator plus p−1 worker goroutines, each on
//     its own NetTransport over real loopback TCP sockets, each
//     materializing only its partition — the full network path without
//     process isolation. Round traffic is relayed through the
//     coordinator in a star.
//   - Mesh(p): Loopback's full-mesh sibling — the worker goroutines
//     additionally dial each other directly, so cross-shard round
//     traffic travels exactly once and the coordinator carries only
//     control/tally/collective frames.
//   - Net(cfg): the coordinator (shard 0) of a real multi-process run;
//     other processes join with Worker specs. NetConfig.Mesh selects
//     the full-mesh data plane.
//   - Worker(cfg): one worker shard of a real multi-process run.
//
// Equivalence guarantee: for equal (job, seed) every spec produces
// bit-identical output and an identical Stats ledger at any shard
// count and any GOMAXPROCS — transports move messages, not decisions.
// Only the CrossShard split, WireBytes, and PeakViewWords (the honesty
// counters of distribution) vary. The cross-transport matrix in
// equivalence_test.go pins this.
type TransportSpec struct {
	kind     specKind
	shards   int
	timeout  time.Duration
	listen   string
	onListen func(addr string)
	join     string
	shard    int
	// Fault-tolerance knobs (Net and Worker specs; see NetConfig and
	// WorkerConfig for semantics).
	respawn     func(shard int, addr string)
	maxRespawns int
	ckptEvery   int
	joinRetry   time.Duration
	failFrames  int
	// Full-mesh data plane (the Mesh spec, NetConfig.Mesh, and
	// WorkerConfig.Mesh/PeerListen).
	mesh       bool
	peerListen string
	// Coordinator failover and elastic restart (NetConfig.Failover/
	// Resume/OnCheckpoint, WorkerConfig.Failover/FailoverListen/
	// LoadPartition).
	failover       bool
	failoverListen string
	loadPart       func(shard int) (*graph.Partition, error)
	resume         []byte
	onCkpt         func(ckpt []byte)
}

type specKind uint8

const (
	// specDefault is the zero value: it executes as Mem, but callers
	// that layer a deprecated knob on top (repro.Options.Shards) can
	// tell "unset" apart from an explicit Mem() via IsZero.
	specDefault specKind = iota
	specMem
	specSharded
	specLoopback
	specMesh
	specNet
	specWorker
)

// Mem returns the in-memory spec: one process, one staging area, the
// original synchronous simulation. The zero TransportSpec executes
// identically, but reports IsZero — an explicit Mem() does not, so it
// can never be overridden by a legacy default.
func Mem() TransportSpec { return TransportSpec{kind: specMem} }

// Sharded returns the sharded in-process spec: the vertex set is
// partitioned across p worker goroutines and cross-shard messages are
// exchanged through per-shard-pair buffers at each round barrier
// (clamped to [1, n] at run time).
func Sharded(p int) TransportSpec { return TransportSpec{kind: specSharded, shards: p} }

// Loopback returns the loopback-TCP spec: Engine.Run binds a
// coordinator on 127.0.0.1, spawns p−1 worker goroutines each joined
// over a real socket and each holding only its partition, and runs the
// whole multi-process protocol (framing, routing, tally handshake,
// collectives, result gather) inside one process.
func Loopback(p int) TransportSpec { return TransportSpec{kind: specLoopback, shards: p} }

// Mesh returns the full-mesh loopback-TCP spec: like Loopback(p), but
// the worker goroutines also dial each other directly, so a
// cross-shard round batch crosses the wire once instead of being
// relayed twice through the coordinator, and round flushes run on
// per-peer writer goroutines (double buffering: round r's batch is on
// the wire while round r+1 computes). Output, Stats, and the round
// schedule are bit-identical to every other spec; only WireBytes,
// DataWireBytes, and wall-clock change.
func Mesh(p int) TransportSpec { return TransportSpec{kind: specMesh, shards: p, mesh: true} }

// NetConfig configures the coordinator side of a real multi-process
// run (the Net spec).
type NetConfig struct {
	// Listen is the address to bind (host:port; port 0 picks one).
	Listen string
	// Shards is the total process count P, this coordinator included.
	Shards int
	// Timeout is the per-frame I/O deadline (DefaultNetTimeout if 0).
	Timeout time.Duration
	// OnListen, when non-nil, is called with the bound address after
	// the listener is up and before any worker is awaited — the hook
	// for writing an address file or spawning worker processes.
	OnListen func(addr string)
	// Respawn, when non-nil, arms fault tolerance: on a detected worker
	// failure the coordinator rolls the survivors back to the last
	// checkpoint, calls Respawn(shard, addr) to restart the dead shard
	// (typically by re-execing a worker process against its partition
	// file), waits for it to rejoin, and replays the attempt
	// deterministically — the final output is bit-identical to a
	// failure-free run. Nil keeps the pre-recovery behavior: any worker
	// failure fails the run.
	Respawn func(shard int, addr string)
	// MaxRespawns bounds the total number of worker respawns across the
	// whole run (0 means no budget — with a Respawn hook set, the first
	// failure still fails the run).
	MaxRespawns int
	// CheckpointEvery is the checkpoint cadence in epochs (sparsify
	// sampling iterations): the coordinator durably records the
	// inter-epoch state every CheckpointEvery completed epochs. 0 means
	// every epoch; < 0 disables checkpointing (recovery replays from
	// the top).
	CheckpointEvery int
	// Mesh selects the full-mesh data plane: workers dial each other
	// directly and exchange round batches peer-to-peer, while this
	// coordinator carries only control/tally/collective frames. Every
	// Worker spec in the fleet must set Mesh too (the hello handshake
	// rejects a mix).
	Mesh bool
	// Failover arms coordinator failover: every worker announces a
	// pre-bound standby hub listener at its join handshake, the
	// coordinator broadcasts the assembled standby address book at the
	// top of every attempt, and if this coordinator dies mid-run the
	// lowest-numbered live shard adopts shard 0 from the broadcast
	// checkpoint (see WorkerConfig.Failover). Every Worker spec in the
	// fleet must set Failover too (the hello handshake rejects a mix).
	Failover bool
	// FailAfterFrames, when positive, crashes this coordinator process
	// (SIGKILL to self) just before it writes its Nth protocol frame —
	// the fault-injection hook of the coordinator-kill drills. 0
	// disables injection.
	FailAfterFrames int
	// Resume, when non-nil, is an encoded checkpoint (as delivered to
	// OnCheckpoint) to restart the run from: every process fast-forwards
	// through the recorded epochs locally and resumes live execution.
	// Because replay is a pure function of (seed, partition, round), the
	// resumed run's OUTPUT is bit-identical to an uninterrupted one even
	// at a different shard count — the elastic-resize path: checkpoint a
	// P-shard fleet, restart at P′. (Stats' CrossShard split reflects
	// the partition actually run, so it differs across P ≠ P′.)
	Resume []byte
	// OnCheckpoint, when non-nil, is called with the encoded checkpoint
	// each time the durable boundary advances (every CheckpointEvery
	// completed epochs) — the hook for persisting restart state outside
	// the process (cmd/distworker -ckpt-out). The blob is immutable and
	// safe to retain.
	OnCheckpoint func(ckpt []byte)
}

// Net returns the coordinator spec of a real multi-process run:
// Engine.Run listens, waits for the P−1 Worker processes, broadcasts
// the job's name and parameters, runs shard 0, and assembles the
// result.
func Net(cfg NetConfig) TransportSpec {
	return TransportSpec{
		kind:        specNet,
		shards:      cfg.Shards,
		timeout:     cfg.Timeout,
		listen:      cfg.Listen,
		onListen:    cfg.OnListen,
		respawn:     cfg.Respawn,
		maxRespawns: cfg.MaxRespawns,
		ckptEvery:   cfg.CheckpointEvery,
		mesh:        cfg.Mesh,
		failover:    cfg.Failover,
		failFrames:  cfg.FailAfterFrames,
		resume:      cfg.Resume,
		onCkpt:      cfg.OnCheckpoint,
	}
}

// WorkerConfig configures one worker shard of a real multi-process run
// (the Worker spec).
type WorkerConfig struct {
	// Join is the coordinator's address.
	Join string
	// Shard is this process's shard id in [1, Shards).
	Shard int
	// Shards is the total process count P.
	Shards int
	// Timeout is the per-frame I/O deadline (DefaultNetTimeout if 0).
	Timeout time.Duration
	// JoinRetry, when positive, keeps re-dialing a refused or failed
	// join for up to this window — how a respawned worker (or one
	// started with -resume before the coordinator) rejoins a
	// coordinator that is still recovering. 0 makes a single attempt.
	JoinRetry time.Duration
	// FailAfterFrames, when positive, crashes this worker process
	// (SIGKILL to self) just before it writes its Nth protocol frame —
	// the deterministic fault-injection hook the kill-and-recover tests
	// use. 0 disables injection.
	FailAfterFrames int
	// Mesh joins the full-mesh data plane: this worker opens a peer
	// listener, announces its address to the coordinator, and exchanges
	// round batches directly with the other workers. Must match the
	// coordinator's NetConfig.Mesh.
	Mesh bool
	// PeerListen is the address the peer listener binds when Mesh is
	// set ("127.0.0.1:0" if empty — set a routable host for
	// multi-machine runs).
	PeerListen string
	// Failover arms coordinator failover on this worker: it binds a
	// standby hub listener before joining and announces the address at
	// the handshake. If the coordinator dies mid-run, the lowest-
	// numbered shard in the last broadcast standby book adopts shard 0 —
	// it loads partition 0 (LoadPartition), turns its standby listener
	// into the fleet's hub, re-broadcasts the job header and the last
	// checkpoint, respawns its own now-vacant shard (Respawn), and
	// finishes the run as the coordinator, returning the assembled
	// Output; every other survivor rejoins the standby address as its
	// old shard. Replay from the checkpoint is deterministic, so the
	// output and Stats are bit-identical to a failure-free run. Must
	// match the coordinator's NetConfig.Failover.
	Failover bool
	// FailoverListen is the address the standby listener binds when
	// Failover is set ("127.0.0.1:0" if empty — set a routable host for
	// multi-machine runs).
	FailoverListen string
	// LoadPartition, when non-nil, loads the partition for a given shard
	// — how an elected worker materializes partition 0 after adoption.
	// Optional when the engine holds the full graph (the partition is
	// carved); required for failover on a partition engine.
	LoadPartition func(shard int) (*graph.Partition, error)
	// Respawn restarts a dead worker shard, exactly as NetConfig.Respawn
	// — used by an elected worker after adoption, first to refill its
	// own vacated shard and then for any later worker failure. Failover
	// election fails without it.
	Respawn func(shard int, addr string)
	// MaxRespawns bounds the total worker respawns this process performs
	// after adopting the coordinator role (the adopted shard's own
	// refill is budgeted separately).
	MaxRespawns int
	// CheckpointEvery is the checkpoint cadence this worker applies if
	// it is elected coordinator (same semantics as the NetConfig field).
	CheckpointEvery int
}

// Worker returns the worker-shard spec of a real multi-process run:
// Engine.Run joins the coordinator, adopts the job parameters it
// broadcasts (the local job value supplies the algorithm and is
// cross-checked against the broadcast name), runs this shard, and
// contributes to the result gather. The returned Result carries the
// zero Output — assembly happens at the coordinator — but the full
// Stats ledger, which the tally handshake makes identical on every
// process.
func Worker(cfg WorkerConfig) TransportSpec {
	return TransportSpec{
		kind:           specWorker,
		shards:         cfg.Shards,
		timeout:        cfg.Timeout,
		join:           cfg.Join,
		shard:          cfg.Shard,
		joinRetry:      cfg.JoinRetry,
		failFrames:     cfg.FailAfterFrames,
		mesh:           cfg.Mesh,
		peerListen:     cfg.PeerListen,
		failover:       cfg.Failover,
		failoverListen: cfg.FailoverListen,
		loadPart:       cfg.LoadPartition,
		respawn:        cfg.Respawn,
		maxRespawns:    cfg.MaxRespawns,
		ckptEvery:      cfg.CheckpointEvery,
	}
}

// WithTimeout returns a copy of the spec with the per-frame I/O
// deadline set (meaningful for Loopback, Net, and Worker specs).
func (s TransportSpec) WithTimeout(d time.Duration) TransportSpec {
	s.timeout = d
	return s
}

// IsZero reports whether the spec is the zero value — unset, executed
// as Mem(). An explicit Mem() is not zero, so layered defaults (the
// deprecated repro.Options.Shards) cannot override it.
func (s TransportSpec) IsZero() bool {
	return s.kind == specDefault && s.shards == 0 && s.timeout == 0 &&
		s.listen == "" && s.onListen == nil && s.join == "" && s.shard == 0 &&
		s.respawn == nil && s.maxRespawns == 0 && s.ckptEvery == 0 &&
		s.joinRetry == 0 && s.failFrames == 0 &&
		!s.mesh && s.peerListen == "" &&
		!s.failover && s.failoverListen == "" && s.loadPart == nil &&
		s.resume == nil && s.onCkpt == nil
}

// String renders the spec for logs and experiment tables.
func (s TransportSpec) String() string {
	switch s.kind {
	case specSharded:
		return fmt.Sprintf("sharded(%d)", s.shards)
	case specLoopback:
		return fmt.Sprintf("loopback(%d)", s.shards)
	case specMesh:
		return fmt.Sprintf("mesh(%d)", s.shards)
	case specNet:
		return fmt.Sprintf("net(%s, %d shards%s)", s.listen, s.shards, s.flagSuffix())
	case specWorker:
		return fmt.Sprintf("worker(%s, shard %d/%d%s)", s.join, s.shard, s.shards, s.flagSuffix())
	default:
		return "mem"
	}
}

// flagSuffix renders the optional plane/failover markers of the Net
// and Worker spec strings.
func (s TransportSpec) flagSuffix() string {
	suffix := ""
	if s.mesh {
		suffix += ", mesh"
	}
	if s.failover {
		suffix += ", failover"
	}
	return suffix
}

// timeoutOrDefault returns the spec's deadline, defaulted.
func (s TransportSpec) timeoutOrDefault() time.Duration {
	if s.timeout <= 0 {
		return DefaultNetTimeout
	}
	return s.timeout
}
