package dist

import (
	"errors"
	"net"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
)

// The failure-path suite of the net transport: worker death and
// recovery (heartbeats, rollback, checkpointed replay), fast failure
// detection, duplicate rejoins, stream checksums, stray connections,
// the sliding join deadline, and collective sequence validation. The
// OS-process kill -9 drill lives in cmd/distworker's tests; these
// cover the same machinery in-process, where fault injection can close
// a single connection instead of a whole process.

const recoveryTimeout = 20 * time.Second

func recoverySparsifyJob() Job[*graph.Graph] {
	return SparsifyJob(0.75, 4, SparsifyDefaults(0, 11))
}

// doomWorker joins the fleet as `shard` and runs the job with fault
// injection armed: after failFrames written frames the worker's hub
// connection is torn down, which is what a crashed process looks like
// to the coordinator. Returns the run error (expected non-nil: the
// worker dies mid-run).
func doomWorker(t *testing.T, addr string, g *graph.Graph, shard, p, failFrames int) error {
	t.Helper()
	tr, err := JoinNet(addr, g.N, shard, p, recoveryTimeout)
	if err != nil {
		return err
	}
	tr.failAfterFrames = failFrames
	tr.failAct = func() { tr.hub.c.Close() }
	defer tr.Close()
	_, err = runNetJob(tr, graph.PartitionOf(g, shard, p), recoverySparsifyJob(), nil)
	return err
}

// TestNetRunSurvivesWorkerCrash is the tentpole's ground truth: a
// worker dies mid-run, the coordinator rolls the survivor back,
// respawns the dead shard, replays from the last checkpoint — and the
// final output and ledger are bit-identical to a failure-free run.
func TestNetRunSurvivesWorkerCrash(t *testing.T) {
	g := gen.Gnp(400, 0.05, 7)
	const p = 3
	ref, err := Run(NewEngine(Loopback(p).WithTimeout(recoveryTimeout), g), recoverySparsifyJob())
	if err != nil {
		t.Fatal(err)
	}

	var respawns atomic.Int32
	var wg sync.WaitGroup
	addrCh := make(chan string, 1)
	spec := Net(NetConfig{
		Listen: "127.0.0.1:0", Shards: p, Timeout: recoveryTimeout,
		OnListen: func(addr string) { addrCh <- addr },
		Respawn: func(shard int, addr string) {
			respawns.Add(1)
			wg.Add(1)
			go func() {
				defer wg.Done()
				wspec := Worker(WorkerConfig{Join: addr, Shard: shard, Shards: p,
					Timeout: recoveryTimeout, JoinRetry: recoveryTimeout})
				if _, err := Run(NewEngine(wspec, g), recoverySparsifyJob()); err != nil {
					t.Errorf("respawned shard %d: %v", shard, err)
				}
			}()
		},
		MaxRespawns: 2, CheckpointEvery: 1,
	})
	go func() {
		addr := <-addrCh
		wg.Add(1)
		go func() { // the healthy survivor, on the public path
			defer wg.Done()
			wspec := Worker(WorkerConfig{Join: addr, Shard: 2, Shards: p, Timeout: recoveryTimeout})
			if _, err := Run(NewEngine(wspec, g), recoverySparsifyJob()); err != nil {
				t.Errorf("surviving shard 2: %v", err)
			}
		}()
		wg.Add(1)
		go func() { // the doomed worker: dies at frame 900 of ~1500
			defer wg.Done()
			if err := doomWorker(t, addr, g, 1, p, 900); err == nil {
				t.Error("doomed worker finished cleanly; fault injection never fired")
			}
		}()
	}()

	res, err := Run(NewEngine(spec, g), recoverySparsifyJob())
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if n := respawns.Load(); n != 1 {
		t.Fatalf("respawns=%d, want 1", n)
	}
	if !reflect.DeepEqual(res.Stats, ref.Stats) {
		t.Fatalf("recovered ledger diverges:\n%+v\nvs failure-free\n%+v", res.Stats, ref.Stats)
	}
	if res.Output.M() != ref.Output.M() {
		t.Fatalf("recovered m=%d vs failure-free %d", res.Output.M(), ref.Output.M())
	}
	for i := range ref.Output.Edges {
		if res.Output.Edges[i] != ref.Output.Edges[i] {
			t.Fatalf("recovered edge %d differs from the failure-free run", i)
		}
	}
}

// doomMeshWorker is doomWorker on the full-mesh data plane: the worker
// joins with a peer listener, wires up its direct links, and dies after
// failFrames written frames (hub and mesh frames both count).
func doomMeshWorker(t *testing.T, addr string, g *graph.Graph, shard, p, failFrames int) error {
	t.Helper()
	tr, err := JoinMesh(addr, "", g.N, shard, p, recoveryTimeout)
	if err != nil {
		return err
	}
	tr.failAfterFrames = failFrames
	tr.failAct = func() { tr.hub.c.Close() }
	defer tr.Close()
	_, err = runNetJob(tr, graph.PartitionOf(g, shard, p), recoverySparsifyJob(), nil)
	return err
}

// TestMeshRunSurvivesWorkerCrash re-runs the recovery ground truth on
// the full-mesh data plane: the doomed worker's death must also unwind
// the survivors' direct links (they see EOF on a mesh read, park on
// the hub, and pick up the coordinator's rollback), the respawned
// shard announces a fresh peer listener as it rejoins, and the next
// attempt rebuilds the mesh from the re-broadcast address book — with
// output and ledger still bit-identical to a failure-free run.
func TestMeshRunSurvivesWorkerCrash(t *testing.T) {
	g := gen.Gnp(400, 0.05, 7)
	const p = 3
	ref, err := Run(NewEngine(Mesh(p).WithTimeout(recoveryTimeout), g), recoverySparsifyJob())
	if err != nil {
		t.Fatal(err)
	}

	var respawns atomic.Int32
	var wg sync.WaitGroup
	addrCh := make(chan string, 1)
	spec := Net(NetConfig{
		Listen: "127.0.0.1:0", Shards: p, Timeout: recoveryTimeout, Mesh: true,
		OnListen: func(addr string) { addrCh <- addr },
		Respawn: func(shard int, addr string) {
			respawns.Add(1)
			wg.Add(1)
			go func() {
				defer wg.Done()
				wspec := Worker(WorkerConfig{Join: addr, Shard: shard, Shards: p,
					Timeout: recoveryTimeout, JoinRetry: recoveryTimeout, Mesh: true})
				if _, err := Run(NewEngine(wspec, g), recoverySparsifyJob()); err != nil {
					t.Errorf("respawned shard %d: %v", shard, err)
				}
			}()
		},
		MaxRespawns: 2, CheckpointEvery: 1,
	})
	go func() {
		addr := <-addrCh
		wg.Add(1)
		go func() { // the healthy survivor, on the public path
			defer wg.Done()
			wspec := Worker(WorkerConfig{Join: addr, Shard: 2, Shards: p,
				Timeout: recoveryTimeout, Mesh: true})
			if _, err := Run(NewEngine(wspec, g), recoverySparsifyJob()); err != nil {
				t.Errorf("surviving shard 2: %v", err)
			}
		}()
		wg.Add(1)
		go func() { // the doomed worker: dies mid-run, after the mesh is up
			defer wg.Done()
			if err := doomMeshWorker(t, addr, g, 1, p, 900); err == nil {
				t.Error("doomed worker finished cleanly; fault injection never fired")
			}
		}()
	}()

	res, err := Run(NewEngine(spec, g), recoverySparsifyJob())
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if n := respawns.Load(); n != 1 {
		t.Fatalf("respawns=%d, want 1", n)
	}
	if !reflect.DeepEqual(res.Stats, ref.Stats) {
		t.Fatalf("recovered ledger diverges:\n%+v\nvs failure-free\n%+v", res.Stats, ref.Stats)
	}
	if res.Output.M() != ref.Output.M() {
		t.Fatalf("recovered m=%d vs failure-free %d", res.Output.M(), ref.Output.M())
	}
	for i := range ref.Output.Edges {
		if res.Output.Edges[i] != ref.Output.Edges[i] {
			t.Fatalf("recovered edge %d differs from the failure-free run", i)
		}
	}
}

// TestWorkerDisconnectFailsFast: without a respawn hook a worker death
// still fails the run promptly — via EOF on the dead connection, not a
// per-frame timeout cascade — and the error names the failed shard.
func TestWorkerDisconnectFailsFast(t *testing.T) {
	g := gen.Gnp(300, 0.05, 3)
	const p = 2
	addrCh := make(chan string, 1)
	spec := Net(NetConfig{Listen: "127.0.0.1:0", Shards: p, Timeout: recoveryTimeout,
		OnListen: func(addr string) { addrCh <- addr }})
	go func() {
		_ = doomWorker(t, <-addrCh, g, 1, p, 50)
	}()
	start := time.Now()
	_, err := Run(NewEngine(spec, g), recoverySparsifyJob())
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("coordinator finished against a dead worker")
	}
	var wf *workerFailure
	if !errors.As(err, &wf) || wf.shard != 1 {
		t.Fatalf("error does not attribute the failed shard: %v", err)
	}
	if elapsed > recoveryTimeout/2 {
		t.Fatalf("failure took %v — a timeout cascade, not EOF detection", elapsed)
	}
}

// TestDuplicateRejoinAcceptedOnce: when two processes race to rejoin a
// crashed shard, exactly one is accepted; the loser's connection is
// refused and its run fails fast instead of wedging the fleet.
func TestDuplicateRejoinAcceptedOnce(t *testing.T) {
	g := gen.Gnp(300, 0.05, 3)
	const p = 2
	timeout := 3 * time.Second
	ref, err := Run(NewEngine(Loopback(p).WithTimeout(recoveryTimeout), g), recoverySparsifyJob())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var rejoinOK, rejoinFail atomic.Int32
	addrCh := make(chan string, 1)
	spec := Net(NetConfig{
		Listen: "127.0.0.1:0", Shards: p, Timeout: timeout,
		OnListen: func(addr string) { addrCh <- addr },
		Respawn: func(shard int, addr string) {
			for i := 0; i < 2; i++ { // two racing rejoiners for the one dead shard
				wg.Add(1)
				go func() {
					defer wg.Done()
					wspec := Worker(WorkerConfig{Join: addr, Shard: shard, Shards: p, Timeout: timeout})
					if _, err := Run(NewEngine(wspec, g), recoverySparsifyJob()); err != nil {
						rejoinFail.Add(1)
					} else {
						rejoinOK.Add(1)
					}
				}()
			}
		},
		MaxRespawns: 1, CheckpointEvery: 1,
	})
	go func() {
		_ = doomWorker(t, <-addrCh, g, 1, p, 50)
	}()
	res, err := Run(NewEngine(spec, g), recoverySparsifyJob())
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if ok, fail := rejoinOK.Load(), rejoinFail.Load(); ok != 1 || fail != 1 {
		t.Fatalf("rejoin race: %d accepted, %d refused; want exactly 1 and 1", ok, fail)
	}
	if res.Output.M() != ref.Output.M() {
		t.Fatalf("recovered m=%d vs failure-free %d", res.Output.M(), ref.Output.M())
	}
}

// pipePair wires two peerConns over an in-memory full-duplex pipe.
func pipePair(t *testing.T) (*peerConn, *peerConn) {
	t.Helper()
	ta, err := newNetTransport(10, 0, 2, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := newNetTransport(10, 1, 2, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ca, cb := net.Pipe()
	pa, pb := newPeerConn(ta, ca), newPeerConn(tb, cb)
	t.Cleanup(func() { ca.Close(); cb.Close() })
	return pa, pb
}

// TestChecksumMismatchRejected: a stream whose running CRC disagrees
// with the peer's frameCheck is rejected before any payload is
// decoded, and a check frame for the wrong round is rejected too.
func TestChecksumMismatchRejected(t *testing.T) {
	run := func(corrupt func(pb *peerConn), wantErr string, readRound uint32) {
		pa, pb := pipePair(t)
		errCh := make(chan error, 1)
		go func() {
			h := frameHeader{Type: frameRound, From: 1, To: 0, Round: 5, Count: 0}
			if err := pa.writeFrame(h, nil); err != nil {
				errCh <- err
				return
			}
			if err := pa.writeCheck(5); err != nil {
				errCh <- err
				return
			}
			errCh <- pa.flush()
		}()
		if _, _, err := pb.readFrame(frameRound); err != nil {
			t.Fatal(err)
		}
		corrupt(pb)
		err := pb.readCheck(readRound)
		if err == nil || !strings.Contains(err.Error(), wantErr) {
			t.Fatalf("want error containing %q, got %v", wantErr, err)
		}
		if werr := <-errCh; werr != nil {
			t.Fatal(werr)
		}
	}
	// The stream hash disagrees (as if a data frame was corrupted in
	// flight): rejected before decode.
	run(func(pb *peerConn) { pb.rsum ^= 0xdeadbeef }, "checksum mismatch", 5)
	// The check frame itself is for the wrong round: rejected.
	run(func(*peerConn) {}, "round", 6)
}

// TestChecksumAgreesEndToEnd: matching streams verify and both sums
// reset for the next barrier.
func TestChecksumAgreesEndToEnd(t *testing.T) {
	pa, pb := pipePair(t)
	go func() {
		h := frameHeader{Type: frameRound, From: 1, To: 0, Round: 9, Count: 0}
		_ = pa.writeFrame(h, nil)
		_ = pa.writeCheck(9)
		_ = pa.flush()
	}()
	if _, _, err := pb.readFrame(frameRound); err != nil {
		t.Fatal(err)
	}
	if err := pb.readCheck(9); err != nil {
		t.Fatal(err)
	}
	if pa.wsum != 0 || pb.rsum != 0 {
		t.Fatalf("sums not reset after check: wsum=%#x rsum=%#x", pa.wsum, pb.rsum)
	}
}

// TestWaitReadyToleratesStrays: non-protocol connections — a port
// scanner's garbage, a health check that connects and hangs up — are
// closed and the join window keeps accepting; the real worker still
// gets in. This was a bring-up bug: one stray used to abort the fleet.
func TestWaitReadyToleratesStrays(t *testing.T) {
	coord, err := ListenNet("127.0.0.1:0", 10, 2, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	joined := make(chan error, 1)
	go func() {
		// Stray 1: garbage bytes, then hang up.
		if c, err := net.Dial("tcp", coord.Addr()); err == nil {
			c.Write([]byte("GET / HTTP/1.1\r\n\r\n"))
			c.Close()
		}
		// Stray 2: connect and hang up immediately.
		if c, err := net.Dial("tcp", coord.Addr()); err == nil {
			c.Close()
		}
		tr, err := JoinNet(coord.Addr(), 10, 1, 2, 2*time.Second)
		if err == nil {
			defer tr.Close()
		}
		joined <- err
	}()
	if err := coord.WaitReady(); err != nil {
		t.Fatalf("strays aborted bring-up: %v", err)
	}
	if err := <-joined; err != nil {
		t.Fatal(err)
	}
}

// TestWaitReadyDeadlineSlides: each successful join refreshes the
// accept deadline, so P−1 workers no longer share a single timeout
// window — a worker may join later than the original deadline as long
// as it is within one timeout of the previous join. This was a
// bring-up bug: the deadline was set once for the whole window.
func TestWaitReadyDeadlineSlides(t *testing.T) {
	timeout := 2 * time.Second
	coord, err := ListenNet("127.0.0.1:0", 10, 3, timeout)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	var wg sync.WaitGroup
	for i, delay := range []time.Duration{1200 * time.Millisecond, 2600 * time.Millisecond} {
		wg.Add(1)
		go func(shard int, d time.Duration) {
			defer wg.Done()
			time.Sleep(d)
			tr, err := JoinNet(coord.Addr(), 10, shard, 3, timeout)
			if err != nil {
				t.Errorf("shard %d: %v", shard, err)
				return
			}
			tr.Close()
		}(i+1, delay)
	}
	// The second join lands at +2.6s — past the original 2s deadline,
	// inside the deadline slid by the first join at +1.2s.
	if err := coord.WaitReady(); err != nil {
		t.Fatalf("sliding deadline failed: %v", err)
	}
	wg.Wait()
}

// TestCollectiveRoundTagValidated: a peer whose collective sequence is
// out of step can no longer satisfy the wrong collective silently —
// the Round tag on collective frames is validated on both sides.
func TestCollectiveRoundTagValidated(t *testing.T) {
	coord, err := ListenNet("127.0.0.1:0", 10, 2, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	workerErr := make(chan error, 1)
	go func() {
		workerErr <- func() (err error) {
			defer recoverNetError(&err)
			tr, err := JoinNet(coord.Addr(), 10, 1, 2, 2*time.Second)
			if err != nil {
				return err
			}
			defer tr.Close()
			tr.seq = 5 // desynchronize: frames will carry collective 6
			tr.AllMaxInt32(3)
			return nil
		}()
	}()
	coordErr := func() (err error) {
		defer recoverNetError(&err)
		if err := coord.WaitReady(); err != nil {
			return err
		}
		coord.AllMaxInt32(1)
		return nil
	}()
	if coordErr == nil || !strings.Contains(coordErr.Error(), "collective") {
		t.Fatalf("coordinator accepted a desynchronized collective: %v", coordErr)
	}
	// The worker is still blocked on the result (heartbeats keep it
	// alive); tearing the coordinator down unblocks it with an error.
	coord.Close()
	if err := <-workerErr; err == nil {
		t.Fatal("desynchronized worker finished cleanly")
	}
}

// TestHeartbeatsKeepSlowComputeAlive: with a 300ms frame timeout a
// worker that computes for 900ms between frames would previously kill
// the run; heartbeats (every timeout/4) keep both directions alive, so
// only real death — not slow rounds — trips the timeout.
func TestHeartbeatsKeepSlowComputeAlive(t *testing.T) {
	timeout := 300 * time.Millisecond
	coord, err := ListenNet("127.0.0.1:0", 10, 2, timeout)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	got := make(chan int32, 1)
	go func() {
		_ = func() (err error) {
			defer recoverNetError(&err)
			tr, err := JoinNet(coord.Addr(), 10, 1, 2, timeout)
			if err != nil {
				t.Error(err)
				got <- -1
				return err
			}
			defer tr.Close()
			time.Sleep(3 * timeout) // "compute" far past the frame timeout
			got <- tr.AllMaxInt32(5)
			return nil
		}()
	}()
	res := func() (x int32) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("coordinator died waiting out the slow worker: %v", r)
			}
		}()
		if err := coord.WaitReady(); err != nil {
			t.Fatal(err)
		}
		return coord.AllMaxInt32(2)
	}()
	if res != 5 {
		t.Fatalf("coordinator max=%d, want 5", res)
	}
	if w := <-got; w != 5 {
		t.Fatalf("worker max=%d, want 5", w)
	}
}

// runMeshLinkLossWorker joins the fleet as `shard` on the mesh plane
// with fault injection that severs the worker's DIRECT links after
// failFrames written frames — the hub stays alive. To the fleet this
// is what losing an async round batch looks like without losing the
// process: both endpoints of the dead link park on their hubs and
// report a fault, and the coordinator must recover off the report,
// because no hub connection ever goes dead on its own. The worker
// follows the engine's recovery protocol: ack rollbacks and re-run
// until the attempt completes or fails for real.
func runMeshLinkLossWorker(t *testing.T, addr string, g *graph.Graph, shard, p, failFrames int) error {
	t.Helper()
	tr, err := JoinMesh(addr, "", g.N, shard, p, recoveryTimeout)
	if err != nil {
		return err
	}
	defer tr.Close()
	tr.failAfterFrames = failFrames
	tr.failAct = func() {
		for _, pc := range tr.meshPeers {
			if pc != nil {
				pc.c.Close()
			}
		}
	}
	for {
		_, err := runNetJob(tr, graph.PartitionOf(g, shard, p), recoverySparsifyJob(), nil)
		var rb *rollbackError
		if errors.As(err, &rb) {
			if aerr := tr.ackRollback(rb.generation); aerr != nil {
				return aerr
			}
			continue
		}
		return err
	}
}

// TestMeshRunSurvivesLinkLoss pins the fault-report path of mesh
// recovery: a worker's direct links are severed mid-run while every
// hub connection stays alive. The coordinator cannot see the break on
// its own sockets — it learns of it only from the survivors'
// frameFault reports, which also name the shard to recover (the
// parked reporter's heartbeats would otherwise keep the coordinator
// blocked on a live connection until the rollback park expired and
// killed the whole fleet — the deadlock this frame exists to break).
// Whichever endpoint the first-read report blames is rolled back and
// respawned; the other survivor retries; output and ledger stay
// bit-identical, and the recovery completes well inside the park
// window.
func TestMeshRunSurvivesLinkLoss(t *testing.T) {
	g := gen.Gnp(400, 0.05, 7)
	const p = 3
	ref, err := Run(NewEngine(Mesh(p).WithTimeout(recoveryTimeout), g), recoverySparsifyJob())
	if err != nil {
		t.Fatal(err)
	}

	var respawns atomic.Int32
	var wg sync.WaitGroup
	addrCh := make(chan string, 1)
	spec := Net(NetConfig{
		Listen: "127.0.0.1:0", Shards: p, Timeout: recoveryTimeout, Mesh: true,
		OnListen: func(addr string) { addrCh <- addr },
		Respawn: func(shard int, addr string) {
			respawns.Add(1)
			wg.Add(1)
			go func() {
				defer wg.Done()
				wspec := Worker(WorkerConfig{Join: addr, Shard: shard, Shards: p,
					Timeout: recoveryTimeout, JoinRetry: recoveryTimeout, Mesh: true})
				if _, err := Run(NewEngine(wspec, g), recoverySparsifyJob()); err != nil {
					t.Errorf("respawned shard %d: %v", shard, err)
				}
			}()
		},
		MaxRespawns: 2, CheckpointEvery: 1,
	})
	// Exactly one of the two original workers is blamed by the first
	// report the coordinator reads (each endpoint of the severed link
	// blames the other) — that one is torn down and respawned, the
	// other retries cleanly. Which one wins the race is legitimately
	// nondeterministic, so collect both errors and assert the count.
	workerErrs := make([]error, p)
	go func() {
		addr := <-addrCh
		wg.Add(1)
		go func() { // the healthy survivor, on the public engine path
			defer wg.Done()
			wspec := Worker(WorkerConfig{Join: addr, Shard: 2, Shards: p,
				Timeout: recoveryTimeout, Mesh: true})
			_, err := Run(NewEngine(wspec, g), recoverySparsifyJob())
			workerErrs[2] = err
		}()
		wg.Add(1)
		go func() { // severs its own direct links mid-run, hub intact
			defer wg.Done()
			workerErrs[1] = runMeshLinkLossWorker(t, addr, g, 1, p, 900)
		}()
	}()

	start := time.Now()
	res, err := Run(NewEngine(spec, g), recoverySparsifyJob())
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 2*recoveryTimeout {
		t.Fatalf("recovery took %v — the park window expired instead of the fault report landing", elapsed)
	}
	if n := respawns.Load(); n != 1 {
		t.Fatalf("respawns=%d, want 1 (the blamed endpoint of the severed link)", n)
	}
	var failed int
	for s, werr := range workerErrs {
		if werr != nil {
			failed++
			t.Logf("shard %d torn down as blamed: %v", s, werr)
		}
	}
	if failed != 1 {
		t.Fatalf("%d original workers failed, want exactly 1 (the blamed endpoint)", failed)
	}
	if !reflect.DeepEqual(res.Stats, ref.Stats) {
		t.Fatalf("recovered ledger diverges:\n%+v\nvs failure-free\n%+v", res.Stats, ref.Stats)
	}
	if res.Output.M() != ref.Output.M() {
		t.Fatalf("recovered m=%d vs failure-free %d", res.Output.M(), ref.Output.M())
	}
	for i := range ref.Output.Edges {
		if res.Output.Edges[i] != ref.Output.Edges[i] {
			t.Fatalf("recovered edge %d differs from the failure-free run", i)
		}
	}
}

// TestPeerFailFaultAttribution pins the attribution override: a
// faultReport anywhere in the error chain re-routes the recovery to
// the reported suspect, not the shard whose connection carried the
// report; a report naming an impossible shard falls back to the
// carrying connection.
func TestPeerFailFaultAttribution(t *testing.T) {
	tr := &NetTransport{part: newPartition(100, 3)}
	var wf *workerFailure
	err := tr.peerFail(1, errors.New("plain read failure"))
	if !errors.As(err, &wf) || wf.shard != 1 {
		t.Fatalf("plain failure attributed to %v, want shard 1", err)
	}
	err = tr.peerFail(1, &faultReport{reporter: 1, suspect: 2})
	if !errors.As(err, &wf) || wf.shard != 2 {
		t.Fatalf("bare fault report attributed to %v, want shard 2", err)
	}
	err = tr.peerFail(1, &NetError{Err: &faultReport{reporter: 1, suspect: 2}})
	if !errors.As(err, &wf) || wf.shard != 2 {
		t.Fatalf("wrapped fault report attributed to %v, want shard 2", err)
	}
	err = tr.peerFail(1, &faultReport{reporter: 1, suspect: 7})
	if !errors.As(err, &wf) || wf.shard != 1 {
		t.Fatalf("out-of-range suspect attributed to %v, want fallback shard 1", err)
	}
}
