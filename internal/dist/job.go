package dist

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Job is a distributed algorithm packaged as a value — the second axis
// of the package, orthogonal to the TransportSpec. A job bundles a
// registry name, a wire schema for its parameters (what a coordinator
// broadcasts so worker processes adopt the exact same run), the
// per-round body executed over each process's partition view, and the
// reducer that assembles the shards' partial results. R is the
// assembled output type Engine.Run returns inside its Result.
//
// Two jobs are built in: SpannerJob (Theorem 2's Baswana–Sen spanner)
// and SparsifyJob (Algorithm 2 / Theorem 5's sparsifier). They are
// registered in jobTable, which cmd/distworker resolves by name
// (JobNames lists the keys) and which validates every broadcast job
// header before a worker trusts it.
type Job[R any] struct {
	impl jobImpl[R]
}

// Name returns the job's registry key — its identity in jobTable, in
// cmd/distworker's -job flag, and on the wire.
func (j Job[R]) Name() string {
	if j.impl == nil {
		return ""
	}
	return j.impl.name()
}

// jobImpl is what a built-in algorithm implements to become a Job: the
// wire identity, the per-process round body, and the reducer. All
// methods must be safe to call on every process of a run — assemble is
// called by coordinator and workers alike (workers contribute their
// blobs to the gather and receive the zero R).
type jobImpl[R any] interface {
	// name is the registry key and wire identity.
	name() string
	// params returns the job-specific wire parameter block; its length
	// must equal the registered paramsLen (TestJobWireSchemas pins the
	// encoding as golden bytes).
	params() []byte
	// withParams returns a copy of the job with the parameters decoded
	// from a received block — how a Worker engine adopts the
	// coordinator's exact run.
	withParams(b []byte) (jobImpl[R], error)
	// runFull executes the algorithm over the whole graph on a
	// single-process transport and returns the assembled output plus
	// the peak view footprint in words.
	runFull(re *roundEngine, g *graph.Graph) (R, int)
	// runPart executes this process's shard of the algorithm over its
	// partition view, billing rounds to re. ck is the run's recovery
	// checkpoint (never nil on the network path): the job fast-forwards
	// through ck's recorded epochs without network rounds, records the
	// epochs it completes live, and rejects a checkpoint that cannot
	// belong to it (a protocol violation). Jobs without mid-run state
	// ignore recording and replay from the top on recovery.
	runPart(re *roundEngine, part *graph.Partition, ck *ckptState) partOut
	// assemble merges the shards' partials: every process contributes
	// its blob, the coordinator (shard 0) receives the assembled R,
	// workers receive the zero value.
	assemble(tr *NetTransport, part *graph.Partition, po partOut) (R, error)
}

// partOut is one process's partial result of a partition run.
type partOut struct {
	// peak is the largest edge-table footprint (words) any round's view
	// reached on this process — the measured O(m_incident) bound.
	peak int
	// data is the job-specific partial (consumed by the job's assemble).
	data any
}

// Job names of the built-ins.
const (
	jobNameSpanner  = "spanner"
	jobNameSparsify = "sparsify"
)

// jobTable registers the built-in jobs: the key is the wire name a
// coordinator broadcasts (and the -job value cmd/distworker resolves),
// paramsLen pins the byte length of the job's wire parameter block so
// a mixed-version run fails loudly instead of misreading parameters.
var jobTable = map[string]struct{ paramsLen int }{
	jobNameSpanner:  {paramsLen: spannerParamsLen},
	jobNameSparsify: {paramsLen: sparsifyParamsLen},
}

// JobNames returns the registered job names, sorted — what
// cmd/distworker reports when asked for an unknown -job.
func JobNames() []string {
	names := make([]string, 0, len(jobTable))
	for name := range jobTable {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// The job wire header: what a coordinator broadcasts before the first
// round so every worker process adopts — and cross-checks — the same
// job. Fixed little-endian layout (TestJobWireSchemas pins it):
//
//	[0:4)   jobWireVersion
//	[4:12)  global vertex count N
//	[12:20) global edge count M
//	[20:32) job name, NUL-padded to 12 bytes
//	[32:36) parameter block length
//	[36:..) job-specific parameter block (see each job's params method)
const (
	jobWireVersion = uint32(2) // v1 was the fixed sparsify-only jobSpec
	jobNameLen     = 12
	jobHeaderLen   = 36
)

// encodeJobHeader frames a job's wire identity and parameters.
func encodeJobHeader(name string, n, m int, params []byte) []byte {
	if len(name) > jobNameLen {
		panic(fmt.Sprintf("dist: job name %q exceeds %d bytes", name, jobNameLen))
	}
	b := make([]byte, jobHeaderLen+len(params))
	binary.LittleEndian.PutUint32(b[0:], jobWireVersion)
	binary.LittleEndian.PutUint64(b[4:], uint64(n))
	binary.LittleEndian.PutUint64(b[12:], uint64(m))
	copy(b[20:20+jobNameLen], name)
	binary.LittleEndian.PutUint32(b[32:], uint32(len(params)))
	copy(b[jobHeaderLen:], params)
	return b
}

// decodeJobHeader validates a broadcast job header against the
// registry and returns the job name, global sizes, and parameter
// block.
func decodeJobHeader(b []byte) (name string, n, m int, params []byte, err error) {
	if len(b) < jobHeaderLen {
		return "", 0, 0, nil, fmt.Errorf("dist: job header is %d bytes, want >= %d", len(b), jobHeaderLen)
	}
	if v := binary.LittleEndian.Uint32(b[0:]); v != jobWireVersion {
		return "", 0, 0, nil, fmt.Errorf("dist: job wire version %d, want %d (mixed-version run?)", v, jobWireVersion)
	}
	n = int(binary.LittleEndian.Uint64(b[4:]))
	m = int(binary.LittleEndian.Uint64(b[12:]))
	raw := b[20 : 20+jobNameLen]
	end := 0
	for end < jobNameLen && raw[end] != 0 {
		end++
	}
	name = string(raw[:end])
	entry, ok := jobTable[name]
	if !ok {
		return "", 0, 0, nil, fmt.Errorf("dist: coordinator broadcast unregistered job %q (registered: %v)", name, JobNames())
	}
	plen := int(binary.LittleEndian.Uint32(b[32:]))
	if plen != entry.paramsLen || len(b) != jobHeaderLen+plen {
		return "", 0, 0, nil, fmt.Errorf("dist: job %q parameter block is %d bytes in a %d-byte header, want %d (mixed-version run?)",
			name, plen, len(b), entry.paramsLen)
	}
	return name, n, m, b[jobHeaderLen:], nil
}

// adoptJobHeader is the worker side of the job broadcast: validate the
// header against the local job value and partition, then adopt the
// coordinator's parameters.
func adoptJobHeader[R any](impl jobImpl[R], blob []byte, part *graph.Partition) (jobImpl[R], error) {
	name, n, m, params, err := decodeJobHeader(blob)
	if err != nil {
		return nil, err
	}
	if name != impl.name() {
		return nil, fmt.Errorf("dist: coordinator is running job %q, this worker was started for %q", name, impl.name())
	}
	if n != part.N || m != part.M {
		return nil, fmt.Errorf("dist: job header (n=%d m=%d) does not match partition (n=%d m=%d)", n, m, part.N, part.M)
	}
	return impl.withParams(params)
}
