package dist_test

// Golden WireBytes pins for the loopback transport. WireBytes is
// computed at writeFrame append time, before any batching, so the
// vectored-write path must reproduce the per-frame protocol's byte
// count exactly — these values were captured before the batching
// change landed and must never drift without a deliberate wire-format
// bump (TestJobWireSchemas pins the frame encodings themselves; this
// pins the end-to-end byte totals, framing and relays included).

import (
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/gen"
)

func TestLoopbackWireBytesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback socket runs skipped in -short")
	}
	g := gen.Gnp(240, 0.1, 7)
	want := map[int][2]int64{
		// P -> {sparsify, spanner} WireBytes on this graph, pre-batching.
		2: {2360192, 637284},
		3: {4817840, 1211360},
	}
	for _, p := range []int{2, 3} {
		spec := dist.Loopback(p).WithTimeout(30 * time.Second)
		sp := runSparsify(t, spec, g, 0.75, 4, 0, 11)
		sn := runSpanner(t, spec, g, 0, 11)
		if sp.WireBytes != want[p][0] {
			t.Errorf("P=%d sparsify WireBytes = %d, want %d (wire protocol changed?)", p, sp.WireBytes, want[p][0])
		}
		if sn.WireBytes != want[p][1] {
			t.Errorf("P=%d spanner WireBytes = %d, want %d (wire protocol changed?)", p, sn.WireBytes, want[p][1])
		}
	}
}
