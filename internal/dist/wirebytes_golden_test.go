package dist_test

// Golden WireBytes pins for the loopback transport. WireBytes is
// computed at writeFrame append time, before any batching, so the
// vectored-write path must reproduce the per-frame protocol's byte
// count exactly — these values were captured before the batching
// change landed and must never drift without a deliberate wire-format
// bump (TestJobWireSchemas pins the frame encodings themselves; this
// pins the end-to-end byte totals, framing and relays included).

import (
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/gen"
)

func TestLoopbackWireBytesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback socket runs skipped in -short")
	}
	g := gen.Gnp(240, 0.1, 7)
	want := map[int][2]int64{
		// P -> {sparsify, spanner} WireBytes on this graph, pre-batching.
		2: {2360192, 637284},
		3: {4817840, 1211360},
	}
	for _, p := range []int{2, 3} {
		spec := dist.Loopback(p).WithTimeout(30 * time.Second)
		sp := runSparsify(t, spec, g, 0.75, 4, 0, 11)
		sn := runSpanner(t, spec, g, 0, 11)
		if sp.WireBytes != want[p][0] {
			t.Errorf("P=%d sparsify WireBytes = %d, want %d (wire protocol changed?)", p, sp.WireBytes, want[p][0])
		}
		if sn.WireBytes != want[p][1] {
			t.Errorf("P=%d spanner WireBytes = %d, want %d (wire protocol changed?)", p, sn.WireBytes, want[p][1])
		}
	}
}

// TestMeshWireBytesGolden pins the full-mesh data plane's byte totals
// against the star's on the same (graph, seed, P) runs, proving the
// topology claim in numbers: every worker↔worker round batch the star
// relays twice (origin → coordinator, coordinator → destination)
// crosses a mesh wire exactly once, so the mesh's DataWireBytes is
// exactly HALF the star's whenever the mesh is active (P > 2; at
// P = 2 there is no worker↔worker traffic and the planes are
// byte-identical). The absolute mesh totals are pinned too, like the
// star's above, so the handshake/bring-up overhead cannot silently
// grow.
func TestMeshWireBytesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback socket runs skipped in -short")
	}
	g := gen.Gnp(240, 0.1, 7)
	// P -> {sparsify, spanner} totals on the mesh plane.
	wantWire := map[int][2]int64{
		2: {2360192, 637284}, // mesh inactive at P=2: identical to the star pins
		3: {3311326, 875018}, // vs the star's {4817840, 1211360}: ~31% / ~28% fewer total bytes
	}
	wantData := map[int][2]int64{
		2: {0, 0},            // no worker↔worker traffic at P=2
		3: {1522060, 338592}, // the star writes exactly 2× these: {3044120, 677184}
	}
	for _, p := range []int{2, 3} {
		star := dist.Loopback(p).WithTimeout(30 * time.Second)
		mesh := dist.Mesh(p).WithTimeout(30 * time.Second)
		starSp := runSparsify(t, star, g, 0.75, 4, 0, 11)
		starSn := runSpanner(t, star, g, 0, 11)
		meshSp := runSparsify(t, mesh, g, 0.75, 4, 0, 11)
		meshSn := runSpanner(t, mesh, g, 0, 11)
		if meshSp.WireBytes != wantWire[p][0] || meshSn.WireBytes != wantWire[p][1] {
			t.Errorf("P=%d mesh WireBytes = {%d, %d}, want {%d, %d} (wire protocol changed?)",
				p, meshSp.WireBytes, meshSn.WireBytes, wantWire[p][0], wantWire[p][1])
		}
		if meshSp.DataWireBytes != wantData[p][0] || meshSn.DataWireBytes != wantData[p][1] {
			t.Errorf("P=%d mesh DataWireBytes = {%d, %d}, want {%d, %d}",
				p, meshSp.DataWireBytes, meshSn.DataWireBytes, wantData[p][0], wantData[p][1])
		}
		// The topology invariant itself: star relays every data byte twice.
		wantFactor := int64(2)
		if p <= 2 {
			wantFactor = 1 // no worker↔worker traffic; both planes report 0
		}
		if starSp.DataWireBytes != wantFactor*meshSp.DataWireBytes {
			t.Errorf("P=%d sparsify: star DataWireBytes %d != %d× mesh %d",
				p, starSp.DataWireBytes, wantFactor, meshSp.DataWireBytes)
		}
		if starSn.DataWireBytes != wantFactor*meshSn.DataWireBytes {
			t.Errorf("P=%d spanner: star DataWireBytes %d != %d× mesh %d",
				p, starSn.DataWireBytes, wantFactor, meshSn.DataWireBytes)
		}
	}
}
