package dist

import (
	"strings"
	"testing"
)

// TestPhaseMergeSemantics: BeginPhase with a repeated name re-targets
// the existing row instead of appending a new one, so iterated stages
// report one merged row, and the merged rows still partition the
// totals.
func TestPhaseMergeSemantics(t *testing.T) {
	e := newRoundEngine(4)
	e.BeginPhase("a")
	e.Deliver(1, Message{From: 0, Kind: MsgKeep})
	e.EndRound()
	e.BeginPhase("b")
	e.Deliver(2, Message{From: 0, Kind: MsgCenter})
	e.EndRound()
	e.BeginPhase("a") // merge back into the first row
	e.Deliver(3, Message{From: 0, Kind: MsgKeep})
	e.Deliver(0, Message{From: 3, Kind: MsgKeep})
	e.EndRound()
	st := e.Stats()
	if len(st.Phases) != 2 {
		t.Fatalf("want 2 merged phases, got %+v", st.Phases)
	}
	a, b := st.Phases[0], st.Phases[1]
	if a.Name != "a" || b.Name != "b" {
		t.Fatalf("phase order not first-use order: %+v", st.Phases)
	}
	if a.Rounds != 2 || a.Messages != 3 || a.Words != 3 {
		t.Fatalf("merged phase a wrong: %+v", a)
	}
	if b.Rounds != 1 || b.Messages != 1 || b.Words != 3 {
		t.Fatalf("phase b wrong: %+v", b)
	}
	if st.Rounds != a.Rounds+b.Rounds || st.Messages != a.Messages+b.Messages ||
		st.Words != a.Words+b.Words {
		t.Fatalf("phases don't partition totals: %+v", st)
	}
	if st.MaxMessageWords != 3 {
		t.Fatalf("max message width %d want 3 (MsgCenter)", st.MaxMessageWords)
	}
}

// TestUnnamedRoundsFallIntoMain: an EndRound before any BeginPhase
// opens the implicit "main" phase rather than losing the bill.
func TestUnnamedRoundsFallIntoMain(t *testing.T) {
	e := newRoundEngine(2)
	e.Deliver(0, Message{From: 1, Kind: MsgKeep})
	e.EndRound()
	st := e.Stats()
	if len(st.Phases) != 1 || st.Phases[0].Name != "main" || st.Phases[0].Messages != 1 {
		t.Fatalf("implicit main phase missing: %+v", st.Phases)
	}
}

// TestCrossShardAccounting drives a sharded engine by hand and checks
// the CrossShard split message by message: traffic between vertices of
// one shard bills only the plain counters, traffic between shards bills
// both, and the phase rows carry the same split.
func TestCrossShardAccounting(t *testing.T) {
	// 4 vertices, 2 shards: shard 0 owns {0,1}, shard 1 owns {2,3}.
	e := newRoundEngineOn(4, NewShardedTransport(4, 2))
	tr := e.Transport()
	if tr.ShardOf(1) != 0 || tr.ShardOf(2) != 1 {
		t.Fatalf("unexpected partition: ShardOf(1)=%d ShardOf(2)=%d", tr.ShardOf(1), tr.ShardOf(2))
	}
	e.BeginPhase("x")
	e.Deliver(1, Message{From: 0, Kind: MsgKeep})   // local within shard 0: 1 word
	e.Deliver(3, Message{From: 2, Kind: MsgCenter}) // local within shard 1: 3 words
	e.Deliver(2, Message{From: 1, Kind: MsgCenter}) // cross 0→1: 3 words
	e.Deliver(0, Message{From: 3, Kind: MsgKeep})   // cross 1→0: 1 word
	e.EndRound()
	st := e.Stats()
	if st.Shards != 2 {
		t.Fatalf("Shards=%d want 2", st.Shards)
	}
	if st.Messages != 4 || st.Words != 8 {
		t.Fatalf("totals wrong: %+v", st)
	}
	if st.CrossShardMessages != 2 || st.CrossShardWords != 4 {
		t.Fatalf("cross-shard split wrong: %+v", st)
	}
	ph := st.Phases[0]
	if ph.CrossShardMessages != 2 || ph.CrossShardWords != 4 {
		t.Fatalf("phase cross-shard split wrong: %+v", ph)
	}
	// Delivery happened: each vertex got exactly one message, and the
	// cross-shard ones arrived intact.
	for v := int32(0); v < 4; v++ {
		if got := len(e.Mailbox(v)); got != 1 {
			t.Fatalf("mailbox[%d] has %d messages", v, got)
		}
	}
	if m := e.Mailbox(2)[0]; m.From != 1 || m.Kind != MsgCenter {
		t.Fatalf("cross-shard message mangled: %+v", m)
	}
	// A message with no sender (From < 0) is billed as local to the
	// recipient's shard.
	e.Deliver(0, Message{From: -1, Kind: MsgSampled})
	e.EndRound()
	st2 := e.Stats()
	if st2.CrossShardMessages != st.CrossShardMessages {
		t.Fatalf("senderless message billed cross-shard: %+v", st2)
	}
}

// TestStatsStringCrossShard: the compact rendering mentions the shard
// split exactly when there is one.
func TestStatsStringCrossShard(t *testing.T) {
	mem := Stats{Rounds: 1, Messages: 2, Words: 2, Shards: 1}
	if s := mem.String(); strings.Contains(s, "shards=") {
		t.Fatalf("single-shard ledger should not render a shard split: %s", s)
	}
	sh := Stats{Rounds: 1, Messages: 2, Words: 2, Shards: 4, CrossShardMessages: 1, CrossShardWords: 1}
	if s := sh.String(); !strings.Contains(s, "shards=4") || !strings.Contains(s, "xwords=1") {
		t.Fatalf("sharded ledger missing split: %s", s)
	}
}

// TestMailboxRecycling: mailbox slices are reused across rounds on both
// transports — the contract that callers must not retain them.
func TestMailboxRecycling(t *testing.T) {
	for name, e := range map[string]*roundEngine{
		"mem":     newRoundEngine(2),
		"sharded": newRoundEngineOn(2, NewShardedTransport(2, 2)),
	} {
		e.Deliver(0, Message{From: 1, Kind: MsgKeep, A: 7})
		e.EndRound()
		if len(e.Mailbox(0)) != 1 || e.Mailbox(0)[0].A != 7 {
			t.Fatalf("%s: first delivery lost: %+v", name, e.Mailbox(0))
		}
		e.EndRound() // nothing staged: mailbox must come back empty
		if len(e.Mailbox(0)) != 0 {
			t.Fatalf("%s: stale mailbox survived a round: %+v", name, e.Mailbox(0))
		}
	}
}
