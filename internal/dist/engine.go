package dist

// The round engine: a simulated synchronous message-passing network
// (the CONGEST-style model of the paper's Section on distributed
// implementation). Vertices are the processors; each round every vertex
// may send word-bounded messages to neighbors, and every message sent
// in round r is readable from the recipient's mailbox during round r+1.
//
// The simulation is receiver-staged: the goroutine that owns vertex v
// is the only one allowed to call Deliver(v, ...), which is how the
// parallel per-vertex loops of the algorithms stay race-free while the
// ledger still counts every directed message exactly once. Message
// payloads always carry snapshot state from the start of the round, so
// the staging direction is unobservable to the algorithm.

// MsgKind identifies the payload schema of a message.
type MsgKind uint8

const (
	// MsgSampled travels parent→child down a cluster tree and carries
	// the cluster's sampled bit for the current iteration.
	MsgSampled MsgKind = iota
	// MsgCenter is the per-iteration neighbor exchange: the sender's
	// cluster id, its cluster-tree depth, and the cluster-sampled bit.
	MsgCenter
	// MsgAdd tells the recipient that the sender placed their shared
	// edge in the spanner.
	MsgAdd
	// MsgDrop tells the recipient that the sender discarded their
	// shared edge from the working edge set E'.
	MsgDrop
	// MsgNewCenter is the post-decision center exchange used to discard
	// intra-cluster edges and to run the final vertex–cluster joins.
	MsgNewCenter
	// MsgKeep announces a uniform-sampling verdict for an off-bundle
	// edge during Algorithm 1's sampling step.
	MsgKeep
)

// Words returns the payload size of the kind in O(log n)-bit words.
func (k MsgKind) Words() int {
	if k == MsgCenter {
		return 3
	}
	return 1
}

// Message is one payload crossing one edge in one round. Port is the
// edge over which it traveled — addressing, not payload, so it does not
// count toward Words (a real network identifies the arrival link for
// free). A, B, and C are the payload words.
type Message struct {
	From    int32
	Port    int32
	Kind    MsgKind
	A, B, C int32
}

// Engine simulates the synchronous network for a fixed vertex set and
// accumulates the communication ledger.
type Engine struct {
	n       int
	staged  [][]Message // messages sent this round, staged by recipient
	mailbox [][]Message // messages delivered by the previous EndRound
	stats   Stats
	cur     int // index of the current phase in stats.Phases
}

// NewEngine returns an engine for n vertices with an empty ledger.
func NewEngine(n int) *Engine {
	e := &Engine{
		n:       n,
		staged:  make([][]Message, n),
		mailbox: make([][]Message, n),
		cur:     -1,
	}
	return e
}

// BeginPhase directs subsequent rounds' accounting at the named phase,
// creating it on first use; repeated names merge (iterated stages show
// up as one row).
func (e *Engine) BeginPhase(name string) {
	for i := range e.stats.Phases {
		if e.stats.Phases[i].Name == name {
			e.cur = i
			return
		}
	}
	e.stats.Phases = append(e.stats.Phases, PhaseStats{Name: name})
	e.cur = len(e.stats.Phases) - 1
}

// Deliver stages a message for vertex `to` in the current round. It
// must be called only from the goroutine that owns `to` (per-vertex
// sharding), or from a single goroutine.
func (e *Engine) Deliver(to int32, m Message) {
	e.staged[to] = append(e.staged[to], m)
}

// EndRound closes the current synchronous round: staged messages are
// billed to the ledger and become the mailboxes readable until the next
// EndRound. Mailbox slices are recycled — callers must not retain them
// across two EndRound calls.
func (e *Engine) EndRound() {
	if e.cur < 0 {
		e.BeginPhase("main")
	}
	var msgs, words int64
	maxW := e.stats.MaxMessageWords
	for v := range e.staged {
		for _, m := range e.staged[v] {
			w := m.Kind.Words()
			msgs++
			words += int64(w)
			if w > maxW {
				maxW = w
			}
		}
	}
	e.staged, e.mailbox = e.mailbox, e.staged
	for v := range e.staged {
		e.staged[v] = e.staged[v][:0]
	}
	e.stats.Rounds++
	e.stats.Messages += msgs
	e.stats.Words += words
	e.stats.MaxMessageWords = maxW
	p := &e.stats.Phases[e.cur]
	p.Rounds++
	p.Messages += msgs
	p.Words += words
}

// Mailbox returns the messages delivered to v by the last EndRound.
func (e *Engine) Mailbox(v int32) []Message { return e.mailbox[v] }

// Stats returns a copy of the accumulated ledger.
func (e *Engine) Stats() Stats {
	s := e.stats
	s.Phases = append([]PhaseStats(nil), e.stats.Phases...)
	return s
}
