package dist

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/graph"
)

// Engine is the single entry point of the distributed subsystem: it
// binds a TransportSpec (how rounds execute) to an input (the graph or
// one shard's partition of it) and owns everything between — partition
// loading, the exchange core, the round-tally handshake, and the
// gathering of Stats, PeakViewWords, and WireBytes. Run(engine, job)
// executes any Job on it; the same job value runs unchanged on every
// spec, which is the paper's one-algorithm-many-models promise made
// into an API shape.
type Engine struct {
	spec TransportSpec
	g    *graph.Graph
	part *graph.Partition
}

// NewEngine returns an engine over a full graph. Every spec accepts
// it: the in-process specs run the graph directly, Loopback carves one
// partition per worker goroutine, and the multi-process specs (Net,
// Worker) carve this process's own shard — use NewPartitionEngine
// instead when the shard was loaded from a partition file and the full
// graph was never materialized.
func NewEngine(spec TransportSpec, g *graph.Graph) *Engine {
	return &Engine{spec: spec, g: g}
}

// NewPartitionEngine returns an engine over one pre-loaded partition —
// the memory-honest input of the multi-process specs (Net and Worker),
// where a process materializes only its shard's adjacency plus
// boundary edges (graphio.ReadPartition).
func NewPartitionEngine(spec TransportSpec, part *graph.Partition) *Engine {
	return &Engine{spec: spec, part: part}
}

// Result is Run's envelope around a job's output: the assembled result
// plus the run-wide honesty counters every spec reports.
type Result[R any] struct {
	// Output is the job's assembled result. On a Worker engine it is
	// the zero value — assembly happens at the coordinator.
	Output R
	// Stats is the communication ledger of the run (Theorems 2 and 5).
	// It is identical on every spec and, for multi-process runs, on
	// every process (the round-tally handshake).
	Stats Stats
	// PeakViewWords is the largest edge-table footprint (in words, see
	// view.tableWords) any round's working view reached. On the
	// single-process specs this is Θ(m) — one process holds everything;
	// on a multi-process run the coordinator reports the MAXIMUM across
	// all processes, i.e. the per-worker O(m_incident) bound the memory
	// regression tests pin and E13 reports, while a Worker engine
	// reports its own local peak.
	PeakViewWords int
	// WireBytes is the total bytes put on real sockets, frame headers
	// included: zero for the in-process specs, the sum across all
	// processes at a Loopback, Mesh, or Net coordinator, and this
	// process's own bytes on a Worker engine.
	WireBytes int64
	// DataWireBytes is the worker↔worker round-batch subset of
	// WireBytes — the bytes the data-plane topology governs. The star
	// (Loopback, Net) writes every such batch twice fleet-wide (origin
	// to coordinator, coordinator to destination); the full mesh
	// (Mesh, NetConfig.Mesh) writes it once, exactly halving this
	// counter for the same run.
	DataWireBytes int64
}

// Run executes a job on an engine and returns the typed result. (This
// is Engine.Run in spirit; it is a package function only because Go
// methods cannot introduce type parameters.)
//
// The spec decides the execution shape: Mem and Sharded run the whole
// graph in this process; Loopback runs the full multi-process protocol
// over loopback TCP with worker goroutines; Net drives a real
// coordinator — listen, broadcast the job's name and parameters, run
// shard 0, assemble — and Worker drives one real worker shard, which
// adopts the coordinator's broadcast parameters (the local job value
// supplies the algorithm and is cross-checked against the broadcast
// name) and returns the zero Output.
//
// For equal (job, seed) the output and Stats are bit-identical on
// every spec. Network failures (I/O errors, timeouts, protocol or job
// mismatches) surface as errors; the in-process specs cannot fail.
func Run[R any](e *Engine, job Job[R]) (Result[R], error) {
	if job.impl == nil {
		return Result[R]{}, fmt.Errorf("dist: Run needs a job (SpannerJob, SparsifyJob, ...)")
	}
	switch e.spec.kind {
	case specDefault, specMem, specSharded:
		return runInProcess(e, job)
	case specLoopback, specMesh:
		return runLoopbackJob(e, job)
	case specNet:
		return runNetCoordinatorJob(e, job)
	case specWorker:
		return runNetWorkerJob(e, job)
	default:
		return Result[R]{}, fmt.Errorf("dist: unknown transport spec %v", e.spec)
	}
}

// runInProcess executes the job's full-graph path on a single-process
// transport (Mem or Sharded).
func runInProcess[R any](e *Engine, job Job[R]) (Result[R], error) {
	if e.g == nil {
		return Result[R]{}, fmt.Errorf("dist: the %s spec needs a full graph (use NewEngine)", e.spec)
	}
	var tr Transport
	if e.spec.kind == specSharded {
		tr = NewShardedTransport(e.g.N, e.spec.shards)
	} else {
		tr = NewMemTransport(e.g.N)
	}
	re := newRoundEngineOn(e.g.N, tr)
	out, peak := job.impl.runFull(re, e.g)
	return Result[R]{Output: out, Stats: re.Stats(), PeakViewWords: peak}, nil
}

// partitionFor resolves the engine's input to the partition this
// process runs: the pre-loaded one when present (validated against the
// spec), else the shard carved out of the full graph.
func (e *Engine) partitionFor(shard, shards int) (*graph.Partition, error) {
	if e.part != nil {
		if e.part.Shard != shard || e.part.Shards != shards {
			return nil, fmt.Errorf("dist: engine holds partition shard %d of %d, but the %s spec needs shard %d of %d",
				e.part.Shard, e.part.Shards, e.spec, shard, shards)
		}
		return e.part, nil
	}
	if e.g == nil {
		return nil, fmt.Errorf("dist: the %s spec needs a graph or a partition", e.spec)
	}
	if clamped := graph.ClampShards(e.g.N, shards); clamped != shards {
		return nil, fmt.Errorf("dist: %d shards invalid for %d vertices", shards, e.g.N)
	}
	if shard < 0 || shard >= shards {
		return nil, fmt.Errorf("dist: shard %d out of range [0,%d)", shard, shards)
	}
	return graph.PartitionOf(e.g, shard, shards), nil
}

// runNetCoordinatorJob drives the coordinator (shard 0) of a real
// multi-process run: listen, announce the bound address, await the
// workers, broadcast the job header and the recovery checkpoint, run
// this shard, assemble. When the spec carries a respawn hook, a worker
// failure is not fatal: the coordinator rolls the survivors back,
// respawns the dead shard (within the MaxRespawns budget), and re-runs
// the attempt — which replays deterministically from the checkpoint,
// so the eventual output is bit-identical to a failure-free run. A
// Resume blob seeds the checkpoint state instead of starting empty —
// the elastic-restart path, valid at any shard count.
func runNetCoordinatorJob[R any](e *Engine, job Job[R]) (Result[R], error) {
	part, err := e.partitionFor(0, e.spec.shards)
	if err != nil {
		return Result[R]{}, err
	}
	tr, err := listenNet(e.spec.listen, part.N, e.spec.shards, e.spec.timeoutOrDefault(),
		netOptions{mesh: e.spec.mesh, failover: e.spec.failover})
	if err != nil {
		return Result[R]{}, err
	}
	defer tr.Close()
	tr.failAfterFrames = e.spec.failFrames
	if e.spec.onListen != nil {
		e.spec.onListen(tr.Addr())
	}
	ck := &ckptState{}
	if e.spec.resume != nil {
		if ck, err = decodeCkpt(e.spec.resume); err != nil {
			return Result[R]{}, fmt.Errorf("dist: decoding resume checkpoint: %w", err)
		}
	}
	ck.every = e.spec.ckptEvery
	ck.onDurable = e.spec.onCkpt
	return runCoordinatorLoop(e, tr, part, job, ck)
}

// runCoordinatorLoop is the coordinator's retry loop, shared by a
// born coordinator (runNetCoordinatorJob) and an elected one
// (adoptAndRun): run attempts, recovering the fleet after each worker
// failure within the respawn budget.
func runCoordinatorLoop[R any](e *Engine, tr *NetTransport, part *graph.Partition, job Job[R], ck *ckptState) (Result[R], error) {
	budget := e.spec.maxRespawns
	for {
		res, err := runNetJob(tr, part, job, ck)
		if err == nil {
			return res, nil
		}
		var wf *workerFailure
		if e.spec.respawn == nil || budget <= 0 || !errors.As(err, &wf) {
			return Result[R]{}, err
		}
		if rerr := tr.recoverWorkers(wf.shard, e.spec.respawn, &budget); rerr != nil {
			return Result[R]{}, fmt.Errorf("dist: recovering from %v: %w", err, rerr)
		}
	}
}

// runNetWorkerJob drives one worker shard of a real multi-process run.
// A coordinator-announced rollback (another worker died) unwinds the
// attempt; the worker acks it and re-runs, adopting the re-broadcast
// header and checkpoint like any fresh joiner. With failover armed, a
// LOST coordinator triggers the election instead of failing the run:
// the lowest-numbered shard in the last broadcast standby book adopts
// shard 0 (and this process, if elected, finishes the run as the
// coordinator, returning the assembled Output), while every other
// survivor rejoins the winner's standby address as its old shard.
func runNetWorkerJob[R any](e *Engine, job Job[R]) (Result[R], error) {
	part, err := e.partitionFor(e.spec.shard, e.spec.shards)
	if err != nil {
		return Result[R]{}, err
	}
	opt := netOptions{mesh: e.spec.mesh, peerListen: e.spec.peerListen,
		failover: e.spec.failover, failoverListen: e.spec.failoverListen}
	tr, err := joinNetRetry(e.spec.join, part.N, e.spec.shard, e.spec.shards,
		e.spec.timeoutOrDefault(), e.spec.joinRetry, opt)
	if err != nil {
		return Result[R]{}, err
	}
	tr.failAfterFrames = e.spec.failFrames
	defer func() {
		if tr != nil {
			tr.Close()
		}
	}()
	for {
		res, err := runNetJob(tr, part, job, nil)
		if err == nil {
			return res, nil
		}
		var rb *rollbackError
		if errors.As(err, &rb) {
			if aerr := tr.ackRollback(rb.generation); aerr != nil {
				return Result[R]{}, aerr
			}
			continue
		}
		if !e.spec.failover || !isConnLoss(err) {
			return Result[R]{}, err
		}
		elected := tr.electedShard()
		if elected < 0 {
			return Result[R]{}, fmt.Errorf("dist: coordinator lost before the first standby-book broadcast (fleet never fully formed), nothing to elect from: %w", err)
		}
		if elected == tr.self {
			adopted := tr
			tr = nil // ownership moves; adoptAndRun closes it
			return adoptAndRun(e, adopted, job)
		}
		// Survivor: rejoin the winner's standby address as the same
		// shard, with fresh peer/standby listeners, and re-run the
		// attempt like any respawned worker. The rejoin window covers at
		// least one full I/O timeout so the winner has time to adopt.
		addr := tr.failAddrs[elected]
		old := tr
		tr = nil
		old.Close()
		window := e.spec.joinRetry
		if t := e.spec.timeoutOrDefault(); t > window {
			window = t
		}
		tr, err = joinNetRetry(addr, part.N, e.spec.shard, e.spec.shards,
			e.spec.timeoutOrDefault(), window, opt)
		if err != nil {
			return Result[R]{}, fmt.Errorf("dist: rejoining elected coordinator (shard %d at %s): %w", elected, addr, err)
		}
	}
}

// adoptAndRun finishes a run as the elected coordinator: materialize
// partition 0, turn the standby listener into the fleet's hub
// (adoptCoordinator), ask the host to respawn the shard this process
// vacates, and run the normal coordinator loop — which re-broadcasts
// the stashed job header and checkpoint, so the re-formed fleet
// replays deterministically and the output is bit-identical to a
// failure-free run.
func adoptAndRun[R any](e *Engine, old *NetTransport, job Job[R]) (Result[R], error) {
	vacated := old.self
	if e.spec.respawn == nil {
		old.Close()
		return Result[R]{}, fmt.Errorf("dist: shard %d elected coordinator but has no Respawn hook to refill its vacated shard", vacated)
	}
	var part *graph.Partition
	var err error
	switch {
	case e.spec.loadPart != nil:
		part, err = e.spec.loadPart(0)
	case e.g != nil:
		part = graph.PartitionOf(e.g, 0, e.spec.shards)
	default:
		err = fmt.Errorf("dist: shard %d elected coordinator but has neither LoadPartition nor a full graph to materialize partition 0", vacated)
	}
	if err != nil {
		old.Close()
		return Result[R]{}, err
	}
	tr, err := adoptCoordinator(old)
	if err != nil {
		old.Close()
		return Result[R]{}, err
	}
	defer tr.Close()
	e.spec.respawn(vacated, tr.Addr())
	ck := tr.lastCkpt
	if ck == nil {
		ck = &ckptState{}
	}
	ck.every = e.spec.ckptEvery
	ck.onDurable = e.spec.onCkpt
	return runCoordinatorLoop(e, tr, part, job, ck)
}

// joinNetRetry dials the coordinator, retrying refused or failed joins
// for up to the retry window — how a respawned (or -resume) worker
// rejoins a coordinator that is still tearing down its predecessor,
// and how a failover survivor reaches an elected coordinator that is
// still adopting.
func joinNetRetry(addr string, n, shard, shards int, timeout, retry time.Duration, opt netOptions) (*NetTransport, error) {
	deadline := time.Now().Add(retry)
	for {
		tr, err := joinNet(addr, n, shard, shards, timeout, opt)
		if err == nil || !time.Now().Before(deadline) {
			return tr, err
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// runLoopbackJob runs the whole multi-process protocol inside this
// process: a coordinator plus shards−1 worker goroutines, each on its
// own NetTransport over real loopback TCP sockets and each
// materializing only its partition. It serves both the Loopback spec
// (star relay) and the Mesh spec (direct worker↔worker links).
func runLoopbackJob[R any](e *Engine, job Job[R]) (Result[R], error) {
	if e.g == nil {
		return Result[R]{}, fmt.Errorf("dist: the %s spec needs a full graph (use NewEngine)", e.spec)
	}
	g := e.g
	p := graph.ClampShards(g.N, e.spec.shards)
	var res Result[R]
	err := runLoopback(g.N, p, e.spec.timeoutOrDefault(), e.spec.mesh,
		func(coord *NetTransport) error {
			var err error
			res, err = runNetJob(coord, graph.PartitionOf(g, 0, p), job, &ckptState{})
			return err
		},
		func(tr *NetTransport, s int) error {
			_, err := runNetJob(tr, graph.PartitionOf(g, s, p), job, nil)
			return err
		})
	if err != nil {
		return Result[R]{}, err
	}
	return res, nil
}
