package dist

import (
	"encoding/binary"
	"fmt"
)

// The wire codec of the network transport: fixed-size little-endian
// frames, one frame per (origin shard, destination shard, round) batch
// plus small control frames for the round-tally handshake and the
// loop-control reductions. Every frame is a 20-byte header followed by
// `count` fixed-size records (or `count` raw bytes for blob frames), so
// a relay can forward a frame without decoding its payload and a
// fuzzer can exercise the codec record by record.

const (
	wireMagic = uint32(0x44573031) // "DW01": distworker wire
	// wireVersion 2 appended the liveness/recovery frames (heartbeat,
	// checksum, rollback, rollback-ack) to v1's frame set; version 3
	// appends the full-mesh data-plane frames (mesh address
	// announcement, peer hello/welcome); version 4 appends the
	// coordinator-failover standby-address frame, the mesh fault-report
	// frame, and the failover bit of the hello/welcome flags. Existing
	// frame encodings are never mutated — new types are appended and
	// the version is bumped, so a
	// mixed-version fleet fails loudly at the hello handshake instead of
	// desynchronizing mid-run.
	wireVersion = uint32(4)

	headerSize   = 20
	envelopeSize = 28
	tallySize    = 40
	helloSize    = 20
	checkSize    = 4
)

// Frame types. Append only: reusing or renumbering a type is a wire
// version break.
const (
	frameHello   uint8 = iota + 1 // worker → coordinator: join request
	frameWelcome                  // coordinator → worker: join accepted
	frameRound                    // one origin→destination message batch
	frameTally                    // local (worker→coord) or global (coord→worker) round tally
	frameMax                      // AllMaxInt32 contribution / result
	frameOr                       // AllOrBits contribution / result
	frameBlob                     // opaque application payload (gather/broadcast)
	frameGather                   // AllGatherInt32s contribution / merged result
	// v2 liveness/recovery frames:
	frameHeartbeat   // either direction: liveness while the peer computes; no payload
	frameCheck       // running CRC-32C of the data frames since the last check (Round = engine round)
	frameRollback    // coordinator → worker: abort the attempt; Round = recovery generation
	frameRollbackAck // worker → coordinator: attempt unwound; Round echoes the generation
	// v3 full-mesh data-plane frames:
	frameMeshAddr    // worker → coordinator, after hello: this shard's peer listen address (Count raw bytes)
	frameMeshHello   // dialing worker → accepting worker: open a direct data link (hello payload)
	frameMeshWelcome // accepting worker → dialing worker: link accepted (hello payload)
	// v4 coordinator-failover frames:
	frameFailoverAddr // worker → coordinator, after hello: this shard's standby hub listen address (Count raw bytes)
	frameFault        // worker → coordinator: my direct link to shard To died; attribute the failure there (no payload)
)

// Capability flags of the hello/welcome handshake. They ride the
// otherwise-unused Round field of the hello/welcome frame headers, so
// the hello payload encoding stays byte-identical across planes, and
// both sides require an exact match — a fleet that mixes star with
// mesh, or failover-armed with failover-less processes, fails loudly
// at the handshake instead of desynchronizing on the appended frames.
const (
	helloFlagMesh     = 1 // v3: full-mesh data plane (frameMeshAddr follows the hello)
	helloFlagFailover = 2 // v4: coordinator failover armed (frameFailoverAddr follows)
)

// frameHeader describes one frame on the wire.
type frameHeader struct {
	Type  uint8
	From  uint16 // origin shard
	To    uint16 // destination shard (frameRound; otherwise 0)
	Round uint32
	Count uint32 // record count (frameRound, frameOr) or byte length (frameBlob)
}

// putHeader encodes h into b (len ≥ headerSize).
func putHeader(b []byte, h frameHeader) {
	binary.LittleEndian.PutUint32(b[0:], wireMagic)
	b[4] = h.Type
	b[5] = 0
	binary.LittleEndian.PutUint16(b[6:], h.From)
	binary.LittleEndian.PutUint16(b[8:], h.To)
	binary.LittleEndian.PutUint16(b[10:], 0)
	binary.LittleEndian.PutUint32(b[12:], h.Round)
	binary.LittleEndian.PutUint32(b[16:], h.Count)
}

// parseHeader decodes and validates a frame header.
func parseHeader(b []byte) (frameHeader, error) {
	if len(b) < headerSize {
		return frameHeader{}, fmt.Errorf("dist: short frame header (%d bytes)", len(b))
	}
	if binary.LittleEndian.Uint32(b[0:]) != wireMagic {
		return frameHeader{}, fmt.Errorf("dist: bad frame magic %#x", binary.LittleEndian.Uint32(b[0:]))
	}
	return frameHeader{
		Type:  b[4],
		From:  binary.LittleEndian.Uint16(b[6:]),
		To:    binary.LittleEndian.Uint16(b[8:]),
		Round: binary.LittleEndian.Uint32(b[12:]),
		Count: binary.LittleEndian.Uint32(b[16:]),
	}, nil
}

// putEnvelope encodes one addressed message into b (len ≥ envelopeSize).
func putEnvelope(b []byte, env envelope) {
	binary.LittleEndian.PutUint32(b[0:], uint32(env.to))
	binary.LittleEndian.PutUint32(b[4:], uint32(env.m.From))
	binary.LittleEndian.PutUint32(b[8:], uint32(env.m.Port))
	binary.LittleEndian.PutUint32(b[12:], uint32(env.m.A))
	binary.LittleEndian.PutUint32(b[16:], uint32(env.m.B))
	binary.LittleEndian.PutUint32(b[20:], uint32(env.m.C))
	b[24] = byte(env.m.Kind)
	b[25], b[26], b[27] = 0, 0, 0
}

// parseEnvelope decodes one addressed message from b (len ≥ envelopeSize).
func parseEnvelope(b []byte) envelope {
	return envelope{
		to: int32(binary.LittleEndian.Uint32(b[0:])),
		m: Message{
			From: int32(binary.LittleEndian.Uint32(b[4:])),
			Port: int32(binary.LittleEndian.Uint32(b[8:])),
			A:    int32(binary.LittleEndian.Uint32(b[12:])),
			B:    int32(binary.LittleEndian.Uint32(b[16:])),
			C:    int32(binary.LittleEndian.Uint32(b[20:])),
			Kind: MsgKind(b[24]),
		},
	}
}

// putTally / parseTally encode a RoundTally (tallySize bytes).
func putTally(b []byte, t RoundTally) {
	binary.LittleEndian.PutUint64(b[0:], uint64(t.Messages))
	binary.LittleEndian.PutUint64(b[8:], uint64(t.Words))
	binary.LittleEndian.PutUint64(b[16:], uint64(t.CrossShardMessages))
	binary.LittleEndian.PutUint64(b[24:], uint64(t.CrossShardWords))
	binary.LittleEndian.PutUint32(b[32:], uint32(t.MaxMessageWords))
	binary.LittleEndian.PutUint32(b[36:], 0)
}

func parseTally(b []byte) RoundTally {
	return RoundTally{
		Messages:           int64(binary.LittleEndian.Uint64(b[0:])),
		Words:              int64(binary.LittleEndian.Uint64(b[8:])),
		CrossShardMessages: int64(binary.LittleEndian.Uint64(b[16:])),
		CrossShardWords:    int64(binary.LittleEndian.Uint64(b[24:])),
		MaxMessageWords:    int(int32(binary.LittleEndian.Uint32(b[32:]))),
	}
}

// hello is the join handshake payload: both sides must agree on the
// protocol, the vertex count, and the partition before any round runs.
type hello struct {
	Version uint32
	N       uint64
	Shard   uint32
	Shards  uint32
}

func putHello(b []byte, h hello) {
	binary.LittleEndian.PutUint32(b[0:], h.Version)
	binary.LittleEndian.PutUint64(b[4:], h.N)
	binary.LittleEndian.PutUint32(b[12:], h.Shard)
	binary.LittleEndian.PutUint32(b[16:], h.Shards)
}

func parseHello(b []byte) hello {
	return hello{
		Version: binary.LittleEndian.Uint32(b[0:]),
		N:       binary.LittleEndian.Uint64(b[4:]),
		Shard:   binary.LittleEndian.Uint32(b[12:]),
		Shards:  binary.LittleEndian.Uint32(b[16:]),
	}
}
