package dist_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/graph"
)

// sparsifyCfg is the shared depth/seed convenience, aliased for short
// call sites.
func sparsifyCfg(depth int, seed uint64) core.Config {
	return dist.SparsifyDefaults(depth, seed)
}

// runSparsify runs the sparsify job on a spec, failing the test on any
// transport error.
func runSparsify(tb testing.TB, spec dist.TransportSpec, g *graph.Graph, eps, rho float64, depth int, seed uint64) dist.Result[*graph.Graph] {
	tb.Helper()
	res, err := dist.Run(dist.NewEngine(spec, g), dist.SparsifyJob(eps, rho, sparsifyCfg(depth, seed)))
	if err != nil {
		tb.Fatal(err)
	}
	return res
}

// runSpanner runs the spanner job on a spec, failing the test on any
// transport error.
func runSpanner(tb testing.TB, spec dist.TransportSpec, g *graph.Graph, k int, seed uint64) dist.Result[*dist.SpannerOutput] {
	tb.Helper()
	res, err := dist.Run(dist.NewEngine(spec, g), dist.SpannerJob(k, seed))
	if err != nil {
		tb.Fatal(err)
	}
	return res
}
