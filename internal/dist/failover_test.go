package dist

import (
	"fmt"
	"io"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
)

// The coordinator-failover suite: shard 0 dies mid-run and the fleet
// survives — the lowest-numbered live shard adopts the coordinator
// role from the broadcast checkpoint, the vacated shard is respawned,
// and the finished output and ledger are bit-identical to a
// failure-free run. The OS-process kill -9 drill lives in
// cmd/distworker's tests; these cover the same machinery in-process,
// where fault injection severs the coordinator's sockets (what SIGKILL
// looks like from the outside: every unflushed frame is lost).

// coordinatorCrashDrill runs one fleet with a doomed coordinator: the
// coordinator transport is driven manually with fault injection that
// severs every socket at a fixed frame count, while the workers run
// the real public engine path with failover armed. Exactly one worker
// (the elected lowest shard) must finish holding the assembled output.
func coordinatorCrashDrill(t *testing.T, mesh bool) {
	g := gen.Gnp(400, 0.05, 7)
	const p = 3
	job := recoverySparsifyJob()
	refSpec := Loopback(p)
	if mesh {
		refSpec = Mesh(p)
	}
	ref, err := Run(NewEngine(refSpec.WithTimeout(recoveryTimeout), g), job)
	if err != nil {
		t.Fatal(err)
	}

	addrCh := make(chan string, 1)
	coordErr := make(chan error, 1)
	go func() {
		coordErr <- func() (err error) {
			defer recoverNetError(&err)
			tr, err := listenNet("127.0.0.1:0", g.N, p, recoveryTimeout,
				netOptions{mesh: mesh, failover: true})
			if err != nil {
				return err
			}
			defer tr.Close()
			addrCh <- tr.Addr()
			// Die mid-run, well after the first standby-book broadcast:
			// sever every socket before writing frame 400 — what SIGKILL
			// looks like to the fleet (in-flight frames are lost, nothing
			// is flushed on the way down).
			tr.failAfterFrames = 400
			tr.failAct = func() {
				for _, pc := range tr.peers {
					if pc != nil {
						pc.c.Close()
					}
				}
				tr.ln.Close()
			}
			_, err = runNetJob(tr, graph.PartitionOf(g, 0, p), job, &ckptState{every: 1})
			return err
		}()
	}()
	addr := <-addrCh

	var respawns atomic.Int32
	var wg sync.WaitGroup
	var mu sync.Mutex
	var finished []Result[*graph.Graph]
	record := func(res Result[*graph.Graph]) {
		mu.Lock()
		finished = append(finished, res)
		mu.Unlock()
	}
	var respawn func(shard int, addr string)
	workerCfg := func(shard int, join string) WorkerConfig {
		return WorkerConfig{Join: join, Shard: shard, Shards: p,
			Timeout: recoveryTimeout, JoinRetry: recoveryTimeout, Mesh: mesh,
			Failover: true, CheckpointEvery: 1, MaxRespawns: 2, Respawn: respawn}
	}
	respawn = func(shard int, addr string) {
		respawns.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := Run(NewEngine(Worker(workerCfg(shard, addr)), g), job)
			if err != nil {
				t.Errorf("respawned shard %d: %v", shard, err)
				return
			}
			record(res)
		}()
	}
	for s := 1; s < p; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			res, err := Run(NewEngine(Worker(workerCfg(s, addr)), g), job)
			if err != nil {
				t.Errorf("worker shard %d: %v", s, err)
				return
			}
			record(res)
		}(s)
	}

	if err := <-coordErr; err == nil {
		t.Fatal("doomed coordinator finished cleanly; fault injection never fired")
	}
	wg.Wait()
	if n := respawns.Load(); n != 1 {
		t.Fatalf("respawns=%d, want 1 (the elected shard refilling its vacated slot)", n)
	}
	var elected []Result[*graph.Graph]
	for _, r := range finished {
		if r.Output != nil {
			elected = append(elected, r)
		}
	}
	if len(elected) != 1 {
		t.Fatalf("%d finishers hold the assembled output, want exactly 1 (the elected coordinator)", len(elected))
	}
	res := elected[0]
	if !reflect.DeepEqual(res.Stats, ref.Stats) {
		t.Fatalf("failed-over ledger diverges:\n%+v\nvs failure-free\n%+v", res.Stats, ref.Stats)
	}
	if res.Output.M() != ref.Output.M() {
		t.Fatalf("failed-over m=%d vs failure-free %d", res.Output.M(), ref.Output.M())
	}
	for i := range ref.Output.Edges {
		if res.Output.Edges[i] != ref.Output.Edges[i] {
			t.Fatalf("failed-over edge %d differs from the failure-free run", i)
		}
	}
}

// TestNetRunSurvivesCoordinatorCrash is the tentpole's ground truth on
// the star data plane: kill the coordinator mid-run, shard 1 is
// elected and adopts shard 0 from the broadcast checkpoint, shard 2
// rejoins its standby hub, the vacated shard 1 is respawned — and the
// output and ledger are bit-identical to a failure-free run.
func TestNetRunSurvivesCoordinatorCrash(t *testing.T) {
	coordinatorCrashDrill(t, false)
}

// TestMeshRunSurvivesCoordinatorCrash re-runs the coordinator-kill
// ground truth on the full-mesh data plane: the survivors' direct
// links unwind with the dead hub, the re-formed fleet rebuilds the
// mesh from the new coordinator's re-broadcast address book, and the
// result is still bit-identical.
func TestMeshRunSurvivesCoordinatorCrash(t *testing.T) {
	coordinatorCrashDrill(t, true)
}

// TestNetRunElasticResizeBitIdentical pins the elastic-restart
// guarantee: checkpoint a P=3 fleet (NetConfig.OnCheckpoint), restart
// from the blob on a P′=2 fleet (NetConfig.Resume), and the resumed
// run's OUTPUT is bit-identical to both the original and the
// in-process reference. (Stats is intentionally not compared across
// shard counts: the CrossShard split reflects the partition actually
// run.)
func TestNetRunElasticResizeBitIdentical(t *testing.T) {
	g := gen.Gnp(400, 0.05, 7)
	job := recoverySparsifyJob()
	ref, err := Run(NewEngine(Mem(), g), job)
	if err != nil {
		t.Fatal(err)
	}

	runFleet := func(shards int, resume []byte, onCkpt func([]byte)) Result[*graph.Graph] {
		t.Helper()
		addrCh := make(chan string, 1)
		var wg sync.WaitGroup
		spec := Net(NetConfig{Listen: "127.0.0.1:0", Shards: shards,
			Timeout: recoveryTimeout, CheckpointEvery: 1,
			OnListen: func(addr string) { addrCh <- addr },
			Resume:   resume, OnCheckpoint: onCkpt})
		go func() {
			addr := <-addrCh
			for s := 1; s < shards; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					wspec := Worker(WorkerConfig{Join: addr, Shard: s, Shards: shards,
						Timeout: recoveryTimeout})
					if _, err := Run(NewEngine(wspec, g), job); err != nil {
						t.Errorf("shard %d/%d: %v", s, shards, err)
					}
				}(s)
			}
		}()
		res, err := Run(NewEngine(spec, g), job)
		if err != nil {
			t.Fatalf("%d-shard fleet: %v", shards, err)
		}
		wg.Wait()
		return res
	}

	var mu sync.Mutex
	var blobs [][]byte
	res3 := runFleet(3, nil, func(ck []byte) {
		mu.Lock()
		blobs = append(blobs, ck)
		mu.Unlock()
	})
	if len(blobs) == 0 {
		t.Fatal("no checkpoint was delivered to OnCheckpoint")
	}
	res2 := runFleet(2, blobs[0], nil)

	for name, res := range map[string]Result[*graph.Graph]{"P=3": res3, "resumed P'=2": res2} {
		if res.Output.M() != ref.Output.M() {
			t.Fatalf("%s output m=%d vs reference %d", name, res.Output.M(), ref.Output.M())
		}
		for i := range ref.Output.Edges {
			if res.Output.Edges[i] != ref.Output.Edges[i] {
				t.Fatalf("%s output edge %d differs from the reference", name, i)
			}
		}
	}
}

// TestFailoverHandshakeRejectsMixedFleet: a failover-armed worker
// cannot join a failover-less coordinator — the capability flags of
// the hello/welcome handshake must match exactly, so a misconfigured
// fleet fails loudly at bring-up instead of desynchronizing on the
// appended standby-address frames.
func TestFailoverHandshakeRejectsMixedFleet(t *testing.T) {
	coord, err := ListenNet("127.0.0.1:0", 10, 2, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	go func() { _ = coord.WaitReady() }() // rejects the mismatched join, keeps accepting until timeout
	_, err = joinNet(coord.Addr(), 10, 1, 2, 2*time.Second, netOptions{failover: true})
	if err == nil {
		t.Fatal("failover-armed worker joined a failover-less coordinator")
	}
	if !strings.Contains(err.Error(), "capability") {
		t.Fatalf("mismatch error does not name the capability handshake: %v", err)
	}
}

// TestIsConnLoss pins the failure classification the election hinges
// on: connection loss (EOF, transport-fatal wrapped I/O errors)
// triggers failover; logic and protocol errors never do — electing a
// new coordinator would just replay them.
func TestIsConnLoss(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{io.EOF, true},
		{io.ErrUnexpectedEOF, true},
		{fmt.Errorf("dist: worker shard 2 failed: %w", io.EOF), true},
		{&NetError{Err: io.EOF}, true},
		{&NetError{Err: fmt.Errorf("mesh data plane: %w", io.ErrUnexpectedEOF)}, true},
		{fmt.Errorf("dist: bad frame magic 0xdead"), false},
		{&NetError{Err: fmt.Errorf("dist: checksum mismatch")}, false},
	}
	for _, c := range cases {
		if got := isConnLoss(c.err); got != c.want {
			t.Errorf("isConnLoss(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

// TestElectedShard pins the election function: lowest-numbered shard
// with a standby address wins; an empty or missing book elects nobody.
func TestElectedShard(t *testing.T) {
	tr := &NetTransport{}
	if got := tr.electedShard(); got != -1 {
		t.Fatalf("no book elected shard %d, want -1", got)
	}
	tr.failAddrs = []string{"", "", "127.0.0.1:2", "127.0.0.1:3"}
	if got := tr.electedShard(); got != 2 {
		t.Fatalf("elected shard %d, want 2 (lowest with a standby address)", got)
	}
}
