package dist

import (
	"sync"

	"repro/internal/graph"
)

// The exchange core: the shard-pair staging, barrier drain, and traffic
// tally shared by every transport. ShardedTransport uses it with one
// worker goroutine per shard, MemTransport with the grain-adaptive
// in-process worker partition, and NetTransport with one OS process per
// shard — the buckets a process stages for remote shards are exactly
// the byte batches it flushes onto the wire at the round barrier. The
// rows are keyed by destination shard, so the staging is already
// direct-destination: the star plane serializes each bucket into a
// frame addressed From→To and relays it through the coordinator, while
// the mesh plane writes the identical frame straight onto the
// destination peer's connection (and hands the flush to that
// connection's writer goroutine) — the exchange core cannot tell the
// planes apart.
//
// Staging discipline. A message is appended to the row of the worker
// that stages it, so rows need no locks:
//
//   - sender-staged kinds (MsgCenter, MsgNewCenter, MsgAdd, MsgDrop)
//     carry real remote state and are staged by the worker that owns
//     the sender From — on the network transport these are the only
//     payloads that can cross the wire;
//
//   - receiver-staged kinds (MsgSampled, MsgKeep) carry payloads that
//     are pure functions of the seed, which the recipient's owner
//     re-derives locally; they are staged by the worker that owns the
//     recipient and never travel, but are billed identically on every
//     transport (cross-shard when ShardOf(From) ≠ ShardOf(to)).
//
// At the barrier every recipient shard drains its column in staging
// shard order (0..P-1, own row in place), so mailbox order — and with
// it every tally — is identical whether the rows were filled by
// goroutines or arrived as network frames.

// partition is a balanced contiguous vertex partition (see
// graph.ShardBounds; the formula lives in the leaf package so the
// graph loader and the transports cannot disagree).
type partition struct {
	n, p   int
	bounds []int
}

func newPartition(n, p int) partition {
	p = graph.ClampShards(n, p)
	return partition{n: n, p: p, bounds: graph.ShardBounds(n, p)}
}

func (pt partition) shardOf(v int32) int {
	return graph.ShardOfVertex(pt.n, pt.p, v)
}

// envelope is one staged message plus its routing address.
type envelope struct {
	to int32
	m  Message
}

// senderStaged reports whether messages of kind k are staged by the
// sender's owning worker (payloads carrying remote state) rather than
// the recipient's (payloads the recipient's owner derives locally).
func (k MsgKind) senderStaged() bool {
	switch k {
	case MsgCenter, MsgNewCenter, MsgAdd, MsgDrop:
		return true
	}
	return false
}

// exchanger holds the staging rows and mailboxes of one transport.
// exec is the execution partition (staging rows and drain columns);
// owner is the ownership partition used for cross-shard billing — the
// two coincide for the sharded and network transports, while the
// in-memory transport executes on parutil's worker partition but owns
// everything in a single billing shard.
type exchanger struct {
	exec  partition
	owner partition
	// staged[d][r]: messages staged by worker d for recipients owned by
	// worker r. Only worker d appends to row d.
	staged  [][][]envelope
	mailbox [][]Message // per-vertex mailboxes rebuilt at each barrier
}

func newExchanger(n, execP, ownerP int) *exchanger {
	x := &exchanger{
		exec:    newPartition(n, execP),
		owner:   newPartition(n, ownerP),
		mailbox: make([][]Message, n),
	}
	x.staged = make([][][]envelope, x.exec.p)
	for d := range x.staged {
		x.staged[d] = make([][]envelope, x.exec.p)
	}
	return x
}

// stagingShard returns the row the staging discipline assigns to a
// message: the owner of From for sender-staged kinds, the owner of
// `to` otherwise.
func (x *exchanger) stagingShard(to int32, m Message) int {
	if m.Kind.senderStaged() && m.From >= 0 {
		return x.exec.shardOf(m.From)
	}
	return x.exec.shardOf(to)
}

// send stages m for vertex `to` in the row of the worker the staging
// discipline assigns (see the package comment above). It must be called
// by that worker during a compute phase, or by any single goroutine
// outside one.
func (x *exchanger) send(to int32, m Message) {
	d := x.stagingShard(to, m)
	r := x.exec.shardOf(to)
	x.staged[d][r] = append(x.staged[d][r], envelope{to: to, m: m})
}

// recv returns the messages delivered to v by the last drain.
func (x *exchanger) recv(v int32) []Message { return x.mailbox[v] }

// bill tallies one message against the ownership partition.
func (x *exchanger) bill(tally *RoundTally, env envelope) {
	w := env.m.Kind.Words()
	tally.Messages++
	tally.Words += int64(w)
	if w > tally.MaxMessageWords {
		tally.MaxMessageWords = w
	}
	if env.m.From >= 0 && x.owner.p > 1 &&
		x.owner.shardOf(env.m.From) != x.owner.shardOf(env.to) {
		tally.CrossShardMessages++
		tally.CrossShardWords += int64(w)
	}
}

// drainColumn clears the mailboxes of recipient shard r and drains its
// incoming buckets (staging shards in index order) into them, tallying
// as it goes. Safe to run concurrently for distinct r.
func (x *exchanger) drainColumn(r int) RoundTally {
	var tally RoundTally
	for v := x.exec.bounds[r]; v < x.exec.bounds[r+1]; v++ {
		x.mailbox[v] = x.mailbox[v][:0]
	}
	for d := 0; d < x.exec.p; d++ {
		buf := x.staged[d][r]
		for _, env := range buf {
			x.bill(&tally, env)
			x.mailbox[env.to] = append(x.mailbox[env.to], env.m)
		}
		x.staged[d][r] = buf[:0]
	}
	return tally
}

// forWorkers runs body once per execution worker over the worker's
// vertex range, concurrently, and joins them — the fork/join half of
// the round barrier shared by the in-process transports.
func (x *exchanger) forWorkers(body func(worker, lo, hi int)) {
	if x.exec.n <= 0 {
		return
	}
	if x.exec.p == 1 {
		body(0, 0, x.exec.n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(x.exec.p)
	for s := 0; s < x.exec.p; s++ {
		go func(s int) {
			defer wg.Done()
			body(s, x.exec.bounds[s], x.exec.bounds[s+1])
		}(s)
	}
	wg.Wait()
}

// drainAll drains every column (one worker per recipient shard) and
// merges the tallies in shard order — the whole in-process barrier.
func (x *exchanger) drainAll() RoundTally {
	tallies := make([]RoundTally, x.exec.p)
	x.forWorkers(func(r, _, _ int) {
		tallies[r] = x.drainColumn(r)
	})
	return mergeTallies(tallies)
}

// takeRow detaches and returns worker d's outgoing bucket for shard r,
// leaving an empty (capacity-preserving) bucket behind. The network
// transport uses it to move staged traffic onto the wire.
func (x *exchanger) takeRow(d, r int) []envelope {
	buf := x.staged[d][r]
	x.staged[d][r] = buf[:0]
	return buf
}

// clearMailboxes resets the mailboxes of shard r without draining.
func (x *exchanger) clearMailboxes(r int) {
	for v := x.exec.bounds[r]; v < x.exec.bounds[r+1]; v++ {
		x.mailbox[v] = x.mailbox[v][:0]
	}
}

// deliverInto appends one envelope batch into the mailboxes of the
// local shard, billing into tally.
func (x *exchanger) deliverInto(tally *RoundTally, batch []envelope) {
	for _, env := range batch {
		x.bill(tally, env)
		x.mailbox[env.to] = append(x.mailbox[env.to], env.m)
	}
}

// mergeTallies folds per-shard tallies in shard order.
func mergeTallies(tallies []RoundTally) RoundTally {
	var total RoundTally
	for _, t := range tallies {
		total.Messages += t.Messages
		total.Words += t.Words
		total.CrossShardMessages += t.CrossShardMessages
		total.CrossShardWords += t.CrossShardWords
		if t.MaxMessageWords > total.MaxMessageWords {
			total.MaxMessageWords = t.MaxMessageWords
		}
	}
	return total
}
