package dist_test

import (
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
)

const netTestTimeout = 30 * time.Second

// TestNetSparsifyEquivalence is the tentpole invariant of the network
// transport: a coordinator plus 4 worker shards, each a separate
// NetTransport over real loopback TCP sockets and each materializing
// only its partition of the graph, produce an output edge-identical to
// the in-memory transport's and a ledger whose Rounds and per-phase
// Words are identical too (the round-tally handshake).
func TestNetSparsifyEquivalence(t *testing.T) {
	cases := []*graph.Graph{
		gen.Gnp(300, 0.15, 7),
		gen.Barbell(30, 4),
		gen.WithRandomWeights(gen.Gnp(150, 0.2, 5), 0.1, 10, 9),
	}
	for gi, g := range cases {
		ref := dist.Sparsify(g, 0.75, 4, 0, 11)
		// P=5: a coordinator plus 4 workers.
		for _, p := range []int{2, 5} {
			res, wireBytes, err := dist.LoopbackSparsify(g, 0.75, 4, 0, 11, p, netTestTimeout)
			if err != nil {
				t.Fatalf("case %d P=%d: %v", gi, p, err)
			}
			if res.G.N != ref.G.N || res.G.M() != ref.G.M() {
				t.Fatalf("case %d P=%d: net %v vs mem %v", gi, p, res.G, ref.G)
			}
			for i := range ref.G.Edges {
				if res.G.Edges[i] != ref.G.Edges[i] {
					t.Fatalf("case %d P=%d: edge %d differs: %+v vs %+v",
						gi, p, i, res.G.Edges[i], ref.G.Edges[i])
				}
			}
			st, rs := res.Stats, ref.Stats
			if st.Rounds != rs.Rounds || st.Messages != rs.Messages ||
				st.Words != rs.Words || st.MaxMessageWords != rs.MaxMessageWords {
				t.Fatalf("case %d P=%d: ledger totals diverge: net %+v vs mem %+v", gi, p, st, rs)
			}
			if len(st.Phases) != len(rs.Phases) {
				t.Fatalf("case %d P=%d: phase count %d vs %d", gi, p, len(st.Phases), len(rs.Phases))
			}
			for i, ph := range st.Phases {
				rp := rs.Phases[i]
				if ph.Name != rp.Name || ph.Rounds != rp.Rounds ||
					ph.Messages != rp.Messages || ph.Words != rp.Words {
					t.Fatalf("case %d P=%d: phase %q diverges: %+v vs %+v", gi, p, ph.Name, ph, rp)
				}
			}
			if st.Shards != p {
				t.Fatalf("case %d P=%d: Stats.Shards=%d", gi, p, st.Shards)
			}
			if p > 1 && st.CrossShardMessages == 0 {
				t.Fatalf("case %d P=%d: no cross-shard traffic on a connected graph", gi, p)
			}
			if wireBytes == 0 && p > 1 {
				t.Fatalf("case %d P=%d: no bytes on the wire", gi, p)
			}
		}
	}
}

// TestNetMatchesSharded: for equal (graph, seed, P) the network
// transport's CrossShard split equals the sharded transport's — the
// wire bill is a property of the partition, not of the medium.
func TestNetMatchesSharded(t *testing.T) {
	g := gen.Gnp(350, 0.08, 13)
	for _, p := range []int{2, 4} {
		sh := dist.SparsifySharded(g, 0.75, 4, 0, 5, p).Stats
		res, _, err := dist.LoopbackSparsify(g, 0.75, 4, 0, 5, p, netTestTimeout)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		nt := res.Stats
		if nt.CrossShardMessages != sh.CrossShardMessages || nt.CrossShardWords != sh.CrossShardWords {
			t.Fatalf("P=%d: cross-shard split diverges: net %+v vs sharded %+v", p, nt, sh)
		}
	}
}

// TestNetWorkerStatsMatchCoordinator: the round-tally handshake makes
// every process's ledger global — a worker reports the same totals as
// the coordinator.
func TestNetWorkerStatsMatchCoordinator(t *testing.T) {
	g := gen.Gnp(200, 0.1, 3)
	const p = 3
	coord, err := dist.ListenNet("127.0.0.1:0", g.N, p, netTestTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	statsCh := make(chan dist.Stats, p-1)
	errCh := make(chan error, p-1)
	for s := 1; s < p; s++ {
		go func(s int) {
			tr, err := dist.JoinNet(coord.Addr(), g.N, s, p, netTestTimeout)
			if err != nil {
				errCh <- err
				return
			}
			defer tr.Close()
			st, err := dist.RunNetWorker(tr, graph.PartitionOf(g, s, p))
			if err != nil {
				errCh <- err
				return
			}
			statsCh <- st
		}(s)
	}
	res, _, err := dist.RunNetCoordinator(coord, graph.PartitionOf(g, 0, p), 0.75, 4, 0, 21)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p-1; i++ {
		select {
		case err := <-errCh:
			t.Fatal(err)
		case st := <-statsCh:
			if st.Rounds != res.Stats.Rounds || st.Messages != res.Stats.Messages ||
				st.Words != res.Stats.Words || st.CrossShardWords != res.Stats.CrossShardWords {
				t.Fatalf("worker ledger diverges from coordinator: %+v vs %+v", st, res.Stats)
			}
		case <-time.After(netTestTimeout):
			t.Fatal("worker did not finish")
		}
	}
}

// TestNetHandshakeValidation: joins with a mismatched configuration
// are rejected before any round runs.
func TestNetHandshakeValidation(t *testing.T) {
	if _, err := dist.ListenNet("127.0.0.1:0", 10, 100, netTestTimeout); err == nil {
		t.Fatal("accepted more shards than vertices")
	}
	if _, err := dist.JoinNet("127.0.0.1:1", 10, 0, 2, time.Second); err == nil {
		t.Fatal("shard 0 joined as a worker")
	}
	coord, err := dist.ListenNet("127.0.0.1:0", 10, 2, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	done := make(chan error, 1)
	go func() {
		// Wrong n: the coordinator must refuse, and WaitReady fail.
		_, err := dist.JoinNet(coord.Addr(), 11, 1, 2, 2*time.Second)
		done <- err
	}()
	if err := coord.WaitReady(); err == nil {
		t.Fatal("coordinator accepted a mismatched worker")
	}
	if err := <-done; err == nil {
		t.Fatal("mismatched worker joined successfully")
	}
}

// TestPartitionSparsifySingleShard: SparsifyPartition on a 1-shard
// network transport (no sockets at all) matches the in-memory run —
// the partition view itself is output-neutral.
func TestPartitionSparsifySingleShard(t *testing.T) {
	g := gen.Gnp(150, 0.12, 17)
	ref := dist.Sparsify(g, 0.75, 4, 0, 3)
	res, _, err := dist.LoopbackSparsify(g, 0.75, 4, 0, 3, 1, netTestTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if res.G.M() != ref.G.M() {
		t.Fatalf("m=%d vs %d", res.G.M(), ref.G.M())
	}
	for i := range ref.G.Edges {
		if res.G.Edges[i] != ref.G.Edges[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}
