package dist_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
)

const netTestTimeout = 30 * time.Second

// The net transport's output-equivalence pins (edge-identical results
// and identical ledgers vs the in-memory run, for both jobs) live in
// the cross-transport matrix of equivalence_test.go. This file keeps
// the protocol-specific checks.

// TestNetTransportHonestyCounters: the wire and Stats counters that
// only the network path reports are sane on a multi-worker run — real
// bytes hit the sockets, the CrossShard split is populated, and
// Stats.Shards records the partition.
func TestNetTransportHonestyCounters(t *testing.T) {
	g := gen.Gnp(300, 0.15, 7)
	const p = 5 // a coordinator plus 4 workers
	res := runSparsify(t, dist.Loopback(p).WithTimeout(netTestTimeout), g, 0.75, 4, 0, 11)
	if res.Stats.Shards != p {
		t.Fatalf("Stats.Shards=%d, want %d", res.Stats.Shards, p)
	}
	if res.Stats.CrossShardMessages == 0 {
		t.Fatal("no cross-shard traffic on a connected graph")
	}
	if res.WireBytes == 0 {
		t.Fatal("no bytes on the wire")
	}
	if res.PeakViewWords <= 0 {
		t.Fatal("no per-worker peak footprint gathered")
	}
}

// TestNetMatchesSharded: for equal (graph, seed, P) the network path's
// CrossShard split equals the sharded transport's — the wire bill is a
// property of the partition, not of the medium.
func TestNetMatchesSharded(t *testing.T) {
	g := gen.Gnp(350, 0.08, 13)
	for _, p := range []int{2, 4} {
		sh := runSparsify(t, dist.Sharded(p), g, 0.75, 4, 0, 5).Stats
		nt := runSparsify(t, dist.Loopback(p).WithTimeout(netTestTimeout), g, 0.75, 4, 0, 5).Stats
		if nt.CrossShardMessages != sh.CrossShardMessages || nt.CrossShardWords != sh.CrossShardWords {
			t.Fatalf("P=%d: cross-shard split diverges: net %+v vs sharded %+v", p, nt, sh)
		}
	}
}

// TestNetWorkerSpecMatchesCoordinator drives the real multi-process
// specs directly — one Net engine plus P−1 Worker engines, each on its
// own TCP connection — and checks the round-tally handshake: every
// worker's ledger is identical to the coordinator's, a worker's Output
// is the zero value, and the coordinator's assembled output matches
// the in-memory reference.
func TestNetWorkerSpecMatchesCoordinator(t *testing.T) {
	g := gen.Gnp(200, 0.1, 3)
	const p = 3
	ref := runSparsify(t, dist.Mem(), g, 0.75, 4, 0, 21)
	addrCh := make(chan string, 1)
	type workerOut struct {
		res dist.Result[*graph.Graph]
		err error
	}
	outCh := make(chan workerOut, p-1)
	coordSpec := dist.Net(dist.NetConfig{
		Listen: "127.0.0.1:0", Shards: p, Timeout: netTestTimeout,
		OnListen: func(addr string) { addrCh <- addr },
	})
	go func() {
		addr := <-addrCh
		for s := 1; s < p; s++ {
			go func(s int) {
				spec := dist.Worker(dist.WorkerConfig{Join: addr, Shard: s, Shards: p, Timeout: netTestTimeout})
				res, err := dist.Run(dist.NewEngine(spec, g), dist.SparsifyJob(0.75, 4, sparsifyCfg(0, 21)))
				outCh <- workerOut{res, err}
			}(s)
		}
	}()
	res, err := dist.Run(dist.NewEngine(coordSpec, g), dist.SparsifyJob(0.75, 4, sparsifyCfg(0, 21)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p-1; i++ {
		select {
		case wo := <-outCh:
			if wo.err != nil {
				t.Fatal(wo.err)
			}
			if wo.res.Output != nil {
				t.Fatal("worker received an assembled output; assembly is the coordinator's")
			}
			st := wo.res.Stats
			if st.Rounds != res.Stats.Rounds || st.Messages != res.Stats.Messages ||
				st.Words != res.Stats.Words || st.CrossShardWords != res.Stats.CrossShardWords {
				t.Fatalf("worker ledger diverges from coordinator: %+v vs %+v", st, res.Stats)
			}
			if wo.res.PeakViewWords <= 0 || wo.res.WireBytes <= 0 {
				t.Fatalf("worker honesty counters empty: %+v", wo.res)
			}
		case <-time.After(netTestTimeout):
			t.Fatal("worker did not finish")
		}
	}
	if res.Output.M() != ref.Output.M() {
		t.Fatalf("m=%d vs in-memory %d", res.Output.M(), ref.Output.M())
	}
	for i := range ref.Output.Edges {
		if res.Output.Edges[i] != ref.Output.Edges[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

// TestWorkerJobMismatch: a worker started for a different job than the
// coordinator broadcasts must fail with a clear error naming both jobs
// — the registry cross-check that keeps mixed fleets from silently
// diverging.
func TestWorkerJobMismatch(t *testing.T) {
	g := gen.Gnp(60, 0.2, 5)
	const p = 2
	addrCh := make(chan string, 1)
	errCh := make(chan error, 1)
	coordSpec := dist.Net(dist.NetConfig{
		Listen: "127.0.0.1:0", Shards: p, Timeout: netTestTimeout,
		OnListen: func(addr string) { addrCh <- addr },
	})
	go func() {
		addr := <-addrCh
		spec := dist.Worker(dist.WorkerConfig{Join: addr, Shard: 1, Shards: p, Timeout: netTestTimeout})
		_, err := dist.Run(dist.NewEngine(spec, g), dist.SpannerJob(0, 21))
		errCh <- err
	}()
	// The coordinator runs sparsify; the worker expects the spanner. The
	// worker must reject the job header; the coordinator then fails on
	// the dead connection.
	_, coordErr := dist.Run(dist.NewEngine(coordSpec, g), dist.SparsifyJob(0.75, 4, sparsifyCfg(0, 21)))
	workerErr := <-errCh
	if workerErr == nil {
		t.Fatal("worker accepted a job it was not started for")
	}
	if !strings.Contains(workerErr.Error(), "sparsify") || !strings.Contains(workerErr.Error(), "spanner") {
		t.Fatalf("mismatch error does not name both jobs: %v", workerErr)
	}
	if coordErr == nil {
		t.Fatal("coordinator finished against a worker that aborted")
	}
}

// TestNetHandshakeValidation: joins with a mismatched configuration
// are rejected before any round runs. The worker side fails
// immediately (its connection is closed on it); the coordinator treats
// the bad join as a stray — it keeps accepting and fails only when the
// join window's deadline expires with the shard still missing.
func TestNetHandshakeValidation(t *testing.T) {
	if _, err := dist.ListenNet("127.0.0.1:0", 10, 100, netTestTimeout); err == nil {
		t.Fatal("accepted more shards than vertices")
	}
	if _, err := dist.JoinNet("127.0.0.1:1", 10, 0, 2, time.Second); err == nil {
		t.Fatal("shard 0 joined as a worker")
	}
	coord, err := dist.ListenNet("127.0.0.1:0", 10, 2, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	done := make(chan error, 1)
	go func() {
		// Wrong n: the coordinator must refuse, and WaitReady fail.
		_, err := dist.JoinNet(coord.Addr(), 11, 1, 2, 2*time.Second)
		done <- err
	}()
	if err := coord.WaitReady(); err == nil {
		t.Fatal("coordinator accepted a mismatched worker")
	}
	if err := <-done; err == nil {
		t.Fatal("mismatched worker joined successfully")
	}
}

// TestEngineSpecValidation: engines reject inputs that disagree with
// their spec with errors, never panics — a partition loaded for the
// wrong shard count, a shard id out of range, an empty job.
func TestEngineSpecValidation(t *testing.T) {
	g := gen.Gnp(40, 0.2, 5)
	part := graph.PartitionOf(g, 1, 4)
	spec := dist.Worker(dist.WorkerConfig{Join: "127.0.0.1:1", Shard: 2, Shards: 4, Timeout: time.Second})
	if _, err := dist.Run(dist.NewPartitionEngine(spec, part), dist.SpannerJob(0, 1)); err == nil {
		t.Fatal("accepted a partition for the wrong shard")
	}
	badShards := dist.Worker(dist.WorkerConfig{Join: "127.0.0.1:1", Shard: 1, Shards: 3, Timeout: time.Second})
	if _, err := dist.Run(dist.NewPartitionEngine(badShards, part), dist.SpannerJob(0, 1)); err == nil {
		t.Fatal("accepted a partition split for a different shard count")
	}
	if _, err := dist.Run(dist.NewEngine(dist.Net(dist.NetConfig{Listen: "127.0.0.1:0", Shards: 100, Timeout: time.Second}), g), dist.SpannerJob(0, 1)); err == nil {
		t.Fatal("accepted more shards than vertices")
	}
	if _, err := dist.Run(dist.NewEngine(dist.Mem(), g), dist.Job[*graph.Graph]{}); err == nil {
		t.Fatal("accepted an empty job")
	}
}

// TestPartitionSparsifySingleShard: the partition path on a 1-shard
// loopback run (no sockets at all) matches the in-memory run — the
// partition view itself is output-neutral.
func TestPartitionSparsifySingleShard(t *testing.T) {
	g := gen.Gnp(150, 0.12, 17)
	ref := runSparsify(t, dist.Mem(), g, 0.75, 4, 0, 3)
	res := runSparsify(t, dist.Loopback(1).WithTimeout(netTestTimeout), g, 0.75, 4, 0, 3)
	if res.Output.M() != ref.Output.M() {
		t.Fatalf("m=%d vs %d", res.Output.M(), ref.Output.M())
	}
	for i := range ref.Output.Edges {
		if res.Output.Edges[i] != ref.Output.Edges[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}
