package dist_test

import (
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
)

const netTestTimeout = 30 * time.Second

// The net transport's output-equivalence pins (edge-identical results
// and identical ledgers vs the in-memory run, for both the spanner and
// the sparsifier) live in the cross-transport matrix of
// equivalence_test.go. This file keeps the protocol-specific checks.

// TestNetTransportHonestyCounters: the wire and Stats counters that
// only the network transport reports are sane on a multi-worker run —
// real bytes hit the sockets, the CrossShard split is populated, and
// Stats.Shards records the partition.
func TestNetTransportHonestyCounters(t *testing.T) {
	g := gen.Gnp(300, 0.15, 7)
	const p = 5 // a coordinator plus 4 workers
	res, wireBytes, err := dist.LoopbackSparsify(g, 0.75, 4, 0, 11, p, netTestTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Shards != p {
		t.Fatalf("Stats.Shards=%d, want %d", res.Stats.Shards, p)
	}
	if res.Stats.CrossShardMessages == 0 {
		t.Fatal("no cross-shard traffic on a connected graph")
	}
	if wireBytes == 0 {
		t.Fatal("no bytes on the wire")
	}
	if res.PeakViewWords <= 0 {
		t.Fatal("no per-worker peak footprint gathered")
	}
}

// TestNetMatchesSharded: for equal (graph, seed, P) the network
// transport's CrossShard split equals the sharded transport's — the
// wire bill is a property of the partition, not of the medium.
func TestNetMatchesSharded(t *testing.T) {
	g := gen.Gnp(350, 0.08, 13)
	for _, p := range []int{2, 4} {
		sh := dist.SparsifySharded(g, 0.75, 4, 0, 5, p).Stats
		res, _, err := dist.LoopbackSparsify(g, 0.75, 4, 0, 5, p, netTestTimeout)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		nt := res.Stats
		if nt.CrossShardMessages != sh.CrossShardMessages || nt.CrossShardWords != sh.CrossShardWords {
			t.Fatalf("P=%d: cross-shard split diverges: net %+v vs sharded %+v", p, nt, sh)
		}
	}
}

// TestNetWorkerStatsMatchCoordinator: the round-tally handshake makes
// every process's ledger global — a worker reports the same totals as
// the coordinator.
func TestNetWorkerStatsMatchCoordinator(t *testing.T) {
	g := gen.Gnp(200, 0.1, 3)
	const p = 3
	coord, err := dist.ListenNet("127.0.0.1:0", g.N, p, netTestTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	statsCh := make(chan dist.Stats, p-1)
	errCh := make(chan error, p-1)
	for s := 1; s < p; s++ {
		go func(s int) {
			tr, err := dist.JoinNet(coord.Addr(), g.N, s, p, netTestTimeout)
			if err != nil {
				errCh <- err
				return
			}
			defer tr.Close()
			st, err := dist.RunNetWorker(tr, graph.PartitionOf(g, s, p))
			if err != nil {
				errCh <- err
				return
			}
			statsCh <- st
		}(s)
	}
	res, _, err := dist.RunNetCoordinator(coord, graph.PartitionOf(g, 0, p), 0.75, 4, 0, 21)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p-1; i++ {
		select {
		case err := <-errCh:
			t.Fatal(err)
		case st := <-statsCh:
			if st.Rounds != res.Stats.Rounds || st.Messages != res.Stats.Messages ||
				st.Words != res.Stats.Words || st.CrossShardWords != res.Stats.CrossShardWords {
				t.Fatalf("worker ledger diverges from coordinator: %+v vs %+v", st, res.Stats)
			}
		case <-time.After(netTestTimeout):
			t.Fatal("worker did not finish")
		}
	}
}

// TestNetHandshakeValidation: joins with a mismatched configuration
// are rejected before any round runs.
func TestNetHandshakeValidation(t *testing.T) {
	if _, err := dist.ListenNet("127.0.0.1:0", 10, 100, netTestTimeout); err == nil {
		t.Fatal("accepted more shards than vertices")
	}
	if _, err := dist.JoinNet("127.0.0.1:1", 10, 0, 2, time.Second); err == nil {
		t.Fatal("shard 0 joined as a worker")
	}
	coord, err := dist.ListenNet("127.0.0.1:0", 10, 2, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	done := make(chan error, 1)
	go func() {
		// Wrong n: the coordinator must refuse, and WaitReady fail.
		_, err := dist.JoinNet(coord.Addr(), 11, 1, 2, 2*time.Second)
		done <- err
	}()
	if err := coord.WaitReady(); err == nil {
		t.Fatal("coordinator accepted a mismatched worker")
	}
	if err := <-done; err == nil {
		t.Fatal("mismatched worker joined successfully")
	}
}

// TestPartitionSparsifySingleShard: SparsifyPartition on a 1-shard
// network transport (no sockets at all) matches the in-memory run —
// the partition view itself is output-neutral.
func TestPartitionSparsifySingleShard(t *testing.T) {
	g := gen.Gnp(150, 0.12, 17)
	ref := dist.Sparsify(g, 0.75, 4, 0, 3)
	res, _, err := dist.LoopbackSparsify(g, 0.75, 4, 0, 3, 1, netTestTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if res.G.M() != ref.G.M() {
		t.Fatalf("m=%d vs %d", res.G.M(), ref.G.M())
	}
	for i := range ref.G.Edges {
		if res.G.Edges[i] != ref.G.Edges[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}
