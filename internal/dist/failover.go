package dist

import (
	"errors"
	"fmt"
	"io"
	"net"
)

// Coordinator failover: surviving SIGKILL of shard 0.
//
// The worker-death story (recovery.go territory: heartbeats, rollback,
// checkpointed replay) leaves one single point of failure — the
// coordinator. With failover armed (NetConfig.Failover +
// WorkerConfig.Failover on every process) that hole closes:
//
//  1. At the join handshake every worker pre-binds a STANDBY hub
//     listener and announces its address in an appended
//     frameFailoverAddr. The listener stays silent — it costs one fd —
//     until an election needs it.
//  2. The coordinator assembles the standby address book and
//     broadcasts it at the top of every attempt, right after the
//     checkpoint. Every worker therefore holds, at all times, the same
//     book, the same raw job-header bytes, and the same decoded
//     checkpoint as every other worker.
//  3. When a worker loses its hub connection (EOF, reset, or timeout —
//     isConnLoss), the election is a pure function of the shared book:
//     the lowest-numbered shard with a standby address is the new
//     coordinator. No votes, no extra round trips, no split brain —
//     every survivor computes the same winner from the same bytes.
//  4. The elected worker adopts shard 0: its standby listener becomes
//     the hub listener, it re-broadcasts the stashed job header
//     VERBATIM plus the checkpoint, asks the host to respawn its now
//     vacated shard (WorkerConfig.Respawn), and runs the normal
//     coordinator recovery loop. The other survivors dial the book
//     address and rejoin as their old shards with fresh standby
//     listeners.
//
// Replay from the broadcast checkpoint is deterministic (every round
// is a pure function of seed, partition, and round number), so the
// output and the Stats ledger are bit-identical to a failure-free run.
//
// Deliberate scope limits, both surfaced as descriptive errors rather
// than hangs: a coordinator that dies before the first book broadcast
// leaves the workers with no book (nothing to elect from — the fleet
// was never fully formed), and a second coordinator death after the
// fleet has already failed over once is survivable only if the new
// book reached the survivors; a cascade faster than one attempt is
// not retried.

// isConnLoss reports whether err looks like the peer vanished —
// connection loss, reset, timeout, or EOF mid-frame — as opposed to a
// protocol violation, checksum mismatch, or local logic error. Only
// connection loss triggers a failover election: a protocol violation
// on a live link means a bug, and electing a new coordinator would
// just replay it.
func isConnLoss(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

// electedShard returns the failover winner: the lowest-numbered shard
// with a standby address in this process's copy of the book, or -1
// when no book was ever broadcast (coordinator died before the fleet
// formed). The book is identical on every survivor, so every survivor
// elects the same shard without communicating.
func (t *NetTransport) electedShard() int {
	for s := 1; s < len(t.failAddrs); s++ {
		if t.failAddrs[s] != "" {
			return s
		}
	}
	return -1
}

// adoptCoordinator builds the shard-0 transport of an elected worker:
// a fresh coordinator NetTransport whose hub listener is the old
// transport's pre-bound standby listener, carrying over the stashed
// job header and checkpoint so the new coordinator re-broadcasts
// exactly what the dead one last did. The old worker transport is
// closed (standby excepted — it changes hands first).
func adoptCoordinator(old *NetTransport) (*NetTransport, error) {
	if old.standby == nil {
		return nil, fmt.Errorf("dist: elected shard %d has no standby listener to adopt", old.self)
	}
	t, err := newNetTransport(old.part.n, 0, old.part.p, old.timeout)
	if err != nil {
		return nil, err
	}
	t.ln, old.standby = old.standby, nil
	t.mesh = old.mesh
	t.failover = old.failover
	t.lastHeader = old.lastHeader
	t.lastCkpt = old.lastCkpt
	old.Close()
	return t, nil
}
