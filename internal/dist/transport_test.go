package dist_test

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
)

// TestShardedSpannerEquivalence is the tentpole invariant: the sharded
// transport changes how messages travel (per-shard-pair buffers,
// parallel per-shard compute), not what is decided, so for equal seeds
// the spanner mask and clustering are bit-identical to the in-memory
// transport's at every shard count.
func TestShardedSpannerEquivalence(t *testing.T) {
	cases := []*graph.Graph{
		gen.Gnp(400, 0.05, 3),
		gen.Barbell(30, 4),
		gen.Grid2D(20, 25),
		gen.WithRandomWeights(gen.Gnp(150, 0.2, 5), 0.1, 10, 9),
	}
	for gi, g := range cases {
		for _, seed := range []uint64{1, 42} {
			ref := dist.BaswanaSen(g, 0, seed)
			for _, p := range []int{1, 2, 4, 8} {
				sh := dist.BaswanaSenSharded(g, 0, seed, p)
				if sh.K != ref.K {
					t.Fatalf("case %d seed %d P=%d: K %d != %d", gi, seed, p, sh.K, ref.K)
				}
				for i := range ref.InSpanner {
					if sh.InSpanner[i] != ref.InSpanner[i] {
						t.Fatalf("case %d seed %d P=%d: edge %d sharded=%v mem=%v",
							gi, seed, p, i, sh.InSpanner[i], ref.InSpanner[i])
					}
				}
				for v := range ref.Center {
					if sh.Center[v] != ref.Center[v] {
						t.Fatalf("case %d seed %d P=%d: center[%d] sharded=%d mem=%d",
							gi, seed, p, v, sh.Center[v], ref.Center[v])
					}
				}
			}
		}
	}
}

// TestShardedSparsifyEquivalence: the full Algorithm 2 pipeline is
// edge-identical across transports and shard counts, so every spectral
// guarantee proven for the in-memory path transfers to the sharded one.
func TestShardedSparsifyEquivalence(t *testing.T) {
	cases := []*graph.Graph{
		gen.Gnp(300, 0.15, 7),
		gen.Complete(120),
	}
	for gi, g := range cases {
		ref := dist.Sparsify(g, 0.75, 4, 0, 11)
		for _, p := range []int{1, 2, 4, 8} {
			sh := dist.SparsifySharded(g, 0.75, 4, 0, 11, p)
			if sh.G.N != ref.G.N || sh.G.M() != ref.G.M() {
				t.Fatalf("case %d P=%d: sharded %v vs mem %v", gi, p, sh.G, ref.G)
			}
			for i := range ref.G.Edges {
				if sh.G.Edges[i] != ref.G.Edges[i] {
					t.Fatalf("case %d P=%d: edge %d differs: %+v vs %+v",
						gi, p, i, sh.G.Edges[i], ref.G.Edges[i])
				}
			}
		}
	}
}

// TestShardedLedgerMatchesMem: the ledger is transport-independent up
// to the CrossShard split — Rounds, Messages, Words, MaxMessageWords
// and every per-phase row agree between transports at any P.
func TestShardedLedgerMatchesMem(t *testing.T) {
	g := gen.Gnp(350, 0.08, 13)
	ref := dist.Sparsify(g, 0.75, 4, 0, 5).Stats
	for _, p := range []int{1, 2, 4, 8} {
		st := dist.SparsifySharded(g, 0.75, 4, 0, 5, p).Stats
		if st.Shards != p {
			t.Fatalf("P=%d: Stats.Shards=%d", p, st.Shards)
		}
		if st.Rounds != ref.Rounds || st.Messages != ref.Messages ||
			st.Words != ref.Words || st.MaxMessageWords != ref.MaxMessageWords {
			t.Fatalf("P=%d: totals diverge: sharded %+v vs mem %+v", p, st, ref)
		}
		if len(st.Phases) != len(ref.Phases) {
			t.Fatalf("P=%d: phase count %d vs %d", p, len(st.Phases), len(ref.Phases))
		}
		for i, ph := range st.Phases {
			rp := ref.Phases[i]
			if ph.Name != rp.Name || ph.Rounds != rp.Rounds ||
				ph.Messages != rp.Messages || ph.Words != rp.Words {
				t.Fatalf("P=%d: phase %q diverges: %+v vs %+v", p, ph.Name, ph, rp)
			}
		}
		if p == 1 && (st.CrossShardMessages != 0 || st.CrossShardWords != 0) {
			t.Fatalf("P=1 cannot have cross-shard traffic: %+v", st)
		}
		if p > 1 && st.CrossShardMessages == 0 {
			t.Fatalf("P=%d on a connected graph saw no cross-shard traffic", p)
		}
		if st.CrossShardMessages > st.Messages || st.CrossShardWords > st.Words {
			t.Fatalf("P=%d: cross-shard exceeds totals: %+v", p, st)
		}
	}
	if ref.Shards != 1 || ref.CrossShardMessages != 0 {
		t.Fatalf("in-memory ledger should report one shard, no cross traffic: %+v", ref)
	}
}

// TestShardedTransportPartition: the ownership partition is a balanced
// contiguous cover, ShardOf inverts it, and shard counts clamp sanely.
func TestShardedTransportPartition(t *testing.T) {
	for _, tc := range []struct{ n, p, want int }{
		{100, 4, 4}, {100, 0, 1}, {100, -3, 1}, {3, 8, 3}, {0, 4, 1},
	} {
		tr := dist.NewShardedTransport(tc.n, tc.p)
		if tr.Shards() != tc.want {
			t.Fatalf("n=%d p=%d: shards %d want %d", tc.n, tc.p, tr.Shards(), tc.want)
		}
		seen := 0
		for s := 0; s < tr.Shards(); s++ {
			// Every vertex must be owned by exactly the shard whose
			// range contains it.
			for v := int32(0); v < int32(tc.n); v++ {
				if tr.ShardOf(v) == s {
					seen++
				}
			}
		}
		if seen != tc.n {
			t.Fatalf("n=%d p=%d: partition covers %d vertices", tc.n, tc.p, seen)
		}
	}
	// Contiguity and balance for one concrete partition.
	tr := dist.NewShardedTransport(10, 3)
	prev := 0
	for v := int32(0); v < 10; v++ {
		s := tr.ShardOf(v)
		if s < prev || s > prev+1 {
			t.Fatalf("partition not contiguous at v=%d: shard %d after %d", v, s, prev)
		}
		prev = s
	}
	if prev != 2 {
		t.Fatalf("last vertex owned by shard %d, want 2", prev)
	}
}

// TestShardedEdgeCases mirrors the degenerate-input ledger checks on
// the sharded transport: edgeless graphs, k=1, and rho<=1 all terminate
// with sane (message-free) ledgers at P>1.
func TestShardedEdgeCases(t *testing.T) {
	empty := dist.BaswanaSenSharded(graph.New(10), 0, 1, 4)
	if graph.CountTrue(empty.InSpanner) != 0 || empty.Stats.Messages != 0 {
		t.Fatalf("edgeless ledger: %+v", empty.Stats)
	}
	k1 := dist.BaswanaSenSharded(gen.Complete(10), 1, 1, 4)
	if graph.CountTrue(k1.InSpanner) != gen.Complete(10).M() || k1.Stats.Messages != 0 {
		t.Fatalf("k=1 spanner must be the graph itself: %+v", k1.Stats)
	}
	g := gen.Gnp(50, 0.2, 19)
	id := dist.SparsifySharded(g, 0.5, 1, 0, 11, 4)
	if id.G.M() != g.M() || id.Stats.Rounds != 0 || id.Stats.Messages != 0 {
		t.Fatalf("rho<=1 should be a free identity: %+v", id.Stats)
	}
}
