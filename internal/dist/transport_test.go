package dist_test

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
)

// The output-equivalence pins (spanner mask, clustering, sparsified
// edge list, Stats — bit-identical across every transport and shard
// count) live in the cross-transport matrix of equivalence_test.go.
// This file keeps the transport-SPECIFIC properties: the cross-shard
// ledger split, the partition geometry, and degenerate inputs.

// TestShardedLedgerMatchesMem: the ledger is transport-independent up
// to the CrossShard split — Rounds, Messages, Words, MaxMessageWords
// and every per-phase row agree between transports at any P.
func TestShardedLedgerMatchesMem(t *testing.T) {
	g := gen.Gnp(350, 0.08, 13)
	ref := runSparsify(t, dist.Mem(), g, 0.75, 4, 0, 5).Stats
	for _, p := range []int{1, 2, 4, 8} {
		st := runSparsify(t, dist.Sharded(p), g, 0.75, 4, 0, 5).Stats
		if st.Shards != p {
			t.Fatalf("P=%d: Stats.Shards=%d", p, st.Shards)
		}
		if st.Rounds != ref.Rounds || st.Messages != ref.Messages ||
			st.Words != ref.Words || st.MaxMessageWords != ref.MaxMessageWords {
			t.Fatalf("P=%d: totals diverge: sharded %+v vs mem %+v", p, st, ref)
		}
		if len(st.Phases) != len(ref.Phases) {
			t.Fatalf("P=%d: phase count %d vs %d", p, len(st.Phases), len(ref.Phases))
		}
		for i, ph := range st.Phases {
			rp := ref.Phases[i]
			if ph.Name != rp.Name || ph.Rounds != rp.Rounds ||
				ph.Messages != rp.Messages || ph.Words != rp.Words {
				t.Fatalf("P=%d: phase %q diverges: %+v vs %+v", p, ph.Name, ph, rp)
			}
		}
		if p == 1 && (st.CrossShardMessages != 0 || st.CrossShardWords != 0) {
			t.Fatalf("P=1 cannot have cross-shard traffic: %+v", st)
		}
		if p > 1 && st.CrossShardMessages == 0 {
			t.Fatalf("P=%d on a connected graph saw no cross-shard traffic", p)
		}
		if st.CrossShardMessages > st.Messages || st.CrossShardWords > st.Words {
			t.Fatalf("P=%d: cross-shard exceeds totals: %+v", p, st)
		}
	}
	if ref.Shards != 1 || ref.CrossShardMessages != 0 {
		t.Fatalf("in-memory ledger should report one shard, no cross traffic: %+v", ref)
	}
}

// TestShardedTransportPartition: the ownership partition is a balanced
// contiguous cover, ShardOf inverts it, and shard counts clamp sanely.
func TestShardedTransportPartition(t *testing.T) {
	for _, tc := range []struct{ n, p, want int }{
		{100, 4, 4}, {100, 0, 1}, {100, -3, 1}, {3, 8, 3}, {0, 4, 1},
	} {
		tr := dist.NewShardedTransport(tc.n, tc.p)
		if tr.Shards() != tc.want {
			t.Fatalf("n=%d p=%d: shards %d want %d", tc.n, tc.p, tr.Shards(), tc.want)
		}
		seen := 0
		for s := 0; s < tr.Shards(); s++ {
			// Every vertex must be owned by exactly the shard whose
			// range contains it.
			for v := int32(0); v < int32(tc.n); v++ {
				if tr.ShardOf(v) == s {
					seen++
				}
			}
		}
		if seen != tc.n {
			t.Fatalf("n=%d p=%d: partition covers %d vertices", tc.n, tc.p, seen)
		}
	}
	// Contiguity and balance for one concrete partition.
	tr := dist.NewShardedTransport(10, 3)
	prev := 0
	for v := int32(0); v < 10; v++ {
		s := tr.ShardOf(v)
		if s < prev || s > prev+1 {
			t.Fatalf("partition not contiguous at v=%d: shard %d after %d", v, s, prev)
		}
		prev = s
	}
	if prev != 2 {
		t.Fatalf("last vertex owned by shard %d, want 2", prev)
	}
}

// TestShardedEdgeCases mirrors the degenerate-input ledger checks on
// the sharded transport: edgeless graphs, k=1, and rho<=1 all terminate
// with sane (message-free) ledgers at P>1.
func TestShardedEdgeCases(t *testing.T) {
	empty := runSpanner(t, dist.Sharded(4), graph.New(10), 0, 1)
	if graph.CountTrue(empty.Output.InSpanner) != 0 || empty.Stats.Messages != 0 {
		t.Fatalf("edgeless ledger: %+v", empty.Stats)
	}
	k1 := runSpanner(t, dist.Sharded(4), gen.Complete(10), 1, 1)
	if graph.CountTrue(k1.Output.InSpanner) != gen.Complete(10).M() || k1.Stats.Messages != 0 {
		t.Fatalf("k=1 spanner must be the graph itself: %+v", k1.Stats)
	}
	g := gen.Gnp(50, 0.2, 19)
	id := runSparsify(t, dist.Sharded(4), g, 0.5, 1, 0, 11)
	if id.Output.M() != g.M() || id.Stats.Rounds != 0 || id.Stats.Messages != 0 {
		t.Fatalf("rho<=1 should be a free identity: %+v", id.Stats)
	}
}
