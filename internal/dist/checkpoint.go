package dist

import (
	"encoding/binary"
	"fmt"
)

// Checkpointing for the recovery path of Net runs.
//
// Every round of a job is a pure function of (seed, partition, round
// number), so recovery is deterministic replay — the only state worth
// checkpointing is the small inter-round data that was GATHERED across
// shards and would otherwise cost re-running the rounds that produced
// it. For the sparsifier that is exactly one list per sampling epoch
// (one Algorithm 1 iteration): the sorted in-bundle global edge ids
// from the renumbering gather, O(bundle) = O(output) words — never
// Θ(m), per the PR 4 memory invariant. Together with the ledger
// snapshot at the epoch boundary, a process can fast-forward its
// partition view through the recorded epochs locally (renumberPart +
// the pure seed-derived sampling coins) without a single network
// round, then resume live execution bit-identically.
//
// The coordinator holds the durable ckptState across attempts and
// re-broadcasts its encoding at the start of every attempt, right
// after the job header — so a freshly respawned worker needs no
// special resume mode: every process of every attempt decodes the same
// checkpoint and replays the same prefix. The spanner job records no
// mid-run state (its recovery is replay from the top, still
// bit-identical); a checkpoint with epochs for a checkpoint-free job
// is a protocol violation.
const (
	ckptMagic   = uint32(0x434b3031) // "CK01"
	ckptVersion = uint32(1)

	// maxCkptEpochs bounds the decoded epoch count; ⌈log₂ρ⌉ epochs is
	// tiny, the bound only keeps a corrupt header off the allocator.
	maxCkptEpochs = 1 << 20
	// maxCkptPhases/maxCkptNameLen bound the ledger snapshot decoding.
	maxCkptPhases  = 1 << 16
	maxCkptNameLen = 256
)

// ckptState is the recovery state of one Net run: the durable epoch
// count, the ledger snapshot at that boundary, and the gathered
// in-bundle id list of every recorded epoch. every is the cadence
// (NetConfig.CheckpointEvery): a checkpoint becomes durable each time
// `every` epochs complete; negative disables recording entirely, in
// which case recovery replays from epoch 0.
type ckptState struct {
	every  int
	epochs int       // completed epochs covered by stats (durable boundary)
	stats  Stats     // ledger snapshot at the durable boundary
	lists  [][]int32 // gathered in-bundle global ids per recorded epoch
	// onDurable, when non-nil, receives the freshly encoded checkpoint
	// each time the durable boundary advances (NetConfig.OnCheckpoint —
	// set only on the coordinator's durable state, never on a worker's
	// decoded copy).
	onDurable func(ckpt []byte)
}

// record notes one completed sampling epoch. Epochs arrive in order
// starting from the replayed prefix; the durable boundary advances
// only on the cadence, so a crash between checkpoints replays at most
// `every` epochs.
func (ck *ckptState) record(epoch int, bundleIDs []int32, re *roundEngine) {
	if ck == nil || ck.every < 0 {
		return
	}
	ck.lists = append(ck.lists[:epoch], bundleIDs)
	every := ck.every
	if every <= 0 {
		every = 1
	}
	if (epoch+1)%every == 0 {
		ck.epochs = epoch + 1
		ck.stats = re.Stats()
		if ck.onDurable != nil {
			ck.onDurable(encodeCkpt(ck))
		}
	}
}

// encodeCkpt frames the durable prefix of the checkpoint — the epochs
// up to the last cadence boundary and the ledger snapshot there. The
// layout is little-endian and versioned (bump, don't mutate):
//
//	[0:4)   ckptMagic
//	[4:8)   ckptVersion
//	[8:12)  durable epoch count E
//	[12:60) ledger snapshot: Rounds, Messages, Words (u64),
//	        MaxMessageWords (u32), CrossShardMessages, CrossShardWords
//	        (u64), Shards (u32)
//	[60:64) phase count
//	per phase: name length (u32), name bytes, then Rounds, Messages,
//	        Words, CrossShardMessages, CrossShardWords (u64 each)
//	per epoch (E times): id count (u32), then that many int32 ids
func encodeCkpt(ck *ckptState) []byte {
	size := 64
	for _, ph := range ck.stats.Phases {
		size += 4 + len(ph.Name) + 40
	}
	for e := 0; e < ck.epochs; e++ {
		size += 4 + 4*len(ck.lists[e])
	}
	b := make([]byte, 0, size)
	b = binary.LittleEndian.AppendUint32(b, ckptMagic)
	b = binary.LittleEndian.AppendUint32(b, ckptVersion)
	b = binary.LittleEndian.AppendUint32(b, uint32(ck.epochs))
	s := ck.stats
	b = binary.LittleEndian.AppendUint64(b, uint64(s.Rounds))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.Messages))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.Words))
	b = binary.LittleEndian.AppendUint32(b, uint32(s.MaxMessageWords))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.CrossShardMessages))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.CrossShardWords))
	b = binary.LittleEndian.AppendUint32(b, uint32(s.Shards))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s.Phases)))
	for _, ph := range s.Phases {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(ph.Name)))
		b = append(b, ph.Name...)
		b = binary.LittleEndian.AppendUint64(b, uint64(ph.Rounds))
		b = binary.LittleEndian.AppendUint64(b, uint64(ph.Messages))
		b = binary.LittleEndian.AppendUint64(b, uint64(ph.Words))
		b = binary.LittleEndian.AppendUint64(b, uint64(ph.CrossShardMessages))
		b = binary.LittleEndian.AppendUint64(b, uint64(ph.CrossShardWords))
	}
	for e := 0; e < ck.epochs; e++ {
		ids := ck.lists[e]
		b = binary.LittleEndian.AppendUint32(b, uint32(len(ids)))
		for _, id := range ids {
			b = binary.LittleEndian.AppendUint32(b, uint32(id))
		}
	}
	return b
}

// ckptCursor is the incremental reader of decodeCkpt: every read is
// bounds-checked against the remaining bytes, so a corrupt or
// truncated blob errors instead of panicking or over-allocating.
type ckptCursor struct {
	b   []byte
	off int
}

func (c *ckptCursor) remaining() int { return len(c.b) - c.off }

func (c *ckptCursor) u32() (uint32, error) {
	if c.remaining() < 4 {
		return 0, fmt.Errorf("dist: truncated checkpoint at byte %d", c.off)
	}
	v := binary.LittleEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v, nil
}

func (c *ckptCursor) u64() (uint64, error) {
	if c.remaining() < 8 {
		return 0, fmt.Errorf("dist: truncated checkpoint at byte %d", c.off)
	}
	v := binary.LittleEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v, nil
}

func (c *ckptCursor) bytes(n int) ([]byte, error) {
	if n < 0 || c.remaining() < n {
		return nil, fmt.Errorf("dist: truncated checkpoint at byte %d", c.off)
	}
	v := c.b[c.off : c.off+n]
	c.off += n
	return v, nil
}

// decodeCkpt validates and decodes a broadcast checkpoint blob. Every
// count is bounded by the bytes actually present, and the per-epoch id
// lists must be strictly increasing (the gather invariant replay
// relies on) — so a worker never trusts a corrupt checkpoint.
func decodeCkpt(blob []byte) (*ckptState, error) {
	c := &ckptCursor{b: blob}
	magic, err := c.u32()
	if err != nil {
		return nil, err
	}
	if magic != ckptMagic {
		return nil, fmt.Errorf("dist: bad checkpoint magic %#x", magic)
	}
	version, err := c.u32()
	if err != nil {
		return nil, err
	}
	if version != ckptVersion {
		return nil, fmt.Errorf("dist: checkpoint version %d, want %d (mixed-version run?)", version, ckptVersion)
	}
	epochs, err := c.u32()
	if err != nil {
		return nil, err
	}
	if epochs > maxCkptEpochs {
		return nil, fmt.Errorf("dist: implausible checkpoint epoch count %d", epochs)
	}
	ck := &ckptState{epochs: int(epochs)}
	var fields [6]uint64
	for i := 0; i < 3; i++ {
		if fields[i], err = c.u64(); err != nil {
			return nil, err
		}
	}
	maxW, err := c.u32()
	if err != nil {
		return nil, err
	}
	for i := 3; i < 5; i++ {
		if fields[i], err = c.u64(); err != nil {
			return nil, err
		}
	}
	shards, err := c.u32()
	if err != nil {
		return nil, err
	}
	ck.stats = Stats{
		Rounds:             int(int64(fields[0])),
		Messages:           int64(fields[1]),
		Words:              int64(fields[2]),
		MaxMessageWords:    int(int32(maxW)),
		CrossShardMessages: int64(fields[3]),
		CrossShardWords:    int64(fields[4]),
		Shards:             int(int32(shards)),
	}
	phases, err := c.u32()
	if err != nil {
		return nil, err
	}
	if phases > maxCkptPhases {
		return nil, fmt.Errorf("dist: implausible checkpoint phase count %d", phases)
	}
	for i := 0; i < int(phases); i++ {
		nameLen, err := c.u32()
		if err != nil {
			return nil, err
		}
		if nameLen > maxCkptNameLen {
			return nil, fmt.Errorf("dist: implausible checkpoint phase name length %d", nameLen)
		}
		name, err := c.bytes(int(nameLen))
		if err != nil {
			return nil, err
		}
		var ph PhaseStats
		ph.Name = string(name)
		vals := []*int64{&ph.Messages, &ph.Words, &ph.CrossShardMessages, &ph.CrossShardWords}
		rounds, err := c.u64()
		if err != nil {
			return nil, err
		}
		ph.Rounds = int(int64(rounds))
		for _, v := range vals {
			u, err := c.u64()
			if err != nil {
				return nil, err
			}
			*v = int64(u)
		}
		ck.stats.Phases = append(ck.stats.Phases, ph)
	}
	ck.lists = make([][]int32, ck.epochs)
	for e := 0; e < ck.epochs; e++ {
		count, err := c.u32()
		if err != nil {
			return nil, err
		}
		raw, err := c.bytes(int(count) * 4)
		if err != nil {
			return nil, err
		}
		ids := parseInt32s(raw)
		for i, id := range ids {
			if id < 0 || (i > 0 && id <= ids[i-1]) {
				return nil, fmt.Errorf("dist: checkpoint epoch %d id list not strictly increasing at index %d", e, i)
			}
		}
		ck.lists[e] = ids
	}
	if c.remaining() != 0 {
		return nil, fmt.Errorf("dist: %d trailing bytes after checkpoint", c.remaining())
	}
	return ck, nil
}
