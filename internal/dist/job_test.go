package dist

import (
	"encoding/binary"
	"encoding/hex"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// TestJobNames: the registry lists exactly the built-in jobs, sorted —
// what cmd/distworker resolves -job against and reports on an unknown
// name.
func TestJobNames(t *testing.T) {
	got := JobNames()
	want := []string{"spanner", "sparsify"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("JobNames() = %v, want %v", got, want)
	}
	for _, name := range got {
		if len(name) > jobNameLen {
			t.Fatalf("job name %q exceeds the %d-byte wire field", name, jobNameLen)
		}
	}
}

// TestJobWireSchemas pins each built-in job's broadcast header —
// version, sizes, name field, and the full parameter block — against
// golden bytes, and round-trips it through the decoder. A schema
// change (field added, reordered, or re-sized) flips the goldens, so
// it cannot silently break mixed-version runs: bump jobWireVersion
// and update the goldens deliberately.
func TestJobWireSchemas(t *testing.T) {
	cases := []struct {
		name   string
		impl   interface{ name() string }
		header []byte
		golden string
	}{
		{
			name:   "spanner",
			header: encodeJobHeader(jobNameSpanner, 5, 4, spannerImpl{k: 3, seed: 0x0102030405060708}.params()),
			golden: "02000000" + // jobWireVersion
				"0500000000000000" + "0400000000000000" + // n, m
				"7370616e6e65720000000000" + // "spanner" NUL-padded
				"10000000" + // 16 param bytes
				"0300000000000000" + "0807060504030201", // k, seed
		},
		{
			name: "sparsify",
			header: encodeJobHeader(jobNameSparsify, 10, 20, sparsifyImpl{
				eps: 0.5, rho: 4,
				cfg: core.Config{BundleConst: 0.1, BundleLogPow: 1, BundleT: 2, KeepProb: 0.25, Seed: 9},
			}.params()),
			golden: "02000000" + // jobWireVersion
				"0a00000000000000" + "1400000000000000" + // n, m
				"737061727369667900000000" + // "sparsify" NUL-padded
				"40000000" + // 64 param bytes
				"000000000000e03f" + "0000000000001040" + // eps, rho
				"9a9999999999b93f" + "000000000000d03f" + // BundleConst, KeepProb
				"0100000000000000" + "0200000000000000" + // BundleLogPow, BundleT
				"0000000000000000" + "0900000000000000", // SpannerK, Seed
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := hex.EncodeToString(tc.header); got != tc.golden {
				t.Fatalf("wire schema changed:\n got  %s\n want %s\nbump jobWireVersion if this is deliberate", got, tc.golden)
			}
		})
	}
}

// TestJobHeaderRoundTrip: both jobs' parameters survive the
// encode/adopt cycle a worker runs on every broadcast.
func TestJobHeaderRoundTrip(t *testing.T) {
	g := gen.Gnp(30, 0.3, 3)
	part := graph.PartitionOf(g, 0, 1)

	sj := spannerImpl{k: 2, seed: 77}
	got, err := adoptJobHeader[*SpannerOutput](spannerImpl{}, encodeJobHeader(sj.name(), part.N, part.M, sj.params()), part)
	if err != nil {
		t.Fatal(err)
	}
	if got.(spannerImpl) != sj {
		t.Fatalf("spanner params mangled: %+v vs %+v", got, sj)
	}

	pj := sparsifyImpl{eps: 0.75, rho: 8, cfg: core.TheoryConfig(42)}
	gotp, err := adoptJobHeader[*graph.Graph](sparsifyImpl{}, encodeJobHeader(pj.name(), part.N, part.M, pj.params()), part)
	if err != nil {
		t.Fatal(err)
	}
	if gotp.(sparsifyImpl) != pj {
		t.Fatalf("sparsify params mangled: %+v vs %+v", gotp, pj)
	}
}

// TestJobHeaderValidation: a worker rejects headers that could only
// come from a different build or a different run — unknown job names
// (with the registered list in the error), version skew, truncations,
// parameter blocks of the wrong size, and size mismatches against the
// local partition.
func TestJobHeaderValidation(t *testing.T) {
	g := gen.Gnp(30, 0.3, 3)
	part := graph.PartitionOf(g, 0, 1)
	good := encodeJobHeader(jobNameSpanner, part.N, part.M, spannerImpl{k: 1, seed: 1}.params())

	bogus := append([]byte(nil), good...)
	copy(bogus[20:32], []byte("clustering\x00\x00"))
	if _, _, _, _, err := decodeJobHeader(bogus); err == nil ||
		!strings.Contains(err.Error(), "sparsify") || !strings.Contains(err.Error(), "spanner") {
		t.Fatalf("unregistered job name not rejected with the registered list: %v", err)
	}

	skew := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(skew[0:], jobWireVersion+1)
	if _, _, _, _, err := decodeJobHeader(skew); err == nil {
		t.Fatal("version skew accepted")
	}

	if _, _, _, _, err := decodeJobHeader(good[:10]); err == nil {
		t.Fatal("truncated header accepted")
	}

	short := append([]byte(nil), good[:len(good)-4]...)
	if _, _, _, _, err := decodeJobHeader(short); err == nil {
		t.Fatal("truncated parameter block accepted")
	}

	if _, err := adoptJobHeader[*SpannerOutput](spannerImpl{}, encodeJobHeader(jobNameSpanner, part.N+1, part.M, spannerImpl{}.params()), part); err == nil {
		t.Fatal("size mismatch against the partition accepted")
	}
}
