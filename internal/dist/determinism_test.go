package dist_test

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/spectral"
)

// TestSparsifyDeterministicSeed guards the rng plumbing: every random
// decision derives from (seed, structural index) via split streams, so
// equal seeds give identical edge sets at any GOMAXPROCS, and the
// ledger is identical too.
func TestSparsifyDeterministicSeed(t *testing.T) {
	g := gen.Gnp(400, 0.1, 8)
	a := runSparsify(t, dist.Mem(), g, 0.75, 4, 0, 1234)
	b := runSparsify(t, dist.Mem(), g, 0.75, 4, 0, 1234)
	if a.Output.M() != b.Output.M() {
		t.Fatalf("edge counts differ: %d vs %d", a.Output.M(), b.Output.M())
	}
	for i := range a.Output.Edges {
		if a.Output.Edges[i] != b.Output.Edges[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, a.Output.Edges[i], b.Output.Edges[i])
		}
	}
	if a.Stats.Rounds != b.Stats.Rounds || a.Stats.Messages != b.Stats.Messages ||
		a.Stats.Words != b.Stats.Words {
		t.Fatalf("ledgers differ: %+v vs %+v", a.Stats, b.Stats)
	}
}

// TestSparsifyDifferentSeedsSameQuality: independent seeds give
// different samples (the randomness is real) of statistically
// equivalent quality — sizes within a factor of two of each other and
// both meeting a loose eps ceiling under the exact dense verifier.
func TestSparsifyDifferentSeedsSameQuality(t *testing.T) {
	g := gen.Gnp(150, 0.4, 6)
	a := runSparsify(t, dist.Mem(), g, 0.75, 4, 0, 100)
	b := runSparsify(t, dist.Mem(), g, 0.75, 4, 0, 200)
	same := a.Output.M() == b.Output.M()
	if same {
		same = true
		for i := range a.Output.Edges {
			if a.Output.Edges[i] != b.Output.Edges[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical output — seed not plumbed through")
	}
	if a.Output.M() > 2*b.Output.M() || b.Output.M() > 2*a.Output.M() {
		t.Fatalf("sizes wildly differ across seeds: %d vs %d", a.Output.M(), b.Output.M())
	}
	for _, r := range []dist.Result[*graph.Graph]{a, b} {
		bd, err := spectral.DenseApproxFactor(g, r.Output)
		if err != nil {
			t.Fatal(err)
		}
		if bd.Epsilon() > 0.75 {
			t.Fatalf("seed-dependent quality miss: eps %v", bd.Epsilon())
		}
	}
}

// TestBaswanaSenDeterministicSeed does the same for the spanner alone.
func TestBaswanaSenDeterministicSeed(t *testing.T) {
	g := gen.Gnp(300, 0.08, 2)
	a := runSpanner(t, dist.Mem(), g, 0, 55)
	b := runSpanner(t, dist.Mem(), g, 0, 55)
	for i := range a.Output.InSpanner {
		if a.Output.InSpanner[i] != b.Output.InSpanner[i] {
			t.Fatalf("mask differs at %d", i)
		}
	}
	if !statsEqual(a.Stats, b.Stats) {
		t.Fatalf("ledgers differ: %+v vs %+v", a.Stats, b.Stats)
	}
	c := runSpanner(t, dist.Mem(), g, 0, 56)
	diff := false
	for i := range a.Output.InSpanner {
		if a.Output.InSpanner[i] != c.Output.InSpanner[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical spanners")
	}
}

func statsEqual(a, b dist.Stats) bool {
	if a.Rounds != b.Rounds || a.Messages != b.Messages || a.Words != b.Words ||
		a.MaxMessageWords != b.MaxMessageWords || len(a.Phases) != len(b.Phases) {
		return false
	}
	for i := range a.Phases {
		if a.Phases[i] != b.Phases[i] {
			return false
		}
	}
	return true
}
