package dist

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/graphio"
)

// The multi-process drivers: what cmd/distworker, the loopback
// example, and the in-test harness run on top of NetTransport. The
// coordinator broadcasts the job spec, every process runs
// SparsifyPartition over its own partition in lockstep, and the
// coordinator gathers each shard's owned edges to assemble the full
// output graph (a boundary edge is contributed by the shard owning its
// U endpoint, so it is merged exactly once).

// jobSpec is the run configuration the coordinator broadcasts so the
// workers adopt — and cross-check — the same job.
type jobSpec struct {
	N, M  int
	Eps   float64
	Rho   float64
	Depth int
	Seed  uint64
}

const jobSpecSize = 48

func encodeJobSpec(s jobSpec) []byte {
	b := make([]byte, jobSpecSize)
	binary.LittleEndian.PutUint64(b[0:], uint64(s.N))
	binary.LittleEndian.PutUint64(b[8:], uint64(s.M))
	binary.LittleEndian.PutUint64(b[16:], math.Float64bits(s.Eps))
	binary.LittleEndian.PutUint64(b[24:], math.Float64bits(s.Rho))
	binary.LittleEndian.PutUint64(b[32:], uint64(int64(s.Depth)))
	binary.LittleEndian.PutUint64(b[40:], s.Seed)
	return b
}

func decodeJobSpec(b []byte) (jobSpec, error) {
	if len(b) != jobSpecSize {
		return jobSpec{}, fmt.Errorf("dist: job spec is %d bytes, want %d", len(b), jobSpecSize)
	}
	return jobSpec{
		N:     int(binary.LittleEndian.Uint64(b[0:])),
		M:     int(binary.LittleEndian.Uint64(b[8:])),
		Eps:   math.Float64frombits(binary.LittleEndian.Uint64(b[16:])),
		Rho:   math.Float64frombits(binary.LittleEndian.Uint64(b[24:])),
		Depth: int(int64(binary.LittleEndian.Uint64(b[32:]))),
		Seed:  binary.LittleEndian.Uint64(b[40:]),
	}, nil
}

// recoverNetError converts a *NetError panic (the transport's fatal
// failure mode) into a returned error; other panics propagate.
func recoverNetError(err *error) {
	if r := recover(); r != nil {
		if ne, ok := r.(*NetError); ok {
			*err = ne
			return
		}
		panic(r)
	}
}

// RunNetCoordinator drives a whole distributed sparsification as shard
// 0 of tr's network: it waits for the workers, broadcasts the job
// spec, runs SparsifyPartition over its own partition, gathers every
// shard's owned edges, and assembles the full output graph. It also
// returns the total bytes all processes put on the wire.
func RunNetCoordinator(tr *NetTransport, part *graph.Partition, eps, rho float64, depth int, seed uint64) (res Result, wireBytes int64, err error) {
	defer recoverNetError(&err)
	if part.Shard != 0 || part.Shards != tr.Shards() {
		return Result{}, 0, fmt.Errorf("dist: coordinator needs shard 0 of %d, got %d of %d", tr.Shards(), part.Shard, part.Shards)
	}
	if err := tr.WaitReady(); err != nil {
		return Result{}, 0, err
	}
	spec := jobSpec{N: part.N, M: part.M, Eps: eps, Rho: rho, Depth: depth, Seed: seed}
	if _, err := tr.BroadcastBlob(encodeJobSpec(spec)); err != nil {
		return Result{}, 0, err
	}
	pres := SparsifyPartition(part, eps, rho, depth, seed, tr)
	g, err := gatherResult(tr, &pres)
	if err != nil {
		return Result{}, 0, err
	}
	wireBytes, peakWords, err := gatherRunCounters(tr, pres.PeakViewWords)
	if err != nil {
		return Result{}, 0, err
	}
	return Result{G: g, Stats: pres.Stats, PeakViewWords: peakWords}, wireBytes, nil
}

// RunNetWorker drives one worker shard: it adopts the coordinator's
// job spec (validating it against the local partition), runs
// SparsifyPartition, and contributes its owned edges to the gather.
// The returned Stats ledger is identical to the coordinator's.
func RunNetWorker(tr *NetTransport, part *graph.Partition) (stats Stats, err error) {
	defer recoverNetError(&err)
	if part.Shard != tr.Shard() || part.Shards != tr.Shards() {
		return Stats{}, fmt.Errorf("dist: partition %d/%d does not match transport %d/%d",
			part.Shard, part.Shards, tr.Shard(), tr.Shards())
	}
	blob, err := tr.BroadcastBlob(nil)
	if err != nil {
		return Stats{}, err
	}
	spec, err := decodeJobSpec(blob)
	if err != nil {
		return Stats{}, err
	}
	if spec.N != part.N || spec.M != part.M {
		return Stats{}, fmt.Errorf("dist: job spec (n=%d m=%d) does not match partition (n=%d m=%d)",
			spec.N, spec.M, part.N, part.M)
	}
	pres := SparsifyPartition(part, spec.Eps, spec.Rho, spec.Depth, spec.Seed, tr)
	if _, err := gatherResult(tr, &pres); err != nil {
		return Stats{}, err
	}
	if _, _, err := gatherRunCounters(tr, pres.PeakViewWords); err != nil {
		return Stats{}, err
	}
	return pres.Stats, nil
}

// gatherResult merges the shards' owned final edges at the
// coordinator; workers contribute and get nil back.
func gatherResult(tr *NetTransport, pres *PartResult) (*graph.Graph, error) {
	ids, edges := pres.OwnedEdges(tr.Shard(), tr.Shards())
	blobs, err := tr.GatherBlobs(graphio.EncodeEdgeRecords(ids, edges))
	if err != nil {
		return nil, err
	}
	if tr.Shard() != 0 {
		return nil, nil
	}
	out := make([]graph.Edge, pres.M)
	seen := make([]bool, pres.M)
	for s, blob := range blobs {
		bids, bedges, err := graphio.DecodeEdgeRecords(blob)
		if err != nil {
			return nil, fmt.Errorf("dist: shard %d result: %w", s, err)
		}
		for k, id := range bids {
			if id < 0 || int(id) >= pres.M || seen[id] {
				return nil, fmt.Errorf("dist: shard %d contributed bad or duplicate edge id %d", s, id)
			}
			out[id] = bedges[k]
			seen[id] = true
		}
	}
	for id, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("dist: no shard contributed final edge %d", id)
		}
	}
	return graph.FromEdges(pres.N, out), nil
}

// gatherRunCounters collects every process's honesty counters at the
// coordinator: the sum of bytes put on the wire and the MAXIMUM
// per-process peak view footprint — the measured per-worker
// O(m_incident) bound E13 reports. Workers contribute and get zeros.
func gatherRunCounters(tr *NetTransport, peakViewWords int) (wireBytes int64, maxPeakWords int, err error) {
	var b [16]byte
	binary.LittleEndian.PutUint64(b[0:], uint64(tr.WireBytes()))
	binary.LittleEndian.PutUint64(b[8:], uint64(peakViewWords))
	blobs, err := tr.GatherBlobs(b[:])
	if err != nil {
		return 0, 0, err
	}
	if tr.Shard() != 0 {
		return 0, 0, nil
	}
	for s, blob := range blobs {
		if len(blob) != 16 {
			return 0, 0, fmt.Errorf("dist: shard %d run counters are %d bytes", s, len(blob))
		}
		wireBytes += int64(binary.LittleEndian.Uint64(blob[0:]))
		if pw := int(binary.LittleEndian.Uint64(blob[8:])); pw > maxPeakWords {
			maxPeakWords = pw
		}
	}
	return wireBytes, maxPeakWords, nil
}

// gatherSpanner assembles the shards' partition spanner results at
// the coordinator: each process contributes the in-spanner edges it
// OWNS (the shard of the U endpoint, so every boundary edge is
// contributed exactly once) plus the final centers of its owned vertex
// range; the coordinator rebuilds the full global mask and center
// array. Workers contribute and get nil back.
func gatherSpanner(tr *NetTransport, part *graph.Partition, pres *SpannerPartResult) (*SpannerResult, error) {
	var ownIDs []int32
	for k, id := range part.IDs {
		if pres.InSpanner[k] && graph.ShardOfVertex(part.N, part.Shards, part.Edges[k].U) == part.Shard {
			ownIDs = append(ownIDs, id)
		}
	}
	owned := part.Hi - part.Lo
	blob := make([]byte, 4+4*len(ownIDs)+4*owned)
	binary.LittleEndian.PutUint32(blob[0:], uint32(len(ownIDs)))
	for k, id := range ownIDs {
		binary.LittleEndian.PutUint32(blob[4+4*k:], uint32(id))
	}
	for k, c := range pres.Center {
		binary.LittleEndian.PutUint32(blob[4+4*len(ownIDs)+4*k:], uint32(c))
	}
	blobs, err := tr.GatherBlobs(blob)
	if err != nil {
		return nil, err
	}
	if tr.Shard() != 0 {
		return nil, nil
	}
	in := make([]bool, part.M)
	center := make([]int32, part.N)
	bounds := graph.ShardBounds(part.N, part.Shards)
	for s, b := range blobs {
		want := bounds[s+1] - bounds[s]
		if len(b) < 4 {
			return nil, fmt.Errorf("dist: shard %d spanner blob is %d bytes", s, len(b))
		}
		cnt := int(binary.LittleEndian.Uint32(b[0:]))
		if cnt < 0 || len(b) != 4+4*cnt+4*want {
			return nil, fmt.Errorf("dist: shard %d spanner blob: %d ids, %d bytes, %d owned vertices", s, cnt, len(b), want)
		}
		for k := 0; k < cnt; k++ {
			id := int32(binary.LittleEndian.Uint32(b[4+4*k:]))
			if id < 0 || int(id) >= part.M || in[id] {
				return nil, fmt.Errorf("dist: shard %d contributed bad or duplicate spanner edge %d", s, id)
			}
			in[id] = true
		}
		for k := 0; k < want; k++ {
			center[bounds[s]+k] = int32(binary.LittleEndian.Uint32(b[4+4*cnt+4*k:]))
		}
	}
	return &SpannerResult{InSpanner: in, Center: center, K: pres.K, Stats: pres.Stats}, nil
}

// runLoopback is the scaffold shared by every Loopback* driver: it
// binds a coordinator on loopback TCP, runs the worker body as
// shards 1..p−1 goroutines (each on its own joined NetTransport) and
// the coordinator body as shard 0, converts *NetError panics to
// errors, unblocks workers still waiting on the hub if the coordinator
// fails, and collects the first error. Bodies return results through
// their closures.
func runLoopback(n, p int, timeout time.Duration,
	coordinator func(coord *NetTransport) error,
	worker func(tr *NetTransport, shard int) error) error {
	coord, err := ListenNet("127.0.0.1:0", n, p, timeout)
	if err != nil {
		return err
	}
	defer coord.Close()
	errCh := make(chan error, p)
	var wg sync.WaitGroup
	for s := 1; s < p; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			err := func() (err error) {
				defer recoverNetError(&err)
				tr, err := JoinNet(coord.Addr(), n, s, p, timeout)
				if err != nil {
					return err
				}
				defer tr.Close()
				return worker(tr, s)
			}()
			if err != nil {
				errCh <- fmt.Errorf("shard %d: %w", s, err)
			}
		}(s)
	}
	err = func() (err error) {
		defer recoverNetError(&err)
		return coordinator(coord)
	}()
	if err != nil {
		// Unblock workers still waiting on the hub before joining them.
		coord.Close()
	}
	wg.Wait()
	close(errCh)
	for werr := range errCh {
		if err == nil {
			err = werr
		}
	}
	return err
}

// LoopbackBaswanaSen runs the distributed Baswana–Sen spanner as a
// coordinator plus shards−1 worker goroutines, each with its own
// NetTransport over real loopback TCP sockets and each materializing
// only its partition, then assembles the global spanner mask and
// clustering at the coordinator. The result is bit-identical to
// BaswanaSen's for equal (k, seed) — the network-transport leg of the
// cross-transport equivalence matrix.
func LoopbackBaswanaSen(g *graph.Graph, k int, seed uint64, shards int, timeout time.Duration) (*SpannerResult, error) {
	p := graph.ClampShards(g.N, shards)
	var res *SpannerResult
	err := runLoopback(g.N, p, timeout,
		func(coord *NetTransport) error {
			if err := coord.WaitReady(); err != nil {
				return err
			}
			part := graph.PartitionOf(g, 0, p)
			pres := BaswanaSenPartition(part, k, seed, coord)
			var err error
			res, err = gatherSpanner(coord, part, &pres)
			return err
		},
		func(tr *NetTransport, s int) error {
			part := graph.PartitionOf(g, s, p)
			pres := BaswanaSenPartition(part, k, seed, tr)
			_, err := gatherSpanner(tr, part, &pres)
			return err
		})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// LoopbackSparsify runs the full multi-process protocol with the
// worker shards as goroutines of this process, each with its own
// NetTransport over real loopback TCP sockets and each materializing
// only its partition. Everything of the network path is exercised —
// framing, routing, the tally handshake, the collectives, the result
// gather — except process isolation itself, which the distworker smoke
// test and examples/distributed cover with real OS processes. Returns
// the assembled result and the total bytes put on the wire.
func LoopbackSparsify(g *graph.Graph, eps, rho float64, depth int, seed uint64, shards int, timeout time.Duration) (Result, int64, error) {
	p := graph.ClampShards(g.N, shards)
	var res Result
	var wireBytes int64
	err := runLoopback(g.N, p, timeout,
		func(coord *NetTransport) error {
			var err error
			res, wireBytes, err = RunNetCoordinator(coord, graph.PartitionOf(g, 0, p), eps, rho, depth, seed)
			return err
		},
		func(tr *NetTransport, s int) error {
			_, err := RunNetWorker(tr, graph.PartitionOf(g, s, p))
			return err
		})
	if err != nil {
		return Result{}, 0, err
	}
	return res, wireBytes, nil
}
