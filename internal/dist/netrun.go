package dist

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"repro/internal/graph"
)

// The multi-process run scaffold shared by the Net, Worker, and
// Loopback specs: one SPMD schedule every process executes in lockstep
// over its own NetTransport. The coordinator broadcasts the job header
// (name + parameters, see job.go) so the workers adopt — and
// cross-check — the same job; every process runs the job's partition
// body over its own shard; the job's assemble gathers each shard's
// owned contribution at the coordinator (a boundary edge is
// contributed by the shard owning its U endpoint, so it is merged
// exactly once); and the run counters (wire bytes, peak view words)
// converge last.

// recoverNetError converts a *NetError panic (the transport's fatal
// failure mode) into a returned error; other panics propagate.
func recoverNetError(err *error) {
	if r := recover(); r != nil {
		if ne, ok := r.(*NetError); ok {
			*err = ne
			return
		}
		panic(r)
	}
}

// runNetJob executes one process's role of one ATTEMPT of a
// multi-process run — coordinator and worker run the same function;
// tr.Shard() decides who broadcasts, who adopts, and who receives the
// assembled output. ck is the coordinator's durable recovery
// checkpoint (nil on workers, which decode their own copy from the
// broadcast): its encoding is re-broadcast at the top of every attempt
// right after the job header, so a freshly respawned worker runs the
// exact same function as a survivor — decode, fast-forward, resume.
// On failure the retry loops in engine.go recover the fleet and call
// this again; beginAttempt discards any per-attempt protocol state so
// the replay starts bit-identically.
func runNetJob[R any](tr *NetTransport, part *graph.Partition, job Job[R], ck *ckptState) (res Result[R], err error) {
	defer recoverNetError(&err)
	if part.Shard != tr.Shard() || part.Shards != tr.Shards() {
		return Result[R]{}, fmt.Errorf("dist: partition %d/%d does not match transport %d/%d",
			part.Shard, part.Shards, tr.Shard(), tr.Shards())
	}
	tr.beginAttempt()
	// Establish the attempt's worker↔worker links before any job state
	// flows: in mesh mode the coordinator broadcasts the address book
	// and the workers wire themselves up (a no-op on the star plane).
	if err := tr.setupDataPlane(); err != nil {
		return Result[R]{}, err
	}
	impl := job.impl
	if tr.Shard() == 0 {
		if err := tr.WaitReady(); err != nil {
			return Result[R]{}, err
		}
		if ck == nil {
			ck = &ckptState{}
		}
		// An elected coordinator (failover) re-broadcasts the dead
		// coordinator's stashed header bytes VERBATIM — re-encoding from
		// the local impl could diverge if the local parameters differ —
		// and adopts its own impl from them like any worker would.
		header := tr.lastHeader
		if header == nil {
			header = encodeJobHeader(impl.name(), part.N, part.M, impl.params())
		} else {
			var aerr error
			if impl, aerr = adoptJobHeader(impl, header, part); aerr != nil {
				return Result[R]{}, aerr
			}
		}
		if _, err := tr.BroadcastBlob(header); err != nil {
			return Result[R]{}, err
		}
		if _, err := tr.BroadcastBlob(encodeCkpt(ck)); err != nil {
			return Result[R]{}, err
		}
		if tr.failover {
			if tr.failAddrs == nil {
				tr.failAddrs = make([]string, tr.part.p)
			}
			if _, err := tr.BroadcastBlob(encodeAddrBook(tr.failAddrs)); err != nil {
				return Result[R]{}, err
			}
		}
	} else {
		blob, err := tr.BroadcastBlob(nil)
		if err != nil {
			return Result[R]{}, err
		}
		impl, err = adoptJobHeader(impl, blob, part)
		if err != nil {
			return Result[R]{}, err
		}
		tr.lastHeader = blob
		ckBlob, err := tr.BroadcastBlob(nil)
		if err != nil {
			return Result[R]{}, err
		}
		if ck, err = decodeCkpt(ckBlob); err != nil {
			return Result[R]{}, err
		}
		tr.lastCkpt = ck
		if tr.failover {
			bookBlob, err := tr.BroadcastBlob(nil)
			if err != nil {
				return Result[R]{}, err
			}
			book, err := decodeAddrBook(bookBlob, tr.part.p)
			if err != nil {
				return Result[R]{}, err
			}
			tr.failAddrs = book
		}
	}
	re := newRoundEngineOn(part.N, tr)
	po := impl.runPart(re, part, ck)
	out, err := impl.assemble(tr, part, po)
	if err != nil {
		return Result[R]{}, err
	}
	wireBytes, dataBytes, maxPeak, err := gatherRunCounters(tr, po.peak)
	if err != nil {
		return Result[R]{}, err
	}
	if tr.Shard() != 0 {
		return Result[R]{Stats: re.Stats(), PeakViewWords: po.peak,
			WireBytes: tr.WireBytes(), DataWireBytes: tr.DataWireBytes()}, nil
	}
	return Result[R]{Output: out, Stats: re.Stats(), PeakViewWords: maxPeak,
		WireBytes: wireBytes, DataWireBytes: dataBytes}, nil
}

// gatherRunCounters collects every process's honesty counters at the
// coordinator: the summed bytes put on the wire (total and the
// worker↔worker data subset the topology governs) and the MAXIMUM
// per-process peak view footprint — the measured per-worker
// O(m_incident) bound E13 reports. Workers contribute and get zeros.
func gatherRunCounters(tr *NetTransport, peakViewWords int) (wireBytes, dataBytes int64, maxPeakWords int, err error) {
	var b [24]byte
	binary.LittleEndian.PutUint64(b[0:], uint64(tr.WireBytes()))
	binary.LittleEndian.PutUint64(b[8:], uint64(peakViewWords))
	binary.LittleEndian.PutUint64(b[16:], uint64(tr.DataWireBytes()))
	blobs, err := tr.GatherBlobs(b[:])
	if err != nil {
		return 0, 0, 0, err
	}
	if tr.Shard() != 0 {
		return 0, 0, 0, nil
	}
	for s, blob := range blobs {
		if len(blob) != 24 {
			return 0, 0, 0, fmt.Errorf("dist: shard %d run counters are %d bytes", s, len(blob))
		}
		wireBytes += int64(binary.LittleEndian.Uint64(blob[0:]))
		if pw := int(binary.LittleEndian.Uint64(blob[8:])); pw > maxPeakWords {
			maxPeakWords = pw
		}
		dataBytes += int64(binary.LittleEndian.Uint64(blob[16:]))
	}
	return wireBytes, dataBytes, maxPeakWords, nil
}

// runLoopback is the scaffold of the Loopback and Mesh specs: it
// binds a coordinator on loopback TCP, runs the worker body as shards
// 1..p−1 goroutines (each on its own joined NetTransport) and the
// coordinator body as shard 0, converts *NetError panics to errors,
// unblocks workers still waiting on the hub if the coordinator fails,
// and collects the first error. Bodies return results through their
// closures. mesh selects the full-mesh data plane: each worker
// goroutine additionally binds a loopback peer listener and the round
// batches travel worker→worker directly.
func runLoopback(n, p int, timeout time.Duration, mesh bool,
	coordinator func(coord *NetTransport) error,
	worker func(tr *NetTransport, shard int) error) error {
	coord, err := listenNet("127.0.0.1:0", n, p, timeout, netOptions{mesh: mesh})
	if err != nil {
		return err
	}
	defer coord.Close()
	errCh := make(chan error, p)
	var wg sync.WaitGroup
	for s := 1; s < p; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			err := func() (err error) {
				defer recoverNetError(&err)
				tr, err := joinNet(coord.Addr(), n, s, p, timeout, netOptions{mesh: mesh})
				if err != nil {
					return err
				}
				defer tr.Close()
				return worker(tr, s)
			}()
			if err != nil {
				errCh <- fmt.Errorf("shard %d: %w", s, err)
			}
		}(s)
	}
	err = func() (err error) {
		defer recoverNetError(&err)
		return coordinator(coord)
	}()
	if err != nil {
		// Unblock workers still waiting on the hub before joining them.
		coord.Close()
	}
	wg.Wait()
	close(errCh)
	for werr := range errCh {
		if err == nil {
			err = werr
		}
	}
	return err
}
