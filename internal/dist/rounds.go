package dist

// The round engine: a simulated synchronous message-passing network
// (the CONGEST-style model of the paper's Section on distributed
// implementation). Vertices are the processors; each round every vertex
// may send word-bounded messages to neighbors, and every message sent
// in round r is readable from the recipient's mailbox during round r+1.
//
// The engine runs the synchronous schedule and keeps the ledger; how
// messages physically travel between rounds is the Transport's job
// (see transport.go): in-memory staging by default, a vertex-sharded
// exchange across worker goroutines, or — the seam's purpose — a real
// network between OS processes (see transport.go and net.go; there
// the EndRound barrier is where batches hit sockets, relayed through
// the coordinator on the star plane or written directly to the
// destination peer — asynchronously, overlapping the next round's
// compute — on the mesh plane, see mesh.go).
//
// Staging follows the exchange core's kind-based discipline (see
// exchange.go): payloads carrying real remote state are staged by the
// worker owning the sender, payloads that are pure functions of the
// seed by the worker owning the recipient. That is how the parallel
// per-vertex loops of the algorithms stay race-free — and how a
// multi-process transport knows which traffic must cross the wire —
// while the ledger still counts every directed message exactly once.
// Message payloads always carry snapshot state from the start of the
// round, so the staging side is unobservable to the algorithm.

// MsgKind identifies the payload schema of a message.
type MsgKind uint8

const (
	// MsgSampled travels parent→child down a cluster tree and carries
	// the cluster's sampled bit for the current iteration.
	MsgSampled MsgKind = iota
	// MsgCenter is the per-iteration neighbor exchange: the sender's
	// cluster id, its cluster-tree depth, and the cluster-sampled bit.
	MsgCenter
	// MsgAdd tells the recipient that the sender placed their shared
	// edge in the spanner.
	MsgAdd
	// MsgDrop tells the recipient that the sender discarded their
	// shared edge from the working edge set E'.
	MsgDrop
	// MsgNewCenter is the post-decision center exchange used to discard
	// intra-cluster edges and to run the final vertex–cluster joins.
	MsgNewCenter
	// MsgKeep announces a uniform-sampling verdict for an off-bundle
	// edge during Algorithm 1's sampling step.
	MsgKeep
)

// Words returns the payload size of the kind in O(log n)-bit words.
func (k MsgKind) Words() int {
	if k == MsgCenter {
		return 3
	}
	return 1
}

// Message is one payload crossing one edge in one round. Port is the
// edge over which it traveled — addressing, not payload, so it does not
// count toward Words (a real network identifies the arrival link for
// free). A, B, and C are the payload words.
type Message struct {
	From    int32
	Port    int32
	Kind    MsgKind
	A, B, C int32
}

// roundEngine simulates the synchronous network for a fixed vertex set
// and accumulates the communication ledger. Messages travel through the
// engine's Transport; the ledger is transport-independent up to the
// CrossShard split (see Stats). It is the execution substrate below the
// public Engine/Job surface: jobs drive it round by round, Engine.Run
// constructs it over the transport a TransportSpec describes.
type roundEngine struct {
	n     int
	tr    Transport
	round int // index of the current round, incremented by EndRound
	stats Stats
	cur   int // index of the current phase in stats.Phases

	// boolFree/int32Free are the engine's scratch freelists: the round
	// loop re-runs the same mask- and label-sized allocations once per
	// spanner layer (t layers per sampling epoch), so recycling them
	// removes the dominant allocator traffic of a run. get/put are
	// called only from the round-orchestration goroutine (never inside
	// a ForVertices body), so no locking is needed.
	boolFree  [][]bool
	int32Free [][]int32
}

// scratchFreeDepth bounds how many scratch slices each freelist holds.
const scratchFreeDepth = 8

// getBools returns a ZEROED scratch []bool of length n, reusing a
// pooled slice when one is large enough.
func (e *roundEngine) getBools(n int) []bool {
	for i := len(e.boolFree) - 1; i >= 0; i-- {
		if cap(e.boolFree[i]) >= n {
			b := e.boolFree[i][:n]
			e.boolFree[i] = e.boolFree[len(e.boolFree)-1]
			e.boolFree = e.boolFree[:len(e.boolFree)-1]
			for j := range b {
				b[j] = false
			}
			return b
		}
	}
	return make([]bool, n)
}

// putBools returns a scratch slice to the freelist. The caller must
// own it and drop every reference; a slice never returned is simply
// garbage collected.
func (e *roundEngine) putBools(b []bool) {
	if cap(b) > 0 && len(e.boolFree) < scratchFreeDepth {
		e.boolFree = append(e.boolFree, b)
	}
}

// getInt32s returns a scratch []int32 of length n with ARBITRARY
// contents — callers must write every index they later read (the
// spanner's label arrays are fully initialized each use).
func (e *roundEngine) getInt32s(n int) []int32 {
	for i := len(e.int32Free) - 1; i >= 0; i-- {
		if cap(e.int32Free[i]) >= n {
			s := e.int32Free[i][:n]
			e.int32Free[i] = e.int32Free[len(e.int32Free)-1]
			e.int32Free = e.int32Free[:len(e.int32Free)-1]
			return s
		}
	}
	return make([]int32, n)
}

// putInt32s returns a scratch slice to the freelist.
func (e *roundEngine) putInt32s(s []int32) {
	if cap(s) > 0 && len(e.int32Free) < scratchFreeDepth {
		e.int32Free = append(e.int32Free, s)
	}
}

// newRoundEngine returns an engine for n vertices on the default
// in-memory transport, with an empty ledger.
func newRoundEngine(n int) *roundEngine { return newRoundEngineOn(n, NewMemTransport(n)) }

// newRoundEngineOn returns an engine running over an explicit transport.
func newRoundEngineOn(n int, tr Transport) *roundEngine {
	e := &roundEngine{n: n, tr: tr, cur: -1}
	e.stats.Shards = tr.Shards()
	return e
}

// Transport returns the engine's transport.
func (e *roundEngine) Transport() Transport { return e.tr }

// BeginPhase directs subsequent rounds' accounting at the named phase,
// creating it on first use; repeated names merge (iterated stages show
// up as one row).
func (e *roundEngine) BeginPhase(name string) {
	for i := range e.stats.Phases {
		if e.stats.Phases[i].Name == name {
			e.cur = i
			return
		}
	}
	e.stats.Phases = append(e.stats.Phases, PhaseStats{Name: name})
	e.cur = len(e.stats.Phases) - 1
}

// Deliver stages a message for vertex `to` in the current round. It
// must be called only from the worker the staging discipline assigns —
// the owner of m.From for sender-staged kinds (MsgCenter,
// MsgNewCenter, MsgAdd, MsgDrop), the owner of `to` for the pure
// seed-derived kinds (MsgSampled, MsgKeep) — or from a single
// goroutine outside a compute phase.
func (e *roundEngine) Deliver(to int32, m Message) {
	e.tr.Send(e.round, to, m)
}

// ForVertices runs body(v) for every vertex, partitioned across the
// transport's workers so each vertex is visited by its owner — the
// compute half of a round. The call is a barrier.
func (e *roundEngine) ForVertices(body func(v int32)) {
	e.tr.ForWorkers(func(_, lo, hi int) {
		for vi := lo; vi < hi; vi++ {
			body(int32(vi))
		}
	})
}

// collectVertices runs gen once per transport worker over the worker's
// vertex range and concatenates the results in worker order — the
// deterministic parallel filter/emit primitive of the compute phase
// (the engine-partitioned analogue of parutil.CollectShards).
func collectVertices[T any](e *roundEngine, gen func(worker, lo, hi int) []T) []T {
	if e.n <= 0 {
		return nil
	}
	parts := make([][]T, e.tr.Workers())
	e.tr.ForWorkers(func(worker, lo, hi int) {
		parts[worker] = gen(worker, lo, hi)
	})
	total := 0
	for _, part := range parts {
		total += len(part)
	}
	out := make([]T, 0, total)
	for _, part := range parts {
		out = append(out, part...)
	}
	return out
}

// EndRound closes the current synchronous round: staged messages are
// billed to the ledger and become the mailboxes readable until the next
// EndRound. Mailbox slices are recycled — callers must not retain them
// across two EndRound calls.
func (e *roundEngine) EndRound() {
	if e.cur < 0 {
		e.BeginPhase("main")
	}
	tally := e.tr.EndRound(e.round)
	e.round++
	e.stats.Rounds++
	e.stats.Messages += tally.Messages
	e.stats.Words += tally.Words
	e.stats.CrossShardMessages += tally.CrossShardMessages
	e.stats.CrossShardWords += tally.CrossShardWords
	if tally.MaxMessageWords > e.stats.MaxMessageWords {
		e.stats.MaxMessageWords = tally.MaxMessageWords
	}
	p := &e.stats.Phases[e.cur]
	p.Rounds++
	p.Messages += tally.Messages
	p.Words += tally.Words
	p.CrossShardMessages += tally.CrossShardMessages
	p.CrossShardWords += tally.CrossShardWords
}

// Mailbox returns the messages delivered to v by the last EndRound.
func (e *roundEngine) Mailbox(v int32) []Message { return e.tr.Recv(e.round, v) }

// allMaxInt32 reduces x to its maximum across all shards of the
// transport. Single-process transports compute loop-control values
// over shared memory, so the reduction is the identity there; the
// network transport runs a control-plane convergecast (not billed to
// the ledger — see collectiveTransport).
func (e *roundEngine) allMaxInt32(x int32) int32 {
	if c, ok := e.tr.(collectiveTransport); ok {
		return c.AllMaxInt32(x)
	}
	return x
}

// allOrWord reduces one word of flags by bitwise OR across all shards.
func (e *roundEngine) allOrWord(w uint64) uint64 {
	if c, ok := e.tr.(collectiveTransport); ok {
		return c.AllOrBits([]uint64{w})[0]
	}
	return w
}

// allGatherInt32s merges the shards' sorted, disjoint id lists into
// the globally sorted union, visible to every shard. Single-process
// transports hold the complete list already, so the gather is the
// identity there; the network transport runs a control-plane
// convergecast + broadcast (not billed — see collectiveTransport).
// Unlike the retired Θ(m)-bit mask merge this costs O(list) words,
// which for the bundle-id gather is the sparsifier's own output scale.
func (e *roundEngine) allGatherInt32s(xs []int32) []int32 {
	if c, ok := e.tr.(collectiveTransport); ok {
		return c.AllGatherInt32s(xs)
	}
	return xs
}

// restore rewinds the engine onto a checkpointed ledger snapshot — the
// recovery fast-forward. The engine's round counter and the ledger's
// Rounds advance in lockstep (EndRound increments both), so the
// snapshot alone pins the replay position; the next EndRound issues
// exactly the round number the failure-free run would have.
func (e *roundEngine) restore(s Stats) {
	e.stats = s
	e.stats.Phases = append([]PhaseStats(nil), s.Phases...)
	e.stats.Shards = e.tr.Shards()
	e.round = s.Rounds
	e.cur = -1
}

// Stats returns a copy of the accumulated ledger.
func (e *roundEngine) Stats() Stats {
	s := e.stats
	s.Phases = append([]PhaseStats(nil), e.stats.Phases...)
	return s
}
