package dist_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
)

// The cross-transport equivalence matrix: ONE table sweeping
// {Mem, Sharded, Net-loopback} × shards {1, 2, 3, 7} × {spanner,
// sparsify} over representative graphs, asserting edge-identical
// outputs and an identical Stats ledger everywhere. This is the single
// readable pin of the package's central invariant — transports move
// messages, not decisions — replacing the per-case equivalence tests
// that previously sat scattered across transport_test.go and
// net_test.go (the ledger- and protocol-specific tests remain there).
func TestCrossTransportEquivalenceMatrix(t *testing.T) {
	const (
		matrixTimeout = 30 * time.Second
		eps, rho      = 0.75, 4.0
	)
	seeds := []uint64{11, 42} // seed-derived state must agree at every seed, not one lucky one
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"gnp", gen.Gnp(240, 0.1, 7)},
		{"weighted-grid", gen.WithRandomWeights(gen.Grid2D(12, 15), 0.1, 10, 9)},
		{"barbell", gen.Barbell(25, 4)},
	}
	shardCounts := []int{1, 2, 3, 7}

	sameStats := func(t *testing.T, got, want dist.Stats) {
		t.Helper()
		if got.Rounds != want.Rounds || got.Messages != want.Messages ||
			got.Words != want.Words || got.MaxMessageWords != want.MaxMessageWords {
			t.Fatalf("ledger totals diverge:\n got %+v\nwant %+v", got, want)
		}
		if len(got.Phases) != len(want.Phases) {
			t.Fatalf("phase count %d vs %d", len(got.Phases), len(want.Phases))
		}
		for i, ph := range got.Phases {
			rp := want.Phases[i]
			if ph.Name != rp.Name || ph.Rounds != rp.Rounds ||
				ph.Messages != rp.Messages || ph.Words != rp.Words {
				t.Fatalf("phase %q diverges: %+v vs %+v", ph.Name, ph, rp)
			}
		}
	}
	sameSpanner := func(t *testing.T, got, want *dist.SpannerResult) {
		t.Helper()
		if got.K != want.K {
			t.Fatalf("K %d != %d", got.K, want.K)
		}
		for i := range want.InSpanner {
			if got.InSpanner[i] != want.InSpanner[i] {
				t.Fatalf("edge %d: in-spanner %v vs %v", i, got.InSpanner[i], want.InSpanner[i])
			}
		}
		for v := range want.Center {
			if got.Center[v] != want.Center[v] {
				t.Fatalf("center[%d] %d vs %d", v, got.Center[v], want.Center[v])
			}
		}
		sameStats(t, got.Stats, want.Stats)
	}
	sameGraph := func(t *testing.T, got, want dist.Result) {
		t.Helper()
		if got.G.N != want.G.N || got.G.M() != want.G.M() {
			t.Fatalf("output shape %v vs %v", got.G, want.G)
		}
		for i := range want.G.Edges {
			if got.G.Edges[i] != want.G.Edges[i] {
				t.Fatalf("edge %d differs: %+v vs %+v", i, got.G.Edges[i], want.G.Edges[i])
			}
		}
		sameStats(t, got.Stats, want.Stats)
	}

	for _, gc := range graphs {
		gc := gc
		for _, seed := range seeds {
			seed := seed
			refSpanner := dist.BaswanaSen(gc.g, 0, seed)
			refSparsify := dist.Sparsify(gc.g, eps, rho, 0, seed)
			for _, p := range shardCounts {
				p := p
				t.Run(fmt.Sprintf("%s/seed=%d/sharded/P=%d/spanner", gc.name, seed, p), func(t *testing.T) {
					sameSpanner(t, dist.BaswanaSenSharded(gc.g, 0, seed, p), refSpanner)
				})
				t.Run(fmt.Sprintf("%s/seed=%d/sharded/P=%d/sparsify", gc.name, seed, p), func(t *testing.T) {
					sameGraph(t, dist.SparsifySharded(gc.g, eps, rho, 0, seed, p), refSparsify)
				})
				t.Run(fmt.Sprintf("%s/seed=%d/net/P=%d/spanner", gc.name, seed, p), func(t *testing.T) {
					res, err := dist.LoopbackBaswanaSen(gc.g, 0, seed, p, matrixTimeout)
					if err != nil {
						t.Fatal(err)
					}
					sameSpanner(t, res, refSpanner)
				})
				t.Run(fmt.Sprintf("%s/seed=%d/net/P=%d/sparsify", gc.name, seed, p), func(t *testing.T) {
					res, _, err := dist.LoopbackSparsify(gc.g, eps, rho, 0, seed, p, matrixTimeout)
					if err != nil {
						t.Fatal(err)
					}
					sameGraph(t, res, refSparsify)
				})
			}
		}
	}
}
