package dist_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
)

// The cross-transport equivalence matrix: ONE table sweeping every
// TransportSpec — {Mem, Sharded, Loopback (star net), Mesh (full-mesh
// net)} × shards {1, 2, 3, 7} — over both built-in jobs and
// representative graphs, asserting
// edge-identical outputs and an identical Stats ledger everywhere
// through the single Engine.Run entry point. This is the single
// readable pin of the package's central invariant — transports move
// messages, not decisions — and it is what proves the Engine/Job
// refactor behavior-preserving: the expected values are the same
// in-memory references the pre-Engine per-transport entry points were
// pinned against.
func TestCrossTransportEquivalenceMatrix(t *testing.T) {
	const (
		matrixTimeout = 30 * time.Second
		eps, rho      = 0.75, 4.0
	)
	seeds := []uint64{11, 42} // seed-derived state must agree at every seed, not one lucky one
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"gnp", gen.Gnp(240, 0.1, 7)},
		{"weighted-grid", gen.WithRandomWeights(gen.Grid2D(12, 15), 0.1, 10, 9)},
		{"barbell", gen.Barbell(25, 4)},
	}
	shardCounts := []int{1, 2, 3, 7}

	sameStats := func(t *testing.T, got, want dist.Stats) {
		t.Helper()
		if got.Rounds != want.Rounds || got.Messages != want.Messages ||
			got.Words != want.Words || got.MaxMessageWords != want.MaxMessageWords {
			t.Fatalf("ledger totals diverge:\n got %+v\nwant %+v", got, want)
		}
		if len(got.Phases) != len(want.Phases) {
			t.Fatalf("phase count %d vs %d", len(got.Phases), len(want.Phases))
		}
		for i, ph := range got.Phases {
			rp := want.Phases[i]
			if ph.Name != rp.Name || ph.Rounds != rp.Rounds ||
				ph.Messages != rp.Messages || ph.Words != rp.Words {
				t.Fatalf("phase %q diverges: %+v vs %+v", ph.Name, ph, rp)
			}
		}
	}
	sameSpanner := func(t *testing.T, got, want dist.Result[*dist.SpannerOutput]) {
		t.Helper()
		if got.Output.K != want.Output.K {
			t.Fatalf("K %d != %d", got.Output.K, want.Output.K)
		}
		for i := range want.Output.InSpanner {
			if got.Output.InSpanner[i] != want.Output.InSpanner[i] {
				t.Fatalf("edge %d: in-spanner %v vs %v", i, got.Output.InSpanner[i], want.Output.InSpanner[i])
			}
		}
		for v := range want.Output.Center {
			if got.Output.Center[v] != want.Output.Center[v] {
				t.Fatalf("center[%d] %d vs %d", v, got.Output.Center[v], want.Output.Center[v])
			}
		}
		if got.Output.G.M() != want.Output.G.M() {
			t.Fatalf("spanner subgraph size %d vs %d", got.Output.G.M(), want.Output.G.M())
		}
		for i := range want.Output.G.Edges {
			if got.Output.G.Edges[i] != want.Output.G.Edges[i] {
				t.Fatalf("spanner edge %d differs: %+v vs %+v", i, got.Output.G.Edges[i], want.Output.G.Edges[i])
			}
		}
		sameStats(t, got.Stats, want.Stats)
	}
	sameGraph := func(t *testing.T, got, want dist.Result[*graph.Graph]) {
		t.Helper()
		if got.Output.N != want.Output.N || got.Output.M() != want.Output.M() {
			t.Fatalf("output shape %v vs %v", got.Output, want.Output)
		}
		for i := range want.Output.Edges {
			if got.Output.Edges[i] != want.Output.Edges[i] {
				t.Fatalf("edge %d differs: %+v vs %+v", i, got.Output.Edges[i], want.Output.Edges[i])
			}
		}
		sameStats(t, got.Stats, want.Stats)
	}

	for _, gc := range graphs {
		gc := gc
		for _, seed := range seeds {
			seed := seed
			refSpanner := runSpanner(t, dist.Mem(), gc.g, 0, seed)
			refSparsify := runSparsify(t, dist.Mem(), gc.g, eps, rho, 0, seed)
			for _, p := range shardCounts {
				specs := []struct {
					name string
					spec dist.TransportSpec
				}{
					{"sharded", dist.Sharded(p)},
					{"net", dist.Loopback(p).WithTimeout(matrixTimeout)},
					{"mesh", dist.Mesh(p).WithTimeout(matrixTimeout)},
				}
				for _, sc := range specs {
					sc := sc
					t.Run(fmt.Sprintf("%s/seed=%d/%s/P=%d/spanner", gc.name, seed, sc.name, p), func(t *testing.T) {
						sameSpanner(t, runSpanner(t, sc.spec, gc.g, 0, seed), refSpanner)
					})
					t.Run(fmt.Sprintf("%s/seed=%d/%s/P=%d/sparsify", gc.name, seed, sc.name, p), func(t *testing.T) {
						sameGraph(t, runSparsify(t, sc.spec, gc.g, eps, rho, 0, seed), refSparsify)
					})
				}
			}
		}
	}
}
