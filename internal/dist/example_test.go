package dist_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/gen"
)

// Run the sparsifier job on the default in-memory spec: one process,
// the whole graph, every round billed to the ledger.
func ExampleRun() {
	g := gen.Complete(64)
	res, err := dist.Run(dist.NewEngine(dist.Mem(), g), dist.SparsifyJob(0.75, 4, core.DefaultConfig(7)))
	if err != nil {
		fmt.Println("run:", err)
		return
	}
	fmt.Printf("m %d -> %d on %d shard(s)\n", g.M(), res.Output.M(), res.Stats.Shards)
	// Output:
	// m 2016 -> 1346 on 1 shard(s)
}

// The same entry point runs the spanner job; swapping the spec for
// Sharded(4) partitions the rounds across four worker goroutines
// without changing a single decision.
func ExampleRun_spanner() {
	g := gen.Complete(64)
	res, err := dist.Run(dist.NewEngine(dist.Sharded(4), g), dist.SpannerJob(0, 7))
	if err != nil {
		fmt.Println("run:", err)
		return
	}
	fmt.Printf("k=%d spanner edges=%d cross-shard traffic=%v\n",
		res.Output.K, res.Output.G.M(), res.Stats.CrossShardWords > 0)
	// Output:
	// k=6 spanner edges=442 cross-shard traffic=true
}

// Loopback(p) runs the whole multi-process protocol — partition
// loading, binary frames over real TCP sockets, the round-tally
// handshake, the result gather — inside one process, and the output is
// bit-identical to the in-memory spec's.
func ExampleRun_loopback() {
	g := gen.Complete(64)
	job := dist.SparsifyJob(0.75, 4, core.DefaultConfig(7))
	mem, err := dist.Run(dist.NewEngine(dist.Mem(), g), job)
	if err != nil {
		fmt.Println("run:", err)
		return
	}
	net, err := dist.Run(dist.NewEngine(dist.Loopback(3), g), job)
	if err != nil {
		fmt.Println("run:", err)
		return
	}
	fmt.Printf("m=%d identical=%v bytes on the wire=%v\n",
		net.Output.M(), net.Output.M() == mem.Output.M(), net.WireBytes > 0)
	// Output:
	// m=1346 identical=true bytes on the wire=true
}
