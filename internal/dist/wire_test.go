package dist

import (
	"bytes"
	"testing"
)

// TestEnvelopeCodecRoundTrip: every field of an addressed message
// survives the fixed-size record encoding.
func TestEnvelopeCodecRoundTrip(t *testing.T) {
	cases := []envelope{
		{to: 0, m: Message{From: -1, Port: 0, Kind: MsgSampled, A: 1}},
		{to: 1 << 30, m: Message{From: 7, Port: -3, Kind: MsgCenter, A: -1, B: 2, C: 3}},
		{to: 42, m: Message{From: 41, Port: 9, Kind: MsgKeep, A: 0, B: -9, C: 1 << 20}},
	}
	var b [envelopeSize]byte
	for _, env := range cases {
		putEnvelope(b[:], env)
		if got := parseEnvelope(b[:]); got != env {
			t.Fatalf("round trip mangled %+v -> %+v", env, got)
		}
	}
}

// TestHeaderCodecRoundTrip: headers survive, and a corrupted magic is
// rejected.
func TestHeaderCodecRoundTrip(t *testing.T) {
	h := frameHeader{Type: frameRound, From: 3, To: 250, Round: 123456, Count: 99}
	var b [headerSize]byte
	putHeader(b[:], h)
	got, err := parseHeader(b[:])
	if err != nil || got != h {
		t.Fatalf("round trip: %+v, %v", got, err)
	}
	b[0] ^= 0xff
	if _, err := parseHeader(b[:]); err == nil {
		t.Fatal("corrupted magic accepted")
	}
	if _, err := parseHeader(b[:4]); err == nil {
		t.Fatal("short header accepted")
	}
}

// TestTallyCodecRoundTrip covers the round-tally handshake payload.
func TestTallyCodecRoundTrip(t *testing.T) {
	tally := RoundTally{Messages: 1 << 40, Words: 3 << 41, MaxMessageWords: 3,
		CrossShardMessages: 17, CrossShardWords: 51}
	var b [tallySize]byte
	putTally(b[:], tally)
	if got := parseTally(b[:]); got != tally {
		t.Fatalf("round trip mangled %+v -> %+v", tally, got)
	}
}

// FuzzMessageCodec: the envelope record codec is a bijection between
// its struct and its canonical byte form — decode(encode(x)) == x for
// any field values, and encode(decode(b)) is stable for any bytes.
func FuzzMessageCodec(f *testing.F) {
	f.Add(int32(0), int32(-1), int32(0), uint8(0), int32(1), int32(0), int32(0))
	f.Add(int32(99), int32(3), int32(12), uint8(1), int32(-5), int32(7), int32(1))
	f.Add(int32(-8), int32(1<<30), int32(-1<<30), uint8(255), int32(0), int32(0), int32(-1))
	// Batched writes concatenate frames, so envelope payload bytes sit
	// directly against the next frame's header on the wire. These seeds
	// put the frame magic ("DW01") and a heartbeat-header prefix INSIDE
	// envelope fields: a decoder that resynchronized on magic instead of
	// trusting frame lengths would split such a batch mid-record.
	f.Add(int32(wireMagic), int32(wireMagic), int32(0), uint8(frameRound), int32(wireMagic), int32(0), int32(wireMagic))
	f.Add(int32(wireMagic), int32(frameHeartbeat), int32(wireMagic), uint8(frameHeartbeat), int32(0), int32(wireMagic), int32(-1))
	f.Fuzz(func(t *testing.T, to, from, port int32, kind uint8, a, b, c int32) {
		env := envelope{to: to, m: Message{From: from, Port: port, Kind: MsgKind(kind), A: a, B: b, C: c}}
		var buf [envelopeSize]byte
		putEnvelope(buf[:], env)
		got := parseEnvelope(buf[:])
		if got != env {
			t.Fatalf("decode(encode(%+v)) = %+v", env, got)
		}
		var buf2 [envelopeSize]byte
		putEnvelope(buf2[:], got)
		if !bytes.Equal(buf[:], buf2[:]) {
			t.Fatalf("re-encoding unstable: %x vs %x", buf, buf2)
		}
	})
}

// FuzzFrameHeaderCodec: arbitrary header field values survive the
// header codec.
func FuzzFrameHeaderCodec(f *testing.F) {
	f.Add(uint8(1), uint16(0), uint16(1), uint32(0), uint32(0))
	f.Add(uint8(7), uint16(65535), uint16(3), uint32(1<<31), uint32(1<<20))
	f.Fuzz(func(t *testing.T, typ uint8, from, to uint16, round, count uint32) {
		h := frameHeader{Type: typ, From: from, To: to, Round: round, Count: count}
		var b [headerSize]byte
		putHeader(b[:], h)
		got, err := parseHeader(b[:])
		if err != nil {
			t.Fatal(err)
		}
		if got != h {
			t.Fatalf("decode(encode(%+v)) = %+v", h, got)
		}
	})
}
