package dist

import (
	"bytes"
	"reflect"
	"testing"
)

// testCkpt builds a representative checkpoint: two durable epochs with
// gathered id lists and a ledger snapshot with phases.
func testCkpt() *ckptState {
	return &ckptState{
		epochs: 2,
		stats: Stats{
			Rounds: 17, Messages: 1 << 33, Words: 3 << 34, MaxMessageWords: 5,
			CrossShardMessages: 1234, CrossShardWords: 5678, Shards: 3,
			Phases: []PhaseStats{
				{Name: "spanner", Rounds: 9, Messages: 10, Words: 30, CrossShardMessages: 4, CrossShardWords: 12},
				{Name: "sample", Rounds: 8, Messages: 1 << 40, Words: 3 << 40},
			},
		},
		lists: [][]int32{
			{0, 3, 4, 9, 1 << 29},
			{},
		},
	}
}

// TestCheckpointCodecRoundTrip: the durable prefix of a checkpoint —
// epoch count, ledger snapshot, phases, per-epoch id lists — survives
// the wire encoding exactly.
func TestCheckpointCodecRoundTrip(t *testing.T) {
	cases := []*ckptState{
		{}, // empty: fresh run, nothing durable yet
		testCkpt(),
		{epochs: 1, stats: Stats{Rounds: 1, Shards: 2}, lists: [][]int32{{7}}},
	}
	for i, ck := range cases {
		got, err := decodeCkpt(encodeCkpt(ck))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got.epochs != ck.epochs {
			t.Fatalf("case %d: epochs %d -> %d", i, ck.epochs, got.epochs)
		}
		if !reflect.DeepEqual(got.stats, ck.stats) {
			t.Fatalf("case %d: stats %+v -> %+v", i, ck.stats, got.stats)
		}
		for e := 0; e < ck.epochs; e++ {
			want := ck.lists[e]
			if len(got.lists[e]) != len(want) {
				t.Fatalf("case %d epoch %d: %d ids -> %d", i, e, len(want), len(got.lists[e]))
			}
			for j := range want {
				if got.lists[e][j] != want[j] {
					t.Fatalf("case %d epoch %d id %d differs", i, e, j)
				}
			}
		}
	}
}

// TestCheckpointCodecEncodesDurablePrefixOnly: lists recorded past the
// last cadence boundary are not durable and must not travel — a
// respawned worker replays exactly the epochs the stats snapshot
// covers.
func TestCheckpointCodecEncodesDurablePrefixOnly(t *testing.T) {
	ck := testCkpt()
	ck.lists = append(ck.lists, []int32{1, 2, 3}) // recorded, not yet durable
	got, err := decodeCkpt(encodeCkpt(ck))
	if err != nil {
		t.Fatal(err)
	}
	if got.epochs != 2 || len(got.lists) != 2 {
		t.Fatalf("non-durable epoch traveled: epochs=%d lists=%d", got.epochs, len(got.lists))
	}
}

// TestCheckpointDecodeRejectsCorruption: a hostile or damaged blob
// errors — never panics, never over-allocates, never yields ids that
// violate the strictly-increasing gather invariant.
func TestCheckpointDecodeRejectsCorruption(t *testing.T) {
	good := encodeCkpt(testCkpt())
	if _, err := decodeCkpt(good); err != nil {
		t.Fatal(err)
	}
	mutants := map[string][]byte{
		"empty":          {},
		"short magic":    good[:3],
		"bad magic":      append([]byte{0xff}, good[1:]...),
		"bad version":    append(append([]byte{}, good[:4]...), append([]byte{0xff, 0xff, 0xff, 0xff}, good[8:]...)...),
		"truncated":      good[:len(good)-3],
		"trailing bytes": append(append([]byte{}, good...), 0),
	}
	// Implausible epoch count: patch the epoch field to 2^31.
	huge := append([]byte{}, good...)
	huge[8], huge[9], huge[10], huge[11] = 0, 0, 0, 0x80
	mutants["huge epochs"] = huge
	for name, b := range mutants {
		if _, err := decodeCkpt(b); err == nil {
			t.Fatalf("%s: corrupt checkpoint accepted", name)
		}
	}
	// Non-increasing id list: epochs=1, stats zero, ids {5, 5}.
	bad := encodeCkpt(&ckptState{epochs: 1, lists: [][]int32{{4, 5}}})
	bad[len(bad)-8] = 5 // first id 4 -> 5, now equal to the second
	if _, err := decodeCkpt(bad); err == nil {
		t.Fatal("non-increasing id list accepted")
	}
}

// TestCheckpointRecordCadence: record advances the durable boundary
// only every `every` epochs, keeps the list slice dense, and a
// negative cadence disables recording (nil receivers are no-ops).
func TestCheckpointRecordCadence(t *testing.T) {
	re := newRoundEngine(4)
	ck := &ckptState{every: 2}
	ck.record(0, []int32{1}, re)
	if ck.epochs != 0 || len(ck.lists) != 1 {
		t.Fatalf("epoch 0 durable too early: %+v", ck)
	}
	ck.record(1, []int32{2}, re)
	if ck.epochs != 2 {
		t.Fatalf("cadence boundary missed: %+v", ck)
	}
	ck.record(2, []int32{3}, re)
	if ck.epochs != 2 || len(ck.lists) != 3 {
		t.Fatalf("epoch 2 should be recorded but not durable: %+v", ck)
	}

	off := &ckptState{every: -1}
	off.record(0, []int32{1}, re)
	if len(off.lists) != 0 || off.epochs != 0 {
		t.Fatalf("disabled checkpoint recorded state: %+v", off)
	}
	var nilCk *ckptState
	nilCk.record(0, []int32{1}, re) // must not panic
}

// TestCheckpointSizeBound: the encoding is O(bundle + ledger) — for
// epoch lists totaling B ids it stays within a small constant plus 4
// bytes per id, never anything proportional to m or n.
func TestCheckpointSizeBound(t *testing.T) {
	ck := &ckptState{epochs: 3, lists: make([][]int32, 3)}
	total := 0
	for e := range ck.lists {
		n := 100 * (e + 1)
		ids := make([]int32, n)
		for i := range ids {
			ids[i] = int32(e*100000 + i)
		}
		ck.lists[e] = ids
		total += n
	}
	b := encodeCkpt(ck)
	if max := 4*total + 256; len(b) > max {
		t.Fatalf("checkpoint is %d bytes for %d gathered ids (bound %d)", len(b), total, max)
	}
}

// FuzzCheckpointCodec: decodeCkpt never panics on arbitrary bytes, and
// any blob it accepts re-encodes to the identical canonical bytes.
func FuzzCheckpointCodec(f *testing.F) {
	f.Add(encodeCkpt(&ckptState{}))
	f.Add(encodeCkpt(testCkpt()))
	f.Add([]byte{})
	f.Add([]byte{0x31, 0x30, 0x4b, 0x43, 1, 0, 0, 0})
	f.Fuzz(func(t *testing.T, b []byte) {
		ck, err := decodeCkpt(b)
		if err != nil {
			return
		}
		if !bytes.Equal(encodeCkpt(ck), b) {
			t.Fatalf("accepted blob does not re-encode canonically")
		}
	})
}
