package dist

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/bundle"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/parutil"
	"repro/internal/rng"
)

// SparsifyJob returns the paper's Algorithm 2 (PARALLELSPARSIFY) as a
// Job — ⌈log₂ρ⌉ iterations, each building a t-bundle of distributed
// Baswana–Sen spanners and keeping every off-bundle edge independently
// with probability 1/4 at weight 4w (Algorithm 1), runnable unchanged
// on every TransportSpec via Run. Every message of every round is
// billed to Result.Stats (Theorem 5).
//
// cfg follows core.ParallelSparsify exactly — validation, iteration
// count, seed splitting, bundle thickness, and keep probability — so
// for an equal cfg the output graph is edge-identical to the
// shared-memory run: the spectral (1±ε) guarantee transfers verbatim
// and only the communication accounting is new. cfg.Tracker models
// CRCW PRAM cost and is ignored here (the ledger replaces it); it does
// not cross the wire.
func SparsifyJob(eps, rho float64, cfg core.Config) Job[*graph.Graph] {
	return Job[*graph.Graph]{impl: sparsifyImpl{eps: eps, rho: rho, cfg: cfg}}
}

// SparsifyDefaults builds the configuration a bare depth/seed pair
// implies — the calibrated defaults with the bundle depth overridden
// and seed 0 normalized to 1, exactly like repro.Options — so CLIs,
// experiments, and tests derive SparsifyJob's cfg from one place.
func SparsifyDefaults(depth int, seed uint64) core.Config {
	if seed == 0 {
		seed = 1
	}
	cfg := core.DefaultConfig(seed)
	cfg.BundleT = depth
	return cfg
}

// sparsifyImpl is the sparsifier job body. Wire parameter block
// (sparsifyParamsLen bytes, little-endian): eps, rho, cfg.BundleConst,
// cfg.KeepProb as float64 bits, then cfg.BundleLogPow, cfg.BundleT,
// cfg.SpannerK as int64, then cfg.Seed — the full configuration
// crosses the wire, so a Theory-constants run is adopted faithfully by
// every worker process.
type sparsifyImpl struct {
	eps, rho float64
	cfg      core.Config
}

const sparsifyParamsLen = 64

func (j sparsifyImpl) name() string { return jobNameSparsify }

func (j sparsifyImpl) params() []byte {
	b := make([]byte, sparsifyParamsLen)
	binary.LittleEndian.PutUint64(b[0:], math.Float64bits(j.eps))
	binary.LittleEndian.PutUint64(b[8:], math.Float64bits(j.rho))
	binary.LittleEndian.PutUint64(b[16:], math.Float64bits(j.cfg.BundleConst))
	binary.LittleEndian.PutUint64(b[24:], math.Float64bits(j.cfg.KeepProb))
	binary.LittleEndian.PutUint64(b[32:], uint64(int64(j.cfg.BundleLogPow)))
	binary.LittleEndian.PutUint64(b[40:], uint64(int64(j.cfg.BundleT)))
	binary.LittleEndian.PutUint64(b[48:], uint64(int64(j.cfg.SpannerK)))
	binary.LittleEndian.PutUint64(b[56:], j.cfg.Seed)
	return b
}

func (j sparsifyImpl) withParams(b []byte) (jobImpl[*graph.Graph], error) {
	if len(b) != sparsifyParamsLen {
		return nil, fmt.Errorf("dist: sparsify params are %d bytes, want %d", len(b), sparsifyParamsLen)
	}
	return sparsifyImpl{
		eps: math.Float64frombits(binary.LittleEndian.Uint64(b[0:])),
		rho: math.Float64frombits(binary.LittleEndian.Uint64(b[8:])),
		cfg: core.Config{
			BundleConst:  math.Float64frombits(binary.LittleEndian.Uint64(b[16:])),
			KeepProb:     math.Float64frombits(binary.LittleEndian.Uint64(b[24:])),
			BundleLogPow: int(int64(binary.LittleEndian.Uint64(b[32:]))),
			BundleT:      int(int64(binary.LittleEndian.Uint64(b[40:]))),
			SpannerK:     int(int64(binary.LittleEndian.Uint64(b[48:]))),
			Seed:         binary.LittleEndian.Uint64(b[56:]),
		},
	}, nil
}

func (j sparsifyImpl) runFull(re *roundEngine, g *graph.Graph) (*graph.Graph, int) {
	if j.rho <= 1 {
		// The identity run materializes no working view; the process
		// still holds the edge list itself (3 words per edge).
		return g.Clone(), 3 * len(g.Edges)
	}
	w, peak := sparsifyOn(re, newFullView(g), j.eps, j.rho, j.cfg)
	return w.graph(), peak
}

// sparsifyPart is one process's partial sparsifier result: the final
// global edge-id-space size and the incident final edges this shard
// materializes (IDs are final global edge ids, increasing).
type sparsifyPart struct {
	m     int
	ids   []int32
	edges []graph.Edge
}

func (j sparsifyImpl) runPart(re *roundEngine, part *graph.Partition, ck *ckptState) partOut {
	w := newPartView(part.N, part.M, part.Lo, part.Hi, part.IDs, part.Edges)
	peak := w.tableWords()
	if j.rho > 1 {
		iters := int(math.Ceil(math.Log2(j.rho)))
		epsRound := j.eps / float64(iters)
		start := 0
		if ck != nil && ck.epochs > 0 {
			// Recovery fast-forward: replay the checkpointed epochs
			// locally. The renumbering of epoch i is a pure function of
			// (view_i, gathered bundle ids_i, seed) — the gathered lists
			// are in the checkpoint and the sampling coins are pure seed
			// functions — so the replayed views, and with them every
			// subsequent frame and tally, are bit-identical to the
			// failure-free run. No network round is spent.
			if ck.epochs > iters {
				panic(&NetError{Err: fmt.Errorf("checkpoint holds %d epochs of a %d-iteration sparsify run", ck.epochs, iters)})
			}
			for i := 0; i < ck.epochs; i++ {
				keep, scale := sampleKeep(roundConfigFor(j.cfg, i))
				w = renumberPart(w, ck.lists[i], keep, scale)
				if tw := w.tableWords(); tw > peak {
					peak = tw
				}
			}
			re.restore(ck.stats)
			start = ck.epochs
		}
		for i := start; i < iters; i++ {
			var bundleIDs []int32
			w, bundleIDs = sampleRound(re, w, epsRound, roundConfigFor(j.cfg, i))
			if tw := w.tableWords(); tw > peak {
				peak = tw
			}
			ck.record(i, bundleIDs, re)
		}
	}
	sp := &sparsifyPart{m: w.m}
	sp.ids = make([]int32, w.localCount())
	sp.edges = make([]graph.Edge, w.localCount())
	for lid := range sp.edges {
		sp.ids[lid] = w.globalOf(int32(lid))
		sp.edges[lid] = w.edges[lid]
	}
	return partOut{peak: peak, data: sp}
}

// assemble merges the shards' owned final edges at the coordinator
// into the full output graph (each edge contributed by the shard
// owning its U endpoint, so a boundary edge is merged exactly once);
// workers contribute and get nil back.
func (j sparsifyImpl) assemble(tr *NetTransport, part *graph.Partition, po partOut) (*graph.Graph, error) {
	sp := po.data.(*sparsifyPart)
	var ids []int32
	var edges []graph.Edge
	for k, id := range sp.ids {
		if graph.ShardOfVertex(part.N, part.Shards, sp.edges[k].U) == part.Shard {
			ids = append(ids, id)
			edges = append(edges, sp.edges[k])
		}
	}
	blobs, err := tr.GatherBlobs(graphio.EncodeEdgeRecords(ids, edges))
	if err != nil {
		return nil, err
	}
	if tr.Shard() != 0 {
		return nil, nil
	}
	out := make([]graph.Edge, sp.m)
	seen := make([]bool, sp.m)
	for s, blob := range blobs {
		bids, bedges, err := graphio.DecodeEdgeRecords(blob)
		if err != nil {
			return nil, fmt.Errorf("dist: shard %d result: %w", s, err)
		}
		for k, id := range bids {
			if id < 0 || int(id) >= sp.m || seen[id] {
				return nil, fmt.Errorf("dist: shard %d contributed bad or duplicate edge id %d", s, id)
			}
			out[id] = bedges[k]
			seen[id] = true
		}
	}
	for id, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("dist: no shard contributed final edge %d", id)
		}
	}
	return graph.FromEdges(part.N, out), nil
}

// sparsifyOn runs the iteration schedule and reports the peak
// edge-table footprint across the rounds' working views.
func sparsifyOn(e *roundEngine, w *view, eps, rho float64, cfg core.Config) (*view, int) {
	iters := int(math.Ceil(math.Log2(rho)))
	epsRound := eps / float64(iters)
	peak := w.tableWords()
	for i := 0; i < iters; i++ {
		w, _ = sampleRound(e, w, epsRound, roundConfigFor(cfg, i))
		if tw := w.tableWords(); tw > peak {
			peak = tw
		}
	}
	return w, peak
}

// roundConfigFor derives sampling epoch i's config: the per-iteration
// seed split of core.ParallelSparsify, shared by the live schedule and
// the checkpoint replay so both flip identical coins.
func roundConfigFor(cfg core.Config, i int) core.Config {
	cfg.Seed = cfg.Seed ^ (uint64(i+1) * core.RoundSeedMix)
	return cfg
}

// sampleKeep returns epoch-scoped Algorithm 1 sampling: the keep coin
// (a pure function of the seed and the GLOBAL edge id, so every shard
// — and every replay — flips the same coins) and the weight scale 1/p
// applied to kept off-bundle edges.
func sampleKeep(cfg core.Config) (keep func(gid int) bool, scale float64) {
	p := cfg.SampleKeepProb()
	sampleSeed := cfg.Seed ^ core.SampleSeedMix
	return func(gid int) bool { return rng.SplitAt(sampleSeed, uint64(gid)).Float64() < p }, 1 / p
}

// sampleRound is one distributed Algorithm 1 round on the network held
// by e: a t-bundle of distributed spanners over a shrinking alive mask,
// then the uniform sampling round for off-bundle edges. All working
// masks are indexed by local edge id (O(m_incident) words on a
// partition view); the pure seed-derived sampling coin is keyed by
// GLOBAL edge id, so every shard flips the same coins. On a partition
// view the second return value is the gathered sorted in-bundle global
// id list — the O(bundle)-word epoch state the recovery checkpoint
// records, sufficient (with the pure coins) to replay the epoch's
// renumbering without any network round (see renumberPart).
func sampleRound(e *roundEngine, w *view, eps float64, cfg core.Config) (*view, []int32) {
	if eps <= 0 || eps > 1 {
		panic(fmt.Sprintf("dist: sample round requires eps in (0,1], got %v", eps))
	}
	n := w.n
	mLocal := w.localCount()
	t := cfg.BundleThickness(n, eps)

	// Bundle construction: t sequential Baswana–Sen layers, each a
	// spanner of the edges the previous layers left behind. Layer seeds
	// match internal/bundle so the masks agree with bundle.Compute.
	// Loop control (any progress? any edge still alive?) reduces local
	// booleans across the shards, so every process runs the same number
	// of layers — on a single process the reduction is the identity and
	// the flow matches the pre-partition implementation exactly.
	bundleSeed := cfg.Seed ^ core.BundleSeedMix
	inBundle := e.getBools(mLocal)
	curAlive := e.getBools(mLocal)
	remaining := mLocal
	for i := range curAlive {
		curAlive[i] = true
	}
	anyAlive := e.allOrWord(boolFlag(remaining > 0)) != 0
	for layer := 0; layer < t; layer++ {
		if !anyAlive {
			break // bundle swallowed the graph: identity round
		}
		layerSeed := bundleSeed ^ (uint64(layer+1) * bundle.LayerSeedMix)
		in, ctr, _ := runBaswanaSen(e, w, curAlive, cfg.SpannerK, layerSeed)
		size := 0
		for lid := 0; lid < mLocal; lid++ {
			if in[lid] && curAlive[lid] {
				inBundle[lid] = true
				curAlive[lid] = false
				size++
			}
		}
		// The layer's mask and center labels are consumed; recycle them
		// for the next layer.
		e.putBools(in)
		e.putInt32s(ctr)
		remaining -= size
		flags := e.allOrWord(boolFlag(size > 0) | boolFlag(remaining > 0)<<1)
		if flags&1 == 0 {
			break // only self-loops left alive anywhere
		}
		anyAlive = flags&2 != 0
	}
	e.putBools(curAlive)

	// Sampling round: the lower endpoint of each off-bundle edge flips
	// the coin (a pure function of seed and GLOBAL edge id, so both
	// endpoints could recompute it — the message makes the verdict
	// explicit) and announces the verdict to the other endpoint. One
	// round, 1-word messages, one per off-bundle non-loop edge.
	e.BeginPhase("sample")
	keep, scale := sampleKeep(cfg)
	adj := w.adj
	e.ForVertices(func(v int32) {
		lo, hi := adj.Range(v)
		for slot := lo; slot < hi; slot++ {
			eid := adj.EID[slot]
			if inBundle[eid] {
				continue
			}
			u := adj.Nbr[slot]
			if u >= v {
				continue // the lower endpoint decides; v receives
			}
			gid := w.globalOf(eid)
			bit := int32(0)
			if keep(int(gid)) {
				bit = 1
			}
			e.Deliver(v, Message{From: u, Port: gid, Kind: MsgKeep, A: bit})
		}
	})
	e.EndRound()

	if w.full() {
		edges := parutil.CollectShards(mLocal, func(_ int, lo, hi int) []graph.Edge {
			var out []graph.Edge
			for i := lo; i < hi; i++ {
				ge := w.edges[i]
				if inBundle[i] {
					out = append(out, ge)
				} else if keep(i) {
					out = append(out, graph.Edge{U: ge.U, V: ge.V, W: ge.W * scale})
				}
			}
			return out
		})
		e.putBools(inBundle)
		return newFullView(graph.FromEdges(n, edges)), nil
	}

	// Partition renumbering: survival (bundle membership or a kept
	// coin) must be decidable for EVERY global edge id so each process
	// assigns the same new ids. The coin is a pure function of the
	// global id, and bundle membership is gathered as the sorted list
	// of in-bundle global ids, each contributed by its owning shard
	// (the shard of its U endpoint — which materializes it and whose
	// mask agrees with the other endpoint's via the MsgAdd notices).
	// The gathered list is O(bundle size) words — the sparsifier's own
	// output scale — so no Θ(m) mask is ever merged or held; the walk
	// over the id space below costs global TIME once per round but only
	// O(1) words beyond the gather.
	var ownedBundle []int32
	for lid := 0; lid < mLocal; lid++ {
		if inBundle[lid] && w.ownsEdge(int32(lid)) {
			ownedBundle = append(ownedBundle, w.globalOf(int32(lid)))
		}
	}
	e.putBools(inBundle)
	bundleIDs := e.allGatherInt32s(ownedBundle)
	return renumberPart(w, bundleIDs, keep, scale), bundleIDs
}

// renumberPart applies one epoch's survival verdict to a partition
// view: a global edge survives if it is in the gathered bundle id list
// or its keep coin came up, surviving ids are renumbered densely, and
// the locally incident survivors are rebuilt with kept off-bundle
// edges scaled. It is a pure local function of (view, bundleIDs, seed)
// — the live schedule and the checkpoint replay run the identical
// walk, which is what makes recovery bit-identical.
func renumberPart(w *view, bundleIDs []int32, keep func(gid int) bool, scale float64) *view {
	var newIDs []int32
	var newEdges []graph.Edge
	newM := 0
	li, bi := 0, 0
	for i := 0; i < w.m; i++ {
		gid := int32(i)
		lid := li
		incident := li < len(w.ids) && w.ids[li] == gid
		if incident {
			li++
		}
		inB := bi < len(bundleIDs) && bundleIDs[bi] == gid
		if inB {
			bi++
		}
		if !inB && !keep(i) {
			continue
		}
		if incident {
			ge := w.edges[lid]
			if !inB {
				ge.W *= scale
			}
			newIDs = append(newIDs, int32(newM))
			newEdges = append(newEdges, ge)
		}
		newM++
	}
	return newPartView(w.n, newM, w.lo, w.hi, newIDs, newEdges)
}

// boolFlag returns 1 for true, 0 for false.
func boolFlag(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
