package dist

import (
	"fmt"
	"math"

	"repro/internal/bundle"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/parutil"
	"repro/internal/rng"
)

// Result is the output of the distributed sparsifier: the sparsified
// graph plus the total communication ledger of the run.
type Result struct {
	G     *graph.Graph
	Stats Stats
	// PeakViewWords is the largest edge-table footprint (in words, see
	// view.tableWords) any round's working view reached. On the
	// single-process transports this is Θ(m) — one process holds
	// everything (for the rho ≤ 1 identity, the bare edge list it
	// clones); on a network run RunNetCoordinator sets it to the
	// maximum across all processes, i.e. the per-worker O(m_incident)
	// bound the memory regression tests pin and E13 reports.
	PeakViewWords int
}

// Sparsify runs the paper's Algorithm 2 on the simulated synchronous
// network: ⌈log₂ρ⌉ iterations, each building a t-bundle of distributed
// Baswana–Sen spanners and keeping every off-bundle edge independently
// with probability 1/4 at weight 4w (Algorithm 1), with every message
// of every round billed to the returned ledger (Theorem 5).
//
// depth overrides the bundle depth t (the number of spanner layers per
// iteration); depth ≤ 0 selects the calibrated practical default
// ⌈0.1·log₂n/ε_round²⌉ of core.DefaultConfig. For other configurations
// (the paper's theory constants, a custom keep probability) use
// SparsifyConfig.
func Sparsify(g *graph.Graph, eps, rho float64, depth int, seed uint64) Result {
	return SparsifyConfig(g, eps, rho, sparsifyCfg(depth, seed))
}

// SparsifySharded runs the same computation on a sharded transport with
// p worker shards: the compute phase of every round executes in
// parallel, one goroutine per shard, and messages between shards cross
// per-shard-pair buffers at each round barrier. The output is
// edge-identical to Sparsify's for equal (depth, seed); the ledger
// additionally reports the cross-shard traffic split.
func SparsifySharded(g *graph.Graph, eps, rho float64, depth int, seed uint64, p int) Result {
	return SparsifyConfigSharded(g, eps, rho, sparsifyCfg(depth, seed), p)
}

func sparsifyCfg(depth int, seed uint64) core.Config {
	if seed == 0 {
		seed = 1 // match Options.config's default so the API paths agree
	}
	cfg := core.DefaultConfig(seed)
	cfg.BundleT = depth
	return cfg
}

// SparsifyConfig runs the distributed Algorithm 2 under an explicit
// shared-memory configuration. Validation, iteration count, seed
// splitting, bundle thickness, and keep probability all follow
// core.ParallelSparsify exactly, so for an equal cfg the returned graph
// is edge-identical to the shared-memory output — the spectral (1±ε)
// guarantee transfers verbatim and only the communication accounting is
// new. (cfg.Tracker models CRCW PRAM cost and is ignored here; the
// ledger replaces it.)
func SparsifyConfig(g *graph.Graph, eps, rho float64, cfg core.Config) Result {
	return sparsifyFull(NewEngine(g.N), g, eps, rho, cfg)
}

// SparsifyConfigSharded is SparsifyConfig on a sharded transport with p
// worker shards (see SparsifySharded).
func SparsifyConfigSharded(g *graph.Graph, eps, rho float64, cfg core.Config, p int) Result {
	return sparsifyFull(NewShardedEngine(g.N, p), g, eps, rho, cfg)
}

func sparsifyFull(e *Engine, g *graph.Graph, eps, rho float64, cfg core.Config) Result {
	if rho <= 1 {
		// The identity run materializes no working view; the process
		// still holds the edge list itself (3 words per edge).
		return Result{G: g.Clone(), Stats: e.Stats(), PeakViewWords: 3 * len(g.Edges)}
	}
	w, peak := sparsifyOn(e, newFullView(g), eps, rho, cfg)
	return Result{G: w.graph(), Stats: e.Stats(), PeakViewWords: peak}
}

// PartResult is one process's slice of the distributed sparsifier's
// output: the final global sizes, the incident edges this shard
// materializes (IDs are final global edge ids, increasing), and the
// communication ledger — which the network transport's round-tally
// handshake makes identical on every process and to the in-memory
// run's.
type PartResult struct {
	N, M  int
	IDs   []int32
	Edges []graph.Edge // compact, parallel to IDs
	Stats Stats
	// PeakViewWords is the largest edge-table footprint (words) any
	// round's partition view reached on THIS process — the measured
	// O(m_incident) bound.
	PeakViewWords int
}

// OwnedEdges returns the subset of the shard's final edges this
// process is the primary owner of (the owner of U under the shards-way
// partition), so that one process contributes each boundary edge when
// the shards' results are merged into a full graph.
func (r *PartResult) OwnedEdges(shard, shards int) ([]int32, []graph.Edge) {
	var ids []int32
	var edges []graph.Edge
	for k, id := range r.IDs {
		if graph.ShardOfVertex(r.N, shards, r.Edges[k].U) == shard {
			ids = append(ids, id)
			edges = append(edges, r.Edges[k])
		}
	}
	return ids, edges
}

// SparsifyPartition runs the distributed Algorithm 2 collaboratively
// across the shards of tr's network, with this process materializing
// only the partition part (its shard's adjacency plus boundary edges).
// Every process of the run must call it with the same parameters and
// its own shard's partition; the processes execute the same synchronous
// schedule and the transport exchanges the boundary traffic. The union
// of the per-shard OwnedEdges is edge-identical to Sparsify's output
// for equal (depth, seed) — pinned by the loopback regression tests.
func SparsifyPartition(part *graph.Partition, eps, rho float64, depth int, seed uint64, tr Transport) PartResult {
	return SparsifyPartitionConfig(part, eps, rho, sparsifyCfg(depth, seed), tr)
}

// SparsifyPartitionConfig is SparsifyPartition under an explicit
// configuration (see SparsifyConfig).
func SparsifyPartitionConfig(part *graph.Partition, eps, rho float64, cfg core.Config, tr Transport) PartResult {
	e := NewEngineOn(part.N, tr)
	w := newPartView(part.N, part.M, part.Lo, part.Hi, part.IDs, part.Edges)
	peak := w.tableWords()
	if rho > 1 {
		w, peak = sparsifyOn(e, w, eps, rho, cfg)
	}
	res := PartResult{N: part.N, M: w.m, Stats: e.Stats(), PeakViewWords: peak}
	res.IDs = make([]int32, w.localCount())
	res.Edges = make([]graph.Edge, w.localCount())
	for lid := range res.Edges {
		res.IDs[lid] = w.globalOf(int32(lid))
		res.Edges[lid] = w.edges[lid]
	}
	return res
}

// sparsifyOn runs the iteration schedule and reports the peak
// edge-table footprint across the rounds' working views.
func sparsifyOn(e *Engine, w *view, eps, rho float64, cfg core.Config) (*view, int) {
	iters := int(math.Ceil(math.Log2(rho)))
	epsRound := eps / float64(iters)
	peak := w.tableWords()
	for i := 0; i < iters; i++ {
		roundCfg := cfg
		roundCfg.Seed = cfg.Seed ^ (uint64(i+1) * core.RoundSeedMix)
		w = sampleRound(e, w, epsRound, roundCfg)
		if tw := w.tableWords(); tw > peak {
			peak = tw
		}
	}
	return w, peak
}

// sampleRound is one distributed Algorithm 1 round on the network held
// by e: a t-bundle of distributed spanners over a shrinking alive mask,
// then the uniform sampling round for off-bundle edges. All working
// masks are indexed by local edge id (O(m_incident) words on a
// partition view); the pure seed-derived sampling coin is keyed by
// GLOBAL edge id, so every shard flips the same coins.
func sampleRound(e *Engine, w *view, eps float64, cfg core.Config) *view {
	if eps <= 0 || eps > 1 {
		panic(fmt.Sprintf("dist: sample round requires eps in (0,1], got %v", eps))
	}
	n := w.n
	mLocal := w.localCount()
	t := cfg.BundleThickness(n, eps)

	// Bundle construction: t sequential Baswana–Sen layers, each a
	// spanner of the edges the previous layers left behind. Layer seeds
	// match internal/bundle so the masks agree with bundle.Compute.
	// Loop control (any progress? any edge still alive?) reduces local
	// booleans across the shards, so every process runs the same number
	// of layers — on a single process the reduction is the identity and
	// the flow matches the pre-partition implementation exactly.
	bundleSeed := cfg.Seed ^ core.BundleSeedMix
	inBundle := make([]bool, mLocal)
	curAlive := make([]bool, mLocal)
	remaining := mLocal
	for i := range curAlive {
		curAlive[i] = true
	}
	anyAlive := e.allOrWord(boolFlag(remaining > 0)) != 0
	for layer := 0; layer < t; layer++ {
		if !anyAlive {
			break // bundle swallowed the graph: identity round
		}
		layerSeed := bundleSeed ^ (uint64(layer+1) * bundle.LayerSeedMix)
		in, _, _ := runBaswanaSen(e, w, curAlive, cfg.SpannerK, layerSeed)
		size := 0
		for lid := 0; lid < mLocal; lid++ {
			if in[lid] && curAlive[lid] {
				inBundle[lid] = true
				curAlive[lid] = false
				size++
			}
		}
		remaining -= size
		flags := e.allOrWord(boolFlag(size > 0) | boolFlag(remaining > 0)<<1)
		if flags&1 == 0 {
			break // only self-loops left alive anywhere
		}
		anyAlive = flags&2 != 0
	}

	// Sampling round: the lower endpoint of each off-bundle edge flips
	// the coin (a pure function of seed and GLOBAL edge id, so both
	// endpoints could recompute it — the message makes the verdict
	// explicit) and announces the verdict to the other endpoint. One
	// round, 1-word messages, one per off-bundle non-loop edge.
	e.BeginPhase("sample")
	p := cfg.SampleKeepProb()
	scale := 1 / p
	sampleSeed := cfg.Seed ^ core.SampleSeedMix
	keep := func(gid int) bool { return rng.SplitAt(sampleSeed, uint64(gid)).Float64() < p }
	adj := w.adj
	e.ForVertices(func(v int32) {
		lo, hi := adj.Range(v)
		for slot := lo; slot < hi; slot++ {
			eid := adj.EID[slot]
			if inBundle[eid] {
				continue
			}
			u := adj.Nbr[slot]
			if u >= v {
				continue // the lower endpoint decides; v receives
			}
			gid := w.globalOf(eid)
			bit := int32(0)
			if keep(int(gid)) {
				bit = 1
			}
			e.Deliver(v, Message{From: u, Port: gid, Kind: MsgKeep, A: bit})
		}
	})
	e.EndRound()

	if w.full() {
		edges := parutil.CollectShards(mLocal, func(_ int, lo, hi int) []graph.Edge {
			var out []graph.Edge
			for i := lo; i < hi; i++ {
				ge := w.edges[i]
				if inBundle[i] {
					out = append(out, ge)
				} else if keep(i) {
					out = append(out, graph.Edge{U: ge.U, V: ge.V, W: ge.W * scale})
				}
			}
			return out
		})
		return newFullView(graph.FromEdges(n, edges))
	}

	// Partition renumbering: survival (bundle membership or a kept
	// coin) must be decidable for EVERY global edge id so each process
	// assigns the same new ids. The coin is a pure function of the
	// global id, and bundle membership is gathered as the sorted list
	// of in-bundle global ids, each contributed by its owning shard
	// (the shard of its U endpoint — which materializes it and whose
	// mask agrees with the other endpoint's via the MsgAdd notices).
	// The gathered list is O(bundle size) words — the sparsifier's own
	// output scale — so no Θ(m) mask is ever merged or held; the walk
	// over the id space below costs global TIME once per round but only
	// O(1) words beyond the gather.
	var ownedBundle []int32
	for lid := 0; lid < mLocal; lid++ {
		if inBundle[lid] && w.ownsEdge(int32(lid)) {
			ownedBundle = append(ownedBundle, w.globalOf(int32(lid)))
		}
	}
	bundleIDs := e.allGatherInt32s(ownedBundle)

	var newIDs []int32
	var newEdges []graph.Edge
	newM := 0
	li, bi := 0, 0
	for i := 0; i < w.m; i++ {
		gid := int32(i)
		lid := li
		incident := li < len(w.ids) && w.ids[li] == gid
		if incident {
			li++
		}
		inB := bi < len(bundleIDs) && bundleIDs[bi] == gid
		if inB {
			bi++
		}
		if !inB && !keep(i) {
			continue
		}
		if incident {
			ge := w.edges[lid]
			if !inB {
				ge.W *= scale
			}
			newIDs = append(newIDs, int32(newM))
			newEdges = append(newEdges, ge)
		}
		newM++
	}
	return newPartView(n, newM, w.lo, w.hi, newIDs, newEdges)
}

// boolFlag returns 1 for true, 0 for false.
func boolFlag(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
