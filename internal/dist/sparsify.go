package dist

import (
	"fmt"
	"math"

	"repro/internal/bundle"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/parutil"
	"repro/internal/rng"
)

// Result is the output of the distributed sparsifier: the sparsified
// graph plus the total communication ledger of the run.
type Result struct {
	G     *graph.Graph
	Stats Stats
}

// Sparsify runs the paper's Algorithm 2 on the simulated synchronous
// network: ⌈log₂ρ⌉ iterations, each building a t-bundle of distributed
// Baswana–Sen spanners and keeping every off-bundle edge independently
// with probability 1/4 at weight 4w (Algorithm 1), with every message
// of every round billed to the returned ledger (Theorem 5).
//
// depth overrides the bundle depth t (the number of spanner layers per
// iteration); depth ≤ 0 selects the calibrated practical default
// ⌈0.1·log₂n/ε_round²⌉ of core.DefaultConfig. For other configurations
// (the paper's theory constants, a custom keep probability) use
// SparsifyConfig.
func Sparsify(g *graph.Graph, eps, rho float64, depth int, seed uint64) Result {
	return SparsifyConfig(g, eps, rho, sparsifyCfg(depth, seed))
}

// SparsifySharded runs the same computation on a sharded transport with
// p worker shards: the compute phase of every round executes in
// parallel, one goroutine per shard, and messages between shards cross
// per-shard-pair buffers at each round barrier. The output is
// edge-identical to Sparsify's for equal (depth, seed); the ledger
// additionally reports the cross-shard traffic split.
func SparsifySharded(g *graph.Graph, eps, rho float64, depth int, seed uint64, p int) Result {
	return SparsifyConfigSharded(g, eps, rho, sparsifyCfg(depth, seed), p)
}

func sparsifyCfg(depth int, seed uint64) core.Config {
	if seed == 0 {
		seed = 1 // match Options.config's default so the API paths agree
	}
	cfg := core.DefaultConfig(seed)
	cfg.BundleT = depth
	return cfg
}

// SparsifyConfig runs the distributed Algorithm 2 under an explicit
// shared-memory configuration. Validation, iteration count, seed
// splitting, bundle thickness, and keep probability all follow
// core.ParallelSparsify exactly, so for an equal cfg the returned graph
// is edge-identical to the shared-memory output — the spectral (1±ε)
// guarantee transfers verbatim and only the communication accounting is
// new. (cfg.Tracker models CRCW PRAM cost and is ignored here; the
// ledger replaces it.)
func SparsifyConfig(g *graph.Graph, eps, rho float64, cfg core.Config) Result {
	return sparsifyOn(NewEngine(g.N), g, eps, rho, cfg)
}

// SparsifyConfigSharded is SparsifyConfig on a sharded transport with p
// worker shards (see SparsifySharded).
func SparsifyConfigSharded(g *graph.Graph, eps, rho float64, cfg core.Config, p int) Result {
	return sparsifyOn(NewShardedEngine(g.N, p), g, eps, rho, cfg)
}

func sparsifyOn(e *Engine, g *graph.Graph, eps, rho float64, cfg core.Config) Result {
	if rho <= 1 {
		return Result{G: g.Clone(), Stats: e.Stats()}
	}
	iters := int(math.Ceil(math.Log2(rho)))
	epsRound := eps / float64(iters)
	cur := g
	for i := 0; i < iters; i++ {
		roundCfg := cfg
		roundCfg.Seed = cfg.Seed ^ (uint64(i+1) * core.RoundSeedMix)
		cur = sampleRound(e, cur, epsRound, roundCfg)
	}
	return Result{G: cur, Stats: e.Stats()}
}

// sampleRound is one distributed Algorithm 1 round on the network held
// by e: a t-bundle of distributed spanners over a shrinking alive mask,
// then the uniform sampling round for off-bundle edges.
func sampleRound(e *Engine, g *graph.Graph, eps float64, cfg core.Config) *graph.Graph {
	if eps <= 0 || eps > 1 {
		panic(fmt.Sprintf("dist: sample round requires eps in (0,1], got %v", eps))
	}
	n := g.N
	m := len(g.Edges)
	t := cfg.BundleThickness(n, eps)
	adj := graph.NewAdjacency(g)

	// Bundle construction: t sequential Baswana–Sen layers, each a
	// spanner of the edges the previous layers left behind. Layer seeds
	// match internal/bundle so the masks agree with bundle.Compute.
	bundleSeed := cfg.Seed ^ core.BundleSeedMix
	inBundle := make([]bool, m)
	curAlive := make([]bool, m)
	remaining := m
	for i := range curAlive {
		curAlive[i] = true
	}
	for layer := 0; layer < t; layer++ {
		if remaining == 0 {
			break // bundle swallowed the graph: identity round
		}
		layerSeed := bundleSeed ^ (uint64(layer+1) * bundle.LayerSeedMix)
		in, _, _ := runBaswanaSen(e, g, adj, curAlive, cfg.SpannerK, layerSeed)
		size := 0
		for eid, sel := range in {
			if sel && curAlive[eid] {
				inBundle[eid] = true
				curAlive[eid] = false
				size++
			}
		}
		remaining -= size
		if size == 0 {
			break // only self-loops left alive
		}
	}

	// Sampling round: the lower endpoint of each off-bundle edge flips
	// the coin (a pure function of seed and edge id, so both endpoints
	// could recompute it — the message makes the verdict explicit) and
	// announces the verdict to the other endpoint. One round, 1-word
	// messages, one per off-bundle non-loop edge.
	e.BeginPhase("sample")
	p := cfg.SampleKeepProb()
	scale := 1 / p
	sampleSeed := cfg.Seed ^ core.SampleSeedMix
	keep := func(i int) bool { return rng.SplitAt(sampleSeed, uint64(i)).Float64() < p }
	e.ForVertices(func(v int32) {
		lo, hi := adj.Range(v)
		for slot := lo; slot < hi; slot++ {
			eid := adj.EID[slot]
			if inBundle[eid] {
				continue
			}
			u := adj.Nbr[slot]
			if u >= v {
				continue // the lower endpoint decides; v receives
			}
			bit := int32(0)
			if keep(int(eid)) {
				bit = 1
			}
			e.Deliver(v, Message{From: u, Port: eid, Kind: MsgKeep, A: bit})
		}
	})
	e.EndRound()

	edges := parutil.CollectShards(m, func(_ int, lo, hi int) []graph.Edge {
		var out []graph.Edge
		for i := lo; i < hi; i++ {
			ge := g.Edges[i]
			if inBundle[i] {
				out = append(out, ge)
			} else if keep(i) {
				out = append(out, graph.Edge{U: ge.U, V: ge.V, W: ge.W * scale})
			}
		}
		return out
	})
	return graph.FromEdges(n, edges)
}
