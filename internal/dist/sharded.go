package dist

import "sync"

// ShardedTransport partitions the vertex set across P shards, each
// served by one worker goroutine during compute phases, and exchanges
// messages through per-shard-pair buffers at the round barrier. It is
// the architecture a real multi-machine transport slots into: shard =
// machine, per-shard-pair buffer = network channel, EndRound = the
// synchronous flush-and-barrier, CrossShard tally = wire volume. Here
// the "machines" are goroutines and the "wire" is a memcpy, but every
// message is routed, buffered, and billed exactly as a distributed
// deployment would route, buffer, and bill it.
//
// Determinism: the shard partition is a pure function of (n, P), all
// buffers are drained in shard order at the barrier, and the algorithms
// above fold their mailboxes with order-independent reductions — so the
// outputs are bit-identical to MemTransport's for equal seeds, at any P
// and any GOMAXPROCS. The ledger's Rounds and per-phase Words are
// identical too; only the CrossShard split (zero in-memory) is new.
type ShardedTransport struct {
	n, p   int
	bounds []int // p+1 partition boundaries: shard s owns [bounds[s], bounds[s+1])
	// staged[r][s] holds the messages staged this round for recipients
	// owned by shard r whose senders are owned by shard s. Only shard
	// r's worker appends to row r (receiver-staged discipline), so the
	// rows need no locks; the [r][s] split keeps cross-shard traffic
	// separately routable and billable.
	staged  [][][]envelope
	mailbox [][]Message // per-vertex mailboxes rebuilt at each barrier
}

// envelope is one staged message plus its routing address.
type envelope struct {
	to int32
	m  Message
}

// NewShardedTransport returns a transport over n vertices partitioned
// across p shards (clamped to [1, max(n,1)]).
func NewShardedTransport(n, p int) *ShardedTransport {
	if p < 1 {
		p = 1
	}
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1 // n == 0: one trivial shard owning the empty range
	}
	t := &ShardedTransport{
		n:       n,
		p:       p,
		bounds:  make([]int, p+1),
		staged:  make([][][]envelope, p),
		mailbox: make([][]Message, n),
	}
	for s := 0; s <= p; s++ {
		t.bounds[s] = s * n / p
	}
	for r := range t.staged {
		t.staged[r] = make([][]envelope, p)
	}
	return t
}

// Shards returns the shard count P.
func (t *ShardedTransport) Shards() int { return t.p }

// ShardOf returns the shard owning vertex v under the balanced
// contiguous partition (the inverse of bounds).
func (t *ShardedTransport) ShardOf(v int32) int {
	if t.n == 0 {
		return 0
	}
	// The partition is bounds[s] = s*n/p, so s = floor((v*p + p - 1)/n)
	// is off by rounding; a direct computation keeps it exact.
	s := int(int64(v) * int64(t.p) / int64(t.n))
	for s+1 <= t.p && int(v) >= t.bounds[s+1] {
		s++
	}
	for s > 0 && int(v) < t.bounds[s] {
		s--
	}
	return s
}

// Workers equals Shards: one worker goroutine per shard.
func (t *ShardedTransport) Workers() int { return t.p }

// ForWorkers runs body once per shard over the shard's vertex range,
// concurrently, and joins them — the fork half of the round barrier.
func (t *ShardedTransport) ForWorkers(body func(worker, lo, hi int)) {
	if t.n <= 0 {
		return
	}
	if t.p == 1 {
		body(0, 0, t.n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(t.p)
	for s := 0; s < t.p; s++ {
		go func(s int) {
			defer wg.Done()
			body(s, t.bounds[s], t.bounds[s+1])
		}(s)
	}
	wg.Wait()
}

// Send stages m for vertex `to`, routed into the (recipient shard,
// sender shard) pair buffer. Must be called by to's owning worker (or a
// single goroutine between compute phases); row staged[r] is touched by
// no one else, so the append is race-free.
func (t *ShardedTransport) Send(_ int, to int32, m Message) {
	r := t.ShardOf(to)
	s := r
	if m.From >= 0 {
		s = t.ShardOf(m.From)
	}
	t.staged[r][s] = append(t.staged[r][s], envelope{to: to, m: m})
}

// Recv returns the messages delivered to v by the last EndRound.
func (t *ShardedTransport) Recv(_ int, v int32) []Message { return t.mailbox[v] }

// EndRound is the round barrier: each shard, in parallel, clears the
// mailboxes it owns and drains its incoming pair buffers (local first,
// then remote shards in index order) into them, tallying local and
// cross-shard traffic separately. Tallies merge in shard order, so the
// ledger is deterministic.
func (t *ShardedTransport) EndRound(int) RoundTally {
	tallies := make([]RoundTally, t.p)
	var wg sync.WaitGroup
	wg.Add(t.p)
	for r := 0; r < t.p; r++ {
		go func(r int) {
			defer wg.Done()
			tally := &tallies[r]
			for v := t.bounds[r]; v < t.bounds[r+1]; v++ {
				t.mailbox[v] = t.mailbox[v][:0]
			}
			for s := 0; s < t.p; s++ {
				buf := t.staged[r][s]
				for _, env := range buf {
					w := env.m.Kind.Words()
					tally.Messages++
					tally.Words += int64(w)
					if w > tally.MaxMessageWords {
						tally.MaxMessageWords = w
					}
					if s != r {
						tally.CrossShardMessages++
						tally.CrossShardWords += int64(w)
					}
					t.mailbox[env.to] = append(t.mailbox[env.to], env.m)
				}
				t.staged[r][s] = buf[:0]
			}
		}(r)
	}
	wg.Wait()
	var total RoundTally
	for _, tally := range tallies {
		total.Messages += tally.Messages
		total.Words += tally.Words
		total.CrossShardMessages += tally.CrossShardMessages
		total.CrossShardWords += tally.CrossShardWords
		if tally.MaxMessageWords > total.MaxMessageWords {
			total.MaxMessageWords = tally.MaxMessageWords
		}
	}
	return total
}
