package dist

// ShardedTransport partitions the vertex set across P shards, each
// served by one worker goroutine during compute phases, and exchanges
// messages through the per-shard-pair buckets of the exchange core at
// the round barrier. It is the in-process twin of NetTransport: shard =
// machine, pair bucket = network stream, EndRound = the synchronous
// flush-and-barrier, CrossShard tally = wire volume. Here the
// "machines" are goroutines and the "wire" is a memcpy, but every
// message is routed, buffered, and billed exactly as the network
// transport routes, buffers, and bills it.
//
// Determinism: the shard partition is a pure function of (n, P), all
// buckets are drained in staging-shard order at the barrier, and the
// algorithms above fold their mailboxes with order-independent
// reductions — so the outputs are bit-identical to MemTransport's for
// equal seeds, at any P and any GOMAXPROCS. The ledger's Rounds and
// per-phase Words are identical too; only the CrossShard split (zero
// in-memory) is new.
type ShardedTransport struct {
	x *exchanger
}

// NewShardedTransport returns a transport over n vertices partitioned
// across p shards (clamped to [1, max(n,1)]).
func NewShardedTransport(n, p int) *ShardedTransport {
	return &ShardedTransport{x: newExchanger(n, p, p)}
}

// Shards returns the shard count P.
func (t *ShardedTransport) Shards() int { return t.x.owner.p }

// ShardOf returns the shard owning vertex v under the balanced
// contiguous partition.
func (t *ShardedTransport) ShardOf(v int32) int { return t.x.owner.shardOf(v) }

// Workers equals Shards: one worker goroutine per shard.
func (t *ShardedTransport) Workers() int { return t.x.exec.p }

// ForWorkers runs body once per shard over the shard's vertex range,
// concurrently, and joins them — the fork half of the round barrier.
func (t *ShardedTransport) ForWorkers(body func(worker, lo, hi int)) {
	t.x.forWorkers(body)
}

// Send stages m under the exchange core's staging discipline: into the
// row of the worker owning m.From for sender-staged kinds, into the
// recipient owner's row otherwise. Rows are touched by no other
// worker, so the append is race-free.
func (t *ShardedTransport) Send(_ int, to int32, m Message) {
	t.x.send(to, m)
}

// Recv returns the messages delivered to v by the last EndRound.
func (t *ShardedTransport) Recv(_ int, v int32) []Message { return t.x.recv(v) }

// EndRound is the round barrier: each shard, in parallel, clears the
// mailboxes it owns and drains its incoming pair buckets (staging
// shards in index order) into them, tallying local and cross-shard
// traffic separately. Tallies merge in shard order, so the ledger is
// deterministic.
func (t *ShardedTransport) EndRound(int) RoundTally {
	return t.x.drainAll()
}
