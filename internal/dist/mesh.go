package dist

// The full-mesh data plane of the network transport (the Mesh spec /
// NetConfig.Mesh): workers dial each other directly and exchange their
// round batches peer-to-peer, so a cross-shard batch crosses the wire
// once instead of being relayed twice through the coordinator, and
// shard 0 stops being the fleet's bandwidth hot spot. The hub
// connections keep carrying everything else — the join handshake,
// tallies, collectives, blobs, and the recovery protocol — unchanged.
//
// Bring-up happens once per attempt (setupDataPlane): each worker
// announced its peer listener address during the join handshake, the
// coordinator broadcasts the assembled address book, and every worker
// dials its lower-numbered peers while accepting its higher-numbered
// ones. Each direct link runs the full connection discipline of the
// hub: heartbeats in both directions, a per-direction CRC-32C stream
// checksum cross-checked at every barrier, and frame batching through
// the shared net.Buffers arena.
//
// On top of the direct links the barrier double-buffers: flushAsync
// hands a completed vectored batch to a per-connection writer
// goroutine and returns, so the round goroutine encodes the next
// peer's batch (and, across barriers, computes round r+1) while round
// r's bytes drain to the kernel. The write-then-read alternation that
// keeps the protocol deadlock-free is preserved per peer: a worker
// enqueues its batch to peer d before it reads from d, and sync
// operations (collectives, handshakes) drain the async writer first,
// so on any single connection the byte order is exactly the star
// protocol's.
//
// Recovery composes with the mesh through PR 6's machinery plus one
// frame: a worker that loses a mesh link first reports the dead peer
// to the coordinator (frameFault on its hub), then parks on the hub
// waiting for the rollback the coordinator will announce. The report
// is load-bearing, not an optimization — the coordinator's only
// failure probe is the connection it is currently reading, and a
// parked worker's heartbeats keep that connection alive, so a death
// whose hub frames all arrived (its async mesh batch alone was lost)
// would otherwise deadlock the fleet until the park expired (see
// meshFail). Every survivor tears its links down before acking, the
// respawned shard announces a fresh listener when it rejoins, and the
// next attempt rebuilds the mesh from the re-broadcast book and
// replays deterministically.

import (
	"fmt"
	"io"
	"net"
	"time"
)

const (
	// maxMeshAddrLen bounds an announced peer or standby listener
	// address (the capability handshake flags themselves live in
	// wire.go: helloFlagMesh, helloFlagFailover).
	maxMeshAddrLen = 512
	// asyncWriterDepth is the writer goroutine's queue depth: how many
	// flushed batches may be in flight on one connection before
	// flushAsync blocks. The ack channel holds strictly more so the
	// writer can never stall acking while the round goroutine stalls
	// enqueueing.
	asyncWriterDepth = 4
)

// meshActive reports whether the full-mesh data plane is in effect.
// With p ≤ 2 there is no worker↔worker traffic to carry, so a mesh
// run executes the star protocol exactly (no links, no book).
func (t *NetTransport) meshActive() bool { return t.mesh && t.part.p > 2 }

// pendingBatch is one flushed-but-not-yet-written batch owned by a
// connection's writer goroutine: the vectored buffers, the pooled
// payloads to reclaim after the write, and the header-arena chunks
// the batch's frame headers live in.
type pendingBatch struct {
	bufs   net.Buffers
	retire [][]byte
	chunks [][]byte
	err    error
}

// writerLoop is the connection's dedicated writer: one vectored write
// per batch, serialized with the heartbeat sender (and any sync
// flush) by wmu. It touches no transport state — every buffer flows
// back to the round goroutine through the ack channel.
func (p *peerConn) writerLoop() {
	defer close(p.writerDone)
	for b := range p.writerCh {
		p.wmu.Lock()
		_ = p.c.SetWriteDeadline(time.Now().Add(p.t.timeout))
		bufs := b.bufs // WriteTo consumes its receiver; keep b.bufs for reclaim
		_, err := bufs.WriteTo(p.c)
		p.wmu.Unlock()
		b.err = err
		p.writerAck <- b
	}
}

// takeSpare returns a recycled pendingBatch (or a fresh one), its
// slices emptied but their capacity retained.
func (p *peerConn) takeSpare() *pendingBatch {
	if n := len(p.spare); n > 0 {
		b := p.spare[n-1]
		p.spare[n-1] = nil
		p.spare = p.spare[:n-1]
		return b
	}
	return &pendingBatch{}
}

// reclaimBatch retires one acked batch on the round goroutine: pooled
// payloads return to the freelist, header chunks to the spare arena,
// the first write error sticks.
func (p *peerConn) reclaimBatch(b *pendingBatch) {
	if b.err != nil && p.werr == nil {
		p.werr = b.err
	}
	for i, buf := range b.retire {
		p.t.putBuf(buf)
		b.retire[i] = nil
	}
	b.retire = b.retire[:0]
	p.spareChunks = append(p.spareChunks, b.chunks...)
	for i := range b.chunks {
		b.chunks[i] = nil
	}
	b.chunks = b.chunks[:0]
	for i := range b.bufs {
		b.bufs[i] = nil
	}
	b.bufs = b.bufs[:0]
	b.err = nil
	p.inflight--
	p.spare = append(p.spare, b)
}

// reclaimAcks drains the ack channel, blocking until every in-flight
// batch is reclaimed when block is set.
func (p *peerConn) reclaimAcks(block bool) {
	for p.inflight > 0 {
		if block {
			p.reclaimBatch(<-p.writerAck)
			continue
		}
		select {
		case b := <-p.writerAck:
			p.reclaimBatch(b)
		default:
			return
		}
	}
}

// flushAsync hands the pending batch to the writer goroutine and
// returns without waiting for the socket — the double-buffering seam:
// the caller proceeds to stage (or read) while the batch drains.
// Resources are reclaimed on this goroutine when a later flushAsync,
// flush, or drainAsync observes the write's ack. Write errors are
// sticky and surface on the next flush of any kind; by then the read
// side of the same failure has usually surfaced too, and error
// attribution happens there.
func (p *peerConn) flushAsync() error {
	p.reclaimAcks(false)
	if p.werr != nil {
		return p.werr
	}
	if len(p.pending) == 0 {
		return nil
	}
	if p.writerCh == nil {
		p.writerCh = make(chan *pendingBatch, asyncWriterDepth)
		p.writerAck = make(chan *pendingBatch, 2*asyncWriterDepth)
		p.writerDone = make(chan struct{})
		go p.writerLoop()
	}
	// Swap the staging slices wholesale: the batch takes the pending
	// buffers, the retire list, and the header arena; the connection
	// stages the next batch into the (emptied) slices of a previously
	// reclaimed one, so steady state allocates nothing.
	b := p.takeSpare()
	b.bufs, p.pending = p.pending, net.Buffers(b.bufs[:0])
	b.retire, p.retire = p.retire, b.retire[:0]
	b.chunks, p.hdrChunks = p.hdrChunks, b.chunks[:0]
	p.pendingBytes = 0
	p.hdrUsed = 0
	p.inflight++
	p.writerCh <- b
	return nil
}

// drainAsync blocks until every batch handed to the writer goroutine
// has hit the socket (or failed) and is reclaimed. flush calls it
// first, so on any one connection the sync protocol (collectives,
// handshakes, the hub tally exchange) observes its bytes strictly
// after the async round traffic — per-connection protocol order is
// untouched by double buffering.
func (p *peerConn) drainAsync() error {
	p.reclaimAcks(true)
	return p.werr
}

// stopWriter shuts the writer goroutine down after its queue drains.
func (p *peerConn) stopWriter() {
	if p.writerCh == nil {
		return
	}
	close(p.writerCh)
	<-p.writerDone
	p.reclaimAcks(true)
	p.writerCh = nil
}

// abort tears a connection down without waiting for in-flight writes:
// the socket closes first, so a writer goroutine blocked on a dead or
// stalled peer fails immediately instead of waiting out its deadline.
// Used by teardownMesh during a recovery rollback.
func (p *peerConn) abort() {
	_ = p.c.Close()
	p.stopHeartbeats()
	if p.werr == nil {
		p.werr = fmt.Errorf("connection aborted")
	}
	p.stopWriter()
}

// teardownMesh drops every direct worker↔worker link (on a rollback,
// and at final Close). The peer listener stays open: its address —
// announced once at the join handshake — remains valid in the
// coordinator's book across attempts, and only a respawned shard
// announces a new one.
func (t *NetTransport) teardownMesh() {
	for s, pc := range t.meshPeers {
		if pc != nil {
			pc.abort()
			t.meshPeers[s] = nil
		}
	}
}

// encodeAddrBook packs the coordinator's address book (indexed by
// shard; entries 0 and self are empty) for the bring-up broadcast.
func encodeAddrBook(addrs []string) []byte {
	n := 4
	for _, a := range addrs {
		n += 4 + len(a)
	}
	b := make([]byte, 0, n)
	var u [4]byte
	putU32(u[:], uint32(len(addrs)))
	b = append(b, u[:]...)
	for _, a := range addrs {
		putU32(u[:], uint32(len(a)))
		b = append(b, u[:]...)
		b = append(b, a...)
	}
	return b
}

// decodeAddrBook unpacks a broadcast address book, validating the
// shard count and every length against the blob.
func decodeAddrBook(blob []byte, p int) ([]string, error) {
	if len(blob) < 4 {
		return nil, fmt.Errorf("dist: short mesh address book (%d bytes)", len(blob))
	}
	if count := int(getU32(blob)); count != p {
		return nil, fmt.Errorf("dist: mesh address book has %d entries, want %d", count, p)
	}
	blob = blob[4:]
	addrs := make([]string, p)
	for i := range addrs {
		if len(blob) < 4 {
			return nil, fmt.Errorf("dist: truncated mesh address book at entry %d", i)
		}
		l := int(getU32(blob))
		blob = blob[4:]
		if l > maxMeshAddrLen || len(blob) < l {
			return nil, fmt.Errorf("dist: truncated mesh address book at entry %d", i)
		}
		addrs[i] = string(blob[:l])
		blob = blob[l:]
	}
	return addrs, nil
}

// setupDataPlane establishes the attempt's worker↔worker links when
// the full-mesh data plane is active: the coordinator broadcasts the
// address book it collected at the join handshakes, and every worker
// dials its lower-numbered peers then accepts its higher-numbered
// ones. Lower-dials-higher-accepts is acyclic, and a dial needs only
// the peer's listener to exist — TCP's accept backlog parks the
// connection until the acceptor finishes its own dials — so bring-up
// cannot deadlock. Called at the top of every attempt: a rollback
// tears every link down, the respawned shard announces a fresh
// listener as it rejoins, and the next attempt rebuilds from the
// fresh book.
func (t *NetTransport) setupDataPlane() error {
	if !t.meshActive() {
		return nil
	}
	if t.self == 0 {
		// Wait for every join handshake BEFORE encoding the book — the
		// handshakes are what fill meshAddrs in.
		if err := t.WaitReady(); err != nil {
			return err
		}
		_, err := t.BroadcastBlob(encodeAddrBook(t.meshAddrs))
		return err
	}
	blob, err := t.BroadcastBlob(nil)
	if err != nil {
		return err
	}
	book, err := decodeAddrBook(blob, t.part.p)
	if err != nil {
		return err
	}
	return t.meshConnect(book)
}

// meshConnect builds this worker's direct links from the address
// book. Every link is validated by a hello/welcome pair carrying the
// same (version, n, shards) contract as the hub handshake plus the
// acceptor's shard id, so a crossed wire or stale peer fails loudly
// before any round runs.
func (t *NetTransport) meshConnect(book []string) error {
	p := t.part.p
	if t.meshPeers == nil {
		t.meshPeers = make([]*peerConn, p)
	}
	for d := 1; d < t.self; d++ {
		c, err := net.DialTimeout("tcp", book[d], t.timeout)
		if err != nil {
			return t.meshFail(d, fmt.Errorf("dialing shard %d at %q: %w", d, book[d], err))
		}
		pc := newPeerConn(t, c)
		var hb [helloSize]byte
		putHello(hb[:], hello{Version: wireVersion, N: uint64(t.part.n), Shard: uint32(t.self), Shards: uint32(p)})
		if err := pc.writeFrame(frameHeader{Type: frameMeshHello, From: uint16(t.self)}, hb[:]); err == nil {
			err = pc.flush()
		} else {
			err = fmt.Errorf("mesh hello: %w", err)
		}
		if err != nil {
			c.Close()
			return t.meshFail(d, fmt.Errorf("shard %d handshake: %w", d, err))
		}
		_, payload, err := pc.readFrame(frameMeshWelcome)
		if err != nil {
			c.Close()
			return t.meshFail(d, fmt.Errorf("shard %d handshake: %w", d, err))
		}
		got := parseHello(payload)
		t.putBuf(payload)
		if got.Version != wireVersion || got.N != uint64(t.part.n) || got.Shards != uint32(p) || int(got.Shard) != d {
			c.Close()
			return t.meshFail(d, fmt.Errorf("shard %d peer config mismatch: %+v", d, got))
		}
		pc.startHeartbeats()
		t.meshPeers[d] = pc
	}
	need := p - 1 - t.self
	type deadliner interface{ SetDeadline(time.Time) error }
	dl, _ := t.meshLn.(deadliner)
	deadline := time.Now().Add(t.timeout)
	for need > 0 {
		if dl != nil {
			_ = dl.SetDeadline(deadline)
		}
		c, err := t.meshLn.Accept()
		if err != nil {
			return t.meshFail(0, fmt.Errorf("accepting mesh peers (%d missing): %w", need, err))
		}
		pc := newPeerConn(t, c)
		s, err := t.acceptMeshHandshake(pc)
		if err != nil {
			// Like the coordinator's join window: a stray (port scanner,
			// stale dial of a rolled-back attempt) is closed and skipped,
			// never allowed to abort the fleet. The deadline slides only
			// on successful links.
			c.Close()
			continue
		}
		t.meshPeers[s] = pc
		pc.startHeartbeats()
		need--
		deadline = time.Now().Add(t.timeout)
	}
	return nil
}

// acceptMeshHandshake validates one inbound direct link: version and
// sizes, a shard id that is higher-numbered and not already linked.
func (t *NetTransport) acceptMeshHandshake(pc *peerConn) (int, error) {
	_, payload, err := pc.readFrame(frameMeshHello)
	if err != nil {
		return 0, err
	}
	h := parseHello(payload)
	t.putBuf(payload)
	if h.Version != wireVersion || h.N != uint64(t.part.n) || h.Shards != uint32(t.part.p) {
		return 0, fmt.Errorf("dist: mesh peer config mismatch: %+v", h)
	}
	s := int(h.Shard)
	if s <= t.self || s >= t.part.p || t.meshPeers[s] != nil {
		return 0, fmt.Errorf("dist: bad or duplicate mesh peer shard %d", s)
	}
	var wb [helloSize]byte
	putHello(wb[:], hello{Version: wireVersion, N: uint64(t.part.n), Shard: uint32(t.self), Shards: uint32(t.part.p)})
	if err := pc.writeFrame(frameHeader{Type: frameMeshWelcome, From: uint16(t.self)}, wb[:]); err != nil {
		return 0, err
	}
	if err := pc.flush(); err != nil {
		return 0, err
	}
	return s, nil
}

// meshFail handles a failed direct link on a worker. A dead mesh peer
// is not fatal for the fleet: report the suspect shard to the
// coordinator (frameFault on the hub), then park on the hub waiting
// for the rollback the coordinator will announce, skipping any hub
// frames of the broken attempt undecoded, and surface it as
// *rollbackError for the normal recovery path. If no rollback arrives
// within the drain window the failure is fatal.
//
// The fault report is what makes the park safe: the coordinator's only
// failure probe is the connection it is currently reading, and this
// worker's heartbeats keep that read alive — so when the coordinator
// happens to be blocked on the PARKED worker (the dead peer's hub
// frames arrived but its async mesh batch was lost with the process),
// a silent park deadlocks the fleet until the drain window expires and
// takes the survivor down with it. The report rides the stream the
// coordinator is already reading and names the shard to recover.
// Like a heartbeat it is written raw under wmu — unbatched, unhashed,
// and excluded from WireBytes — and best-effort: if the hub is dead
// too, the park fails out on its own. suspect 0 means the dead peer is
// unknown (a missing inbound dial at bring-up) and nothing is sent.
func (t *NetTransport) meshFail(suspect int, err error) error {
	if suspect > 0 {
		var fb [headerSize]byte
		putHeader(fb[:], frameHeader{Type: frameFault, From: uint16(t.self), To: uint16(suspect)})
		h := t.hub
		h.wmu.Lock()
		_ = h.c.SetWriteDeadline(time.Now().Add(t.timeout))
		_, _ = h.c.Write(fb[:])
		h.wmu.Unlock()
	}
	deadline := time.Now().Add(2 * t.timeout)
	for {
		_ = t.hub.c.SetReadDeadline(deadline)
		var hb [headerSize]byte
		if _, e := io.ReadFull(t.hub.br, hb[:]); e != nil {
			break
		}
		h, e := parseHeader(hb[:])
		if e != nil {
			break
		}
		if h.Type == frameRollback {
			return &rollbackError{generation: h.Round}
		}
		n, e := payloadLen(h)
		if e != nil {
			break
		}
		if n > 0 {
			if _, e := io.CopyN(io.Discard, t.hub.br, int64(n)); e != nil {
				break
			}
		}
	}
	return fmt.Errorf("mesh data plane: %w", err)
}

// endRoundMeshWorker is the worker barrier on the full-mesh data
// plane. Writes: one frameRound + frameCheck per direct peer, each
// handed to that connection's writer goroutine (flushAsync) so the
// next peer's batch is encoded while the previous one drains; then
// the shard-0 batch, the local tally, and the stream check on the
// hub. Reads: each direct peer's batch + check, then the
// coordinator's batch, the global tally, and its check. The batch to
// peer d is always enqueued before d is read — the per-peer
// write-then-read alternation — and delivery stays in global origin
// order (0..p−1), so mailbox order and every downstream decision are
// bit-identical to the star and in-process transports.
func (t *NetTransport) endRoundMeshWorker(round int, local RoundTally) (RoundTally, error) {
	self, p := t.self, t.part.p
	for d := 1; d < p; d++ {
		if d == self {
			continue
		}
		pc := t.meshPeers[d]
		batch := t.x.takeRow(self, d)
		h := frameHeader{Type: frameRound, From: uint16(self), To: uint16(d), Round: uint32(round), Count: uint32(len(batch))}
		payload := t.encodeEnvelopes(batch)
		if err := pc.writeFrame(h, payload); err != nil {
			return RoundTally{}, t.meshFail(d, fmt.Errorf("link to shard %d: %w", d, err))
		}
		pc.retireBuf(payload)
		if err := pc.writeCheck(uint32(round)); err != nil {
			return RoundTally{}, t.meshFail(d, fmt.Errorf("link to shard %d: %w", d, err))
		}
		if err := pc.flushAsync(); err != nil {
			return RoundTally{}, t.meshFail(d, fmt.Errorf("link to shard %d: %w", d, err))
		}
	}
	batch := t.x.takeRow(self, 0)
	h := frameHeader{Type: frameRound, From: uint16(self), Round: uint32(round), Count: uint32(len(batch))}
	payload := t.encodeEnvelopes(batch)
	if err := t.hub.writeFrame(h, payload); err != nil {
		return RoundTally{}, err
	}
	t.hub.retireBuf(payload)
	var tb [tallySize]byte
	putTally(tb[:], local)
	if err := t.hub.writeFrame(frameHeader{Type: frameTally, From: uint16(self), Round: uint32(round)}, tb[:]); err != nil {
		return RoundTally{}, err
	}
	if err := t.hub.writeCheck(uint32(round)); err != nil {
		return RoundTally{}, err
	}
	if err := t.hub.flush(); err != nil {
		return RoundTally{}, err
	}

	// Read the inbound barrier raw and decode only after each stream's
	// checksum verifies, exactly like the star worker.
	payloads := make([][]byte, p)
	for d := 1; d < p; d++ {
		if d == self {
			continue
		}
		pc := t.meshPeers[d]
		rh, payload, err := pc.readFrame(frameRound)
		if err != nil {
			return RoundTally{}, t.meshFail(d, fmt.Errorf("link to shard %d: %w", d, err))
		}
		if int(rh.From) != d || int(rh.To) != self || int(rh.Round) != round {
			return RoundTally{}, t.meshFail(d, fmt.Errorf("link to shard %d: misrouted batch %+v (want from %d to %d round %d)", d, rh, d, self, round))
		}
		payloads[d] = payload
		if err := pc.readCheck(uint32(round)); err != nil {
			return RoundTally{}, t.meshFail(d, fmt.Errorf("link to shard %d: %w", d, err))
		}
	}
	rh, payload, err := t.hub.readFrame(frameRound)
	if err != nil {
		return RoundTally{}, err
	}
	if rh.From != 0 || int(rh.To) != self || int(rh.Round) != round {
		return RoundTally{}, fmt.Errorf("misrouted batch %+v (want from 0 to %d round %d)", rh, self, round)
	}
	payloads[0] = payload
	th, tallyPayload, err := t.hub.readFrame(frameTally)
	if err != nil {
		return RoundTally{}, err
	}
	if int(th.Round) != round {
		return RoundTally{}, fmt.Errorf("global tally for round %d, want round %d", th.Round, round)
	}
	global := parseTally(tallyPayload)
	t.putBuf(tallyPayload)
	if err := t.hub.readCheck(uint32(round)); err != nil {
		return RoundTally{}, err
	}

	t.x.clearMailboxes(self)
	var discard RoundTally
	for d := 0; d < p; d++ {
		if d == self {
			t.x.deliverInto(&discard, t.x.takeRow(self, self))
			continue
		}
		t.x.deliverInto(&discard, t.decodeEnvelopes(payloads[d]))
		t.putBuf(payloads[d])
	}
	return global, nil
}

// endRoundMeshCoordinator is the coordinator barrier on the full-mesh
// data plane: no relay. Each worker's hub stream carries only its
// shard-0 batch, its local tally, and its stream check; the
// coordinator merges the tallies and writes back its own batch, the
// global tally, and its check per worker.
func (t *NetTransport) endRoundMeshCoordinator(round int, local RoundTally) (RoundTally, error) {
	p := t.part.p
	global := local
	payloads := make([][]byte, p)
	for w := 1; w < p; w++ {
		h, payload, err := t.peers[w].readFrame(frameRound)
		if err != nil {
			return RoundTally{}, t.peerFail(w, fmt.Errorf("reading shard %d: %w", w, err))
		}
		if int(h.From) != w || h.To != 0 || int(h.Round) != round {
			return RoundTally{}, t.peerFail(w, fmt.Errorf("bad batch header %+v from shard %d round %d", h, w, round))
		}
		payloads[w] = payload
		th, tb, err := t.peers[w].readFrame(frameTally)
		if err != nil {
			return RoundTally{}, t.peerFail(w, fmt.Errorf("reading shard %d tally: %w", w, err))
		}
		if int(th.From) != w || int(th.Round) != round {
			return RoundTally{}, t.peerFail(w, fmt.Errorf("bad tally header %+v from shard %d round %d", th, w, round))
		}
		wt := parseTally(tb)
		t.putBuf(tb)
		if err := t.peers[w].readCheck(uint32(round)); err != nil {
			return RoundTally{}, t.peerFail(w, fmt.Errorf("shard %d: %w", w, err))
		}
		global = mergeTallies([]RoundTally{global, wt})
	}
	var gtb [tallySize]byte
	putTally(gtb[:], global)
	for r := 1; r < p; r++ {
		payload := t.encodeEnvelopes(t.x.takeRow(0, r))
		h := frameHeader{Type: frameRound, To: uint16(r), Round: uint32(round), Count: uint32(len(payload) / envelopeSize)}
		if err := t.peers[r].writeFrame(h, payload); err != nil {
			return RoundTally{}, t.peerFail(r, err)
		}
		t.peers[r].retireBuf(payload)
		if err := t.peers[r].writeFrame(frameHeader{Type: frameTally, Round: uint32(round)}, gtb[:]); err != nil {
			return RoundTally{}, t.peerFail(r, err)
		}
		if err := t.peers[r].writeCheck(uint32(round)); err != nil {
			return RoundTally{}, t.peerFail(r, err)
		}
		if err := t.peers[r].flush(); err != nil {
			return RoundTally{}, t.peerFail(r, err)
		}
	}
	t.x.clearMailboxes(0)
	var discard RoundTally
	for d := 0; d < p; d++ {
		if d == 0 {
			t.x.deliverInto(&discard, t.x.takeRow(0, 0))
			continue
		}
		t.x.deliverInto(&discard, t.decodeEnvelopes(payloads[d]))
		t.putBuf(payloads[d])
	}
	return global, nil
}
