package dist

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/rng"
	"repro/internal/spanner"
)

// SpannerOutput is the assembled output of the spanner job.
type SpannerOutput struct {
	// InSpanner marks the selected edges of the input graph (indexed by
	// global edge id). For equal (k, seed) it is identical to
	// spanner.Compute's mask on every TransportSpec: the distributed
	// execution changes how knowledge travels, not what is decided.
	InSpanner []bool
	// G is the spanner subgraph itself — the InSpanner edges in global
	// id order with their original weights.
	G *graph.Graph
	// Center is the final cluster assignment after phase 1 (−1 for
	// vertices that dropped out of the clustering).
	Center []int32
	// K is the level count actually used (k ≤ 0 selects ⌈log₂ n⌉), so
	// the stretch guarantee is 2K−1 in the resistive metric.
	K int
}

// SpannerJob returns the Baswana–Sen (2k−1)-spanner as a Job — the
// paper's Theorem 2 algorithm, runnable unchanged on every
// TransportSpec via Run. k ≤ 0 selects the paper's ⌈log₂ n⌉ levels;
// seed drives all sampling (equal seeds give identical outputs at any
// spec, shard count, and GOMAXPROCS). The communication ledger of the
// run (O(log² n) rounds, O(m log n) messages of O(1) words) is
// returned in Result.Stats.
func SpannerJob(k int, seed uint64) Job[*SpannerOutput] {
	return Job[*SpannerOutput]{impl: spannerImpl{k: k, seed: seed}}
}

// spannerImpl is the spanner job body. Wire parameter block
// (spannerParamsLen bytes, little-endian): [0:8) the level count k as
// int64, [8:16) the seed.
type spannerImpl struct {
	k    int
	seed uint64
}

const spannerParamsLen = 16

func (j spannerImpl) name() string { return jobNameSpanner }

func (j spannerImpl) params() []byte {
	b := make([]byte, spannerParamsLen)
	binary.LittleEndian.PutUint64(b[0:], uint64(int64(j.k)))
	binary.LittleEndian.PutUint64(b[8:], j.seed)
	return b
}

func (j spannerImpl) withParams(b []byte) (jobImpl[*SpannerOutput], error) {
	if len(b) != spannerParamsLen {
		return nil, fmt.Errorf("dist: spanner params are %d bytes, want %d", len(b), spannerParamsLen)
	}
	return spannerImpl{
		k:    int(int64(binary.LittleEndian.Uint64(b[0:]))),
		seed: binary.LittleEndian.Uint64(b[8:]),
	}, nil
}

func (j spannerImpl) runFull(re *roundEngine, g *graph.Graph) (*SpannerOutput, int) {
	w := newFullView(g)
	in, center, kk := runBaswanaSen(re, w, nil, j.k, j.seed)
	return &SpannerOutput{InSpanner: in, G: g.Subgraph(in), Center: center, K: kk}, w.tableWords()
}

// spannerPart is one process's partial spanner result: the membership
// mask of its incident edges (local ids, complete for every incident
// edge — boundary decisions made remotely arrive as MsgAdd notices)
// and the final centers of its owned vertex range.
type spannerPart struct {
	in     []bool
	center []int32
	k      int
}

func (j spannerImpl) runPart(re *roundEngine, part *graph.Partition, ck *ckptState) partOut {
	// The spanner records no mid-run checkpoint state: recovery replays
	// the whole (short) run from the top, still bit-identically. A
	// checkpoint claiming completed epochs for this job cannot be ours.
	if ck != nil && ck.epochs > 0 {
		panic(&NetError{Err: fmt.Errorf("checkpoint holds %d epochs for the checkpoint-free %s job", ck.epochs, jobNameSpanner)})
	}
	w := newPartView(part.N, part.M, part.Lo, part.Hi, part.IDs, part.Edges)
	in, center, kk := runBaswanaSen(re, w, nil, j.k, j.seed)
	owned := append([]int32(nil), center[part.Lo:part.Hi]...)
	return partOut{peak: w.tableWords(), data: &spannerPart{in: in, center: owned, k: kk}}
}

// assemble gathers the shards' partition results at the coordinator:
// each process contributes the in-spanner edges it OWNS (the shard of
// the U endpoint, so every boundary edge is contributed exactly once)
// plus the final centers of its owned vertex range; the coordinator
// rebuilds the full global mask, the spanner subgraph, and the center
// array. Workers contribute and get nil back. Blob layout per shard:
// [0:4) owned in-spanner edge count, then that many
// graphio.EdgeRecordSize records (global id + edge), then 4 bytes per
// owned vertex of final centers.
func (j spannerImpl) assemble(tr *NetTransport, part *graph.Partition, po partOut) (*SpannerOutput, error) {
	sp := po.data.(*spannerPart)
	var ownIDs []int32
	var ownEdges []graph.Edge
	for lid, id := range part.IDs {
		if sp.in[lid] && graph.ShardOfVertex(part.N, part.Shards, part.Edges[lid].U) == part.Shard {
			ownIDs = append(ownIDs, id)
			ownEdges = append(ownEdges, part.Edges[lid])
		}
	}
	recs := graphio.EncodeEdgeRecords(ownIDs, ownEdges)
	owned := part.Hi - part.Lo
	blob := make([]byte, 4+len(recs)+4*owned)
	binary.LittleEndian.PutUint32(blob[0:], uint32(len(ownIDs)))
	copy(blob[4:], recs)
	for k, c := range sp.center {
		binary.LittleEndian.PutUint32(blob[4+len(recs)+4*k:], uint32(c))
	}
	blobs, err := tr.GatherBlobs(blob)
	if err != nil {
		return nil, err
	}
	if tr.Shard() != 0 {
		return nil, nil
	}
	// The assembled mask is Θ(m) bits by contract, but the edge store
	// is kept at O(spanner size): the contributions are (id, edge)
	// pairs, each shard's list sorted by global id, so a sort of the
	// concatenation rebuilds global order without a Θ(m)-entry table.
	in := make([]bool, part.M)
	center := make([]int32, part.N)
	var allIDs []int32
	var allEdges []graph.Edge
	bounds := graph.ShardBounds(part.N, part.Shards)
	for s, b := range blobs {
		want := bounds[s+1] - bounds[s]
		if len(b) < 4 {
			return nil, fmt.Errorf("dist: shard %d spanner blob is %d bytes", s, len(b))
		}
		cnt := int(binary.LittleEndian.Uint32(b[0:]))
		if cnt < 0 || len(b) != 4+cnt*graphio.EdgeRecordSize+4*want {
			return nil, fmt.Errorf("dist: shard %d spanner blob: %d records, %d bytes, %d owned vertices", s, cnt, len(b), want)
		}
		bids, bedges, err := graphio.DecodeEdgeRecords(b[4 : 4+cnt*graphio.EdgeRecordSize])
		if err != nil {
			return nil, fmt.Errorf("dist: shard %d spanner result: %w", s, err)
		}
		for _, id := range bids {
			if id < 0 || int(id) >= part.M || in[id] {
				return nil, fmt.Errorf("dist: shard %d contributed bad or duplicate spanner edge %d", s, id)
			}
			in[id] = true
		}
		allIDs = append(allIDs, bids...)
		allEdges = append(allEdges, bedges...)
		for k := 0; k < want; k++ {
			center[bounds[s]+k] = int32(binary.LittleEndian.Uint32(b[4+cnt*graphio.EdgeRecordSize+4*k:]))
		}
	}
	order := make([]int, len(allIDs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return allIDs[order[a]] < allIDs[order[b]] })
	sub := &graph.Graph{N: part.N, Edges: make([]graph.Edge, 0, len(order))}
	for _, i := range order {
		sub.Edges = append(sub.Edges, allEdges[i])
	}
	return &SpannerOutput{InSpanner: in, G: sub, Center: center, K: sp.k}, nil
}

// notice is a spanner-add or edge-drop decision queued for delivery to
// the other endpoint at the end of the decision round. eid is the
// GLOBAL edge id — notices cross the wire.
type notice struct {
	v   int32 // the deciding vertex (sender)
	eid int32
}

// runBaswanaSen executes the clustering over the alive edges of w,
// billing every round to e. alive may be nil (all edges); masks are
// indexed by LOCAL edge id and sized w.localCount(). The returned mask
// is local too: parallel to the view's edges, complete for every
// locally materialized edge (every decision about an incident edge is
// either made locally or arrives as a MsgAdd/MsgDrop notice). On a
// full view local ids equal global ids and the mask spans the graph.
//
// Partition discipline: every per-vertex array (center, parent, depth)
// is read only for vertices the local workers own, remote cluster
// state travels in MsgCenter/MsgNewCenter payloads, and the only
// shared-memory shortcut left is for values that are pure functions of
// the seed (a cluster's sampled bit), which any process re-derives
// locally. Message ports and notice payloads carry GLOBAL edge ids —
// the two processes sharing a boundary edge materialize it at
// different local ids — and are translated back through the view's id
// map on receipt. That is what lets the network transport run this
// function unchanged with each process holding only its shard, at
// O(n + m_incident) words per process.
func runBaswanaSen(e *roundEngine, w *view, alive []bool, k int, seed uint64) ([]bool, []int32, int) {
	adj := w.adj
	n := w.n
	m := w.localCount()
	if k <= 0 {
		k = spanner.DefaultK(n)
	}
	// The per-vertex label arrays and the edge masks come from the
	// engine's scratch freelists: a sparsify run re-enters this function
	// once per bundle layer, and recycling the arrays removes its
	// dominant allocator traffic. inSpanner and center are returned —
	// callers that discard them (sampleRound) put them back; callers
	// that retain them (the spanner job) simply never do.
	inSpanner := e.getBools(m)
	center := e.getInt32s(n)
	parent := e.getInt32s(n) // tree edge toward the center (−1 at the center)
	depth := e.getInt32s(n)  // hop distance to the center within the cluster
	for i := range center {
		center[i] = int32(i)
		parent[i] = -1
		depth[i] = 0
	}
	if k == 1 {
		for lid := range inSpanner {
			if alive == nil || alive[lid] {
				inSpanner[lid] = true
			}
		}
		e.putInt32s(parent)
		e.putInt32s(depth)
		return inSpanner, center, k
	}
	dead := e.getBools(m)
	for lid := range dead {
		if alive != nil && !alive[lid] {
			dead[lid] = true
		}
		if w.edges[lid].U == w.edges[lid].V {
			// Self-loops carry no spectral information.
			dead[lid] = true
		}
	}
	// The decision step's next-iteration labels, double-buffered: every
	// owned index is rewritten each iteration before the swap, and
	// unowned indices are never read (the partition discipline above),
	// so the buffers ping-pong without clearing.
	newCenter := e.getInt32s(n)
	newParent := e.getInt32s(n)
	newDepth := e.getInt32s(n)
	p := math.Pow(float64(n), -1.0/float64(k))

	for iter := 1; iter <= k-1; iter++ {
		// --- Step 1: centers sample themselves; the verdict is waved
		// down the cluster trees. A cluster formed by iteration i has
		// radius ≤ i−1, so the wave costs ≤ i−1 rounds — summed over
		// the iterations this is the Θ(log² n) round bill of Theorem 2.
		// The sampled bit is a pure function of (seed, iter, cluster),
		// so any process derives any cluster's bit locally; the wave is
		// billed all the same because a real deployment (where only the
		// center flips the coin) must pay it.
		e.BeginPhase("spanner/broadcast")
		iterSeed := seed ^ (uint64(iter) * 0x9e3779b97f4a7c15)
		sampledBit := func(c int32) bool {
			return rng.SplitAt(iterSeed, uint64(c)).Float64() < p
		}
		depthMaxes := collectVertices(e, func(_ int, lo, hi int) []int32 {
			mx := int32(0)
			for v := lo; v < hi; v++ {
				if center[v] >= 0 && depth[v] > mx {
					mx = depth[v]
				}
			}
			return []int32{mx}
		})
		maxDepth := int32(0)
		for _, mx := range depthMaxes {
			if mx > maxDepth {
				maxDepth = mx
			}
		}
		maxDepth = e.allMaxInt32(maxDepth)
		for r := int32(1); r <= maxDepth; r++ {
			e.ForVertices(func(v int32) {
				if center[v] < 0 || depth[v] != r {
					return
				}
				bit := int32(0)
				if sampledBit(center[v]) {
					bit = 1
				}
				e.Deliver(v, Message{From: parent[v], Kind: MsgSampled, A: bit})
			})
			e.EndRound()
		}
		// After the wave every clustered vertex knows its own cluster's
		// bit; calling sampledBit(center[v]) below reads exactly the
		// mailbox content just simulated.

		// --- Step 2: neighbor exchange — every clustered vertex
		// announces (cluster id, depth, sampled bit) over each alive
		// incident edge. One round, 3-word messages. Sender-iterated:
		// the announcement carries the sender's own state, so its owner
		// stages it — on the network transport this is traffic that
		// genuinely crosses the wire for boundary edges. The Port is the
		// GLOBAL edge id, so both endpoints name the edge identically.
		e.BeginPhase("spanner/exchange")
		e.ForVertices(func(u int32) {
			cu := center[u]
			if cu < 0 {
				return // unclustered vertices have nothing to announce
			}
			bit := int32(0)
			if sampledBit(cu) {
				bit = 1
			}
			du := depth[u]
			lo, hi := adj.Range(u)
			for slot := lo; slot < hi; slot++ {
				eid := adj.EID[slot]
				if dead[eid] {
					continue
				}
				e.Deliver(adj.Nbr[slot], Message{From: u, Port: w.globalOf(eid), Kind: MsgCenter, A: cu, B: du, C: bit})
			}
		})
		e.EndRound()

		// --- Step 3: every vertex of an unsampled cluster decides from
		// its mailbox alone, then notifies the other endpoint of each
		// edge it added or discarded. The decision rule is verbatim
		// Baswana–Sen cases (a)/(b), matching internal/spanner; all
		// comparisons and tie-breaks use global edge ids, so two shards
		// rank a boundary edge identically.
		e.BeginPhase("spanner/decide")
		type vertexOut struct {
			adds  []notice
			kills []notice
		}
		outs := collectVertices(e, func(_ int, lo, hi int) []vertexOut {
			var shardOuts []vertexOut
			groups := make(map[int32]spanner.BestEdge)
			removeCluster := make(map[int32]bool, 4)
			for vi := lo; vi < hi; vi++ {
				v := int32(vi)
				c := center[v]
				newParent[v], newDepth[v] = parent[v], depth[v]
				if c < 0 {
					newCenter[v] = -1
					newParent[v], newDepth[v] = -1, 0
					continue
				}
				if sampledBit(c) {
					// Vertices of sampled clusters keep everything.
					newCenter[v] = c
					continue
				}
				for key := range groups {
					delete(groups, key)
				}
				inbox := e.Mailbox(v)
				for _, msg := range inbox {
					if msg.Kind != MsgCenter || msg.A == c {
						continue
					}
					spanner.UpdateBest(groups, msg.A, msg.Port, w.edges[w.localOf(msg.Port)].Resistance())
				}
				var out vertexOut
				// The lightest edge into a *sampled* adjacent cluster.
				best := spanner.BestEdge{Eid: -1}
				var bestCluster int32
				for _, msg := range inbox {
					if msg.Kind != MsgCenter || msg.A == c {
						continue
					}
					if msg.C == 0 {
						continue // neighbor cluster not sampled
					}
					be := groups[msg.A]
					if best.Eid < 0 || be.Len < best.Len || (be.Len == best.Len && be.Eid < best.Eid) {
						best = be
						bestCluster = msg.A
					}
				}
				if best.Eid < 0 {
					// Case (a): no sampled neighbor cluster. Certify the
					// lightest edge to every adjacent cluster; v drops out
					// and discards all its alive edges.
					newCenter[v] = -1
					newParent[v], newDepth[v] = -1, 0
					for _, be := range groups {
						out.adds = append(out.adds, notice{v, be.Eid})
					}
					lo2, hi2 := adj.Range(v)
					for slot := lo2; slot < hi2; slot++ {
						eid := adj.EID[slot]
						if !dead[eid] {
							out.kills = append(out.kills, notice{v, w.globalOf(eid)})
						}
					}
				} else {
					// Case (b): join the sampled cluster reached by the
					// lightest such edge; certify lighter adjacent
					// clusters; discard edges into all clusters handled.
					newCenter[v] = bestCluster
					out.adds = append(out.adds, notice{v, best.Eid})
					for key := range removeCluster {
						delete(removeCluster, key)
					}
					removeCluster[bestCluster] = true
					for cu, be := range groups {
						if cu == bestCluster {
							continue
						}
						if be.Len < best.Len || (be.Len == best.Len && be.Eid < best.Eid) {
							out.adds = append(out.adds, notice{v, be.Eid})
							removeCluster[cu] = true
						}
					}
					for _, msg := range inbox {
						if msg.Kind != MsgCenter {
							continue
						}
						if removeCluster[msg.A] {
							out.kills = append(out.kills, notice{v, msg.Port})
						}
					}
					// The tree edge toward the new center is the edge
					// just joined over; depth grows by one hop.
					for _, msg := range inbox {
						if msg.Kind == MsgCenter && msg.Port == best.Eid {
							newParent[v] = msg.From
							newDepth[v] = msg.B + 1
							break
						}
					}
				}
				if len(out.adds) > 0 || len(out.kills) > 0 {
					shardOuts = append(shardOuts, out)
				}
			}
			return shardOuts
		})
		// Apply the local decisions, then deliver the add/drop
		// notifications (one round; delivery order is shard order, which
		// is deterministic). On a partition view `outs` holds only this
		// process's decisions — the rest arrive as notices below.
		for _, out := range outs {
			for _, a := range out.adds {
				inSpanner[w.localOf(a.eid)] = true
			}
			for _, kn := range out.kills {
				dead[w.localOf(kn.eid)] = true
			}
		}
		for _, out := range outs {
			for _, a := range out.adds {
				if o := w.otherEnd(w.localOf(a.eid), a.v); o != a.v {
					e.Deliver(o, Message{From: a.v, Port: a.eid, Kind: MsgAdd, A: a.eid})
				}
			}
			for _, kn := range out.kills {
				if o := w.otherEnd(w.localOf(kn.eid), kn.v); o != kn.v {
					e.Deliver(o, Message{From: kn.v, Port: kn.eid, Kind: MsgDrop, A: kn.eid})
				}
			}
		}
		e.EndRound()
		center, newCenter = newCenter, center
		parent, newParent = newParent, parent
		depth, newDepth = newDepth, depth
		applyNotices(e, w, inSpanner, dead)

		// --- Step 4: exchange the new centers over surviving edges and
		// discard intra-cluster edges (both endpoints reach the same
		// verdict from symmetric knowledge). One round, 1-word messages.
		e.BeginPhase("spanner/update")
		e.ForVertices(func(u int32) {
			cu := center[u]
			if cu < 0 {
				return
			}
			lo, hi := adj.Range(u)
			for slot := lo; slot < hi; slot++ {
				eid := adj.EID[slot]
				if dead[eid] {
					continue
				}
				e.Deliver(adj.Nbr[slot], Message{From: u, Port: w.globalOf(eid), Kind: MsgNewCenter, A: cu})
			}
		})
		e.EndRound()
		// An edge is intra-cluster exactly when the announced center
		// equals the receiver's own; both endpoints reach the verdict
		// independently, so a boundary edge dies on both sides without
		// further traffic.
		kills := collectVertices(e, func(_ int, lo, hi int) []int32 {
			var shardKills []int32
			for vi := lo; vi < hi; vi++ {
				v := int32(vi)
				c := center[v]
				if c < 0 {
					continue
				}
				for _, msg := range e.Mailbox(v) {
					if msg.Kind == MsgNewCenter && msg.A == c {
						shardKills = append(shardKills, msg.Port)
					}
				}
			}
			return shardKills
		})
		for _, gid := range kills {
			dead[w.localOf(gid)] = true
		}
	}

	// --- Phase 2: vertex–cluster joins. One exchange round announcing
	// final centers, one local selection of the lightest edge per
	// adjacent surviving cluster, one notification round.
	e.BeginPhase("spanner/join")
	e.ForVertices(func(u int32) {
		cu := center[u]
		if cu < 0 {
			return
		}
		lo, hi := adj.Range(u)
		for slot := lo; slot < hi; slot++ {
			eid := adj.EID[slot]
			if dead[eid] {
				continue
			}
			e.Deliver(adj.Nbr[slot], Message{From: u, Port: w.globalOf(eid), Kind: MsgNewCenter, A: cu})
		}
	})
	e.EndRound()
	adds := collectVertices(e, func(_ int, lo, hi int) []notice {
		var shardAdds []notice
		groups := make(map[int32]spanner.BestEdge)
		for vi := lo; vi < hi; vi++ {
			v := int32(vi)
			for key := range groups {
				delete(groups, key)
			}
			for _, msg := range e.Mailbox(v) {
				if msg.Kind != MsgNewCenter {
					continue
				}
				spanner.UpdateBest(groups, msg.A, msg.Port, w.edges[w.localOf(msg.Port)].Resistance())
			}
			for _, be := range groups {
				shardAdds = append(shardAdds, notice{v, be.Eid})
			}
		}
		return shardAdds
	})
	for _, a := range adds {
		inSpanner[w.localOf(a.eid)] = true
	}
	for _, a := range adds {
		if o := w.otherEnd(w.localOf(a.eid), a.v); o != a.v {
			e.Deliver(o, Message{From: a.v, Port: a.eid, Kind: MsgAdd, A: a.eid})
		}
	}
	e.EndRound()
	applyNotices(e, w, inSpanner, dead)
	e.putBools(dead)
	e.putInt32s(parent)
	e.putInt32s(depth)
	e.putInt32s(newCenter)
	e.putInt32s(newParent)
	e.putInt32s(newDepth)
	return inSpanner, center, k
}

// applyNotices folds the MsgAdd/MsgDrop notices delivered by the last
// barrier into the local edge masks, translating the notices' global
// edge ids through the view. On a single-process view this re-applies
// what the decision loop already wrote (idempotent); on a partition
// view it is how the other endpoint of a boundary edge learns a remote
// decision. Notices are collected per worker and applied sequentially
// so that two endpoints of one edge never write the same mask slot
// concurrently.
func applyNotices(e *roundEngine, w *view, inSpanner, dead []bool) {
	type appliedNote struct {
		eid int32
		add bool
	}
	notes := collectVertices(e, func(_ int, lo, hi int) []appliedNote {
		var shardNotes []appliedNote
		for vi := lo; vi < hi; vi++ {
			for _, msg := range e.Mailbox(int32(vi)) {
				switch msg.Kind {
				case MsgAdd:
					shardNotes = append(shardNotes, appliedNote{msg.A, true})
				case MsgDrop:
					shardNotes = append(shardNotes, appliedNote{msg.A, false})
				}
			}
		}
		return shardNotes
	})
	for _, nt := range notes {
		if nt.add {
			inSpanner[w.localOf(nt.eid)] = true
		} else {
			dead[w.localOf(nt.eid)] = true
		}
	}
}
