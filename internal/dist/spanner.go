package dist

import (
	"math"

	"repro/internal/graph"
	"repro/internal/parutil"
	"repro/internal/rng"
	"repro/internal/spanner"
)

// SpannerResult is the output of the distributed Baswana–Sen run.
type SpannerResult struct {
	// InSpanner marks the selected edges of the input graph. For equal
	// (k, seed) it is identical to spanner.Compute's mask: the
	// distributed simulation changes how knowledge travels, not what is
	// decided.
	InSpanner []bool
	// Center is the final cluster assignment after phase 1 (−1 for
	// vertices that dropped out of the clustering).
	Center []int32
	// K is the level count actually used (k ≤ 0 selects ⌈log₂ n⌉), so
	// the stretch guarantee is 2K−1 in the resistive metric.
	K int
	// Stats is the communication ledger Theorem 2 bounds: O(log² n)
	// rounds, O(m log n) messages of O(1) words each.
	Stats Stats
}

// BaswanaSen runs the Baswana–Sen (2k−1)-spanner on the simulated
// synchronous network. k ≤ 0 selects the paper's ⌈log₂ n⌉ levels; seed
// drives all sampling (equal seeds give identical outputs at any
// GOMAXPROCS).
func BaswanaSen(g *graph.Graph, k int, seed uint64) *SpannerResult {
	return baswanaSenOn(NewEngine(g.N), g, k, seed)
}

// BaswanaSenSharded runs the same computation on a sharded transport
// with p worker shards. The output is bit-identical to BaswanaSen's for
// equal (k, seed); the ledger additionally reports the cross-shard
// traffic split.
func BaswanaSenSharded(g *graph.Graph, k int, seed uint64, p int) *SpannerResult {
	return baswanaSenOn(NewShardedEngine(g.N, p), g, k, seed)
}

func baswanaSenOn(e *Engine, g *graph.Graph, k int, seed uint64) *SpannerResult {
	adj := graph.NewAdjacency(g)
	in, center, kk := runBaswanaSen(e, g, adj, nil, k, seed)
	return &SpannerResult{InSpanner: in, Center: center, K: kk, Stats: e.Stats()}
}

// notice is a spanner-add or edge-drop decision queued for delivery to
// the other endpoint at the end of the decision round.
type notice struct {
	v   int32 // the deciding vertex (sender)
	eid int32
}

// runBaswanaSen executes the clustering over the alive edges of g,
// billing every round to e. alive may be nil (all edges). The returned
// mask has length len(g.Edges).
func runBaswanaSen(e *Engine, g *graph.Graph, adj *graph.Adjacency, alive []bool, k int, seed uint64) ([]bool, []int32, int) {
	n := g.N
	m := len(g.Edges)
	if k <= 0 {
		k = spanner.DefaultK(n)
	}
	inSpanner := make([]bool, m)
	center := make([]int32, n)
	parent := make([]int32, n) // tree edge toward the center (−1 at the center)
	depth := make([]int32, n)  // hop distance to the center within the cluster
	for i := range center {
		center[i] = int32(i)
		parent[i] = -1
	}
	if k == 1 {
		for i := range inSpanner {
			if alive == nil || alive[i] {
				inSpanner[i] = true
			}
		}
		return inSpanner, center, k
	}
	dead := make([]bool, m)
	for i := range dead {
		if alive != nil && !alive[i] {
			dead[i] = true
		}
		if g.Edges[i].U == g.Edges[i].V {
			dead[i] = true // self-loops carry no spectral information
		}
	}
	p := math.Pow(float64(n), -1.0/float64(k))

	for iter := 1; iter <= k-1; iter++ {
		// --- Step 1: centers sample themselves; the verdict is waved
		// down the cluster trees. A cluster formed by iteration i has
		// radius ≤ i−1, so the wave costs ≤ i−1 rounds — summed over
		// the iterations this is the Θ(log² n) round bill of Theorem 2.
		e.BeginPhase("spanner/broadcast")
		sampled := make([]bool, n)
		e.ForVertices(func(v int32) {
			r := rng.SplitAt(seed^(uint64(iter)*0x9e3779b97f4a7c15), uint64(v))
			sampled[v] = r.Float64() < p
		})
		maxDepth := int32(0)
		for v := 0; v < n; v++ {
			if center[v] >= 0 && depth[v] > maxDepth {
				maxDepth = depth[v]
			}
		}
		for r := int32(1); r <= maxDepth; r++ {
			e.ForVertices(func(v int32) {
				if center[v] < 0 || depth[v] != r {
					return
				}
				bit := int32(0)
				if sampled[center[v]] {
					bit = 1
				}
				e.Deliver(v, Message{From: parent[v], Kind: MsgSampled, A: bit})
			})
			e.EndRound()
		}
		// After the wave every clustered vertex knows its own cluster's
		// bit; reading sampled[center[v]] below is exactly the mailbox
		// content just simulated.

		// --- Step 2: neighbor exchange — every clustered vertex
		// announces (cluster id, depth, sampled bit) over each alive
		// incident edge. One round, 3-word messages.
		e.BeginPhase("spanner/exchange")
		e.ForVertices(func(v int32) {
			lo, hi := adj.Range(v)
			for slot := lo; slot < hi; slot++ {
				eid := adj.EID[slot]
				if dead[eid] {
					continue
				}
				u := adj.Nbr[slot]
				cu := center[u]
				if cu < 0 {
					continue // unclustered neighbors have nothing to announce
				}
				bit := int32(0)
				if sampled[cu] {
					bit = 1
				}
				e.Deliver(v, Message{From: u, Port: eid, Kind: MsgCenter, A: cu, B: depth[u], C: bit})
			}
		})
		e.EndRound()

		// --- Step 3: every vertex of an unsampled cluster decides from
		// its mailbox alone, then notifies the other endpoint of each
		// edge it added or discarded. The decision rule is verbatim
		// Baswana–Sen cases (a)/(b), matching internal/spanner.
		e.BeginPhase("spanner/decide")
		newCenter := make([]int32, n)
		newParent := make([]int32, n)
		newDepth := make([]int32, n)
		type vertexOut struct {
			adds  []notice
			kills []notice
		}
		outs := CollectVertices(e, func(_ int, lo, hi int) []vertexOut {
			var shardOuts []vertexOut
			groups := make(map[int32]spanner.BestEdge)
			for vi := lo; vi < hi; vi++ {
				v := int32(vi)
				c := center[v]
				newParent[v], newDepth[v] = parent[v], depth[v]
				if c < 0 {
					newCenter[v] = -1
					newParent[v], newDepth[v] = -1, 0
					continue
				}
				if sampled[c] {
					// Vertices of sampled clusters keep everything.
					newCenter[v] = c
					continue
				}
				for key := range groups {
					delete(groups, key)
				}
				inbox := e.Mailbox(v)
				for _, msg := range inbox {
					if msg.Kind != MsgCenter || msg.A == c {
						continue
					}
					spanner.UpdateBest(groups, msg.A, msg.Port, g.Edges[msg.Port].Resistance())
				}
				var out vertexOut
				// The lightest edge into a *sampled* adjacent cluster.
				best := spanner.BestEdge{Eid: -1}
				var bestCluster int32
				for _, msg := range inbox {
					if msg.Kind != MsgCenter || msg.A == c {
						continue
					}
					if msg.C == 0 {
						continue // neighbor cluster not sampled
					}
					be := groups[msg.A]
					if best.Eid < 0 || be.Len < best.Len || (be.Len == best.Len && be.Eid < best.Eid) {
						best = be
						bestCluster = msg.A
					}
				}
				if best.Eid < 0 {
					// Case (a): no sampled neighbor cluster. Certify the
					// lightest edge to every adjacent cluster; v drops out
					// and discards all its alive edges.
					newCenter[v] = -1
					newParent[v], newDepth[v] = -1, 0
					for _, be := range groups {
						out.adds = append(out.adds, notice{v, be.Eid})
					}
					lo2, hi2 := adj.Range(v)
					for slot := lo2; slot < hi2; slot++ {
						eid := adj.EID[slot]
						if !dead[eid] {
							out.kills = append(out.kills, notice{v, eid})
						}
					}
				} else {
					// Case (b): join the sampled cluster reached by the
					// lightest such edge; certify lighter adjacent
					// clusters; discard edges into all clusters handled.
					newCenter[v] = bestCluster
					out.adds = append(out.adds, notice{v, best.Eid})
					removeCluster := make(map[int32]bool, 4)
					removeCluster[bestCluster] = true
					for cu, be := range groups {
						if cu == bestCluster {
							continue
						}
						if be.Len < best.Len || (be.Len == best.Len && be.Eid < best.Eid) {
							out.adds = append(out.adds, notice{v, be.Eid})
							removeCluster[cu] = true
						}
					}
					for _, msg := range inbox {
						if msg.Kind != MsgCenter {
							continue
						}
						if removeCluster[msg.A] {
							out.kills = append(out.kills, notice{v, msg.Port})
						}
					}
					// The tree edge toward the new center is the edge
					// just joined over; depth grows by one hop.
					for _, msg := range inbox {
						if msg.Kind == MsgCenter && msg.Port == best.Eid {
							newParent[v] = msg.From
							newDepth[v] = msg.B + 1
							break
						}
					}
				}
				if len(out.adds) > 0 || len(out.kills) > 0 {
					shardOuts = append(shardOuts, out)
				}
			}
			return shardOuts
		})
		// Apply the simultaneous decisions, then deliver the add/drop
		// notifications (one round; delivery order is shard order, which
		// is deterministic).
		for _, out := range outs {
			for _, a := range out.adds {
				inSpanner[a.eid] = true
			}
			for _, kn := range out.kills {
				dead[kn.eid] = true
			}
		}
		for _, out := range outs {
			for _, a := range out.adds {
				if o := other(g, a.eid, a.v); o != a.v {
					e.Deliver(o, Message{From: a.v, Port: a.eid, Kind: MsgAdd, A: a.eid})
				}
			}
			for _, kn := range out.kills {
				if o := other(g, kn.eid, kn.v); o != kn.v {
					e.Deliver(o, Message{From: kn.v, Port: kn.eid, Kind: MsgDrop, A: kn.eid})
				}
			}
		}
		e.EndRound()
		center, parent, depth = newCenter, newParent, newDepth

		// --- Step 4: exchange the new centers over surviving edges and
		// discard intra-cluster edges (both endpoints reach the same
		// verdict from symmetric knowledge). One round, 1-word messages.
		e.BeginPhase("spanner/update")
		e.ForVertices(func(v int32) {
			lo, hi := adj.Range(v)
			for slot := lo; slot < hi; slot++ {
				eid := adj.EID[slot]
				if dead[eid] {
					continue
				}
				u := adj.Nbr[slot]
				if cu := center[u]; cu >= 0 {
					e.Deliver(v, Message{From: u, Port: eid, Kind: MsgNewCenter, A: cu})
				}
			}
		})
		e.EndRound()
		parutil.For(m, func(i int) {
			if dead[i] {
				return
			}
			ge := g.Edges[i]
			cu, cv := center[ge.U], center[ge.V]
			if cu >= 0 && cu == cv {
				dead[i] = true
			}
		})
	}

	// --- Phase 2: vertex–cluster joins. One exchange round announcing
	// final centers, one local selection of the lightest edge per
	// adjacent surviving cluster, one notification round.
	e.BeginPhase("spanner/join")
	e.ForVertices(func(v int32) {
		lo, hi := adj.Range(v)
		for slot := lo; slot < hi; slot++ {
			eid := adj.EID[slot]
			if dead[eid] {
				continue
			}
			u := adj.Nbr[slot]
			if cu := center[u]; cu >= 0 {
				e.Deliver(v, Message{From: u, Port: eid, Kind: MsgNewCenter, A: cu})
			}
		}
	})
	e.EndRound()
	adds := CollectVertices(e, func(_ int, lo, hi int) []notice {
		var shardAdds []notice
		groups := make(map[int32]spanner.BestEdge)
		for vi := lo; vi < hi; vi++ {
			v := int32(vi)
			for key := range groups {
				delete(groups, key)
			}
			for _, msg := range e.Mailbox(v) {
				if msg.Kind != MsgNewCenter {
					continue
				}
				spanner.UpdateBest(groups, msg.A, msg.Port, g.Edges[msg.Port].Resistance())
			}
			for _, be := range groups {
				shardAdds = append(shardAdds, notice{v, be.Eid})
			}
		}
		return shardAdds
	})
	for _, a := range adds {
		inSpanner[a.eid] = true
	}
	for _, a := range adds {
		if o := other(g, a.eid, a.v); o != a.v {
			e.Deliver(o, Message{From: a.v, Port: a.eid, Kind: MsgAdd, A: a.eid})
		}
	}
	e.EndRound()
	return inSpanner, center, k
}

// other returns the endpoint of edge eid that is not v.
func other(g *graph.Graph, eid, v int32) int32 {
	ge := g.Edges[eid]
	if ge.U == v {
		return ge.V
	}
	return ge.U
}
