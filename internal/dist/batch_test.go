package dist

// Tests pinning the vectored-write batching of the wire layer: a
// flushed batch must put the exact same bytes on the wire as the
// per-frame protocol did (WireBytes and CRC-32C are computed at append
// time, so any drift here would desynchronize the stream checksums),
// and the read side must reassemble frames whose bytes arrive split at
// arbitrary positions — including batch boundaries and heartbeats
// interleaved mid-stream by the asynchronous liveness sender.

import (
	"bytes"
	"net"
	"testing"
	"time"
)

// memConn is an in-memory net.Conn half: writes append to wr, reads
// serve from rd in chunks of at most chunk bytes (0 = unlimited),
// exercising short reads the way a congested socket would.
type memConn struct {
	wr    bytes.Buffer
	rd    *bytes.Reader
	chunk int
}

func (c *memConn) Write(b []byte) (int, error) { return c.wr.Write(b) }
func (c *memConn) Read(b []byte) (int, error) {
	if c.chunk > 0 && len(b) > c.chunk {
		b = b[:c.chunk]
	}
	return c.rd.Read(b)
}
func (c *memConn) Close() error                       { return nil }
func (c *memConn) LocalAddr() net.Addr                { return nil }
func (c *memConn) RemoteAddr() net.Addr               { return nil }
func (c *memConn) SetDeadline(t time.Time) error      { return nil }
func (c *memConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *memConn) SetWriteDeadline(t time.Time) error { return nil }

// testFrames is a representative protocol slice: two round batches
// (one empty — zero-payload frames must survive batching too), a
// gather, a tally, and the stream-checksum frame sealing them.
func writeTestFrames(t *testing.T, p *peerConn) {
	t.Helper()
	envs := make([]byte, 3*envelopeSize)
	for i := 0; i < 3; i++ {
		putEnvelope(envs[i*envelopeSize:], envelope{to: int32(i), m: Message{From: int32(10 + i), Kind: MsgCenter, A: 1, B: 2, C: 3}})
	}
	var tally [tallySize]byte
	putTally(tally[:], RoundTally{Messages: 3, Words: 9})
	gather := []byte{1, 0, 0, 0, 2, 0, 0, 0}
	for _, fr := range []struct {
		h       frameHeader
		payload []byte
	}{
		{frameHeader{Type: frameRound, From: 1, To: 2, Round: 7, Count: 3}, envs},
		{frameHeader{Type: frameRound, From: 1, To: 0, Round: 7, Count: 0}, nil},
		{frameHeader{Type: frameGather, From: 1, Round: 7, Count: 2}, gather},
		{frameHeader{Type: frameTally, From: 1, Round: 7}, tally[:]},
	} {
		if err := p.writeFrame(fr.h, fr.payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.writeCheck(7); err != nil {
		t.Fatal(err)
	}
}

// TestBatchedFlushBytesIdentical: batching is a syscall optimization,
// not a format change — the flushed stream must be byte-for-byte the
// per-frame concatenation, WireBytes must equal the stream length, and
// one more flush must be a no-op.
func TestBatchedFlushBytesIdentical(t *testing.T) {
	tr := &NetTransport{timeout: time.Second}
	conn := &memConn{}
	p := newPeerConn(tr, conn)
	writeTestFrames(t, p)
	if conn.wr.Len() != 0 {
		t.Fatalf("frames hit the wire before flush: %d bytes", conn.wr.Len())
	}
	if err := p.flush(); err != nil {
		t.Fatal(err)
	}
	got := append([]byte(nil), conn.wr.Bytes()...)

	// The reference stream: the same frames written through an
	// independent peer, flushed one at a time (per-frame protocol).
	refTr := &NetTransport{timeout: time.Second}
	refConn := &memConn{}
	ref := newPeerConn(refTr, refConn)
	writeTestFrames(t, ref)
	if err := ref.flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, refConn.wr.Bytes()) {
		t.Fatalf("batched stream differs from reference: %d vs %d bytes", len(got), refConn.wr.Len())
	}
	if tr.wireBytes != int64(len(got)) {
		t.Fatalf("WireBytes %d != stream length %d", tr.wireBytes, len(got))
	}
	if len(p.pending) != 0 || p.pendingBytes != 0 || p.hdrUsed != 0 {
		t.Fatalf("flush left pending state: %d slices, %d bytes, %d headers", len(p.pending), p.pendingBytes, p.hdrUsed)
	}
	before := conn.wr.Len()
	if err := p.flush(); err != nil {
		t.Fatal(err)
	}
	if conn.wr.Len() != before {
		t.Fatal("empty flush wrote bytes")
	}
}

// TestAsyncFlushBytesIdentical: the mesh plane's double-buffered
// writer is a scheduling change, not a format change — handing batches
// to the writer goroutine round after round must put the exact same
// bytes on the wire, in the same order, as the synchronous per-flush
// protocol, and a sync flush after async traffic must first drain the
// writer so per-connection byte order is preserved.
func TestAsyncFlushBytesIdentical(t *testing.T) {
	tr := &NetTransport{timeout: time.Second}
	conn := &memConn{}
	p := newPeerConn(tr, conn)
	const rounds = 20 // > asyncWriterDepth, so enqueue back-pressure and batch recycling both run
	for r := 0; r < rounds; r++ {
		writeTestFrames(t, p)
		if err := p.flushAsync(); err != nil {
			t.Fatal(err)
		}
	}
	writeTestFrames(t, p) // final batch goes through the sync path, which must drain first
	if err := p.flush(); err != nil {
		t.Fatal(err)
	}
	p.stopWriter()
	got := append([]byte(nil), conn.wr.Bytes()...)

	refTr := &NetTransport{timeout: time.Second}
	refConn := &memConn{}
	ref := newPeerConn(refTr, refConn)
	for r := 0; r < rounds+1; r++ {
		writeTestFrames(t, ref)
		if err := ref.flush(); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got, refConn.wr.Bytes()) {
		t.Fatalf("async stream differs from sync reference: %d vs %d bytes", len(got), refConn.wr.Len())
	}
	if tr.wireBytes != refTr.wireBytes {
		t.Fatalf("WireBytes %d != sync reference %d", tr.wireBytes, refTr.wireBytes)
	}
}

// TestReadFrameReassemblesChunkedBatch: the receive side must
// reconstruct every frame of a batch regardless of how the kernel
// fragments it — byte at a time, split inside headers, split inside
// payloads — with heartbeats spliced between frames (the liveness
// sender writes them under wmu whenever it fires, so they can land at
// any frame boundary of the stream), and the sealed checksum must
// still verify.
func TestReadFrameReassemblesChunkedBatch(t *testing.T) {
	wtr := &NetTransport{timeout: time.Second}
	wconn := &memConn{}
	w := newPeerConn(wtr, wconn)
	writeTestFrames(t, w)
	if err := w.flush(); err != nil {
		t.Fatal(err)
	}
	stream := wconn.wr.Bytes()

	// Splice a heartbeat before the batch and between the two round
	// frames (offset: header + 3 envelopes + the empty frame's header).
	var hb [headerSize]byte
	putHeader(hb[:], frameHeader{Type: frameHeartbeat})
	cut := headerSize + 3*envelopeSize + headerSize
	spliced := append([]byte(nil), hb[:]...)
	spliced = append(spliced, stream[:cut]...)
	spliced = append(spliced, hb[:]...)
	spliced = append(spliced, stream[cut:]...)

	for _, chunk := range []int{1, 3, 7, headerSize - 1, 1 << 16} {
		rtr := &NetTransport{timeout: time.Second}
		rconn := &memConn{rd: bytes.NewReader(spliced), chunk: chunk}
		r := newPeerConn(rtr, rconn)

		h, payload, err := r.readFrame(frameRound)
		if err != nil {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
		if h.Count != 3 || len(payload) != 3*envelopeSize {
			t.Fatalf("chunk %d: first round frame %+v len %d", chunk, h, len(payload))
		}
		if env := parseEnvelope(payload[envelopeSize:]); env.to != 1 || env.m.From != 11 {
			t.Fatalf("chunk %d: envelope mangled: %+v", chunk, env)
		}
		if h, payload, err = r.readFrame(frameRound); err != nil || h.Count != 0 || len(payload) != 0 {
			t.Fatalf("chunk %d: empty round frame: %+v len %d err %v", chunk, h, len(payload), err)
		}
		if payload == nil {
			t.Fatalf("chunk %d: empty payload must be non-nil (duplicate-batch detection)", chunk)
		}
		if h, payload, err = r.readFrame(frameGather); err != nil || h.Count != 2 {
			t.Fatalf("chunk %d: gather frame: %+v err %v", chunk, h, err)
		}
		if ids := parseInt32s(payload); len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
			t.Fatalf("chunk %d: gather payload %v", chunk, ids)
		}
		if _, payload, err = r.readFrame(frameTally); err != nil {
			t.Fatalf("chunk %d: tally frame: %v", chunk, err)
		}
		if tl := parseTally(payload); tl.Messages != 3 || tl.Words != 9 {
			t.Fatalf("chunk %d: tally mangled: %+v", chunk, tl)
		}
		if err := r.readCheck(7); err != nil {
			t.Fatalf("chunk %d: stream checksum across chunked reassembly: %v", chunk, err)
		}
	}
}
