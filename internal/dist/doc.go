// Package dist simulates the paper's synchronous distributed model and
// implements its two distributed results on top of an explicit
// CONGEST-style round engine:
//
//   - BaswanaSen (Theorem 2 / Corollary 3): the randomized Baswana–Sen
//     (2k−1)-spanner [Baswana & Sen, Random Struct. Algorithms 2007]
//     expressed as synchronous rounds over per-vertex mailboxes. Cluster
//     centers sample themselves, broadcast the outcome down their
//     cluster trees (radius grows by one per iteration, hence O(log² n)
//     rounds total), neighbors exchange cluster ids, and every vertex
//     decides locally from its mailbox — never by peeking at remote
//     state. Messages carry O(1) words of O(log n) bits each.
//
//   - Sparsify (Algorithm 2 / Theorem 5): spectral sparsification by
//     ⌈log₂ρ⌉ iterations of the Algorithm 1 sampling round, each round
//     composing t independent Baswana–Sen spanner layers into a
//     t-bundle (Definition 1) and then keeping every off-bundle edge
//     with probability 1/4 at weight 4w. The whole pipeline runs
//     through one Engine, so the returned Stats ledger is the total
//     communication bill of the distributed algorithm: O(t·log²n·log ρ)
//     rounds and O(m·log n) words per spanner layer, i.e. near-linear
//     total communication.
//
// The decision logic mirrors the shared-memory implementation in
// internal/spanner and internal/core exactly (same split-stream seeds,
// same tie-breaking), so for equal seeds the distributed algorithms
// produce bit-identical outputs to spanner.Compute and
// core.ParallelSparsify. The simulation therefore adds exactly one
// thing: the communication ledger (Stats) that Theorems 2 and 5 bound,
// counted message by message as the rounds execute.
//
// # Transports and sharding
//
// The engine is split from the medium that carries its messages by the
// Transport interface (transport.go): the engine runs the synchronous
// schedule (compute phase → EndRound barrier → next round) and keeps
// the ledger, while the transport stages, routes, and tallies the
// traffic through the shared exchange core (exchange.go) — per
// (staging shard, recipient shard) buckets drained in staging-shard
// order at every barrier. Three transports ship:
//
//   - MemTransport (the default, NewEngine): the exchange core on
//     parutil's in-process worker partition with a single ownership
//     shard — the original single-process simulation.
//
//   - ShardedTransport (NewShardedEngine, BaswanaSenSharded,
//     SparsifySharded): the vertex set is partitioned across P shards,
//     each served by one worker goroutine during compute phases;
//     messages cross the pair buckets at the round barrier, with
//     traffic whose endpoints live on different shards billed
//     separately as Stats.CrossShardMessages/Words — the wire volume a
//     multi-machine deployment would pay.
//
//   - NetTransport (ListenNet/JoinNet, SparsifyPartition,
//     BaswanaSenPartition, RunNetCoordinator/RunNetWorker): each shard
//     is a separate OS process holding only its partition of the graph
//     (graph.Partition: its shard's adjacency plus boundary edges),
//     and the pair buckets become batched fixed-size binary frames
//     (wire.go) flushed over TCP at every barrier. Shard 0 is the
//     coordinator: it relays frames between workers by header without
//     decoding payloads (a star; full mesh is future work) and runs
//     the round-tally handshake — every process ships the tally of
//     what it staged, the coordinator reduces, and every engine bills
//     the global tally, so the ledger is identical on every process.
//     Loop-control values a single process would read off shared
//     memory (the broadcast-wave depth, bundle-loop progress, the
//     sorted owned bundle-id union for renumbering) travel as small
//     unbilled collectives (AllMaxInt32/AllOrBits/AllGatherInt32s)
//     piggybacked on the barrier.
//
// Per-worker memory is O(n + m_incident) words on a partition run —
// enforced, not aspirational. A partition view (view.go) stores its
// edges, masks, and per-round scratch DENSELY over local ids
// [0, m_incident), keeping only a sorted global-id map for the wire
// boundary: message ports, add/drop notices, and the pure seed-derived
// sampling coins are keyed by global id, so frames and tie-breaks stay
// globally consistent and outputs bit-identical while no per-edge
// array anywhere scales with the global m. Even the end-of-round
// renumbering merges only the O(bundle-size) sorted list of in-bundle
// edge ids (each contributed by its owning shard) instead of a Θ(m)
// mask. The memory regression suite (memory_test.go) pins the bound
// statically (table lengths), dynamically (peak footprint of a real
// loopback run, gathered per process), and at the allocator; E13
// reports it as the wkrPeakWords column.
//
// The staging discipline that makes one algorithm run on all three:
// payloads carrying real remote state (MsgCenter, MsgNewCenter,
// MsgAdd, MsgDrop) are staged by the sender's owner and genuinely
// cross the wire for boundary edges, while payloads that are pure
// functions of the seed (MsgSampled, MsgKeep) are staged — and
// re-derived — by the recipient's owner, yet billed identically.
// Decision notices (MsgAdd/MsgDrop) are folded back from the mailboxes
// after each barrier, which is a no-op re-application in one process
// and the boundary-edge knowledge transfer across processes.
//
// Transports are interchangeable by construction: outputs are
// bit-identical for equal seeds at any shard count and any GOMAXPROCS
// (the algorithms fold their mailboxes with order-independent
// reductions, so bucket drain order is unobservable), and the ledger's
// Rounds, Messages, Words, and per-phase rows are transport-independent
// — the cross-transport matrix in equivalence_test.go pins both
// properties over {Mem, Sharded, Net-loopback} × shard counts ×
// {spanner, sparsify}, transport_test.go and net_test.go pin the
// transport-specific ledger splits and protocol behavior, and
// cmd/distworker's test pins the OS-process version. Experiments E12
// and E13 measure the cost of distribution (shard-count scaling;
// in-memory vs sharded vs network wall-clock, wire volume, and
// per-worker footprint).
package dist
