// Package dist simulates the paper's synchronous distributed model and
// implements its two distributed results — the Baswana–Sen spanner
// (Theorem 2 / Corollary 3) and spectral sparsification (Algorithm 2 /
// Theorem 5) — behind one Engine/Job/TransportSpec surface that makes
// the paper's central promise an API shape: ONE algorithm value runs
// unchanged on every execution substrate.
//
// # The two axes
//
// A Job is an algorithm as a value: a registry name, a wire schema for
// its parameters, the per-round body executed over each process's
// partition view, and the reducer that assembles the shards' partial
// results. Two jobs are built in, one public entry point per
// algorithm:
//
//   - SpannerJob(k, seed) — the randomized Baswana–Sen (2k−1)-spanner
//     [Baswana & Sen 2007] expressed as synchronous rounds over
//     per-vertex mailboxes: cluster centers sample themselves,
//     broadcast the outcome down their cluster trees (radius grows by
//     one per iteration, hence O(log² n) rounds total), neighbors
//     exchange cluster ids, and every vertex decides locally from its
//     mailbox — never by peeking at remote state. Messages carry O(1)
//     words of O(log n) bits each.
//
//   - SparsifyJob(eps, rho, cfg) — ⌈log₂ρ⌉ iterations of the Algorithm
//     1 sampling round, each composing t Baswana–Sen layers into a
//     t-bundle (Definition 1) and keeping every off-bundle edge with
//     probability 1/4 at weight 4w. The returned Stats ledger is the
//     total communication bill Theorem 5 bounds.
//
// A TransportSpec is a value describing how the job's rounds execute:
// Mem() (single-process, the default), Sharded(p) (p worker
// goroutines), Loopback(p) / Mesh(p) (coordinator + p−1 worker
// goroutines over real loopback TCP sockets, on the star and full-mesh
// data planes respectively), and the real multi-process pair
// Net(NetConfig)/Worker(WorkerConfig), whose Mesh fields select the
// full-mesh plane. Specs carry no connections; Run materializes,
// drives, and tears down the transport they describe.
//
// Engine binds a spec to an input — NewEngine for a full graph,
// NewPartitionEngine for one shard loaded from a partition file
// (graphio.ReadPartition) — and Run(engine, job) composes the two axes
// and returns a typed Result: the job's assembled Output plus the
// run-wide honesty counters (Stats, PeakViewWords, WireBytes).
//
// In-process:
//
//	g := gen.Gnp(1000, 0.02, 7)
//	res, err := dist.Run(dist.NewEngine(dist.Sharded(4), g),
//	    dist.SparsifyJob(0.75, 4, core.DefaultConfig(7)))
//	// res.Output is the sparsifier, res.Stats the Theorem 5 ledger.
//
// Loopback — the full multi-process protocol (partition views, binary
// frames on real sockets, the round-tally handshake, the result
// gather) inside one process:
//
//	res, err := dist.Run(dist.NewEngine(dist.Loopback(4), g),
//	    dist.SpannerJob(0, 7))
//	// res.Output.G is the spanner; res.WireBytes the socket traffic.
//
// Real multi-process — one coordinator process and P−1 workers, each
// holding only its shard (see cmd/distworker for the CLI form):
//
//	// coordinator process (shard 0):
//	spec := dist.Net(dist.NetConfig{Listen: ":9000", Shards: 4,
//	    OnListen: func(addr string) { /* publish addr */ }})
//	res, err := dist.Run(dist.NewPartitionEngine(spec, part0), job)
//
//	// each worker process s in 1..3:
//	wspec := dist.Worker(dist.WorkerConfig{Join: addr, Shard: s, Shards: 4})
//	_, err := dist.Run(dist.NewPartitionEngine(wspec, partS), job)
//
// The coordinator broadcasts the job's name and parameter block (the
// wire schema pinned by TestJobWireSchemas), so workers adopt — and
// cross-check — the exact same run; a worker started for a different
// job, build, or graph fails loudly before any round executes.
//
// # Equivalence
//
// The decision logic mirrors the shared-memory implementation in
// internal/spanner and internal/core exactly (same split-stream seeds,
// same tie-breaking), so for equal seeds the distributed outputs are
// bit-identical to spanner.Compute and core.ParallelSparsify — and
// identical across every TransportSpec at any shard count and any
// GOMAXPROCS, with an identical Stats ledger (Rounds, Messages, Words,
// per-phase rows). Only the honesty counters of distribution vary: the
// CrossShard split, WireBytes, and PeakViewWords. The cross-transport
// matrix in equivalence_test.go pins all of it through the single
// Run entry point.
//
// # Under the hood
//
// The round engine (rounds.go) runs the synchronous schedule — compute
// phase → EndRound barrier → next round — and keeps the ledger; the
// Transport interface (transport.go) decides how staged messages
// travel, with all three implementations sharing the exchange core
// (exchange.go): per (staging shard, recipient shard) buckets drained
// in staging-shard order at every barrier. The staging discipline that
// makes one algorithm run everywhere: payloads carrying real remote
// state (MsgCenter, MsgNewCenter, MsgAdd, MsgDrop) are staged by the
// sender's owner and genuinely cross the wire for boundary edges,
// while payloads that are pure functions of the seed (MsgSampled,
// MsgKeep) are staged — and re-derived — by the recipient's owner, yet
// billed identically. Decision notices fold back from mailboxes after
// each barrier: a no-op re-application in one process, the
// boundary-edge knowledge transfer across processes.
//
// # Topology: star and full mesh
//
// On the network path (net.go, wire.go) each shard is an OS process
// and the buckets become batched fixed-size binary frames flushed over
// TCP at every barrier. Two data planes exist:
//
//   - Star (Loopback, Net/Worker): every worker holds one connection,
//     to the shard-0 coordinator, which relays worker↔worker round
//     batches — each such batch crosses the wire twice (origin →
//     coordinator, coordinator → destination) and the coordinator's
//     socket is the fleet's hot spot. Minimal connection count (P−1),
//     nothing to bring up beyond the joins; the right default for
//     small fleets and for tests.
//
//   - Full mesh (Mesh, NetConfig.Mesh + WorkerConfig.Mesh): workers
//     additionally dial each other directly (each binds a peer
//     listener, announces it during the join handshake, and the
//     coordinator broadcasts the address book at the top of every
//     attempt; lower shard dials, higher shard accepts, so bring-up is
//     acyclic and cannot deadlock). Worker↔worker batches travel
//     exactly once — Result.DataWireBytes is exactly half the star's
//     for the same run — and the hub carries only control, tally, and
//     collective frames. O(P²) connections; the right choice when the
//     relayed volume or the coordinator's socket is the bottleneck.
//     At P ≤ 2 there is no worker↔worker traffic and the mesh runs the
//     star protocol verbatim.
//
// The planes are byte-compatible where they overlap (the star's frame
// stream is untouched by mesh support; the mesh flag rides an
// otherwise-unused header field of the hello/welcome handshake, which
// rejects a mixed fleet loudly). Output, Stats, and the round schedule
// are identical on both — only WireBytes, DataWireBytes, and the wall
// clock differ, which E13's star-vs-mesh sweep and the goldens in
// wirebytes_golden_test.go pin.
//
// The barrier doubles as the round-tally handshake — every process
// ships the tally of what it staged, the coordinator reduces, every
// engine bills the global tally — so the ledger is identical on every
// process. Loop-control values a single process reads off shared
// memory travel as small unbilled collectives
// (AllMaxInt32/AllOrBits/AllGatherInt32s) piggybacked on the barrier.
//
// # Wire batching and buffer reuse
//
// The wire layer is built for raw speed without touching the format.
// writeFrame does not write: it appends the frame's header (from a
// chunked arena whose slices stay stable under growth) and payload to
// the connection's pending net.Buffers, computing CRC-32C and
// WireBytes at append time so accounting is byte-identical to the
// per-frame protocol. flush hands the whole batch to the kernel as one
// vectored write — a round barrier costs one syscall per peer instead
// of one per frame.
//
// On the mesh plane the per-peer round batches are double-buffered:
// flushAsync hands the sealed batch to the connection's writer
// goroutine and returns immediately, so round r's bytes are on the
// wire while round r+1 computes, and pooled payload buffers are
// reclaimed only after the write completes (mesh.go). The protocol
// invariant this preserves is strict write-then-read alternation PER
// PEER — a process never reads from a peer before everything it owes
// that peer is queued in order on that peer's connection; whether the
// bytes leave synchronously (star, collectives, the hub tally) or on
// the writer goroutine (mesh data batches) cannot deadlock the
// barrier, because each side's reads are against traffic the other
// side has already queued. A synchronous flush on a connection first
// drains its writer, so per-connection byte order is exactly the
// per-frame protocol's. Heartbeats bypass the batch and may hit the
// wire ahead of pending frames, which is safe because readFrame
// consumes them transparently at any stream position (batch_test.go
// pins byte-identity for both flush paths and chunked reassembly, and
// the WireBytes goldens in wirebytes_golden_test.go pin the totals
// across the batching change).
//
// Payload buffers cycle through a per-transport size-classed freelist
// (getBuf/putBuf): reads draw from it, relays retire forwarded buffers
// back to it at the flush that writes them, and blob payloads — which
// escape to the application — are never pooled. Above the wire, the
// round engine keeps scratch freelists for the spanner's per-layer
// mask and label arrays (rounds.go), and the coordinator's pairwise
// gather merge runs its per-level zips in parallel goroutines once the
// lists are large enough. The allocation budget in memory_test.go pins
// the pooling at the allocator; E15 gates the wall-clock at ≥10^7
// edges.
//
// # Failure model and recovery
//
// Liveness is heartbeat-based: each connection direction carries a
// heartbeat every timeout/4 while the peer computes, so a slow round
// never trips the per-frame deadline while a dead peer is detected
// within one timeout (a killed process immediately, via EOF). Data
// frames feed a running CRC-32C per direction, cross-checked at every
// round barrier before any payload is decoded, and every collective
// frame carries a per-attempt sequence number validated on both sides
// — corrupted or desynchronized traffic is rejected, never
// interpreted.
//
// Worker death is recovered by deterministic replay. Every round is a
// pure function of (seed, partition, round number), so the coordinator
// checkpoints only the small gathered inter-epoch state — the sorted
// in-bundle edge-id list per sampling epoch plus a ledger snapshot,
// O(bundle) words, never Θ(m) (checkpoint.go). When a worker fails and
// NetConfig.Respawn is set, the coordinator rolls the survivors back
// (rollback frames, acked), respawns the dead shard from its partition
// file, re-broadcasts the checkpoint, and every process re-runs the
// attempt: the replay fast-forwards through the checkpointed epochs
// without a single network round and resumes live execution
// bit-identically — kill -9 a worker mid-run and the final output and
// ledger equal the failure-free run's (the recovery suite and
// cmd/distworker's kill-recover tests pin this, on both data planes).
// Recovery survives the mesh topology: a dead worker takes its direct
// links down with it, survivors report the dead peer on their hubs
// (frameFault — the coordinator only probes the connection it is
// currently reading, so without the report a death whose hub frames
// all arrived would deadlock the fleet; see meshFail) and park for the
// hub's rollback frame, the rollback ack tears every link down, the
// respawned shard announces a fresh peer listener as it rejoins, and
// the next attempt rebuilds the mesh from the re-broadcast address
// book.
//
// Coordinator death is survivable too when failover is armed
// (NetConfig.Failover + WorkerConfig.Failover on every process, see
// failover.go). Every worker pre-binds a standby hub listener and
// announces it at the join handshake; the coordinator broadcasts the
// assembled standby address book right after the checkpoint at the top
// of every attempt, so each worker always holds the same book, the
// same raw job-header bytes, and the same checkpoint. When a worker
// loses its hub connection, the election is a pure function of that
// shared book — the lowest-numbered shard with a standby address wins,
// no votes, no split brain — and the winner adopts shard 0: its
// standby listener becomes the hub, it re-broadcasts the stashed
// header VERBATIM plus the checkpoint, asks the host to respawn its
// vacated shard (WorkerConfig.Respawn), and runs the normal recovery
// loop while the other survivors rejoin at the book address. Replay is
// deterministic, so kill -9 the COORDINATOR mid-run and the output and
// ledger still equal the failure-free run's, on both data planes
// (failover_test.go and cmd/distworker's coordinator-kill drills).
//
// The same broadcast checkpoint powers elastic resize between runs: a
// checkpoint blob delivered to NetConfig.OnCheckpoint can seed
// NetConfig.Resume on a NEW fleet with a different shard count, and
// the resumed run fast-forwards the checkpointed epochs and finishes
// with output bit-identical to the original (the Stats ledger's
// CrossShard split legitimately reflects the partition actually run).
//
// Protocol violations and checksum mismatches remain fatal — electing
// or replaying past a logic bug would only reproduce it.
//
// Per-worker memory is O(n + m_incident) words on a partition run —
// enforced, not aspirational. A partition view (view.go) stores edges,
// masks, and per-round scratch densely over local ids [0, m_incident)
// with only a sorted global-id map at the wire boundary, and even the
// end-of-round renumbering gathers only the O(bundle-size) sorted list
// of in-bundle edge ids. The memory regression suite (memory_test.go)
// pins the bound statically, dynamically (Result.PeakViewWords of real
// loopback runs), and at the allocator; E13 reports it per worker.
package dist
