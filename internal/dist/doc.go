// Package dist simulates the paper's synchronous distributed model and
// implements its two distributed results on top of an explicit
// CONGEST-style round engine:
//
//   - BaswanaSen (Theorem 2 / Corollary 3): the randomized Baswana–Sen
//     (2k−1)-spanner [Baswana & Sen, Random Struct. Algorithms 2007]
//     expressed as synchronous rounds over per-vertex mailboxes. Cluster
//     centers sample themselves, broadcast the outcome down their
//     cluster trees (radius grows by one per iteration, hence O(log² n)
//     rounds total), neighbors exchange cluster ids, and every vertex
//     decides locally from its mailbox — never by peeking at remote
//     state. Messages carry O(1) words of O(log n) bits each.
//
//   - Sparsify (Algorithm 2 / Theorem 5): spectral sparsification by
//     ⌈log₂ρ⌉ iterations of the Algorithm 1 sampling round, each round
//     composing t independent Baswana–Sen spanner layers into a
//     t-bundle (Definition 1) and then keeping every off-bundle edge
//     with probability 1/4 at weight 4w. The whole pipeline runs
//     through one Engine, so the returned Stats ledger is the total
//     communication bill of the distributed algorithm: O(t·log²n·log ρ)
//     rounds and O(m·log n) words per spanner layer, i.e. near-linear
//     total communication.
//
// The decision logic mirrors the shared-memory implementation in
// internal/spanner and internal/core exactly (same split-stream seeds,
// same tie-breaking), so for equal seeds the distributed algorithms
// produce bit-identical outputs to spanner.Compute and
// core.ParallelSparsify. The simulation therefore adds exactly one
// thing: the communication ledger (Stats) that Theorems 2 and 5 bound,
// counted message by message as the rounds execute.
//
// # Transports and sharding
//
// The engine is split from the medium that carries its messages by the
// Transport interface (transport.go): the engine runs the synchronous
// schedule (compute phase → EndRound barrier → next round) and keeps
// the ledger, while the transport stages, routes, and tallies the
// traffic. Two transports ship:
//
//   - MemTransport (the default, NewEngine): one staging slice per
//     recipient, flipped wholesale into mailboxes at the barrier — the
//     original single-process simulation, extracted unchanged.
//
//   - ShardedTransport (NewShardedEngine, BaswanaSenSharded,
//     SparsifySharded): the vertex set is partitioned across P shards,
//     each served by one worker goroutine during compute phases;
//     messages are routed through per-shard-pair buffers and drained at
//     the round barrier, with traffic whose endpoints live on different
//     shards billed separately as Stats.CrossShardMessages/Words — the
//     wire volume a multi-machine deployment would pay.
//
// Transports are interchangeable by construction: outputs are
// bit-identical for equal seeds at any shard count and any GOMAXPROCS
// (the algorithms fold their mailboxes with order-independent
// reductions, so buffer drain order is unobservable), and the ledger's
// Rounds, Messages, Words, and per-phase rows are transport-independent
// — the regression tests in transport_test.go pin both properties. A
// future network transport (shard = machine, pair buffer = socket)
// slots in behind the same interface without touching the algorithms;
// experiment E12 measures what it would cost by sweeping shard counts
// and reporting wall-clock speedup and cross-shard word volume.
package dist
