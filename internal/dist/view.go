package dist

import "repro/internal/graph"

// view is one process's materialization of the working graph during a
// distributed run. A full view (single-process transports) holds every
// edge; a partition view (network transport) holds only the edges
// incident to the process's shard — its own adjacency plus boundary
// edges — stored in a global-id-indexed sparse table so that edge ids,
// masks, and the pure seed-derived sampling functions stay globally
// consistent without any id translation.
//
// Memory honesty: global indexing is what keeps every decision
// bit-identical to the single-process run, but it costs every worker
// Θ(M) global-length allocations per round regardless of P — the
// sparse edge table (24 bytes per global edge id, only incident
// entries populated) plus the per-edge masks (dead, inSpanner,
// inBundle, one byte each). Only the CSR adjacency (the 2·slots
// structure the compute loops actually walk) shrinks to the shard's
// O((n + m_incident)/P) share today. Compacting the table and masks to
// local ids, leaving only an O(m_incident) id map, is the named next
// step in ROADMAP.md.
type view struct {
	g   *graph.Graph
	adj *graph.Adjacency
	// ids lists the incident global edge ids in increasing order; nil
	// means the view is full (every edge materialized).
	ids []int32
}

// newFullView wraps a whole graph (single-process transports).
func newFullView(g *graph.Graph) *view {
	return &view{g: g, adj: graph.NewAdjacency(g)}
}

// newPartView builds a partition view over n vertices and m global
// edges from the incident slice (ids increasing, edges parallel).
func newPartView(n, m int, ids []int32, edges []graph.Edge) *view {
	sparse := make([]graph.Edge, m)
	for k, id := range ids {
		sparse[id] = edges[k]
	}
	g := graph.FromEdges(n, sparse)
	return &view{g: g, adj: graph.NewAdjacencySubset(n, sparse, ids), ids: ids}
}

// full reports whether every edge is materialized.
func (w *view) full() bool { return w.ids == nil }

// incidentCount returns the number of locally materialized edges.
func (w *view) incidentCount() int {
	if w.full() {
		return len(w.g.Edges)
	}
	return len(w.ids)
}

// forEachIncident calls fn for every locally materialized edge id, in
// increasing order.
func (w *view) forEachIncident(fn func(eid int32)) {
	if w.full() {
		for i := range w.g.Edges {
			fn(int32(i))
		}
		return
	}
	for _, id := range w.ids {
		fn(id)
	}
}
