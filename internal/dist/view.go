package dist

import (
	"fmt"

	"repro/internal/graph"
)

// view is one process's materialization of the working graph during a
// distributed run. A full view (single-process transports) holds every
// edge; a partition view (network transport) holds only the edges
// incident to the process's shard — its own adjacency plus boundary
// edges.
//
// Layout: edges are stored DENSELY over local ids [0, localCount()),
// with a sorted ids map translating local→global (globalOf) and
// global→local (localOf, binary search). The CSR adjacency's EID slots
// carry local ids, so every per-edge array the compute loops allocate
// (masks, scratch, the edge table itself) is O(m_incident) words; the
// global id space survives only at the wire boundary — message Port
// and MsgAdd/MsgDrop payloads carry global ids, and the pure
// seed-derived sampling functions are keyed by global id — which is
// what keeps frames, seeds, and tie-breaks consistent across shards
// and bit-identical to the single-process run. On a full view local
// and global ids coincide and every translation is the identity.
//
// Memory accounting (the bound the regression tests in memory_test.go
// pin, and E13 reports per worker): a view's edge-indexed tables cost
// tableWords() = O(m_incident) words, per-vertex arrays cost O(n), and
// no per-round allocation anywhere in spanner.go/sparsify.go exceeds
// O(n + m_incident) — a worker holding shard s of a P-way split pays
// for its incident edges (own share plus boundary), never for the
// global edge count. The one global-sized quantity left is time, not
// memory: the renumbering walk at the end of a sampling round scans
// the global id space with O(1) state plus the gathered bundle-id list
// (O(bundle size) words, transient).
type view struct {
	// n and m are the GLOBAL vertex count and edge-id-space size; local
	// edge ids index edges, global ids live in [0, m).
	n, m int
	// lo and hi delimit the owned vertex range [lo, hi) (the whole
	// range on a full view) — ownership decides which shard contributes
	// a boundary edge to cross-shard collectives.
	lo, hi int
	// edges is the dense local edge table, indexed by local id.
	edges []graph.Edge
	// adj is the CSR adjacency; EID slots carry LOCAL ids.
	adj *graph.Adjacency
	// ids lists the incident global edge ids in increasing order,
	// parallel to edges; nil means the view is full (local == global).
	ids []int32
}

// newFullView wraps a whole graph (single-process transports).
func newFullView(g *graph.Graph) *view {
	return &view{
		n: g.N, m: len(g.Edges),
		lo: 0, hi: g.N,
		edges: g.Edges,
		adj:   graph.NewAdjacency(g),
	}
}

// newPartView builds a partition view over n vertices, m global edge
// ids, and the owned vertex range [lo, hi), from the incident slice
// (ids increasing and in [0, m), edges parallel). The slices are used
// directly, so the view's footprint is the caller's slices plus an
// O(n + m_incident) adjacency — never Θ(m).
func newPartView(n, m, lo, hi int, ids []int32, edges []graph.Edge) *view {
	if m > graph.MaxEdges {
		panic(fmt.Sprintf("dist: %d global edge ids exceed the int32 id space (max %d)", m, graph.MaxEdges))
	}
	if len(ids) != len(edges) {
		panic(fmt.Sprintf("dist: partition view has %d ids but %d edges", len(ids), len(edges)))
	}
	return &view{
		n: n, m: m,
		lo: lo, hi: hi,
		edges: edges,
		adj:   graph.NewAdjacencyDense(n, edges),
		ids:   ids,
	}
}

// full reports whether every edge is materialized (local ids == global
// ids).
func (w *view) full() bool { return w.ids == nil }

// localCount returns the number of locally materialized edges — the
// length of every per-edge array built over this view.
func (w *view) localCount() int { return len(w.edges) }

// globalOf translates a local edge id to its global id.
func (w *view) globalOf(lid int32) int32 {
	if w.ids == nil {
		return lid
	}
	return w.ids[lid]
}

// localOf translates a global edge id to the local id materializing
// it. The id must be incident to this view: every caller translates an
// id that arrived over an incident edge (a message Port or an
// add/drop notice), so absence is a partition-protocol violation, not
// a recoverable condition.
func (w *view) localOf(gid int32) int32 {
	if w.ids == nil {
		return gid
	}
	lo, hi := 0, len(w.ids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if w.ids[mid] < gid {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(w.ids) || w.ids[lo] != gid {
		panic(fmt.Sprintf("dist: global edge id %d is not incident to this partition view", gid))
	}
	return int32(lo)
}

// otherEnd returns the endpoint of local edge lid that is not v.
func (w *view) otherEnd(lid, v int32) int32 {
	e := w.edges[lid]
	if e.U == v {
		return e.V
	}
	return e.U
}

// ownsVertex reports whether v lies in the owned range [lo, hi).
func (w *view) ownsVertex(v int32) bool { return int(v) >= w.lo && int(v) < w.hi }

// ownsEdge reports whether this view is the primary owner of local
// edge lid (the owner of its U endpoint) — the shard that contributes
// the edge to cross-shard collectives and result gathers, so each
// boundary edge is contributed exactly once.
func (w *view) ownsEdge(lid int32) bool { return w.ownsVertex(w.edges[lid].U) }

// graph materializes the view as a Graph. Only meaningful on a full
// view, where the dense table is the global edge list.
func (w *view) graph() *graph.Graph { return &graph.Graph{N: w.n, Edges: w.edges} }

// tableWords returns the number of words held by the view's
// edge-indexed tables: the dense edge table (3 words per edge), the
// global-id map, and the CSR slot arrays (2 words per slot). This is
// the O(m_incident) quantity the memory regression tests pin and the
// per-worker footprint column of E13 reports; per-vertex O(n) arrays
// (CSR offsets, cluster state) are excluded, as the paper's model
// grants every machine its O(n) share.
func (w *view) tableWords() int {
	return 3*len(w.edges) + len(w.ids) + 2*len(w.adj.Nbr)
}
