package dist

import "repro/internal/parutil"

// Transport is the seam between the round engine and the medium that
// carries messages between rounds. The engine runs the synchronous
// schedule (compute phase → EndRound barrier → next round); the
// transport decides how staged messages physically travel: a single
// in-memory staging area (MemTransport), a vertex-partitioned exchange
// across worker goroutines (ShardedTransport), or a real network
// between processes (NetTransport).
//
// A transport owns two coupled concerns:
//
//   - Messaging: Send stages a message during a round, Recv reads the
//     mailbox delivered by the previous EndRound, and EndRound is the
//     round barrier that flips staged traffic into readable mailboxes
//     and returns the round's traffic tally for the engine's ledger.
//
//   - Execution: ForWorkers partitions a round's compute phase over the
//     transport's workers so that every vertex is visited by the worker
//     that owns it. Keeping execution next to ownership is what makes
//     Send race-free without locks, via the staging discipline of the
//     exchange core (exchange.go): sender-staged kinds are staged by
//     the worker owning Message.From, receiver-staged kinds — whose
//     payloads are pure functions of the seed — by the worker owning
//     the recipient. Payloads always carry snapshot state from the
//     start of the round, so the staging side is unobservable to
//     algorithms.
//
// Concurrency contract: Send may be called only from the worker the
// staging discipline assigns (the owner of Message.From for
// sender-staged kinds, the owner of `to` otherwise) during a
// ForWorkers compute phase, or from any single goroutine outside one.
// Recv(v) may be called only by v's owner during a compute phase, or
// from any single goroutine outside one. EndRound must be called with
// no compute phase in flight.
type Transport interface {
	// Shards returns the ownership partition size: 1 for the in-memory
	// transport, P for the sharded and network ones. Stats.Shards
	// records it.
	Shards() int
	// ShardOf returns the shard that owns vertex v.
	ShardOf(v int32) int
	// Workers returns the execution partition size of ForWorkers. For
	// the sharded and network transports this equals Shards; the
	// in-memory transport uses parutil's grain-adaptive worker count.
	Workers() int
	// ForWorkers runs body(worker, lo, hi) concurrently over a fixed
	// partition of the vertex range, once per worker present in this
	// process. The call is a barrier: it returns only after every local
	// worker finishes. The partition is stable across calls, and each
	// vertex is visited by its owning worker. On the network transport
	// only the process's own shard runs locally — the other workers are
	// other processes executing the same phase.
	ForWorkers(body func(worker, lo, hi int))
	// Send stages m for vertex `to` during round r; it becomes readable
	// via Recv after the EndRound(r) barrier.
	Send(round int, to int32, m Message)
	// Recv returns the messages delivered to v by the last EndRound,
	// i.e. the traffic sent during round-1. The returned slice is
	// recycled — callers must not retain it across two EndRound calls.
	Recv(round int, v int32) []Message
	// EndRound closes round r: staged messages are tallied and become
	// the mailboxes readable until the next EndRound. On the network
	// transport the returned tally is the globally reduced one (the
	// round-tally handshake), so the ledger is identical on every
	// process and to the in-memory transport's.
	EndRound(round int) RoundTally
}

// RoundTally is what one round's traffic contributes to the ledger.
type RoundTally struct {
	Messages int64
	Words    int64
	// MaxMessageWords is the widest single payload of the round.
	MaxMessageWords int
	// CrossShardMessages/Words count the subset of the traffic whose
	// sender and recipient are owned by different shards — the volume a
	// multi-machine deployment would put on the wire. Always zero for
	// single-shard transports.
	CrossShardMessages int64
	CrossShardWords    int64
}

// collectiveTransport is the optional control-plane interface a
// transport implements when its workers live in separate address
// spaces: small synchronous all-reduce operations the algorithms use
// for decisions that a single-process transport reads off shared
// memory (a global max depth, "did any shard make progress?", the
// sorted union of owned bundle-edge ids for renumbering). These are
// barriers, not billed traffic: they model the O(1)-word convergecast
// a real deployment would piggyback on its round barrier, and the
// single-process transports implement them as the identity.
type collectiveTransport interface {
	// AllMaxInt32 returns the maximum of x across all shards.
	AllMaxInt32(x int32) int32
	// AllOrBits returns the bitwise OR of bits across all shards. The
	// slice is reduced in place and returned; all callers must pass
	// equal lengths.
	AllOrBits(bits []uint64) []uint64
	// AllGatherInt32s returns the sorted union of the shards' id
	// lists. Each shard must pass a sorted list, and the lists must be
	// pairwise disjoint (each id contributed by exactly one owner), so
	// the union's length is the sum of the contributions.
	AllGatherInt32s(xs []int32) []int32
}

// MemTransport is the original single-staging-area simulation, now
// running on the shared exchange core with parutil's grain-adaptive
// worker partition for staging rows and a single ownership shard for
// billing. It is the default transport and behaves exactly like the
// pre-Transport engine: one logical staging area, flipped wholesale
// into mailboxes at the round barrier, no cross-shard traffic.
type MemTransport struct {
	x *exchanger
}

// NewMemTransport returns the in-memory transport for n vertices.
func NewMemTransport(n int) *MemTransport {
	return &MemTransport{x: newExchanger(n, parutil.Workers(n), 1)}
}

// Shards reports the single ownership domain of the in-memory medium.
func (t *MemTransport) Shards() int { return 1 }

// ShardOf places every vertex in shard 0.
func (t *MemTransport) ShardOf(int32) int { return 0 }

// Workers returns parutil's grain-adaptive worker count for n vertices.
func (t *MemTransport) Workers() int { return t.x.exec.p }

// ForWorkers runs body over the exchange core's worker partition —
// the same `s*n/p` blocked partition parutil.ForShard would build, but
// frozen at construction so the staging rows of Send and the compute
// partition can never disagree (parutil re-reads GOMAXPROCS per call).
// Execution order matches the pre-Transport engine's callers, so any
// shard-ordered collection built on it is unchanged.
func (t *MemTransport) ForWorkers(body func(worker, lo, hi int)) {
	t.x.forWorkers(body)
}

// Send stages m for vertex `to` in the current round.
func (t *MemTransport) Send(_ int, to int32, m Message) {
	t.x.send(to, m)
}

// Recv returns the messages delivered to v by the last EndRound.
func (t *MemTransport) Recv(_ int, v int32) []Message { return t.x.recv(v) }

// EndRound tallies the staged traffic and drains it into the mailboxes.
func (t *MemTransport) EndRound(int) RoundTally {
	return t.x.drainAll()
}
