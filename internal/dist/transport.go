package dist

import "repro/internal/parutil"

// Transport is the seam between the round engine and the medium that
// carries messages between rounds. The engine runs the synchronous
// schedule (compute phase → EndRound barrier → next round); the
// transport decides how staged messages physically travel: a single
// in-memory staging area (MemTransport), a vertex-partitioned exchange
// across worker goroutines (ShardedTransport), or — the seam this
// interface exists for — a real network between machines.
//
// A transport owns two coupled concerns:
//
//   - Messaging: Send stages a message during a round, Recv reads the
//     mailbox delivered by the previous EndRound, and EndRound is the
//     round barrier that flips staged traffic into readable mailboxes
//     and returns the round's traffic tally for the engine's ledger.
//
//   - Execution: ForWorkers partitions a round's compute phase over the
//     transport's workers so that every vertex is visited by the worker
//     that owns it. Keeping execution next to ownership is what makes
//     Send race-free without locks: all messages for a vertex are
//     staged by that vertex's owner (the engine's receiver-staged
//     discipline — payloads carry snapshot state from the start of the
//     round, so the staging direction is unobservable to algorithms).
//
// Concurrency contract: Send(to, ...) and Recv(v) may be called only
// from the worker that owns the vertex during a ForWorkers compute
// phase, or from any single goroutine outside one. EndRound must be
// called with no compute phase in flight.
type Transport interface {
	// Shards returns the ownership partition size: 1 for the in-memory
	// transport, P for the sharded one. Stats.Shards records it.
	Shards() int
	// ShardOf returns the shard that owns vertex v.
	ShardOf(v int32) int
	// Workers returns the execution partition size of ForWorkers. For
	// the sharded transport this equals Shards; the in-memory transport
	// uses parutil's grain-adaptive worker count instead.
	Workers() int
	// ForWorkers runs body(worker, lo, hi) concurrently, once per
	// worker, over a fixed partition of the vertex range. The call is a
	// barrier: it returns only after every worker finishes. The
	// partition is stable across calls, and each vertex is visited by
	// its owning worker.
	ForWorkers(body func(worker, lo, hi int))
	// Send stages m for vertex `to` during round r; it becomes readable
	// via Recv after the EndRound(r) barrier.
	Send(round int, to int32, m Message)
	// Recv returns the messages delivered to v by the last EndRound,
	// i.e. the traffic sent during round-1. The returned slice is
	// recycled — callers must not retain it across two EndRound calls.
	Recv(round int, v int32) []Message
	// EndRound closes round r: staged messages are tallied and become
	// the mailboxes readable until the next EndRound.
	EndRound(round int) RoundTally
}

// RoundTally is what one round's traffic contributes to the ledger.
type RoundTally struct {
	Messages int64
	Words    int64
	// MaxMessageWords is the widest single payload of the round.
	MaxMessageWords int
	// CrossShardMessages/Words count the subset of the traffic whose
	// sender and recipient are owned by different shards — the volume a
	// multi-machine deployment would put on the wire. Always zero for
	// single-shard transports.
	CrossShardMessages int64
	CrossShardWords    int64
}

// MemTransport is the original single-staging-area simulation: one
// slice of staged messages per recipient, flipped wholesale into
// mailboxes at the round barrier. It is the default transport and the
// behavior-preserving extraction of the pre-Transport engine.
type MemTransport struct {
	n       int
	staged  [][]Message // messages sent this round, staged by recipient
	mailbox [][]Message // messages delivered by the previous EndRound
}

// NewMemTransport returns the in-memory transport for n vertices.
func NewMemTransport(n int) *MemTransport {
	return &MemTransport{
		n:       n,
		staged:  make([][]Message, n),
		mailbox: make([][]Message, n),
	}
}

// Shards reports the single ownership domain of the in-memory medium.
func (t *MemTransport) Shards() int { return 1 }

// ShardOf places every vertex in shard 0.
func (t *MemTransport) ShardOf(int32) int { return 0 }

// Workers returns parutil's grain-adaptive worker count for n vertices.
func (t *MemTransport) Workers() int { return parutil.Workers(t.n) }

// ForWorkers delegates to parutil.ForShard: the same blocked partition
// the pre-Transport engine's callers used, so execution order (and any
// shard-ordered collection built on it) is unchanged.
func (t *MemTransport) ForWorkers(body func(worker, lo, hi int)) {
	parutil.ForShard(t.n, body)
}

// Send stages m for vertex `to` in the current round.
func (t *MemTransport) Send(_ int, to int32, m Message) {
	t.staged[to] = append(t.staged[to], m)
}

// Recv returns the messages delivered to v by the last EndRound.
func (t *MemTransport) Recv(_ int, v int32) []Message { return t.mailbox[v] }

// EndRound tallies the staged traffic and swaps it into the mailboxes.
func (t *MemTransport) EndRound(int) RoundTally {
	var tally RoundTally
	for v := range t.staged {
		for _, m := range t.staged[v] {
			w := m.Kind.Words()
			tally.Messages++
			tally.Words += int64(w)
			if w > tally.MaxMessageWords {
				tally.MaxMessageWords = w
			}
		}
	}
	t.staged, t.mailbox = t.mailbox, t.staged
	for v := range t.staged {
		t.staged[v] = t.staged[v][:0]
	}
	return tally
}
