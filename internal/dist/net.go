package dist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/graph"
)

// NetTransport is the bulk-synchronous TCP transport: each shard of
// the vertex partition is a separate OS process holding only its slice
// of the graph (see the Worker spec and graph.Partition), and the exchange core's
// per-shard-pair buckets become batched binary frames flushed at every
// round barrier.
//
// Topology: shard 0 is the coordinator; it listens, the workers join,
// and all traffic is relayed through it in a star (a frame is routed
// by its header without decoding the payload). The barrier doubles as
// the round-tally handshake: every process ships the tally of the
// traffic it staged, the coordinator reduces and re-broadcasts the
// global tally, and every engine bills that — so Stats.Rounds, Words,
// and the CrossShard split are identical on every process and to the
// single-process transports, which the loopback regression tests pin.
//
// The barrier protocol per EndRound, from a worker's perspective:
// write one frameRound batch per remote shard (empty batches
// included) and one frameTally, flush, then read the P−2 batches
// routed from the other shards (origin order) plus the global
// frameTally. The coordinator reads every worker fully (join), routes,
// then writes every worker fully (broadcast) — strict alternation, so
// the protocol cannot deadlock. Collectives (AllMaxInt32, AllOrBits,
// the blob gather/broadcast) follow the same alternation.
//
// Failure model: any I/O error, timeout, or protocol violation is
// fatal to the run — the transport panics with *NetError, which
// drivers recover into an exit (there is no partial-round recovery in
// a bulk-synchronous schedule). Timeouts default to 60s per frame.
type NetTransport struct {
	part    partition
	self    int
	x       *exchanger
	timeout time.Duration

	ln    net.Listener // coordinator only
	peers []*peerConn  // coordinator only, indexed by shard (nil at 0)
	hub   *peerConn    // worker only
	ready bool

	wireBytes int64
}

// NetError is the fatal-failure panic value of a NetTransport.
type NetError struct{ Err error }

func (e *NetError) Error() string { return "dist: network transport: " + e.Err.Error() }
func (e *NetError) Unwrap() error { return e.Err }

// DefaultNetTimeout is the per-frame I/O deadline when none is given.
const DefaultNetTimeout = 60 * time.Second

type peerConn struct {
	c  net.Conn
	br *bufio.Reader
	bw *bufio.Writer
	t  *NetTransport
}

func newPeerConn(t *NetTransport, c net.Conn) *peerConn {
	return &peerConn{c: c, br: bufio.NewReaderSize(c, 1<<16), bw: bufio.NewWriterSize(c, 1<<16), t: t}
}

func (p *peerConn) writeFrame(h frameHeader, payload []byte) error {
	var hb [headerSize]byte
	putHeader(hb[:], h)
	_ = p.c.SetWriteDeadline(time.Now().Add(p.t.timeout))
	if _, err := p.bw.Write(hb[:]); err != nil {
		return err
	}
	if _, err := p.bw.Write(payload); err != nil {
		return err
	}
	p.t.wireBytes += int64(headerSize + len(payload))
	return nil
}

func (p *peerConn) flush() error {
	_ = p.c.SetWriteDeadline(time.Now().Add(p.t.timeout))
	return p.bw.Flush()
}

// maxFramePayload bounds a single frame's payload. Legitimate batches
// are far smaller; the bound exists so that a corrupt Count header (or
// a non-protocol client) lands on the *NetError path instead of
// aborting the process with a huge allocation.
const maxFramePayload = 1 << 30

// payloadLen returns the byte length of a frame's payload.
func payloadLen(h frameHeader) (int, error) {
	var n int
	switch h.Type {
	case frameHello, frameWelcome:
		n = helloSize
	case frameRound:
		n = int(h.Count) * envelopeSize
	case frameTally:
		n = tallySize
	case frameMax:
		n = 4
	case frameOr:
		n = int(h.Count) * 8
	case frameGather:
		n = int(h.Count) * 4
	case frameBlob:
		n = int(h.Count)
	default:
		return 0, fmt.Errorf("unknown frame type %d", h.Type)
	}
	if n < 0 || n > maxFramePayload {
		return 0, fmt.Errorf("implausible frame payload: type %d count %d", h.Type, h.Count)
	}
	return n, nil
}

// readFrame reads the next frame, requiring the given type (the SPMD
// schedule means both sides always agree on what comes next; a
// mismatch is a protocol violation, not a reorder).
func (p *peerConn) readFrame(wantType uint8) (frameHeader, []byte, error) {
	_ = p.c.SetReadDeadline(time.Now().Add(p.t.timeout))
	var hb [headerSize]byte
	if _, err := io.ReadFull(p.br, hb[:]); err != nil {
		return frameHeader{}, nil, err
	}
	h, err := parseHeader(hb[:])
	if err != nil {
		return frameHeader{}, nil, err
	}
	if h.Type != wantType {
		return frameHeader{}, nil, fmt.Errorf("expected frame type %d, got %d", wantType, h.Type)
	}
	n, err := payloadLen(h)
	if err != nil {
		return frameHeader{}, nil, err
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(p.br, payload); err != nil {
		return frameHeader{}, nil, err
	}
	return h, payload, nil
}

// ListenNet binds the coordinator (shard 0) transport for a shards-way
// run over n vertices. It returns after binding; Addr reports the
// bound address to hand to workers, and WaitReady blocks until all
// shards-1 workers have joined.
func ListenNet(addr string, n, shards int, timeout time.Duration) (*NetTransport, error) {
	t, err := newNetTransport(n, 0, shards, timeout)
	if err != nil {
		return nil, err
	}
	if t.part.p > 1 {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return nil, err
		}
		t.ln = ln
	}
	return t, nil
}

// JoinNet dials the coordinator at addr and joins as the given shard.
// It blocks until the coordinator accepts the handshake.
func JoinNet(addr string, n, shard, shards int, timeout time.Duration) (*NetTransport, error) {
	t, err := newNetTransport(n, shard, shards, timeout)
	if err != nil {
		return nil, err
	}
	if shard == 0 {
		return nil, fmt.Errorf("dist: shard 0 is the coordinator; use ListenNet")
	}
	c, err := net.DialTimeout("tcp", addr, t.timeout)
	if err != nil {
		return nil, err
	}
	t.hub = newPeerConn(t, c)
	var hb [helloSize]byte
	putHello(hb[:], hello{Version: wireVersion, N: uint64(n), Shard: uint32(shard), Shards: uint32(shards)})
	if err := t.hub.writeFrame(frameHeader{Type: frameHello, From: uint16(shard)}, hb[:]); err != nil {
		c.Close()
		return nil, err
	}
	if err := t.hub.flush(); err != nil {
		c.Close()
		return nil, err
	}
	_, payload, err := t.hub.readFrame(frameWelcome)
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("dist: join handshake: %w", err)
	}
	if got := parseHello(payload); got.Version != wireVersion || got.N != uint64(n) || got.Shards != uint32(shards) {
		c.Close()
		return nil, fmt.Errorf("dist: coordinator config mismatch: %+v", got)
	}
	t.ready = true
	return t, nil
}

func newNetTransport(n, shard, shards int, timeout time.Duration) (*NetTransport, error) {
	if shards != graph.ClampShards(n, shards) {
		return nil, fmt.Errorf("dist: %d shards invalid for %d vertices", shards, n)
	}
	if shard < 0 || shard >= shards {
		return nil, fmt.Errorf("dist: shard %d out of range [0,%d)", shard, shards)
	}
	if timeout <= 0 {
		timeout = DefaultNetTimeout
	}
	t := &NetTransport{
		part:    newPartition(n, shards),
		self:    shard,
		x:       newExchanger(n, shards, shards),
		timeout: timeout,
	}
	t.ready = t.part.p == 1
	return t, nil
}

// Addr returns the coordinator's bound listen address.
func (t *NetTransport) Addr() string {
	if t.ln == nil {
		return ""
	}
	return t.ln.Addr().String()
}

// WaitReady accepts and validates the join handshake of every worker.
// Coordinator only; a no-op once ready.
func (t *NetTransport) WaitReady() error {
	if t.ready {
		return nil
	}
	if t.ln == nil {
		return fmt.Errorf("dist: WaitReady on a worker transport")
	}
	type deadliner interface{ SetDeadline(time.Time) error }
	if d, ok := t.ln.(deadliner); ok {
		_ = d.SetDeadline(time.Now().Add(t.timeout))
	}
	t.peers = make([]*peerConn, t.part.p)
	joined := 0
	for joined < t.part.p-1 {
		c, err := t.ln.Accept()
		if err != nil {
			return fmt.Errorf("dist: accepting worker: %w", err)
		}
		pc := newPeerConn(t, c)
		_, payload, err := pc.readFrame(frameHello)
		if err != nil {
			c.Close()
			return fmt.Errorf("dist: worker handshake: %w", err)
		}
		h := parseHello(payload)
		if h.Version != wireVersion || h.N != uint64(t.part.n) || h.Shards != uint32(t.part.p) {
			c.Close()
			return fmt.Errorf("dist: worker config mismatch: %+v", h)
		}
		s := int(h.Shard)
		if s < 1 || s >= t.part.p || t.peers[s] != nil {
			c.Close()
			return fmt.Errorf("dist: bad or duplicate worker shard %d", s)
		}
		var wb [helloSize]byte
		putHello(wb[:], hello{Version: wireVersion, N: uint64(t.part.n), Shard: h.Shard, Shards: uint32(t.part.p)})
		if err := pc.writeFrame(frameHeader{Type: frameWelcome}, wb[:]); err != nil {
			c.Close()
			return err
		}
		if err := pc.flush(); err != nil {
			c.Close()
			return err
		}
		t.peers[s] = pc
		joined++
	}
	t.ready = true
	return nil
}

// Close tears the connections down.
func (t *NetTransport) Close() error {
	var first error
	if t.hub != nil {
		_ = t.hub.flush()
		first = t.hub.c.Close()
	}
	for _, p := range t.peers {
		if p != nil {
			_ = p.flush()
			if err := p.c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	if t.ln != nil {
		if err := t.ln.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// WireBytes returns the bytes this process has written to the network
// (frame headers included) — the transport's own honesty counter, next
// to the model-level Stats.CrossShardWords.
func (t *NetTransport) WireBytes() int64 { return t.wireBytes }

// Shard returns this process's shard id.
func (t *NetTransport) Shard() int { return t.self }

// fatal aborts the run on an unrecoverable transport failure.
func (t *NetTransport) fatal(err error) {
	panic(&NetError{Err: err})
}

func (t *NetTransport) mustReady() {
	if !t.ready {
		t.fatal(fmt.Errorf("transport used before WaitReady"))
	}
}

// Shards returns the global shard count P.
func (t *NetTransport) Shards() int { return t.part.p }

// ShardOf returns the shard owning vertex v.
func (t *NetTransport) ShardOf(v int32) int { return t.part.shardOf(v) }

// Workers returns P: the execution partition spans every process, of
// which exactly one worker (this shard) runs locally.
func (t *NetTransport) Workers() int { return t.part.p }

// ForWorkers runs body for this process's own shard only — the other
// workers are other processes executing the same phase of the same
// schedule.
func (t *NetTransport) ForWorkers(body func(worker, lo, hi int)) {
	if t.part.n <= 0 {
		return
	}
	body(t.self, t.part.bounds[t.self], t.part.bounds[t.self+1])
}

// Send stages m for vertex `to`. All staging must land in this
// shard's row of the exchange core — sender-staged kinds because From
// is owned here, receiver-staged kinds because `to` is. A message the
// discipline routes to another shard's row could never be flushed by
// this process, so it is a fatal contract violation rather than a
// silent drop.
func (t *NetTransport) Send(_ int, to int32, m Message) {
	if d := t.x.stagingShard(to, m); d != t.self {
		t.fatal(fmt.Errorf("message for vertex %d from %d staged on shard %d, not this shard %d (staging discipline violation)",
			to, m.From, d, t.self))
	}
	t.x.send(to, m)
}

// Recv returns the messages delivered to v by the last EndRound.
func (t *NetTransport) Recv(_ int, v int32) []Message { return t.x.recv(v) }

// localTally bills every message this process staged in the closing
// round (sender-side billing; summed across processes by the handshake
// it equals the receiver-side billing of the in-process transports).
func (t *NetTransport) localTally() RoundTally {
	var tally RoundTally
	for r := 0; r < t.part.p; r++ {
		for _, env := range t.x.staged[t.self][r] {
			t.x.bill(&tally, env)
		}
	}
	return tally
}

func encodeEnvelopes(envs []envelope) []byte {
	buf := make([]byte, len(envs)*envelopeSize)
	for i, env := range envs {
		putEnvelope(buf[i*envelopeSize:], env)
	}
	return buf
}

func decodeEnvelopes(payload []byte) []envelope {
	envs := make([]envelope, len(payload)/envelopeSize)
	for i := range envs {
		envs[i] = parseEnvelope(payload[i*envelopeSize:])
	}
	return envs
}

// EndRound is the bulk-synchronous barrier: flush staged batches,
// exchange them through the coordinator, reduce the round tally, and
// drain the inbound batches into the mailboxes in staging-shard order
// (identical to ShardedTransport's drain order, so mailbox order — and
// with it every decision — is transport-independent).
func (t *NetTransport) EndRound(round int) RoundTally {
	t.mustReady()
	local := t.localTally()
	if t.part.p == 1 {
		var discard RoundTally
		t.x.clearMailboxes(0)
		t.x.deliverInto(&discard, t.x.takeRow(0, 0))
		return local
	}
	var global RoundTally
	var err error
	if t.self == 0 {
		global, err = t.endRoundCoordinator(round, local)
	} else {
		global, err = t.endRoundWorker(round, local)
	}
	if err != nil {
		t.fatal(fmt.Errorf("round %d: %w", round, err))
	}
	return global
}

func (t *NetTransport) endRoundWorker(round int, local RoundTally) (RoundTally, error) {
	self := t.self
	for r := 0; r < t.part.p; r++ {
		if r == self {
			continue
		}
		batch := t.x.takeRow(self, r)
		h := frameHeader{Type: frameRound, From: uint16(self), To: uint16(r), Round: uint32(round), Count: uint32(len(batch))}
		if err := t.hub.writeFrame(h, encodeEnvelopes(batch)); err != nil {
			return RoundTally{}, err
		}
	}
	var tb [tallySize]byte
	putTally(tb[:], local)
	if err := t.hub.writeFrame(frameHeader{Type: frameTally, From: uint16(self), Round: uint32(round)}, tb[:]); err != nil {
		return RoundTally{}, err
	}
	if err := t.hub.flush(); err != nil {
		return RoundTally{}, err
	}

	t.x.clearMailboxes(self)
	var discard RoundTally
	for d := 0; d < t.part.p; d++ {
		if d == self {
			t.x.deliverInto(&discard, t.x.takeRow(self, self))
			continue
		}
		h, payload, err := t.hub.readFrame(frameRound)
		if err != nil {
			return RoundTally{}, err
		}
		if int(h.From) != d || int(h.To) != self || int(h.Round) != round {
			return RoundTally{}, fmt.Errorf("misrouted batch %+v (want from %d to %d round %d)", h, d, self, round)
		}
		t.x.deliverInto(&discard, decodeEnvelopes(payload))
	}
	_, payload, err := t.hub.readFrame(frameTally)
	if err != nil {
		return RoundTally{}, err
	}
	return parseTally(payload), nil
}

func (t *NetTransport) endRoundCoordinator(round int, local RoundTally) (RoundTally, error) {
	p := t.part.p
	global := local
	// batches[origin][dest] holds the raw (already encoded) payloads of
	// the workers' outgoing frames; routing forwards them verbatim.
	batches := make([][][]byte, p)
	for w := 1; w < p; w++ {
		batches[w] = make([][]byte, p)
		seen := 0
		for seen < p-1 {
			h, payload, err := t.peers[w].readFrame(frameRound)
			if err != nil {
				return RoundTally{}, fmt.Errorf("reading shard %d: %w", w, err)
			}
			if int(h.From) != w || int(h.To) == w || int(h.To) >= p || int(h.Round) != round || batches[w][h.To] != nil {
				return RoundTally{}, fmt.Errorf("bad batch header %+v from shard %d round %d", h, w, round)
			}
			batches[w][h.To] = payload
			seen++
		}
		_, tb, err := t.peers[w].readFrame(frameTally)
		if err != nil {
			return RoundTally{}, fmt.Errorf("reading shard %d tally: %w", w, err)
		}
		global = mergeTallies([]RoundTally{global, parseTally(tb)})
	}
	var gtb [tallySize]byte
	putTally(gtb[:], global)
	for r := 1; r < p; r++ {
		for d := 0; d < p; d++ {
			if d == r {
				continue
			}
			var payload []byte
			if d == 0 {
				payload = encodeEnvelopes(t.x.takeRow(0, r))
			} else {
				payload = batches[d][r]
			}
			h := frameHeader{Type: frameRound, From: uint16(d), To: uint16(r), Round: uint32(round), Count: uint32(len(payload) / envelopeSize)}
			if err := t.peers[r].writeFrame(h, payload); err != nil {
				return RoundTally{}, err
			}
		}
		if err := t.peers[r].writeFrame(frameHeader{Type: frameTally, Round: uint32(round)}, gtb[:]); err != nil {
			return RoundTally{}, err
		}
		if err := t.peers[r].flush(); err != nil {
			return RoundTally{}, err
		}
	}
	t.x.clearMailboxes(0)
	var discard RoundTally
	for d := 0; d < p; d++ {
		if d == 0 {
			t.x.deliverInto(&discard, t.x.takeRow(0, 0))
			continue
		}
		t.x.deliverInto(&discard, decodeEnvelopes(batches[d][0]))
	}
	return global, nil
}

// AllMaxInt32 reduces x to its maximum across all shards (the
// control-plane convergecast of collectiveTransport).
func (t *NetTransport) AllMaxInt32(x int32) int32 {
	t.mustReady()
	if t.part.p == 1 {
		return x
	}
	var vb [4]byte
	if t.self != 0 {
		putU32(vb[:], uint32(x))
		if err := t.hub.writeFrame(frameHeader{Type: frameMax, From: uint16(t.self)}, vb[:]); err != nil {
			t.fatal(err)
		}
		if err := t.hub.flush(); err != nil {
			t.fatal(err)
		}
		_, payload, err := t.hub.readFrame(frameMax)
		if err != nil {
			t.fatal(err)
		}
		return int32(getU32(payload))
	}
	for w := 1; w < t.part.p; w++ {
		_, payload, err := t.peers[w].readFrame(frameMax)
		if err != nil {
			t.fatal(err)
		}
		if v := int32(getU32(payload)); v > x {
			x = v
		}
	}
	putU32(vb[:], uint32(x))
	for w := 1; w < t.part.p; w++ {
		if err := t.peers[w].writeFrame(frameHeader{Type: frameMax}, vb[:]); err != nil {
			t.fatal(err)
		}
		if err := t.peers[w].flush(); err != nil {
			t.fatal(err)
		}
	}
	return x
}

// AllOrBits ORs the bit vector across all shards, in place.
func (t *NetTransport) AllOrBits(bits []uint64) []uint64 {
	t.mustReady()
	if t.part.p == 1 {
		return bits
	}
	buf := make([]byte, len(bits)*8)
	packWords(buf, bits)
	h := frameHeader{Type: frameOr, From: uint16(t.self), Count: uint32(len(bits))}
	if t.self != 0 {
		if err := t.hub.writeFrame(h, buf); err != nil {
			t.fatal(err)
		}
		if err := t.hub.flush(); err != nil {
			t.fatal(err)
		}
		_, payload, err := t.hub.readFrame(frameOr)
		if err != nil {
			t.fatal(err)
		}
		if len(payload) != len(buf) {
			t.fatal(fmt.Errorf("AllOrBits length mismatch: %d vs %d", len(payload), len(buf)))
		}
		orWordsInto(bits, payload, true)
		return bits
	}
	for w := 1; w < t.part.p; w++ {
		_, payload, err := t.peers[w].readFrame(frameOr)
		if err != nil {
			t.fatal(err)
		}
		if len(payload) != len(buf) {
			t.fatal(fmt.Errorf("AllOrBits length mismatch from shard %d: %d vs %d", w, len(payload), len(buf)))
		}
		orWordsInto(bits, payload, false)
	}
	packWords(buf, bits)
	for w := 1; w < t.part.p; w++ {
		if err := t.peers[w].writeFrame(frameHeader{Type: frameOr, Count: uint32(len(bits))}, buf); err != nil {
			t.fatal(err)
		}
		if err := t.peers[w].flush(); err != nil {
			t.fatal(err)
		}
	}
	return bits
}

// AllGatherInt32s merges the shards' sorted, disjoint id lists into
// the globally sorted union: workers converge their contributions on
// the coordinator, which k-way-merges them (the contributions are
// sorted and disjoint, so the merge is a linear zip) and broadcasts
// the union back. O(total list length) words on the wire — the
// control-plane cost of the bundle-id renumbering, which replaced the
// Θ(m)-bit mask merge of the sparse-table era.
func (t *NetTransport) AllGatherInt32s(xs []int32) []int32 {
	t.mustReady()
	if t.part.p == 1 {
		return xs
	}
	if t.self != 0 {
		if err := t.hub.writeFrame(frameHeader{Type: frameGather, From: uint16(t.self), Count: uint32(len(xs))}, packInt32s(xs)); err != nil {
			t.fatal(err)
		}
		if err := t.hub.flush(); err != nil {
			t.fatal(err)
		}
		_, payload, err := t.hub.readFrame(frameGather)
		if err != nil {
			t.fatal(err)
		}
		return parseInt32s(payload)
	}
	lists := make([][]int32, t.part.p)
	lists[0] = xs
	for w := 1; w < t.part.p; w++ {
		_, payload, err := t.peers[w].readFrame(frameGather)
		if err != nil {
			t.fatal(err)
		}
		lists[w] = parseInt32s(payload)
	}
	merged := mergeSortedInt32s(lists)
	buf := packInt32s(merged)
	for w := 1; w < t.part.p; w++ {
		if err := t.peers[w].writeFrame(frameHeader{Type: frameGather, Count: uint32(len(merged))}, buf); err != nil {
			t.fatal(err)
		}
		if err := t.peers[w].flush(); err != nil {
			t.fatal(err)
		}
	}
	return merged
}

// mergeSortedInt32s merges sorted disjoint lists into one sorted list
// by rounds of pairwise two-way zips — O(total · log P).
func mergeSortedInt32s(lists [][]int32) []int32 {
	if len(lists) == 0 {
		return nil
	}
	for len(lists) > 1 {
		merged := lists[:0]
		for i := 0; i < len(lists); i += 2 {
			if i+1 == len(lists) {
				merged = append(merged, lists[i])
			} else {
				merged = append(merged, mergeTwoInt32s(lists[i], lists[i+1]))
			}
		}
		lists = merged
	}
	return lists[0]
}

// mergeTwoInt32s zips two sorted lists.
func mergeTwoInt32s(a, b []int32) []int32 {
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

func packInt32s(xs []int32) []byte {
	buf := make([]byte, len(xs)*4)
	for i, x := range xs {
		binary.LittleEndian.PutUint32(buf[i*4:], uint32(x))
	}
	return buf
}

func parseInt32s(payload []byte) []int32 {
	xs := make([]int32, len(payload)/4)
	for i := range xs {
		xs[i] = int32(binary.LittleEndian.Uint32(payload[i*4:]))
	}
	return xs
}

// BroadcastBlob ships an opaque application payload from the
// coordinator to every worker (workers pass nil and receive it).
func (t *NetTransport) BroadcastBlob(b []byte) ([]byte, error) {
	if err := t.WaitReady(); err != nil {
		return nil, err
	}
	if t.part.p == 1 {
		return b, nil
	}
	if t.self != 0 {
		_, payload, err := t.hub.readFrame(frameBlob)
		return payload, err
	}
	for w := 1; w < t.part.p; w++ {
		if err := t.peers[w].writeFrame(frameHeader{Type: frameBlob, Count: uint32(len(b))}, b); err != nil {
			return nil, err
		}
		if err := t.peers[w].flush(); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// GatherBlobs ships every process's payload to the coordinator, which
// receives them indexed by shard (its own included); workers get nil.
func (t *NetTransport) GatherBlobs(b []byte) ([][]byte, error) {
	if err := t.WaitReady(); err != nil {
		return nil, err
	}
	if t.part.p == 1 {
		return [][]byte{b}, nil
	}
	if t.self != 0 {
		if err := t.hub.writeFrame(frameHeader{Type: frameBlob, From: uint16(t.self), Count: uint32(len(b))}, b); err != nil {
			return nil, err
		}
		return nil, t.hub.flush()
	}
	out := make([][]byte, t.part.p)
	out[0] = b
	for w := 1; w < t.part.p; w++ {
		_, payload, err := t.peers[w].readFrame(frameBlob)
		if err != nil {
			return nil, fmt.Errorf("gathering from shard %d: %w", w, err)
		}
		out[w] = payload
	}
	return out, nil
}

func putU32(b []byte, v uint32) { binary.LittleEndian.PutUint32(b, v) }

func getU32(b []byte) uint32 { return binary.LittleEndian.Uint32(b) }

func packWords(buf []byte, words []uint64) {
	for i, w := range words {
		binary.LittleEndian.PutUint64(buf[i*8:], w)
	}
}

// orWordsInto folds the packed payload into words; replace overwrites
// instead of ORing (used when the payload is already the global OR).
func orWordsInto(words []uint64, payload []byte, replace bool) {
	for i := range words {
		w := binary.LittleEndian.Uint64(payload[i*8:])
		if replace {
			words[i] = w
		} else {
			words[i] |= w
		}
	}
}
