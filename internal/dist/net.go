package dist

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/bits"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/graph"
)

// NetTransport is the bulk-synchronous TCP transport: each shard of
// the vertex partition is a separate OS process holding only its slice
// of the graph (see the Worker spec and graph.Partition), and the exchange core's
// per-shard-pair buckets become batched binary frames flushed at every
// round barrier.
//
// Topology: shard 0 is the coordinator; it listens, the workers join,
// and control traffic (tallies, collectives, blobs) always flows
// through it. Round data takes one of two planes: the default star
// relays every worker↔worker batch through the coordinator (a frame
// is routed by its header without decoding the payload — each such
// batch crosses the wire twice), while the full-mesh plane (the Mesh
// spec / NetConfig.Mesh, see mesh.go) has the workers dial each other
// directly so each batch crosses once and shard 0 stops being the
// bandwidth hot spot. The barrier doubles as the round-tally
// handshake on both planes: every process ships the tally of the
// traffic it staged, the coordinator reduces and re-broadcasts the
// global tally, and every engine bills that — so Stats.Rounds, Words,
// and the CrossShard split are identical on every process and to the
// single-process transports, which the loopback regression tests pin.
//
// The barrier protocol per EndRound, from a worker's perspective:
// write one frameRound batch per remote shard (empty batches
// included), one frameTally, and one frameCheck, flush, then read the
// P−2 batches routed from the other shards (origin order) plus the
// global frameTally and the coordinator's frameCheck — the inbound
// payloads are held raw and decoded only after the stream checksum
// verifies. The coordinator reads every worker fully (join), routes,
// then writes every worker fully (broadcast) — strict alternation, so
// the protocol cannot deadlock. Collectives (AllMaxInt32, AllOrBits,
// the blob gather/broadcast) follow the same alternation and carry a
// per-transport collective sequence number in their Round field, so a
// desynchronized peer can never satisfy the wrong collective silently.
//
// Failure model: liveness is heartbeat-based and failure is recovered
// by deterministic replay. Each connection direction carries a
// frameHeartbeat every timeout/4 while the peer computes, and every
// read refreshes its deadline per frame — so a slow round survives any
// timeout, while a dead or partitioned peer is detected within one
// timeout (a killed process is detected immediately via EOF/RST). On
// the mesh plane a worker that loses a direct link also reports the
// dead peer on its hub (frameFault), so the coordinator learns of a
// death it cannot see on the connection it is currently reading and
// attributes the recovery to the right shard (see meshFail).
// Data frames (frameRound, frameTally, the collectives, blobs) feed a
// running CRC-32C per direction that is cross-checked by frameCheck at
// every round barrier, before any payload is decoded. On a worker
// failure the coordinator rolls the fleet back (frameRollback, acked
// by the survivors), respawns the dead shard from its partition file
// via the NetConfig.Respawn hook, and every process re-runs the
// attempt from the top: each round is a pure function of (seed,
// partition, round number) and the coordinator re-broadcasts its last
// checkpoint each attempt, so replay reproduces bit-identical frames,
// tallies, and output (see checkpoint.go and the recovery tests).
// With failover armed (NetConfig.Failover), COORDINATOR death is
// survivable too: every worker pre-binds a standby hub listener and
// announces it at the join handshake, the coordinator broadcasts the
// assembled standby book each attempt, and on losing the hub the
// lowest-numbered shard in the book adopts shard 0 from its copy of
// the broadcast checkpoint while the other survivors rejoin its
// standby address (see failover.go and engine.go). Protocol
// violations and checksum mismatches remain fatal: the transport
// panics with *NetError, which drivers recover into an exit. Timeouts
// default to 60s per frame.
type NetTransport struct {
	part    partition
	self    int
	x       *exchanger
	timeout time.Duration

	ln    net.Listener // coordinator only
	peers []*peerConn  // coordinator only, indexed by shard (nil at 0)
	hub   *peerConn    // worker only
	ready bool

	// Full-mesh data plane (the Mesh spec / NetConfig.Mesh; see
	// mesh.go). meshLn is a worker's peer listener, announced to the
	// coordinator at the join handshake; meshAddrs is the coordinator's
	// address book, broadcast at the top of every attempt; meshPeers
	// are a worker's direct links to the other workers, indexed by
	// shard (nil at 0 and self).
	mesh      bool
	meshLn    net.Listener
	meshAddrs []string
	meshPeers []*peerConn

	// Coordinator failover (NetConfig.Failover / WorkerConfig.Failover;
	// see failover.go). standby is a worker's pre-bound spare hub
	// listener, announced at the join handshake and silent until this
	// worker is elected coordinator; failAddrs is the standby address
	// book — collected from the handshakes on the coordinator, adopted
	// from the per-attempt broadcast on workers. lastHeader and lastCkpt
	// are a worker's copies of the coordinator's job-header and
	// checkpoint broadcasts, kept current so an elected worker can
	// re-broadcast the exact same run state.
	failover   bool
	standby    net.Listener
	failAddrs  []string
	lastHeader []byte
	lastCkpt   *ckptState

	wireBytes int64
	// dataBytes is the worker↔worker round-batch subset of wireBytes
	// (headers included): the bytes the topology choice governs. Star
	// writes every such batch twice fleet-wide (origin → coordinator,
	// coordinator → destination); the mesh writes it once, so the
	// fleet-total dataBytes is exactly halved.
	dataBytes int64

	// seq numbers the collective operations (AllMaxInt32, AllOrBits,
	// AllGatherInt32s, BroadcastBlob, GatherBlobs) within an attempt;
	// it rides in the frames' Round field and both sides validate it.
	seq uint32
	// generation counts recovery rollbacks, so a stale ack can never
	// satisfy a newer rollback.
	generation uint32

	// Fault injection for recovery drills (WorkerConfig.FailAfterFrames
	// and the in-process recovery tests): after framesWritten reaches
	// failAfterFrames, failAct runs — or, when nil, the process
	// SIGKILLs itself, the honest worker-death drill.
	failAfterFrames int
	framesWritten   int
	failAct         func()

	// bufFree is the transport's payload-buffer freelist, size-classed
	// by power of two. The round path of one transport is a single
	// goroutine (heartbeat senders never allocate payloads), so no lock
	// is needed. Blob payloads escape to the application and are never
	// pooled; everything else cycles through getBuf/putBuf.
	bufFree [31][][]byte
	// envScratch is the reusable envelope-decode buffer of the round
	// barrier; deliverInto copies messages out, so one scratch serves
	// every batch of a barrier in sequence.
	envScratch []envelope
}

// bufFreeDepth bounds how many buffers one size class retains.
const bufFreeDepth = 8

// emptyBuf is the shared zero-length (but non-nil) payload.
var emptyBuf = make([]byte, 0)

// getBuf returns a length-n byte buffer, reusing a pooled one when the
// freelist has a large enough size class. Contents are arbitrary —
// every user overwrites (io.ReadFull, putEnvelope, ...).
func (t *NetTransport) getBuf(n int) []byte {
	if n == 0 {
		// Non-nil so an empty payload still reads as "batch present"
		// (the coordinator detects duplicate batches by non-nil cells).
		return emptyBuf
	}
	c := bits.Len(uint(n - 1)) // smallest c with 1<<c >= n
	if s := t.bufFree[c]; len(s) > 0 {
		b := s[len(s)-1]
		t.bufFree[c] = s[:len(s)-1]
		return b[:n]
	}
	return make([]byte, n, 1<<c)
}

// putBuf returns a buffer to the freelist. Callers must own b and drop
// every reference to it; a buffer that is never returned is simply
// garbage collected, so forgetting is safe and double-returning is the
// only misuse.
func (t *NetTransport) putBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	c := bits.Len(uint(cap(b))) - 1 // largest c with 1<<c <= cap
	if len(t.bufFree[c]) < bufFreeDepth {
		t.bufFree[c] = append(t.bufFree[c], b[:0])
	}
}

// NetError is the fatal-failure panic value of a NetTransport.
type NetError struct{ Err error }

func (e *NetError) Error() string { return "dist: network transport: " + e.Err.Error() }
func (e *NetError) Unwrap() error { return e.Err }

// workerFailure marks a coordinator-side I/O or protocol failure on
// one worker's connection; the recovery loop in runNetCoordinatorJob
// reads the shard to respawn off it.
type workerFailure struct {
	shard int
	err   error
}

func (e *workerFailure) Error() string {
	return fmt.Sprintf("worker shard %d failed: %v", e.shard, e.err)
}
func (e *workerFailure) Unwrap() error { return e.err }

// faultReport surfaces a worker's frameFault on the coordinator: the
// reporting shard's direct mesh link to the suspect shard died. The
// report matters because the coordinator only probes the connection it
// is currently reading — without it, a death visible only on a LATER
// connection in the read order deadlocks the fleet until the
// reporter's rollback park expires (see meshFail). peerFail re-routes
// the recovery to the suspect instead of the reporter.
type faultReport struct{ reporter, suspect int }

func (e *faultReport) Error() string {
	return fmt.Sprintf("shard %d reports its link to shard %d dead", e.reporter, e.suspect)
}

// rollbackError unwinds a worker's run attempt when the coordinator
// announces a recovery rollback; runNetWorkerJob acks it and re-runs
// the attempt.
type rollbackError struct{ generation uint32 }

func (e *rollbackError) Error() string {
	return fmt.Sprintf("coordinator rolled the run back (recovery generation %d)", e.generation)
}

// DefaultNetTimeout is the per-frame I/O deadline when none is given.
const DefaultNetTimeout = 60 * time.Second

// crcTable is the CRC-32C (Castagnoli) table of the per-direction
// stream checksums.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// frameChecksummed reports whether a frame type feeds the running
// stream checksum. Data frames do; control frames (handshake,
// heartbeat, the check itself, rollback/ack) do not — a worker writes
// its hello before any attempt starts, and heartbeats interleave
// asynchronously, so hashing them would desynchronize the two sides.
func frameChecksummed(typ uint8) bool {
	switch typ {
	case frameRound, frameTally, frameMax, frameOr, frameGather, frameBlob:
		return true
	}
	return false
}

type peerConn struct {
	c  net.Conn
	br *bufio.Reader
	t  *NetTransport

	// pending accumulates the header and payload slices of every frame
	// written since the last flush; flush hands the whole batch to the
	// kernel as ONE vectored write (net.Buffers → writev), so a round
	// barrier costs one syscall per peer instead of one per frame. Only
	// the round goroutine appends; wmu is taken only to write the
	// socket, serializing flushes with the heartbeat sender.
	pending      net.Buffers
	pendingBytes int64
	// hdrChunks is the arena the pending frame headers live in: fixed
	// chunks, so a header slice handed to pending is never invalidated
	// by a later append (a growing slice would reallocate under it).
	hdrChunks [][]byte
	hdrUsed   int // headers handed out since the last flush
	// retire holds pooled payload buffers owned by the pending batch;
	// they return to the transport's freelist only after the flush that
	// writes them.
	retire [][]byte

	// wmu serializes socket writes (flush) with the heartbeat sender.
	wmu sync.Mutex
	// wsum/rsum are the running CRC-32C of the data frames written/read
	// since the last frameCheck in that direction. Only the owning
	// round goroutine touches them (heartbeats are excluded).
	wsum, rsum uint32
	// rollbackOK marks the worker's hub connection: a frameRollback may
	// arrive at any read point and surfaces as *rollbackError.
	rollbackOK bool

	hbStop chan struct{}
	hbDone chan struct{}

	// Async double buffering (the mesh data plane; see mesh.go):
	// flushAsync hands the pending batch to a dedicated writer
	// goroutine, so round r's bytes go to the kernel while the round
	// goroutine stages round r+1. All resource bookkeeping (the payload
	// freelist, the header arena) happens on the round goroutine when
	// it reclaims acked batches — the writer only writes and acks, so
	// the freelists stay lock-free.
	writerCh   chan *pendingBatch
	writerAck  chan *pendingBatch
	writerDone chan struct{}
	inflight   int
	werr       error // sticky first async write error
	spare      []*pendingBatch
	// spareChunks holds header-arena chunks returned by reclaimed async
	// batches; headerSlot reuses them before allocating.
	spareChunks [][]byte
}

func newPeerConn(t *NetTransport, c net.Conn) *peerConn {
	return &peerConn{c: c, br: bufio.NewReaderSize(c, 1<<16), t: t}
}

// headersPerChunk sizes the header-arena chunks of a pending batch.
const headersPerChunk = 64

// headerSlot returns a stable headerSize slice for the next pending
// frame header. Chunks are reused across batches: a sync flush keeps
// the arena in place, an async flush hands it to the in-flight batch
// and it comes back through spareChunks once the write completes.
func (p *peerConn) headerSlot() []byte {
	chunk, off := p.hdrUsed/headersPerChunk, (p.hdrUsed%headersPerChunk)*headerSize
	if chunk == len(p.hdrChunks) {
		if n := len(p.spareChunks); n > 0 {
			p.hdrChunks = append(p.hdrChunks, p.spareChunks[n-1])
			p.spareChunks[n-1] = nil
			p.spareChunks = p.spareChunks[:n-1]
		} else {
			p.hdrChunks = append(p.hdrChunks, make([]byte, headersPerChunk*headerSize))
		}
	}
	p.hdrUsed++
	return p.hdrChunks[chunk][off : off+headerSize]
}

// retireBuf marks a pooled payload buffer as owned by the pending
// batch; flush releases it back to the transport's freelist.
func (p *peerConn) retireBuf(b []byte) {
	if cap(b) > 0 {
		p.retire = append(p.retire, b)
	}
}

// startHeartbeats begins the liveness sender: one frameHeartbeat per
// timeout/4 of silence, written straight to the socket under wmu so it
// can never tear a flushed batch. Heartbeats bypass writeFrame — they
// are not counted in WireBytes (which stays deterministic), not
// hashed, and not batched: a heartbeat may hit the wire before frames
// still pending in the batch, which is safe because readFrame consumes
// heartbeats transparently at any position in the stream.
func (p *peerConn) startHeartbeats() {
	interval := p.t.timeout / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	p.hbStop = make(chan struct{})
	p.hbDone = make(chan struct{})
	go func() {
		defer close(p.hbDone)
		var hb [headerSize]byte
		putHeader(hb[:], frameHeader{Type: frameHeartbeat})
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-p.hbStop:
				return
			case <-ticker.C:
			}
			p.wmu.Lock()
			_ = p.c.SetWriteDeadline(time.Now().Add(p.t.timeout))
			_, err := p.c.Write(hb[:])
			p.wmu.Unlock()
			if err != nil {
				return // the round path will surface the failure
			}
		}
	}()
}

func (p *peerConn) stopHeartbeats() {
	if p.hbStop != nil {
		close(p.hbStop)
		<-p.hbDone
		p.hbStop = nil
	}
}

// close stops the heartbeat sender, drains the async writer, flushes,
// and closes the socket.
func (p *peerConn) close() error {
	p.stopHeartbeats()
	_ = p.flush()
	p.stopWriter()
	return p.c.Close()
}

// writeFrame appends one frame to the pending batch. The payload slice
// must stay untouched until the next flush — the batch references it,
// it is not copied. CRC-32C and WireBytes accounting happen here, at
// append time, so they are byte-identical to the unbatched protocol;
// I/O errors surface at flush (writeFrame itself cannot fail, but
// keeps the error signature so call sites read as writes).
func (p *peerConn) writeFrame(h frameHeader, payload []byte) error {
	if p.t.failAfterFrames > 0 {
		p.t.framesWritten++
		if p.t.framesWritten >= p.t.failAfterFrames {
			p.t.failAfterFrames = 0
			if p.t.failAct != nil {
				p.t.failAct()
			} else {
				crashSelf()
			}
		}
	}
	hb := p.headerSlot()
	putHeader(hb, h)
	p.pending = append(p.pending, hb)
	if len(payload) > 0 {
		p.pending = append(p.pending, payload)
	}
	p.pendingBytes += int64(headerSize + len(payload))
	if frameChecksummed(h.Type) {
		p.wsum = crc32.Update(p.wsum, crcTable, hb)
		p.wsum = crc32.Update(p.wsum, crcTable, payload)
	}
	p.t.wireBytes += int64(headerSize + len(payload))
	if h.Type == frameRound && h.From != 0 && h.To != 0 {
		p.t.dataBytes += int64(headerSize + len(payload))
	}
	return nil
}

// flush writes the whole pending batch as one vectored write, then
// releases the batch's pooled payload buffers and header arena for
// reuse. Every protocol path flushes (or hands the batch to the async
// writer, see flushAsync) before it reads from the same peer, so
// frames never sit pending across a read of that peer — the per-peer
// write-then-read alternation that makes the barrier deadlock-free.
// Draining the async writer first keeps this connection's bytes in
// protocol order even when round batches went out asynchronously.
func (p *peerConn) flush() error {
	if err := p.drainAsync(); err != nil {
		return err
	}
	if len(p.pending) == 0 {
		return nil
	}
	p.wmu.Lock()
	_ = p.c.SetWriteDeadline(time.Now().Add(p.t.timeout))
	bufs := p.pending
	_, err := bufs.WriteTo(p.c)
	p.wmu.Unlock()
	for i := range p.pending {
		p.pending[i] = nil
	}
	p.pending = p.pending[:0]
	p.pendingBytes = 0
	p.hdrUsed = 0
	for _, b := range p.retire {
		p.t.putBuf(b)
	}
	p.retire = p.retire[:0]
	return err
}

// crashSelf is the honest worker-death fault injection: SIGKILL, no
// deferred cleanup, no goodbye — exactly what a preempted or OOM-killed
// worker looks like to the fleet.
func crashSelf() {
	if proc, err := os.FindProcess(os.Getpid()); err == nil {
		_ = proc.Kill()
	}
	select {} // unreachable: SIGKILL cannot be caught
}

// maxFramePayload bounds a single frame's payload. Legitimate batches
// are far smaller; the bound exists so that a corrupt Count header (or
// a non-protocol client) lands on the *NetError path instead of
// aborting the process with a huge allocation.
const maxFramePayload = 1 << 30

// payloadLen returns the byte length of a frame's payload.
func payloadLen(h frameHeader) (int, error) {
	var n int
	switch h.Type {
	case frameHello, frameWelcome:
		n = helloSize
	case frameRound:
		n = int(h.Count) * envelopeSize
	case frameTally:
		n = tallySize
	case frameMax:
		n = 4
	case frameOr:
		n = int(h.Count) * 8
	case frameGather:
		n = int(h.Count) * 4
	case frameBlob:
		n = int(h.Count)
	case frameCheck:
		n = checkSize
	case frameHeartbeat, frameRollback, frameRollbackAck, frameFault:
		n = 0
	case frameMeshAddr:
		if h.Count > maxMeshAddrLen {
			return 0, fmt.Errorf("implausible mesh address length %d", h.Count)
		}
		n = int(h.Count)
	case frameMeshHello, frameMeshWelcome:
		n = helloSize
	case frameFailoverAddr:
		if h.Count > maxMeshAddrLen {
			return 0, fmt.Errorf("implausible failover standby address length %d", h.Count)
		}
		n = int(h.Count)
	default:
		return 0, fmt.Errorf("unknown frame type %d", h.Type)
	}
	if n < 0 || n > maxFramePayload {
		return 0, fmt.Errorf("implausible frame payload: type %d count %d", h.Type, h.Count)
	}
	return n, nil
}

// readFrame reads the next frame, requiring the given type (the SPMD
// schedule means both sides always agree on what comes next; a
// mismatch is a protocol violation, not a reorder). Heartbeats are
// consumed transparently, each refreshing the read deadline — so
// liveness, not per-frame latency, is what the timeout bounds. On a
// worker's hub connection a frameRollback surfaces as *rollbackError
// at any read point, unwinding the attempt.
func (p *peerConn) readFrame(wantType uint8) (frameHeader, []byte, error) {
	for {
		_ = p.c.SetReadDeadline(time.Now().Add(p.t.timeout))
		var hb [headerSize]byte
		if _, err := io.ReadFull(p.br, hb[:]); err != nil {
			return frameHeader{}, nil, err
		}
		h, err := parseHeader(hb[:])
		if err != nil {
			return frameHeader{}, nil, err
		}
		if h.Type == frameHeartbeat {
			continue
		}
		if h.Type == frameRollback && p.rollbackOK {
			return frameHeader{}, nil, &rollbackError{generation: h.Round}
		}
		if h.Type == frameFault {
			return frameHeader{}, nil, &faultReport{reporter: int(h.From), suspect: int(h.To)}
		}
		if h.Type != wantType {
			return frameHeader{}, nil, fmt.Errorf("expected frame type %d, got %d", wantType, h.Type)
		}
		n, err := payloadLen(h)
		if err != nil {
			return frameHeader{}, nil, err
		}
		// Blob payloads are handed to the application (checkpoint and
		// result bytes) and must not cycle through the freelist; every
		// other payload is protocol-internal and pooled.
		var payload []byte
		if h.Type == frameBlob {
			payload = make([]byte, n)
		} else {
			payload = p.t.getBuf(n)
		}
		if _, err := io.ReadFull(p.br, payload); err != nil {
			return frameHeader{}, nil, err
		}
		if frameChecksummed(h.Type) {
			p.rsum = crc32.Update(p.rsum, crcTable, hb[:])
			p.rsum = crc32.Update(p.rsum, crcTable, payload)
		}
		return h, payload, nil
	}
}

// writeCheck emits the running write-direction checksum and resets it;
// the peer's readCheck must observe the identical running sum. The
// payload buffer is pooled and retired at the flush that writes it.
func (p *peerConn) writeCheck(round uint32) error {
	b := p.t.getBuf(checkSize)
	putU32(b, p.wsum)
	if err := p.writeFrame(frameHeader{Type: frameCheck, Round: round, Count: checkSize}, b); err != nil {
		return err
	}
	p.retireBuf(b)
	p.wsum = 0
	return nil
}

// readCheck validates the peer's checksum against the running
// read-direction sum — called before any buffered round payload is
// decoded, so corrupted traffic is rejected, never interpreted.
func (p *peerConn) readCheck(round uint32) error {
	h, payload, err := p.readFrame(frameCheck)
	if err != nil {
		return err
	}
	got := getU32(payload)
	p.t.putBuf(payload)
	if h.Round != round {
		return fmt.Errorf("checksum frame for round %d, want round %d", h.Round, round)
	}
	if got != p.rsum {
		return fmt.Errorf("stream checksum mismatch at round %d: peer wrote %#x, stream hashed to %#x (corrupted traffic)", round, got, p.rsum)
	}
	p.rsum = 0
	return nil
}

// drainToAck discards inbound frames until the rollback ack of the
// given generation, then resets both stream checksums for the next
// attempt. An I/O error means the survivor died too.
func (p *peerConn) drainToAck(gen uint32) error {
	for {
		_ = p.c.SetReadDeadline(time.Now().Add(p.t.timeout))
		var hb [headerSize]byte
		if _, err := io.ReadFull(p.br, hb[:]); err != nil {
			return err
		}
		h, err := parseHeader(hb[:])
		if err != nil {
			return err
		}
		n, err := payloadLen(h)
		if err != nil {
			return err
		}
		if n > 0 {
			if _, err := io.CopyN(io.Discard, p.br, int64(n)); err != nil {
				return err
			}
		}
		if h.Type == frameRollbackAck && h.Round == gen {
			p.wsum, p.rsum = 0, 0
			return nil
		}
	}
}

// netOptions bundles the optional capabilities of a transport: the
// full-mesh data plane (and its peer listener address) and coordinator
// failover (and its standby listener address). Every process of a
// fleet must enable the same capability set — the hello/welcome flags
// reject a mix.
type netOptions struct {
	mesh           bool
	peerListen     string
	failover       bool
	failoverListen string
}

// flags returns the hello/welcome capability bits of these options.
func (o netOptions) flags() uint32 {
	var f uint32
	if o.mesh {
		f |= helloFlagMesh
	}
	if o.failover {
		f |= helloFlagFailover
	}
	return f
}

// options reconstructs the capability set of a live transport.
func (t *NetTransport) options() netOptions {
	return netOptions{mesh: t.mesh, failover: t.failover}
}

// ListenNet binds the coordinator (shard 0) transport for a shards-way
// run over n vertices. It returns after binding; Addr reports the
// bound address to hand to workers, and WaitReady blocks until all
// shards-1 workers have joined.
func ListenNet(addr string, n, shards int, timeout time.Duration) (*NetTransport, error) {
	return listenNet(addr, n, shards, timeout, netOptions{})
}

// ListenMesh is ListenNet with the full-mesh data plane enabled: the
// workers (which must join with JoinMesh) exchange round batches
// directly and this coordinator carries only control, tally, and
// collective frames.
func ListenMesh(addr string, n, shards int, timeout time.Duration) (*NetTransport, error) {
	return listenNet(addr, n, shards, timeout, netOptions{mesh: true})
}

func listenNet(addr string, n, shards int, timeout time.Duration, opt netOptions) (*NetTransport, error) {
	t, err := newNetTransport(n, 0, shards, timeout)
	if err != nil {
		return nil, err
	}
	t.mesh = opt.mesh
	t.failover = opt.failover
	if t.part.p > 1 {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return nil, err
		}
		t.ln = ln
	}
	return t, nil
}

// JoinNet dials the coordinator at addr and joins as the given shard.
// It blocks until the coordinator accepts the handshake.
func JoinNet(addr string, n, shard, shards int, timeout time.Duration) (*NetTransport, error) {
	return joinNet(addr, n, shard, shards, timeout, netOptions{})
}

// JoinMesh is JoinNet with the full-mesh data plane enabled: the
// worker binds a peer listener on peerListen ("127.0.0.1:0" if empty;
// set a routable host for multi-machine runs), announces its address
// to the coordinator during the handshake, and exchanges round
// batches directly with the other workers. The coordinator must have
// been started with ListenMesh — the handshake rejects a mixed
// star/mesh fleet.
func JoinMesh(addr, peerListen string, n, shard, shards int, timeout time.Duration) (*NetTransport, error) {
	return joinNet(addr, n, shard, shards, timeout, netOptions{mesh: true, peerListen: peerListen})
}

func joinNet(addr string, n, shard, shards int, timeout time.Duration, opt netOptions) (*NetTransport, error) {
	t, err := newNetTransport(n, shard, shards, timeout)
	if err != nil {
		return nil, err
	}
	if shard == 0 {
		return nil, fmt.Errorf("dist: shard 0 is the coordinator; use ListenNet")
	}
	t.mesh = opt.mesh
	t.failover = opt.failover
	if t.meshActive() {
		peerListen := opt.peerListen
		if peerListen == "" {
			peerListen = "127.0.0.1:0"
		}
		ln, err := net.Listen("tcp", peerListen)
		if err != nil {
			return nil, fmt.Errorf("dist: binding mesh peer listener %q: %w", peerListen, err)
		}
		t.meshLn = ln
	}
	if t.failover {
		standbyListen := opt.failoverListen
		if standbyListen == "" {
			standbyListen = "127.0.0.1:0"
		}
		ln, err := net.Listen("tcp", standbyListen)
		if err != nil {
			if t.meshLn != nil {
				t.meshLn.Close()
			}
			return nil, fmt.Errorf("dist: binding failover standby listener %q: %w", standbyListen, err)
		}
		t.standby = ln
	}
	fail := func(err error) (*NetTransport, error) {
		if t.meshLn != nil {
			t.meshLn.Close()
			t.meshLn = nil
		}
		if t.standby != nil {
			t.standby.Close()
			t.standby = nil
		}
		return nil, err
	}
	c, err := net.DialTimeout("tcp", addr, t.timeout)
	if err != nil {
		return fail(err)
	}
	t.hub = newPeerConn(t, c)
	t.hub.rollbackOK = true
	// The capability flags ride the otherwise-unused Round field of the
	// hello/welcome headers, leaving the hello payload encoding (and
	// with it every star byte) untouched.
	hh := frameHeader{Type: frameHello, From: uint16(shard), Round: opt.flags()}
	var hb [helloSize]byte
	putHello(hb[:], hello{Version: wireVersion, N: uint64(n), Shard: uint32(shard), Shards: uint32(shards)})
	if err := t.hub.writeFrame(hh, hb[:]); err != nil {
		c.Close()
		return fail(err)
	}
	if t.meshLn != nil {
		peerAddr := []byte(t.meshLn.Addr().String())
		ah := frameHeader{Type: frameMeshAddr, From: uint16(shard), Count: uint32(len(peerAddr))}
		if err := t.hub.writeFrame(ah, peerAddr); err != nil {
			c.Close()
			return fail(err)
		}
	}
	if t.standby != nil {
		standbyAddr := []byte(t.standby.Addr().String())
		fh := frameHeader{Type: frameFailoverAddr, From: uint16(shard), Count: uint32(len(standbyAddr))}
		if err := t.hub.writeFrame(fh, standbyAddr); err != nil {
			c.Close()
			return fail(err)
		}
	}
	if err := t.hub.flush(); err != nil {
		c.Close()
		return fail(err)
	}
	wh, payload, err := t.hub.readFrame(frameWelcome)
	if err != nil {
		c.Close()
		return fail(fmt.Errorf("dist: join handshake: %w (a capability mismatch closes the connection — check that every process agrees on -mesh and -failover)", err))
	}
	if wh.Round != opt.flags() {
		c.Close()
		return fail(fmt.Errorf("dist: capability mismatch: coordinator mesh=%v failover=%v, this worker mesh=%v failover=%v",
			wh.Round&helloFlagMesh != 0, wh.Round&helloFlagFailover != 0, opt.mesh, opt.failover))
	}
	if got := parseHello(payload); got.Version != wireVersion || got.N != uint64(n) || got.Shards != uint32(shards) {
		c.Close()
		return fail(fmt.Errorf("dist: coordinator config mismatch: %+v", got))
	}
	t.hub.startHeartbeats()
	t.ready = true
	return t, nil
}

func newNetTransport(n, shard, shards int, timeout time.Duration) (*NetTransport, error) {
	if shards != graph.ClampShards(n, shards) {
		return nil, fmt.Errorf("dist: %d shards invalid for %d vertices", shards, n)
	}
	if shard < 0 || shard >= shards {
		return nil, fmt.Errorf("dist: shard %d out of range [0,%d)", shard, shards)
	}
	if timeout <= 0 {
		timeout = DefaultNetTimeout
	}
	t := &NetTransport{
		part:    newPartition(n, shards),
		self:    shard,
		x:       newExchanger(n, shards, shards),
		timeout: timeout,
	}
	t.ready = t.part.p == 1
	return t, nil
}

// Addr returns the coordinator's bound listen address.
func (t *NetTransport) Addr() string {
	if t.ln == nil {
		return ""
	}
	return t.ln.Addr().String()
}

// WaitReady accepts and validates the join handshake of every worker.
// Coordinator only; a no-op once ready.
func (t *NetTransport) WaitReady() error {
	if t.ready {
		return nil
	}
	if t.ln == nil {
		return fmt.Errorf("dist: WaitReady on a worker transport")
	}
	if t.peers == nil {
		t.peers = make([]*peerConn, t.part.p)
	}
	missing := make(map[int]bool)
	for s := 1; s < t.part.p; s++ {
		if t.peers[s] == nil {
			missing[s] = true
		}
	}
	if err := t.acceptWorkers(missing); err != nil {
		return err
	}
	t.ready = true
	return nil
}

// acceptWorkers accepts connections until every missing shard has
// joined — the shared join window of bring-up (WaitReady) and
// recovery. Two deliberate behaviors:
//
//   - A connection that fails the handshake — a port scanner, a health
//     check, a mis-configured or duplicate worker — is closed and the
//     window keeps accepting. Strays must never abort a fleet.
//   - The accept deadline slides on every successful join, so each
//     joiner gets its own timeout budget instead of P−1 workers
//     sharing one. (It does not slide on strays, so a hostile drip of
//     garbage cannot hold the window open forever; a stray that
//     connects and sends nothing costs at most one handshake-read
//     timeout.)
func (t *NetTransport) acceptWorkers(missing map[int]bool) error {
	type deadliner interface{ SetDeadline(time.Time) error }
	d, _ := t.ln.(deadliner)
	deadline := time.Now().Add(t.timeout)
	for len(missing) > 0 {
		if d != nil {
			_ = d.SetDeadline(deadline)
		}
		c, err := t.ln.Accept()
		if err != nil {
			return fmt.Errorf("dist: accepting workers (%d shard(s) missing): %w", len(missing), err)
		}
		pc := newPeerConn(t, c)
		s, err := t.acceptHandshake(pc, missing)
		if err != nil {
			c.Close()
			continue
		}
		t.peers[s] = pc
		pc.startHeartbeats()
		delete(missing, s)
		deadline = time.Now().Add(t.timeout)
	}
	return nil
}

// acceptHandshake validates one join: protocol version, global sizes,
// a capability set (star/mesh data plane, failover arming) that
// matches this coordinator's, and a shard id that is in range,
// missing, and not already joined — so a duplicate rejoin after a
// crash is accepted exactly once. In mesh mode the worker's announced
// peer address follows its hello and is recorded in the address book
// (validated here, before any dial, so a bad address is an actionable
// handshake error rather than a mysterious mid-bring-up dial failure
// on some other worker); with failover armed the worker's standby hub
// address follows in turn and is recorded in the failover book.
func (t *NetTransport) acceptHandshake(pc *peerConn, missing map[int]bool) (int, error) {
	fh, payload, err := pc.readFrame(frameHello)
	if err != nil {
		return 0, fmt.Errorf("dist: worker handshake: %w", err)
	}
	h := parseHello(payload)
	if h.Version != wireVersion || h.N != uint64(t.part.n) || h.Shards != uint32(t.part.p) {
		return 0, fmt.Errorf("dist: worker config mismatch: %+v", h)
	}
	s := int(h.Shard)
	if s < 1 || s >= t.part.p || t.peers[s] != nil || !missing[s] {
		return 0, fmt.Errorf("dist: bad or duplicate worker shard %d", s)
	}
	if want := t.options().flags(); fh.Round != want {
		return 0, fmt.Errorf("dist: capability mismatch: coordinator mesh=%v failover=%v, worker shard %d mesh=%v failover=%v",
			t.mesh, t.failover, s, fh.Round&helloFlagMesh != 0, fh.Round&helloFlagFailover != 0)
	}
	if t.meshActive() {
		ah, apayload, err := pc.readFrame(frameMeshAddr)
		if err != nil {
			return 0, fmt.Errorf("dist: worker shard %d mesh address: %w", s, err)
		}
		addr := string(apayload)
		t.putBuf(apayload)
		if int(ah.From) != s {
			return 0, fmt.Errorf("dist: mesh address from shard %d inside shard %d's handshake", ah.From, s)
		}
		if host, port, err := net.SplitHostPort(addr); err != nil || host == "" || port == "" {
			return 0, fmt.Errorf("dist: worker shard %d announced unusable peer address %q (want host:port): %v", s, addr, err)
		}
		if t.meshAddrs == nil {
			t.meshAddrs = make([]string, t.part.p)
		}
		t.meshAddrs[s] = addr
	}
	if t.failover {
		ah, apayload, err := pc.readFrame(frameFailoverAddr)
		if err != nil {
			return 0, fmt.Errorf("dist: worker shard %d failover standby address: %w", s, err)
		}
		addr := string(apayload)
		t.putBuf(apayload)
		if int(ah.From) != s {
			return 0, fmt.Errorf("dist: failover address from shard %d inside shard %d's handshake", ah.From, s)
		}
		if host, port, err := net.SplitHostPort(addr); err != nil || host == "" || port == "" {
			return 0, fmt.Errorf("dist: worker shard %d announced unusable standby address %q (want host:port): %v", s, addr, err)
		}
		if t.failAddrs == nil {
			t.failAddrs = make([]string, t.part.p)
		}
		t.failAddrs[s] = addr
	}
	wf := frameHeader{Type: frameWelcome, Round: t.options().flags()}
	var wb [helloSize]byte
	putHello(wb[:], hello{Version: wireVersion, N: uint64(t.part.n), Shard: h.Shard, Shards: uint32(t.part.p)})
	if err := pc.writeFrame(wf, wb[:]); err != nil {
		return 0, err
	}
	if err := pc.flush(); err != nil {
		return 0, err
	}
	return s, nil
}

// beginAttempt resets the per-attempt protocol state on every process:
// the collective sequence restarts at zero and any staged or delivered
// traffic of an aborted attempt is dropped. Called at the top of every
// runNetJob attempt, so a replay starts from a bit-identical state.
func (t *NetTransport) beginAttempt() {
	t.seq = 0
	for r := 0; r < t.part.p; r++ {
		_ = t.x.takeRow(t.self, r)
	}
	t.x.clearMailboxes(t.self)
}

// recoverWorkers restores the fleet after a worker failure: bump the
// recovery generation, announce the rollback to the survivors and
// drain each to its ack (a survivor that fails the drain is dead too —
// e.g. one that finished and exited before the rollback reached it),
// close and respawn every dead shard through the hook, and re-run the
// join window for the missing shards. On success the transport is
// ready for a fresh attempt; the caller re-runs the job, which replays
// deterministically from the coordinator's checkpoint.
func (t *NetTransport) recoverWorkers(first int, respawn func(shard int, addr string), budget *int) error {
	if t.self != 0 || t.ln == nil {
		return fmt.Errorf("dist: recovery is coordinator-only")
	}
	if first < 1 || first >= t.part.p {
		return fmt.Errorf("dist: cannot recover shard %d", first)
	}
	t.generation++
	gen := t.generation
	dead := map[int]bool{first: true}
	for w := 1; w < t.part.p; w++ {
		if dead[w] || t.peers[w] == nil {
			continue
		}
		p := t.peers[w]
		if err := p.writeFrame(frameHeader{Type: frameRollback, Round: gen}, nil); err != nil {
			dead[w] = true
			continue
		}
		if err := p.flush(); err != nil {
			dead[w] = true
		}
	}
	for w := 1; w < t.part.p; w++ {
		if dead[w] || t.peers[w] == nil {
			continue
		}
		if err := t.peers[w].drainToAck(gen); err != nil {
			dead[w] = true
		}
	}
	var toRespawn []int
	for w := 1; w < t.part.p; w++ {
		if dead[w] || t.peers[w] == nil {
			toRespawn = append(toRespawn, w)
		}
	}
	sort.Ints(toRespawn)
	if len(toRespawn) > *budget {
		return fmt.Errorf("dist: %d worker(s) dead but only %d respawn(s) left in the budget", len(toRespawn), *budget)
	}
	*budget -= len(toRespawn)
	missing := make(map[int]bool)
	for _, w := range toRespawn {
		if t.peers[w] != nil {
			_ = t.peers[w].close()
			t.peers[w] = nil
		}
		missing[w] = true
		respawn(w, t.Addr())
	}
	return t.acceptWorkers(missing)
}

// ackRollback is the worker side of recovery: tear down the mesh data
// plane (the dead shard's links are gone and every survivor rebuilds
// from the fresh address book next attempt), reset both stream
// checksums, and acknowledge the rollback generation, after which the
// worker re-runs the attempt from the top.
func (t *NetTransport) ackRollback(gen uint32) error {
	if t.hub == nil {
		return fmt.Errorf("dist: ackRollback on a coordinator transport")
	}
	t.teardownMesh()
	t.hub.wsum, t.hub.rsum = 0, 0
	if err := t.hub.writeFrame(frameHeader{Type: frameRollbackAck, Round: gen}, nil); err != nil {
		return err
	}
	return t.hub.flush()
}

// Close tears the connections down.
func (t *NetTransport) Close() error {
	var first error
	if t.hub != nil {
		first = t.hub.close()
	}
	for _, p := range t.peers {
		if p != nil {
			if err := p.close(); err != nil && first == nil {
				first = err
			}
		}
	}
	t.teardownMesh()
	if t.meshLn != nil {
		if err := t.meshLn.Close(); err != nil && first == nil {
			first = err
		}
	}
	if t.standby != nil {
		if err := t.standby.Close(); err != nil && first == nil {
			first = err
		}
	}
	if t.ln != nil {
		if err := t.ln.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// WireBytes returns the bytes this process has written to the network
// (frame headers included) — the transport's own honesty counter, next
// to the model-level Stats.CrossShardWords. Heartbeats are excluded:
// they are timing-dependent, and this counter is deterministic.
func (t *NetTransport) WireBytes() int64 { return t.wireBytes }

// DataWireBytes returns the worker↔worker round-batch subset of
// WireBytes this process wrote — the bytes the star/mesh topology
// choice governs (the star's fleet total is exactly twice the mesh's
// for the same run, which the wire-bytes golden test pins).
func (t *NetTransport) DataWireBytes() int64 { return t.dataBytes }

// Shard returns this process's shard id.
func (t *NetTransport) Shard() int { return t.self }

// fatal aborts the run on an unrecoverable transport failure.
func (t *NetTransport) fatal(err error) {
	panic(&NetError{Err: err})
}

// peerFail wraps a coordinator-side failure on one worker's connection
// so the recovery loop can attribute it to a shard. A faultReport in
// the chain overrides the attribution: the connection it arrived on
// belongs to a live reporter parked for the rollback — the shard to
// recover is the suspect whose link died.
func (t *NetTransport) peerFail(shard int, err error) error {
	var fr *faultReport
	if errors.As(err, &fr) && fr.suspect >= 1 && fr.suspect < t.part.p {
		return &workerFailure{shard: fr.suspect, err: err}
	}
	return &workerFailure{shard: shard, err: err}
}

func (t *NetTransport) mustReady() {
	if !t.ready {
		t.fatal(fmt.Errorf("transport used before WaitReady"))
	}
}

// Shards returns the global shard count P.
func (t *NetTransport) Shards() int { return t.part.p }

// ShardOf returns the shard owning vertex v.
func (t *NetTransport) ShardOf(v int32) int { return t.part.shardOf(v) }

// Workers returns P: the execution partition spans every process, of
// which exactly one worker (this shard) runs locally.
func (t *NetTransport) Workers() int { return t.part.p }

// ForWorkers runs body for this process's own shard only — the other
// workers are other processes executing the same phase of the same
// schedule.
func (t *NetTransport) ForWorkers(body func(worker, lo, hi int)) {
	if t.part.n <= 0 {
		return
	}
	body(t.self, t.part.bounds[t.self], t.part.bounds[t.self+1])
}

// Send stages m for vertex `to`. All staging must land in this
// shard's row of the exchange core — sender-staged kinds because From
// is owned here, receiver-staged kinds because `to` is. A message the
// discipline routes to another shard's row could never be flushed by
// this process, so it is a fatal contract violation rather than a
// silent drop.
func (t *NetTransport) Send(_ int, to int32, m Message) {
	if d := t.x.stagingShard(to, m); d != t.self {
		t.fatal(fmt.Errorf("message for vertex %d from %d staged on shard %d, not this shard %d (staging discipline violation)",
			to, m.From, d, t.self))
	}
	t.x.send(to, m)
}

// Recv returns the messages delivered to v by the last EndRound.
func (t *NetTransport) Recv(_ int, v int32) []Message { return t.x.recv(v) }

// localTally bills every message this process staged in the closing
// round (sender-side billing; summed across processes by the handshake
// it equals the receiver-side billing of the in-process transports).
func (t *NetTransport) localTally() RoundTally {
	var tally RoundTally
	for r := 0; r < t.part.p; r++ {
		for _, env := range t.x.staged[t.self][r] {
			t.x.bill(&tally, env)
		}
	}
	return tally
}

// encodeEnvelopes packs a staged batch into a pooled buffer; the
// caller hands the buffer to writeFrame and retires it at flush.
func (t *NetTransport) encodeEnvelopes(envs []envelope) []byte {
	buf := t.getBuf(len(envs) * envelopeSize)
	for i, env := range envs {
		putEnvelope(buf[i*envelopeSize:], env)
	}
	return buf
}

// decodeEnvelopes parses a batch payload into the transport's reusable
// envelope scratch — valid only until the next call. deliverInto
// copies the messages into mailboxes, so the barrier decodes its
// batches one at a time through this single buffer.
func (t *NetTransport) decodeEnvelopes(payload []byte) []envelope {
	n := len(payload) / envelopeSize
	if cap(t.envScratch) < n {
		t.envScratch = make([]envelope, n)
	}
	envs := t.envScratch[:n]
	for i := range envs {
		envs[i] = parseEnvelope(payload[i*envelopeSize:])
	}
	return envs
}

// EndRound is the bulk-synchronous barrier: flush staged batches,
// exchange them through the coordinator, reduce the round tally, and
// drain the inbound batches into the mailboxes in staging-shard order
// (identical to ShardedTransport's drain order, so mailbox order — and
// with it every decision — is transport-independent).
func (t *NetTransport) EndRound(round int) RoundTally {
	t.mustReady()
	local := t.localTally()
	if t.part.p == 1 {
		var discard RoundTally
		t.x.clearMailboxes(0)
		t.x.deliverInto(&discard, t.x.takeRow(0, 0))
		return local
	}
	var global RoundTally
	var err error
	switch {
	case t.self == 0 && t.meshActive():
		global, err = t.endRoundMeshCoordinator(round, local)
	case t.self == 0:
		global, err = t.endRoundCoordinator(round, local)
	case t.meshActive():
		global, err = t.endRoundMeshWorker(round, local)
	default:
		global, err = t.endRoundWorker(round, local)
	}
	if err != nil {
		t.fatal(fmt.Errorf("round %d: %w", round, err))
	}
	return global
}

func (t *NetTransport) endRoundWorker(round int, local RoundTally) (RoundTally, error) {
	self := t.self
	for r := 0; r < t.part.p; r++ {
		if r == self {
			continue
		}
		batch := t.x.takeRow(self, r)
		h := frameHeader{Type: frameRound, From: uint16(self), To: uint16(r), Round: uint32(round), Count: uint32(len(batch))}
		payload := t.encodeEnvelopes(batch)
		if err := t.hub.writeFrame(h, payload); err != nil {
			return RoundTally{}, err
		}
		t.hub.retireBuf(payload)
	}
	var tb [tallySize]byte
	putTally(tb[:], local)
	if err := t.hub.writeFrame(frameHeader{Type: frameTally, From: uint16(self), Round: uint32(round)}, tb[:]); err != nil {
		return RoundTally{}, err
	}
	if err := t.hub.writeCheck(uint32(round)); err != nil {
		return RoundTally{}, err
	}
	if err := t.hub.flush(); err != nil {
		return RoundTally{}, err
	}

	// Read the whole inbound barrier raw first — the batches, the global
	// tally, and the coordinator's checksum — and decode only after the
	// stream checksum verifies: corrupted traffic is rejected, never
	// interpreted as messages.
	payloads := make([][]byte, t.part.p)
	for d := 0; d < t.part.p; d++ {
		if d == self {
			continue
		}
		h, payload, err := t.hub.readFrame(frameRound)
		if err != nil {
			return RoundTally{}, err
		}
		if int(h.From) != d || int(h.To) != self || int(h.Round) != round {
			return RoundTally{}, fmt.Errorf("misrouted batch %+v (want from %d to %d round %d)", h, d, self, round)
		}
		payloads[d] = payload
	}
	th, tallyPayload, err := t.hub.readFrame(frameTally)
	if err != nil {
		return RoundTally{}, err
	}
	if int(th.Round) != round {
		return RoundTally{}, fmt.Errorf("global tally for round %d, want round %d", th.Round, round)
	}
	global := parseTally(tallyPayload)
	t.putBuf(tallyPayload)
	if err := t.hub.readCheck(uint32(round)); err != nil {
		return RoundTally{}, err
	}

	t.x.clearMailboxes(self)
	var discard RoundTally
	for d := 0; d < t.part.p; d++ {
		if d == self {
			t.x.deliverInto(&discard, t.x.takeRow(self, self))
			continue
		}
		t.x.deliverInto(&discard, t.decodeEnvelopes(payloads[d]))
		t.putBuf(payloads[d])
	}
	return global, nil
}

func (t *NetTransport) endRoundCoordinator(round int, local RoundTally) (RoundTally, error) {
	p := t.part.p
	global := local
	// batches[origin][dest] holds the raw (already encoded) payloads of
	// the workers' outgoing frames; routing forwards them verbatim. Each
	// worker's stream checksum is verified as soon as its barrier frames
	// are in — before anything of this round is decoded.
	batches := make([][][]byte, p)
	for w := 1; w < p; w++ {
		batches[w] = make([][]byte, p)
		seen := 0
		for seen < p-1 {
			h, payload, err := t.peers[w].readFrame(frameRound)
			if err != nil {
				return RoundTally{}, t.peerFail(w, fmt.Errorf("reading shard %d: %w", w, err))
			}
			if int(h.From) != w || int(h.To) == w || int(h.To) >= p || int(h.Round) != round || batches[w][h.To] != nil {
				return RoundTally{}, t.peerFail(w, fmt.Errorf("bad batch header %+v from shard %d round %d", h, w, round))
			}
			batches[w][h.To] = payload
			seen++
		}
		th, tb, err := t.peers[w].readFrame(frameTally)
		if err != nil {
			return RoundTally{}, t.peerFail(w, fmt.Errorf("reading shard %d tally: %w", w, err))
		}
		if int(th.From) != w || int(th.Round) != round {
			return RoundTally{}, t.peerFail(w, fmt.Errorf("bad tally header %+v from shard %d round %d", th, w, round))
		}
		wt := parseTally(tb)
		t.putBuf(tb)
		if err := t.peers[w].readCheck(uint32(round)); err != nil {
			return RoundTally{}, t.peerFail(w, fmt.Errorf("shard %d: %w", w, err))
		}
		global = mergeTallies([]RoundTally{global, wt})
	}
	var gtb [tallySize]byte
	putTally(gtb[:], global)
	for r := 1; r < p; r++ {
		for d := 0; d < p; d++ {
			if d == r {
				continue
			}
			var payload []byte
			if d == 0 {
				payload = t.encodeEnvelopes(t.x.takeRow(0, r))
			} else {
				// Relay the worker's batch verbatim; its pooled buffer
				// is owned by peer r's batch until the flush below.
				payload = batches[d][r]
			}
			h := frameHeader{Type: frameRound, From: uint16(d), To: uint16(r), Round: uint32(round), Count: uint32(len(payload) / envelopeSize)}
			if err := t.peers[r].writeFrame(h, payload); err != nil {
				return RoundTally{}, t.peerFail(r, err)
			}
			t.peers[r].retireBuf(payload)
		}
		if err := t.peers[r].writeFrame(frameHeader{Type: frameTally, Round: uint32(round)}, gtb[:]); err != nil {
			return RoundTally{}, t.peerFail(r, err)
		}
		if err := t.peers[r].writeCheck(uint32(round)); err != nil {
			return RoundTally{}, t.peerFail(r, err)
		}
		if err := t.peers[r].flush(); err != nil {
			return RoundTally{}, t.peerFail(r, err)
		}
	}
	t.x.clearMailboxes(0)
	var discard RoundTally
	for d := 0; d < p; d++ {
		if d == 0 {
			t.x.deliverInto(&discard, t.x.takeRow(0, 0))
			continue
		}
		t.x.deliverInto(&discard, t.decodeEnvelopes(batches[d][0]))
		t.putBuf(batches[d][0])
	}
	return global, nil
}

// AllMaxInt32 reduces x to its maximum across all shards (the
// control-plane convergecast of collectiveTransport). Like every
// collective, the frames carry the attempt's collective sequence
// number, validated on both sides.
func (t *NetTransport) AllMaxInt32(x int32) int32 {
	t.mustReady()
	t.seq++
	if t.part.p == 1 {
		return x
	}
	var vb [4]byte
	if t.self != 0 {
		putU32(vb[:], uint32(x))
		if err := t.hub.writeFrame(frameHeader{Type: frameMax, From: uint16(t.self), Round: t.seq}, vb[:]); err != nil {
			t.fatal(err)
		}
		if err := t.hub.flush(); err != nil {
			t.fatal(err)
		}
		h, payload, err := t.hub.readFrame(frameMax)
		if err != nil {
			t.fatal(err)
		}
		if h.Round != t.seq {
			t.fatal(fmt.Errorf("AllMaxInt32 result for collective %d, want %d", h.Round, t.seq))
		}
		v := int32(getU32(payload))
		t.putBuf(payload)
		return v
	}
	for w := 1; w < t.part.p; w++ {
		h, payload, err := t.peers[w].readFrame(frameMax)
		if err != nil {
			t.fatal(t.peerFail(w, err))
		}
		if int(h.From) != w || h.Round != t.seq {
			t.fatal(t.peerFail(w, fmt.Errorf("AllMaxInt32 contribution %+v from shard %d, want collective %d", h, w, t.seq)))
		}
		v := int32(getU32(payload))
		t.putBuf(payload)
		if v > x {
			x = v
		}
	}
	putU32(vb[:], uint32(x))
	for w := 1; w < t.part.p; w++ {
		if err := t.peers[w].writeFrame(frameHeader{Type: frameMax, Round: t.seq}, vb[:]); err != nil {
			t.fatal(t.peerFail(w, err))
		}
		if err := t.peers[w].flush(); err != nil {
			t.fatal(t.peerFail(w, err))
		}
	}
	return x
}

// AllOrBits ORs the bit vector across all shards, in place.
func (t *NetTransport) AllOrBits(bits []uint64) []uint64 {
	t.mustReady()
	t.seq++
	if t.part.p == 1 {
		return bits
	}
	buf := t.getBuf(len(bits) * 8)
	packWords(buf, bits)
	h := frameHeader{Type: frameOr, From: uint16(t.self), Round: t.seq, Count: uint32(len(bits))}
	if t.self != 0 {
		if err := t.hub.writeFrame(h, buf); err != nil {
			t.fatal(err)
		}
		if err := t.hub.flush(); err != nil {
			t.fatal(err)
		}
		rh, payload, err := t.hub.readFrame(frameOr)
		if err != nil {
			t.fatal(err)
		}
		if rh.Round != t.seq {
			t.fatal(fmt.Errorf("AllOrBits result for collective %d, want %d", rh.Round, t.seq))
		}
		if len(payload) != len(buf) {
			t.fatal(fmt.Errorf("AllOrBits length mismatch: %d vs %d", len(payload), len(buf)))
		}
		orWordsInto(bits, payload, true)
		t.putBuf(payload)
		t.putBuf(buf)
		return bits
	}
	for w := 1; w < t.part.p; w++ {
		rh, payload, err := t.peers[w].readFrame(frameOr)
		if err != nil {
			t.fatal(t.peerFail(w, err))
		}
		if int(rh.From) != w || rh.Round != t.seq {
			t.fatal(t.peerFail(w, fmt.Errorf("AllOrBits contribution %+v from shard %d, want collective %d", rh, w, t.seq)))
		}
		if len(payload) != len(buf) {
			t.fatal(t.peerFail(w, fmt.Errorf("AllOrBits length mismatch from shard %d: %d vs %d", w, len(payload), len(buf))))
		}
		orWordsInto(bits, payload, false)
		t.putBuf(payload)
	}
	packWords(buf, bits)
	for w := 1; w < t.part.p; w++ {
		if err := t.peers[w].writeFrame(frameHeader{Type: frameOr, Round: t.seq, Count: uint32(len(bits))}, buf); err != nil {
			t.fatal(t.peerFail(w, err))
		}
		if err := t.peers[w].flush(); err != nil {
			t.fatal(t.peerFail(w, err))
		}
	}
	// Every peer's batch is flushed, so nothing references buf anymore.
	t.putBuf(buf)
	return bits
}

// AllGatherInt32s merges the shards' sorted, disjoint id lists into
// the globally sorted union: workers converge their contributions on
// the coordinator, which k-way-merges them (the contributions are
// sorted and disjoint, so the merge is a linear zip) and broadcasts
// the union back. O(total list length) words on the wire — the
// control-plane cost of the bundle-id renumbering, which replaced the
// Θ(m)-bit mask merge of the sparse-table era.
func (t *NetTransport) AllGatherInt32s(xs []int32) []int32 {
	t.mustReady()
	t.seq++
	if t.part.p == 1 {
		return xs
	}
	if t.self != 0 {
		contrib := packInt32s(xs)
		if err := t.hub.writeFrame(frameHeader{Type: frameGather, From: uint16(t.self), Round: t.seq, Count: uint32(len(xs))}, contrib); err != nil {
			t.fatal(err)
		}
		if err := t.hub.flush(); err != nil {
			t.fatal(err)
		}
		h, payload, err := t.hub.readFrame(frameGather)
		if err != nil {
			t.fatal(err)
		}
		if h.Round != t.seq {
			t.fatal(fmt.Errorf("AllGatherInt32s result for collective %d, want %d", h.Round, t.seq))
		}
		merged := parseInt32s(payload)
		t.putBuf(payload)
		return merged
	}
	lists := make([][]int32, t.part.p)
	lists[0] = xs
	for w := 1; w < t.part.p; w++ {
		h, payload, err := t.peers[w].readFrame(frameGather)
		if err != nil {
			t.fatal(t.peerFail(w, err))
		}
		if int(h.From) != w || h.Round != t.seq {
			t.fatal(t.peerFail(w, fmt.Errorf("AllGatherInt32s contribution %+v from shard %d, want collective %d", h, w, t.seq)))
		}
		lists[w] = parseInt32s(payload)
		t.putBuf(payload)
	}
	merged := mergeSortedInt32s(lists)
	buf := packInt32s(merged)
	for w := 1; w < t.part.p; w++ {
		if err := t.peers[w].writeFrame(frameHeader{Type: frameGather, Round: t.seq, Count: uint32(len(merged))}, buf); err != nil {
			t.fatal(t.peerFail(w, err))
		}
		if err := t.peers[w].flush(); err != nil {
			t.fatal(t.peerFail(w, err))
		}
	}
	return merged
}

// mergeParallelMin is the total element count above which a level of
// pairwise merges runs its zips concurrently. Below it the goroutine
// fork/join costs more than the merge.
const mergeParallelMin = 1 << 15

// mergeSortedInt32s merges sorted disjoint lists into one sorted list
// by rounds of pairwise two-way zips — O(total · log P) work. Above
// mergeParallelMin total elements the zips of one level run in
// parallel (they touch disjoint inputs and outputs, and each level
// joins before the next starts, so the result is deterministic).
func mergeSortedInt32s(lists [][]int32) []int32 {
	if len(lists) == 0 {
		return nil
	}
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	for len(lists) > 1 {
		pairs := len(lists) / 2
		merged := make([][]int32, (len(lists)+1)/2)
		if len(lists)%2 == 1 {
			merged[len(merged)-1] = lists[len(lists)-1]
		}
		if pairs > 1 && total >= mergeParallelMin {
			var wg sync.WaitGroup
			wg.Add(pairs)
			for i := 0; i < pairs; i++ {
				go func(i int) {
					defer wg.Done()
					merged[i] = mergeTwoInt32s(lists[2*i], lists[2*i+1])
				}(i)
			}
			wg.Wait()
		} else {
			for i := 0; i < pairs; i++ {
				merged[i] = mergeTwoInt32s(lists[2*i], lists[2*i+1])
			}
		}
		lists = merged
	}
	return lists[0]
}

// mergeTwoInt32s zips two sorted lists.
func mergeTwoInt32s(a, b []int32) []int32 {
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

func packInt32s(xs []int32) []byte {
	buf := make([]byte, len(xs)*4)
	for i, x := range xs {
		binary.LittleEndian.PutUint32(buf[i*4:], uint32(x))
	}
	return buf
}

func parseInt32s(payload []byte) []int32 {
	xs := make([]int32, len(payload)/4)
	for i := range xs {
		xs[i] = int32(binary.LittleEndian.Uint32(payload[i*4:]))
	}
	return xs
}

// BroadcastBlob ships an opaque application payload from the
// coordinator to every worker (workers pass nil and receive it).
func (t *NetTransport) BroadcastBlob(b []byte) ([]byte, error) {
	if err := t.WaitReady(); err != nil {
		return nil, err
	}
	t.seq++
	if t.part.p == 1 {
		return b, nil
	}
	if t.self != 0 {
		h, payload, err := t.hub.readFrame(frameBlob)
		if err != nil {
			return nil, err
		}
		if h.Round != t.seq {
			return nil, fmt.Errorf("dist: broadcast blob for collective %d, want %d", h.Round, t.seq)
		}
		return payload, nil
	}
	for w := 1; w < t.part.p; w++ {
		if err := t.peers[w].writeFrame(frameHeader{Type: frameBlob, Round: t.seq, Count: uint32(len(b))}, b); err != nil {
			return nil, t.peerFail(w, err)
		}
		if err := t.peers[w].flush(); err != nil {
			return nil, t.peerFail(w, err)
		}
	}
	return b, nil
}

// GatherBlobs ships every process's payload to the coordinator, which
// receives them indexed by shard (its own included); workers get nil.
func (t *NetTransport) GatherBlobs(b []byte) ([][]byte, error) {
	if err := t.WaitReady(); err != nil {
		return nil, err
	}
	t.seq++
	if t.part.p == 1 {
		return [][]byte{b}, nil
	}
	if t.self != 0 {
		if err := t.hub.writeFrame(frameHeader{Type: frameBlob, From: uint16(t.self), Round: t.seq, Count: uint32(len(b))}, b); err != nil {
			return nil, err
		}
		return nil, t.hub.flush()
	}
	out := make([][]byte, t.part.p)
	out[0] = b
	for w := 1; w < t.part.p; w++ {
		h, payload, err := t.peers[w].readFrame(frameBlob)
		if err != nil {
			return nil, t.peerFail(w, fmt.Errorf("gathering from shard %d: %w", w, err))
		}
		if int(h.From) != w || h.Round != t.seq {
			return nil, t.peerFail(w, fmt.Errorf("dist: gathered blob %+v from shard %d, want collective %d", h, w, t.seq))
		}
		out[w] = payload
	}
	return out, nil
}

func putU32(b []byte, v uint32) { binary.LittleEndian.PutUint32(b, v) }

func getU32(b []byte) uint32 { return binary.LittleEndian.Uint32(b) }

func packWords(buf []byte, words []uint64) {
	for i, w := range words {
		binary.LittleEndian.PutUint64(buf[i*8:], w)
	}
}

// orWordsInto folds the packed payload into words; replace overwrites
// instead of ORing (used when the payload is already the global OR).
func orWordsInto(words []uint64, payload []byte, replace bool) {
	for i := range words {
		w := binary.LittleEndian.Uint64(payload[i*8:])
		if replace {
			words[i] = w
		} else {
			words[i] |= w
		}
	}
}
