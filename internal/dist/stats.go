package dist

import (
	"fmt"
	"strings"
)

// Stats is the communication ledger of a simulated distributed
// computation: the quantities Theorems 2 and 5 bound. One "word" is one
// O(log n)-bit value (a vertex id, an edge id, or a packed small
// integer); a message is one word-bounded payload crossing one edge in
// one synchronous round.
//
// Rounds, Messages, Words, and the per-phase breakdown are
// transport-independent: the sharded transport reports exactly the
// same values as the in-memory one for equal seeds (the regression
// tests pin this). The CrossShard counters and Shards are the only
// transport-dependent rows — they split the same traffic by whether it
// stayed within one shard or crossed between two.
type Stats struct {
	// Rounds is the number of synchronous communication rounds.
	Rounds int
	// Messages is the total number of messages delivered.
	Messages int64
	// Words is the total number of words carried by those messages.
	Words int64
	// MaxMessageWords is the largest single-message payload observed,
	// in words. The paper's algorithms never exceed a small constant.
	MaxMessageWords int
	// CrossShardMessages is the subset of Messages whose sender and
	// recipient are owned by different shards of the transport — the
	// traffic a multi-machine deployment would put on the wire. Zero
	// for the in-memory transport and for a single shard.
	CrossShardMessages int64
	// CrossShardWords is the word volume of CrossShardMessages.
	CrossShardWords int64
	// Shards is the transport's shard count (1 for in-memory).
	Shards int
	// Phases is the per-phase breakdown; phases with equal names are
	// merged, so iterated algorithms report one row per logical stage
	// (e.g. spanner/exchange, sample) rather than per repetition.
	Phases []PhaseStats
}

// PhaseStats is the ledger of one named stage of the computation.
type PhaseStats struct {
	Name               string
	Rounds             int
	Messages           int64
	Words              int64
	CrossShardMessages int64
	CrossShardWords    int64
}

// String renders the ledger compactly for logs and examples.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dist{rounds=%d msgs=%d words=%d maxw=%d", s.Rounds, s.Messages, s.Words, s.MaxMessageWords)
	if s.Shards > 1 {
		fmt.Fprintf(&b, " shards=%d xmsgs=%d xwords=%d", s.Shards, s.CrossShardMessages, s.CrossShardWords)
	}
	for _, p := range s.Phases {
		fmt.Fprintf(&b, " %s:%d/%d", p.Name, p.Rounds, p.Messages)
	}
	b.WriteByte('}')
	return b.String()
}
