package dist

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

const memTestTimeout = 30 * time.Second

// The memory regression suite: the compacted local-id partition views
// must keep a worker's edge-table and mask footprint at
// O((n + m_incident)) words — proportional to the edges the shard
// actually touches, never to the global edge count. These tests pin
// the bound three ways: statically (table lengths of a freshly built
// view), dynamically (peak footprint across the rounds of a real
// multi-process loopback run, per worker), and at the allocator
// (building a partition view must not allocate anywhere near the
// Θ(m)-word sparse table it replaced).

// TestRunAllocationBudget pins the buffer-reuse work of the round
// loop at the allocator: one sparsification run's TotalAlloc must stay
// under a budget set just below the pre-pooling numbers. Before the
// engine scratch freelists and the spanner's label ping-pong landed,
// this workload allocated 25.89 MB (Mem) and 23.40 MB (Sharded 4) per
// run; after, 24.07 MB and 21.57 MB — so budgets of 25.0/22.5 MB trip
// if the pooling is reverted while leaving ~4% headroom for runtime
// drift. Measurements are stable to ~0.03% across runs here; the
// remaining traffic is append-growth of per-round collections, which
// the pools deliberately do not chase.
func TestRunAllocationBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement skipped in -short")
	}
	g := gen.Gnp(2000, 0.01, 7)
	for _, tc := range []struct {
		name   string
		spec   TransportSpec
		budget uint64
	}{
		{"mem", Mem(), 25_000_000},
		{"sharded4", Sharded(4), 22_500_000},
	} {
		job := SparsifyJob(0.5, 4, core.DefaultConfig(11))
		run := func() {
			if _, err := Run(NewEngine(tc.spec, g), job); err != nil {
				t.Fatal(err)
			}
		}
		run() // warm: lazily initialized runtime state is not the run's bill
		best := uint64(0)
		for i := 0; i < 3; i++ {
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			run()
			runtime.ReadMemStats(&after)
			if d := after.TotalAlloc - before.TotalAlloc; best == 0 || d < best {
				best = d
			}
		}
		t.Logf("%s: TotalAlloc per run = %d bytes (budget %d)", tc.name, best, tc.budget)
		if best > tc.budget {
			t.Errorf("%s: run allocated %d bytes, budget %d — buffer pooling regressed?", tc.name, best, tc.budget)
		}
	}
}

// TestPartViewFootprintScalesWithShards: the edge-indexed tables of a
// partition view are sized by the shard's incident edge count, so the
// per-worker maximum must shrink as P grows and sit far below the full
// view's Θ(m) table.
func TestPartViewFootprintScalesWithShards(t *testing.T) {
	g := gen.Grid2D(40, 50) // boundary edges are O(cols) per shard cut
	fullWords := newFullView(g).tableWords()
	maxWords := map[int]int{}
	for _, p := range []int{2, 8} {
		for s := 0; s < p; s++ {
			part := graph.PartitionOf(g, s, p)
			v := newPartView(part.N, part.M, part.Lo, part.Hi, part.IDs, part.Edges)
			if v.localCount() != len(part.IDs) {
				t.Fatalf("P=%d shard %d: view holds %d edges, partition has %d incident",
					p, s, v.localCount(), len(part.IDs))
			}
			if w := v.tableWords(); w > maxWords[p] {
				maxWords[p] = w
			}
		}
	}
	if maxWords[8] >= maxWords[2] {
		t.Fatalf("8-way shard tables (%d words) do not shrink below 2-way (%d words)",
			maxWords[8], maxWords[2])
	}
	// On this grid an 8-way shard touches ~m/8 + boundary edges; a
	// third of the full table is an order of magnitude of slack.
	if maxWords[8] > fullWords/3 {
		t.Fatalf("8-way shard tables (%d words) are not O(m_incident) against the full %d",
			maxWords[8], fullWords)
	}
	if maxWords[2] > 2*fullWords/3 {
		t.Fatalf("2-way shard tables (%d words) are not O(m_incident) against the full %d",
			maxWords[2], fullWords)
	}
}

// TestPartitionRunPeakFootprint runs the real multi-process
// loopback protocol and pins the per-worker peak across every round's
// working view: it must scale down with P and stay below the
// single-process peak — the enforced form of the old "memory honesty"
// caveat, which conceded Θ(m) words per worker per round.
func TestPartitionRunPeakFootprint(t *testing.T) {
	g := gen.Grid2D(40, 50)
	job := SparsifyJob(0.75, 4, core.DefaultConfig(11))
	mem, err := Run(NewEngine(Mem(), g), job)
	if err != nil {
		t.Fatal(err)
	}
	if mem.PeakViewWords < 3*g.M() {
		t.Fatalf("single-process peak %d words does not even hold the edge table of m=%d", mem.PeakViewWords, g.M())
	}
	peaks := map[int]int{}
	for _, p := range []int{2, 8} {
		res, err := Run(NewEngine(Loopback(p).WithTimeout(memTestTimeout), g), job)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if res.PeakViewWords <= 0 {
			t.Fatalf("P=%d: no peak footprint gathered", p)
		}
		peaks[p] = res.PeakViewWords
	}
	if peaks[8] >= peaks[2] {
		t.Fatalf("per-worker peak did not shrink with P: P=8 %d words vs P=2 %d", peaks[8], peaks[2])
	}
	if peaks[2] >= mem.PeakViewWords {
		t.Fatalf("per-worker peak at P=2 (%d words) not below the single-process Θ(m) peak (%d)",
			peaks[2], mem.PeakViewWords)
	}
	if peaks[8] > mem.PeakViewWords/3 {
		t.Fatalf("per-worker peak at P=8 (%d words) is not O(m_incident) against the full %d",
			peaks[8], mem.PeakViewWords)
	}
}

// TestPartViewAllocationIsLocal takes the bound to the allocator:
// building one shard's view of an 8-way split must allocate well under
// half of the 24·m-byte sparse global-id table the pre-compaction
// implementation allocated for every view, every round.
func TestPartViewAllocationIsLocal(t *testing.T) {
	g := gen.Grid2D(80, 160)
	part := graph.PartitionOf(g, 3, 8)
	sparseBytes := uint64(part.M) * 24
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	v := newPartView(part.N, part.M, part.Lo, part.Hi, part.IDs, part.Edges)
	runtime.ReadMemStats(&after)
	alloc := after.TotalAlloc - before.TotalAlloc
	runtime.KeepAlive(v)
	if alloc >= sparseBytes/2 {
		t.Fatalf("newPartView allocated %d bytes; the Θ(m) sparse table it replaced was %d", alloc, sparseBytes)
	}
}

// TestPartViewRejectsOverflowIDSpace: the boundary guard is reachable
// on partition views without allocating 2^31 edges — the global id
// space is a plain int the view must refuse to index past int32.
func TestPartViewRejectsOverflowIDSpace(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("newPartView accepted a global id space past the int32 boundary")
		}
	}()
	newPartView(2, graph.MaxEdges+1, 0, 2, []int32{0}, []graph.Edge{{U: 0, V: 1, W: 1}})
}
