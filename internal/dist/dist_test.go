package dist_test

import (
	"math"
	"testing"

	"repro/internal/baseline"
	"repro/internal/bundle"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/spanner"
	"repro/internal/spectral"
	"repro/internal/stretch"
)

// TestSpannerMatchesSharedMemory locks the central design invariant:
// the distributed simulation moves knowledge through mailboxes but
// decides exactly what the shared-memory Baswana–Sen decides, so for
// equal seeds the masks are bit-identical.
func TestSpannerMatchesSharedMemory(t *testing.T) {
	cases := []*graph.Graph{
		gen.Gnp(200, 0.1, 3),
		gen.Gnp(500, 0.03, 17),
		gen.Complete(90),
		gen.Barbell(30, 4),
		gen.Grid2D(20, 25),
		gen.WithRandomWeights(gen.Gnp(150, 0.2, 5), 0.1, 10, 9),
	}
	for gi, g := range cases {
		for _, seed := range []uint64{1, 7, 42} {
			d := runSpanner(t, dist.Mem(), g, 0, seed).Output
			adj := graph.NewAdjacency(g)
			s := spanner.Compute(g, adj, nil, spanner.Options{Seed: seed})
			if len(d.InSpanner) != len(s.InSpanner) {
				t.Fatalf("case %d: mask length mismatch", gi)
			}
			for i := range d.InSpanner {
				if d.InSpanner[i] != s.InSpanner[i] {
					t.Fatalf("case %d seed %d: edge %d dist=%v shared=%v",
						gi, seed, i, d.InSpanner[i], s.InSpanner[i])
				}
			}
			for v := range d.Center {
				if d.Center[v] != s.Center[v] {
					t.Fatalf("case %d seed %d: center[%d] dist=%d shared=%d",
						gi, seed, v, d.Center[v], s.Center[v])
				}
			}
		}
	}
}

// TestSpannerStretchBound spot-checks the Theorem 1 guarantee on the
// distributed output directly: every input edge has resistive stretch
// ≤ 2k−1 over the spanner.
func TestSpannerStretchBound(t *testing.T) {
	cases := []*graph.Graph{
		gen.Gnp(300, 0.08, 11),
		gen.WithRandomWeights(gen.Gnp(200, 0.15, 23), 0.5, 5, 29),
		gen.Torus2D(12, 14),
	}
	for gi, g := range cases {
		res := runSpanner(t, dist.Mem(), g, 0, 13).Output
		bound := float64(2*res.K - 1)
		if bad := stretch.VerifySpanner(g, res.InSpanner, bound); bad != -1 {
			t.Fatalf("case %d: edge %d violates stretch bound %v", gi, bad, bound)
		}
	}
}

// TestSpannerLedgerTheorem2 is the regression harness for the Theorem 2
// bounds: on 2^k-vertex graphs of comparable average degree, rounds
// grow at most quadratically in k and total words stay near-linear in
// m (within an O(log n) factor with a stable constant).
func TestSpannerLedgerTheorem2(t *testing.T) {
	type meas struct {
		k              int
		m              int
		rounds         int
		words          int64
		roundsPerK2    float64
		wordsPerMLighK float64
	}
	var ms []meas
	for _, k := range []int{7, 8, 9, 10, 11} {
		n := 1 << k
		g := gen.Gnp(n, 16/float64(n), uint64(3*n))
		res := runSpanner(t, dist.Mem(), g, 0, 5)
		st := res.Stats
		if st.Rounds <= 0 || st.Messages <= 0 || st.Words <= 0 {
			t.Fatalf("k=%d: empty ledger %+v", k, st)
		}
		if st.MaxMessageWords > 3 {
			t.Fatalf("k=%d: message width %d exceeds the O(log n)-bit bound", k, st.MaxMessageWords)
		}
		kk := float64(k)
		ms = append(ms, meas{
			k: k, m: g.M(), rounds: st.Rounds, words: st.Words,
			roundsPerK2:    float64(st.Rounds) / (kk * kk),
			wordsPerMLighK: float64(st.Words) / (float64(g.M()) * kk),
		})
	}
	// Absolute round bound: the construction spends ≤ i+3 rounds in
	// iteration i plus two join rounds, i.e. ≤ k²/2 + 3k + 2 ≪ 2k².
	for _, x := range ms {
		if x.rounds > 2*x.k*x.k {
			t.Fatalf("k=%d: %d rounds exceed 2k²=%d — not O(log² n) growth",
				x.k, x.rounds, 2*x.k*x.k)
		}
	}
	// Relative growth: the normalized ratios must not drift upward by
	// more than 25% across a doubling of n (they are flat-to-decreasing
	// when the bounds hold; drift means a super-logarithmic factor).
	for i := 1; i < len(ms); i++ {
		if ms[i].roundsPerK2 > 1.25*ms[i-1].roundsPerK2 {
			t.Fatalf("rounds/k² drifts: %v -> %v at k=%d",
				ms[i-1].roundsPerK2, ms[i].roundsPerK2, ms[i].k)
		}
		if ms[i].wordsPerMLighK > 1.25*ms[i-1].wordsPerMLighK {
			t.Fatalf("words/(m·k) drifts: %v -> %v at k=%d",
				ms[i-1].wordsPerMLighK, ms[i].wordsPerMLighK, ms[i].k)
		}
	}
}

// TestSparsifyMatchesCore: the distributed Algorithm 2 splits seeds
// exactly as core.ParallelSparsify, so the outputs are edge-identical
// and every spectral guarantee proven for the shared-memory path
// transfers to the distributed one.
func TestSparsifyMatchesCore(t *testing.T) {
	cases := []*graph.Graph{
		gen.Gnp(300, 0.15, 7),
		gen.Complete(120),
		gen.Grid2D(18, 18),
	}
	for gi, g := range cases {
		for _, seed := range []uint64{1, 99} {
			d := runSparsify(t, dist.Mem(), g, 0.75, 4, 0, seed)
			c, _, err := core.ParallelSparsify(g, 0.75, 4, core.DefaultConfig(seed))
			if err != nil {
				t.Fatal(err)
			}
			if d.Output.N != c.N || d.Output.M() != c.M() {
				t.Fatalf("case %d seed %d: dist %v vs core %v", gi, seed, d.Output, c)
			}
			for i := range c.Edges {
				if d.Output.Edges[i] != c.Edges[i] {
					t.Fatalf("case %d seed %d: edge %d differs: %+v vs %+v",
						gi, seed, i, d.Output.Edges[i], c.Edges[i])
				}
			}
		}
	}
}

// TestBundleMaskMatchesBundlePackage: one sampling round's bundle mask
// agrees with internal/bundle's construction for the matching seed — the
// distributed layers really are the t-bundle of Definition 1.
func TestBundleMaskMatchesBundlePackage(t *testing.T) {
	g := gen.Gnp(250, 0.12, 31)
	seed := uint64(77)
	// One Algorithm 1 round at rho=2 uses the full eps and round seed
	// seed^(1*0xd1342543de82ef95); its bundle seed adds ^0xb5297a4d3f8c6e21.
	roundSeed := seed ^ 0xd1342543de82ef95
	cfg := core.DefaultConfig(roundSeed)
	eps := 0.5
	tLayers := cfg.BundleThickness(g.N, eps)
	adj := graph.NewAdjacency(g)
	b := bundle.Compute(g, adj, nil, bundle.Options{T: tLayers, Seed: roundSeed ^ 0xb5297a4d3f8c6e21})
	d := runSparsify(t, dist.Mem(), g, eps, 2, 0, seed)
	// Every bundle edge is kept verbatim in the output with its
	// original weight; off-bundle survivors are reweighted ×4.
	kept := make(map[[2]int32]float64)
	for _, e := range d.Output.Edges {
		kept[[2]int32{e.U, e.V}] = e.W
	}
	for i, e := range g.Edges {
		if b.InBundle[i] {
			if w, ok := kept[[2]int32{e.U, e.V}]; !ok || w != e.W {
				t.Fatalf("bundle edge %d (%d,%d) missing or reweighted (w=%v)", i, e.U, e.V, w)
			}
		}
	}
}

// TestSparsifyTheorem5Acceptance is the headline acceptance check: on a
// 4096-vertex random graph, the distributed sparsifier cuts the edge
// count below ρ·n·log₂n, passes the spectral quality check at the
// requested eps, and bills a ledger whose round count is polylogarithmic
// (≤ the construction's c·t·⌈log₂ρ⌉·log²n budget, far below any
// polynomial in n) with near-linear total words.
func TestSparsifyTheorem5Acceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("4096-vertex acceptance run skipped in -short")
	}
	// Density matters: a t-bundle holds ~t·n·log n edges, and the
	// sampling only bites on what's left outside it, so the graph must
	// have m ≫ depth·n·log n for the round to shrink anything (on
	// sparser inputs the algorithm degenerates to the identity — the
	// correct but uninteresting regime the paper notes). Average degree
	// 96 against a depth-3 bundle leaves ~2/3 of the edges exposed.
	n := 4096
	depth := 3
	g := gen.Gnp(n, 96/float64(n), 12345)
	if !graph.IsConnected(g) {
		t.Fatal("test graph disconnected; pick another seed")
	}
	eps, rho := 0.75, 4.0
	res := runSparsify(t, dist.Mem(), g, eps, rho, depth, 9)
	st := res.Stats
	if st.Rounds <= 0 || st.Messages <= 0 || st.Words <= 0 {
		t.Fatalf("empty ledger: %+v", st)
	}
	logn := math.Log2(float64(n))
	if maxEdges := rho * float64(n) * logn; float64(res.Output.M()) > maxEdges {
		t.Fatalf("sparsifier has %d edges, above ρ·n·log n = %v", res.Output.M(), maxEdges)
	}
	if res.Output.M() >= g.M() {
		t.Fatalf("no reduction: %d -> %d", g.M(), res.Output.M())
	}
	// Round budget: ⌈log₂ρ⌉ iterations × t layers × (k²/2+3k+2) rounds
	// per layer, plus one sampling round each. Charge double for slack;
	// this is Θ(log² n) per layer and polylog overall.
	iters := int(math.Ceil(math.Log2(rho)))
	perLayer := logn*logn/2 + 3*logn + 2
	budget := 2 * float64(iters) * (float64(depth)*perLayer + 1)
	if float64(st.Rounds) > budget {
		t.Fatalf("%d rounds exceed the Theorem 5 budget %v (t=%d)", st.Rounds, budget, depth)
	}
	// Near-linear communication: total words within t·log n·log ρ of m,
	// with constant slack.
	wordBudget := 8 * float64(depth) * float64(iters) * logn * float64(g.M())
	if float64(st.Words) > wordBudget {
		t.Fatalf("%d words exceed near-linear budget %v", st.Words, wordBudget)
	}
	if st.MaxMessageWords > 3 {
		t.Fatalf("message width %d above O(log n) bits", st.MaxMessageWords)
	}
	// Spectral quality at the requested eps, via the iterative verifier.
	b, err := spectral.ApproxFactor(g, res.Output, spectral.Options{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Epsilon(); got > eps {
		t.Fatalf("measured eps %v exceeds requested %v (bounds %+v)", got, eps, b)
	}
}

// TestSparsifyQualityVsBaseline compares the distributed sparsifier
// against the Spielman–Srivastava effective-resistance baseline at a
// similar output size: both must meet the eps target on a dense graph,
// measured exactly with the dense verifier.
func TestSparsifyQualityVsBaseline(t *testing.T) {
	g := gen.Gnp(180, 0.5, 41)
	eps := 0.75
	d := runSparsify(t, dist.Mem(), g, eps, 4, 0, 3)
	bd, err := spectral.DenseApproxFactor(g, d.Output)
	if err != nil {
		t.Fatal(err)
	}
	if bd.Epsilon() > eps {
		t.Fatalf("distributed sparsifier eps %v > %v", bd.Epsilon(), eps)
	}
	ss, err := baseline.SpielmanSrivastava(g, baseline.SSOptions{Eps: eps, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	bs, err := spectral.DenseApproxFactor(g, ss)
	if err != nil {
		t.Fatal(err)
	}
	if bs.Epsilon() > eps {
		t.Fatalf("baseline eps %v > %v (verifier broken?)", bs.Epsilon(), eps)
	}
	t.Logf("dist: m=%d eps=%.3f; SS baseline: m=%d eps=%.3f",
		d.Output.M(), bd.Epsilon(), ss.M(), bs.Epsilon())
}

// TestStatsLedgerConsistency: phase rows partition the totals, and the
// degenerate inputs keep a sane ledger.
func TestStatsLedgerConsistency(t *testing.T) {
	g := gen.Gnp(150, 0.2, 19)
	res := runSparsify(t, dist.Mem(), g, 0.9, 4, 0, 11)
	st := res.Stats
	var rounds int
	var msgs, words int64
	for _, p := range st.Phases {
		rounds += p.Rounds
		msgs += p.Messages
		words += p.Words
	}
	if rounds != st.Rounds || msgs != st.Messages || words != st.Words {
		t.Fatalf("phases don't partition totals: %+v", st)
	}
	if st.Words < st.Messages {
		t.Fatalf("words %d < messages %d", st.Words, st.Messages)
	}
	// rho <= 1 is the identity with an empty ledger.
	id := runSparsify(t, dist.Mem(), g, 0.5, 1, 0, 11)
	if id.Output.M() != g.M() || id.Stats.Rounds != 0 || id.Stats.Messages != 0 {
		t.Fatalf("rho<=1 should be a free identity: %+v", id.Stats)
	}
	// Edgeless graphs still terminate with a valid (message-free) run.
	empty := runSpanner(t, dist.Mem(), graph.New(10), 0, 1)
	if graph.CountTrue(empty.Output.InSpanner) != 0 || empty.Stats.Messages != 0 {
		t.Fatalf("edgeless ledger: %+v", empty.Stats)
	}
	// k=1 keeps every edge without communication.
	k1 := runSpanner(t, dist.Mem(), gen.Complete(10), 1, 1)
	if graph.CountTrue(k1.Output.InSpanner) != gen.Complete(10).M() || k1.Stats.Messages != 0 {
		t.Fatalf("k=1 spanner must be the graph itself: %+v", k1.Stats)
	}
}
