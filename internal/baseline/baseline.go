// Package baseline implements the comparator sparsification schemes the
// experiments measure the paper's algorithm against:
//
//   - Spielman–Srivastava effective-resistance sampling (STOC'08), the
//     quality gold standard the paper's introduction positions itself
//     against: q samples with replacement, edge e drawn with probability
//     proportional to w_e·R_e and added at weight w_e/(q·p_e).
//
//   - Uniform independent edge sampling, the strawman that destroys
//     spectrally critical edges (e.g. a dumbbell bridge) and motivates
//     resistance-aware sampling in the first place.
package baseline

import (
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/resistance"
	"repro/internal/rng"
)

// SSOptions controls Spielman–Srivastava sampling.
type SSOptions struct {
	// Eps is the target accuracy; the sampler draws
	// q = ⌈CSamples·n·ln n/Eps²⌉ edges.
	Eps float64
	// CSamples is the oversampling constant (default 2; the theory
	// wants Θ(log n) more, which at laptop scale keeps everything —
	// the same theory-vs-practical constant split as core.Config).
	CSamples float64
	// Exact selects exact effective resistances (one solve per edge);
	// otherwise the JL sketch is used.
	Exact bool
	Seed  uint64
}

// SpielmanSrivastava returns a sparsifier of g by effective-resistance
// importance sampling. Repeated draws of the same edge are merged. A
// failed resistance computation (CG breakdown on indefinite input)
// fails the call — sampling from garbage leverages is not a sparsifier.
func SpielmanSrivastava(g *graph.Graph, opt SSOptions) (*graph.Graph, error) {
	if opt.Eps <= 0 {
		opt.Eps = 0.5
	}
	if opt.CSamples <= 0 {
		opt.CSamples = 2
	}
	n := g.N
	m := len(g.Edges)
	if m == 0 {
		return g.Clone(), nil
	}
	var (
		res []float64
		err error
	)
	if opt.Exact {
		res, err = resistance.AllEdgesExact(g)
	} else {
		res, err = resistance.AllEdgesApprox(g, resistance.ApproxOptions{Eps: 0.25, Seed: opt.Seed ^ 0x452821e638d01377})
	}
	if err != nil {
		return nil, err
	}
	// Sampling probabilities ∝ leverage w_e·R_e; total leverage is n−1
	// for connected graphs, so the normalizer also sanity-checks res.
	lev := make([]float64, m)
	total := 0.0
	for i, e := range g.Edges {
		l := e.W * res[i]
		if l < 0 {
			l = 0
		}
		// Leverage scores lie in [0, 1]; clamp sketch noise.
		if l > 1 {
			l = 1
		}
		lev[i] = l
		total += l
	}
	if total <= 0 {
		return g.Clone(), nil
	}
	q := int(math.Ceil(opt.CSamples * float64(n) * math.Log(float64(n)+2) / (opt.Eps * opt.Eps)))
	// Cumulative distribution for binary-search sampling.
	cdf := make([]float64, m)
	acc := 0.0
	for i, l := range lev {
		acc += l / total
		cdf[i] = acc
	}
	r := rng.New(opt.Seed)
	counts := make(map[int]int, q)
	for s := 0; s < q; s++ {
		u := r.Float64()
		idx := sort.SearchFloat64s(cdf, u)
		if idx >= m {
			idx = m - 1
		}
		counts[idx]++
	}
	edges := make([]graph.Edge, 0, len(counts))
	for idx, c := range counts {
		e := g.Edges[idx]
		pe := lev[idx] / total
		w := e.W * float64(c) / (float64(q) * pe)
		edges = append(edges, graph.Edge{U: e.U, V: e.V, W: w})
	}
	out := graph.FromEdges(n, edges)
	return out.Canonical(), nil
}

// Uniform keeps every edge independently with probability p at weight
// w/p — an unbiased estimator of the Laplacian with no importance
// weighting, so low-connectivity edges vanish with probability 1−p.
func Uniform(g *graph.Graph, p float64, seed uint64) *graph.Graph {
	if p >= 1 {
		return g.Clone()
	}
	if p <= 0 {
		return graph.New(g.N)
	}
	scale := 1 / p
	var edges []graph.Edge
	for i, e := range g.Edges {
		if rng.SplitAt(seed, uint64(i)).Float64() < p {
			edges = append(edges, graph.Edge{U: e.U, V: e.V, W: e.W * scale})
		}
	}
	return graph.FromEdges(g.N, edges)
}
