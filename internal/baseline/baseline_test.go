package baseline

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/spectral"
)

func TestSpielmanSrivastavaQuality(t *testing.T) {
	g := gen.Complete(100)
	h, err := SpielmanSrivastava(g, SSOptions{Eps: 0.4, Exact: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !graph.IsConnected(h) {
		t.Fatal("SS sparsifier disconnected")
	}
	b, err := spectral.DenseApproxFactor(g, h)
	if err != nil {
		t.Fatal(err)
	}
	if b.Epsilon() > 0.4 {
		t.Fatalf("SS eps %v > 0.4 (bounds %+v)", b.Epsilon(), b)
	}
}

func TestSpielmanSrivastavaReduces(t *testing.T) {
	g := gen.Complete(200) // m ≈ 19900
	h, err := SpielmanSrivastava(g, SSOptions{Eps: 0.5, Exact: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if h.M() >= g.M()/2 {
		t.Fatalf("SS kept %d of %d", h.M(), g.M())
	}
}

func TestSpielmanSrivastavaSketchMode(t *testing.T) {
	g := gen.Gnp(120, 0.3, 7)
	if !graph.IsConnected(g) {
		t.Skip("disconnected")
	}
	h, err := SpielmanSrivastava(g, SSOptions{Eps: 0.5, Exact: false, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !graph.IsConnected(h) {
		t.Fatal("sketch-mode SS disconnected")
	}
	b, err := spectral.DenseApproxFactor(g, h)
	if err != nil {
		t.Fatal(err)
	}
	if b.Epsilon() > 0.6 {
		t.Fatalf("sketch SS eps %v (bounds %+v)", b.Epsilon(), b)
	}
}

func TestSpielmanSrivastavaKeepsBridges(t *testing.T) {
	// The dumbbell bridge has leverage 1: it must essentially always be
	// sampled.
	g := gen.Barbell(25, 1)
	h, err := SpielmanSrivastava(g, SSOptions{Eps: 0.5, Exact: true, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !graph.IsConnected(h) {
		t.Fatal("SS lost the dumbbell bridge")
	}
}

func TestSpielmanSrivastavaEmptyGraph(t *testing.T) {
	g := graph.New(5)
	h, err := SpielmanSrivastava(g, SSOptions{Eps: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if h.M() != 0 || h.N != 5 {
		t.Fatal("empty graph mishandled")
	}
}

// TestSpielmanSrivastavaResistanceFailureSurfaces: an indefinite input
// breaks the inner Laplacian solves; sampling from those garbage
// leverages must fail loudly rather than return a bogus sparsifier.
func TestSpielmanSrivastavaResistanceFailureSurfaces(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{
		{U: 0, V: 1, W: -1},
		{U: 1, V: 2, W: 1},
	})
	for _, exact := range []bool{true, false} {
		if _, err := SpielmanSrivastava(g, SSOptions{Eps: 0.5, Exact: exact, Seed: 3}); err == nil {
			t.Fatalf("exact=%v: no error on indefinite input", exact)
		}
	}
}

func TestUniformExpectedWeight(t *testing.T) {
	g := gen.Complete(60)
	trials := 40
	sum := 0.0
	for s := 0; s < trials; s++ {
		h := Uniform(g, 0.25, uint64(100+s))
		sum += h.TotalWeight()
	}
	mean := sum / float64(trials)
	want := g.TotalWeight()
	if math.Abs(mean-want)/want > 0.05 {
		t.Fatalf("uniform sampling biased: mean %v want %v", mean, want)
	}
}

func TestUniformDestroysDumbbellOften(t *testing.T) {
	// The bridge survives with probability p per trial; over many
	// trials, uniform sampling must disconnect the dumbbell roughly
	// (1-p) of the time — the paper's motivation for resistance-aware
	// sampling.
	g := gen.Barbell(20, 1)
	p := 0.25
	disconnected := 0
	trials := 200
	for s := 0; s < trials; s++ {
		h := Uniform(g, p, uint64(s))
		if !graph.IsConnected(h) {
			disconnected++
		}
	}
	rate := float64(disconnected) / float64(trials)
	if rate < 0.5 {
		t.Fatalf("uniform sampling disconnected the dumbbell only %.2f of the time; expected ≈ %.2f", rate, 1-p)
	}
}

func TestUniformExtremes(t *testing.T) {
	g := gen.Complete(20)
	if h := Uniform(g, 1, 1); h.M() != g.M() {
		t.Fatal("p=1 must keep everything")
	}
	if h := Uniform(g, 0, 1); h.M() != 0 {
		t.Fatal("p=0 must drop everything")
	}
}

func TestUniformReweights(t *testing.T) {
	g := gen.Complete(50)
	h := Uniform(g, 0.5, 3)
	for _, e := range h.Edges {
		if math.Abs(e.W-2) > 1e-12 {
			t.Fatalf("kept edge weight %v want 2", e.W)
		}
	}
}

func TestUniformDeterministic(t *testing.T) {
	g := gen.Complete(50)
	a := Uniform(g, 0.3, 9)
	b := Uniform(g, 0.3, 9)
	if a.M() != b.M() {
		t.Fatal("nondeterministic")
	}
}
