// Package lowstretch implements low-stretch spanning trees, the object
// the paper's Remark 2 proposes as a replacement for spanners inside
// the bundle: "low-stretch trees can replace spanners in our
// construction, reducing the size of the sparsifiers by an O(log n)
// factor", with the aesthetic bonus that the sparsifier becomes a sum
// of trees plus sampled edges.
//
// The construction is AKPW-flavoured: repeatedly decompose the current
// contracted multigraph into low-diameter clusters using the
// Miller–Peng–Xu (MPX) exponential-shift scheme, add each cluster's
// shortest-path-tree edges to the spanning forest, contract clusters,
// and grow the decomposition radius geometrically. Distances are
// resistive (ℓ_e = 1/w_e), matching the paper's stretch metric.
package lowstretch

import (
	"container/heap"
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/stretch"
)

// superEdge is an edge of the contracted multigraph, remembering the
// original edge it came from.
type superEdge struct {
	a, b    int32
	length  float64
	origEID int32
}

// pqItem is a priority-queue entry for the shifted multi-source
// Dijkstra of the MPX decomposition.
type pqItem struct {
	key    float64
	v      int32
	owner  int32
	viaEID int32 // original edge that reached v (-1 for sources)
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].key < q[j].key }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Tree computes a spanning forest of g (a spanning tree per connected
// component) with low average resistive stretch, returning the edge
// mask over g.Edges. Deterministic in the seed.
func Tree(g *graph.Graph, seed uint64) []bool {
	m := len(g.Edges)
	inTree := make([]bool, m)
	if g.N == 0 || m == 0 {
		return inTree
	}
	// Current contracted multigraph: super-vertices labelled by
	// representative original vertex ids (compacted each round).
	comp := make([]int32, g.N)
	for i := range comp {
		comp[i] = int32(i)
	}
	edges := make([]superEdge, 0, m)
	minLen := math.Inf(1)
	for i, e := range g.Edges {
		if e.U == e.V {
			continue
		}
		l := e.Resistance()
		edges = append(edges, superEdge{a: e.U, b: e.V, length: l, origEID: int32(i)})
		if l < minLen {
			minLen = l
		}
	}
	nSuper := g.N
	r := rng.New(seed ^ 0x243f6a8885a308d3)
	// Radius schedule: start near the smallest edge length and grow by
	// 4x per round (the AKPW geometric bucketing); β = log-ish / radius.
	radius := 4 * minLen
	for round := 0; round < 64 && len(edges) > 0; round++ {
		labels, viaEdge, clusters := mpxRound(nSuper, edges, radius, r)
		// Add the shortest-path-tree edges discovered this round.
		progress := false
		for _, eid := range viaEdge {
			if eid >= 0 && !inTree[eid] {
				inTree[eid] = true
				progress = true
			}
		}
		// Contract: relabel endpoints, drop intra-cluster edges, and
		// keep only the shortest surviving edge per super-pair (any
		// parallel edge is certified by the kept one plus tree paths in
		// later rounds only worse by a constant).
		type pairKey struct{ a, b int32 }
		bestPerPair := make(map[pairKey]superEdge, len(edges))
		for _, e := range edges {
			la, lb := labels[e.a], labels[e.b]
			if la == lb {
				continue
			}
			if la > lb {
				la, lb = lb, la
			}
			k := pairKey{la, lb}
			if cur, ok := bestPerPair[k]; !ok || e.length < cur.length {
				bestPerPair[k] = superEdge{a: la, b: lb, length: e.length, origEID: e.origEID}
			}
		}
		newEdges := make([]superEdge, 0, len(bestPerPair))
		for _, e := range bestPerPair {
			newEdges = append(newEdges, e)
		}
		// Deterministic order for reproducibility across map iteration.
		sortSuperEdges(newEdges)
		edges = newEdges
		nSuper = clusters
		radius *= 4
		// Progress is guaranteed eventually: the radius quadruples each
		// round, so once it exceeds the component diameter MPX settles
		// whole components into single clusters and their edges vanish.
		// The 64-round cap above is a defensive bound, never reached on
		// finite-weight inputs.
		_ = progress
	}
	return inTree
}

// mpxRound performs one MPX exponential-shift decomposition over the
// contracted multigraph with nSuper super-vertices. It returns compact
// cluster labels per super-vertex, the original-edge id via which each
// super-vertex was settled (-1 for cluster centers), and the cluster
// count.
func mpxRound(nSuper int, edges []superEdge, radius float64, r *rng.RNG) (labels []int32, viaEdge []int32, clusters int) {
	// Build super-vertex ids present this round. Labels of absent ids
	// don't matter; allocate over the max id + 1 for simplicity.
	maxID := int32(-1)
	for _, e := range edges {
		if e.a > maxID {
			maxID = e.a
		}
		if e.b > maxID {
			maxID = e.b
		}
	}
	size := int(maxID + 1)
	if size < nSuper {
		size = nSuper
	}
	// Adjacency over super-vertices.
	adjHead := make([]int32, size)
	for i := range adjHead {
		adjHead[i] = -1
	}
	type halfEdge struct {
		to     int32
		length float64
		orig   int32
		next   int32
	}
	halves := make([]halfEdge, 0, 2*len(edges))
	addHalf := func(from, to int32, l float64, orig int32) {
		halves = append(halves, halfEdge{to: to, length: l, orig: orig, next: adjHead[from]})
		adjHead[from] = int32(len(halves) - 1)
	}
	active := make([]bool, size)
	for _, e := range edges {
		addHalf(e.a, e.b, e.length, e.origEID)
		addHalf(e.b, e.a, e.length, e.origEID)
		active[e.a] = true
		active[e.b] = true
	}
	beta := math.Log(float64(nSuper)+2) / radius
	owner := make([]int32, size)
	viaEdge = make([]int32, size)
	settled := make([]bool, size)
	for i := range owner {
		owner[i] = -1
		viaEdge[i] = -1
	}
	q := &pq{}
	for v := 0; v < size; v++ {
		if !active[v] {
			continue
		}
		delta := r.Exp() / beta
		heap.Push(q, pqItem{key: -delta, v: int32(v), owner: int32(v), viaEID: -1})
	}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if settled[it.v] {
			continue
		}
		settled[it.v] = true
		owner[it.v] = it.owner
		viaEdge[it.v] = it.viaEID
		for h := adjHead[it.v]; h >= 0; h = halves[h].next {
			he := halves[h]
			if settled[he.to] {
				continue
			}
			heap.Push(q, pqItem{key: it.key + he.length, v: he.to, owner: it.owner, viaEID: he.orig})
		}
	}
	// Compact the owner labels.
	labels = make([]int32, size)
	remap := make(map[int32]int32)
	for v := 0; v < size; v++ {
		if !active[v] {
			labels[v] = -1
			continue
		}
		o := owner[v]
		id, ok := remap[o]
		if !ok {
			id = int32(len(remap))
			remap[o] = id
		}
		labels[v] = id
	}
	// Centers (owner == self) were reached via no edge.
	for v := 0; v < size; v++ {
		if active[v] && owner[v] == int32(v) {
			viaEdge[v] = -1
		}
	}
	return labels, viaEdge, len(remap)
}

func sortSuperEdges(es []superEdge) {
	// Insertion sort on (a, b, origEID): the per-round edge lists are
	// small after contraction and this avoids importing sort for a
	// 3-key comparison.
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && superLess(es[j], es[j-1]); j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

func superLess(x, y superEdge) bool {
	if x.a != y.a {
		return x.a < y.a
	}
	if x.b != y.b {
		return x.b < y.b
	}
	return x.origEID < y.origEID
}

// AvgStretch returns the average resistive stretch of g's edges over
// the subgraph selected by inTree, and the maximum.
func AvgStretch(g *graph.Graph, inTree []bool) (avg, max float64) {
	st := stretch.EdgeStretches(g, inTree)
	sum := 0.0
	for _, s := range st {
		sum += s
		if s > max {
			max = s
		}
	}
	if len(st) > 0 {
		avg = sum / float64(len(st))
	}
	return avg, max
}
