package lowstretch

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/stretch"
)

func countTrue(mask []bool) int {
	c := 0
	for _, b := range mask {
		if b {
			c++
		}
	}
	return c
}

func TestTreeIsSpanningTree(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"grid", gen.Grid2D(12, 12)},
		{"gnp", gen.Gnp(200, 0.1, 3)},
		{"complete", gen.Complete(60)},
		{"weighted", gen.WithRandomWeights(gen.Gnp(150, 0.1, 5), 0.01, 100, 7)},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			_, comps := graph.Components(tc.g, nil)
			mask := Tree(tc.g, 11)
			kept := countTrue(mask)
			want := tc.g.N - comps
			if kept != want {
				t.Fatalf("tree has %d edges, want n-components = %d", kept, want)
			}
			// The forest must be acyclic and span: the subgraph with
			// those edges has the same component count.
			sub := tc.g.Subgraph(mask)
			_, subComps := graph.Components(sub, nil)
			if subComps != comps {
				t.Fatalf("forest has %d components, graph has %d", subComps, comps)
			}
		})
	}
}

func TestTreeStretchFinite(t *testing.T) {
	g := gen.Gnp(150, 0.15, 13)
	if !graph.IsConnected(g) {
		t.Skip("disconnected")
	}
	mask := Tree(g, 17)
	_, finite := stretch.MaxStretch(g, mask)
	if !finite {
		t.Fatal("tree does not span: infinite stretch")
	}
}

func TestTreeAvgStretchReasonable(t *testing.T) {
	// A low-stretch tree of the 16x16 grid should have average stretch
	// well below the O(sqrt(n)) of a naive BFS tree. The AKPW guarantee
	// is polylog; assert a generous practical ceiling.
	g := gen.Grid2D(16, 16)
	mask := Tree(g, 19)
	avg, _ := AvgStretch(g, mask)
	if avg > 40 {
		t.Fatalf("average grid stretch %v too high for a low-stretch tree", avg)
	}
	if avg < 1 {
		t.Fatalf("average stretch %v < 1 impossible", avg)
	}
}

func TestTreeBeatsStarOnCycle(t *testing.T) {
	// On a cycle, any spanning tree is a path: one edge has stretch
	// n-1, the rest 1 — avg ≈ 2. Sanity-check AvgStretch arithmetic.
	n := 64
	g := gen.Cycle(n)
	mask := Tree(g, 23)
	avg, max := AvgStretch(g, mask)
	if max != float64(n-1) {
		t.Fatalf("cycle max stretch %v want %d", max, n-1)
	}
	if avg > 3 {
		t.Fatalf("cycle avg stretch %v", avg)
	}
}

func TestTreeDeterministic(t *testing.T) {
	g := gen.Gnp(120, 0.15, 29)
	a := Tree(g, 31)
	b := Tree(g, 31)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
}

func TestTreeWeightedPrefersLightEdgesLocally(t *testing.T) {
	// Two parallel paths between 0 and 3: one with resistive length 3
	// (weights 1), one with length 0.03 (weights 100). The tree should
	// route through the short one; the heavy path edges then carry low
	// stretch while the light path edges are certified by a short
	// detour. Just assert every edge's stretch is below the graph
	// diameter in resistive units.
	g := graph.FromEdges(6, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 1},
		{U: 0, V: 4, W: 100}, {U: 4, V: 5, W: 100}, {U: 5, V: 3, W: 100},
	})
	mask := Tree(g, 37)
	if countTrue(mask) != 5 {
		t.Fatalf("tree size %d want 5", countTrue(mask))
	}
	_, finite := stretch.MaxStretch(g, mask)
	if !finite {
		t.Fatal("not spanning")
	}
}

func TestTreeEmptyAndTrivialInputs(t *testing.T) {
	if countTrue(Tree(graph.New(0), 1)) != 0 {
		t.Fatal("empty graph")
	}
	if countTrue(Tree(graph.New(5), 1)) != 0 {
		t.Fatal("edgeless graph")
	}
	loop := graph.FromEdges(2, []graph.Edge{{U: 1, V: 1, W: 1}})
	if countTrue(Tree(loop, 1)) != 0 {
		t.Fatal("self-loop-only graph")
	}
}

func TestTreeHandlesParallelEdges(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 0, V: 1, W: 2}, {U: 1, V: 2, W: 1},
	})
	mask := Tree(g, 41)
	if countTrue(mask) != 2 {
		t.Fatalf("tree size %d want 2", countTrue(mask))
	}
}

func TestAvgStretchAllEdgesKept(t *testing.T) {
	g := gen.Gnp(60, 0.3, 43)
	all := make([]bool, g.M())
	for i := range all {
		all[i] = true
	}
	avg, max := AvgStretch(g, all)
	if math.Abs(avg-1) > 1e-9 || math.Abs(max-1) > 1e-9 {
		t.Fatalf("kept-everything stretch avg=%v max=%v", avg, max)
	}
}
