package serve

import (
	"bufio"
	"bytes"
	"testing"

	"repro/internal/graph"
)

// FuzzServeCodec: every decoder in the serve wire codec is total over
// arbitrary bytes — no panics, no allocation driven by a lying length
// field — and any frame the reader accepts re-encodes to the identical
// canonical bytes (the CI fuzz smoke runs this for 20s on every push).
func FuzzServeCodec(f *testing.F) {
	// Canonical frames for every request and response shape.
	seed := func(typ uint8, payload []byte) {
		f.Add(appendFrame(nil, typ, 42, payload))
	}
	seed(frameHello, appendHello(nil))
	seed(frameOpen, appendOpen(nil, openReq{Name: "g", N: 64, Opt: GraphOptions{UpdateBudget: 128, ReduceEps: 0.3, Seed: 7}}))
	seed(frameIngest, appendIngest(nil, "g", []graph.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 0.5}}))
	seed(frameFlush, appendName(nil, "g"))
	seed(frameStat, appendName(nil, "g"))
	seed(frameDrop, appendName(nil, "g"))
	seed(frameQuery, appendQuery(nil, queryReq{Name: "g", Kind: querySparsify, Eps: 0.5, Rho: 2}))
	seed(frameQuery, appendQuery(nil, queryReq{Name: "g", Kind: querySolve, Tol: 1e-6, Vec: []float64{1, -1}}))
	seed(frameAck, appendInfo(nil, Info{N: 64, Epoch: 2, Prefix: 256, Ingested: 300, Pending: 44, SummaryM: 90, Reduces: 1}))
	seed(frameGraphR, appendGraphResp(nil, Info{N: 8}, []graph.Edge{{U: 0, V: 1, W: 1}}))
	seed(frameFloats, appendFloatsResp(nil, Info{N: 8}, []float64{0.25}))
	seed(frameError, appendErrorResp(nil, "serve: unknown graph \"g\""))
	// Adversarial: truncations, lying lengths, bad magic.
	valid := appendFrame(nil, frameIngest, 1, appendIngest(nil, "g", []graph.Edge{{U: 0, V: 1, W: 1}}))
	f.Add(valid[:len(valid)-5])
	f.Add(valid[:3])
	lie := bytes.Clone(valid)
	lie[12], lie[13], lie[14], lie[15] = 0xff, 0xff, 0xff, 0x7f
	f.Add(lie)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, b []byte) {
		fr, err := readFrame(bufio.NewReader(bytes.NewReader(b)))
		if err != nil {
			return
		}
		// An accepted frame must re-encode to exactly the bytes consumed.
		n := wireHeaderSize + len(fr.payload) + wireCRCSize
		if !bytes.Equal(appendFrame(nil, fr.typ, fr.seq, fr.payload), b[:n]) {
			t.Fatal("accepted frame does not re-encode canonically")
		}
		// Run the payload through every decoder: none may panic, and an
		// accepted payload must survive its own re-encode round trip.
		if v, err := decodeHello(fr.payload); err == nil {
			if !bytes.Equal(appendHello(nil), fr.payload) && v == serveVersion {
				t.Fatal("canonical hello bytes diverged")
			}
		}
		if q, err := decodeOpen(fr.payload); err == nil {
			if !bytes.Equal(appendOpen(nil, q), fr.payload) {
				t.Fatal("accepted open does not re-encode canonically")
			}
		}
		if q, err := decodeIngest(fr.payload); err == nil {
			if !bytes.Equal(appendIngest(nil, q.Name, q.Edges), fr.payload) {
				t.Fatal("accepted ingest does not re-encode canonically")
			}
		}
		if q, err := decodeQuery(fr.payload); err == nil {
			if !bytes.Equal(appendQuery(nil, q), fr.payload) {
				t.Fatal("accepted query does not re-encode canonically")
			}
		}
		if name, rest, err := decodeName(fr.payload); err == nil && len(rest) == 0 {
			if !bytes.Equal(appendName(nil, name), fr.payload) {
				t.Fatal("accepted name does not re-encode canonically")
			}
		}
		if info, rest, err := decodeInfo(fr.payload); err == nil && len(rest) == 0 {
			if !bytes.Equal(appendInfo(nil, info), fr.payload) {
				t.Fatal("accepted info does not re-encode canonically")
			}
		}
		if info, edges, err := decodeGraphResp(fr.payload); err == nil {
			if !bytes.Equal(appendGraphResp(nil, info, edges), fr.payload) {
				t.Fatal("accepted graph response does not re-encode canonically")
			}
		}
		if info, v, err := decodeFloatsResp(fr.payload); err == nil {
			if !bytes.Equal(appendFloatsResp(nil, info, v), fr.payload) {
				t.Fatal("accepted floats response does not re-encode canonically")
			}
		}
		if msg, err := decodeErrorResp(fr.payload); err == nil {
			if !bytes.Equal(appendErrorResp(nil, msg), fr.payload) {
				t.Fatal("accepted error response does not re-encode canonically")
			}
		}
	})
}
