// Package serve is the sparsifier-as-a-service core: a long-lived
// server that holds named dynamic graphs and answers spectral queries
// over immutable epoch snapshots while edges keep streaming in.
//
// # Sessions and epochs
//
// Each named graph is a session with two sides. The mutable ingest
// side is an internal/stream merge-and-reduce sparsifier guarded by a
// mutex: clients stream edge batches into the *next* epoch, and after
// UpdateBudget edges accumulate (or on an explicit Flush) the server
// takes a non-destructive stream snapshot and publishes it as a new
// epoch. The immutable query side is an atomic pointer to the current
// epoch: sparsify, spanner, resistance, and solve queries load the
// pointer once and compute entirely against that snapshot, so writers
// never block readers, readers never block writers, and no query can
// observe a half-published epoch. Epoch 0 is the empty graph, so
// queries are well-defined before the first ingest.
//
// # Determinism contract
//
// A served answer is a pure function of (epoch summary, query
// parameters, QuerySeed(graph seed, epoch)). The epoch summary itself
// is a deterministic function of the ingested edge prefix and the
// graph's create-time options. Replaying the same prefix offline —
// stream.New with the same options, Ingest the same edges in the same
// order, Snapshot, then run the same algorithm under the same
// QuerySeed — reproduces any served answer bit for bit. The server is
// therefore auditable: every response carries the epoch's Prefix so a
// client can name exactly which edges an answer covers.
//
// # Wire protocol
//
// The codec (wire.go) follows the repo's versioned binary frame idiom:
// little-endian fixed header with magic "SP01", append-only frame
// types, and a per-frame CRC-32C verified before any payload decode.
// Connections begin with a hello/welcome version handshake and then
// run strict request/response; the client's sequence number is echoed
// so a desynchronized stream is detected immediately. All decoders are
// total over arbitrary bytes (FuzzServeCodec pins this).
//
// cmd/sparsifyd wraps the server in a daemon with SIGTERM drain; Dial
// is the client used by the CLI, the tests, and the E14 load harness.
package serve
