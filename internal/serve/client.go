package serve

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/graph"
)

// Client is a connection to a sparsifyd server. Its methods are safe
// for sequential use from one goroutine; for concurrent load, open one
// Client per goroutine (connections are cheap and the server is
// concurrent across them).
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	seq  uint32
	dead error // first transport error; the connection is unusable after
}

// Dial connects to a sparsifyd server and performs the version
// handshake.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 10*time.Second)
}

// DialTimeout is Dial with a connect+handshake deadline.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("serve: dial %s: %w", addr, err)
	}
	c := &Client{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}
	conn.SetDeadline(time.Now().Add(timeout))
	typ, payload, err := c.roundTrip(frameHello, appendHello(nil))
	if err != nil {
		conn.Close()
		return nil, err
	}
	if typ != frameWelcome {
		conn.Close()
		return nil, fmt.Errorf("serve: handshake: unexpected frame type %d", typ)
	}
	if ver, err := decodeHello(payload); err != nil || ver != serveVersion {
		conn.Close()
		return nil, fmt.Errorf("serve: handshake: server version %d, want %d", ver, serveVersion)
	}
	conn.SetDeadline(time.Time{})
	return c, nil
}

// Close tears down the connection.
func (c *Client) Close() error { return c.conn.Close() }

// fatal records the first transport error and poisons the client: the
// request/response framing may be desynchronized, so every later call
// fails fast with the original cause.
func (c *Client) fatal(err error) error {
	if c.dead == nil {
		c.dead = err
		c.conn.Close()
	}
	return c.dead
}

// roundTrip writes one request frame and reads the matching response.
// The sequence number echo is the framing check: a response carrying a
// different seq means the stream is desynchronized, which is fatal for
// the connection (request errors, by contrast, arrive as frameError
// with the right seq and are returned by the typed methods).
func (c *Client) roundTrip(typ uint8, payload []byte) (uint8, []byte, error) {
	if c.dead != nil {
		return 0, nil, c.dead
	}
	c.seq++
	seq := c.seq
	if err := writeFrame(c.bw, typ, seq, payload); err != nil {
		return 0, nil, c.fatal(fmt.Errorf("serve: write: %w", err))
	}
	if err := c.bw.Flush(); err != nil {
		return 0, nil, c.fatal(fmt.Errorf("serve: write: %w", err))
	}
	f, err := readFrame(c.br)
	if err != nil {
		return 0, nil, c.fatal(fmt.Errorf("serve: read: %w", err))
	}
	if f.seq != seq {
		return 0, nil, c.fatal(fmt.Errorf("serve: response seq %d for request %d", f.seq, seq))
	}
	return f.typ, f.payload, nil
}

// checkName rejects a bad graph name client-side with the same rules
// decodeName enforces, so the caller gets a precise error instead of a
// server-side "bad request".
func checkName(name string) error {
	if len(name) == 0 || len(name) > maxNameLen {
		return fmt.Errorf("serve: graph name length %d outside [1,%d]", len(name), maxNameLen)
	}
	for i := 0; i < len(name); i++ {
		if name[i] <= ' ' || name[i] > '~' {
			return fmt.Errorf("serve: graph name %q has non-printable or space byte at %d", name, i)
		}
	}
	return nil
}

// ack finishes a request whose success response is frameAck+Info.
func (c *Client) ack(typ uint8, payload []byte) (Info, error) {
	rtyp, rp, err := c.roundTrip(typ, payload)
	if err != nil {
		return Info{}, err
	}
	switch rtyp {
	case frameAck:
		info, rest, err := decodeInfo(rp)
		if err != nil {
			return Info{}, c.fatal(err)
		}
		if len(rest) != 0 {
			return Info{}, c.fatal(fmt.Errorf("serve: %d trailing bytes after info", len(rest)))
		}
		return info, nil
	case frameError:
		msg, err := decodeErrorResp(rp)
		if err != nil {
			return Info{}, c.fatal(err)
		}
		return Info{}, errors.New(msg)
	default:
		return Info{}, c.fatal(fmt.Errorf("serve: unexpected frame type %d", rtyp))
	}
}

// Open creates (or attaches to) the named graph with n vertices. For
// an existing graph, n must match and opt is ignored.
func (c *Client) Open(name string, n int, opt GraphOptions) (Info, error) {
	if err := checkName(name); err != nil {
		return Info{}, err
	}
	return c.ack(frameOpen, appendOpen(nil, openReq{Name: name, N: int64(n), Opt: opt}))
}

// Ingest streams an edge batch into the graph's next epoch. The
// returned Info carries the live counters; Info.Epoch advances when
// the batch tripped the update budget.
func (c *Client) Ingest(name string, edges []graph.Edge) (Info, error) {
	if err := checkName(name); err != nil {
		return Info{}, err
	}
	return c.ack(frameIngest, appendIngest(nil, name, edges))
}

// Flush publishes an epoch over everything ingested so far (a no-op
// when nothing is pending).
func (c *Client) Flush(name string) (Info, error) {
	if err := checkName(name); err != nil {
		return Info{}, err
	}
	return c.ack(frameFlush, appendName(nil, name))
}

// Stat reports the graph's live counters without touching the epoch.
func (c *Client) Stat(name string) (Info, error) {
	if err := checkName(name); err != nil {
		return Info{}, err
	}
	return c.ack(frameStat, appendName(nil, name))
}

// Drop removes the graph from the registry, returning its final Info.
func (c *Client) Drop(name string) (Info, error) {
	if err := checkName(name); err != nil {
		return Info{}, err
	}
	return c.ack(frameDrop, appendName(nil, name))
}

// graphQuery finishes a query whose success response is
// frameGraphR+Info+edges.
func (c *Client) graphQuery(q queryReq) (Info, *graph.Graph, error) {
	if err := checkName(q.Name); err != nil {
		return Info{}, nil, err
	}
	rtyp, rp, err := c.roundTrip(frameQuery, appendQuery(nil, q))
	if err != nil {
		return Info{}, nil, err
	}
	switch rtyp {
	case frameGraphR:
		info, edges, err := decodeGraphResp(rp)
		if err != nil {
			return Info{}, nil, c.fatal(err)
		}
		for i, e := range edges {
			if e.U < 0 || int64(e.U) >= info.N || e.V < 0 || int64(e.V) >= info.N {
				return Info{}, nil, c.fatal(fmt.Errorf("serve: response edge %d (%d,%d) outside n=%d", i, e.U, e.V, info.N))
			}
		}
		return info, graph.FromEdges(int(info.N), edges), nil
	case frameError:
		msg, err := decodeErrorResp(rp)
		if err != nil {
			return Info{}, nil, c.fatal(err)
		}
		return Info{}, nil, errors.New(msg)
	default:
		return Info{}, nil, c.fatal(fmt.Errorf("serve: unexpected frame type %d", rtyp))
	}
}

// floatsQuery finishes a query whose success response is
// frameFloats+Info+vector.
func (c *Client) floatsQuery(q queryReq) (Info, []float64, error) {
	if err := checkName(q.Name); err != nil {
		return Info{}, nil, err
	}
	rtyp, rp, err := c.roundTrip(frameQuery, appendQuery(nil, q))
	if err != nil {
		return Info{}, nil, err
	}
	switch rtyp {
	case frameFloats:
		info, xs, err := decodeFloatsResp(rp)
		if err != nil {
			return Info{}, nil, c.fatal(err)
		}
		return info, xs, nil
	case frameError:
		msg, err := decodeErrorResp(rp)
		if err != nil {
			return Info{}, nil, c.fatal(err)
		}
		return Info{}, nil, errors.New(msg)
	default:
		return Info{}, nil, c.fatal(fmt.Errorf("serve: unexpected frame type %d", rtyp))
	}
}

// Sparsify returns an ε-spectral sparsifier of the graph's current
// epoch (rho ≤ 0 selects the paper's default oversampling). Info.Epoch
// identifies the snapshot the answer is computed over.
func (c *Client) Sparsify(name string, eps, rho float64) (Info, *graph.Graph, error) {
	return c.graphQuery(queryReq{Name: name, Kind: querySparsify, Eps: eps, Rho: rho})
}

// Spanner returns a (2k−1)-spanner of the current epoch summary (k ≤ 0
// selects ⌈log₂ n⌉ levels).
func (c *Client) Spanner(name string, k int) (Info, *graph.Graph, error) {
	return c.graphQuery(queryReq{Name: name, Kind: querySpanner, K: int32(k)})
}

// Resistance returns the effective resistance between u and v over the
// current epoch summary.
func (c *Client) Resistance(name string, u, v int32) (Info, float64, error) {
	info, xs, err := c.floatsQuery(queryReq{Name: name, Kind: queryResistance, U: u, V: v})
	if err != nil {
		return info, 0, err
	}
	if len(xs) != 1 {
		return info, 0, c.fatal(fmt.Errorf("serve: resistance response has %d values", len(xs)))
	}
	return info, xs[0], nil
}

// Solve solves L·x = b over the current epoch summary to relative
// residual tol (tol ≤ 0 selects 1e-8).
func (c *Client) Solve(name string, b []float64, tol float64) (Info, []float64, error) {
	return c.floatsQuery(queryReq{Name: name, Kind: querySolve, Vec: b, Tol: tol})
}
