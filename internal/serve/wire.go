package serve

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/graph"
)

// The wire codec of the sparsifier service: the repo's versioned binary
// frame idiom (cf. internal/dist/wire.go), adapted to request/response.
// Every frame is a fixed 16-byte little-endian header, a `length`-byte
// payload, and a trailing CRC-32C over header+payload that is verified
// BEFORE any payload decode — a flipped bit is caught at the frame
// boundary, never inside a half-decoded record. Frame types are
// append-only: reusing or renumbering one is a wire version break, so
// new types are appended and serveVersion is bumped; a mixed-version
// pair fails loudly at the hello handshake instead of desynchronizing
// mid-session.

const (
	serveMagic = uint32(0x53503031) // "SP01": sparsifyd wire
	// serveVersion 1 is the initial frame set (hello/welcome, the five
	// graph requests, the four responses).
	serveVersion = uint32(1)

	wireHeaderSize = 16
	wireCRCSize    = 4
	edgeRecSize    = 16 // u int32, v int32, w float64
	infoSize       = 56
	maxNameLen     = 255
	maxErrLen      = 4096
	// maxFramePayload bounds one frame: a decoder must never trust a
	// length field into allocating unbounded memory. 1<<27 bytes admits
	// an 8M-edge ingest batch or a 16M-entry solve vector per frame;
	// larger requests split into multiple frames.
	maxFramePayload = 1 << 27
)

// Frame types. Append only.
const (
	frameHello   uint8 = iota + 1 // client → server: version handshake
	frameWelcome                  // server → client: handshake accepted
	frameOpen                     // client → server: open-or-create a graph
	frameIngest                   // client → server: one edge batch into the next epoch
	frameFlush                    // client → server: publish a new epoch now
	frameQuery                    // client → server: query the current epoch
	frameStat                     // client → server: graph counters
	frameDrop                     // client → server: delete a graph
	frameAck                      // server → client: Info record (open/ingest/flush/stat/drop)
	frameGraphR                   // server → client: Info + an edge-list answer
	frameFloats                   // server → client: Info + a float64-vector answer
	frameError                    // server → client: request failed; payload is the message
)

// Query kinds inside a frameQuery payload. Append only.
const (
	querySparsify   uint8 = iota + 1 // eps, rho → sparsifier of the epoch summary
	querySpanner                     // k → spanner subgraph of the epoch summary
	queryResistance                  // u, v → effective resistance over the epoch summary
	querySolve                       // tol, b[n] → Laplacian solve over the epoch summary
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// frame is one decoded wire frame: type, client-chosen sequence number
// (echoed verbatim in the response so a desynchronized pair is caught
// immediately), and the raw payload.
type frame struct {
	typ     uint8
	seq     uint32
	payload []byte
}

// appendFrame encodes one frame onto dst: header, payload, CRC-32C.
func appendFrame(dst []byte, typ uint8, seq uint32, payload []byte) []byte {
	var hb [wireHeaderSize]byte
	binary.LittleEndian.PutUint32(hb[0:], serveMagic)
	hb[4] = typ
	hb[5] = 0
	binary.LittleEndian.PutUint16(hb[6:], 0)
	binary.LittleEndian.PutUint32(hb[8:], seq)
	binary.LittleEndian.PutUint32(hb[12:], uint32(len(payload)))
	dst = append(dst, hb[:]...)
	dst = append(dst, payload...)
	sum := crc32.Update(0, crcTable, hb[:])
	sum = crc32.Update(sum, crcTable, payload)
	var cb [wireCRCSize]byte
	binary.LittleEndian.PutUint32(cb[:], sum)
	return append(dst, cb[:]...)
}

// writeFrame writes one frame to w.
func writeFrame(w io.Writer, typ uint8, seq uint32, payload []byte) error {
	buf := appendFrame(make([]byte, 0, wireHeaderSize+len(payload)+wireCRCSize), typ, seq, payload)
	_, err := w.Write(buf)
	return err
}

// readFrame reads and validates one frame from r. A bad magic, an
// oversized length, or a CRC mismatch is an error the caller must treat
// as fatal for the connection — the byte stream can no longer be
// trusted to be frame-aligned.
func readFrame(r *bufio.Reader) (frame, error) {
	var hb [wireHeaderSize]byte
	if _, err := io.ReadFull(r, hb[:]); err != nil {
		return frame{}, err
	}
	if got := binary.LittleEndian.Uint32(hb[0:]); got != serveMagic {
		return frame{}, fmt.Errorf("serve: bad frame magic %#x", got)
	}
	typ := hb[4]
	if hb[5] != 0 || binary.LittleEndian.Uint16(hb[6:]) != 0 {
		return frame{}, fmt.Errorf("serve: nonzero reserved header bytes")
	}
	seq := binary.LittleEndian.Uint32(hb[8:])
	length := binary.LittleEndian.Uint32(hb[12:])
	if length > maxFramePayload {
		return frame{}, fmt.Errorf("serve: frame payload %d exceeds limit %d", length, maxFramePayload)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return frame{}, err
	}
	var cb [wireCRCSize]byte
	if _, err := io.ReadFull(r, cb[:]); err != nil {
		return frame{}, err
	}
	sum := crc32.Update(0, crcTable, hb[:])
	sum = crc32.Update(sum, crcTable, payload)
	if got := binary.LittleEndian.Uint32(cb[:]); got != sum {
		return frame{}, fmt.Errorf("serve: frame CRC mismatch (type %d, %d bytes): %#x != %#x", typ, length, got, sum)
	}
	return frame{typ: typ, seq: seq, payload: payload}, nil
}

// --- payload codecs ----------------------------------------------------
//
// Every decoder is total over arbitrary bytes: it returns an error,
// never panics and never allocates proportionally to a lying length
// field (FuzzServeCodec pins this).

// helloPayload carries the protocol version both directions.
func appendHello(dst []byte) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], serveVersion)
	return append(dst, b[:]...)
}

func decodeHello(p []byte) (uint32, error) {
	if len(p) != 4 {
		return 0, fmt.Errorf("serve: hello payload %d bytes, want 4", len(p))
	}
	return binary.LittleEndian.Uint32(p), nil
}

// appendName encodes a graph name (uint16 length + bytes). Graph-scoped
// requests all start with one.
func appendName(dst []byte, name string) []byte {
	var lb [2]byte
	binary.LittleEndian.PutUint16(lb[:], uint16(len(name)))
	dst = append(dst, lb[:]...)
	return append(dst, name...)
}

// decodeName decodes a leading name and returns the remaining bytes.
func decodeName(p []byte) (string, []byte, error) {
	if len(p) < 2 {
		return "", nil, fmt.Errorf("serve: truncated name length")
	}
	n := int(binary.LittleEndian.Uint16(p))
	p = p[2:]
	if n == 0 || n > maxNameLen {
		return "", nil, fmt.Errorf("serve: graph name length %d outside [1,%d]", n, maxNameLen)
	}
	if len(p) < n {
		return "", nil, fmt.Errorf("serve: truncated name (%d of %d bytes)", len(p), n)
	}
	name := string(p[:n])
	for i := 0; i < len(name); i++ {
		if name[i] <= ' ' || name[i] > '~' {
			return "", nil, fmt.Errorf("serve: graph name %q has non-printable or space byte at %d", name, i)
		}
	}
	return name, p[n:], nil
}

// openReq is the open-or-create request: the vertex count plus the
// epoch/stream knobs that apply on first create.
type openReq struct {
	Name string
	N    int64
	Opt  GraphOptions
}

func appendOpen(dst []byte, q openReq) []byte {
	dst = appendName(dst, q.Name)
	var b [36]byte
	binary.LittleEndian.PutUint64(b[0:], uint64(q.N))
	binary.LittleEndian.PutUint32(b[8:], uint32(q.Opt.UpdateBudget))
	binary.LittleEndian.PutUint32(b[12:], uint32(q.Opt.BufferEdges))
	binary.LittleEndian.PutUint64(b[16:], math.Float64bits(q.Opt.ReduceEps))
	binary.LittleEndian.PutUint64(b[24:], q.Opt.Seed)
	binary.LittleEndian.PutUint32(b[32:], 0)
	return append(dst, b[:]...)
}

func decodeOpen(p []byte) (openReq, error) {
	name, rest, err := decodeName(p)
	if err != nil {
		return openReq{}, err
	}
	if len(rest) != 36 {
		return openReq{}, fmt.Errorf("serve: open body %d bytes, want 36", len(rest))
	}
	q := openReq{Name: name}
	q.N = int64(binary.LittleEndian.Uint64(rest[0:]))
	q.Opt.UpdateBudget = int(int32(binary.LittleEndian.Uint32(rest[8:])))
	q.Opt.BufferEdges = int(int32(binary.LittleEndian.Uint32(rest[12:])))
	q.Opt.ReduceEps = math.Float64frombits(binary.LittleEndian.Uint64(rest[16:]))
	q.Opt.Seed = binary.LittleEndian.Uint64(rest[24:])
	if binary.LittleEndian.Uint32(rest[32:]) != 0 {
		return openReq{}, fmt.Errorf("serve: nonzero reserved open bytes")
	}
	if q.N < 1 || q.N > int64(graph.MaxEdges) {
		return openReq{}, fmt.Errorf("serve: vertex count %d outside [1,%d]", q.N, graph.MaxEdges)
	}
	if q.Opt.UpdateBudget < 0 || q.Opt.BufferEdges < 0 {
		return openReq{}, fmt.Errorf("serve: negative open knob (budget %d, buffer %d)", q.Opt.UpdateBudget, q.Opt.BufferEdges)
	}
	if math.IsNaN(q.Opt.ReduceEps) || math.IsInf(q.Opt.ReduceEps, 0) || q.Opt.ReduceEps < 0 {
		return openReq{}, fmt.Errorf("serve: bad reduce eps %v", q.Opt.ReduceEps)
	}
	return q, nil
}

// ingestReq is one edge batch.
type ingestReq struct {
	Name  string
	Edges []graph.Edge
}

func appendIngest(dst []byte, name string, edges []graph.Edge) []byte {
	dst = appendName(dst, name)
	var cb [4]byte
	binary.LittleEndian.PutUint32(cb[:], uint32(len(edges)))
	dst = append(dst, cb[:]...)
	for _, e := range edges {
		var b [edgeRecSize]byte
		binary.LittleEndian.PutUint32(b[0:], uint32(e.U))
		binary.LittleEndian.PutUint32(b[4:], uint32(e.V))
		binary.LittleEndian.PutUint64(b[8:], math.Float64bits(e.W))
		dst = append(dst, b[:]...)
	}
	return dst
}

func decodeIngest(p []byte) (ingestReq, error) {
	name, rest, err := decodeName(p)
	if err != nil {
		return ingestReq{}, err
	}
	edges, err := decodeEdgeList(rest)
	if err != nil {
		return ingestReq{}, err
	}
	return ingestReq{Name: name, Edges: edges}, nil
}

// decodeEdgeList decodes a count-prefixed edge record list occupying
// the whole of p. The count is validated against the actual byte length
// before any allocation.
func decodeEdgeList(p []byte) ([]graph.Edge, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("serve: truncated edge count")
	}
	count := int(binary.LittleEndian.Uint32(p))
	p = p[4:]
	if len(p) != count*edgeRecSize {
		return nil, fmt.Errorf("serve: edge list claims %d records but carries %d bytes", count, len(p))
	}
	edges := make([]graph.Edge, count)
	for i := range edges {
		b := p[i*edgeRecSize:]
		edges[i] = graph.Edge{
			U: int32(binary.LittleEndian.Uint32(b[0:])),
			V: int32(binary.LittleEndian.Uint32(b[4:])),
			W: math.Float64frombits(binary.LittleEndian.Uint64(b[8:])),
		}
	}
	return edges, nil
}

// queryReq is one epoch query. Exactly the fields of its kind are
// encoded; Vec is the solve right-hand side.
type queryReq struct {
	Name     string
	Kind     uint8
	Eps, Rho float64 // sparsify
	K        int32   // spanner
	U, V     int32   // resistance
	Tol      float64 // solve
	Vec      []float64
}

func appendQuery(dst []byte, q queryReq) []byte {
	dst = appendName(dst, q.Name)
	dst = append(dst, q.Kind)
	switch q.Kind {
	case querySparsify:
		var b [16]byte
		binary.LittleEndian.PutUint64(b[0:], math.Float64bits(q.Eps))
		binary.LittleEndian.PutUint64(b[8:], math.Float64bits(q.Rho))
		dst = append(dst, b[:]...)
	case querySpanner:
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(q.K))
		dst = append(dst, b[:]...)
	case queryResistance:
		var b [8]byte
		binary.LittleEndian.PutUint32(b[0:], uint32(q.U))
		binary.LittleEndian.PutUint32(b[4:], uint32(q.V))
		dst = append(dst, b[:]...)
	case querySolve:
		var b [12]byte
		binary.LittleEndian.PutUint64(b[0:], math.Float64bits(q.Tol))
		binary.LittleEndian.PutUint32(b[8:], uint32(len(q.Vec)))
		dst = append(dst, b[:]...)
		dst = appendFloats(dst, q.Vec)
	}
	return dst
}

func decodeQuery(p []byte) (queryReq, error) {
	name, rest, err := decodeName(p)
	if err != nil {
		return queryReq{}, err
	}
	if len(rest) < 1 {
		return queryReq{}, fmt.Errorf("serve: truncated query kind")
	}
	q := queryReq{Name: name, Kind: rest[0]}
	rest = rest[1:]
	switch q.Kind {
	case querySparsify:
		if len(rest) != 16 {
			return queryReq{}, fmt.Errorf("serve: sparsify query body %d bytes, want 16", len(rest))
		}
		q.Eps = math.Float64frombits(binary.LittleEndian.Uint64(rest[0:]))
		q.Rho = math.Float64frombits(binary.LittleEndian.Uint64(rest[8:]))
	case querySpanner:
		if len(rest) != 4 {
			return queryReq{}, fmt.Errorf("serve: spanner query body %d bytes, want 4", len(rest))
		}
		q.K = int32(binary.LittleEndian.Uint32(rest))
	case queryResistance:
		if len(rest) != 8 {
			return queryReq{}, fmt.Errorf("serve: resistance query body %d bytes, want 8", len(rest))
		}
		q.U = int32(binary.LittleEndian.Uint32(rest[0:]))
		q.V = int32(binary.LittleEndian.Uint32(rest[4:]))
	case querySolve:
		if len(rest) < 12 {
			return queryReq{}, fmt.Errorf("serve: truncated solve query body")
		}
		q.Tol = math.Float64frombits(binary.LittleEndian.Uint64(rest[0:]))
		count := int(binary.LittleEndian.Uint32(rest[8:]))
		rest = rest[12:]
		if len(rest) != count*8 {
			return queryReq{}, fmt.Errorf("serve: solve vector claims %d entries but carries %d bytes", count, len(rest))
		}
		q.Vec = decodeFloats(rest, count)
	default:
		return queryReq{}, fmt.Errorf("serve: unknown query kind %d", q.Kind)
	}
	return q, nil
}

func appendFloats(dst []byte, v []float64) []byte {
	for _, x := range v {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(x))
		dst = append(dst, b[:]...)
	}
	return dst
}

func decodeFloats(p []byte, count int) []float64 {
	v := make([]float64, count)
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[i*8:]))
	}
	return v
}

// Info is the counter record every response carries: which immutable
// epoch answered (Epoch/Prefix/SummaryM/Reduces describe the snapshot)
// and where ingest currently stands (Ingested/Pending move on
// concurrently). Prefix is the number of stream edges the epoch
// summarizes — the "same ingested prefix" of the bit-identity contract.
type Info struct {
	N        int64  // vertex count of the graph resource
	Epoch    uint64 // published epoch sequence number (0 = the empty epoch)
	Prefix   int64  // stream edges summarized by this epoch
	Ingested int64  // total edges accepted so far (>= Prefix)
	Pending  int64  // edges ingested since the last publish
	SummaryM int64  // edge count of the epoch summary
	Reduces  int32  // merge-and-reduce steps behind the summary
}

func appendInfo(dst []byte, i Info) []byte {
	var b [infoSize]byte
	binary.LittleEndian.PutUint64(b[0:], uint64(i.N))
	binary.LittleEndian.PutUint64(b[8:], i.Epoch)
	binary.LittleEndian.PutUint64(b[16:], uint64(i.Prefix))
	binary.LittleEndian.PutUint64(b[24:], uint64(i.Ingested))
	binary.LittleEndian.PutUint64(b[32:], uint64(i.Pending))
	binary.LittleEndian.PutUint64(b[40:], uint64(i.SummaryM))
	binary.LittleEndian.PutUint32(b[48:], uint32(i.Reduces))
	binary.LittleEndian.PutUint32(b[52:], 0)
	return append(dst, b[:]...)
}

func decodeInfo(p []byte) (Info, []byte, error) {
	if len(p) < infoSize {
		return Info{}, nil, fmt.Errorf("serve: truncated info record (%d bytes)", len(p))
	}
	i := Info{
		N:        int64(binary.LittleEndian.Uint64(p[0:])),
		Epoch:    binary.LittleEndian.Uint64(p[8:]),
		Prefix:   int64(binary.LittleEndian.Uint64(p[16:])),
		Ingested: int64(binary.LittleEndian.Uint64(p[24:])),
		Pending:  int64(binary.LittleEndian.Uint64(p[32:])),
		SummaryM: int64(binary.LittleEndian.Uint64(p[40:])),
		Reduces:  int32(binary.LittleEndian.Uint32(p[48:])),
	}
	if binary.LittleEndian.Uint32(p[52:]) != 0 {
		return Info{}, nil, fmt.Errorf("serve: nonzero reserved info bytes")
	}
	return i, p[infoSize:], nil
}

// graphResp is an edge-list answer: the Info of the answering epoch
// plus the result subgraph's edges.
func appendGraphResp(dst []byte, info Info, edges []graph.Edge) []byte {
	dst = appendInfo(dst, info)
	var cb [4]byte
	binary.LittleEndian.PutUint32(cb[:], uint32(len(edges)))
	dst = append(dst, cb[:]...)
	for _, e := range edges {
		var b [edgeRecSize]byte
		binary.LittleEndian.PutUint32(b[0:], uint32(e.U))
		binary.LittleEndian.PutUint32(b[4:], uint32(e.V))
		binary.LittleEndian.PutUint64(b[8:], math.Float64bits(e.W))
		dst = append(dst, b[:]...)
	}
	return dst
}

func decodeGraphResp(p []byte) (Info, []graph.Edge, error) {
	info, rest, err := decodeInfo(p)
	if err != nil {
		return Info{}, nil, err
	}
	edges, err := decodeEdgeList(rest)
	if err != nil {
		return Info{}, nil, err
	}
	return info, edges, nil
}

// floatsResp is a float-vector answer (resistance: one entry; solve:
// n entries).
func appendFloatsResp(dst []byte, info Info, v []float64) []byte {
	dst = appendInfo(dst, info)
	var cb [4]byte
	binary.LittleEndian.PutUint32(cb[:], uint32(len(v)))
	dst = append(dst, cb[:]...)
	return appendFloats(dst, v)
}

func decodeFloatsResp(p []byte) (Info, []float64, error) {
	info, rest, err := decodeInfo(p)
	if err != nil {
		return Info{}, nil, err
	}
	if len(rest) < 4 {
		return Info{}, nil, fmt.Errorf("serve: truncated float count")
	}
	count := int(binary.LittleEndian.Uint32(rest))
	rest = rest[4:]
	if len(rest) != count*8 {
		return Info{}, nil, fmt.Errorf("serve: float vector claims %d entries but carries %d bytes", count, len(rest))
	}
	return info, decodeFloats(rest, count), nil
}

func appendErrorResp(dst []byte, msg string) []byte {
	if len(msg) > maxErrLen {
		msg = msg[:maxErrLen]
	}
	var lb [2]byte
	binary.LittleEndian.PutUint16(lb[:], uint16(len(msg)))
	dst = append(dst, lb[:]...)
	return append(dst, msg...)
}

func decodeErrorResp(p []byte) (string, error) {
	if len(p) < 2 {
		return "", fmt.Errorf("serve: truncated error length")
	}
	n := int(binary.LittleEndian.Uint16(p))
	p = p[2:]
	if n > maxErrLen || len(p) != n {
		return "", fmt.Errorf("serve: error message claims %d bytes but carries %d", n, len(p))
	}
	return string(p), nil
}
