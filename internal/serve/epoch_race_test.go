package serve_test

import (
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/serve"
)

// TestConcurrentIngestQuery hammers one graph with a writer streaming
// edge batches while several readers query continuously (run under
// -race in CI). It pins the two epoch guarantees:
//
//  1. No half-published epoch: every observation of epoch e — across
//     all readers, all query kinds, the whole run — reports the same
//     (prefix, summary size, reduces). A torn publish would surface as
//     one epoch with two faces.
//  2. Bit-identity: each reader's recorded sparsify answers equal the
//     offline recomputation over the exact edge prefix the epoch names.
func TestConcurrentIngestQuery(t *testing.T) {
	srv := startServer(t, serve.Config{})

	const (
		n       = 80
		m       = 4000
		budget  = 400
		batch   = 64
		readers = 3
		eps     = 0.5
	)
	opt := serve.GraphOptions{UpdateBudget: budget, Seed: 99}
	wc := dial(t, srv)
	if _, err := wc.Open("g", n, opt); err != nil {
		t.Fatal(err)
	}
	edges := testEdges(n, m, 17)

	type obs struct {
		info  serve.Info
		graph *graph.Graph // nil for non-sparsify observations
	}
	results := make([][]obs, readers)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rc := dial(t, srv)
		wg.Add(1)
		go func(r int, c *serve.Client) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch i % 3 {
				case 0:
					info, g, err := c.Sparsify("g", eps, 0)
					if err != nil {
						t.Errorf("reader %d sparsify: %v", r, err)
						return
					}
					results[r] = append(results[r], obs{info, g})
				case 1:
					info, g, err := c.Spanner("g", 2)
					if err != nil {
						t.Errorf("reader %d spanner: %v", r, err)
						return
					}
					if int64(g.N) != info.N {
						t.Errorf("reader %d spanner graph n=%d info n=%d", r, g.N, info.N)
						return
					}
					results[r] = append(results[r], obs{info, nil})
				case 2:
					info, err := c.Stat("g")
					if err != nil {
						t.Errorf("reader %d stat: %v", r, err)
						return
					}
					results[r] = append(results[r], obs{info, nil})
				}
			}
		}(r, rc)
	}

	for i := 0; i < len(edges); i += batch {
		end := i + batch
		if end > len(edges) {
			end = len(edges)
		}
		if _, err := wc.Ingest("g", edges[i:end]); err != nil {
			t.Fatalf("ingest at %d: %v", i, err)
		}
	}
	if _, err := wc.Flush("g"); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	// Guarantee 1: one face per epoch, everywhere.
	type face struct {
		prefix   int64
		summaryM int64
		reduces  int32
	}
	faces := map[uint64]face{}
	total := 0
	for r := range results {
		for _, o := range results[r] {
			total++
			f := face{o.info.Prefix, o.info.SummaryM, o.info.Reduces}
			if prev, ok := faces[o.info.Epoch]; ok {
				if prev != f {
					t.Fatalf("epoch %d observed with two faces: %+v and %+v", o.info.Epoch, prev, f)
				}
			} else {
				faces[o.info.Epoch] = f
			}
		}
	}
	if len(faces) < 2 {
		t.Fatalf("readers observed only %d epoch(s) across %d observations; want concurrency", len(faces), total)
	}

	// Guarantee 2: served sparsifiers are bit-identical to the offline
	// replay of the prefix each epoch names. One check per distinct
	// epoch keeps the test fast.
	checked := map[uint64]bool{}
	for r := range results {
		for _, o := range results[r] {
			if o.graph == nil || checked[o.info.Epoch] {
				continue
			}
			checked[o.info.Epoch] = true
			offline := offlineSparsify(t, n, edges[:o.info.Prefix], opt, o.info.Epoch, eps)
			assertSameGraph(t, o.info, o.graph, offline)
		}
	}
}
