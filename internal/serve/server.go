package serve

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/graph"
)

// Config configures a Server.
type Config struct {
	// Listen is the bind address (host:port; port 0 picks a free port).
	Listen string
	// DefaultBudget is the epoch update budget applied when a graph is
	// created with UpdateBudget 0. Default 1<<16 edges.
	DefaultBudget int
	// MaxGraphs caps the registry (an Open past the cap is an error,
	// not an OOM). Default 1024.
	MaxGraphs int
	// Timeout is the per-response write deadline (and the drain grace
	// Shutdown falls back to). Reads are not deadlined: a connection may
	// sit idle between requests for as long as it likes — Shutdown
	// half-closes the read side to wake idle handlers. Default 2m.
	Timeout time.Duration
	// OnListen, when non-nil, runs once with the bound address before
	// the first Accept — the -addr-file rendezvous hook.
	OnListen func(addr string)
}

func (c Config) withDefaults() Config {
	if c.DefaultBudget <= 0 {
		c.DefaultBudget = 1 << 16
	}
	if c.MaxGraphs <= 0 {
		c.MaxGraphs = 1024
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Minute
	}
	return c
}

// Server is the long-lived sparsifier service: a registry of named
// graph sessions behind one TCP listener, one goroutine per
// connection running a read→dispatch→write loop. See doc.go for the
// epoch/session model.
type Server struct {
	cfg Config
	ln  net.Listener

	mu       sync.Mutex
	graphs   map[string]*session
	conns    map[net.Conn]struct{}
	draining bool

	wg sync.WaitGroup // live connection handlers
}

// Listen binds the configured address and returns a Server ready for
// Serve. The listener is live (and OnListen has run) when Listen
// returns, so a caller may Dial immediately.
func Listen(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("serve: listen %s: %w", cfg.Listen, err)
	}
	s := &Server{
		cfg:    cfg,
		ln:     ln,
		graphs: make(map[string]*session),
		conns:  make(map[net.Conn]struct{}),
	}
	if cfg.OnListen != nil {
		cfg.OnListen(ln.Addr().String())
	}
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Serve accepts connections until Shutdown. It returns nil after a
// clean drain and the accept error otherwise.
func (s *Server) Serve() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("serve: accept: %w", err)
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// Shutdown drains the server: stop accepting, half-close every
// connection's read side, and wait up to grace (Config.Timeout when
// grace ≤ 0) for handlers to finish. The read half-close makes the
// drain race-free: an idle handler's readFrame returns EOF at once,
// while a handler that already received a request computes it, writes
// the response over the still-open write side, and exits on the next
// read — a request the server received is always answered, exactly the
// SIGTERM discipline cmd/sparsifyd wants. Published graph state is
// in-memory only and dies with the process.
func (s *Server) Shutdown(grace time.Duration) error {
	if grace <= 0 {
		grace = s.cfg.Timeout
	}
	s.mu.Lock()
	s.draining = true
	for conn := range s.conns {
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.CloseRead()
		} else {
			conn.Close()
		}
	}
	s.mu.Unlock()
	s.ln.Close()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-time.After(grace):
		// Give up on the stragglers: cut their connections so their
		// handlers unwind, and report the unclean drain.
		s.mu.Lock()
		n := len(s.conns)
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		return fmt.Errorf("serve: drain timed out with %d connection(s) still busy", n)
	}
}

func (s *Server) dropConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	conn.Close()
}

// serveConn runs one connection's read→dispatch→write loop. The first
// frame must be a hello with the exact protocol version; anything else
// is answered with an error frame and the connection is dropped — a
// mixed-version pair must fail loudly at the handshake, never
// desynchronize on appended frame types.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer s.dropConn(conn)
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)

	write := func(typ uint8, seq uint32, payload []byte) bool {
		conn.SetWriteDeadline(time.Now().Add(s.cfg.Timeout))
		if err := writeFrame(bw, typ, seq, payload); err != nil {
			return false
		}
		return bw.Flush() == nil
	}

	f, err := readFrame(br)
	if err != nil {
		return
	}
	if f.typ != frameHello {
		write(frameError, f.seq, appendErrorResp(nil, "serve: first frame must be hello"))
		return
	}
	ver, err := decodeHello(f.payload)
	if err != nil || ver != serveVersion {
		write(frameError, f.seq, appendErrorResp(nil,
			fmt.Sprintf("serve: protocol version mismatch: client %d, server %d", ver, serveVersion)))
		return
	}
	if !write(frameWelcome, f.seq, appendHello(nil)) {
		return
	}

	for {
		f, err := readFrame(br)
		if err != nil {
			return // EOF, read-side drain, or an untrustworthy stream
		}
		typ, payload := s.handle(f)
		if !write(typ, f.seq, payload) {
			return
		}
	}
}

// handle dispatches one request frame and returns the response frame.
// Request errors (unknown graph, bad parameters, a failed solve) come
// back as frameError and keep the connection alive; only transport
// errors kill it.
func (s *Server) handle(f frame) (uint8, []byte) {
	fail := func(err error) (uint8, []byte) {
		return frameError, appendErrorResp(nil, err.Error())
	}
	switch f.typ {
	case frameHello:
		return fail(fmt.Errorf("serve: duplicate hello"))

	case frameOpen:
		q, err := decodeOpen(f.payload)
		if err != nil {
			return fail(err)
		}
		info, err := s.open(q)
		if err != nil {
			return fail(err)
		}
		return frameAck, appendInfo(nil, info)

	case frameIngest:
		q, err := decodeIngest(f.payload)
		if err != nil {
			return fail(err)
		}
		sess, err := s.lookup(q.Name)
		if err != nil {
			return fail(err)
		}
		info, err := sess.ingest(q.Edges)
		if err != nil {
			return fail(fmt.Errorf("ingest %s: %w", q.Name, err))
		}
		return frameAck, appendInfo(nil, info)

	case frameFlush:
		name, rest, err := decodeName(f.payload)
		if err != nil || len(rest) != 0 {
			return fail(fmt.Errorf("serve: bad flush request"))
		}
		sess, err := s.lookup(name)
		if err != nil {
			return fail(err)
		}
		info, err := sess.flush()
		if err != nil {
			return fail(fmt.Errorf("flush %s: %w", name, err))
		}
		return frameAck, appendInfo(nil, info)

	case frameStat:
		name, rest, err := decodeName(f.payload)
		if err != nil || len(rest) != 0 {
			return fail(fmt.Errorf("serve: bad stat request"))
		}
		sess, err := s.lookup(name)
		if err != nil {
			return fail(err)
		}
		return frameAck, appendInfo(nil, sess.stat())

	case frameDrop:
		name, rest, err := decodeName(f.payload)
		if err != nil || len(rest) != 0 {
			return fail(fmt.Errorf("serve: bad drop request"))
		}
		s.mu.Lock()
		sess, ok := s.graphs[name]
		delete(s.graphs, name)
		s.mu.Unlock()
		if !ok {
			return fail(fmt.Errorf("serve: unknown graph %q", name))
		}
		return frameAck, appendInfo(nil, sess.stat())

	case frameQuery:
		q, err := decodeQuery(f.payload)
		if err != nil {
			return fail(err)
		}
		sess, err := s.lookup(q.Name)
		if err != nil {
			return fail(err)
		}
		return s.query(sess, q)

	default:
		return fail(fmt.Errorf("serve: unknown frame type %d", f.typ))
	}
}

func (s *Server) query(sess *session, q queryReq) (uint8, []byte) {
	fail := func(err error) (uint8, []byte) {
		return frameError, appendErrorResp(nil, fmt.Sprintf("query %s: %v", sess.name, err))
	}
	switch q.Kind {
	case querySparsify:
		info, edges, err := sess.sparsify(q.Eps, q.Rho)
		if err != nil {
			return fail(err)
		}
		return frameGraphR, appendGraphResp(nil, info, edges)
	case querySpanner:
		info, edges, err := sess.spanner(int(q.K))
		if err != nil {
			return fail(err)
		}
		return frameGraphR, appendGraphResp(nil, info, edges)
	case queryResistance:
		info, r, err := sess.resistance(q.U, q.V)
		if err != nil {
			return fail(err)
		}
		return frameFloats, appendFloatsResp(nil, info, []float64{r})
	case querySolve:
		info, x, err := sess.solve(q.Vec, q.Tol)
		if err != nil {
			return fail(err)
		}
		return frameFloats, appendFloatsResp(nil, info, x)
	default:
		return fail(fmt.Errorf("unknown query kind %d", q.Kind))
	}
}

// open creates the named graph or returns the existing one. An
// existing graph's vertex count must match (its options are kept — the
// first create wins); a registry past MaxGraphs rejects new names.
func (s *Server) open(q openReq) (Info, error) {
	if q.N > int64(graph.MaxEdges) {
		return Info{}, fmt.Errorf("serve: vertex count %d too large", q.N)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if sess, ok := s.graphs[q.Name]; ok {
		if int64(sess.n) != q.N {
			return Info{}, fmt.Errorf("serve: graph %q exists with n=%d, not n=%d", q.Name, sess.n, q.N)
		}
		return sess.stat(), nil
	}
	if len(s.graphs) >= s.cfg.MaxGraphs {
		return Info{}, fmt.Errorf("serve: graph registry full (%d graphs)", s.cfg.MaxGraphs)
	}
	sess := newSession(q.Name, int(q.N), q.Opt, s.cfg.DefaultBudget)
	s.graphs[q.Name] = sess
	return sess.stat(), nil
}

func (s *Server) lookup(name string) (*session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.graphs[name]
	if !ok {
		return nil, fmt.Errorf("serve: unknown graph %q (open it first)", name)
	}
	return sess, nil
}
