package serve

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/resistance"
	"repro/internal/solver"
	"repro/internal/spanner"
	"repro/internal/stream"
)

// GraphOptions are the per-graph knobs fixed at create time (a later
// Open of the same name ignores them; the resource keeps its original
// configuration).
type GraphOptions struct {
	// UpdateBudget is the epoch cadence: a new epoch is published after
	// this many edges accumulate past the last publish (plus on every
	// explicit Flush). 0 selects the server default.
	UpdateBudget int
	// BufferEdges is the stream ingest buffer (stream.Options); a
	// merge-and-reduce fires when it fills. 0 selects stream's 4·n.
	BufferEdges int
	// ReduceEps is the per-reduce sample accuracy (compounds over
	// reduces, exactly as in internal/stream). 0 selects 0.2.
	ReduceEps float64
	// Seed drives all of the graph's randomness: the stream's reduce
	// schedule and, via QuerySeed, every epoch query. 0 selects 1.
	Seed uint64
}

// querySeedMix separates epoch-query randomness from the ingest
// stream's reduce seeds.
const querySeedMix = 0x2545f4914f6cdd1d

// QuerySeed derives the seed a query against epoch e of a graph
// created with seed s runs under. It is exported (and must stay
// stable) because it is half of the service's determinism contract:
// an offline recomputation over the same ingested prefix — replay the
// prefix through stream.New(+Snapshot), then run the same algorithm
// with QuerySeed(s, e) — reproduces a served answer bit for bit.
func QuerySeed(seed, epoch uint64) uint64 {
	return seed ^ (epoch+1)*querySeedMix
}

// epoch is one immutable published snapshot. Readers obtain it through
// an atomic pointer load and never see it change: every field is
// written before publication and the summary graph is never mutated
// afterwards (queries treat it as read-only input).
type epoch struct {
	seq     uint64       // publication sequence number; 0 is the empty epoch
	prefix  int64        // stream edges this snapshot summarizes
	reduces int          // merge-and-reduce steps behind the summary
	summary *graph.Graph // immutable spectral summary of the prefix
}

// session is one named graph resource: a mutable ingest side (the
// stream sparsifier, guarded by mu) and an immutable query side (the
// current epoch, swapped atomically at publish). Writers never block
// readers: a query runs entirely against the epoch pointer it loaded.
type session struct {
	name string
	n    int
	opt  GraphOptions

	mu      sync.Mutex // serializes ingest/flush (the mutable side)
	str     *stream.Sparsifier
	pending int64

	cur atomic.Pointer[epoch]
}

func newSession(name string, n int, opt GraphOptions, defaultBudget int) *session {
	if opt.UpdateBudget <= 0 {
		opt.UpdateBudget = defaultBudget
	}
	if opt.ReduceEps <= 0 {
		opt.ReduceEps = 0.2
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	s := &session{
		name: name,
		n:    n,
		opt:  opt,
		str: stream.New(n, stream.Options{
			BufferEdges: opt.BufferEdges,
			ReduceEps:   opt.ReduceEps,
			Seed:        opt.Seed,
		}),
	}
	// Epoch 0: the empty prefix, so queries are well-defined before any
	// ingest (they answer over an edgeless graph).
	s.cur.Store(&epoch{seq: 0, prefix: 0, summary: graph.New(n)})
	return s
}

// infoLocked snapshots the counters; callers hold mu.
func (s *session) infoLocked() Info {
	return s.info(s.cur.Load())
}

// info builds the response record for the given epoch. Ingested and
// Pending are read under mu when available; a query path (no mu) calls
// epochInfo instead.
func (s *session) info(e *epoch) Info {
	return Info{
		N:        int64(s.n),
		Epoch:    e.seq,
		Prefix:   e.prefix,
		Ingested: s.str.Ingested(),
		Pending:  s.pending,
		SummaryM: int64(e.summary.M()),
		Reduces:  int32(e.reduces),
	}
}

// epochInfo is the lock-free Info of a query response: the epoch
// fields are exact (they are immutable), while Ingested/Pending are
// intentionally omitted — they move under mu concurrently, and a query
// answer must not require the ingest lock. Stat is the way to read the
// live counters.
func (s *session) epochInfo(e *epoch) Info {
	return Info{
		N:        int64(s.n),
		Epoch:    e.seq,
		Prefix:   e.prefix,
		Ingested: e.prefix, // the freshest value this epoch can vouch for
		Pending:  0,
		SummaryM: int64(e.summary.M()),
		Reduces:  int32(e.reduces),
	}
}

// ingest streams one edge batch into the next epoch and publishes a new
// epoch when the update budget fills. A bad edge fails the batch at
// that edge: everything before it is ingested (and reported via Info),
// nothing after it is.
func (s *session) ingest(edges []graph.Edge) (Info, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, e := range edges {
		if err := s.str.Ingest(e); err != nil {
			s.pending += int64(i)
			return s.infoLocked(), fmt.Errorf("edge %d of batch: %w", i, err)
		}
	}
	s.pending += int64(len(edges))
	if s.pending >= int64(s.opt.UpdateBudget) {
		if err := s.publishLocked(); err != nil {
			return s.infoLocked(), err
		}
	}
	return s.infoLocked(), nil
}

// flush publishes an epoch over everything ingested so far. With
// nothing pending it is a no-op (idempotent — no empty epochs pile up).
func (s *session) flush() (Info, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pending == 0 {
		return s.infoLocked(), nil
	}
	if err := s.publishLocked(); err != nil {
		return s.infoLocked(), err
	}
	return s.infoLocked(), nil
}

// publishLocked builds the next epoch from a non-destructive stream
// snapshot and swaps it in atomically: a concurrent reader observes
// either the old epoch or the new one, never a mix — the epoch struct
// is fully built before the Store and immutable after it.
func (s *session) publishLocked() error {
	sum, reduces, err := s.str.Snapshot()
	if err != nil {
		return fmt.Errorf("publishing epoch: %w", err)
	}
	prev := s.cur.Load()
	s.cur.Store(&epoch{
		seq:     prev.seq + 1,
		prefix:  s.str.Ingested(),
		reduces: reduces,
		summary: sum,
	})
	s.pending = 0
	return nil
}

func (s *session) stat() Info {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.infoLocked()
}

// --- epoch queries -----------------------------------------------------
//
// Queries never take mu: they load the current epoch pointer and
// compute against its immutable summary, so a slow solve never stalls
// ingest and ingest never tears a query's input. Each query is a pure
// function of (epoch summary, parameters, QuerySeed(seed, epoch)) —
// served answers are reproducible offline and cacheable per epoch.

// sparsify resparsifies the epoch summary at the client's accuracy:
// core.ParallelSparsify (the exact call chain of repro.Sparsify) under
// QuerySeed.
func (s *session) sparsify(eps, rho float64) (Info, []graph.Edge, error) {
	e := s.cur.Load()
	cfg := core.DefaultConfig(QuerySeed(s.opt.Seed, e.seq))
	out, _, err := core.ParallelSparsify(e.summary, eps, rho, cfg)
	if err != nil {
		return s.epochInfo(e), nil, err
	}
	return s.epochInfo(e), out.Edges, nil
}

// spanner computes a Baswana–Sen spanner of the epoch summary (k ≤ 0
// selects the paper's ⌈log₂ n⌉ levels), mirroring repro.Spanner.
func (s *session) spanner(k int) (Info, []graph.Edge, error) {
	e := s.cur.Load()
	g := e.summary
	adj := graph.NewAdjacency(g)
	res := spanner.Compute(g, adj, nil, spanner.Options{K: k, Seed: QuerySeed(s.opt.Seed, e.seq)})
	return s.epochInfo(e), g.Subgraph(res.InSpanner).Edges, nil
}

// resistance returns the exact effective resistance between u and v
// over the epoch summary (one Laplacian solve; u and v must be
// connected in the summary — the bundle keeps every bridge, so
// connectivity matches the ingested prefix).
func (s *session) resistance(u, v int32) (Info, float64, error) {
	e := s.cur.Load()
	if u < 0 || int(u) >= s.n || v < 0 || int(v) >= s.n {
		return s.epochInfo(e), 0, fmt.Errorf("vertex pair (%d,%d) outside [0,%d)", u, v, s.n)
	}
	r, err := resistance.NewSolver(e.summary).Pair(u, v)
	if err != nil {
		return s.epochInfo(e), 0, err
	}
	return s.epochInfo(e), r, nil
}

// solve runs the chain-preconditioned Laplacian solve L·x = b over the
// epoch summary to relative residual tol.
func (s *session) solve(b []float64, tol float64) (Info, []float64, error) {
	e := s.cur.Load()
	if len(b) != s.n {
		return s.epochInfo(e), nil, fmt.Errorf("solve vector has %d entries, graph has %d vertices", len(b), s.n)
	}
	for i, x := range b {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return s.epochInfo(e), nil, fmt.Errorf("solve vector entry %d is %v", i, x)
		}
	}
	if tol <= 0 {
		tol = 1e-8
	}
	x, _, err := solver.SolveLaplacian(e.summary, b, tol, solver.ChainOptions{Seed: QuerySeed(s.opt.Seed, e.seq)})
	if err != nil {
		return s.epochInfo(e), nil, err
	}
	return s.epochInfo(e), x, nil
}
