package serve_test

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	repro "repro"
	"repro/internal/graph"
	"repro/internal/serve"
	"repro/internal/stream"
)

// startServer boots a Server on a free localhost port and returns it
// with a cleanup that drains it.
func startServer(t *testing.T, cfg serve.Config) *serve.Server {
	t.Helper()
	cfg.Listen = "127.0.0.1:0"
	srv, err := serve.Listen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	t.Cleanup(func() {
		srv.Shutdown(5 * time.Second)
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv
}

func dial(t *testing.T, srv *serve.Server) *serve.Client {
	t.Helper()
	c, err := serve.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// testEdges returns a deterministic connected edge sequence: a
// spanning path first, then random extras.
func testEdges(n, m int, seed int64) []graph.Edge {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, 0, m)
	for v := 1; v < n && len(edges) < m; v++ {
		edges = append(edges, graph.Edge{U: int32(v - 1), V: int32(v), W: 1})
	}
	for len(edges) < m {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		edges = append(edges, graph.Edge{U: int32(u), V: int32(v), W: 0.5 + rng.Float64()})
	}
	return edges
}

func TestServeEndToEnd(t *testing.T) {
	srv := startServer(t, serve.Config{})
	c := dial(t, srv)

	const n = 64
	opt := serve.GraphOptions{UpdateBudget: 256, Seed: 42}
	info, err := c.Open("g", n, opt)
	if err != nil {
		t.Fatal(err)
	}
	if info.N != n || info.Epoch != 0 || info.Ingested != 0 {
		t.Fatalf("fresh graph info %+v", info)
	}

	// Queries against epoch 0 answer over the empty graph.
	info, g0, err := c.Sparsify("g", 0.5, 0)
	if err != nil {
		t.Fatalf("epoch-0 sparsify: %v", err)
	}
	if info.Epoch != 0 || g0.M() != 0 {
		t.Fatalf("epoch-0 sparsify returned epoch %d with %d edges", info.Epoch, g0.M())
	}

	edges := testEdges(n, 1000, 7)
	for i := 0; i < len(edges); i += 100 {
		end := i + 100
		if end > len(edges) {
			end = len(edges)
		}
		if info, err = c.Ingest("g", edges[i:end]); err != nil {
			t.Fatalf("ingest batch at %d: %v", i, err)
		}
	}
	if info.Ingested != int64(len(edges)) {
		t.Fatalf("ingested %d of %d", info.Ingested, len(edges))
	}
	// 1000 edges at budget 256 → epochs published along the way.
	if info.Epoch == 0 {
		t.Fatal("no epoch published after exceeding the update budget")
	}

	// Flush publishes the tail; a second flush is a no-op.
	fi, err := c.Flush("g")
	if err != nil {
		t.Fatal(err)
	}
	if fi.Prefix != int64(len(edges)) || fi.Pending != 0 {
		t.Fatalf("flush info %+v", fi)
	}
	fi2, err := c.Flush("g")
	if err != nil {
		t.Fatal(err)
	}
	if fi2.Epoch != fi.Epoch {
		t.Fatalf("idempotent flush advanced epoch %d → %d", fi.Epoch, fi2.Epoch)
	}

	// All four query kinds answer over the flushed epoch.
	si, sg, err := c.Sparsify("g", 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if si.Epoch != fi.Epoch || sg.N != n || sg.M() == 0 {
		t.Fatalf("sparsify answered epoch %d with n=%d m=%d", si.Epoch, sg.N, sg.M())
	}
	_, sp, err := c.Spanner("g", 3)
	if err != nil {
		t.Fatal(err)
	}
	if sp.N != n || sp.M() == 0 {
		t.Fatalf("spanner n=%d m=%d", sp.N, sp.M())
	}
	_, r, err := c.Resistance("g", 0, int32(n-1))
	if err != nil {
		t.Fatal(err)
	}
	if !(r > 0) {
		t.Fatalf("resistance %v", r)
	}
	b := make([]float64, n)
	b[0], b[n-1] = 1, -1
	_, x, err := c.Solve("g", b, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if len(x) != n {
		t.Fatalf("solve returned %d entries", len(x))
	}
	// The solve answers over the epoch sparsifier, so x[0]−x[n−1] is
	// the epoch's effective resistance — consistent with the pair query.
	if d := (x[0] - x[n-1]) - r; d > 1e-6*r || d < -1e-6*r {
		t.Fatalf("solve potential difference %v vs resistance %v", x[0]-x[n-1], r)
	}

	// Stat matches flush state.
	st, err := c.Stat("g")
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != fi.Epoch || st.Ingested != int64(len(edges)) || st.Pending != 0 {
		t.Fatalf("stat %+v", st)
	}

	// Request errors keep the connection alive.
	if _, err := c.Stat("nope"); err == nil || !strings.Contains(err.Error(), "unknown graph") {
		t.Fatalf("unknown graph error: %v", err)
	}
	if _, err := c.Open("g", n+1, opt); err == nil || !strings.Contains(err.Error(), "exists with n=") {
		t.Fatalf("mismatched reopen error: %v", err)
	}
	if _, _, err := c.Resistance("g", -1, 5); err == nil {
		t.Fatal("out-of-range resistance accepted")
	}
	if _, _, err := c.Solve("g", []float64{1}, 0); err == nil {
		t.Fatal("short solve vector accepted")
	}
	if _, err := c.Stat("g"); err != nil {
		t.Fatalf("connection dead after request errors: %v", err)
	}

	// Drop, then the name is gone; a second client sees the same registry.
	if _, err := c.Drop("g"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("g"); err == nil {
		t.Fatal("dropped graph still answers")
	}
	c2 := dial(t, srv)
	if _, err := c2.Stat("g"); err == nil {
		t.Fatal("dropped graph visible to a second connection")
	}
}

// TestServedSparsifierMatchesOffline pins the determinism contract: a
// served sparsify answer is bit-identical to the offline recomputation
// over the same ingested edge prefix — replay the prefix through
// internal/stream with the graph's options, snapshot, and run
// repro.Sparsify under serve.QuerySeed.
func TestServedSparsifierMatchesOffline(t *testing.T) {
	srv := startServer(t, serve.Config{})
	c := dial(t, srv)

	const (
		n      = 96
		m      = 1500
		budget = 300
		seed   = uint64(11)
		eps    = 0.5
	)
	opt := serve.GraphOptions{UpdateBudget: budget, Seed: seed}
	if _, err := c.Open("g", n, opt); err != nil {
		t.Fatal(err)
	}
	edges := testEdges(n, m, 3)

	type answer struct {
		info  serve.Info
		graph *graph.Graph
	}
	var answers []answer
	for i := 0; i < len(edges); i += 125 {
		end := i + 125
		if end > len(edges) {
			end = len(edges)
		}
		if _, err := c.Ingest("g", edges[i:end]); err != nil {
			t.Fatal(err)
		}
		info, g, err := c.Sparsify("g", eps, 0)
		if err != nil {
			t.Fatal(err)
		}
		answers = append(answers, answer{info, g})
	}
	if _, err := c.Flush("g"); err != nil {
		t.Fatal(err)
	}
	info, g, err := c.Sparsify("g", eps, 0)
	if err != nil {
		t.Fatal(err)
	}
	answers = append(answers, answer{info, g})

	checked := map[uint64]bool{}
	for _, a := range answers {
		if checked[a.info.Epoch] {
			continue
		}
		checked[a.info.Epoch] = true
		offline := offlineSparsify(t, n, edges[:a.info.Prefix], opt, a.info.Epoch, eps)
		assertSameGraph(t, a.info, a.graph, offline)
	}
	if len(checked) < 3 {
		t.Fatalf("only %d distinct epochs exercised; want ≥ 3", len(checked))
	}
}

// offlineSparsify is the reference computation of the determinism
// contract: an independent replay of the exact ingested prefix.
func offlineSparsify(t *testing.T, n int, prefix []graph.Edge, opt serve.GraphOptions, epoch uint64, eps float64) *graph.Graph {
	t.Helper()
	str := stream.New(n, stream.Options{
		BufferEdges: opt.BufferEdges,
		ReduceEps:   opt.ReduceEps,
		Seed:        opt.Seed,
	})
	for _, e := range prefix {
		if err := str.Ingest(e); err != nil {
			t.Fatal(err)
		}
	}
	sum, _, err := str.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := repro.Sparsify(sum, eps, 0, repro.Options{Seed: serve.QuerySeed(opt.Seed, epoch)})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func assertSameGraph(t *testing.T, info serve.Info, got, want *graph.Graph) {
	t.Helper()
	if got.N != want.N || got.M() != want.M() {
		t.Fatalf("epoch %d (prefix %d): served n=%d m=%d, offline n=%d m=%d",
			info.Epoch, info.Prefix, got.N, got.M(), want.N, want.M())
	}
	for i := range got.Edges {
		if got.Edges[i] != want.Edges[i] {
			t.Fatalf("epoch %d (prefix %d): edge %d served %+v, offline %+v",
				info.Epoch, info.Prefix, i, got.Edges[i], want.Edges[i])
		}
	}
}

// TestShutdownAnswersInFlight pins the drain discipline: a request the
// server has received is answered even when Shutdown lands while it is
// being served, and the listener refuses new work afterwards.
func TestShutdownAnswersInFlight(t *testing.T) {
	cfg := serve.Config{Listen: "127.0.0.1:0"}
	srv, err := serve.Listen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()

	c, err := serve.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const n = 128
	if _, err := c.Open("g", n, serve.GraphOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Ingest("g", testEdges(n, 2000, 5)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Flush("g"); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	started := make(chan struct{})
	var qerr error
	go func() {
		defer wg.Done()
		close(started)
		_, _, qerr = c.Sparsify("g", 0.25, 0)
	}()
	// Whether Shutdown lands while the query is being computed or after
	// it finished, the query must succeed: a received request is
	// answered (the drain only half-closes the read side), and Shutdown
	// waits for the response to go out. The sleep puts the request bytes
	// in the server's kernel buffer before the drain starts.
	<-started
	time.Sleep(20 * time.Millisecond)
	if err := srv.Shutdown(10 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()
	if qerr != nil {
		t.Fatalf("in-flight query failed across drain: %v", qerr)
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve returned %v after drain", err)
	}
	if _, err := serve.Dial(srv.Addr()); err == nil {
		t.Fatal("dial succeeded after shutdown")
	}
}
