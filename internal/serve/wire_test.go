package serve

import (
	"bufio"
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, {0xff}, bytes.Repeat([]byte{0xa5}, 1<<10)}
	var buf bytes.Buffer
	for i, p := range payloads {
		if err := writeFrame(&buf, uint8(i+1), uint32(100+i), p); err != nil {
			t.Fatal(err)
		}
	}
	r := bufio.NewReader(&buf)
	for i, p := range payloads {
		f, err := readFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.typ != uint8(i+1) || f.seq != uint32(100+i) || !bytes.Equal(f.payload, p) {
			t.Fatalf("frame %d decoded as type=%d seq=%d payload=%d bytes", i, f.typ, f.seq, len(f.payload))
		}
	}
}

func TestFrameCorruptionDetected(t *testing.T) {
	base := appendFrame(nil, frameAck, 7, []byte("payload-bytes"))
	// Every single-bit flip anywhere in the frame must be caught: the
	// magic, the reserved bytes, the length, the payload, or the CRC.
	for byteIdx := 0; byteIdx < len(base); byteIdx++ {
		mut := append([]byte(nil), base...)
		mut[byteIdx] ^= 0x04
		_, err := readFrame(bufio.NewReader(bytes.NewReader(mut)))
		if err == nil {
			t.Fatalf("flipped bit in byte %d went undetected", byteIdx)
		}
	}
}

func TestFrameTruncationDetected(t *testing.T) {
	base := appendFrame(nil, frameAck, 7, []byte("payload"))
	for cut := 0; cut < len(base); cut++ {
		_, err := readFrame(bufio.NewReader(bytes.NewReader(base[:cut])))
		if err == nil {
			t.Fatalf("truncation to %d of %d bytes went undetected", cut, len(base))
		}
	}
}

func TestFrameRejectsOversizedLength(t *testing.T) {
	f := appendFrame(nil, frameIngest, 1, nil)
	// Claim a payload over the limit; the reader must refuse before
	// allocating, CRC or not.
	f[12] = 0xff
	f[13] = 0xff
	f[14] = 0xff
	f[15] = 0x7f
	_, err := readFrame(bufio.NewReader(bytes.NewReader(f)))
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized length not rejected: %v", err)
	}
}

func TestOpenRoundTrip(t *testing.T) {
	want := openReq{
		Name: "load-test",
		N:    1 << 20,
		Opt:  GraphOptions{UpdateBudget: 4096, BufferEdges: 1 << 15, ReduceEps: 0.25, Seed: 0xdeadbeef},
	}
	got, err := decodeOpen(appendOpen(nil, want))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("open round trip: got %+v want %+v", got, want)
	}
}

func TestOpenRejectsBadFields(t *testing.T) {
	bad := []openReq{
		{Name: "g", N: 0},
		{Name: "g", N: -5},
		{Name: "g", N: int64(graph.MaxEdges) + 1},
		{Name: "g", N: 8, Opt: GraphOptions{UpdateBudget: -1}},
		{Name: "g", N: 8, Opt: GraphOptions{ReduceEps: math.Inf(1)}},
		{Name: "g", N: 8, Opt: GraphOptions{ReduceEps: math.NaN()}},
	}
	for i, q := range bad {
		if _, err := decodeOpen(appendOpen(nil, q)); err == nil {
			t.Fatalf("bad open %d (%+v) accepted", i, q)
		}
	}
}

func TestNameValidation(t *testing.T) {
	for _, name := range []string{"", "has space", "tab\there", "null\x00", strings.Repeat("x", maxNameLen+1)} {
		if _, _, err := decodeName(appendName(nil, name)); err == nil {
			t.Fatalf("bad name %q accepted", name)
		}
		if err := checkName(name); err == nil {
			t.Fatalf("checkName accepted %q", name)
		}
	}
	ok := strings.Repeat("k", maxNameLen)
	got, rest, err := decodeName(appendName(nil, ok))
	if err != nil || got != ok || len(rest) != 0 {
		t.Fatalf("max-length name rejected: %v", err)
	}
}

func TestIngestRoundTrip(t *testing.T) {
	edges := []graph.Edge{{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 0.5}, {U: 1, V: 2, W: math.Pi}}
	q, err := decodeIngest(appendIngest(nil, "g1", edges))
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != "g1" || len(q.Edges) != len(edges) {
		t.Fatalf("decoded %+v", q)
	}
	for i := range edges {
		if q.Edges[i] != edges[i] {
			t.Fatalf("edge %d: got %+v want %+v", i, q.Edges[i], edges[i])
		}
	}
	// Empty batch is legal on the wire (the session decides semantics).
	q, err = decodeIngest(appendIngest(nil, "g1", nil))
	if err != nil || len(q.Edges) != 0 {
		t.Fatalf("empty batch: %v, %d edges", err, len(q.Edges))
	}
}

func TestEdgeListCountMismatch(t *testing.T) {
	p := appendIngest(nil, "g", []graph.Edge{{U: 0, V: 1, W: 1}})
	// Inflate the count field without supplying the bytes: decoder must
	// reject without allocating count*16 bytes.
	countOff := 2 + 1 // name len + "g"
	p[countOff] = 0xff
	p[countOff+1] = 0xff
	p[countOff+2] = 0xff
	p[countOff+3] = 0x7f
	if _, err := decodeIngest(p); err == nil {
		t.Fatal("lying edge count accepted")
	}
}

func TestQueryRoundTrips(t *testing.T) {
	queries := []queryReq{
		{Name: "g", Kind: querySparsify, Eps: 0.3, Rho: 2.5},
		{Name: "g", Kind: querySpanner, K: 4},
		{Name: "g", Kind: queryResistance, U: 17, V: 123},
		{Name: "g", Kind: querySolve, Tol: 1e-8, Vec: []float64{1, -1, 0, 0.25}},
	}
	for i, want := range queries {
		got, err := decodeQuery(appendQuery(nil, want))
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if got.Name != want.Name || got.Kind != want.Kind || got.Eps != want.Eps ||
			got.Rho != want.Rho || got.K != want.K || got.U != want.U || got.V != want.V ||
			got.Tol != want.Tol || len(got.Vec) != len(want.Vec) {
			t.Fatalf("query %d: got %+v want %+v", i, got, want)
		}
		for j := range want.Vec {
			if got.Vec[j] != want.Vec[j] {
				t.Fatalf("query %d vec[%d]: %v != %v", i, j, got.Vec[j], want.Vec[j])
			}
		}
	}
	if _, err := decodeQuery(appendName(nil, "g")); err == nil {
		t.Fatal("query with no kind accepted")
	}
}

func TestInfoRoundTrip(t *testing.T) {
	want := Info{N: 1 << 20, Epoch: 42, Prefix: 1 << 19, Ingested: 1<<19 + 77, Pending: 77, SummaryM: 123456, Reduces: 9}
	got, rest, err := decodeInfo(appendInfo(nil, want))
	if err != nil || len(rest) != 0 {
		t.Fatalf("info: %v, %d rest", err, len(rest))
	}
	if got != want {
		t.Fatalf("info round trip: got %+v want %+v", got, want)
	}
}

func TestGraphRespRoundTrip(t *testing.T) {
	info := Info{N: 8, Epoch: 3, Prefix: 100, SummaryM: 2}
	edges := []graph.Edge{{U: 0, V: 1, W: 2}, {U: 3, V: 7, W: 0.125}}
	gi, ge, err := decodeGraphResp(appendGraphResp(nil, info, edges))
	if err != nil {
		t.Fatal(err)
	}
	if gi != info || len(ge) != 2 || ge[0] != edges[0] || ge[1] != edges[1] {
		t.Fatalf("graph resp: %+v %+v", gi, ge)
	}
}

func TestFloatsRespRoundTrip(t *testing.T) {
	info := Info{N: 4, Epoch: 1, Prefix: 10, SummaryM: 3}
	v := []float64{0.5, -1.25, math.MaxFloat64}
	fi, fv, err := decodeFloatsResp(appendFloatsResp(nil, info, v))
	if err != nil {
		t.Fatal(err)
	}
	if fi != info || len(fv) != 3 || fv[0] != v[0] || fv[1] != v[1] || fv[2] != v[2] {
		t.Fatalf("floats resp: %+v %+v", fi, fv)
	}
}

func TestErrorRespRoundTrip(t *testing.T) {
	for _, msg := range []string{"", "unknown graph \"g\"", strings.Repeat("e", maxErrLen+100)} {
		got, err := decodeErrorResp(appendErrorResp(nil, msg))
		if err != nil {
			t.Fatal(err)
		}
		want := msg
		if len(want) > maxErrLen {
			want = want[:maxErrLen]
		}
		if got != want {
			t.Fatalf("error resp %d bytes round-tripped to %d bytes", len(want), len(got))
		}
	}
}
