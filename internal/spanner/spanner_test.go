package spanner

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/pram"
	"repro/internal/stretch"
)

func computeMask(t *testing.T, g *graph.Graph, opt Options) []bool {
	t.Helper()
	adj := graph.NewAdjacency(g)
	res := Compute(g, adj, nil, opt)
	if len(res.InSpanner) != g.M() {
		t.Fatalf("mask length %d != m %d", len(res.InSpanner), g.M())
	}
	return res.InSpanner
}

func stretchBound(k int) float64 { return float64(2*k - 1) }

func TestSpannerStretchGnp(t *testing.T) {
	g := gen.Gnp(300, 0.15, 42)
	k := DefaultK(g.N)
	mask := computeMask(t, g, Options{Seed: 1})
	if bad := stretch.VerifySpanner(g, mask, stretchBound(k)); bad != -1 {
		st := stretch.EdgeStretches(g, mask)
		t.Fatalf("edge %d has stretch %v > %v", bad, st[bad], stretchBound(k))
	}
}

func TestSpannerStretchWeighted(t *testing.T) {
	g := gen.WithRandomWeights(gen.Gnp(200, 0.2, 7), 0.01, 100, 8)
	k := DefaultK(g.N)
	mask := computeMask(t, g, Options{Seed: 2})
	if bad := stretch.VerifySpanner(g, mask, stretchBound(k)); bad != -1 {
		st := stretch.EdgeStretches(g, mask)
		t.Fatalf("weighted: edge %d stretch %v > %v", bad, st[bad], stretchBound(k))
	}
}

func TestSpannerStretchCompleteGraph(t *testing.T) {
	g := gen.Complete(120)
	k := DefaultK(g.N)
	mask := computeMask(t, g, Options{Seed: 3})
	if bad := stretch.VerifySpanner(g, mask, stretchBound(k)); bad != -1 {
		t.Fatalf("complete graph: edge %d violates stretch", bad)
	}
	// K_n must actually shrink: O(n log n) ≪ n²/2.
	kept := graph.CountTrue(mask)
	if kept > g.M()/2 {
		t.Fatalf("spanner kept %d of %d edges of K120", kept, g.M())
	}
}

func TestSpannerSizeScaling(t *testing.T) {
	// Expected size O(k·n^(1+1/k)) = O(n log n) with k = log2 n: check a
	// generous constant on a graph dense enough for shrinkage to show.
	n := 400
	g := gen.Gnp(n, 0.2, 9)
	mask := computeMask(t, g, Options{Seed: 4})
	kept := graph.CountTrue(mask)
	bound := 8 * float64(n) * math.Log2(float64(n))
	if float64(kept) > bound {
		t.Fatalf("spanner size %d exceeds 8·n·log n = %v", kept, bound)
	}
}

func TestSpannerSubsetOfAlive(t *testing.T) {
	g := gen.Gnp(150, 0.2, 5)
	adj := graph.NewAdjacency(g)
	alive := make([]bool, g.M())
	for i := range alive {
		alive[i] = i%2 == 0
	}
	res := Compute(g, adj, alive, Options{Seed: 6})
	for i, in := range res.InSpanner {
		if in && !alive[i] {
			t.Fatalf("spanner selected dead edge %d", i)
		}
	}
}

func TestSpannerAliveSubgraphStretch(t *testing.T) {
	// The spanner property must hold for the alive subgraph.
	g := gen.Gnp(200, 0.25, 11)
	adj := graph.NewAdjacency(g)
	alive := make([]bool, g.M())
	for i := range alive {
		alive[i] = i%3 != 0
	}
	res := Compute(g, adj, alive, Options{Seed: 7})
	sub := g.Subgraph(alive)
	// Map the mask onto the subgraph's edge indexing.
	subMask := make([]bool, 0, sub.M())
	for i := range alive {
		if alive[i] {
			subMask = append(subMask, res.InSpanner[i])
		}
	}
	k := DefaultK(g.N)
	if bad := stretch.VerifySpanner(sub, subMask, stretchBound(k)); bad != -1 {
		t.Fatalf("alive-subgraph stretch violated at sub-edge %d", bad)
	}
}

func TestSpannerDeterministicAcrossRuns(t *testing.T) {
	g := gen.Gnp(250, 0.2, 13)
	a := computeMask(t, g, Options{Seed: 99})
	b := computeMask(t, g, Options{Seed: 99})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at edge %d", i)
		}
	}
}

func TestSpannerDifferentSeedsDiffer(t *testing.T) {
	g := gen.Gnp(250, 0.2, 13)
	a := computeMask(t, g, Options{Seed: 1})
	b := computeMask(t, g, Options{Seed: 2})
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two seeds produced identical spanners on a dense graph (suspicious)")
	}
}

func TestSpannerK1IsIdentity(t *testing.T) {
	g := gen.Gnp(50, 0.3, 17)
	mask := computeMask(t, g, Options{K: 1, Seed: 1})
	for i, in := range mask {
		if !in {
			t.Fatalf("k=1 spanner dropped edge %d", i)
		}
	}
}

func TestSpannerK2Stretch(t *testing.T) {
	g := gen.Gnp(100, 0.3, 19)
	mask := computeMask(t, g, Options{K: 2, Seed: 1})
	if bad := stretch.VerifySpanner(g, mask, 3); bad != -1 {
		st := stretch.EdgeStretches(g, mask)
		t.Fatalf("(2·2−1)-spanner violated: edge %d stretch %v", bad, st[bad])
	}
}

func TestSpannerSelfLoopsExcluded(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 1, W: 1}, {U: 1, V: 2, W: 1}})
	mask := computeMask(t, g, Options{Seed: 1})
	if mask[1] {
		t.Fatal("self-loop selected")
	}
	if !mask[0] || !mask[2] {
		t.Fatal("bridge edges must always be in the spanner")
	}
}

func TestSpannerEmptyAndTinyGraphs(t *testing.T) {
	for _, g := range []*graph.Graph{graph.New(0), graph.New(1), gen.Path(2), gen.Path(3)} {
		mask := computeMask(t, g, Options{Seed: 1})
		// Trees must be kept entirely: every edge is a bridge.
		for i, in := range mask {
			if !in {
				t.Fatalf("n=%d: tree edge %d dropped", g.N, i)
			}
		}
	}
}

func TestSpannerDisconnectedGraph(t *testing.T) {
	// Two disjoint cliques: spanner must certify both sides.
	k1 := gen.Complete(30)
	g := graph.New(60)
	for _, e := range k1.Edges {
		g.Edges = append(g.Edges, e)
		g.Edges = append(g.Edges, graph.Edge{U: e.U + 30, V: e.V + 30, W: 1})
	}
	mask := computeMask(t, g, Options{Seed: 21})
	k := DefaultK(g.N)
	if bad := stretch.VerifySpanner(g, mask, stretchBound(k)); bad != -1 {
		t.Fatalf("disconnected: edge %d violates stretch", bad)
	}
}

func TestSpannerTrackerAccumulates(t *testing.T) {
	g := gen.Gnp(200, 0.2, 23)
	adj := graph.NewAdjacency(g)
	tr := pram.New()
	Compute(g, adj, nil, Options{Seed: 1, Tracker: tr})
	if tr.Work() <= 0 || tr.Depth() <= 0 {
		t.Fatalf("tracker empty: work=%d depth=%d", tr.Work(), tr.Depth())
	}
	if tr.Work() < tr.Depth() {
		t.Fatal("work < depth is impossible")
	}
}

func TestDefaultK(t *testing.T) {
	if DefaultK(2) != 2 || DefaultK(1000) != 10 || DefaultK(1024) != 10 {
		t.Fatalf("DefaultK: %d %d %d", DefaultK(2), DefaultK(1000), DefaultK(1024))
	}
}
