// Package spanner implements the Baswana–Sen randomized (2k−1)-spanner
// algorithm [Baswana & Sen, Random Struct. Algorithms 2007] in the
// snapshot-parallel form that the paper's Theorem 1 (CRCW PRAM) and
// Theorem 2 (synchronous distributed) both rely on: in each of k−1
// clustering iterations every vertex makes its decision simultaneously
// against the cluster assignment at the start of the iteration.
//
// Lengths are resistive (ℓ_e = 1/w_e), so with k = ⌈log₂ n⌉ the output
// satisfies the paper's spanner definition st_H(e) ≤ 2 log n for every
// edge e, with expected size O(k·n^(1+1/k)) = O(n log n).
//
// The algorithm works on a subset of the edges of a host graph selected
// by an "alive" mask, which is what lets bundle construction peel
// spanners off G − ΣH_j without copying the graph.
package spanner

import (
	"math"

	"repro/internal/graph"
	"repro/internal/parutil"
	"repro/internal/pram"
	"repro/internal/rng"
)

// Options configures a spanner computation.
type Options struct {
	// K is the number of levels; the result is a (2K−1)-spanner in the
	// resistive metric. K ≤ 0 selects ⌈log₂ n⌉ (the paper's log n-spanner).
	K int
	// Seed drives all sampling decisions; equal seeds give identical
	// outputs at any GOMAXPROCS.
	Seed uint64
	// Tracker, when non-nil, accumulates modeled CRCW work/depth.
	Tracker *pram.Tracker
}

// Result is the output of a spanner computation.
type Result struct {
	// InSpanner marks the selected edges (indices into the host graph's
	// edge list). It is always a subset of the alive mask.
	InSpanner []bool
	// Center is the final cluster assignment after phase 1 (−1 for
	// vertices that became unclustered); exported for the distributed
	// simulation and for tests of the clustering invariants.
	Center []int32
	// Iterations is the number of clustering iterations performed (k−1).
	Iterations int
}

// IterSeedMix derives each clustering iteration's sampling stream from
// the spanner seed. Exported for the distributed simulation
// (internal/dist), which must flip identical center-sampling coins to
// stay bit-identical with Compute.
const IterSeedMix = 0x9e3779b97f4a7c15

// DefaultK returns the paper's choice ⌈log₂ n⌉, at least 2.
func DefaultK(n int) int {
	if n < 4 {
		return 2
	}
	k := int(math.Ceil(math.Log2(float64(n))))
	if k < 2 {
		k = 2
	}
	return k
}

// Compute runs Baswana–Sen over the alive edges of g. adj must be the
// adjacency of g. alive may be nil, meaning all edges. The returned
// mask has length len(g.Edges).
func Compute(g *graph.Graph, adj *graph.Adjacency, alive []bool, opt Options) *Result {
	n := g.N
	m := len(g.Edges)
	k := opt.K
	if k <= 0 {
		k = DefaultK(n)
	}
	inSpanner := make([]bool, m)
	center := make([]int32, n)
	for i := range center {
		center[i] = int32(i)
	}
	if k == 1 {
		// A 1-spanner is the graph itself.
		for i := range inSpanner {
			if alive == nil || alive[i] {
				inSpanner[i] = true
			}
		}
		return &Result{InSpanner: inSpanner, Center: center}
	}
	// dead[i]: edge i no longer in E'. Initialized from the alive mask.
	dead := make([]bool, m)
	for i := range dead {
		if alive != nil && !alive[i] {
			dead[i] = true
		}
		if g.Edges[i].U == g.Edges[i].V {
			dead[i] = true // self-loops carry no spectral information
		}
	}
	p := math.Pow(float64(n), -1.0/float64(k))
	st := &state{
		g: g, adj: adj, dead: dead, inSpanner: inSpanner,
		center: center, seed: opt.Seed, sampleProb: p,
	}
	aliveCount := int64(0)
	for _, d := range dead {
		if !d {
			aliveCount++
		}
	}
	for iter := 1; iter <= k-1; iter++ {
		st.clusterIteration(iter)
		// Modeled cost: a full scan of the surviving edges with O(1)
		// CRCW depth per iteration (concurrent min via combining).
		opt.Tracker.ParFor(2*aliveCount, 1)
	}
	st.vertexClusterJoin()
	opt.Tracker.ParFor(2*aliveCount, 1)
	return &Result{InSpanner: inSpanner, Center: st.center, Iterations: k - 1}
}

// state carries the per-computation arrays so that the iteration
// methods stay readable.
type state struct {
	g          *graph.Graph
	adj        *graph.Adjacency
	dead       []bool  // mutated only between iterations
	inSpanner  []bool  // mutated only between iterations
	center     []int32 // cluster assignment at the start of the iteration
	seed       uint64
	sampleProb float64
}

// BestEdge tracks the lightest (in resistive length) alive edge from a
// vertex to one adjacent cluster; ties break by edge id so the result
// is independent of scan order. It is exported because the distributed
// simulation (internal/dist) must apply the identical total order to
// stay bit-compatible with this implementation.
type BestEdge struct {
	Eid int32
	Len float64
}

// Better folds candidate edge (eid, l) into a, keeping the lighter
// (resistive length, then edge id) of the two.
func Better(a BestEdge, eid int32, l float64) BestEdge {
	if a.Eid < 0 || l < a.Len || (l == a.Len && eid < a.Eid) {
		return BestEdge{Eid: eid, Len: l}
	}
	return a
}

// UpdateBest folds edge (eid, l) into the per-cluster minimum map,
// treating a missing entry as "no edge yet" (the zero BestEdge would
// otherwise masquerade as edge 0 with length 0).
func UpdateBest(m map[int32]BestEdge, c int32, eid int32, l float64) {
	if be, ok := m[c]; ok {
		m[c] = Better(be, eid, l)
	} else {
		m[c] = BestEdge{Eid: eid, Len: l}
	}
}

// clusterIteration performs one Baswana–Sen phase-1 iteration.
func (s *state) clusterIteration(iter int) {
	n := s.g.N
	// Step 1: sample cluster centers with probability n^{-1/k}. The
	// decision is a pure function of (seed, iteration, center id).
	sampled := make([]bool, n)
	parutil.For(n, func(v int) {
		r := rng.SplitAt(s.seed^(uint64(iter)*IterSeedMix), uint64(v))
		sampled[v] = r.Float64() < s.sampleProb
	})

	newCenter := make([]int32, n)
	type vertexOut struct {
		spannerAdd []int32
		kill       []int32
	}
	outs := parutil.CollectShards(n, func(_ int, lo, hi int) []vertexOut {
		var shardOuts []vertexOut
		groups := make(map[int32]BestEdge)
		for vi := lo; vi < hi; vi++ {
			v := int32(vi)
			c := s.center[v]
			if c < 0 {
				newCenter[v] = -1
				continue
			}
			if sampled[c] {
				// Vertices of sampled clusters keep everything.
				newCenter[v] = c
				continue
			}
			// Group v's alive inter-cluster edges by neighbor cluster.
			for key := range groups {
				delete(groups, key)
			}
			loS, hiS := s.adj.Range(v)
			for slot := loS; slot < hiS; slot++ {
				eid := s.adj.EID[slot]
				if s.dead[eid] {
					continue
				}
				u := s.adj.Nbr[slot]
				cu := s.center[u]
				if cu < 0 || cu == c {
					// Edges to unclustered vertices cannot exist by the
					// E' invariant; intra-cluster edges were removed at
					// the end of the previous iteration. Skip defensively.
					continue
				}
				UpdateBest(groups, cu, eid, s.g.Edges[eid].Resistance())
			}
			var out vertexOut
			// Find the lightest edge into a *sampled* adjacent cluster.
			best := BestEdge{Eid: -1}
			for cu, be := range groups {
				if sampled[cu] {
					if best.Eid < 0 || be.Len < best.Len || (be.Len == best.Len && be.Eid < best.Eid) {
						best = be
					}
				}
			}
			if best.Eid < 0 {
				// Case (a): no sampled neighbor cluster. Add the lightest
				// edge to every adjacent cluster; v drops out of the
				// clustering and discards all its alive edges.
				newCenter[v] = -1
				for _, be := range groups {
					out.spannerAdd = append(out.spannerAdd, be.Eid)
				}
				for slot := loS; slot < hiS; slot++ {
					eid := s.adj.EID[slot]
					if !s.dead[eid] {
						out.kill = append(out.kill, eid)
					}
				}
			} else {
				// Case (b): join the sampled cluster reached by the
				// lightest such edge; certify lighter adjacent clusters.
				joined := s.g.Edges[best.Eid]
				jc := s.center[joined.U]
				if joined.U == v {
					jc = s.center[joined.V]
				}
				newCenter[v] = jc
				out.spannerAdd = append(out.spannerAdd, best.Eid)
				removeCluster := make(map[int32]bool, 4)
				removeCluster[jc] = true
				for cu, be := range groups {
					if cu == jc {
						continue
					}
					if be.Len < best.Len || (be.Len == best.Len && be.Eid < best.Eid) {
						out.spannerAdd = append(out.spannerAdd, be.Eid)
						removeCluster[cu] = true
					}
				}
				for slot := loS; slot < hiS; slot++ {
					eid := s.adj.EID[slot]
					if s.dead[eid] {
						continue
					}
					u := s.adj.Nbr[slot]
					if cu := s.center[u]; cu >= 0 && removeCluster[cu] {
						out.kill = append(out.kill, eid)
					}
				}
			}
			if len(out.spannerAdd) > 0 || len(out.kill) > 0 {
				shardOuts = append(shardOuts, out)
			}
		}
		return shardOuts
	})
	// Apply the simultaneous decisions (idempotent set operations, so
	// application order is irrelevant).
	for _, out := range outs {
		for _, eid := range out.spannerAdd {
			s.inSpanner[eid] = true
		}
		for _, eid := range out.kill {
			s.dead[eid] = true
		}
	}
	s.center = newCenter
	// Step 4: discard intra-cluster edges under the new assignment.
	parutil.For(len(s.g.Edges), func(i int) {
		if s.dead[i] {
			return
		}
		e := s.g.Edges[i]
		cu, cv := s.center[e.U], s.center[e.V]
		if cu >= 0 && cu == cv {
			s.dead[i] = true
		}
	})
}

// vertexClusterJoin is Baswana–Sen phase 2: every vertex adds the
// lightest alive edge to each adjacent surviving cluster, after which
// E' is empty.
func (s *state) vertexClusterJoin() {
	n := s.g.N
	adds := parutil.CollectShards(n, func(_ int, lo, hi int) []int32 {
		var shardAdds []int32
		groups := make(map[int32]BestEdge)
		for vi := lo; vi < hi; vi++ {
			v := int32(vi)
			for key := range groups {
				delete(groups, key)
			}
			loS, hiS := s.adj.Range(v)
			for slot := loS; slot < hiS; slot++ {
				eid := s.adj.EID[slot]
				if s.dead[eid] {
					continue
				}
				u := s.adj.Nbr[slot]
				cu := s.center[u]
				if cu < 0 {
					continue
				}
				UpdateBest(groups, cu, eid, s.g.Edges[eid].Resistance())
			}
			for _, be := range groups {
				shardAdds = append(shardAdds, be.Eid)
			}
		}
		return shardAdds
	})
	for _, eid := range adds {
		s.inSpanner[eid] = true
	}
	for i := range s.dead {
		s.dead[i] = true
	}
}
