package spanner

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/stretch"
)

func TestGreedyStretchProperty(t *testing.T) {
	g := gen.Gnp(200, 0.2, 3)
	k := DefaultK(g.N)
	mask := Greedy(g, k)
	if bad := stretch.VerifySpanner(g, mask, float64(2*k-1)); bad != -1 {
		st := stretch.EdgeStretches(g, mask)
		t.Fatalf("greedy edge %d stretch %v > %v", bad, st[bad], 2*k-1)
	}
}

func TestGreedyWeightedStretch(t *testing.T) {
	g := gen.WithRandomWeights(gen.Gnp(150, 0.2, 5), 0.01, 100, 7)
	k := DefaultK(g.N)
	mask := Greedy(g, k)
	if bad := stretch.VerifySpanner(g, mask, float64(2*k-1)); bad != -1 {
		t.Fatalf("greedy weighted: edge %d violates", bad)
	}
}

func TestGreedyNoSmallCycles(t *testing.T) {
	// The greedy (2k-1)-spanner has girth > 2k in the unweighted case:
	// accepting an edge that closes a short cycle would contradict the
	// acceptance test. Spot-check triangles for k >= 2.
	g := gen.Gnp(100, 0.3, 9)
	mask := Greedy(g, 2)
	h := g.Subgraph(mask)
	adj := graph.NewAdjacency(h)
	nbrs := make(map[int32]map[int32]bool)
	for v := int32(0); int(v) < h.N; v++ {
		nbrs[v] = map[int32]bool{}
		adj.Neighbors(v, func(u int32, _ int32) { nbrs[v][u] = true })
	}
	for _, e := range h.Edges {
		for u := range nbrs[e.U] {
			if u != e.V && nbrs[e.V][u] {
				t.Fatalf("triangle %d-%d-%d in greedy 3-spanner of a unit graph", e.U, e.V, u)
			}
		}
	}
}

func TestGreedySmallerThanBaswanaSen(t *testing.T) {
	// Greedy is the size reference: on dense unit graphs it should not
	// be (much) larger than Baswana–Sen at the same k.
	g := gen.Gnp(300, 0.25, 11)
	k := DefaultK(g.N)
	greedySize := graph.CountTrue(Greedy(g, k))
	adj := graph.NewAdjacency(g)
	bsSize := graph.CountTrue(Compute(g, adj, nil, Options{Seed: 13}).InSpanner)
	if greedySize > bsSize {
		t.Fatalf("greedy (%d) larger than Baswana–Sen (%d); greedy is the size-optimal reference", greedySize, bsSize)
	}
}

func TestGreedyKeepsTreeEntirely(t *testing.T) {
	g := gen.Path(30)
	mask := Greedy(g, DefaultK(g.N))
	for i, in := range mask {
		if !in {
			t.Fatalf("greedy dropped bridge %d", i)
		}
	}
}

func TestGreedyK1Identity(t *testing.T) {
	g := gen.Gnp(40, 0.3, 15)
	mask := Greedy(g, 1)
	if graph.CountTrue(mask) != g.M() {
		t.Fatal("k=1 greedy must keep everything")
	}
}

func TestGreedySkipsSelfLoops(t *testing.T) {
	g := graph.FromEdges(2, []graph.Edge{{U: 0, V: 0, W: 1}, {U: 0, V: 1, W: 1}})
	mask := Greedy(g, 2)
	if mask[0] || !mask[1] {
		t.Fatalf("mask %v", mask)
	}
}

func TestGreedyDeterministic(t *testing.T) {
	g := gen.Gnp(150, 0.2, 17)
	a := Greedy(g, 0)
	b := Greedy(g, 0)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
}
